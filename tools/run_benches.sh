#!/usr/bin/env bash
#===- tools/run_benches.sh - hot-path bench runner -----------------------===#
#
# Builds the tree and regenerates the machine-readable bench reports:
#
#   BENCH_hotpath.json   — micro_allocators: per-op malloc/free costs,
#                          fast-vs-legacy speedups, the contended mt-*
#                          scenarios (per-thread caches vs global lock,
#                          with lock-acquisitions-per-op), and the
#                          heap-image v1-vs-v2 footprint
#                          (schema: ROADMAP.md)
#   BENCH_exchange.json  — exp_collaborative: patch-exchange ingest
#                          throughput and ImageBundle size ratio
#                          (schema: ROADMAP.md)
#   BENCH_diagnosis.json — exp_diagnosis: evidence-path throughput
#                          (capture MB/s, view build, §4 isolation,
#                          server ingest; fast vs legacy — schema:
#                          ROADMAP.md)
#   BENCH_fig7.json      — fig7_overhead: normalized whole-program
#                          overheads vs the baseline allocator (--full;
#                          CI runs it as a smoke step)
#
# Usage:
#   tools/run_benches.sh [--smoke] [--full]
#
#   --smoke   shrunk iteration counts (CI smoke run)
#   --full    also run the fig7 whole-program overhead suite (slower)
#
# Environment:
#   BUILD_DIR   build directory (default: build)
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SMOKE=""
FULL=0
for Arg in "$@"; do
  case "$Arg" in
    --smoke) SMOKE="--smoke" ;;
    --full) FULL=1 ;;
    *) echo "usage: tools/run_benches.sh [--smoke] [--full]" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target micro_allocators fig7_overhead \
  exp_collaborative exp_diagnosis >/dev/null

"$BUILD_DIR"/bench/micro_allocators $SMOKE --json BENCH_hotpath.json
"$BUILD_DIR"/bench/exp_collaborative $SMOKE --json BENCH_exchange.json
"$BUILD_DIR"/bench/exp_diagnosis $SMOKE --json BENCH_diagnosis.json

if [ "$FULL" = 1 ]; then
  "$BUILD_DIR"/bench/fig7_overhead --json BENCH_fig7.json
fi

//===- tools/xtermtool.cpp - Exterminator patch & image utility -----------------===//
//
// Command-line companion to the Exterminator runtime:
//
//   xtermtool inspect  <file>                  list a patch file's contents;
//                                              images/bundles/snapshots print
//                                              compressed vs raw sizes (PR 10)
//   xtermtool report   <file>                  render a patch file as a bug
//                                              report (§9); other artifacts as
//                                              with inspect
//   xtermtool merge    <out.xpt> <in.xpt>...   collaborative max-merge (§6.4)
//   xtermtool image    <dump.xhi>              summarize a heap image (§3.4)
//   xtermtool diagnose <out.xpt> <dump.xhi>... run isolation over images
//
// Patch-exchange commands (the fleet-scale form of §6.4; endpoints are
// "unix:/path.sock", "tcp:PORT", or "tcp:HOST:PORT"):
//
//   xtermtool serve         <endpoint> [--workers N] [--seed patch.xpt]
//                           [--state-dir DIR] [--snapshot-every N]
//                           [--snapshot-keep K] [--peer endpoint]...
//                           [--anti-entropy-ms N]
//       --state-dir makes restarts lossless: the server restores its full
//       diagnostic state (patches, epoch, Bayes trial history) from DIR's
//       snapshot + journal on start, journals every accepted submission,
//       and snapshots every N submissions (default 64) and on shutdown.
//       The last K snapshot generations are retained (default 2), so a
//       torn head snapshot falls back to the previous one.
//       With both --state-dir and --seed, the state dir is authoritative
//       (it keeps its epoch); the seed max-merges into the restored set.
//       Each --peer names another server of the same fleet: accepted
//       local submissions stream to every peer, and an anti-entropy
//       round every N ms (default 1000) repairs whatever streaming
//       missed, so the fleet converges without a leader.
//   xtermtool submit        <endpoints> <dump.xhi|summary.xrs>...
//   xtermtool fetch-patches <endpoints> <out.xpt> [--require-nonempty]
//   xtermtool shutdown      <endpoints>
//       <endpoints> is a comma-separated list; clients fail over down
//       the list with jittered exponential backoff (shutdown instead
//       addresses *every* listed server).
//   xtermtool stats         <endpoints>
//       Scrapes every listed server's metrics snapshot and prints the
//       text exposition (`name{label="v"} value`) each one rendered,
//       prefixed with a `# server` banner per endpoint.
//   xtermtool watch         <endpoints> [--once] [--interval-ms N]
//       Polls every listed server's metrics and renders a terse
//       per-server line plus any active threshold alerts (built-in
//       rules: corruption posterior over the classification bar,
//       persist failures, replication queue overflow — with netdata-
//       style hysteresis so a flapping metric alerts once).
//   xtermtool record        <outdir> [--hardware]  write demo evidence
//       files: scripted-overflow images by default, row-cluster
//       DRAM-fault images with --hardware
//
// The tool is a thin client of the runtime: diagnose feeds images (v1 or
// v2) straight into the DiagnosisPipeline — the same ingestion point the
// mode drivers use — and submit ships the same evidence to a PatchServer
// wrapping that pipeline on another machine.
//
//===----------------------------------------------------------------------===//

#include "codec/BlockCodec.h"
#include "diagnose/DiagnosisPipeline.h"
#include "diefast/Canary.h"
#include "exchange/FailoverTransport.h"
#include "exchange/PatchClient.h"
#include "exchange/PatchServer.h"
#include "exchange/Replication.h"
#include "exchange/SocketTransport.h"
#include "exchange/StateStore.h"
#include "heapimage/HeapImageIO.h"
#include "heapimage/ImageBundle.h"
#include "observe/AlertEngine.h"
#include "observe/MetricsRegistry.h"
#include "patch/PatchIO.h"
#include "patch/PatchMerge.h"
#include "report/PatchReport.h"
#include "runtime/Exterminator.h"
#include "workload/ScriptedBugs.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace exterminator;

static int usage() {
  std::fprintf(stderr,
               "usage: xtermtool inspect  <file>\n"
               "       xtermtool report   <file>\n"
               "         <file>: patch.xpt (listing / bug report), or a\n"
               "         heap image / bundle / state snapshot (prints\n"
               "         compressed vs raw byte sizes)\n"
               "       xtermtool merge    <out.xpt> <in.xpt>...\n"
               "       xtermtool image    <dump.xhi>\n"
               "       xtermtool diagnose <out.xpt> <dump.xhi>... "
               "[--json]\n"
               "       xtermtool serve    <endpoint> [--workers N] "
               "[--seed patch.xpt]\n"
               "                          [--state-dir DIR] "
               "[--snapshot-every N] [--snapshot-keep K]\n"
               "                          [--peer endpoint]... "
               "[--anti-entropy-ms N]\n"
               "       xtermtool submit   <endpoints> "
               "<dump.xhi|summary.xrs>...\n"
               "       xtermtool fetch-patches <endpoints> <out.xpt> "
               "[--require-nonempty]\n"
               "       xtermtool shutdown <endpoints>\n"
               "       xtermtool stats    <endpoints>\n"
               "       xtermtool watch    <endpoints> [--once] "
               "[--interval-ms N]\n"
               "       xtermtool record   <outdir> [--hardware]\n"
               "endpoints: unix:/path.sock | tcp:PORT | tcp:HOST:PORT\n"
               "  submit/fetch-patches/shutdown accept a comma-separated\n"
               "  endpoint list (a replicated fleet; clients fail over\n"
               "  down the list; shutdown/stats/watch address every\n"
               "  server)\n");
  return 2;
}

static int inspectPatches(const std::string &Path) {
  PatchSet Patches;
  if (!loadPatchSet(Path, Patches)) {
    std::fprintf(stderr, "error: cannot load patch file '%s'\n",
                 Path.c_str());
    return 1;
  }
  std::printf("%s: %zu pad(s), %zu front pad(s), %zu deferral(s), "
              "%zu hardware page(s)\n",
              Path.c_str(), Patches.padCount(), Patches.frontPadCount(),
              Patches.deferralCount(), Patches.hardwareReportCount());
  for (const PadPatch &Pad : Patches.pads())
    std::printf("  pad      site=0x%08x  bytes=%u\n", Pad.AllocSite,
                Pad.PadBytes);
  for (const FrontPadPatch &Pad : Patches.frontPads())
    std::printf("  frontpad site=0x%08x  bytes=%u\n", Pad.AllocSite,
                Pad.PadBytes);
  for (const DeferralPatch &Deferral : Patches.deferrals())
    std::printf("  deferral alloc=0x%08x free=0x%08x  ticks=%llu\n",
                Deferral.AllocSite, Deferral.FreeSite,
                static_cast<unsigned long long>(Deferral.DeferTicks));
  for (const HardwareFaultReport &Report : Patches.hardwareReports())
    std::printf("  hardware page=0x%012llx kinds=0x%x regions=%llu\n",
                static_cast<unsigned long long>(Report.PageAddress),
                Report.KindMask,
                static_cast<unsigned long long>(Report.EvidenceRegions));
  return 0;
}

static int reportPatches(const std::string &Path) {
  PatchSet Patches;
  if (!loadPatchSet(Path, Patches)) {
    std::fprintf(stderr, "error: cannot load patch file '%s'\n",
                 Path.c_str());
    return 1;
  }
  std::fputs(generatePatchReport(Patches).c_str(), stdout);
  return 0;
}

//===----------------------------------------------------------------------===//
// Codec-size inspection (PR 10)
//===----------------------------------------------------------------------===//

// File magics the inspect dispatcher sniffs.  Each format owns its
// constant inside its own module; these mirror them for routing only.
static constexpr uint32_t SniffPatchV2 = 0x58505432;  // "XPT2"
static constexpr uint32_t SniffPatchV3 = 0x58505433;  // "XPT3"
static constexpr uint32_t SniffImageV1 = 0x58484931;  // "XHI1"
static constexpr uint32_t SniffImageV2 = 0x58484932;  // "XHI2"
static constexpr uint32_t SniffBundle = 0x58494231;   // "XIB1"
static constexpr uint32_t SniffSnapshot = 0x58535431; // "XST1"

/// One "raw vs compressed" line — the operator-visible proof the codec
/// layer is earning its keep.
static void printSizeLine(const char *What, uint64_t RawBytes,
                          uint64_t StoredBytes) {
  const double Pct =
      RawBytes ? 100.0 * double(StoredBytes) / double(RawBytes) : 100.0;
  std::printf("  %-22s %10llu B  (%.1f%% of raw)\n", What,
              static_cast<unsigned long long>(StoredBytes), Pct);
}

static int inspectImageSizes(const std::string &Path,
                             const std::vector<uint8_t> &FileBytes) {
  HeapImage Image;
  if (!loadHeapImage(Path, Image)) {
    std::fprintf(stderr, "error: cannot load heap image '%s'\n",
                 Path.c_str());
    return 1;
  }
  const std::vector<uint8_t> RawV2 = serializeHeapImage(Image);
  const std::vector<uint8_t> Envelope = encodeCodecBlock(RawV2);
  std::printf("%s: heap image (format v%u, %zu miniheap(s), %zu slot(s))\n",
              Path.c_str(), Image.SourceFormatVersion, Image.miniheapCount(),
              Image.totalSlots());
  std::printf("  %-22s %10llu B\n", "raw (v2 columnar)",
              static_cast<unsigned long long>(RawV2.size()));
  printSizeLine("compressed (codec)", RawV2.size(), Envelope.size());
  printSizeLine("on-disk", RawV2.size(), FileBytes.size());
  return 0;
}

static int inspectBundleSizes(const std::string &Path,
                              const std::vector<uint8_t> &FileBytes) {
  std::vector<HeapImage> Images;
  if (!loadImageBundle(Path, Images)) {
    std::fprintf(stderr, "error: cannot load image bundle '%s'\n",
                 Path.c_str());
    return 1;
  }
  const size_t RawV1 = serializeImageBundle(Images, ImageBundleFormatV1).size();
  const size_t DeltaV2 =
      serializeImageBundle(Images, ImageBundleFormatV2).size();
  std::printf("%s: image bundle, %zu image(s)\n", Path.c_str(),
              Images.size());
  std::printf("  %-22s %10llu B\n", "raw (v1 standalone)",
              static_cast<unsigned long long>(RawV1));
  printSizeLine("delta-encoded (v2)", RawV1, DeltaV2);
  printSizeLine("on-disk (compressed)", RawV1, FileBytes.size());
  return 0;
}

static int inspectSnapshotSizes(const std::string &Path,
                                const std::vector<uint8_t> &Bytes) {
  // Mirrors StateStore's snapshot reader: trailing u32 checksum, then
  // magic, version, generation, state blob (v2 wraps the blob in a
  // codec envelope).
  const char *Bad = nullptr;
  do {
    if (Bytes.size() <= 4 ||
        frameChecksum(Bytes.data(), Bytes.size() - 4) !=
            readFrameU32(Bytes.data() + Bytes.size() - 4)) {
      Bad = "checksum mismatch";
      break;
    }
    ByteReader Reader(Bytes.data(), Bytes.size() - 4);
    Reader.readU32(); // magic, already sniffed
    const uint8_t Version = Reader.readU8();
    const uint64_t Generation = Reader.readU64();
    std::vector<uint8_t> State;
    uint64_t StoredBlob = 0;
    if (Version == 1) {
      State = Reader.readBlob();
      StoredBlob = State.size();
    } else if (Version == 2) {
      const std::vector<uint8_t> Envelope = Reader.readBlob();
      StoredBlob = Envelope.size();
      if (!decodeCodecBlock(Envelope, State, MaxFramePayload)) {
        Bad = "corrupt codec envelope";
        break;
      }
    } else {
      Bad = "unknown snapshot version";
      break;
    }
    if (Reader.failed() || !Reader.atEnd()) {
      Bad = "truncated or oversized";
      break;
    }
    std::printf("%s: state snapshot v%u, generation %llu\n", Path.c_str(),
                Version, static_cast<unsigned long long>(Generation));
    std::printf("  %-22s %10llu B\n", "raw state blob",
                static_cast<unsigned long long>(State.size()));
    printSizeLine("stored blob", State.size(), StoredBlob);
    printSizeLine("on-disk", State.size(), Bytes.size());
    return 0;
  } while (false);
  std::fprintf(stderr, "error: cannot parse snapshot '%s': %s\n",
               Path.c_str(), Bad);
  return 1;
}

/// inspect/report accept any repo artifact, routed by leading magic.
/// Patch files keep their classic listings; images, bundles, and
/// snapshots print compressed-vs-raw sizes (PR 10).
static int inspectFile(const std::string &Path, bool Report) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes) || Bytes.size() < 4) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return 1;
  }
  ByteReader Sniff(Bytes.data(), Bytes.size());
  switch (Sniff.readU32()) {
  case SniffPatchV2:
  case SniffPatchV3:
    return Report ? reportPatches(Path) : inspectPatches(Path);
  case SniffImageV1:
  case SniffImageV2:
    return inspectImageSizes(Path, Bytes);
  case SniffBundle:
  case CompressedBundleMagic:
    return inspectBundleSizes(Path, Bytes);
  case SniffSnapshot:
    return inspectSnapshotSizes(Path, Bytes);
  }
  std::fprintf(stderr,
               "error: '%s' is not a patch, image, bundle, or snapshot "
               "file\n",
               Path.c_str());
  return 1;
}

static int mergePatches(const std::string &Out,
                        const std::vector<std::string> &Inputs) {
  if (!mergePatchFiles(Inputs, Out)) {
    std::fprintf(stderr, "error: merge failed (missing or malformed "
                         "input, or unwritable output)\n");
    return 1;
  }
  PatchSet Merged;
  loadPatchSet(Out, Merged);
  std::printf("merged %zu file(s) -> %s (%zu pads, %zu deferrals)\n",
              Inputs.size(), Out.c_str(), Merged.padCount(),
              Merged.deferralCount());
  return 0;
}

static int summarizeImage(const std::string &Path) {
  HeapImage Image;
  if (!loadHeapImage(Path, Image)) {
    std::fprintf(stderr, "error: cannot load heap image '%s'\n",
                 Path.c_str());
    return 1;
  }
  std::printf("%s: format v%u, allocation time %llu, canary 0x%08x, "
              "M = %.1f, p = %.2f\n",
              Path.c_str(), Image.SourceFormatVersion,
              static_cast<unsigned long long>(Image.AllocationTime),
              Image.CanaryValue, Image.Multiplier,
              Image.CanaryFillProbability);

  const Canary HeapCanary = Canary::fromValue(Image.CanaryValue);
  size_t Live = 0, Freed = 0, Canaried = 0, Bad = 0, Corrupt = 0;
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      const uint8_t Flags = Image.slotFlags(Loc);
      if (Flags & SlotFlagBad)
        ++Bad;
      else if (Flags & SlotFlagAllocated)
        ++Live;
      else if (Image.objectId(Loc))
        ++Freed;
      if (!(Flags & SlotFlagCanaried) ||
          ((Flags & SlotFlagAllocated) && !(Flags & SlotFlagBad)))
        continue;
      ++Canaried;
      if (Image.contents(Loc).findCorruption(HeapCanary)) {
        ++Corrupt;
        std::printf("  CORRUPT slot: miniheap objsize=%llu slot=%u "
                    "object=%llu alloc-site=0x%08x free-site=0x%08x\n",
                    static_cast<unsigned long long>(Mini.ObjectSize), S,
                    static_cast<unsigned long long>(Image.objectId(Loc)),
                    Image.allocSite(Loc), Image.freeSite(Loc));
      }
    }
  }
  std::printf("%zu miniheap(s), %zu slot(s): %zu live, %zu freed, "
              "%zu canaried, %zu quarantined, %zu corrupt\n",
              Image.miniheapCount(), Image.totalSlots(), Live, Freed,
              Canaried, Bad, Corrupt);
  return 0;
}

/// One kind-mask rendering shared by the table and the JSON output.
static std::string hardwareKindNames(uint32_t Mask) {
  std::string Names;
  auto Add = [&](const char *Name) {
    if (!Names.empty())
      Names += "|";
    Names += Name;
  };
  if (Mask & HardwareFaultBitFlip)
    Add("bit-flip");
  if (Mask & HardwareFaultStuckAt)
    Add("stuck-at");
  if (Mask & HardwareFaultRowCluster)
    Add("row-cluster");
  if (Names.empty())
    Names = "unknown";
  return Names;
}

static int diagnoseImages(const std::string &Out,
                          const std::vector<std::string> &Inputs,
                          bool Json) {
  ImageEvidence Evidence;
  for (const std::string &Path : Inputs) {
    HeapImage Image;
    if (!loadHeapImage(Path, Image)) {
      std::fprintf(stderr, "error: cannot load heap image '%s'\n",
                   Path.c_str());
      return 1;
    }
    if (!Json)
      std::printf("loaded %s (format v%u, %zu slots, allocation time "
                  "%llu)\n",
                  Path.c_str(), Image.SourceFormatVersion,
                  Image.totalSlots(),
                  static_cast<unsigned long long>(Image.AllocationTime));
    Evidence.Primary.push_back(std::move(Image));
  }
  if (Evidence.Primary.size() < 2) {
    std::fprintf(stderr, "error: diagnosis needs at least two images of "
                         "differently-randomized heaps\n");
    return 1;
  }

  DiagnosisPipeline Pipeline;
  const IsolationResult Result = Pipeline.submitImages(Evidence);
  const PatchSet &Patches = Pipeline.patches();

  if (Json) {
    // Machine-readable summary for CI smoke checks: flat keys first so a
    // plain grep can assert on them, findings after.
    std::printf("{\"overflows\":%zu,\"danglings\":%zu,"
                "\"hardware_faults\":%zu,\"pads\":%zu,\"front_pads\":%zu,"
                "\"deferrals\":%zu,\"hardware_pages\":%zu,\"findings\":[",
                Result.Overflows.size(), Result.Danglings.size(),
                Result.HardwareFaults.size(), Patches.padCount(),
                Patches.frontPadCount(), Patches.deferralCount(),
                Patches.hardwareReportCount());
    bool First = true;
    auto Comma = [&]() {
      if (!First)
        std::printf(",");
      First = false;
    };
    for (const OverflowCandidate &Candidate : Result.Overflows) {
      Comma();
      const bool Patched =
          Patches.padFor(Candidate.CulpritAllocSite) > 0 ||
          Patches.frontPadFor(Candidate.CulpritAllocSite) > 0;
      std::printf("{\"origin\":\"%s\",\"kind\":\"overflow\","
                  "\"site\":\"0x%08x\",\"pad\":%u,\"front_pad\":%u,"
                  "\"score\":%.6f}",
                  Patched ? "software-site" : "unclassified",
                  Candidate.CulpritAllocSite, Candidate.PadBytes,
                  Candidate.FrontPadBytes, Candidate.Score);
    }
    for (const DanglingFinding &Finding : Result.Danglings) {
      Comma();
      std::printf("{\"origin\":\"software-site\",\"kind\":\"dangling\","
                  "\"alloc\":\"0x%08x\",\"free\":\"0x%08x\","
                  "\"defer\":%llu}",
                  Finding.AllocSite, Finding.FreeSite,
                  static_cast<unsigned long long>(Finding.DeferralTicks));
    }
    for (const HardwareFinding &Finding : Result.HardwareFaults) {
      Comma();
      std::printf("{\"origin\":\"hardware-page\",\"kind\":\"%s\","
                  "\"page\":\"0x%012llx\",\"regions\":%llu}",
                  hardwareKindNames(Finding.KindMask).c_str(),
                  static_cast<unsigned long long>(Finding.PageAddress),
                  static_cast<unsigned long long>(Finding.EvidenceRegions));
    }
    std::printf("]}\n");
  } else {
    std::printf("%zu overflow candidate(s), %zu dangling finding(s), "
                "%zu hardware fault(s)\n",
                Result.Overflows.size(), Result.Danglings.size(),
                Result.HardwareFaults.size());
    // Origin table: every finding with its classified origin.
    std::printf("%-14s %-10s %s\n", "origin", "kind", "where");
    for (const OverflowCandidate &Candidate : Result.Overflows) {
      const bool Patched =
          Patches.padFor(Candidate.CulpritAllocSite) > 0 ||
          Patches.frontPadFor(Candidate.CulpritAllocSite) > 0;
      std::printf("%-14s %-10s site 0x%08x (pad %u, score %.3f)\n",
                  Patched ? "software-site" : "unclassified", "overflow",
                  Candidate.CulpritAllocSite, Candidate.PadBytes,
                  Candidate.Score);
    }
    for (const DanglingFinding &Finding : Result.Danglings)
      std::printf("%-14s %-10s alloc 0x%08x free 0x%08x (defer %llu)\n",
                  "software-site", "dangling", Finding.AllocSite,
                  Finding.FreeSite,
                  static_cast<unsigned long long>(Finding.DeferralTicks));
    for (const HardwareFinding &Finding : Result.HardwareFaults)
      std::printf("%-14s %-10s page 0x%012llx (%llu region(s))\n",
                  "hardware-page", hardwareKindNames(Finding.KindMask).c_str(),
                  static_cast<unsigned long long>(Finding.PageAddress),
                  static_cast<unsigned long long>(Finding.EvidenceRegions));
    std::fputs(Pipeline.report().c_str(), stdout);
  }
  if (!savePatchSet(Patches, Out)) {
    std::fprintf(stderr, "error: cannot write patch file '%s'\n",
                 Out.c_str());
    return 1;
  }
  if (!Json)
    std::printf("wrote %s (%zu pads, %zu front pads, %zu deferrals, "
                "%zu hardware pages)\n",
                Out.c_str(), Patches.padCount(), Patches.frontPadCount(),
                Patches.deferralCount(), Patches.hardwareReportCount());
  return 0;
}

//===----------------------------------------------------------------------===//
// Patch-exchange commands
//===----------------------------------------------------------------------===//

static bool parseEndpointArg(const std::string &Spec, Endpoint &Out) {
  if (!parseEndpoint(Spec, Out)) {
    std::fprintf(stderr,
                 "error: bad endpoint '%s' (want unix:/path.sock, "
                 "tcp:PORT, or tcp:HOST:PORT)\n",
                 Spec.c_str());
    return false;
  }
  return true;
}

static bool parseEndpointListArg(const std::string &Spec,
                                 std::vector<Endpoint> &Out) {
  if (!parseEndpointList(Spec, Out)) {
    std::fprintf(stderr,
                 "error: bad endpoint list '%s' (want a comma-separated "
                 "list of unix:/path.sock, tcp:PORT, or tcp:HOST:PORT)\n",
                 Spec.c_str());
    return false;
  }
  return true;
}

static int serveCommand(const std::string &Spec,
                        const std::vector<std::string> &Options) {
  unsigned Workers = 2;
  std::string SeedFile;
  std::string StateDir;
  unsigned SnapshotEvery = 64;
  unsigned SnapshotKeep = 2;
  unsigned AntiEntropyMs = 1000;
  std::vector<Endpoint> PeerEndpoints;
  for (size_t I = 0; I < Options.size(); ++I) {
    if (Options[I] == "--workers" && I + 1 < Options.size())
      Workers = static_cast<unsigned>(std::strtoul(Options[++I].c_str(),
                                                   nullptr, 10));
    else if (Options[I] == "--seed" && I + 1 < Options.size())
      SeedFile = Options[++I];
    else if (Options[I] == "--state-dir" && I + 1 < Options.size())
      StateDir = Options[++I];
    else if (Options[I] == "--snapshot-every" && I + 1 < Options.size())
      SnapshotEvery = static_cast<unsigned>(
          std::strtoul(Options[++I].c_str(), nullptr, 10));
    else if (Options[I] == "--snapshot-keep" && I + 1 < Options.size())
      SnapshotKeep = static_cast<unsigned>(
          std::strtoul(Options[++I].c_str(), nullptr, 10));
    else if (Options[I] == "--anti-entropy-ms" && I + 1 < Options.size())
      AntiEntropyMs = static_cast<unsigned>(
          std::strtoul(Options[++I].c_str(), nullptr, 10));
    else if (Options[I] == "--peer" && I + 1 < Options.size()) {
      Endpoint Peer;
      if (!parseEndpointArg(Options[++I], Peer))
        return 1;
      PeerEndpoints.push_back(Peer);
    } else
      return usage();
  }

  Endpoint Ep;
  if (!parseEndpointArg(Spec, Ep))
    return 1;

  // One registry for every subsystem this process runs: the live Stats
  // endpoint and the exit report below both render the same snapshot,
  // so they can never disagree.
  MetricsRegistry Registry;
  registerCodecMetrics(Registry);
  PatchServer Server;
  Server.attachMetrics(Registry);

  // Replication links attach before any state arrives, so a --seed
  // file streams to the peers like any other local-origin change, and
  // restored state reaches them in the first anti-entropy push (a peer
  // that is down just queues; anti-entropy repairs it once it is back).
  std::unique_ptr<ReplicaSet> Replicas;
  if (!PeerEndpoints.empty()) {
    Replicas = std::make_unique<ReplicaSet>(Server);
    for (const Endpoint &Peer : PeerEndpoints)
      Replicas->addPeer(Peer);
    Replicas->attachMetrics(Registry);
  }

  // Durable state restores first: the state directory is authoritative
  // (it keeps its epoch and the accumulated Bayes history), and a --seed
  // file then max-merges *into* the restored state — seeding can only
  // add or widen patches, never roll restored state back.
  std::unique_ptr<StateStore> Store;
  if (!StateDir.empty()) {
    Store = std::make_unique<StateStore>(StateDir);
    Store->setSnapshotKeep(SnapshotKeep);
    Store->attachMetrics(Registry);
    std::string Error;
    if (!Server.attachState(*Store, SnapshotEvery, &Error)) {
      std::fprintf(stderr, "error: cannot restore state from '%s': %s\n",
                   StateDir.c_str(), Error.c_str());
      return 1;
    }
    const PatchSnapshot Restored = Server.snapshot();
    std::printf("restored state from %s: epoch %llu, %zu pad(s), %zu "
                "front pad(s), %zu deferral(s), %llu accumulated run(s)\n",
                StateDir.c_str(), (unsigned long long)Restored.Epoch,
                Restored.Patches.padCount(),
                Restored.Patches.frontPadCount(),
                Restored.Patches.deferralCount(),
                (unsigned long long)Server.cumulativeRuns());
  }
  if (!SeedFile.empty()) {
    PatchSet Seed;
    if (!loadPatchSet(SeedFile, Seed)) {
      std::fprintf(stderr, "error: cannot load seed patch file '%s'\n",
                   SeedFile.c_str());
      return 1;
    }
    Server.seedPatches(Seed);
  }

  SocketPatchServer Front(Server, Workers);
  Front.attachMetrics(Registry);
  if (!Front.listen(Ep)) {
    std::fprintf(stderr, "error: cannot listen on %s\n", Spec.c_str());
    return 1;
  }
  if (Replicas) {
    Replicas->start(AntiEntropyMs);
    std::printf("replicating to %zu peer(s), anti-entropy every %u ms\n",
                Replicas->peerCount(), AntiEntropyMs);
  }
  std::printf("patch server listening on %s (%u worker(s)); stop with "
              "`xtermtool shutdown %s`\n",
              endpointToString(Front.endpoint()).c_str(), Workers,
              endpointToString(Front.endpoint()).c_str());
  std::fflush(stdout);
  Front.serve();
  if (Replicas)
    Replicas->stop();

  // Snapshot-on-shutdown: fold the journal into one fresh snapshot so
  // the next start replays nothing.
  if (Store && !Server.persistNow())
    std::fprintf(stderr, "warning: final snapshot to '%s' failed\n",
                 StateDir.c_str());

  // Exit report = the same registry snapshot the live Stats endpoint
  // serves (the ad-hoc per-struct printing this replaces could drift
  // from what a scrape saw; one snapshot path cannot).
  std::printf("exit stats (registry snapshot):\n%s",
              MetricsRegistry::renderText(Registry.snapshot()).c_str());
  return 0;
}

static int submitEvidence(const std::string &Spec,
                          const std::vector<std::string> &Inputs) {
  std::vector<Endpoint> Fleet;
  if (!parseEndpointListArg(Spec, Fleet))
    return 1;

  // Images group into one evidence set (isolation needs the whole set);
  // each summary is its own submission.
  ImageEvidence Evidence;
  std::vector<RunSummary> Summaries;
  for (const std::string &Path : Inputs) {
    std::vector<uint8_t> Bytes;
    if (!readFileBytes(Path, Bytes)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
      return 1;
    }
    RunSummary Summary;
    if (deserializeRunSummary(Bytes, Summary)) {
      Summaries.push_back(std::move(Summary));
      continue;
    }
    HeapImage Image;
    if (!deserializeHeapImage(Bytes, Image)) {
      std::fprintf(stderr,
                   "error: '%s' is neither a heap image nor a run "
                   "summary\n",
                   Path.c_str());
      return 1;
    }
    Evidence.Primary.push_back(std::move(Image));
  }

  FailoverTransport Transport(Fleet);
  PatchClient Client(Transport);
  if (!Evidence.Primary.empty() && !Client.queueImages(Evidence)) {
    std::fprintf(stderr,
                 "error: evidence set exceeds the %u MiB frame limit; "
                 "submit fewer images per invocation\n",
                 MaxFramePayload >> 20);
    return 1;
  }
  for (const RunSummary &Summary : Summaries)
    Client.queueSummary(Summary, /*CleanStreak=*/0);
  if (!Client.flush()) {
    std::fprintf(stderr, "error: submission to %s failed: %s\n",
                 Spec.c_str(), Transport.lastError().c_str());
    return 1;
  }
  std::printf("submitted %zu image(s), %zu summarie(s) to %s\n",
              Evidence.Primary.size(), Summaries.size(), Spec.c_str());
  return 0;
}

static int fetchPatchesCommand(const std::string &Spec,
                               const std::string &Out,
                               bool RequireNonEmpty) {
  std::vector<Endpoint> Fleet;
  if (!parseEndpointListArg(Spec, Fleet))
    return 1;
  FailoverTransport Transport(Fleet);
  PatchClient Client(Transport);
  if (!Client.fetchPatches()) {
    std::fprintf(stderr, "error: fetch from %s failed: %s\n", Spec.c_str(),
                 Transport.lastError().c_str());
    return 1;
  }
  if (!savePatchSet(Client.patches(), Out)) {
    std::fprintf(stderr, "error: cannot write patch file '%s'\n",
                 Out.c_str());
    return 1;
  }
  std::printf("fetched epoch %llu -> %s (%zu pads, %zu front pads, %zu "
              "deferrals)\n",
              (unsigned long long)Client.epoch(), Out.c_str(),
              Client.patches().padCount(), Client.patches().frontPadCount(),
              Client.patches().deferralCount());
  if (RequireNonEmpty && Client.patches().empty()) {
    std::fprintf(stderr, "error: fetched patch set is empty\n");
    return 1;
  }
  return 0;
}

static int shutdownCommand(const std::string &Spec) {
  // Shutdown is the one command that must NOT fail over — it addresses
  // every listed server individually, and reports which ones failed.
  std::vector<Endpoint> Fleet;
  if (!parseEndpointListArg(Spec, Fleet))
    return 1;
  int Failures = 0;
  for (const Endpoint &Ep : Fleet) {
    SocketClientTransport Transport(Ep);
    PatchClient Client(Transport);
    if (!Client.shutdownServer()) {
      std::fprintf(stderr, "error: shutdown of %s failed: %s\n",
                   endpointToString(Ep).c_str(),
                   Transport.lastError().c_str());
      ++Failures;
      continue;
    }
    std::printf("server at %s shutting down\n",
                endpointToString(Ep).c_str());
  }
  return Failures ? 1 : 0;
}

/// One Stats exchange with one server.  Returns false (with stderr
/// noise) on transport failure, a rejected frame, or a malformed reply.
static bool fetchStats(const Endpoint &Ep, StatsFormat Format,
                       StatsReply &Out) {
  SocketClientTransport Transport(Ep);
  const std::vector<std::vector<uint8_t>> Requests = {
      encodeFrame(MessageType::Stats, encodeStatsRequest(Format))};
  std::vector<std::vector<uint8_t>> Responses;
  if (!Transport.exchange(Requests, Responses) || Responses.size() != 1) {
    std::fprintf(stderr, "error: stats exchange with %s failed: %s\n",
                 endpointToString(Ep).c_str(),
                 Transport.lastError().c_str());
    return false;
  }
  Frame Reply;
  size_t Consumed = 0;
  if (decodeFrame(Responses[0].data(), Responses[0].size(), Reply,
                  Consumed) != FrameError::None ||
      Reply.Type != MessageType::StatsReply ||
      !decodeStatsReply(Reply.Payload, Out)) {
    std::fprintf(stderr, "error: malformed stats reply from %s\n",
                 endpointToString(Ep).c_str());
    return false;
  }
  return true;
}

static int statsCommand(const std::string &Spec) {
  // Like shutdown, stats addresses every listed server individually —
  // a scrape that silently failed over would attribute one server's
  // metrics to another.
  std::vector<Endpoint> Fleet;
  if (!parseEndpointListArg(Spec, Fleet))
    return 1;
  int Failures = 0;
  for (const Endpoint &Ep : Fleet) {
    StatsReply Stats;
    if (!fetchStats(Ep, StatsFormat::Text, Stats)) {
      ++Failures;
      continue;
    }
    std::printf("# server %s instance=%016llx epoch=%llu\n%s",
                endpointToString(Ep).c_str(),
                (unsigned long long)Stats.Instance,
                (unsigned long long)Stats.Epoch, Stats.Text.c_str());
  }
  return Failures ? 1 : 0;
}

static int watchCommand(const std::string &Spec,
                        const std::vector<std::string> &Options) {
  std::vector<Endpoint> Fleet;
  if (!parseEndpointListArg(Spec, Fleet))
    return 1;
  bool Once = false;
  unsigned IntervalMs = 1000;
  for (size_t I = 0; I < Options.size(); ++I) {
    if (Options[I] == "--once") {
      Once = true;
    } else if (Options[I] == "--interval-ms" && I + 1 < Options.size()) {
      IntervalMs = (unsigned)std::strtoul(Options[++I].c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown watch option '%s'\n",
                   Options[I].c_str());
      return usage();
    }
  }

  // One engine per endpoint, persistent across rounds: hysteresis state
  // (pending de-escalations, raise counts) lives in the engine, so a
  // fresh engine each round would re-raise every alert every tick.
  std::vector<AlertEngine> Engines(Fleet.size());
  for (AlertEngine &Engine : Engines)
    Engine.addBuiltinRules();

  for (uint64_t Round = 0;; ++Round) {
    for (size_t I = 0; I < Fleet.size(); ++I) {
      StatsReply Stats;
      if (!fetchStats(Fleet[I], StatsFormat::Samples, Stats))
        continue; // engine holds state across a missed scrape
      MetricsSnapshot Snap;
      Snap.Samples = std::move(Stats.Samples);
      Engines[I].evaluate(Snap, Round);
      const auto Summaries = Snap.find("xterm_ingest_summaries_total");
      const auto Posterior = Snap.maxValue("xterm_site_posterior");
      std::printf("[%llu] %s epoch=%llu summaries=%.0f top_posterior=%s "
                  "active_alerts=%zu\n",
                  (unsigned long long)Round,
                  endpointToString(Fleet[I]).c_str(),
                  (unsigned long long)Stats.Epoch,
                  Summaries ? Summaries->Value : 0.0,
                  Posterior ? std::to_string(*Posterior).c_str() : "n/a",
                  Engines[I].active().size());
      const std::string Alerts = Engines[I].renderText();
      if (!Alerts.empty())
        std::printf("%s", Alerts.c_str());
    }
    std::fflush(stdout);
    if (Once)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        IntervalMs ? IntervalMs : 1));
  }
  return 0;
}

/// Writes demo evidence: three heap images of the canonical scripted
/// overflow (workload/ScriptedBugs.h) under different heap seeds
/// (enough for §4 isolation) plus one failed-run summary.  Exists so
/// the exchange can be exercised end-to-end from a clean checkout
/// (CI's collaborative smoke step).  With \p Hardware the images carry
/// an injected row-cluster DRAM fault over a bug-free trace instead —
/// evidence that must classify as a hardware-page report, never a site
/// patch (CI's hardware-fault smoke step).
static int recordEvidence(const std::string &OutDir, bool Hardware) {
  std::vector<HeapImage> Images;
  if (Hardware) {
    FaultPlan Fault;
    Fault.Kind = FaultKind::RowCluster;
    Fault.TriggerAllocation = 150;
    Fault.PatternSeed = 17;
    Images = scriptedHardwareEvidenceImages(/*Count=*/3, Fault);
  } else {
    Images = scriptedEvidenceImages(/*Count=*/3, /*OverflowBytes=*/9);
  }
  for (unsigned I = 0; I < Images.size(); ++I) {
    const std::string ImagePath =
        OutDir + "/run" + std::to_string(I) + ".xhi";
    if (!saveHeapImage(Images[I], ImagePath)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", ImagePath.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu slots)\n", ImagePath.c_str(),
                Images[I].totalSlots());
  }
  // The same evidence as one compressed bundle container (delta-encoded
  // members + LZ stream, PR 10) — what a deployment would actually ship
  // or archive, and what CI's size-regression step budgets.
  const std::string BundlePath = OutDir + "/evidence.xib";
  if (!saveImageBundle(Images, BundlePath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", BundlePath.c_str());
    return 1;
  }
  std::vector<uint8_t> BundleBytes;
  readFileBytes(BundlePath, BundleBytes);
  std::printf("wrote %s (%zu images, %zu bytes compressed)\n",
              BundlePath.c_str(), Images.size(), BundleBytes.size());
  DiagnosisPipeline Pipeline;
  const RunSummary Summary =
      Pipeline.summarize(Images.front(), /*Failed=*/true);
  const std::string SummaryPath = OutDir + "/run0.xrs";
  if (!writeFileBytes(SummaryPath, serializeRunSummary(Summary))) {
    std::fprintf(stderr, "error: cannot write '%s'\n", SummaryPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu overflow trial(s), %zu dangling trial(s))\n",
              SummaryPath.c_str(), Summary.OverflowTrials.size(),
              Summary.DanglingTrials.size());
  return 0;
}

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  const std::string Command = Argv[1];
  if (Command == "inspect")
    return inspectFile(Argv[2], /*Report=*/false);
  if (Command == "report")
    return inspectFile(Argv[2], /*Report=*/true);
  if (Command == "image")
    return summarizeImage(Argv[2]);
  if (Command == "merge" || Command == "diagnose") {
    if (Argc < 4)
      return usage();
    std::vector<std::string> Inputs;
    bool Json = false;
    for (int I = 3; I < Argc; ++I) {
      if (Command == "diagnose" && std::strcmp(Argv[I], "--json") == 0)
        Json = true;
      else
        Inputs.push_back(Argv[I]);
    }
    if (Inputs.empty())
      return usage();
    return Command == "merge" ? mergePatches(Argv[2], Inputs)
                              : diagnoseImages(Argv[2], Inputs, Json);
  }
  if (Command == "serve") {
    std::vector<std::string> Options;
    for (int I = 3; I < Argc; ++I)
      Options.push_back(Argv[I]);
    return serveCommand(Argv[2], Options);
  }
  if (Command == "submit") {
    if (Argc < 4)
      return usage();
    std::vector<std::string> Inputs;
    for (int I = 3; I < Argc; ++I)
      Inputs.push_back(Argv[I]);
    return submitEvidence(Argv[2], Inputs);
  }
  if (Command == "fetch-patches") {
    if (Argc < 4)
      return usage();
    bool RequireNonEmpty = false;
    for (int I = 4; I < Argc; ++I) {
      if (std::strcmp(Argv[I], "--require-nonempty") == 0)
        RequireNonEmpty = true;
      else
        return usage();
    }
    return fetchPatchesCommand(Argv[2], Argv[3], RequireNonEmpty);
  }
  if (Command == "shutdown")
    return shutdownCommand(Argv[2]);
  if (Command == "stats")
    return statsCommand(Argv[2]);
  if (Command == "watch") {
    std::vector<std::string> Options;
    for (int I = 3; I < Argc; ++I)
      Options.push_back(Argv[I]);
    return watchCommand(Argv[2], Options);
  }
  if (Command == "record") {
    bool Hardware = false;
    for (int I = 3; I < Argc; ++I)
      if (std::strcmp(Argv[I], "--hardware") == 0)
        Hardware = true;
    return recordEvidence(Argv[2], Hardware);
  }
  return usage();
}

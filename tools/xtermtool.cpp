//===- tools/xtermtool.cpp - Exterminator patch & image utility -----------------===//
//
// Command-line companion to the Exterminator runtime:
//
//   xtermtool inspect  <patch.xpt>             list a patch file's contents
//   xtermtool report   <patch.xpt>             render it as a bug report (§9)
//   xtermtool merge    <out.xpt> <in.xpt>...   collaborative max-merge (§6.4)
//   xtermtool image    <dump.xhi>              summarize a heap image (§3.4)
//   xtermtool diagnose <out.xpt> <dump.xhi>... run isolation over images
//
// The tool is a thin client of the runtime: diagnose feeds images (v1 or
// v2) straight into the DiagnosisPipeline — the same ingestion point the
// mode drivers use — and writes out the derived patches plus the report.
//
//===----------------------------------------------------------------------===//

#include "diagnose/DiagnosisPipeline.h"
#include "diefast/Canary.h"
#include "heapimage/HeapImageIO.h"
#include "patch/PatchIO.h"
#include "patch/PatchMerge.h"
#include "report/PatchReport.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace exterminator;

static int usage() {
  std::fprintf(stderr,
               "usage: xtermtool inspect  <patch.xpt>\n"
               "       xtermtool report   <patch.xpt>\n"
               "       xtermtool merge    <out.xpt> <in.xpt>...\n"
               "       xtermtool image    <dump.xhi>\n"
               "       xtermtool diagnose <out.xpt> <dump.xhi>...\n");
  return 2;
}

static int inspectPatches(const std::string &Path) {
  PatchSet Patches;
  if (!loadPatchSet(Path, Patches)) {
    std::fprintf(stderr, "error: cannot load patch file '%s'\n",
                 Path.c_str());
    return 1;
  }
  std::printf("%s: %zu pad(s), %zu front pad(s), %zu deferral(s)\n",
              Path.c_str(), Patches.padCount(), Patches.frontPadCount(),
              Patches.deferralCount());
  for (const PadPatch &Pad : Patches.pads())
    std::printf("  pad      site=0x%08x  bytes=%u\n", Pad.AllocSite,
                Pad.PadBytes);
  for (const FrontPadPatch &Pad : Patches.frontPads())
    std::printf("  frontpad site=0x%08x  bytes=%u\n", Pad.AllocSite,
                Pad.PadBytes);
  for (const DeferralPatch &Deferral : Patches.deferrals())
    std::printf("  deferral alloc=0x%08x free=0x%08x  ticks=%llu\n",
                Deferral.AllocSite, Deferral.FreeSite,
                static_cast<unsigned long long>(Deferral.DeferTicks));
  return 0;
}

static int reportPatches(const std::string &Path) {
  PatchSet Patches;
  if (!loadPatchSet(Path, Patches)) {
    std::fprintf(stderr, "error: cannot load patch file '%s'\n",
                 Path.c_str());
    return 1;
  }
  std::fputs(generatePatchReport(Patches).c_str(), stdout);
  return 0;
}

static int mergePatches(const std::string &Out,
                        const std::vector<std::string> &Inputs) {
  if (!mergePatchFiles(Inputs, Out)) {
    std::fprintf(stderr, "error: merge failed (missing or malformed "
                         "input, or unwritable output)\n");
    return 1;
  }
  PatchSet Merged;
  loadPatchSet(Out, Merged);
  std::printf("merged %zu file(s) -> %s (%zu pads, %zu deferrals)\n",
              Inputs.size(), Out.c_str(), Merged.padCount(),
              Merged.deferralCount());
  return 0;
}

static int summarizeImage(const std::string &Path) {
  HeapImage Image;
  if (!loadHeapImage(Path, Image)) {
    std::fprintf(stderr, "error: cannot load heap image '%s'\n",
                 Path.c_str());
    return 1;
  }
  std::printf("%s: format v%u, allocation time %llu, canary 0x%08x, "
              "M = %.1f, p = %.2f\n",
              Path.c_str(), Image.SourceFormatVersion,
              static_cast<unsigned long long>(Image.AllocationTime),
              Image.CanaryValue, Image.Multiplier,
              Image.CanaryFillProbability);

  const Canary HeapCanary = Canary::fromValue(Image.CanaryValue);
  size_t Live = 0, Freed = 0, Canaried = 0, Bad = 0, Corrupt = 0;
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      const uint8_t Flags = Image.slotFlags(Loc);
      if (Flags & SlotFlagBad)
        ++Bad;
      else if (Flags & SlotFlagAllocated)
        ++Live;
      else if (Image.objectId(Loc))
        ++Freed;
      if (!(Flags & SlotFlagCanaried) ||
          ((Flags & SlotFlagAllocated) && !(Flags & SlotFlagBad)))
        continue;
      ++Canaried;
      if (Image.contents(Loc).findCorruption(HeapCanary)) {
        ++Corrupt;
        std::printf("  CORRUPT slot: miniheap objsize=%llu slot=%u "
                    "object=%llu alloc-site=0x%08x free-site=0x%08x\n",
                    static_cast<unsigned long long>(Mini.ObjectSize), S,
                    static_cast<unsigned long long>(Image.objectId(Loc)),
                    Image.allocSite(Loc), Image.freeSite(Loc));
      }
    }
  }
  std::printf("%zu miniheap(s), %zu slot(s): %zu live, %zu freed, "
              "%zu canaried, %zu quarantined, %zu corrupt\n",
              Image.miniheapCount(), Image.totalSlots(), Live, Freed,
              Canaried, Bad, Corrupt);
  return 0;
}

static int diagnoseImages(const std::string &Out,
                          const std::vector<std::string> &Inputs) {
  ImageEvidence Evidence;
  for (const std::string &Path : Inputs) {
    HeapImage Image;
    if (!loadHeapImage(Path, Image)) {
      std::fprintf(stderr, "error: cannot load heap image '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::printf("loaded %s (format v%u, %zu slots, allocation time "
                "%llu)\n",
                Path.c_str(), Image.SourceFormatVersion,
                Image.totalSlots(),
                static_cast<unsigned long long>(Image.AllocationTime));
    Evidence.Primary.push_back(std::move(Image));
  }
  if (Evidence.Primary.size() < 2) {
    std::fprintf(stderr, "error: diagnosis needs at least two images of "
                         "differently-randomized heaps\n");
    return 1;
  }

  DiagnosisPipeline Pipeline;
  const IsolationResult Result = Pipeline.submitImages(Evidence);
  std::printf("%zu overflow candidate(s), %zu dangling finding(s)\n",
              Result.Overflows.size(), Result.Danglings.size());
  std::fputs(Pipeline.report().c_str(), stdout);
  if (!savePatchSet(Pipeline.patches(), Out)) {
    std::fprintf(stderr, "error: cannot write patch file '%s'\n",
                 Out.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu pads, %zu front pads, %zu deferrals)\n",
              Out.c_str(), Pipeline.patches().padCount(),
              Pipeline.patches().frontPadCount(),
              Pipeline.patches().deferralCount());
  return 0;
}

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  const std::string Command = Argv[1];
  if (Command == "inspect")
    return inspectPatches(Argv[2]);
  if (Command == "report")
    return reportPatches(Argv[2]);
  if (Command == "image")
    return summarizeImage(Argv[2]);
  if (Command == "merge" || Command == "diagnose") {
    if (Argc < 4)
      return usage();
    std::vector<std::string> Inputs;
    for (int I = 3; I < Argc; ++I)
      Inputs.push_back(Argv[I]);
    return Command == "merge" ? mergePatches(Argv[2], Inputs)
                              : diagnoseImages(Argv[2], Inputs);
  }
  return usage();
}

//===- bench/fig7_overhead.cpp - Figure 7 --------------------------------------===//
//
// Regenerates Figure 7: runtime overhead of Exterminator (DieFast plus
// the correcting allocator, non-replicated mode) normalized to the GNU
// libc allocator, across the allocation-intensive suite and the
// SPECint2000-like suite.
//
// The paper reports: 0% (186.crafty) to 132% (cfrac) overhead, geometric
// mean 25.1% overall, 81.2% on the allocation-intensive suite, 7.2% on
// SPECint.  Absolute times differ from the paper's 2007 Xeon; the shape —
// allocation-intensive programs pay heavily, compute-bound programs pay
// little — is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "alloc/BaselineAllocator.h"
#include "correct/CorrectingHeap.h"
#include "support/Statistics.h"
#include "workload/SyntheticSuite.h"

#include <cstdio>
#include <string>

using namespace exterminator;
using namespace benchreport;

namespace {

/// Median-of-N wall time for one workload over one allocator stack.
double measure(SyntheticWorkload &Work, bool UseExterminator,
               uint64_t Seed) {
  constexpr int Repeats = 3;
  double Best = 1e30;
  for (int R = 0; R < Repeats; ++R) {
    double Seconds = timeSeconds([&] {
      CallContext Context;
      if (UseExterminator) {
        DieFastConfig Config;
        Config.Heap.Seed = Seed + R;
        CorrectingHeap Heap(Config, &Context);
        AllocatorHandle Handle(Heap, Context, &Heap.diefast().heap());
        Work.run(Handle, /*InputSeed=*/42);
      } else {
        BaselineAllocator Heap;
        AllocatorHandle Handle(Heap, Context, nullptr);
        Work.run(Handle, /*InputSeed=*/42);
      }
    });
    if (Seconds < Best)
      Best = Seconds;
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: fig7_overhead [--json FILE]\n");
      return 2;
    }
  }

  heading("Figure 7: Exterminator runtime overhead vs GNU libc allocator");
  note("normalized execution time (1.00 = baseline allocator)");

  Table Out({"benchmark", "suite", "baseline(s)", "exterminator(s)",
             "normalized"});
  std::vector<double> AllocIntensive, SpecLike, All;
  JsonWriter Json;
  Json.beginObject();
  Json.field("bench", "fig7_overhead");
  Json.field("schema_version", 1);
  Json.beginArray("results");

  for (const SyntheticProfile &Profile : figure7Profiles()) {
    SyntheticWorkload Work(Profile);
    const double Base = measure(Work, /*UseExterminator=*/false, 101);
    const double Ext = measure(Work, /*UseExterminator=*/true, 101);
    const double Normalized = Ext / Base;
    (Profile.AllocationIntensive ? AllocIntensive : SpecLike)
        .push_back(Normalized);
    All.push_back(Normalized);
    Out.addRow({Profile.Name,
                Profile.AllocationIntensive ? "alloc-intensive" : "SPECint",
                fmt("%.4f", Base), fmt("%.4f", Ext),
                fmt("%.2f", Normalized)});
    Json.beginObject();
    Json.field("name", Profile.Name);
    Json.field("suite",
               Profile.AllocationIntensive ? "alloc-intensive" : "SPECint");
    Json.field("baseline_seconds", Base);
    Json.field("exterminator_seconds", Ext);
    Json.field("normalized", Normalized);
    Json.endObject();
  }
  Json.endArray();
  Out.print();

  const double GeoAlloc = geometricMean(AllocIntensive);
  const double GeoSpec = geometricMean(SpecLike);
  const double GeoAll = geometricMean(All);
  note("geomean normalized: alloc-intensive %.2f (paper 1.81), "
       "SPECint %.2f (paper 1.07), overall %.2f (paper 1.25)",
       GeoAlloc, GeoSpec, GeoAll);
  note("shape check: alloc-intensive overhead %s SPECint overhead",
       GeoAlloc > GeoSpec ? "exceeds" : "DOES NOT exceed");

  Json.field("geomean_alloc_intensive", GeoAlloc);
  Json.field("geomean_specint", GeoSpec);
  Json.field("geomean_overall", GeoAll);
  Json.endObject();
  if (!JsonPath.empty()) {
    if (!Json.writeFile(JsonPath)) {
      std::fprintf(stderr, "failed to write %s\n", JsonPath.c_str());
      return 1;
    }
    note("wrote %s", JsonPath.c_str());
  }
  return 0;
}

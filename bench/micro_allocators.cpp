//===- bench/micro_allocators.cpp - allocator microbenchmarks -------------------===//
//
// Google-benchmark microbenchmarks of the allocator stack: baseline
// (GNU-libc stand-in), DieHard, DieFast, and the correcting allocator
// with and without loaded patches.  These are the per-operation costs
// underlying Figure 7's whole-program overheads.
//
//===----------------------------------------------------------------------===//

#include "alloc/BaselineAllocator.h"
#include "correct/CorrectingHeap.h"

#include <benchmark/benchmark.h>

using namespace exterminator;

namespace {

/// Malloc/free pairs over a rotating size mix.
template <typename HeapT>
void churn(HeapT &Heap, benchmark::State &State) {
  static constexpr size_t Sizes[] = {16, 24, 32, 48, 64, 96, 128, 256};
  size_t Index = 0;
  for (auto _ : State) {
    void *Ptr = Heap.allocate(Sizes[Index++ % 8]);
    benchmark::DoNotOptimize(Ptr);
    Heap.deallocate(Ptr);
  }
}

void BM_Baseline(benchmark::State &State) {
  BaselineAllocator Heap;
  churn(Heap, State);
}

void BM_DieHard(benchmark::State &State) {
  DieHardConfig Config;
  Config.Seed = 1;
  DieHardHeap Heap(Config);
  churn(Heap, State);
}

void BM_DieFast(benchmark::State &State) {
  DieFastConfig Config;
  Config.Heap.Seed = 1;
  DieFastHeap Heap(Config);
  churn(Heap, State);
}

void BM_DieFastCumulative(benchmark::State &State) {
  DieFastConfig Config;
  Config.Heap.Seed = 1;
  Config.CanaryFillProbability = 0.5;
  DieFastHeap Heap(Config);
  churn(Heap, State);
}

void BM_Correcting(benchmark::State &State) {
  CallContext Context;
  DieFastConfig Config;
  Config.Heap.Seed = 1;
  CorrectingHeap Heap(Config, &Context);
  churn(Heap, State);
}

void BM_CorrectingWithPatches(benchmark::State &State) {
  CallContext Context;
  DieFastConfig Config;
  Config.Heap.Seed = 1;
  CorrectingHeap Heap(Config, &Context);
  // A populated patch table: lookups must still be O(1).
  PatchSet Patches;
  for (SiteId Site = 1; Site <= 500; ++Site) {
    Patches.addPad(Site, Site % 64);
    Patches.addDeferral(Site, Site + 1, Site % 128);
  }
  Heap.setPatches(Patches);
  churn(Heap, State);
}

} // namespace

BENCHMARK(BM_Baseline);
BENCHMARK(BM_DieHard);
BENCHMARK(BM_DieFast);
BENCHMARK(BM_DieFastCumulative);
BENCHMARK(BM_Correcting);
BENCHMARK(BM_CorrectingWithPatches);

BENCHMARK_MAIN();

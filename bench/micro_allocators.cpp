//===- bench/micro_allocators.cpp - allocator microbenchmarks -------------------===//
//
// Malloc/free hot-path microbenchmarks of the allocator stack: baseline
// (GNU-libc stand-in), DieHard, DieFast, and the correcting allocator
// with a loaded patch table.  These are the per-operation costs
// underlying Figure 7's whole-program overheads.
//
// Every randomized heap runs each scenario twice: once on the PR-1 fast
// paths (offset-table placement, page-directory pointer lookup, SIMD
// canaries, fused verify+zero) and once with DieHardConfig::LegacyHotPath
// plus scalar canary dispatch, which reinstate the original O(n)
// implementation.  Both measurements land in one run, so every speedup
// column is self-contained and machine-checkable.
//
// Scenarios:
//  * hot-pairs      — immediate malloc/free pairs on an empty heap, the
//                     shape of tight allocation loops (all state cached).
//  * resident-churn — 20k-object resident heap, each pair frees and
//                     replaces a pseudo-random resident object: the
//                     long-running-server shape.  Random placement makes
//                     this DRAM-bound, which bounds any algorithmic win.
//  * large-pairs    — 2-8 KiB objects: big enough that §3.3's
//                     per-malloc/per-free canary sweeps dominate, small
//                     enough to stay cache-resident — the SIMD kernels'
//                     scenario.  (Past ~32 KiB both kernels saturate
//                     DRAM bandwidth and converge.)
//  * op:*           — isolated hot-path operations (pointer lookup,
//                     placement, canary fill/verify) for the per-op cost
//                     trajectory.
//  * mt-hot-pairs   — N threads of immediate malloc/free pairs with
//  * mt-churn         cross-thread frees, through the PR-7 concurrent
//                     front-end in both its modes: per-thread caches
//                     ("cached") and one mutex around the backend
//                     ("global-lock").  Alongside wall time the run
//                     records backend lock acquisitions per operation —
//                     the machine-independent decontention witness,
//                     since wall-clock scaling saturates at the host's
//                     core count (recorded in the JSON as
//                     hardware_threads).
//
// Usage:
//   micro_allocators [--json FILE] [--smoke]
//
// --json writes the BENCH_hotpath.json document (schema documented in
// ROADMAP.md); --smoke shrinks the workload for CI smoke runs.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "alloc/BaselineAllocator.h"
#include "alloc/ConcurrentAllocator.h"
#include "correct/CorrectingHeap.h"
#include "heapimage/HeapImageIO.h"
#include "runtime/ConcurrentStress.h"
#include "runtime/Exterminator.h"
#include "workload/EspressoWorkload.h"
#include "workload/SquidWorkload.h"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace exterminator;
using namespace benchreport;

namespace {

struct Options {
  uint64_t Scale = 1; // divides every iteration count (--smoke: 16)
  std::string JsonPath;
};

const std::vector<size_t> MixedSizes = {16, 24,  32,  48,  64, 96,
                                        128, 192, 256, 512, 1024};
const std::vector<size_t> LargeSizes = {2048, 4096, 8192};

struct Measurement {
  std::string Scenario;
  std::string Name;
  std::string Mode; // "fast" or "legacy"
  double NsPerOp = 0;
  double OpsPerSec = 0;
};

/// Best-of-5 wall time for \p Fn, normalized per \p Ops operations
/// (minimum over repetitions rejects scheduler noise).
template <typename FnT> double bestNsPerOp(uint64_t Ops, FnT Fn) {
  double Best = 1e30;
  for (int Rep = 0; Rep < 5; ++Rep)
    Best = std::min(Best, timeSeconds(Fn));
  return Best * 1e9 / static_cast<double>(Ops);
}

/// Immediate malloc/free pairs (tight-loop shape).
double hotPairs(Allocator &Heap, const std::vector<size_t> &Sizes,
                uint64_t Ops) {
  return bestNsPerOp(Ops, [&] {
    for (uint64_t It = 0; It < Ops; ++It) {
      void *Ptr = Heap.allocate(Sizes[It % Sizes.size()]);
      Heap.deallocate(Ptr);
    }
  });
}

/// Free-and-replace over a resident live set (server shape).
double residentChurn(Allocator &Heap, const std::vector<size_t> &Sizes,
                     size_t LiveTarget, uint64_t Ops) {
  std::vector<void *> Live;
  Live.reserve(LiveTarget);
  for (size_t I = 0; Live.size() < LiveTarget; ++I)
    if (void *Ptr = Heap.allocate(Sizes[I % Sizes.size()]))
      Live.push_back(Ptr);
  const double Ns = bestNsPerOp(Ops, [&] {
    for (uint64_t It = 0; It < Ops; ++It) {
      const size_t Idx = (It * 0x9E3779B97F4A7C15ull) % Live.size();
      Heap.deallocate(Live[Idx]);
      Live[Idx] = Heap.allocate(Sizes[It % Sizes.size()]);
    }
  });
  for (void *Ptr : Live)
    Heap.deallocate(Ptr);
  return Ns;
}

PatchSet loadedPatches() {
  // A populated patch table: lookups must still be O(1).
  PatchSet Patches;
  for (SiteId Site = 1; Site <= 500; ++Site) {
    Patches.addPad(Site, Site % 64);
    Patches.addDeferral(Site, Site + 1, Site % 128);
  }
  return Patches;
}

DieHardConfig heapConfig(bool Legacy) {
  DieHardConfig Config;
  Config.Seed = 1;
  Config.LegacyHotPath = Legacy;
  return Config;
}

/// Runs \p Scenario for the named allocator in fast or legacy mode.
/// Legacy also pins the canary kernels to the pre-PR-1 scalar code.
Measurement runScenario(const std::string &Scenario, const std::string &Name,
                        bool Legacy, const Options &Opts) {
  canary_dispatch::force(Legacy ? canary_dispatch::Mode::Scalar
                                : canary_dispatch::Mode::Auto);

  const std::vector<size_t> &Sizes =
      Scenario == "large-pairs" ? LargeSizes : MixedSizes;
  uint64_t Ops = Scenario == "large-pairs"      ? 300000
                 : Scenario == "resident-churn" ? 400000
                                                : 1000000;
  Ops /= Opts.Scale;
  const size_t LiveTarget = 20000 / (Scenario == "resident-churn"
                                         ? static_cast<size_t>(Opts.Scale)
                                         : 1);

  auto Measure = [&](Allocator &Heap) {
    return Scenario == "resident-churn"
               ? residentChurn(Heap, Sizes, LiveTarget, Ops)
               : hotPairs(Heap, Sizes, Ops);
  };

  double Ns = 0;
  if (Name == "baseline") {
    BaselineAllocator Heap;
    Ns = Measure(Heap);
  } else if (Name == "diehard") {
    DieHardHeap Heap(heapConfig(Legacy));
    Ns = Measure(Heap);
  } else if (Name == "diefast") {
    DieFastConfig Config;
    Config.Heap = heapConfig(Legacy);
    DieFastHeap Heap(Config);
    Ns = Measure(Heap);
  } else if (Name == "diefast-cumulative") {
    DieFastConfig Config;
    Config.Heap = heapConfig(Legacy);
    Config.CanaryFillProbability = 0.5;
    DieFastHeap Heap(Config);
    Ns = Measure(Heap);
  } else if (Name == "correcting-patched") {
    CallContext Context;
    DieFastConfig Config;
    Config.Heap = heapConfig(Legacy);
    CorrectingHeap Heap(Config, &Context);
    Heap.setPatches(loadedPatches());
    Ns = Measure(Heap);
    Heap.flushDeferrals();
  } else {
    std::fprintf(stderr, "unknown allocator %s\n", Name.c_str());
    std::abort();
  }
  canary_dispatch::force(canary_dispatch::Mode::Auto);

  Measurement M;
  M.Scenario = Scenario;
  M.Name = Name;
  M.Mode = Legacy ? "legacy" : "fast";
  M.NsPerOp = Ns;
  M.OpsPerSec = 1e9 / Ns;
  return M;
}

/// Isolated hot-path operations; each returns fast and legacy ns/op.
std::vector<Measurement> runOpBenches(const Options &Opts) {
  std::vector<Measurement> Out;
  const uint64_t Ops = 2000000 / Opts.Scale;
  const size_t LiveTarget = 20000 / static_cast<size_t>(Opts.Scale);

  auto Record = [&](const std::string &Scenario, const std::string &Name,
                    bool Legacy, double Ns) {
    Out.push_back(Measurement{Scenario, Name, Legacy ? "legacy" : "fast", Ns,
                              1e9 / Ns});
  };

  // Pointer lookup (free-path resolution) over a resident heap: page
  // directory vs sorted-range binary search.
  for (int Legacy = 0; Legacy < 2; ++Legacy) {
    DieHardHeap Heap(heapConfig(Legacy));
    std::vector<void *> Live;
    for (size_t I = 0; Live.size() < LiveTarget; ++I)
      if (void *Ptr = Heap.allocate(MixedSizes[I % MixedSizes.size()]))
        Live.push_back(Ptr);
    volatile size_t Sink = 0;
    const double Ns = bestNsPerOp(Ops, [&] {
      size_t Acc = 0;
      for (uint64_t It = 0; It < Ops; ++It) {
        const size_t Idx = (It * 0x9E3779B97F4A7C15ull) % Live.size();
        Acc += Heap.findObject(Live[Idx])->SlotIndex;
      }
      Sink = Sink + Acc;
    });
    Record("op:pointer-lookup", "diehard", Legacy, Ns);
  }

  // Placement (reserve + resolved free): offset-table resolve vs linear
  // miniheap walk, over a grown multi-slab heap.
  for (int Legacy = 0; Legacy < 2; ++Legacy) {
    DieHardHeap Heap(heapConfig(Legacy));
    std::vector<void *> Live;
    for (size_t I = 0; Live.size() < LiveTarget; ++I)
      if (void *Ptr = Heap.allocate(MixedSizes[I % MixedSizes.size()]))
        Live.push_back(Ptr);
    const double Ns = bestNsPerOp(Ops, [&] {
      for (uint64_t It = 0; It < Ops; ++It) {
        const ObjectRef Ref =
            Heap.reserveSlot(static_cast<unsigned>(It % 8));
        Heap.deallocateResolved(Ref);
      }
    });
    Record("op:placement", "diehard", Legacy, Ns);
  }

  // Canary kernels on cached buffers (SIMD dispatch vs scalar).
  for (size_t Size : {size_t(256), size_t(4096)}) {
    RandomGenerator Rng(7);
    const Canary C = Canary::random(Rng);
    std::vector<uint8_t> Buffer(Size);
    const uint64_t KernelOps = Ops * 256 / Size;
    for (int Legacy = 0; Legacy < 2; ++Legacy) {
      canary_dispatch::force(Legacy ? canary_dispatch::Mode::Scalar
                                    : canary_dispatch::Mode::Auto);
      volatile bool Sink = false;
      const double FillNs = bestNsPerOp(KernelOps, [&] {
        for (uint64_t It = 0; It < KernelOps; ++It)
          C.fill(Buffer.data(), Size);
      });
      const double VerifyNs = bestNsPerOp(KernelOps, [&] {
        bool Ok = true;
        for (uint64_t It = 0; It < KernelOps; ++It)
          Ok &= C.verify(Buffer.data(), Size);
        Sink = Ok;
      });
      Record(fmt("op:canary-fill-%zu", Size), "canary", Legacy, FillNs);
      Record(fmt("op:canary-verify-%zu", Size), "canary", Legacy, VerifyNs);
    }
    canary_dispatch::force(canary_dispatch::Mode::Auto);
  }
  return Out;
}

/// Pairs each op scenario's fast and legacy measurements into a
/// legacy/fast speedup, in first-seen scenario order.
std::vector<std::pair<std::string, double>>
opSpeedups(const std::vector<Measurement> &OpResults) {
  std::vector<std::pair<std::string, double>> Out;
  for (const Measurement &Fast : OpResults) {
    if (Fast.Mode != "fast")
      continue;
    for (const Measurement &Legacy : OpResults)
      if (Legacy.Mode == "legacy" && Legacy.Scenario == Fast.Scenario) {
        Out.emplace_back(Fast.Scenario, Legacy.NsPerOp / Fast.NsPerOp);
        break;
      }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Contended scenarios (PR 7)
//===----------------------------------------------------------------------===//

struct MtMeasurement {
  std::string Scenario; // "mt-hot-pairs" or "mt-churn"
  unsigned Threads = 1;
  std::string Mode; // "cached" or "global-lock"
  double NsPerOp = 0;
  double OpsPerSec = 0;
  /// Backend lock acquisitions per operation during the measured run:
  /// ~2/MagazineSize for the cached mode, exactly 1 for global-lock.
  double LockAcquiresPerOp = 0;
  /// Header-stamp mismatches (must be 0: the bench doubles as a
  /// memory-integrity check).
  uint64_t PatternFaults = 0;
};

/// One contended run: N workers over one shared ConcurrentAllocator via
/// runConcurrentStress, best-of-3 wall time (thread startup noise is
/// larger than single-thread loop noise, but so are the run times).
MtMeasurement runMtScenario(const std::string &Scenario, unsigned Threads,
                            bool GlobalLock, const Options &Opts) {
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap.Seed = 1;
  Cfg.MagazineSize = 32;
  Cfg.GlobalLockBaseline = GlobalLock;

  ConcurrentStressConfig Stress;
  Stress.Threads = Threads;
  Stress.OpsPerThread =
      (Scenario == "mt-churn" ? 100000 : 200000) / Opts.Scale;
  Stress.ResidentPerThread =
      Scenario == "mt-churn" ? 2000 / static_cast<size_t>(Opts.Scale) : 0;
  Stress.CrossFreeFraction = 0.25;
  Stress.Seed = 1;

  MtMeasurement M;
  M.Scenario = Scenario;
  M.Threads = Threads;
  M.Mode = GlobalLock ? "global-lock" : "cached";

  double BestSeconds = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    ConcurrentAllocator Alloc(Cfg);
    const ConcurrentStressResult R = runConcurrentStress(Alloc, Stress);
    // Allocate + free for every allocation: 2 ops each.
    const uint64_t Ops = 2 * R.Allocations;
    const uint64_t Locks = Alloc.backendLockAcquires(); // before flushAll
    Alloc.flushAll();
    M.PatternFaults += R.PatternFaults;
    if (R.Seconds < BestSeconds) {
      BestSeconds = R.Seconds;
      M.NsPerOp = R.Seconds * 1e9 / static_cast<double>(Ops);
      M.OpsPerSec = static_cast<double>(Ops) / R.Seconds;
      M.LockAcquiresPerOp =
          static_cast<double>(Locks) / static_cast<double>(Ops);
    }
  }
  return M;
}

/// Runs both contended scenarios across the thread sweep in both modes.
std::vector<MtMeasurement> runMtBenches(const Options &Opts) {
  std::vector<MtMeasurement> Out;
  for (const char *Scenario : {"mt-hot-pairs", "mt-churn"})
    for (unsigned Threads : {1u, 2u, 4u, 8u})
      for (bool GlobalLock : {false, true})
        Out.push_back(runMtScenario(Scenario, Threads, GlobalLock, Opts));
  return Out;
}

/// global-lock ns / cached ns at matching (scenario, threads).
std::vector<std::pair<std::string, double>>
mtSpeedups(const std::vector<MtMeasurement> &MtResults) {
  std::vector<std::pair<std::string, double>> Out;
  for (const MtMeasurement &Cached : MtResults) {
    if (Cached.Mode != "cached")
      continue;
    for (const MtMeasurement &Locked : MtResults)
      if (Locked.Mode == "global-lock" &&
          Locked.Scenario == Cached.Scenario &&
          Locked.Threads == Cached.Threads) {
        Out.emplace_back(fmt("%s/%ut", Cached.Scenario.c_str(),
                             Cached.Threads),
                         Locked.NsPerOp / Cached.NsPerOp);
        break;
      }
  }
  return Out;
}

/// Heap-image format footprint: serialized bytes of the same image in
/// the legacy v1 layout and the columnar v2 layout (PR 2), on the
/// example workloads the diagnosis side processes.
struct ImageSizeSample {
  std::string Workload;
  size_t V1Bytes = 0;
  size_t V2Bytes = 0;
  double reduction() const {
    return V2Bytes ? static_cast<double>(V1Bytes) / V2Bytes : 0.0;
  }
};

static std::vector<ImageSizeSample> measureImageSizes() {
  std::vector<ImageSizeSample> Samples;
  ExterminatorConfig Config;
  EspressoWorkload Espresso;
  SquidWorkload Squid;
  struct Case {
    const char *Name;
    Workload *Work;
    uint64_t Input;
  } Cases[] = {{"espresso", &Espresso, 5}, {"squid", &Squid, 1}};
  for (const Case &C : Cases) {
    const HeapImage Image =
        runWorkloadOnce(*C.Work, C.Input, /*HeapSeed=*/11, Config,
                        PatchSet())
            .FinalImage;
    ImageSizeSample Sample;
    Sample.Workload = C.Name;
    Sample.V1Bytes = serializeHeapImageV1(Image).size();
    Sample.V2Bytes = serializeHeapImage(Image).size();
    Samples.push_back(std::move(Sample));
  }
  return Samples;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      Opts.JsonPath = Argv[++I];
    } else if (Arg == "--smoke") {
      Opts.Scale = 16;
    } else {
      std::fprintf(stderr, "usage: micro_allocators [--json FILE] [--smoke]\n");
      return 2;
    }
  }

  heading("Hot-path microbenchmarks (ns per malloc/free pair)");
  note("canary dispatch (auto): %s", canary_dispatch::activeName());

  const char *Scenarios[] = {"hot-pairs", "resident-churn", "large-pairs"};
  const char *Heaps[] = {"diehard", "diefast", "diefast-cumulative",
                         "correcting-patched"};

  std::vector<Measurement> Results;
  Results.push_back(runScenario("hot-pairs", "baseline", false, Opts));
  Results.push_back(runScenario("resident-churn", "baseline", false, Opts));
  Results.push_back(runScenario("large-pairs", "baseline", false, Opts));

  // speedups[scenario][allocator] = legacy ns / fast ns
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      Speedups;
  for (const char *Scenario : Scenarios) {
    Speedups.emplace_back(Scenario,
                          std::vector<std::pair<std::string, double>>{});
    for (const char *Name : Heaps) {
      Measurement Fast = runScenario(Scenario, Name, false, Opts);
      Measurement Legacy = runScenario(Scenario, Name, true, Opts);
      Speedups.back().second.emplace_back(Name,
                                          Legacy.NsPerOp / Fast.NsPerOp);
      Results.push_back(std::move(Fast));
      Results.push_back(std::move(Legacy));
    }
  }

  std::vector<Measurement> OpResults = runOpBenches(Opts);

  Table Report({"scenario", "allocator", "mode", "ns/op", "Mops/s"});
  for (const std::vector<Measurement> *Set : {&Results, &OpResults})
    for (const Measurement &M : *Set)
      Report.addRow({M.Scenario, M.Name, M.Mode, fmt("%.1f", M.NsPerOp),
                     fmt("%.2f", M.OpsPerSec / 1e6)});
  Report.print();

  heading("Speedup: fast hot path vs legacy (same binary, same run)");
  Table SpeedupTable({"scenario", "allocator", "speedup"});
  double Headline = 0;
  for (const auto &[Scenario, PerHeap] : Speedups)
    for (const auto &[Name, Speedup] : PerHeap) {
      SpeedupTable.addRow({Scenario, Name, fmt("%.2fx", Speedup)});
      if (Scenario == std::string("large-pairs") &&
          Name == std::string("diefast"))
        Headline = Speedup;
    }
  // Op-level speedups: match each scenario's fast and legacy rows.
  const std::vector<std::pair<std::string, double>> OpSpeedups =
      opSpeedups(OpResults);
  for (const auto &[Scenario, Speedup] : OpSpeedups)
    SpeedupTable.addRow({Scenario, "", fmt("%.2fx", Speedup)});
  SpeedupTable.print();
  note("headline (diefast large-pairs, the canary-bound §3.3 hot path): "
       "%.2fx",
       Headline);
  note("resident-churn is DRAM-bound by design (random placement defeats "
       "locality), so its speedups are memory-limited");

  const std::vector<MtMeasurement> MtResults = runMtBenches(Opts);
  const std::vector<std::pair<std::string, double>> MtSpeedupRows =
      mtSpeedups(MtResults);
  heading("Contended scenarios: per-thread caches vs global lock");
  note("hardware threads on this host: %u (wall-clock scaling saturates "
       "here; lock acquisitions per op do not)",
       std::thread::hardware_concurrency());
  Table MtTable(
      {"scenario", "threads", "mode", "ns/op", "Mops/s", "locks/op"});
  uint64_t MtFaults = 0;
  for (const MtMeasurement &M : MtResults) {
    MtTable.addRow({M.Scenario, fmt("%u", M.Threads), M.Mode,
                    fmt("%.1f", M.NsPerOp), fmt("%.2f", M.OpsPerSec / 1e6),
                    fmt("%.4f", M.LockAcquiresPerOp)});
    MtFaults += M.PatternFaults;
  }
  MtTable.print();
  Table MtSpeedupTable({"scenario/threads", "cached vs global-lock"});
  double MtHeadline = 0;
  for (const auto &[Key, Speedup] : MtSpeedupRows) {
    MtSpeedupTable.addRow({Key, fmt("%.2fx", Speedup)});
    if (Key == std::string("mt-hot-pairs/4t"))
      MtHeadline = Speedup;
  }
  MtSpeedupTable.print();
  note("mt headline (mt-hot-pairs, 4 threads, cached vs global-lock): "
       "%.2fx; pattern faults across all runs: %llu",
       MtHeadline, static_cast<unsigned long long>(MtFaults));

  const std::vector<ImageSizeSample> ImageSizes = measureImageSizes();
  heading("Heap-image footprint: columnar v2 vs legacy v1 (bytes)");
  Table ImageTable({"workload", "v1 bytes", "v2 bytes", "reduction"});
  for (const ImageSizeSample &Sample : ImageSizes)
    ImageTable.addRow({Sample.Workload, fmt("%zu", Sample.V1Bytes),
                       fmt("%zu", Sample.V2Bytes),
                       fmt("%.2fx", Sample.reduction())});
  ImageTable.print();

  if (!Opts.JsonPath.empty()) {
    JsonWriter Json;
    Json.beginObject();
    Json.field("bench", "hotpath");
    Json.field("schema_version", 3);
    Json.beginObject("config");
    Json.field("scale_divisor", Opts.Scale);
    Json.field("canary_dispatch_auto", canary_dispatch::activeName());
    Json.field("hardware_threads",
               static_cast<uint64_t>(std::thread::hardware_concurrency()));
    Json.endObject();
    Json.beginArray("results");
    for (const std::vector<Measurement> *Set : {&Results, &OpResults})
      for (const Measurement &M : *Set) {
        Json.beginObject();
        Json.field("scenario", M.Scenario);
        Json.field("name", M.Name);
        Json.field("mode", M.Mode);
        Json.field("ns_per_op", M.NsPerOp);
        Json.field("ops_per_sec", M.OpsPerSec);
        Json.endObject();
      }
    Json.endArray();
    Json.beginArray("speedups");
    for (const auto &[Scenario, PerHeap] : Speedups)
      for (const auto &[Name, Speedup] : PerHeap) {
        Json.beginObject();
        Json.field("scenario", Scenario);
        Json.field("name", Name);
        Json.field("speedup", Speedup);
        Json.endObject();
      }
    for (const auto &[Scenario, Speedup] : OpSpeedups) {
      Json.beginObject();
      Json.field("scenario", Scenario);
      Json.field("speedup", Speedup);
      Json.endObject();
    }
    Json.endArray();
    Json.beginArray("mt_results");
    for (const MtMeasurement &M : MtResults) {
      Json.beginObject();
      Json.field("scenario", M.Scenario);
      Json.field("threads", static_cast<uint64_t>(M.Threads));
      Json.field("mode", M.Mode);
      Json.field("ns_per_op", M.NsPerOp);
      Json.field("ops_per_sec", M.OpsPerSec);
      Json.field("lock_acquires_per_op", M.LockAcquiresPerOp);
      Json.field("pattern_faults", M.PatternFaults);
      Json.endObject();
    }
    Json.endArray();
    Json.beginArray("mt_speedups");
    for (const auto &[Key, Speedup] : MtSpeedupRows) {
      Json.beginObject();
      Json.field("scenario", Key);
      Json.field("speedup", Speedup);
      Json.endObject();
    }
    Json.endArray();
    Json.field("mt_headline_scenario", "mt-hot-pairs/4t cached vs global-lock");
    Json.field("mt_headline_speedup", MtHeadline);
    Json.beginArray("image_format");
    for (const ImageSizeSample &Sample : ImageSizes) {
      Json.beginObject();
      Json.field("workload", Sample.Workload);
      Json.field("v1_bytes", static_cast<uint64_t>(Sample.V1Bytes));
      Json.field("v2_bytes", static_cast<uint64_t>(Sample.V2Bytes));
      Json.field("reduction", Sample.reduction());
      Json.endObject();
    }
    Json.endArray();
    Json.field("headline_scenario", "large-pairs/diefast");
    Json.field("headline_speedup", Headline);
    Json.endObject();
    if (!Json.writeFile(Opts.JsonPath)) {
      std::fprintf(stderr, "failed to write %s\n", Opts.JsonPath.c_str());
      return 1;
    }
    note("wrote %s", Opts.JsonPath.c_str());
  }
  return 0;
}

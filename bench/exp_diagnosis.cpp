//===- bench/exp_diagnosis.cpp - Evidence-path throughput -----------------===//
//
// PR 4's fast-vs-legacy A/B over the diagnosis half of the system, in
// the same one-binary discipline PR 1 established for the allocator
// (DieHardConfig::LegacyHotPath there, evidence_path::force here).
// Every section runs the identical work under the fast evidence path
// and the pre-PR-4 legacy path and reports both, so speedups compare
// code, not machines — per the ROADMAP rule, compare ratios within one
// capture of this JSON, never absolute numbers across captures.
//
//   capture     MB/s of captureHeapImage over live post-run heaps
//               (espresso, squid): SIMD uniform-slot encoding + the
//               dispatched run scanner vs the scalar word loop.
//   view-build  ns/image to index a HeapImageView: flat open-addressing
//               id index vs std::unordered_map.
//   isolate     §4 isolation throughput (images/s) over the canonical
//               scripted-overflow evidence, views rebuilt per episode
//               the way a server sees fresh submissions.
//   ingest      patch-server image submissions/s over loopback (full
//               frame encode → decode → diagnose), where the fast path
//               also exercises the DiagnosisPipeline view cache.
//
// --json FILE writes BENCH_diagnosis.json (schema in ROADMAP.md).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "diagnose/DiagnosisPipeline.h"
#include "diefast/DieFastHeap.h"
#include "exchange/PatchClient.h"
#include "exchange/PatchServer.h"
#include "heapimage/HeapImageIO.h"
#include "runtime/LiveRun.h"
#include "support/Executor.h"
#include "support/RandomGenerator.h"
#include "workload/EspressoWorkload.h"
#include "workload/ScriptedBugs.h"
#include "workload/SquidWorkload.h"

#include <cstdio>
#include <cstring>
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace exterminator;
using namespace benchreport;

namespace {

const char *modeName(evidence_path::Mode M) {
  return M == evidence_path::Mode::Fast ? "fast" : "legacy";
}

/// One fast/legacy measurement pair plus everything the JSON needs.
struct Measurement {
  std::string Metric;
  std::string Name;
  uint64_t Items = 0;          ///< work items per mode (images, builds…)
  double Seconds[2] = {0, 0};  ///< [fast, legacy]
  double PerSec[2] = {0, 0};
  double Extra[2] = {0, 0};    ///< metric-specific (MB/s, ns/image)
  const char *ExtraKey = nullptr;

  double speedup() const { return Seconds[1] / Seconds[0]; }
};

/// Times \p Body under fast and legacy and fills a Measurement.  The
/// two modes run in alternating blocks and each keeps its best block,
/// so frequency drift or a noisy neighbour mid-run skews both modes
/// alike instead of whichever happened to run second.
template <typename FnT>
Measurement measure(const std::string &Metric, const std::string &Name,
                    uint64_t Items, FnT Body, unsigned Blocks = 3) {
  Measurement M;
  M.Metric = Metric;
  M.Name = Name;
  M.Items = Items;
  const evidence_path::Mode Modes[2] = {evidence_path::Mode::Fast,
                                        evidence_path::Mode::Legacy};
  M.Seconds[0] = M.Seconds[1] = 1e300;
  for (unsigned Block = 0; Block < Blocks; ++Block)
    for (int I = 0; I < 2; ++I) {
      evidence_path::Scoped Mode(Modes[I]);
      M.Seconds[I] = std::min(M.Seconds[I], timeSeconds([&] { Body(); }));
    }
  for (int I = 0; I < 2; ++I)
    M.PerSec[I] = Items / M.Seconds[I];
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: exp_diagnosis [--smoke] [--json FILE]\n");
      return 2;
    }
  }

  std::vector<Measurement> Results;

  //===--------------------------------------------------------------------===//
  // Capture throughput
  //===--------------------------------------------------------------------===//

  heading("PR 4: heap-image capture throughput (fast vs legacy encoder)");
  {
    // Four heap shapes: two real post-run workload heaps (tiny slabs —
    // per-slot cost dominates), plus two synthetic *resident* services:
    // 4 KiB objects, a quarter carrying live literal data, a third
    // freed (canaried) — the uniform-dominated population a DieHard
    // heap converges to.  "hot" fits in L2, so throughput compares the
    // encoders; "cold" spills to L3/DRAM, where both paths converge on
    // memory bandwidth (the same hot/resident distinction the PR 1
    // bench documents).
    struct CaptureCase {
      const char *Name;
      unsigned Rounds;
      std::unique_ptr<LiveHeapRun> Workload; // either a workload heap...
      std::unique_ptr<DieFastHeap> Resident; // ...or a synthetic one
      uint64_t Bytes = 0;
      const DieFastHeap &heap() const {
        return Workload ? Workload->diefast() : *Resident;
      }
    };
    auto Resident = [](unsigned Objects, unsigned LiteralEvery) {
      DieFastConfig Config;
      Config.Heap.Seed = 0x4e5;
      Config.Heap.InitialSlots = 64;
      auto Heap = std::make_unique<DieFastHeap>(Config);
      RandomGenerator Rng(7);
      std::vector<void *> Ptrs;
      for (unsigned I = 0; I < Objects; ++I) {
        void *P = Heap->allocate(4096);
        if (LiteralEvery && (I % LiteralEvery) == 0) {
          uint64_t *W = static_cast<uint64_t *>(P);
          for (size_t J = 0; J < 4096 / 8; ++J)
            W[J] = Rng.next();
        }
        Ptrs.push_back(P);
      }
      for (size_t I = 0; I < Ptrs.size(); I += 3)
        Heap->deallocate(Ptrs[I]);
      return Heap;
    };

    std::vector<CaptureCase> Cases;
    EspressoWorkload Espresso;
    Cases.push_back({"espresso", Smoke ? 20u : 5000u,
                     std::make_unique<LiveHeapRun>(
                         runWorkloadKeepHeap(Espresso, 5, 11)),
                     nullptr});
    SquidWorkload Squid;
    Cases.push_back({"squid", Smoke ? 20u : 5000u,
                     std::make_unique<LiveHeapRun>(
                         runWorkloadKeepHeap(Squid, 1, 13)),
                     nullptr});
    Cases.push_back(
        {"resident-hot", Smoke ? 20u : 2000u, nullptr, Resident(60, 4)});
    Cases.push_back(
        {"resident-cold", Smoke ? 3u : 60u, nullptr, Resident(3000, 4)});
    for (CaptureCase &Case : Cases) {
      if (Case.Workload)
        Case.Bytes = Case.Workload->slabBytes();
      else
        Case.Resident->heap().forEachMiniheap(
            [&](unsigned, unsigned, const Miniheap &Mini) {
              Case.Bytes += Mini.numSlots() * Mini.objectSize();
            });
    }

    Table CaptureTable({"heap", "slab MB", "mode", "captures/s", "MB/s"});
    for (CaptureCase &Case : Cases) {
      // No explicit warmup: each mode keeps its best of three timed
      // blocks, so the cold first block is discarded anyway and every
      // timed block performs exactly Rounds captures.
      Measurement M = measure("capture", Case.Name, Case.Rounds, [&] {
        for (unsigned I = 0; I < Case.Rounds; ++I) {
          const HeapImage Image = captureHeapImage(Case.heap());
          if (Image.totalSlots() == 0)
            std::abort(); // keep the capture observable
        }
      });
      M.ExtraKey = "mb_per_sec";
      for (int I = 0; I < 2; ++I) {
        M.Extra[I] = (double(Case.Bytes) * Case.Rounds) / M.Seconds[I] / 1e6;
        CaptureTable.addRow({Case.Name, fmt("%.2f", Case.Bytes / 1e6),
                             modeName(I == 0 ? evidence_path::Mode::Fast
                                             : evidence_path::Mode::Legacy),
                             fmt("%.1f", M.PerSec[I]),
                             fmt("%.1f", M.Extra[I])});
      }
      Results.push_back(std::move(M));
    }
    CaptureTable.print();
    note("the fast encoder settles uniform slots (virgin, canaried, "
         "zero-filled) with one SIMD sweep and scans literal stretches "
         "at vector width; the legacy path word-scans every slot");
  }

  //===--------------------------------------------------------------------===//
  // View build
  //===--------------------------------------------------------------------===//

  heading("PR 4: HeapImageView build (flat id index vs unordered_map)");
  const unsigned ViewRounds = Smoke ? 50 : 5000;
  {
    EspressoWorkload Espresso;
    LiveHeapRun Run = runWorkloadKeepHeap(Espresso, 5, 17);
    const HeapImage Image = captureHeapImage(Run.diefast());

    // The most recent allocation's id (== the allocation clock) is
    // always still indexed; probing it keeps the build observable.
    const uint64_t NewestId = Image.AllocationTime;
    Measurement M = measure("view-build", "espresso", ViewRounds, [&] {
      for (unsigned I = 0; I < ViewRounds; ++I) {
        const HeapImageView View(Image);
        if (!View.findById(NewestId))
          std::abort();
      }
    });
    M.ExtraKey = "ns_per_image";
    Table ViewTable({"image", "slots", "mode", "builds/s", "ns/image"});
    for (int I = 0; I < 2; ++I) {
      M.Extra[I] = M.Seconds[I] / ViewRounds * 1e9;
      ViewTable.addRow({"espresso", fmt("%zu", Image.totalSlots()),
                        modeName(I == 0 ? evidence_path::Mode::Fast
                                        : evidence_path::Mode::Legacy),
                        fmt("%.0f", M.PerSec[I]), fmt("%.0f", M.Extra[I])});
    }
    Results.push_back(std::move(M));
    ViewTable.print();
  }

  //===--------------------------------------------------------------------===//
  // §4 isolation throughput
  //===--------------------------------------------------------------------===//

  heading("PR 4: error-isolation throughput (full Sec 4 pipeline)");
  const unsigned IsolateRounds = Smoke ? 3 : 2000;
  const unsigned ImagesPerSet = 3;
  {
    const std::vector<HeapImage> Evidence =
        scriptedEvidenceImages(ImagesPerSet, /*OverflowBytes=*/9);

    // Sanity: both paths must diagnose, and identically.
    PatchSet FastPatches, LegacyPatches;
    {
      evidence_path::Scoped Mode(evidence_path::Mode::Fast);
      FastPatches = isolateErrors(Evidence, {}, &sharedExecutor()).Patches;
    }
    {
      evidence_path::Scoped Mode(evidence_path::Mode::Legacy);
      LegacyPatches = isolateErrors(Evidence).Patches;
    }
    if (FastPatches.empty() || !(FastPatches == LegacyPatches)) {
      std::fprintf(stderr, "fast/legacy isolation drifted; refusing to "
                           "report bogus throughput\n");
      return 1;
    }

    Measurement M = measure("isolate", "scripted-overflow",
                            uint64_t(IsolateRounds) * ImagesPerSet, [&] {
                              for (unsigned I = 0; I < IsolateRounds; ++I) {
                                const IsolationResult Result = isolateErrors(
                                    Evidence, {},
                                    evidence_path::isLegacy()
                                        ? nullptr
                                        : &sharedExecutor());
                                if (Result.Patches.empty())
                                  std::abort();
                              }
                            });
    Table IsolateTable({"evidence", "mode", "images/s", "episodes/s"});
    for (int I = 0; I < 2; ++I)
      IsolateTable.addRow(
          {fmt("%u x scripted overflow", ImagesPerSet),
           modeName(I == 0 ? evidence_path::Mode::Fast
                           : evidence_path::Mode::Legacy),
           fmt("%.1f", M.PerSec[I]),
           fmt("%.1f", M.PerSec[I] / ImagesPerSet)});
    Results.push_back(std::move(M));
    IsolateTable.print();
    note("views are rebuilt per episode, as a server sees fresh "
         "submissions; the fast path also fans evidence sweeps across "
         "%u executor thread(s)",
         sharedExecutor().threadCount());
  }

  //===--------------------------------------------------------------------===//
  // Server ingest
  //===--------------------------------------------------------------------===//

  heading("PR 4: patch-server image ingest (loopback, fast vs legacy)");
  const unsigned IngestRounds = Smoke ? 5 : 500;
  {
    const std::vector<HeapImage> Evidence =
        scriptedEvidenceImages(ImagesPerSet, /*OverflowBytes=*/9);

    Measurement M = measure("ingest", "image-submission", IngestRounds, [&] {
      PatchServer Server;
      LoopbackTransport Transport(Server);
      PatchClient Client(Transport);
      for (unsigned I = 0; I < IngestRounds; ++I)
        if (!Client.submitImages({Evidence, {}}))
          std::abort();
    });
    Table IngestTable({"kind", "mode", "submissions/s"});
    for (int I = 0; I < 2; ++I)
      IngestTable.addRow({"3-image bundle + isolation",
                          modeName(I == 0 ? evidence_path::Mode::Fast
                                          : evidence_path::Mode::Legacy),
                          fmt("%.1f", M.PerSec[I])});
    Results.push_back(std::move(M));
    IngestTable.print();
    note("repeated submissions of one bundle are the retry/duplicate "
         "shape the view cache exists for; the legacy path re-indexes "
         "every time");
  }

  //===--------------------------------------------------------------------===//
  // Speedup summary + JSON
  //===--------------------------------------------------------------------===//

  heading("PR 4: fast-vs-legacy speedups (same binary, same data)");
  Table Speedups({"metric", "name", "speedup (legacy/fast)"});
  double HeadlineSpeedup = 0;
  std::string HeadlineMetric;
  for (const Measurement &M : Results) {
    Speedups.addRow({M.Metric, M.Name, fmt("%.2fx", M.speedup())});
    if (M.Metric == "capture" && M.Name == "resident-hot") {
      HeadlineSpeedup = M.speedup();
      HeadlineMetric = M.Metric + ":" + M.Name;
    }
  }
  Speedups.print();

  if (!JsonPath.empty()) {
    JsonWriter Json;
    Json.beginObject();
    Json.field("schema_version", 1);
    Json.beginObject("config");
    Json.field("smoke", Smoke);
    Json.field("canary_dispatch", canary_dispatch::activeName());
    Json.field("executor_threads", uint64_t(sharedExecutor().threadCount()));
    Json.field("view_rounds", int(ViewRounds));
    Json.field("isolate_rounds", int(IsolateRounds));
    Json.field("ingest_rounds", int(IngestRounds));
    Json.endObject();
    Json.beginArray("results");
    for (const Measurement &M : Results) {
      for (int I = 0; I < 2; ++I) {
        Json.beginObject();
        Json.field("metric", M.Metric);
        Json.field("name", M.Name);
        Json.field("mode", I == 0 ? "fast" : "legacy");
        Json.field("items", M.Items);
        Json.field("seconds", M.Seconds[I]);
        Json.field("per_sec", M.PerSec[I]);
        if (M.ExtraKey)
          Json.field(M.ExtraKey, M.Extra[I]);
        Json.endObject();
      }
    }
    Json.endArray();
    Json.beginArray("speedups");
    for (const Measurement &M : Results) {
      Json.beginObject();
      Json.field("metric", M.Metric);
      Json.field("name", M.Name);
      Json.field("speedup", M.speedup());
      Json.endObject();
    }
    Json.endArray();
    Json.field("headline_metric", HeadlineMetric);
    Json.field("headline_speedup", HeadlineSpeedup);
    Json.endObject();
    if (!Json.writeFile(JsonPath)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    note("wrote %s", JsonPath.c_str());
  }
  return 0;
}

//===- bench/exp_squid.cpp - §7.2 Squid web cache -------------------------------===//
//
// Regenerates the §7.2 Squid case study: "We run Squid three times under
// Exterminator in iterative mode with an input that triggers a buffer
// overflow.  Exterminator continues executing correctly in each run, but
// the overflow corrupts a canary.  Exterminator's error isolation
// algorithm identifies a single allocation site as the culprit and
// generates a pad of exactly 6 bytes, fixing the error."
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/IterativeDriver.h"
#include "workload/SquidWorkload.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

int main() {
  heading("Sec 7.2: Squid 2.3s5 buffer overflow (iterative mode)");
  note("paper: single culprit site; pad of exactly 6 bytes; program keeps "
       "running under Exterminator");

  Table Out({"session", "survived", "pad sites", "culprit site ok",
             "pad(B)", "images", "corrected"});

  unsigned ExactSix = 0;
  for (unsigned Session = 0; Session < 3; ++Session) {
    SquidWorkload Work;
    ExterminatorConfig Config;
    Config.MasterSeed = 0x5a111d + Session * 7321;
    IterativeDriver Driver(Work, Config);
    const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/1);

    const auto Pads = Outcome.Patches.pads();
    const bool SiteOk =
        Pads.size() == 1 && Pads[0].AllocSite == SquidWorkload::overflowSite();
    const uint32_t Pad = Pads.empty() ? 0 : Pads[0].PadBytes;
    if (SiteOk && Pad == 6)
      ++ExactSix;

    // The discovery run keeps executing (status Success) even though the
    // overflow fired: Exterminator tolerates while it detects.
    const bool Survived =
        !Outcome.Episodes.empty() &&
        Outcome.Episodes.front().DiscoveryStatus == RunStatusKind::Success;

    Out.addRow({fmt("%u", Session), Survived ? "yes" : "no",
                fmt("%zu", Pads.size()), SiteOk ? "yes" : "no",
                fmt("%u", Pad),
                Outcome.Episodes.empty()
                    ? "-"
                    : fmt("%u", Outcome.Episodes.front().ImagesUsed),
                Outcome.Corrected ? "yes" : "no"});
  }
  Out.print();
  note("sessions producing a single-site pad of exactly 6 bytes: %u/3 "
       "(paper: 3/3)",
       ExactSix);
  return 0;
}

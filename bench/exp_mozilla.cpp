//===- bench/exp_mozilla.cpp - §7.2 Mozilla bug 307259 --------------------------===//
//
// Regenerates the §7.2 Mozilla case study: a heap overflow in Unicode
// domain-name processing (bug 307259) in a program whose allocation
// behavior diverges across runs, so only cumulative mode applies.
//
// Two case studies as in the paper: (1) start the browser and immediately
// load the triggering page (a testing scenario); (2) browse a per-run
// random selection of pages first (deployed use).  Paper: the overflow is
// identified with no false positives in 23 runs (case 1) and 34 runs
// (case 2) — more runs because the culprit site also allocates more
// correct objects while browsing.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/CumulativeDriver.h"
#include "workload/MozillaWorkload.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

namespace {

struct CaseResult {
  bool Isolated = false;
  bool SiteCorrect = false;
  bool FalsePositives = false;
  unsigned Runs = 0;
};

CaseResult runCase(MozillaScenario Scenario, uint64_t MasterSeed) {
  MozillaParams Params;
  Params.Scenario = Scenario;
  MozillaWorkload Work(Params);

  ExterminatorConfig Config;
  Config.MasterSeed = MasterSeed;
  Config.CanaryFillProbability = 0.5; // cumulative mode
  // Nondeterministic inputs: each run browses differently.
  CumulativeDriver Driver(Work, Config, /*VaryInput=*/true);
  const CumulativeOutcome Outcome =
      Driver.run(/*InputSeed=*/1000, /*MaxRuns=*/120);

  CaseResult Result;
  Result.Isolated = Outcome.Isolated;
  Result.Runs = Outcome.RunsToIsolation;
  for (const CumulativeOverflowFinding &Finding : Outcome.Overflows) {
    if (Finding.AllocSite == MozillaWorkload::overflowSite())
      Result.SiteCorrect = true;
    else
      Result.FalsePositives = true;
  }
  return Result;
}

} // namespace

int main() {
  heading("Sec 7.2: Mozilla 1.7.3 IDN overflow (cumulative mode)");
  note("paper: correct site, no false positives; 23 runs (immediate) / 34 "
       "runs (browse first)");

  Table Out({"case study", "isolated", "site correct", "false positives",
             "runs to isolate", "paper runs"});

  const CaseResult Immediate =
      runCase(MozillaScenario::ImmediateTrigger, 0x307259);
  Out.addRow({"immediate trigger", Immediate.Isolated ? "yes" : "no",
              Immediate.SiteCorrect ? "yes" : "no",
              Immediate.FalsePositives ? "YES" : "none",
              Immediate.Isolated ? fmt("%u", Immediate.Runs) : "-", "23"});

  const CaseResult Browse =
      runCase(MozillaScenario::BrowseThenTrigger, 0x307260);
  Out.addRow({"browse, then trigger", Browse.Isolated ? "yes" : "no",
              Browse.SiteCorrect ? "yes" : "no",
              Browse.FalsePositives ? "YES" : "none",
              Browse.Isolated ? fmt("%u", Browse.Runs) : "-", "34"});
  Out.print();

  if (Immediate.Isolated && Browse.Isolated)
    note("shape check: browsing-first %s more runs (paper: it does)",
         Browse.Runs > Immediate.Runs ? "needs" : "does NOT need");
  return 0;
}

//===- bench/table1_error_matrix.cpp - Table 1 --------------------------------===//
//
// Regenerates Table 1: how Exterminator handles each class of memory
// error.  Each row exercises one error kind through the full stack and
// reports the observed behavior: invalid and double frees are tolerated
// (no effect), dangling pointers and buffer overflows are tolerated and
// *corrected* via runtime patches.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/IterativeDriver.h"
#include "workload/TraceWorkload.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

namespace {
constexpr uint32_t SiteA = 0x100, SiteB = 0x200, SiteF = 0x300;

void churn(std::vector<TraceOp> &Ops, uint32_t Base) {
  for (uint32_t R = 0; R < 6; ++R) {
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::alloc(Base + R * 30 + I, 64, SiteB));
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::free(Base + R * 30 + I, SiteF));
  }
}
} // namespace

/// Invalid free: freeing a pointer the allocator never returned.
static std::string invalidFreeBehavior() {
  CallContext Context;
  CorrectingHeap Heap(DieFastConfig(), &Context);
  void *Ptr = Heap.allocate(64);
  int Local = 0;
  Heap.deallocate(&Local);          // invalid free
  Heap.deallocate(static_cast<char *>(Ptr) + 8); // interior pointer
  const bool Tolerated = Heap.stats().InvalidFrees == 2 &&
                         Heap.diefast().heap().isLivePointer(Ptr) &&
                         Heap.allocate(64) != nullptr;
  return Tolerated ? "tolerated (ignored)" : "NOT TOLERATED";
}

/// Double free: freeing the same object twice.
static std::string doubleFreeBehavior() {
  CallContext Context;
  CorrectingHeap Heap(DieFastConfig(), &Context);
  void *A = Heap.allocate(64);
  void *B = Heap.allocate(64);
  Heap.deallocate(A);
  Heap.deallocate(A);
  Heap.deallocate(A);
  const bool Tolerated = Heap.stats().DoubleFrees == 2 &&
                         Heap.diefast().heap().isLivePointer(B) &&
                         Heap.diefast().errorsSignalled() == 0;
  return Tolerated ? "tolerated (bit resets once)" : "NOT TOLERATED";
}

/// Uninitialized read: Exterminator zero-fills instead (§2.1).
static std::string uninitializedReadBehavior() {
  CallContext Context;
  CorrectingHeap Heap(DieFastConfig(), &Context);
  bool AllZero = true;
  for (int I = 0; I < 32; ++I) {
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(64));
    for (int B = 0; B < 64; ++B)
      AllZero &= Ptr[B] == 0;
    Heap.deallocate(Ptr);
  }
  return AllZero ? "made deterministic (zero-fill)" : "UNDEFINED";
}

/// Dangling pointer: a premature free followed by a write through the
/// stale pointer; the iterative pipeline must produce a deferral patch.
static std::string danglingBehavior() {
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 16; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, SiteB));
  Ops.push_back(TraceOp::alloc(50, 64, SiteA));
  Ops.push_back(TraceOp::free(50, SiteF));
  for (uint32_t I = 100; I < 106; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, SiteB));
  Ops.push_back(TraceOp::write(50, 8, 16, 0x3c));
  // Post-write churn in the same size class gives DieFast's reuse checks
  // a chance to discover the broken canary.
  for (uint32_t I = 200; I < 240; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
    Ops.push_back(TraceOp::free(I, SiteF));
  }

  TraceWorkload Work(Ops);
  ExterminatorConfig Config;
  Config.MasterSeed = 0x7ab1e1;
  IterativeDriver Driver(Work, Config);
  const IterativeOutcome Outcome = Driver.run(1);
  if (Outcome.Patches.deferralCount() > 0)
    return "tolerated & corrected (deferral patch)";
  return Outcome.ErrorFree ? "tolerated (undetected this session)"
                           : "detected, not corrected";
}

/// Buffer overflow: a deterministic overrun; the iterative pipeline must
/// produce a pad patch and a verified-clean rerun.
static std::string overflowBehavior() {
  std::vector<TraceOp> Ops;
  churn(Ops, 1000);
  for (uint32_t I = 0; I < 24; ++I)
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
  for (uint32_t I = 0; I < 24; I += 2)
    Ops.push_back(TraceOp::free(I, SiteF));
  Ops.push_back(TraceOp::alloc(100, 64, SiteA));
  Ops.push_back(TraceOp::write(100, 64, 20, 0x77));
  for (uint32_t I = 200; I < 212; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
    Ops.push_back(TraceOp::free(I, SiteF));
  }

  TraceWorkload Work(Ops);
  ExterminatorConfig Config;
  Config.MasterSeed = 0x7ab1e2;
  IterativeDriver Driver(Work, Config);
  const IterativeOutcome Outcome = Driver.run(1);
  if (Outcome.Corrected && Outcome.Patches.padCount() > 0)
    return "tolerated & corrected (pad patch)";
  return Outcome.ErrorFree ? "tolerated (undetected this session)"
                           : "detected, not corrected";
}

int main() {
  heading("Table 1: how Exterminator handles memory errors");
  note("paper: invalid/double frees tolerated; uninitialized reads N/A "
       "(zero-filled);");
  note("dangling pointers and buffer overflows tolerated AND corrected "
       "(probabilistically)");

  Table Out({"error", "paper", "measured"});
  Out.addRow({"invalid frees", "tolerate", invalidFreeBehavior()});
  Out.addRow({"double frees", "tolerate", doubleFreeBehavior()});
  Out.addRow({"uninitialized reads", "N/A (zero-fill)",
              uninitializedReadBehavior()});
  Out.addRow({"dangling pointers", "tolerate & correct*",
              danglingBehavior()});
  Out.addRow({"buffer overflows", "tolerate & correct*",
              overflowBehavior()});
  Out.print();
  note("* probabilistically (asterisk as in the paper)");
  return 0;
}

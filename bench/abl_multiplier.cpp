//===- bench/abl_multiplier.cpp - heap-multiplier ablation ----------------------===//
//
// Ablation of the DieHard heap multiplier M (§3.1): the heap is never
// more than 1/M full, so larger M means more freed (canaried) space —
// better overflow detection (Theorem 2's (M-1)/2M term) — at the cost of
// memory and allocation-time cache pressure.  The paper fixes M = 2.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "correct/CorrectingHeap.h"
#include "workload/EspressoWorkload.h"
#include "runtime/Exterminator.h"
#include "workload/SyntheticSuite.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

int main() {
  heading("Ablation: heap multiplier M (paper uses M = 2)");

  Table Out({"M", "overflow detection rate", "alloc-heavy time (norm)",
             "heap slots / live object"});

  // Baseline timing at M = 1.5 for normalization.
  double BaseTime = 0.0;

  for (double M : {1.5, 2.0, 3.0, 4.0}) {
    // Detection rate for an injected overflow across seeds.  The run is
    // long (a mature heap) so the freed-space fraction approaches its
    // steady-state (M-1)/M and Theorem 2's term governs; young heaps are
    // dominated by virgin, never-canaried slots instead.
    EspressoParams Params;
    Params.Rounds = 180;
    EspressoWorkload Work(Params);
    ExterminatorConfig Config;
    Config.Heap.Multiplier = M;
    Config.Fault.Kind = FaultKind::BufferOverflow;
    Config.Fault.TriggerAllocation = 1200;
    Config.Fault.OverflowBytes = 20;
    Config.Fault.OverflowDelay = 5;
    Config.Fault.PatternSeed = 42;
    unsigned Detected = 0;
    constexpr unsigned Probes = 40;
    RandomGenerator Seeds(0x1111);
    double SlotsPerLive = 0.0;
    for (unsigned I = 0; I < Probes; ++I) {
      const SingleRunResult Run =
          runWorkloadOnce(Work, 5, Seeds.next(), Config, PatchSet());
      Detected += Run.ErrorSignalled ? 1 : 0;
      size_t Live = 0;
      for (size_t G = 0; G < Run.FinalImage.totalSlots(); ++G) {
        const uint8_t Flags = Run.FinalImage.slotFlagsAt(G);
        Live += (Flags & SlotFlagAllocated) && !(Flags & SlotFlagBad);
      }
      if (Live)
        SlotsPerLive += static_cast<double>(Run.FinalImage.totalSlots()) /
                        static_cast<double>(Live);
    }
    SlotsPerLive /= Probes;

    // Allocation-heavy timing under this M.
    SyntheticProfile Profile = figure7Profiles().front(); // cfrac-like
    Profile.Operations /= 4;
    SyntheticWorkload TimedWork(Profile);
    const double Seconds = timeSeconds([&] {
      CallContext Context;
      DieFastConfig HeapConfig;
      HeapConfig.Heap.Multiplier = M;
      HeapConfig.Heap.Seed = 9;
      CorrectingHeap Heap(HeapConfig, &Context);
      AllocatorHandle Handle(Heap, Context, &Heap.diefast().heap());
      TimedWork.run(Handle, 42);
    });
    if (BaseTime == 0.0)
      BaseTime = Seconds;

    Out.addRow({fmt("%.1f", M), fmt("%.2f", double(Detected) / Probes),
                fmt("%.2f", Seconds / BaseTime),
                fmt("%.2f", SlotsPerLive)});
  }
  Out.print();
  note("expected shape: detection rate rises with M (more canaried free "
       "space), memory slack rises linearly, time roughly flat (random "
       "probe is O(1) for any M > 1)");
  return 0;
}

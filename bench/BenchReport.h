//===- bench/BenchReport.h - Experiment reporting helpers ------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the experiment harnesses: aligned table
/// printing and wall-clock timing.  Each bench binary regenerates one
/// table or figure from the paper's evaluation (§7) and prints both the
/// measured values and the paper's reference numbers.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_BENCH_BENCHREPORT_H
#define EXTERMINATOR_BENCH_BENCHREPORT_H

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace benchreport {

/// Prints a heading like the paper's table/figure captions.
inline void heading(const std::string &Title) {
  std::printf("\n==== %s ====\n", Title.c_str());
}

inline void note(const char *Format, ...) {
  std::va_list Args;
  va_start(Args, Format);
  std::printf("  ");
  std::vprintf(Format, Args);
  std::printf("\n");
  va_end(Args);
}

/// Renders rows of equal-width columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  void print() const {
    std::vector<size_t> Widths(Header.size(), 0);
    auto Widen = [&](const std::vector<std::string> &Row) {
      for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
        if (Row[I].size() > Widths[I])
          Widths[I] = Row[I].size();
    };
    Widen(Header);
    for (const auto &Row : Rows)
      Widen(Row);

    auto PrintRow = [&](const std::vector<std::string> &Row) {
      std::printf("  ");
      for (size_t I = 0; I < Row.size(); ++I)
        std::printf("%-*s  ", static_cast<int>(Widths[I]), Row[I].c_str());
      std::printf("\n");
    };
    PrintRow(Header);
    std::vector<std::string> Rule;
    for (size_t W : Widths)
      Rule.push_back(std::string(W, '-'));
    PrintRow(Rule);
    for (const auto &Row : Rows)
      PrintRow(Row);
  }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

inline std::string fmt(const char *Format, ...) {
  char Buffer[256];
  std::va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
  va_end(Args);
  return Buffer;
}

/// Wall-clock seconds consumed by \p Fn.
template <typename FnT> double timeSeconds(FnT Fn) {
  const auto Start = std::chrono::steady_clock::now();
  Fn();
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace benchreport

#endif // EXTERMINATOR_BENCH_BENCHREPORT_H

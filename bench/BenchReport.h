//===- bench/BenchReport.h - Experiment reporting helpers ------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the experiment harnesses: aligned table
/// printing and wall-clock timing.  Each bench binary regenerates one
/// table or figure from the paper's evaluation (§7) and prints both the
/// measured values and the paper's reference numbers.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_BENCH_BENCHREPORT_H
#define EXTERMINATOR_BENCH_BENCHREPORT_H

#include <cassert>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace benchreport {

/// Prints a heading like the paper's table/figure captions.
inline void heading(const std::string &Title) {
  std::printf("\n==== %s ====\n", Title.c_str());
}

inline void note(const char *Format, ...) {
  std::va_list Args;
  va_start(Args, Format);
  std::printf("  ");
  std::vprintf(Format, Args);
  std::printf("\n");
  va_end(Args);
}

/// Renders rows of equal-width columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  void print() const {
    std::vector<size_t> Widths(Header.size(), 0);
    auto Widen = [&](const std::vector<std::string> &Row) {
      for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
        if (Row[I].size() > Widths[I])
          Widths[I] = Row[I].size();
    };
    Widen(Header);
    for (const auto &Row : Rows)
      Widen(Row);

    auto PrintRow = [&](const std::vector<std::string> &Row) {
      std::printf("  ");
      for (size_t I = 0; I < Row.size(); ++I)
        std::printf("%-*s  ", static_cast<int>(Widths[I]), Row[I].c_str());
      std::printf("\n");
    };
    PrintRow(Header);
    std::vector<std::string> Rule;
    for (size_t W : Widths)
      Rule.push_back(std::string(W, '-'));
    PrintRow(Rule);
    for (const auto &Row : Rows)
      PrintRow(Row);
  }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

inline std::string fmt(const char *Format, ...) {
  char Buffer[256];
  std::va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
  va_end(Args);
  return Buffer;
}

/// Wall-clock seconds consumed by \p Fn.
template <typename FnT> double timeSeconds(FnT Fn) {
  const auto Start = std::chrono::steady_clock::now();
  Fn();
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Minimal streaming JSON writer for the machine-readable bench reports
/// (BENCH_*.json).  Keys/values are emitted in call order; a stack of
/// comma states keeps the nesting honest.
class JsonWriter {
public:
  void beginObject(const std::string &Key = "") { open('{', Key); }
  void endObject() { close('}'); }
  void beginArray(const std::string &Key = "") { open('[', Key); }
  void endArray() { close(']'); }

  void field(const std::string &Key, const std::string &Value) {
    prefix(Key);
    Out += quote(Value);
  }
  void field(const std::string &Key, const char *Value) {
    field(Key, std::string(Value));
  }
  void field(const std::string &Key, double Value) {
    prefix(Key);
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.6g", Value);
    Out += Buffer;
  }
  void field(const std::string &Key, uint64_t Value) {
    prefix(Key);
    Out += std::to_string(Value);
  }
  void field(const std::string &Key, int Value) {
    prefix(Key);
    Out += std::to_string(Value);
  }
  void field(const std::string &Key, bool Value) {
    prefix(Key);
    Out += Value ? "true" : "false";
  }

  const std::string &str() const {
    assert(Depth.empty() && "unbalanced begin/end");
    return Out;
  }

  /// Writes the document (plus trailing newline) to \p Path; returns
  /// false on I/O failure.
  bool writeFile(const std::string &Path) const {
    std::FILE *File = std::fopen(Path.c_str(), "w");
    if (!File)
      return false;
    const std::string &Doc = str();
    const bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), File) == Doc.size();
    std::fputc('\n', File);
    return std::fclose(File) == 0 && Ok;
  }

private:
  static std::string quote(const std::string &S) {
    std::string Quoted = "\"";
    for (char C : S) {
      if (C == '"' || C == '\\') {
        Quoted += '\\';
        Quoted += C;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned char>(C));
        Quoted += Buffer;
      } else {
        Quoted += C;
      }
    }
    Quoted += '"';
    return Quoted;
  }

  void prefix(const std::string &Key) {
    if (!Depth.empty() && Depth.back())
      Out += ',';
    if (!Depth.empty())
      Depth.back() = true;
    if (!Key.empty()) {
      Out += quote(Key);
      Out += ':';
    }
  }

  void open(char C, const std::string &Key) {
    prefix(Key);
    Out += C;
    Depth.push_back(false);
  }

  void close(char C) {
    assert(!Depth.empty() && "close without open");
    Depth.pop_back();
    Out += C;
  }

  std::string Out;
  std::vector<bool> Depth; // true once the scope has emitted an element
};

} // namespace benchreport

#endif // EXTERMINATOR_BENCH_BENCHREPORT_H

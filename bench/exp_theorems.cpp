//===- bench/exp_theorems.cpp - Theorems 1-3 validation --------------------------===//
//
// Empirically validates the paper's three analytical results against
// Monte-Carlo simulation on real randomized heaps:
//
//   Theorem 1: P(an overflow overwrites k heaps identically)
//              <= (1/2)^k * (1/(H-S))^k.
//   Theorem 2: P(an overflow of b bytes misses every canary)
//              <= (1 - (M-1)/2M)^k + (1/256)^b.
//   Theorem 3: E[#culprits at the same distance from a victim across k
//              heaps] = 1/(H-1)^(k-2).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "support/RandomGenerator.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace exterminator;
using namespace benchreport;

namespace {

/// Theorem 1 simulation: for a fixed culprit i and victim j, an overflow
/// string of length S objects lands on j in one heap iff i precedes j
/// with at most S objects of separation.  The theorem bounds the chance
/// this happens in all k independently-randomized heaps — i.e., that an
/// overflow overwrites the same object identically everywhere, which is
/// what separates overflows from dangling overwrites (§4.2).
double simulateIdenticalOverflow(unsigned H, unsigned K, unsigned S,
                                 unsigned Trials, RandomGenerator &Rng) {
  unsigned Identical = 0;
  for (unsigned T = 0; T < Trials; ++T) {
    bool AllHeapsHit = true;
    for (unsigned Heap = 0; Heap < K && AllHeapsHit; ++Heap) {
      // Positions of i and j: two distinct uniform slots of H.
      const unsigned PosI = static_cast<unsigned>(Rng.nextBelow(H));
      unsigned PosJ = static_cast<unsigned>(Rng.nextBelow(H - 1));
      if (PosJ >= PosI)
        ++PosJ;
      AllHeapsHit = PosJ > PosI && PosJ - PosI <= S;
    }
    Identical += AllHeapsHit;
  }
  return static_cast<double>(Identical) / Trials;
}

/// Theorem 2 simulation: fraction of heap slots canaried is (M-1)/2M with
/// fill probability 1/2; measure how often a random b-byte write misses
/// every canary across k heaps (canary-value collision included).
double simulateMissedOverflow(double M, unsigned K, unsigned B,
                              unsigned Trials, RandomGenerator &Rng) {
  unsigned Missed = 0;
  const double CanariedFraction = (M - 1.0) / (2.0 * M);
  for (unsigned T = 0; T < Trials; ++T) {
    bool HitSomewhere = false;
    for (unsigned Heap = 0; Heap < K && !HitSomewhere; ++Heap)
      if (Rng.chance(CanariedFraction)) {
        // Landed on canaried space: detection unless all b bytes match
        // the (random) canary byte pattern.
        bool Collides = true;
        for (unsigned Byte = 0; Byte < B && Collides; ++Byte)
          Collides = Rng.nextBelow(256) == 0;
        if (!Collides)
          HitSomewhere = true;
      }
    if (!HitSomewhere)
      ++Missed;
  }
  return static_cast<double>(Missed) / Trials;
}

/// Theorem 3 simulation: for a victim at a fixed position, count objects
/// (other than the true culprit) that sit at the same distance from the
/// victim in all k heaps.
double simulateSpuriousCulprits(unsigned H, unsigned K, unsigned Trials,
                                RandomGenerator &Rng) {
  uint64_t TotalSpurious = 0;
  std::vector<std::vector<unsigned>> Positions(K,
                                               std::vector<unsigned>(H));
  for (unsigned T = 0; T < Trials; ++T) {
    // Positions[heap][object] = slot of that object.
    for (unsigned Heap = 0; Heap < K; ++Heap) {
      std::vector<unsigned> Perm(H);
      for (unsigned I = 0; I < H; ++I)
        Perm[I] = I;
      for (unsigned I = H - 1; I > 0; --I) {
        unsigned J = static_cast<unsigned>(Rng.nextBelow(I + 1));
        std::swap(Perm[I], Perm[J]);
      }
      for (unsigned Slot = 0; Slot < H; ++Slot)
        Positions[Heap][Perm[Slot]] = Slot;
    }
    // Victim = object H-1.  An object is a spurious culprit if its
    // (signed) distance to the victim is identical in every heap.
    for (unsigned Obj = 0; Obj + 1 < H; ++Obj) {
      const int Dist0 = static_cast<int>(Positions[0][H - 1]) -
                        static_cast<int>(Positions[0][Obj]);
      bool Same = true;
      for (unsigned Heap = 1; Heap < K && Same; ++Heap)
        Same = (static_cast<int>(Positions[Heap][H - 1]) -
                static_cast<int>(Positions[Heap][Obj])) == Dist0;
      TotalSpurious += Same;
    }
  }
  return static_cast<double>(TotalSpurious) / Trials;
}

} // namespace

int main() {
  RandomGenerator Rng(0x7e03e5);

  heading("Theorem 1: identical overflow across k heaps");
  Table T1({"H", "S", "k", "measured", "exact (S/(H-1))^k",
            "paper bound"});
  for (unsigned K : {1u, 2u, 3u}) {
    const unsigned H = 32, S = 4;
    const double Measured =
        simulateIdenticalOverflow(H, K, S, 200000, Rng);
    const double Exact = std::pow(double(S) / (H - 1), K);
    const double Bound = std::pow(0.5, K) * std::pow(1.0 / (H - S), K);
    T1.addRow({fmt("%u", H), fmt("%u", S), fmt("%u", K),
               fmt("%.6f", Measured), fmt("%.6f", Exact),
               fmt("%.6f", Bound)});
  }
  T1.print();
  note("the identical-overflow probability decays geometrically in k: "
       "with 2+ images a deterministic overwrite of the *same* object "
       "implicates a dangling pointer, not an overflow");

  heading("Theorem 2: missed-overflow (false negative) rate");
  Table T2({"M", "k", "b", "measured", "bound"});
  for (unsigned K : {1u, 2u, 3u, 4u}) {
    const double M = 2.0;
    const unsigned B = 4;
    const double Measured = simulateMissedOverflow(M, K, B, 60000, Rng);
    const double Bound =
        std::pow(1.0 - (M - 1.0) / (2.0 * M), K) + std::pow(1.0 / 256, B);
    T2.addRow({fmt("%.1f", M), fmt("%u", K), fmt("%u", B),
               fmt("%.4f", Measured), fmt("%.4f", Bound)});
  }
  T2.print();
  note("paper: for k = 3 the bound is 0.42; observed espresso rate was 0");

  heading("Theorem 3: expected spurious culprits per victim");
  Table T3({"H", "k", "measured E[culprits]", "1/(H-1)^(k-2)"});
  for (unsigned K : {1u, 2u, 3u}) {
    const unsigned H = 24;
    const double Measured = simulateSpuriousCulprits(H, K, 30000, Rng);
    const double Bound = std::pow(1.0 / (H - 1), static_cast<int>(K) - 2);
    T3.addRow({fmt("%u", H), fmt("%u", K), fmt("%.4f", Measured),
               fmt("%.4f", Bound)});
  }
  T3.print();
  note("one extra image reduces expected culprits to ~1; two make them "
       "negligible (the basis of the 3-image result)");
  return 0;
}

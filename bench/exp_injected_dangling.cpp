//===- bench/exp_injected_dangling.cpp - §7.2 injected dangling pointers -------===//
//
// Regenerates the §7.2 injected dangling-pointer experiment.
//
// Iterative mode (paper): of 10 faults, ~4 isolated (dangled object
// written through), ~4 unisolable (read-only: espresso reads the canary,
// "treats it as valid data, and either crashes or aborts" leaving no heap
// corruption), ~2 cascade (canary-filled data used for further writes,
// corrupting large parts of the heap).
//
// Cumulative mode (paper): all 10 isolated; 22–34 runs each, with 15
// failures needed before the site pair crosses the likelihood threshold.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/CumulativeDriver.h"
#include "runtime/IterativeDriver.h"
#include "support/Statistics.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace exterminator;
using namespace benchreport;

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];

  heading("Sec 7.2: injected dangling pointers in espresso");

  // --- Iterative mode --------------------------------------------------
  note("iterative mode (paper: 4 isolated / 4 read-only / 2 cascade of 10)");
  Table Iter({"fault", "discovery", "isolated", "corrected", "images"});
  unsigned IterIsolated = 0, IterCorrected = 0, NotIsolable = 0;
  // Misclassification guard (PR 9): pure software faults, hardware
  // injection off — the origin classifier diverting any of this
  // evidence into a hardware-fault report would be a misclassification.
  unsigned HardwareMisattributed = 0;

  for (unsigned Fault = 0; Fault < 10; ++Fault) {
    EspressoWorkload Work;
    ExterminatorConfig Config;
    Config.MasterSeed = 0xdead00 + Fault * 977;
    Config.Fault.Kind = FaultKind::PrematureFree;
    Config.Fault.TriggerAllocation = 250 + Fault * 35;
    Config.Fault.PatternSeed = 100 + Fault;
    IterativeDriver Driver(Work, Config);
    const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/5);

    bool FoundDangling = false;
    unsigned Images = 0;
    const char *Discovery = "clean";
    for (const IterativeEpisode &Ep : Outcome.Episodes) {
      HardwareMisattributed += Ep.Result.HardwareFaults.size();
      Discovery = Ep.SignalAnchored                       ? "DieFast signal"
                  : Ep.DiscoveryStatus == RunStatusKind::Crash ? "crash"
                  : Ep.DiscoveryStatus == RunStatusKind::Abort ? "abort"
                                                               : "divergence";
      if (!Ep.Result.Danglings.empty()) {
        FoundDangling = true;
        Images = Ep.ImagesUsed;
        break;
      }
      Images = Ep.ImagesUsed;
    }
    IterIsolated += FoundDangling;
    IterCorrected += Outcome.Corrected && FoundDangling;
    if (!FoundDangling && !Outcome.ErrorFree)
      ++NotIsolable;
    Iter.addRow({fmt("%u", Fault), Discovery,
                 FoundDangling ? "yes" : "no",
                 Outcome.Corrected ? "yes" : "no",
                 Images ? fmt("%u", Images) : "-"});
  }
  Iter.print();
  note("isolated %u/10, unisolable (read-only or cascade) %u/10 "
       "(paper: 4 and 6)",
       IterIsolated, NotIsolable);
  note("origin attribution: %u hardware misclassification(s) (must be 0)",
       HardwareMisattributed);

  // --- Cumulative mode -------------------------------------------------
  note("");
  note("cumulative mode, p = 1/2 (paper: all isolated; 22-34 runs; ~15 "
       "failures to cross the threshold)");
  Table Cum({"fault", "isolated", "corrected", "runs", "failures"});
  unsigned CumIsolated = 0;
  RunningStat RunsStat, FailStat;

  for (unsigned Fault = 0; Fault < 10; ++Fault) {
    EspressoWorkload Work;
    ExterminatorConfig Config;
    Config.MasterSeed = 0xcafe00 + Fault * 641;
    Config.CanaryFillProbability = 0.5;
    Config.Fault.Kind = FaultKind::PrematureFree;
    Config.Fault.TriggerAllocation = 250 + Fault * 35;
    Config.Fault.PatternSeed = 100 + Fault;
    CumulativeDriver Driver(Work, Config);
    const CumulativeOutcome Outcome =
        Driver.run(/*InputSeed=*/5, /*MaxRuns=*/120);

    CumIsolated += Outcome.Isolated;
    if (Outcome.Isolated) {
      RunsStat.add(Outcome.RunsToIsolation);
      FailStat.add(Outcome.FailuresToIsolation);
    }
    Cum.addRow({fmt("%u", Fault), Outcome.Isolated ? "yes" : "no",
                Outcome.Corrected ? "yes" : "no",
                Outcome.Isolated ? fmt("%u", Outcome.RunsToIsolation) : "-",
                Outcome.Isolated ? fmt("%u", Outcome.FailuresToIsolation)
                                 : "-"});
  }
  Cum.print();
  if (RunsStat.count())
    note("isolated %u/10; runs to isolate: %.0f-%.0f (mean %.1f); "
         "failures: %.0f-%.0f (mean %.1f)",
         CumIsolated, RunsStat.min(), RunsStat.max(), RunsStat.mean(),
         FailStat.min(), FailStat.max(), FailStat.mean());

  if (!JsonPath.empty()) {
    JsonWriter Json;
    Json.beginObject();
    Json.field("schema_version", 1);
    Json.field("experiment", "injected_dangling");
    Json.field("software_findings", uint64_t(IterIsolated + CumIsolated));
    Json.field("hardware_misclassifications", uint64_t(HardwareMisattributed));
    Json.field("software_attribution_pct",
               HardwareMisattributed == 0 ? 100.0
                                          : 100.0 * (IterIsolated + CumIsolated) /
                                                (IterIsolated + CumIsolated +
                                                 HardwareMisattributed));
    Json.endObject();
    if (!Json.writeFile(JsonPath)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    note("wrote %s", JsonPath.c_str());
  }
  return HardwareMisattributed == 0 ? 0 : 1;
}

//===- bench/exp_injected_overflow.cpp - §7.2 injected overflows ---------------===//
//
// Regenerates the §7.2 injected buffer-overflow experiment: "We triggered
// 10 different buffer overflows each of three different sizes (4, 20, and
// 36 bytes) ... The number of images required to isolate and correct
// these errors was 3 in every case."
//
// Each fault is one (trigger allocation, seed) pair injected into the
// espresso-like workload; the iterative driver gathers heap images until
// isolation succeeds, then a patched rerun verifies the correction.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/IterativeDriver.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace exterminator;
using namespace benchreport;

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];

  heading("Sec 7.2: injected buffer overflows in espresso (iterative mode)");
  note("paper: 10 faults x sizes {4,20,36}B, isolated+corrected with 3 "
       "images each");

  Table Out({"size(B)", "faults", "isolated", "corrected", "images(min)",
             "images(avg)", "images(max)", "pad>=size", "hw-findings"});

  // Misclassification guard (PR 9): these are pure software faults with
  // hardware injection off, so the origin classifier must attribute
  // every finding to a software site — any hardware-fault finding here
  // is a misclassification.
  unsigned TotalIsolated = 0, TotalHardware = 0;

  for (uint32_t Size : {4u, 20u, 36u}) {
    unsigned Isolated = 0, Corrected = 0, PadOk = 0, Hardware = 0;
    unsigned MinImages = ~0u, MaxImages = 0, SumImages = 0, Counted = 0;

    for (unsigned Fault = 0; Fault < 10; ++Fault) {
      EspressoWorkload Work;
      ExterminatorConfig Config;
      Config.MasterSeed = 0xbeef00 + Fault * 131 + Size;
      Config.Fault.Kind = FaultKind::BufferOverflow;
      // Mature-heap injection points, as in a long espresso run.
      Config.Fault.TriggerAllocation = 300 + Fault * 40;
      Config.Fault.OverflowBytes = Size;
      Config.Fault.OverflowDelay = 5 + Fault;
      Config.Fault.PatternSeed = 7000 + Fault;
      IterativeDriver Driver(Work, Config);
      const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/5);

      bool FaultIsolated = false;
      for (const IterativeEpisode &Ep : Outcome.Episodes) {
        Hardware += Ep.Result.HardwareFaults.size();
        if (!FaultIsolated && !Ep.Result.Overflows.empty()) {
          FaultIsolated = true;
          SumImages += Ep.ImagesUsed;
          ++Counted;
          if (Ep.ImagesUsed < MinImages)
            MinImages = Ep.ImagesUsed;
          if (Ep.ImagesUsed > MaxImages)
            MaxImages = Ep.ImagesUsed;
        }
      }
      Isolated += FaultIsolated;
      Corrected += Outcome.Corrected;
      for (const PadPatch &Pad : Outcome.Patches.pads())
        if (Pad.PadBytes >= Size) {
          ++PadOk;
          break;
        }
    }

    Out.addRow({fmt("%u", Size), "10", fmt("%u", Isolated),
                fmt("%u", Corrected),
                Counted ? fmt("%u", MinImages) : "-",
                Counted ? fmt("%.1f", double(SumImages) / Counted) : "-",
                Counted ? fmt("%u", MaxImages) : "-", fmt("%u", PadOk),
                fmt("%u", Hardware)});
    TotalIsolated += Isolated;
    TotalHardware += Hardware;
  }
  Out.print();
  note("paper reference: isolated=10/10 per size, 3 images in every case");
  note("origin attribution: %u software finding(s), %u hardware "
       "misclassification(s) (must be 0)",
       TotalIsolated, TotalHardware);

  if (!JsonPath.empty()) {
    JsonWriter Json;
    Json.beginObject();
    Json.field("schema_version", 1);
    Json.field("experiment", "injected_overflow");
    Json.field("software_findings", uint64_t(TotalIsolated));
    Json.field("hardware_misclassifications", uint64_t(TotalHardware));
    Json.field("software_attribution_pct",
               TotalIsolated + TotalHardware
                   ? 100.0 * TotalIsolated / (TotalIsolated + TotalHardware)
                   : 100.0);
    Json.endObject();
    if (!Json.writeFile(JsonPath)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    note("wrote %s", JsonPath.c_str());
  }
  return TotalHardware == 0 ? 0 : 1;
}

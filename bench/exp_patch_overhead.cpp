//===- bench/exp_patch_overhead.cpp - §7.3 patch overhead -----------------------===//
//
// Regenerates §7.3: runtime patches cost no execution time, only space.
//
// Overflow pads: space = pad size × maximum simultaneously-live patched
// objects (paper: 320–2816 bytes total for the 36-byte overflow
// experiment).  Dangling deferrals: added *drag* = object size × number
// of allocations the free is deferred (paper: 32–1024 bytes, under 1% of
// peak memory).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/CumulativeDriver.h"
#include "runtime/IterativeDriver.h"
#include "support/Statistics.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

int main() {
  heading("Sec 7.3: space overhead of runtime patches");

  // --- Overflow pads (36-byte faults, as the paper's worst case) -------
  note("pad overhead for 36-byte injected overflows (paper: 320-2816 B)");
  Table Pads({"fault", "pad(B)", "padded allocs", "peak live pad bytes"});
  RunningStat PadBytesStat;

  for (unsigned Fault = 0; Fault < 5; ++Fault) {
    EspressoWorkload Work;
    ExterminatorConfig Config;
    Config.MasterSeed = 0x0e0e00 + Fault * 577;
    Config.Fault.Kind = FaultKind::BufferOverflow;
    Config.Fault.TriggerAllocation = 300 + Fault * 50;
    Config.Fault.OverflowBytes = 36;
    Config.Fault.OverflowDelay = 5;
    Config.Fault.PatternSeed = 9000 + Fault;
    IterativeDriver Driver(Work, Config);
    const IterativeOutcome Outcome = Driver.run(5);
    if (Outcome.Patches.padCount() == 0) {
      Pads.addRow({fmt("%u", Fault), "-", "-", "not isolated"});
      continue;
    }

    // Replay under the patches and account the pad space actually paid.
    const SingleRunResult Patched = runWorkloadOnce(
        Work, 5, /*HeapSeed=*/0xfeed + Fault, Config, Outcome.Patches);
    uint32_t MaxPad = 0;
    for (const PadPatch &Pad : Outcome.Patches.pads())
      if (Pad.PadBytes > MaxPad)
        MaxPad = Pad.PadBytes;
    const uint64_t PeakPadded = Patched.Correction.MaxLivePadBytes;
    PadBytesStat.add(static_cast<double>(PeakPadded));
    Pads.addRow({fmt("%u", Fault), fmt("%u", MaxPad),
                 fmt("%llu", static_cast<unsigned long long>(
                                 Patched.Correction.PaddedAllocations)),
                 fmt("%llu",
                     static_cast<unsigned long long>(PeakPadded))});
  }
  Pads.print();
  if (PadBytesStat.count())
    note("total pad bytes per run: %.0f-%.0f (paper: 320-2816)",
         PadBytesStat.min(), PadBytesStat.max());

  // --- Dangling deferral drag ------------------------------------------
  note("");
  note("deferral drag for injected dangling pointers (paper: 32-1024 B, "
       "<1%% of peak memory)");
  Table Drag({"fault", "deferral(ticks)", "deferred frees",
              "max deferred bytes", "drag (byte-ticks)"});
  RunningStat DeferredBytesStat;

  for (unsigned Fault = 0; Fault < 5; ++Fault) {
    EspressoWorkload Work;
    ExterminatorConfig Config;
    Config.MasterSeed = 0xd4a600 + Fault * 733;
    Config.CanaryFillProbability = 0.5;
    Config.Fault.Kind = FaultKind::PrematureFree;
    Config.Fault.TriggerAllocation = 250 + Fault * 40;
    Config.Fault.PatternSeed = 400 + Fault;
    CumulativeDriver Driver(Work, Config);
    const CumulativeOutcome Outcome = Driver.run(5, /*MaxRuns=*/120);
    if (Outcome.Patches.deferralCount() == 0) {
      Drag.addRow({fmt("%u", Fault), "-", "-", "-", "not isolated"});
      continue;
    }

    const SingleRunResult Patched = runWorkloadOnce(
        Work, 5, /*HeapSeed=*/0xface + Fault, Config, Outcome.Patches);
    uint64_t MaxDefer = 0;
    for (const DeferralPatch &Deferral : Outcome.Patches.deferrals())
      if (Deferral.DeferTicks > MaxDefer)
        MaxDefer = Deferral.DeferTicks;
    DeferredBytesStat.add(
        static_cast<double>(Patched.Correction.MaxDeferredBytes));
    Drag.addRow(
        {fmt("%u", Fault), fmt("%llu", (unsigned long long)MaxDefer),
         fmt("%llu",
             (unsigned long long)Patched.Correction.DeferredFrees),
         fmt("%llu",
             (unsigned long long)Patched.Correction.MaxDeferredBytes),
         fmt("%llu",
             (unsigned long long)Patched.Correction.DragByteTicks)});
  }
  Drag.print();
  if (DeferredBytesStat.count())
    note("max bytes held by deferrals per run: %.0f-%.0f (paper: 32-1024)",
         DeferredBytesStat.min(), DeferredBytesStat.max());
  note("execution-time overhead of patches: none by construction — the "
       "correcting allocator only adds a hash lookup per malloc/free");
  return 0;
}

//===- bench/abl_canary_p.cpp - canary-probability ablation ---------------------===//
//
// Ablation of the canary fill probability p (§3.3, §5.2): "The choice of
// p reflects a tradeoff between the precision of the buffer overflow
// algorithm and dangling pointer isolation."  Low p leaves overflows
// undetected for longer (fewer canaried victims); high p makes every
// failed run canary the dangled object, removing the contrast the
// Bernoulli-trial classifier needs.  The paper sets p = 1/2.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/CumulativeDriver.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

int main() {
  heading("Ablation: canary fill probability p (paper uses 1/2)");
  note("cumulative mode over an injected dangling pointer; overflow "
       "detection health measured as corrupt-run fraction under an "
       "injected overflow");

  Table Out({"p", "dangling isolated (of 5)", "mean runs to isolate",
             "overflow corrupt-run fraction"});

  for (double P : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    // Dangling isolation under p, over several injected faults.
    unsigned Isolated = 0;
    double RunsSum = 0.0;
    for (unsigned Fault = 0; Fault < 5; ++Fault) {
      EspressoWorkload DanglingWork;
      ExterminatorConfig DanglingConfig;
      DanglingConfig.MasterSeed =
          0xab1a00 + static_cast<uint64_t>(P * 100) + Fault * 991;
      DanglingConfig.CanaryFillProbability = P;
      DanglingConfig.Fault.Kind = FaultKind::PrematureFree;
      DanglingConfig.Fault.TriggerAllocation = 250 + Fault * 35;
      DanglingConfig.Fault.PatternSeed = 100 + Fault;
      CumulativeDriver DanglingDriver(DanglingWork, DanglingConfig);
      const CumulativeOutcome Outcome =
          DanglingDriver.run(/*InputSeed=*/5, /*MaxRuns=*/120);
      if (Outcome.Isolated) {
        ++Isolated;
        RunsSum += Outcome.RunsToIsolation;
      }
    }

    // Overflow detection health under p: fraction of runs whose final
    // image shows the injected overflow's corruption.
    EspressoWorkload OverflowWork;
    ExterminatorConfig OverflowConfig;
    OverflowConfig.MasterSeed = 0xab1b00 + static_cast<uint64_t>(P * 100);
    OverflowConfig.CanaryFillProbability = P;
    OverflowConfig.Fault.Kind = FaultKind::BufferOverflow;
    OverflowConfig.Fault.TriggerAllocation = 400;
    OverflowConfig.Fault.OverflowBytes = 20;
    OverflowConfig.Fault.OverflowDelay = 5;
    OverflowConfig.Fault.PatternSeed = 77;
    unsigned Corrupt = 0;
    constexpr unsigned Probes = 20;
    RandomGenerator Seeds(0x9999);
    for (unsigned I = 0; I < Probes; ++I) {
      const SingleRunResult Run =
          runWorkloadOnce(OverflowWork, 5, Seeds.next(), OverflowConfig,
                          PatchSet());
      Corrupt += Run.ErrorSignalled ? 1 : 0;
    }

    Out.addRow({fmt("%.2f", P), fmt("%u", Isolated),
                Isolated ? fmt("%.1f", RunsSum / Isolated) : "never",
                fmt("%.2f", double(Corrupt) / Probes)});
  }
  Out.print();
  note("expected shape: overflow detection improves with p; dangling "
       "isolation needs 0 < p < 1 (p = 1 gives every failed run Y = 1 at "
       "X = 1: zero contrast)");
  return 0;
}

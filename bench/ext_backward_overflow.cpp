//===- bench/ext_backward_overflow.cpp - backward-overflow extension ------------===//
//
// Exercises the extension the paper names but does not implement (§2.1):
// backward overflows (underruns).  Ten underruns of two sizes are
// injected into the espresso-like workload; the extended isolator finds
// corruption at the same *negative* culprit-relative offset across
// images, and the correcting allocator contains it with a front pad
// (returning a shifted pointer).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "runtime/IterativeDriver.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

int main() {
  heading("Extension (sec 2.1): backward overflows / buffer underruns");
  note("not in the paper's implementation; detection uses the same "
       "same-delta agreement at negative offsets, correction front-pads");

  Table Out({"size(B)", "faults", "isolated", "front-padded", "corrected",
             "images(avg)"});

  for (uint32_t Size : {8u, 24u}) {
    unsigned Isolated = 0, FrontPadded = 0, Corrected = 0, SumImages = 0,
             Counted = 0;
    for (unsigned Fault = 0; Fault < 10; ++Fault) {
      EspressoWorkload Work;
      ExterminatorConfig Config;
      Config.MasterSeed = 0xbac0 + Fault * 449 + Size;
      Config.Fault.Kind = FaultKind::BufferUnderflow;
      Config.Fault.TriggerAllocation = 320 + Fault * 40;
      Config.Fault.OverflowBytes = Size;
      Config.Fault.OverflowDelay = 5;
      Config.Fault.PatternSeed = 4400 + Fault;
      IterativeDriver Driver(Work, Config);
      const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/5);

      bool FaultIsolated = false;
      for (const IterativeEpisode &Ep : Outcome.Episodes)
        if (!Ep.Result.Overflows.empty()) {
          FaultIsolated = true;
          SumImages += Ep.ImagesUsed;
          ++Counted;
          break;
        }
      Isolated += FaultIsolated;
      Corrected += Outcome.Corrected;
      for (const FrontPadPatch &Pad : Outcome.Patches.frontPads())
        if (Pad.PadBytes >= Size) {
          ++FrontPadded;
          break;
        }
    }
    Out.addRow({fmt("%u", Size), "10", fmt("%u", Isolated),
                fmt("%u", FrontPadded), fmt("%u", Corrected),
                Counted ? fmt("%.1f", double(SumImages) / Counted) : "-"});
  }
  Out.print();
  note("expected: isolation and correction parity with forward overflows");
  return 0;
}

//===- bench/exp_collaborative.cpp - §6.4 collaborative correction --------------===//
//
// Regenerates the §6.4 collaborative-correction scenario: different users
// hit different bugs in the same application; each produces a runtime
// patch file; the merge utility max-combines them into one patch file
// covering every observed error, which then fixes all bugs for everyone.
//
// The paper also reports patch file sizes ("the size of the runtime
// patches ... for injected errors in espresso was just 130K, and shrinks
// to 17K compressed"); we report our (binary, already compact) sizes.
//
// PR 3 extends this with the patch exchange: the same collaboration as a
// client/server service.  The bench measures the exchange's ingest
// throughput over the deterministic loopback transport (image
// submissions and summary submissions per second, full frame encode →
// decode → diagnose per item) and the ImageBundle saving (one
// cross-image site dictionary vs N independent v2 images).
//
// PR 6 adds the replicated fleet: the same summary stream submitted
// through a rotating FailoverTransport into a 3-server full mesh
// (journal streaming + anti-entropy over loopback), measuring fleet
// ingest throughput and the pump rounds until every server's patch
// set serializes bit-identically.
//
// PR 8 adds the observability-plane overhead measurement: the same
// 3-server fleet ingest run twice — once with a MetricsRegistry
// attached to every server and replica set, once bare — in alternating
// timed blocks.  PR 10 hardens the discipline: each side reports its
// *best* block (noise and scheduler interference only ever slow a
// block down, so best-of is the robust comparator), and a non-smoke
// run exits nonzero when the overhead exceeds the 2% target.
//
// PR 10 also adds the codec section: the LZ block codec's compression
// ratio and encode/decode throughput over a representative evidence
// stream (a v1 image bundle of replicated espresso dumps — the bytes
// the wire, the state dir, and the bundle container all now route
// through codec/), and the bundle comparison gains the v2 delta
// encoding next to v1 and independent images.
//
// --json FILE writes BENCH_exchange.json (schema in ROADMAP.md):
//   schema_version        4
//   config                {smoke, images_per_submission, rounds}
//   ingest[]              {kind, items, seconds, per_sec} for
//                         kind ∈ {image-submission, image, summary}
//   bundle                {images, bundle_bytes, v1_bytes,
//                          independent_bytes, ratio, v1_ratio}
//   codec                 {raw_bytes, compressed_bytes, ratio,
//                          encode_mb_per_sec, decode_mb_per_sec}
//   collaboration         {users, pads_merged, all_protected}
//   fleet                 {servers, summaries, seconds, per_sec,
//                          pump_rounds, records_streamed,
//                          replicated_summaries, duplicates_suppressed,
//                          converged_identical, patch_bytes}
//   stats_overhead        {rounds, summaries_per_round, base_per_sec,
//                          instrumented_per_sec, overhead_pct,
//                          target_pct}
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "codec/BlockCodec.h"
#include "exchange/FailoverTransport.h"
#include "exchange/PatchClient.h"
#include "exchange/PatchServer.h"
#include "exchange/Replication.h"
#include "heapimage/HeapImageIO.h"
#include "observe/MetricsRegistry.h"
#include "heapimage/ImageBundle.h"
#include "patch/PatchIO.h"
#include "patch/PatchMerge.h"
#include "runtime/IterativeDriver.h"
#include "workload/EspressoWorkload.h"
#include "workload/ScriptedBugs.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace exterminator;
using namespace benchreport;


int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: exp_collaborative [--smoke] [--json FILE]\n");
      return 2;
    }
  }

  heading("Sec 6.4: collaborative bug correction");
  note("three users, each hitting a different injected overflow; patches "
       "merge by maximum");

  struct UserBug {
    uint64_t Trigger;
    uint32_t Bytes;
  };
  const UserBug Bugs[3] = {{320, 8}, {430, 24}, {540, 36}};

  Table UsersTable({"user", "bug (alloc#, size)", "isolated", "pads",
                    "patch file (B)"});
  std::vector<PatchSet> UserPatches;
  std::vector<ExterminatorConfig> UserConfigs;

  for (unsigned User = 0; User < 3; ++User) {
    EspressoWorkload Work;
    ExterminatorConfig Config;
    Config.MasterSeed = 0xc011ab + User * 811;
    Config.Fault.Kind = FaultKind::BufferOverflow;
    Config.Fault.TriggerAllocation = Bugs[User].Trigger;
    Config.Fault.OverflowBytes = Bugs[User].Bytes;
    Config.Fault.OverflowDelay = 7;
    Config.Fault.PatternSeed = 5000 + User;
    UserConfigs.push_back(Config);

    IterativeDriver Driver(Work, Config);
    const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/5);
    UserPatches.push_back(Outcome.Patches);

    UsersTable.addRow(
        {fmt("%u", User),
         fmt("#%llu, %uB",
             static_cast<unsigned long long>(Bugs[User].Trigger),
             Bugs[User].Bytes),
         Outcome.Corrected ? "yes" : "no",
         fmt("%zu", Outcome.Patches.padCount()),
         fmt("%zu", serializePatchSet(Outcome.Patches).size())});
  }
  UsersTable.print();

  // The community merge, now through the exchange: every user's patches
  // seed one server, every user fetches the merged set.
  PatchServer MergeServer;
  for (const PatchSet &Patches : UserPatches)
    MergeServer.seedPatches(Patches);
  LoopbackTransport MergeTransport(MergeServer);
  PatchClient MergeClient(MergeTransport);
  if (!MergeClient.fetchPatches()) {
    std::fprintf(stderr, "exchange fetch failed\n");
    return 1;
  }
  const PatchSet &Merged = MergeClient.patches();
  note("merged patch (served at epoch %llu): %zu pads, %zu deferrals, "
       "%zu bytes on disk",
       static_cast<unsigned long long>(MergeClient.epoch()),
       Merged.padCount(), Merged.deferralCount(),
       serializePatchSet(Merged).size());

  Table Verify({"user", "own-bug run w/ merged patches", "DieFast signals"});
  unsigned AllFixed = 0;
  for (unsigned User = 0; User < 3; ++User) {
    EspressoWorkload Work;
    const SingleRunResult Run = runWorkloadOnce(
        Work, /*InputSeed=*/5, /*HeapSeed=*/0x4e5e + User,
        UserConfigs[User], Merged);
    const bool Clean = !Run.failed() && !Run.ErrorSignalled;
    AllFixed += Clean;
    Verify.addRow({fmt("%u", User), Clean ? "clean" : "STILL FAILING",
                   fmt("%llu", static_cast<unsigned long long>(
                                   Run.ErrorSignalled ? 1 : 0))});
  }
  Verify.print();
  note("users whose bug the merged patch fixes: %u/3 (paper: patches "
       "compose by construction)",
       AllFixed);

  //===--------------------------------------------------------------------===//
  // Exchange ingest throughput (loopback: deterministic, no socket noise)
  //===--------------------------------------------------------------------===//

  heading("PR 3: patch-exchange ingest throughput (loopback)");

  const unsigned ImagesPerSubmission = 3;
  const unsigned ImageRounds = Smoke ? 5 : 50;
  const unsigned SummaryRounds = Smoke ? 200 : 2000;

  const std::vector<HeapImage> Evidence =
      scriptedEvidenceImages(ImagesPerSubmission, /*OverflowBytes=*/9);
  DiagnosisPipeline Summarizer;
  const RunSummary Summary =
      Summarizer.summarize(Evidence.front(), /*Failed=*/true);

  PatchServer IngestServer;
  LoopbackTransport IngestTransport(IngestServer);
  PatchClient IngestClient(IngestTransport);

  // Image ingest: each submission frames a 3-image bundle, the server
  // decodes it and runs full §4 isolation.
  bool IngestOk = true;
  const double ImageSeconds = timeSeconds([&] {
    for (unsigned I = 0; I < ImageRounds; ++I)
      IngestOk &= IngestClient.submitImages({Evidence, {}});
  });
  const double SubmissionsPerSec = ImageRounds / ImageSeconds;
  const double ImagesPerSec =
      ImageRounds * double(ImagesPerSubmission) / ImageSeconds;

  // Summary ingest: the kilobyte-sized evidence cumulative mode ships.
  const double SummarySeconds = timeSeconds([&] {
    for (unsigned I = 0; I < SummaryRounds; ++I)
      IngestOk &= IngestClient.submitSummary(Summary, 0);
  });
  if (!IngestOk) {
    std::fprintf(stderr, "ingest submissions failed; throughput numbers "
                         "would be bogus\n");
    return 1;
  }
  const double SummariesPerSec = SummaryRounds / SummarySeconds;

  Table Ingest({"kind", "items", "seconds", "per second"});
  Ingest.addRow({"image submission (3-image bundle + isolation)",
                 fmt("%u", ImageRounds), fmt("%.3f", ImageSeconds),
                 fmt("%.0f", SubmissionsPerSec)});
  Ingest.addRow({"image", fmt("%u", ImageRounds * ImagesPerSubmission),
                 fmt("%.3f", ImageSeconds), fmt("%.0f", ImagesPerSec)});
  Ingest.addRow({"summary (+ Bayes classification)",
                 fmt("%u", SummaryRounds), fmt("%.3f", SummarySeconds),
                 fmt("%.0f", SummariesPerSec)});
  Ingest.print();
  const PatchServerStats IngestStats = IngestServer.stats();
  note("server counters: %llu images, %llu summaries, 0 expected "
       "rejects (got %llu)",
       static_cast<unsigned long long>(IngestStats.ImagesIngested),
       static_cast<unsigned long long>(IngestStats.SummariesIngested),
       static_cast<unsigned long long>(IngestStats.FramesRejected));

  //===--------------------------------------------------------------------===//
  // Replicated fleet ingest (3-server mesh, rotating failover)
  //===--------------------------------------------------------------------===//

  heading("PR 6: replicated fleet ingest (3-server mesh, rotating failover)");
  note("summaries enter round-robin through FailoverTransport; journal "
       "streaming + anti-entropy converge the mesh");

  const unsigned FleetSummaries = Smoke ? 150 : 1500;

  // Each server starts from a *different* user's patches, so
  // convergence below exercises real anti-entropy merging, not just
  // identical-state no-ops.
  PatchServer FleetServers[3];
  for (unsigned I = 0; I < 3; ++I)
    FleetServers[I].seedPatches(UserPatches[I]);

  std::vector<std::unique_ptr<ReplicaSet>> FleetReplicas;
  for (unsigned I = 0; I < 3; ++I) {
    auto Replicas = std::make_unique<ReplicaSet>(FleetServers[I]);
    for (unsigned J = 0; J < 3; ++J)
      if (J != I)
        Replicas->addPeer(fmt("s%u", J),
                          std::make_unique<LoopbackTransport>(
                              FleetServers[J]));
    FleetReplicas.push_back(std::move(Replicas));
  }

  LoopbackTransport FleetLinks[3] = {LoopbackTransport(FleetServers[0]),
                                     LoopbackTransport(FleetServers[1]),
                                     LoopbackTransport(FleetServers[2])};
  FailoverPolicy RotatePolicy;
  RotatePolicy.Rotate = true;
  FailoverTransport FleetTransport(
      {&FleetLinks[0], &FleetLinks[1], &FleetLinks[2]}, RotatePolicy,
      {"s0", "s1", "s2"});
  PatchClient FleetClient(FleetTransport);

  bool FleetOk = true;
  const double FleetSeconds = timeSeconds([&] {
    for (unsigned I = 0; I < FleetSummaries; ++I)
      FleetOk &= FleetClient.submitSummary(Summary, 0);
    for (auto &Replicas : FleetReplicas)
      FleetOk &= Replicas->drainOnce();
  });
  const double FleetPerSec = FleetSummaries / FleetSeconds;

  // Pump anti-entropy until every server's canonical serialization is
  // bit-identical (the wire/on-disk convergence the chaos tests pin).
  unsigned PumpRounds = 0;
  bool ConvergedIdentical = false;
  std::vector<uint8_t> FleetBytes;
  for (; PumpRounds < 8 && !ConvergedIdentical; ) {
    for (auto &Replicas : FleetReplicas)
      Replicas->antiEntropyOnce();
    ++PumpRounds;
    FleetBytes = serializePatchSet(FleetServers[0].snapshot().Patches);
    ConvergedIdentical =
        FleetBytes ==
            serializePatchSet(FleetServers[1].snapshot().Patches) &&
        FleetBytes == serializePatchSet(FleetServers[2].snapshot().Patches);
  }
  uint64_t RecordsStreamed = 0, ReplicatedSummaries = 0,
           DuplicatesSuppressed = 0, FleetRunsTotal = 0;
  for (unsigned I = 0; I < 3; ++I) {
    RecordsStreamed += FleetReplicas[I]->stats().RecordsStreamed;
    const PatchServerStats Stats = FleetServers[I].stats();
    ReplicatedSummaries += Stats.ReplicatedSummaries;
    DuplicatesSuppressed += Stats.DuplicatesSuppressed;
    FleetRunsTotal += FleetServers[I].cumulativeRuns();
  }
  // Every server must hold every summary exactly once: each one
  // ingested at its entry server and streamed to the other two, never
  // double-applied (dedup tokens).
  if (!FleetOk || !ConvergedIdentical ||
      FleetRunsTotal != 3ull * FleetSummaries) {
    std::fprintf(stderr, "fleet ingest failed, mesh did not converge, or "
                         "summary accounting is off\n");
    return 1;
  }

  Table Fleet({"metric", "value"});
  Fleet.addRow({"summaries via rotating failover",
                fmt("%u", FleetSummaries)});
  Fleet.addRow({"ingest+stream seconds", fmt("%.3f", FleetSeconds)});
  Fleet.addRow({"summaries/sec (fleet-wide)", fmt("%.0f", FleetPerSec)});
  Fleet.addRow({"anti-entropy rounds to converge", fmt("%u", PumpRounds)});
  Fleet.addRow({"journal records streamed", fmt("%llu",
                static_cast<unsigned long long>(RecordsStreamed))});
  Fleet.addRow({"replicated summaries applied", fmt("%llu",
                static_cast<unsigned long long>(ReplicatedSummaries))});
  Fleet.addRow({"duplicate tokens suppressed", fmt("%llu",
                static_cast<unsigned long long>(DuplicatesSuppressed))});
  Fleet.addRow({"converged patch bytes", fmt("%zu", FleetBytes.size())});
  Fleet.print();
  note("every server holds all %u summaries exactly once (total runs "
       "%llu = 3 x %u) and serializes the same merged set bit-for-bit",
       FleetSummaries, static_cast<unsigned long long>(FleetRunsTotal),
       FleetSummaries);

  //===--------------------------------------------------------------------===//
  // Observability-plane overhead (registry vs no-op)
  //===--------------------------------------------------------------------===//

  heading("PR 8: observability-plane overhead (registry vs no-op)");
  note("same 3-server fleet ingest, alternating bare and instrumented "
       "blocks, best block per side; the pull-collector design touches "
       "nothing on the ingest path, so the delta should be noise");

  const unsigned OverheadRounds = Smoke ? 6 : 12;
  const unsigned OverheadSummaries = Smoke ? 100 : 500;

  // One full fleet ingest block: fresh 3-server loopback mesh, summaries
  // in round-robin, one stream drain.  When \p Instrumented, every
  // server and replica set publishes into a registry and one scrape runs
  // at the end — the steady-state shape of a monitored fleet.
  auto fleetIngestSeconds = [&](bool Instrumented) -> double {
    MetricsRegistry Registry;
    PatchServer Servers[3];
    std::vector<std::unique_ptr<ReplicaSet>> Mesh;
    for (unsigned I = 0; I < 3; ++I) {
      auto Replicas = std::make_unique<ReplicaSet>(Servers[I]);
      for (unsigned J = 0; J < 3; ++J)
        if (J != I)
          Replicas->addPeer(fmt("s%u", J),
                            std::make_unique<LoopbackTransport>(Servers[J]));
      if (Instrumented) {
        Servers[I].attachMetrics(Registry);
        Replicas->attachMetrics(Registry);
      }
      Mesh.push_back(std::move(Replicas));
    }
    LoopbackTransport Links[3] = {LoopbackTransport(Servers[0]),
                                  LoopbackTransport(Servers[1]),
                                  LoopbackTransport(Servers[2])};
    FailoverPolicy Rotate;
    Rotate.Rotate = true;
    FailoverTransport Transport({&Links[0], &Links[1], &Links[2]}, Rotate,
                                {"s0", "s1", "s2"});
    PatchClient Client(Transport);
    bool Ok = true;
    const double Seconds = timeSeconds([&] {
      for (unsigned I = 0; I < OverheadSummaries; ++I)
        Ok &= Client.submitSummary(Summary, 0);
      for (auto &Replicas : Mesh)
        Ok &= Replicas->drainOnce();
    });
    if (Instrumented && Registry.snapshot().Samples.empty())
      Ok = false; // scrape must actually see the fleet
    return Ok ? Seconds : -1.0;
  };

  // Alternate bare/instrumented so clock drift and cache warmth hit
  // both sides equally; first pair is a discarded warmup.  Each side
  // reports its *best* block: a summed comparator lets one block that
  // ate a scheduler preemption or page-cache stall manufacture percent-
  // level "overhead" out of thin air (the committed 7.58% artifact),
  // while interference can only ever make a block slower, never faster
  // — so min-of-rounds converges on the true cost from above.
  fleetIngestSeconds(false);
  fleetIngestSeconds(true);
  double BestBase = 0.0, BestInstr = 0.0;
  bool OverheadOk = true;
  for (unsigned Round = 0; Round < OverheadRounds; ++Round) {
    const double Base = fleetIngestSeconds(false);
    const double Instr = fleetIngestSeconds(true);
    OverheadOk &= Base > 0.0 && Instr > 0.0;
    BestBase = Round == 0 ? Base : std::min(BestBase, Base);
    BestInstr = Round == 0 ? Instr : std::min(BestInstr, Instr);
  }
  if (!OverheadOk) {
    std::fprintf(stderr, "overhead measurement fleet failed\n");
    return 1;
  }
  const double OverheadTargetPct = 2.0;
  const double BasePerSec = OverheadSummaries / BestBase;
  const double InstrPerSec = OverheadSummaries / BestInstr;
  const double OverheadPct = (BestInstr / BestBase - 1.0) * 100.0;

  Table Overhead({"fleet", "summaries/block", "best block (s)",
                  "per second"});
  Overhead.addRow({"bare (no registry)", fmt("%u", OverheadSummaries),
                   fmt("%.3f", BestBase), fmt("%.0f", BasePerSec)});
  Overhead.addRow({"instrumented (registry + scrape)",
                   fmt("%u", OverheadSummaries), fmt("%.3f", BestInstr),
                   fmt("%.0f", InstrPerSec)});
  Overhead.print();
  note("observability overhead: %+.2f%% ingest cost over %u blocks/side "
       "(target: <= %.0f%%)",
       OverheadPct, OverheadRounds, OverheadTargetPct);
  if (!Smoke && OverheadPct > OverheadTargetPct) {
    std::fprintf(stderr,
                 "observability overhead %.2f%% exceeds the %.0f%% target\n",
                 OverheadPct, OverheadTargetPct);
    return 1;
  }

  //===--------------------------------------------------------------------===//
  // Bundle vs independent images
  //===--------------------------------------------------------------------===//

  heading("PR 10: delta ImageBundle vs v1 bundle vs independent images");
  // Replicated espresso dumps: the site-rich images real deployments
  // ship (the trace evidence above references too few sites to show the
  // shared dictionary off).
  const unsigned BundleImages = Smoke ? 3 : 5;
  std::vector<HeapImage> Dumps;
  for (unsigned I = 0; I < BundleImages; ++I) {
    EspressoWorkload Work;
    ExterminatorConfig Config;
    Dumps.push_back(
        runWorkloadOnce(Work, /*InputSeed=*/5, /*HeapSeed=*/11 + I * 101,
                        Config, PatchSet())
            .FinalImage);
  }
  size_t IndependentBytes = 0;
  for (const HeapImage &Image : Dumps)
    IndependentBytes += serializeHeapImage(Image).size();
  const size_t BundleV1Bytes =
      serializeImageBundle(Dumps, ImageBundleFormatV1).size();
  const size_t BundleBytes = serializeImageBundle(Dumps).size();
  const double Ratio = double(BundleBytes) / double(IndependentBytes);
  const double RatioV1 = double(BundleV1Bytes) / double(IndependentBytes);
  Table Bundles({"encoding", "bytes", "vs independent"});
  Bundles.addRow({"independent v2 images", fmt("%zu", IndependentBytes),
                  "1.000x"});
  Bundles.addRow({"v1 bundle (shared site dictionary)",
                  fmt("%zu", BundleV1Bytes), fmt("%.3fx", RatioV1)});
  Bundles.addRow({"v2 bundle (delta vs first image)",
                  fmt("%zu", BundleBytes), fmt("%.3fx", Ratio)});
  Bundles.print();
  note("%u replicated espresso dumps: delta encoding %.3fx of independent "
       "(target: <= 0.5, pinned by codec_test)",
       BundleImages, Ratio);
  if (Ratio > 0.5) {
    std::fprintf(stderr, "delta bundle ratio %.3f exceeds the 0.5 target\n",
                 Ratio);
    return 1;
  }

  //===--------------------------------------------------------------------===//
  // Block codec ratio and throughput
  //===--------------------------------------------------------------------===//

  heading("PR 10: block codec ratio + throughput");
  note("LZ block codec over a v1 evidence bundle — the byte stream wire "
       "frames, snapshots, and the bundle container all route through");

  // Representative input: the v1 bundle above — varint-packed metadata
  // and repeated slot structure, exactly what travels in SubmitImages
  // payloads and lands in the state dir.
  std::vector<uint8_t> CodecRaw =
      serializeImageBundle(Dumps, ImageBundleFormatV1);
  std::vector<uint8_t> CodecComp;
  const size_t CodecCompBytes = lzCompress(CodecRaw.data(), CodecRaw.size(),
                                           CodecComp);
  std::vector<uint8_t> CodecOut(CodecRaw.size());
  if (CodecCompBytes == 0 ||
      !lzDecompress(CodecComp.data(), CodecComp.size(), CodecOut.data(),
                    CodecOut.size()) ||
      CodecOut != CodecRaw) {
    std::fprintf(stderr, "codec round trip failed on bundle bytes\n");
    return 1;
  }
  const double CodecRatio = double(CodecCompBytes) / double(CodecRaw.size());

  // Best-of-blocks throughput, same discipline as stats_overhead: each
  // block runs the transform enough times to outlast timer noise.
  const unsigned CodecBlocks = Smoke ? 3 : 8;
  const unsigned CodecReps = Smoke ? 4 : 16;
  double BestEncode = 0.0, BestDecode = 0.0;
  for (unsigned Block = 0; Block < CodecBlocks; ++Block) {
    const double Encode = timeSeconds([&] {
      for (unsigned I = 0; I < CodecReps; ++I)
        lzCompress(CodecRaw.data(), CodecRaw.size(), CodecComp);
    });
    const double Decode = timeSeconds([&] {
      for (unsigned I = 0; I < CodecReps; ++I)
        lzDecompress(CodecComp.data(), CodecComp.size(), CodecOut.data(),
                     CodecOut.size());
    });
    BestEncode = Block == 0 ? Encode : std::min(BestEncode, Encode);
    BestDecode = Block == 0 ? Decode : std::min(BestDecode, Decode);
  }
  const double BlockMb = double(CodecRaw.size()) * CodecReps / 1e6;
  const double EncodeMbPerSec = BlockMb / BestEncode;
  const double DecodeMbPerSec = BlockMb / BestDecode;

  Table Codec({"metric", "value"});
  Codec.addRow({"raw bytes", fmt("%zu", CodecRaw.size())});
  Codec.addRow({"compressed bytes", fmt("%zu", CodecCompBytes)});
  Codec.addRow({"ratio", fmt("%.3f", CodecRatio)});
  Codec.addRow({fmt("encode MB/s (best of %u blocks)", CodecBlocks),
                fmt("%.0f", EncodeMbPerSec)});
  Codec.addRow({fmt("decode MB/s (best of %u blocks)", CodecBlocks),
                fmt("%.0f", DecodeMbPerSec)});
  Codec.print();
  note("paper reference: espresso patches were \"130K, and shrinks to 17K "
       "compressed\" — compression has been part of the story since §6.4");

  //===--------------------------------------------------------------------===//
  // Machine-readable report
  //===--------------------------------------------------------------------===//

  if (!JsonPath.empty()) {
    JsonWriter Json;
    Json.beginObject();
    Json.field("schema_version", 4);
    Json.beginObject("config");
    Json.field("smoke", Smoke);
    Json.field("images_per_submission", int(ImagesPerSubmission));
    Json.field("image_rounds", int(ImageRounds));
    Json.field("summary_rounds", int(SummaryRounds));
    Json.field("fleet_summaries", int(FleetSummaries));
    Json.endObject();
    Json.beginArray("ingest");
    Json.beginObject();
    Json.field("kind", "image-submission");
    Json.field("items", uint64_t(ImageRounds));
    Json.field("seconds", ImageSeconds);
    Json.field("per_sec", SubmissionsPerSec);
    Json.endObject();
    Json.beginObject();
    Json.field("kind", "image");
    Json.field("items", uint64_t(ImageRounds) * ImagesPerSubmission);
    Json.field("seconds", ImageSeconds);
    Json.field("per_sec", ImagesPerSec);
    Json.endObject();
    Json.beginObject();
    Json.field("kind", "summary");
    Json.field("items", uint64_t(SummaryRounds));
    Json.field("seconds", SummarySeconds);
    Json.field("per_sec", SummariesPerSec);
    Json.endObject();
    Json.endArray();
    Json.beginObject("bundle");
    Json.field("images", uint64_t(BundleImages));
    Json.field("bundle_bytes", uint64_t(BundleBytes));
    Json.field("v1_bytes", uint64_t(BundleV1Bytes));
    Json.field("independent_bytes", uint64_t(IndependentBytes));
    Json.field("ratio", Ratio);
    Json.field("v1_ratio", RatioV1);
    Json.endObject();
    Json.beginObject("codec");
    Json.field("raw_bytes", uint64_t(CodecRaw.size()));
    Json.field("compressed_bytes", uint64_t(CodecCompBytes));
    Json.field("ratio", CodecRatio);
    Json.field("encode_mb_per_sec", EncodeMbPerSec);
    Json.field("decode_mb_per_sec", DecodeMbPerSec);
    Json.endObject();
    Json.beginObject("collaboration");
    Json.field("users", 3);
    Json.field("pads_merged", uint64_t(Merged.padCount()));
    Json.field("all_protected", AllFixed == 3);
    Json.endObject();
    Json.beginObject("fleet");
    Json.field("servers", 3);
    Json.field("summaries", uint64_t(FleetSummaries));
    Json.field("seconds", FleetSeconds);
    Json.field("per_sec", FleetPerSec);
    Json.field("pump_rounds", uint64_t(PumpRounds));
    Json.field("records_streamed", RecordsStreamed);
    Json.field("replicated_summaries", ReplicatedSummaries);
    Json.field("duplicates_suppressed", DuplicatesSuppressed);
    Json.field("converged_identical", ConvergedIdentical);
    Json.field("patch_bytes", uint64_t(FleetBytes.size()));
    Json.endObject();
    Json.beginObject("stats_overhead");
    Json.field("rounds", uint64_t(OverheadRounds));
    Json.field("summaries_per_round", uint64_t(OverheadSummaries));
    Json.field("base_per_sec", BasePerSec);
    Json.field("instrumented_per_sec", InstrPerSec);
    Json.field("overhead_pct", OverheadPct);
    Json.field("target_pct", OverheadTargetPct);
    Json.endObject();
    Json.endObject();
    if (!Json.writeFile(JsonPath)) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    note("wrote %s", JsonPath.c_str());
  }
  return 0;
}

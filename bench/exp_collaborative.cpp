//===- bench/exp_collaborative.cpp - §6.4 collaborative correction --------------===//
//
// Regenerates the §6.4 collaborative-correction scenario: different users
// hit different bugs in the same application; each produces a runtime
// patch file; the merge utility max-combines them into one patch file
// covering every observed error, which then fixes all bugs for everyone.
//
// The paper also reports patch file sizes ("the size of the runtime
// patches ... for injected errors in espresso was just 130K, and shrinks
// to 17K compressed"); we report our (binary, already compact) sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "patch/PatchIO.h"
#include "patch/PatchMerge.h"
#include "runtime/IterativeDriver.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>

using namespace exterminator;
using namespace benchreport;

int main() {
  heading("Sec 6.4: collaborative bug correction");
  note("three users, each hitting a different injected overflow; patches "
       "merge by maximum");

  struct UserBug {
    uint64_t Trigger;
    uint32_t Bytes;
  };
  const UserBug Bugs[3] = {{320, 8}, {430, 24}, {540, 36}};

  Table Users({"user", "bug (alloc#, size)", "isolated", "pads",
               "patch file (B)"});
  std::vector<PatchSet> UserPatches;
  std::vector<ExterminatorConfig> UserConfigs;

  for (unsigned User = 0; User < 3; ++User) {
    EspressoWorkload Work;
    ExterminatorConfig Config;
    Config.MasterSeed = 0xc011ab + User * 811;
    Config.Fault.Kind = FaultKind::BufferOverflow;
    Config.Fault.TriggerAllocation = Bugs[User].Trigger;
    Config.Fault.OverflowBytes = Bugs[User].Bytes;
    Config.Fault.OverflowDelay = 7;
    Config.Fault.PatternSeed = 5000 + User;
    UserConfigs.push_back(Config);

    IterativeDriver Driver(Work, Config);
    const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/5);
    UserPatches.push_back(Outcome.Patches);

    Users.addRow({fmt("%u", User),
                  fmt("#%llu, %uB",
                      static_cast<unsigned long long>(Bugs[User].Trigger),
                      Bugs[User].Bytes),
                  Outcome.Corrected ? "yes" : "no",
                  fmt("%zu", Outcome.Patches.padCount()),
                  fmt("%zu", serializePatchSet(Outcome.Patches).size())});
  }
  Users.print();

  // Merge and verify: every user's bug must be fixed by the merged file.
  const PatchSet Merged = mergePatchSets(UserPatches);
  note("merged patch: %zu pads, %zu deferrals, %zu bytes on disk",
       Merged.padCount(), Merged.deferralCount(),
       serializePatchSet(Merged).size());

  Table Verify({"user", "own-bug run w/ merged patches", "DieFast signals"});
  unsigned AllFixed = 0;
  for (unsigned User = 0; User < 3; ++User) {
    EspressoWorkload Work;
    const SingleRunResult Run = runWorkloadOnce(
        Work, /*InputSeed=*/5, /*HeapSeed=*/0x4e5e + User,
        UserConfigs[User], Merged);
    const bool Clean = !Run.failed() && !Run.ErrorSignalled;
    AllFixed += Clean;
    Verify.addRow({fmt("%u", User), Clean ? "clean" : "STILL FAILING",
                   fmt("%llu", static_cast<unsigned long long>(
                                   Run.ErrorSignalled ? 1 : 0))});
  }
  Verify.print();
  note("users whose bug the merged patch fixes: %u/3 (paper: patches "
       "compose by construction)",
       AllFixed);
  return 0;
}

//===- examples/espresso_dangling.cpp - cumulative-mode deployment --------------===//
//
// Cumulative mode (§5) as a deployment story: an espresso-like program
// with an injected premature free runs "in the field" — every execution
// different, no replay, no replication.  Each run contributes a few
// hundred bytes of statistics; after enough failures the Bayesian
// classifier fingers the (allocation site, free site) pair and emits a
// deferral patch that keeps the object alive past its last use.
//
// Build & run:  ./build/examples/espresso_dangling
//
//===----------------------------------------------------------------------===//

#include "runtime/CumulativeDriver.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>

using namespace exterminator;

int main() {
  EspressoWorkload Program;

  ExterminatorConfig Config;
  Config.MasterSeed = 0xe59d;
  Config.CanaryFillProbability = 0.5; // cumulative mode: p = 1/2 (§5.2)
  Config.Fault.Kind = FaultKind::PrematureFree; // the injected bug
  Config.Fault.TriggerAllocation = 285;
  Config.Fault.PatternSeed = 104;

  std::printf("deploying the buggy program; collecting per-run summaries"
              " (p = 1/2)...\n");
  CumulativeDriver Driver(Program, Config);
  const CumulativeOutcome Outcome =
      Driver.run(/*InputSeed=*/5, /*MaxRuns=*/150);

  std::printf("%u runs executed, %u failed, %u showed heap corruption\n",
              Outcome.RunsExecuted, Outcome.FailuresObserved,
              Outcome.CorruptRuns);
  if (!Outcome.Isolated) {
    std::printf("the classifier never crossed the threshold (the dangled "
                "object may be benign under this seed)\n");
    return 1;
  }

  std::printf("isolated after %u runs (%u failures) - the paper needed "
              "22-34 runs / ~15 failures for espresso\n",
              Outcome.RunsToIsolation, Outcome.FailuresToIsolation);
  for (const CumulativeDanglingFinding &Finding : Outcome.Danglings) {
    std::printf("  dangling pair: alloc site %08x / free site %08x, "
                "log Bayes factor %.1f (threshold %.1f)\n",
                Finding.AllocSite, Finding.FreeSite,
                Finding.LogBayesFactor, Finding.LogThreshold);
  }
  for (const DeferralPatch &Deferral : Outcome.Patches.deferrals())
    std::printf("  patch: defer frees at (%08x, %08x) by %llu "
                "allocations\n",
                Deferral.AllocSite, Deferral.FreeSite,
                static_cast<unsigned long long>(Deferral.DeferTicks));

  std::printf("patched deployment: %s\n",
              Outcome.Corrected ? "failure-free (verified)"
                                : "still failing");
  return Outcome.Corrected ? 0 : 1;
}

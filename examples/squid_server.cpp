//===- examples/squid_server.cpp - fixing a server without a restart ------------===//
//
// The Squid scenario (§7.2) as a mini case study: a caching server with a
// 6-byte buffer overflow triggered by malformed requests.
//
//   * Under the baseline allocator the overrun silently corrupts heap
//     metadata — the real Squid 2.3s5 crashed here.
//   * Under Exterminator the server keeps answering requests, the
//     corruption lands on a canary, iterative isolation fingers the one
//     allocation site, and a 6-byte pad fixes it — current *and* future
//     executions.
//
// Build & run:  ./build/examples/squid_server
//
//===----------------------------------------------------------------------===//

#include "patch/PatchIO.h"
#include "runtime/IterativeDriver.h"
#include "workload/SquidWorkload.h"

#include <cstdio>

using namespace exterminator;

int main() {
  SquidWorkload Server; // 150 requests, one of them malformed

  std::printf("=== serving requests under Exterminator (iterative mode)"
              " ===\n");
  ExterminatorConfig Config;
  Config.MasterSeed = 0x59d1d;
  IterativeDriver Driver(Server, Config);
  const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/1);

  if (Outcome.Episodes.empty()) {
    std::printf("the malformed request never corrupted anything "
                "observable - rerun\n");
    return 1;
  }

  const IterativeEpisode &Episode = Outcome.Episodes.front();
  std::printf("request stream completed: %s\n",
              Episode.DiscoveryStatus == RunStatusKind::Success
                  ? "yes (overflow tolerated, server never went down)"
                  : "no");
  std::printf("DieFast flagged corruption at allocation %llu; %u heap "
              "images collected\n",
              static_cast<unsigned long long>(Episode.BreakpointTime),
              Episode.ImagesUsed);

  for (const PadPatch &Pad : Outcome.Patches.pads()) {
    std::printf("patch: pad allocation site %08x by %u bytes%s\n",
                Pad.AllocSite, Pad.PadBytes,
                Pad.AllocSite == SquidWorkload::overflowSite()
                    ? "  <- the buggy URL-rewrite buffer"
                    : "");
  }

  // Persist the patch the way a deployment would; the next server start
  // loads it and the bug is gone before the first request.
  const char *PatchFile = "/tmp/squid_exterminator.xpt";
  if (savePatchSet(Outcome.Patches, PatchFile))
    std::printf("patch written to %s\n", PatchFile);

  std::printf("patched server run: %s\n",
              Outcome.Corrected ? "clean (verified)" : "still failing");
  return Outcome.Corrected ? 0 : 1;
}

//===- examples/browser_replicas.cpp - replicated mode with a voter -------------===//
//
// Replicated mode (§3.4, Figure 5): three replicas with independently
// randomized heaps process the same input; a voter compares their
// outputs.  An injected overflow makes one replica diverge or DieFast
// signal; the lockstep heap dumps feed the isolator and the patches are
// reloaded into the running replicas — correction on-the-fly, no replay
// of old inputs needed.
//
// Build & run:  ./build/examples/browser_replicas
//
//===----------------------------------------------------------------------===//

#include "runtime/ReplicatedDriver.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>

using namespace exterminator;

int main() {
  EspressoWorkload App;

  ExterminatorConfig Config;
  Config.MasterSeed = 0x3ca5;
  Config.Fault.Kind = FaultKind::BufferOverflow;
  Config.Fault.TriggerAllocation = 420;
  Config.Fault.OverflowBytes = 24;
  Config.Fault.OverflowDelay = 9;
  Config.Fault.PatternSeed = 2024;

  std::printf("launching 3 replicas with independently randomized "
              "heaps...\n");
  ReplicatedDriver Driver(App, Config, /*NumReplicas=*/3);
  const ReplicatedOutcome Outcome = Driver.run(/*InputSeed=*/5);

  for (size_t R = 0; R < Outcome.Rounds.size(); ++R) {
    const ReplicatedRound &Round = Outcome.Rounds[R];
    std::printf("round %zu: vote %s (%zu winner(s), %zu dissenter(s))",
                R, Round.Vote.HasWinner ? "decided" : "hung",
                Round.Vote.Winners.size(), Round.Vote.Dissenters.size());
    if (Round.ErrorDetected) {
      std::printf("; error detected, heap images dumped at allocation "
                  "%llu",
                  static_cast<unsigned long long>(Round.DumpTime));
      if (!Round.Result.Patches.empty())
        std::printf("; patches reloaded into replicas");
    }
    std::printf("\n");
  }

  std::printf("outcome: %s\n",
              Outcome.Corrected
                  ? "replicas unanimous under the generated patches"
              : Outcome.ErrorFree ? "no error ever manifested"
                                  : "error not correctable this session");
  if (!Outcome.Output.empty())
    std::printf("voted output: %zu bytes\n", Outcome.Output.size());
  return Outcome.Corrected || Outcome.ErrorFree ? 0 : 1;
}

//===- examples/quickstart.cpp - Exterminator in five minutes -------------------===//
//
// The smallest end-to-end tour of the public API:
//
//   1. run a buggy program on the Exterminator heap stack,
//   2. watch DieFast detect the corruption,
//   3. isolate the error from a few randomized heap images,
//   4. apply the generated runtime patch and watch the bug disappear.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "runtime/IterativeDriver.h"
#include "workload/TraceWorkload.h"

#include <cstdio>

using namespace exterminator;

int main() {
  // --- A buggy "program": allocates buffers and overruns one of them.
  // TraceWorkload scripts allocator traffic; real programs implement the
  // Workload interface instead (see examples/squid_server.cpp).
  constexpr uint32_t MakeBuffer = 0x11, MakeNode = 0x22, Release = 0x33;
  std::vector<TraceOp> Program;
  // Warm the heap: a few hundred allocations with frees, like any
  // program that has been running for a moment.
  for (uint32_t Round = 0; Round < 6; ++Round) {
    for (uint32_t I = 0; I < 30; ++I)
      Program.push_back(
          TraceOp::alloc(1000 + Round * 30 + I, 64, MakeNode));
    for (uint32_t I = 0; I < 30; ++I)
      Program.push_back(TraceOp::free(1000 + Round * 30 + I, Release));
  }
  // The bug: a 64-byte buffer written with 80 bytes of data.
  Program.push_back(TraceOp::alloc(7, 64, MakeBuffer));
  Program.push_back(TraceOp::write(7, 0, 64, 0x41));  // fine
  Program.push_back(TraceOp::write(7, 64, 16, 0x42)); // 16 bytes too far!
  // More program activity, so the corruption gets a chance to be seen.
  for (uint32_t I = 0; I < 12; ++I) {
    Program.push_back(TraceOp::alloc(2000 + I, 64, MakeNode));
    Program.push_back(TraceOp::free(2000 + I, Release));
  }
  TraceWorkload BuggyProgram(Program);

  // --- Run it under Exterminator's iterative mode.
  std::printf("running the buggy program under Exterminator...\n");
  ExterminatorConfig Config; // defaults: M = 2, canaries everywhere
  Config.MasterSeed = 0x91c4;
  IterativeDriver Driver(BuggyProgram, Config);
  const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/1);

  // --- What happened?
  if (Outcome.ErrorFree) {
    std::printf("no error manifested (unlucky randomization) - rerun!\n");
    return 0;
  }
  for (const IterativeEpisode &Episode : Outcome.Episodes) {
    std::printf("episode: %s at allocation %llu, %u heap images used\n",
                Episode.SignalAnchored ? "DieFast signalled corruption"
                                       : "program failed",
                static_cast<unsigned long long>(Episode.BreakpointTime),
                Episode.ImagesUsed);
    for (const OverflowCandidate &Candidate : Episode.Result.Overflows)
      std::printf("  overflow culprit: allocation site %08x, pad %u "
                  "bytes (confidence %.6f)\n",
                  Candidate.CulpritAllocSite, Candidate.PadBytes,
                  Candidate.Score);
  }

  std::printf("runtime patches generated: %zu pad(s), %zu deferral(s)\n",
              Outcome.Patches.padCount(), Outcome.Patches.deferralCount());
  std::printf("patched rerun: %s\n",
              Outcome.Corrected ? "clean - the bug is corrected"
                                : "still failing");
  return Outcome.Corrected ? 0 : 1;
}

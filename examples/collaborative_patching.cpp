//===- examples/collaborative_patching.cpp - a community fixing itself ----------===//
//
// Collaborative correction (§6.4): three users run the same application;
// each hits a different bug and each copy of Exterminator writes a
// runtime patch file.  The merge utility max-combines the files; the
// merged patch protects every user from every observed bug — including
// bugs they never personally hit.
//
// Build & run:  ./build/examples/collaborative_patching
//
//===----------------------------------------------------------------------===//

#include "patch/PatchIO.h"
#include "patch/PatchMerge.h"
#include "runtime/IterativeDriver.h"
#include "workload/EspressoWorkload.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace exterminator;

int main() {
  // Three users, three different latent overflows in "the same app".
  struct User {
    const char *Name;
    uint64_t Trigger;
    uint32_t Bytes;
  };
  const User Users[3] = {{"alice", 320, 8}, {"bob", 430, 24},
                         {"carol", 540, 36}};

  std::vector<std::string> PatchFiles;
  std::vector<ExterminatorConfig> Configs;

  for (const User &U : Users) {
    EspressoWorkload App;
    ExterminatorConfig Config;
    Config.MasterSeed = 0xabc0de ^ U.Trigger;
    Config.Fault.Kind = FaultKind::BufferOverflow;
    Config.Fault.TriggerAllocation = U.Trigger;
    Config.Fault.OverflowBytes = U.Bytes;
    Config.Fault.OverflowDelay = 7;
    Config.Fault.PatternSeed = U.Trigger * 3;
    Configs.push_back(Config);

    IterativeDriver Driver(App, Config);
    const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/5);

    const std::string File =
        std::string("/tmp/exterminator_") + U.Name + ".xpt";
    savePatchSet(Outcome.Patches, File);
    PatchFiles.push_back(File);
    std::printf("%s hit a %u-byte overflow -> %zu pad patch(es), saved "
                "to %s (%zu bytes)\n",
                U.Name, U.Bytes, Outcome.Patches.padCount(), File.c_str(),
                serializePatchSet(Outcome.Patches).size());
  }

  // The community merge: one file covering everyone's bugs.
  const std::string MergedFile = "/tmp/exterminator_community.xpt";
  if (!mergePatchFiles(PatchFiles, MergedFile)) {
    std::printf("merge failed\n");
    return 1;
  }
  PatchSet Merged;
  loadPatchSet(MergedFile, Merged);
  std::printf("\nmerged community patch: %zu pads, %zu deferrals -> %s\n",
              Merged.padCount(), Merged.deferralCount(),
              MergedFile.c_str());

  // Every user re-runs *their* buggy scenario under the merged patch.
  unsigned Protected = 0;
  for (unsigned I = 0; I < 3; ++I) {
    EspressoWorkload App;
    const SingleRunResult Run = runWorkloadOnce(
        App, /*InputSeed=*/5, /*HeapSeed=*/0x600d + I, Configs[I], Merged);
    const bool Clean = !Run.failed() && !Run.ErrorSignalled;
    Protected += Clean;
    std::printf("%s under the community patch: %s\n", Users[I].Name,
                Clean ? "protected" : "STILL EXPOSED");
  }
  std::printf("\n%u/3 users protected by patches their neighbors "
              "generated\n",
              Protected);
  return Protected == 3 ? 0 : 1;
}

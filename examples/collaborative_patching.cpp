//===- examples/collaborative_patching.cpp - a community fixing itself ----------===//
//
// Collaborative correction (§6.4) over the patch exchange: three users
// run the same application; each hits a different latent overflow.
// Instead of mailing patch files around (the PR-2 flow), every user's
// Exterminator ships its *evidence* — a bundle of heap images — to a
// patch server over a Unix socket, concurrently.  The server's
// DiagnosisPipeline isolates each bug and max-merges the patches into
// one versioned set; every user then pulls the community set and is
// protected from every observed bug, including bugs they never hit.
//
// Build & run:  ./build/examples/collaborative_patching
//
//===----------------------------------------------------------------------===//

#include "exchange/PatchClient.h"
#include "exchange/PatchServer.h"
#include "exchange/SocketTransport.h"
#include "runtime/Exterminator.h"
#include "workload/ScriptedBugs.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace exterminator;

namespace {

/// "The same app" — the canonical scripted overflow
/// (workload/ScriptedBugs.h) whose buggy site and overflow size depend
/// on which input a user feeds it.
std::vector<TraceOp> appTrace(uint32_t CulpritSite, uint32_t OverflowBytes) {
  ScriptedBugSites Sites;
  Sites.Culprit = CulpritSite;
  Sites.Bystander = 0xb0b;
  Sites.Free = 0xf3ee;
  return scriptedOverflowTrace(OverflowBytes, Sites);
}

struct User {
  const char *Name;
  uint32_t CulpritSite;
  uint32_t Bytes;
};

constexpr User Users[3] = {{"alice", 0xa11ce, 8},
                           {"bob", 0xb0b0, 24},
                           {"carol", 0xca401, 36}};

/// One run of a user's buggy input; patched runs should come back clean.
SingleRunResult runOnce(const User &U, uint64_t HeapSeed,
                        const PatchSet &Patches) {
  TraceWorkload Work(appTrace(U.CulpritSite, U.Bytes));
  ExterminatorConfig Config;
  return runWorkloadOnce(Work, /*InputSeed=*/1, HeapSeed, Config, Patches);
}

} // namespace

int main() {
  // The community's patch server.
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/3);
  Endpoint Ep;
  if (!parseEndpoint("unix:/tmp/exterminator_exchange.sock", Ep) ||
      !Front.listen(Ep) || !Front.start()) {
    std::printf("cannot start patch server\n");
    return 1;
  }
  std::printf("patch server on %s\n",
              endpointToString(Front.endpoint()).c_str());

  // Each user hits their own bug and ships image evidence — concurrent
  // client threads over the real socket transport.
  std::vector<std::thread> Clients;
  for (unsigned I = 0; I < 3; ++I) {
    Clients.emplace_back([I, &Front] {
      const User &U = Users[I];
      ImageEvidence Evidence;
      for (unsigned Run = 0; Run < 3; ++Run)
        Evidence.Primary.push_back(
            runOnce(U, 1000 + I * 101 + Run * 7919, PatchSet())
                .FinalImage);

      SocketClientTransport Transport(Front.endpoint());
      PatchClient Client(Transport);
      ImagesReply Reply;
      if (!Client.submitImages(Evidence, &Reply)) {
        std::printf("%s: submission failed\n", U.Name);
        return;
      }
      std::printf("%s hit a %u-byte overflow -> shipped %zu images, "
                  "server isolated %llu overflow(s) (epoch %llu)\n",
                  U.Name, U.Bytes, Evidence.Primary.size(),
                  static_cast<unsigned long long>(Reply.OverflowFindings),
                  static_cast<unsigned long long>(Reply.Epoch));
    });
  }
  for (std::thread &T : Clients)
    T.join();

  // Any client can now pull the community's merged set.
  SocketClientTransport Transport(Front.endpoint());
  PatchClient Community(Transport);
  if (!Community.fetchPatches()) {
    std::printf("fetch failed\n");
    return 1;
  }
  std::printf("\ncommunity patch set: epoch %llu, %zu pads, %zu "
              "deferrals\n",
              static_cast<unsigned long long>(Community.epoch()),
              Community.patches().padCount(),
              Community.patches().deferralCount());

  // Every user re-runs *their* buggy input under the fetched set.
  unsigned Protected = 0;
  for (unsigned I = 0; I < 3; ++I) {
    const SingleRunResult Run =
        runOnce(Users[I], 0x600d + I, Community.patches());
    const bool Clean = !Run.failed() && !Run.ErrorSignalled;
    Protected += Clean;
    std::printf("%s under the community patches: %s\n", Users[I].Name,
                Clean ? "protected" : "STILL EXPOSED");
  }
  std::printf("\n%u/3 users protected by evidence their neighbors "
              "submitted\n",
              Protected);

  const PatchServerStats Stats = Server.stats();
  std::printf("server ingested %llu image(s) across %llu fetch(es)\n",
              static_cast<unsigned long long>(Stats.ImagesIngested),
              static_cast<unsigned long long>(Stats.FetchesServed));
  Front.stop();
  return Protected == 3 ? 0 : 1;
}

//===- observe/MetricsRegistry.h - Process-wide metrics plane ---*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live observability plane's measurement half: a registry of
/// counters, gauges, and fixed-bucket latency histograms that every
/// fleet subsystem publishes into.
///
/// Two publication models coexist, chosen by call-site cost budget:
///
///  - Push handles (Counter / Gauge / Histogram): one relaxed atomic op
///    per observation.  Used only where the surrounding work dwarfs the
///    atomic — journal fwrite/fsync latency.  Handles are null-safe: a
///    default-constructed handle ignores observations, which is how
///    subsystems run un-instrumented at zero cost when no registry is
///    attached (and how the stats_overhead bench gets its no-op
///    comparator).
///
///  - Pull collectors: callbacks that read a subsystem's existing stats
///    struct (PatchServerStats, ReplicaSetStats, AllocatorStats, the
///    Bayes accumulators) only at snapshot time.  The hot path pays
///    nothing; the scrape pays one mutex acquisition per subsystem.
///
/// snapshot() flattens both into a point-in-time MetricsSnapshot.
/// renderText() serializes a snapshot in the Prometheus text-exposition
/// idiom (`name{label="v"} value` with `# TYPE` comments) — the format
/// `xtermtool stats` prints and CI greps.  Histograms flatten into
/// `_bucket{le="..."}` / `_sum` / `_count` series plus interpolated
/// p50/p99 `{quantile="..."}` gauges.  The grammar is documented in
/// ROADMAP.md ("Observability plane").
///
/// Locking: the registry mutex guards registration lists and the
/// collector walk; push handles never take it.  Collectors run with the
/// registry mutex held and therefore must not call back into the
/// registry, and any subsystem lock a collector takes must never be
/// held while registering metrics or snapshotting.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_OBSERVE_METRICSREGISTRY_H
#define EXTERMINATOR_OBSERVE_METRICSREGISTRY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace exterminator {

class Allocator;

/// Whether a sample is monotone (counter) or instantaneous (gauge) —
/// carried on the Stats wire reply so `xtermtool watch` can tell rates
/// from levels.
enum class SampleKind : uint8_t {
  Counter = 0,
  Gauge = 1,
};

/// One flattened metric observation.
struct MetricSample {
  std::string Name;
  /// Rendered label body without the braces, e.g. `peer="S1"` or
  /// `kind="overflow",site="0x00000abc"`; empty for unlabelled metrics.
  /// Compose pairs with MetricsRegistry::label so values are escaped.
  std::string Labels;
  double Value = 0.0;
  SampleKind Kind = SampleKind::Gauge;
};

/// A point-in-time flattening of every registered instrument and
/// collector output.
struct MetricsSnapshot {
  std::vector<MetricSample> Samples;

  /// First sample matching \p Name (and \p Labels when non-empty);
  /// nullptr when absent.
  const MetricSample *find(std::string_view Name,
                           std::string_view Labels = {}) const;

  /// Max over every sample named \p Name — how alert rules aggregate a
  /// labelled family down to one value.  Empty when the name is absent.
  std::optional<double> maxValue(std::string_view Name) const;
};

/// Histogram bucket upper bounds in seconds: a 1-2-5 decade ladder from
/// 1 microsecond to 10 seconds, plus an implicit +Inf overflow bucket.
inline constexpr double HistogramBucketBounds[] = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};
inline constexpr size_t NumHistogramBuckets =
    sizeof(HistogramBucketBounds) / sizeof(HistogramBucketBounds[0]);

/// The registry.  Thread-safe; instruments live as long as the registry
/// (handles hold raw pointers into it).
class MetricsRegistry {
  struct CounterCell {
    std::string Name, Labels;
    std::atomic<uint64_t> Value{0};
  };
  struct GaugeCell {
    std::string Name, Labels;
    std::atomic<double> Value{0.0};
  };
  struct HistogramCell {
    std::string Name, Labels;
    /// Per-bucket observation counts; the final slot is the +Inf
    /// overflow bucket.
    std::array<std::atomic<uint64_t>, NumHistogramBuckets + 1> Counts{};
    /// Total observed time in nanoseconds (u64 keeps the hot-path add a
    /// plain integer fetch_add).
    std::atomic<uint64_t> SumNanos{0};
  };

public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Push handle for a monotone counter.  Default-constructed handles
  /// drop observations.
  class Counter {
  public:
    Counter() = default;
    void add(uint64_t N) {
      if (Cell)
        Cell->Value.fetch_add(N, std::memory_order_relaxed);
    }
    void increment() { add(1); }
    explicit operator bool() const { return Cell != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Counter(CounterCell *Cell) : Cell(Cell) {}
    CounterCell *Cell = nullptr;
  };

  /// Push handle for an instantaneous value.
  class Gauge {
  public:
    Gauge() = default;
    void set(double V) {
      if (Cell)
        Cell->Value.store(V, std::memory_order_relaxed);
    }
    explicit operator bool() const { return Cell != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(GaugeCell *Cell) : Cell(Cell) {}
    GaugeCell *Cell = nullptr;
  };

  /// Push handle for a latency histogram; observations are in seconds.
  class Histogram {
  public:
    Histogram() = default;
    void observe(double Seconds);
    explicit operator bool() const { return Cell != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Histogram(HistogramCell *Cell) : Cell(Cell) {}
    HistogramCell *Cell = nullptr;
  };

  /// Registers (or re-finds — same name and labels return the same
  /// cell) an instrument and hands back its push handle.
  Counter counter(const std::string &Name, const std::string &Labels = {});
  Gauge gauge(const std::string &Name, const std::string &Labels = {});
  Histogram histogram(const std::string &Name, const std::string &Labels = {});

  /// A pull collector: reads subsystem state and appends samples.  Runs
  /// with the registry mutex held — must not call back into the
  /// registry.
  using Collector = std::function<void(std::vector<MetricSample> &)>;
  void addCollector(Collector Fn);

  /// Point-in-time flattening: instruments in registration order, then
  /// collector output in collector registration order.
  MetricsSnapshot snapshot() const;

  /// renderText(snapshot()).
  std::string renderText() const;

  /// Prometheus-style text exposition of \p Snap (see file comment).
  static std::string renderText(const MetricsSnapshot &Snap);

  /// Composes a `key="value"` label pair, escaping backslash, quote and
  /// newline in \p Value per the text-exposition rules.  Join multiple
  /// pairs with ",".
  static std::string label(std::string_view Key, std::string_view Value);

  /// Collector-side helpers for appending flat samples.
  static void addCounter(std::vector<MetricSample> &Out, std::string Name,
                         std::string Labels, double Value);
  static void addGauge(std::vector<MetricSample> &Out, std::string Name,
                       std::string Labels, double Value);

private:
  void flattenHistogram(const HistogramCell &Cell,
                        std::vector<MetricSample> &Out) const;

  /// Guards the cell deques and Collectors; never taken by handles.
  mutable std::mutex Mutex;
  // Deques: handles keep raw pointers, so cell addresses must survive
  // later registrations.
  std::deque<CounterCell> Counters;
  std::deque<GaugeCell> Gauges;
  std::deque<HistogramCell> Histograms;
  std::vector<Collector> Collectors;
};

/// Registers a pull collector exporting \p Heap's AllocatorStats as
/// xterm_alloc_* counters labelled heap="<Label>".  \p Heap must
/// outlive the registry's last snapshot.
void registerAllocatorMetrics(MetricsRegistry &Registry, const Allocator &Heap,
                              std::string Label);

class FaultInjector;

/// Registers a pull collector exporting \p Injector's FaultInjectorStats
/// as xterm_inject_* counters labelled heap="<Label>" (PR 9), so
/// injected-fault counts are scrapeable next to the heap stats they
/// perturb.  \p Injector must outlive the registry's last snapshot.
void registerInjectorMetrics(MetricsRegistry &Registry,
                             const FaultInjector &Injector, std::string Label);

class DieHardHeap;

/// Registers a pull collector exporting \p Heap's page-retirement state
/// (PR 9): xterm_retired_pages / xterm_retired_slots gauges labelled
/// heap="<Label>".  \p Heap must outlive the registry's last snapshot.
void registerRetirementMetrics(MetricsRegistry &Registry,
                               const DieHardHeap &Heap, std::string Label);

/// Registers a pull collector exporting the process-wide codec counters
/// (codec/BlockCodec.h) as xterm_codec_* samples (PR 10): compressed
/// bytes in/out, decode expansions, stored-raw blocks, and rejected
/// (bomb/corrupt) blocks — what lets an operator see both the
/// compression ratio the fleet is getting and whether anyone is feeding
/// it garbage.
void registerCodecMetrics(MetricsRegistry &Registry);

} // namespace exterminator

#endif // EXTERMINATOR_OBSERVE_METRICSREGISTRY_H

//===- observe/MetricsRegistry.cpp - Process-wide metrics plane -----------===//

#include "observe/MetricsRegistry.h"

#include "alloc/Allocator.h"
#include "alloc/DieHardHeap.h"
#include "codec/BlockCodec.h"
#include "inject/FaultInjector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

const MetricSample *MetricsSnapshot::find(std::string_view Name,
                                          std::string_view Labels) const {
  for (const MetricSample &S : Samples)
    if (S.Name == Name && (Labels.empty() || S.Labels == Labels))
      return &S;
  return nullptr;
}

std::optional<double> MetricsSnapshot::maxValue(std::string_view Name) const {
  std::optional<double> Max;
  for (const MetricSample &S : Samples)
    if (S.Name == Name && (!Max || S.Value > *Max))
      Max = S.Value;
  return Max;
}

//===----------------------------------------------------------------------===//
// Registration
//===----------------------------------------------------------------------===//

void MetricsRegistry::Histogram::observe(double Seconds) {
  if (!Cell)
    return;
  if (Seconds < 0.0)
    Seconds = 0.0;
  size_t Bucket = NumHistogramBuckets; // +Inf overflow
  for (size_t I = 0; I < NumHistogramBuckets; ++I)
    if (Seconds <= HistogramBucketBounds[I]) {
      Bucket = I;
      break;
    }
  Cell->Counts[Bucket].fetch_add(1, std::memory_order_relaxed);
  Cell->SumNanos.fetch_add(static_cast<uint64_t>(Seconds * 1e9),
                           std::memory_order_relaxed);
}

MetricsRegistry::Counter MetricsRegistry::counter(const std::string &Name,
                                                  const std::string &Labels) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (CounterCell &Cell : Counters)
    if (Cell.Name == Name && Cell.Labels == Labels)
      return Counter(&Cell);
  CounterCell &Cell = Counters.emplace_back();
  Cell.Name = Name;
  Cell.Labels = Labels;
  return Counter(&Cell);
}

MetricsRegistry::Gauge MetricsRegistry::gauge(const std::string &Name,
                                              const std::string &Labels) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (GaugeCell &Cell : Gauges)
    if (Cell.Name == Name && Cell.Labels == Labels)
      return Gauge(&Cell);
  GaugeCell &Cell = Gauges.emplace_back();
  Cell.Name = Name;
  Cell.Labels = Labels;
  return Gauge(&Cell);
}

MetricsRegistry::Histogram
MetricsRegistry::histogram(const std::string &Name, const std::string &Labels) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (HistogramCell &Cell : Histograms)
    if (Cell.Name == Name && Cell.Labels == Labels)
      return Histogram(&Cell);
  HistogramCell &Cell = Histograms.emplace_back();
  Cell.Name = Name;
  Cell.Labels = Labels;
  return Histogram(&Cell);
}

void MetricsRegistry::addCollector(Collector Fn) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Collectors.push_back(std::move(Fn));
}

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

void MetricsRegistry::addCounter(std::vector<MetricSample> &Out,
                                 std::string Name, std::string Labels,
                                 double Value) {
  Out.push_back(MetricSample{std::move(Name), std::move(Labels), Value,
                             SampleKind::Counter});
}

void MetricsRegistry::addGauge(std::vector<MetricSample> &Out,
                               std::string Name, std::string Labels,
                               double Value) {
  Out.push_back(MetricSample{std::move(Name), std::move(Labels), Value,
                             SampleKind::Gauge});
}

/// Linear interpolation of quantile \p Q within fixed buckets: the rank
/// is located in the cumulative distribution and positioned
/// proportionally between the bucket's bounds.  Observations past the
/// last bound report the last bound — the histogram cannot distinguish
/// beyond it.
static double quantileFromBuckets(const uint64_t (&Counts)[NumHistogramBuckets +
                                                           1],
                                  uint64_t Total, double Q) {
  const double Rank = Q * double(Total);
  uint64_t Cum = 0;
  for (size_t I = 0; I <= NumHistogramBuckets; ++I) {
    const uint64_t Here = Counts[I];
    if (Here == 0)
      continue;
    if (double(Cum + Here) >= Rank) {
      if (I == NumHistogramBuckets)
        return HistogramBucketBounds[NumHistogramBuckets - 1];
      const double Lower = I == 0 ? 0.0 : HistogramBucketBounds[I - 1];
      const double Upper = HistogramBucketBounds[I];
      const double Fraction =
          std::min(1.0, std::max(0.0, (Rank - double(Cum)) / double(Here)));
      return Lower + Fraction * (Upper - Lower);
    }
    Cum += Here;
  }
  return 0.0;
}

/// Formats a bucket bound the way %g prints it ("1e-06", "0.001", "10")
/// — deterministic, so scrapes are greppable.
static std::string formatBound(double Bound) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", Bound);
  return Buf;
}

void MetricsRegistry::flattenHistogram(const HistogramCell &Cell,
                                       std::vector<MetricSample> &Out) const {
  uint64_t Counts[NumHistogramBuckets + 1];
  uint64_t Total = 0;
  for (size_t I = 0; I <= NumHistogramBuckets; ++I) {
    Counts[I] = Cell.Counts[I].load(std::memory_order_relaxed);
    Total += Counts[I];
  }
  const std::string Prefix = Cell.Labels.empty() ? "" : Cell.Labels + ",";
  uint64_t Cum = 0;
  for (size_t I = 0; I < NumHistogramBuckets; ++I) {
    Cum += Counts[I];
    addCounter(Out, Cell.Name + "_bucket",
               Prefix + label("le", formatBound(HistogramBucketBounds[I])),
               double(Cum));
  }
  addCounter(Out, Cell.Name + "_bucket", Prefix + label("le", "+Inf"),
             double(Total));
  addCounter(Out, Cell.Name + "_sum", Cell.Labels,
             double(Cell.SumNanos.load(std::memory_order_relaxed)) / 1e9);
  addCounter(Out, Cell.Name + "_count", Cell.Labels, double(Total));
  if (Total == 0)
    return;
  addGauge(Out, Cell.Name, Prefix + label("quantile", "0.5"),
           quantileFromBuckets(Counts, Total, 0.5));
  addGauge(Out, Cell.Name, Prefix + label("quantile", "0.99"),
           quantileFromBuckets(Counts, Total, 0.99));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Snap;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const CounterCell &Cell : Counters)
    addCounter(Snap.Samples, Cell.Name, Cell.Labels,
               double(Cell.Value.load(std::memory_order_relaxed)));
  for (const GaugeCell &Cell : Gauges)
    addGauge(Snap.Samples, Cell.Name, Cell.Labels,
             Cell.Value.load(std::memory_order_relaxed));
  for (const HistogramCell &Cell : Histograms)
    flattenHistogram(Cell, Snap.Samples);
  for (const Collector &Fn : Collectors)
    Fn(Snap.Samples);
  return Snap;
}

//===----------------------------------------------------------------------===//
// Text exposition
//===----------------------------------------------------------------------===//

std::string MetricsRegistry::label(std::string_view Key,
                                   std::string_view Value) {
  std::string Out;
  Out.reserve(Key.size() + Value.size() + 3);
  Out.append(Key);
  Out += "=\"";
  for (char C : Value) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

static void appendValue(std::string &Out, double Value) {
  char Buf[40];
  // Counters and integral gauges print without an exponent or decimal
  // point so `grep 'metric_total 3'` works; everything else gets %.9g.
  if (std::floor(Value) == Value && std::fabs(Value) < 9.0e15)
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
  else
    std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
  Out += Buf;
}

std::string MetricsRegistry::renderText(const MetricsSnapshot &Snap) {
  std::string Out;
  std::set<std::string> Announced;
  for (const MetricSample &S : Snap.Samples) {
    if (Announced.insert(S.Name).second) {
      Out += "# TYPE ";
      Out += S.Name;
      Out += S.Kind == SampleKind::Counter ? " counter\n" : " gauge\n";
    }
    Out += S.Name;
    if (!S.Labels.empty()) {
      Out += '{';
      Out += S.Labels;
      Out += '}';
    }
    Out += ' ';
    appendValue(Out, S.Value);
    Out += '\n';
  }
  return Out;
}

std::string MetricsRegistry::renderText() const { return renderText(snapshot()); }

//===----------------------------------------------------------------------===//
// Allocator adapter
//===----------------------------------------------------------------------===//

void exterminator::registerAllocatorMetrics(MetricsRegistry &Registry,
                                            const Allocator &Heap,
                                            std::string Label) {
  std::string Labels = MetricsRegistry::label("heap", Label);
  Registry.addCollector([&Heap, Labels = std::move(Labels)](
                            std::vector<MetricSample> &Out) {
    // AllocatorStats counters are written on the allocation hot path
    // and read here without synchronization: tear-prone but benign, the
    // same contract as the exit-time printing the plane replaces.
    const AllocatorStats &S = Heap.stats();
    MetricsRegistry::addCounter(Out, "xterm_alloc_allocations_total", Labels,
                                double(S.Allocations));
    MetricsRegistry::addCounter(Out, "xterm_alloc_deallocations_total", Labels,
                                double(S.Deallocations));
    MetricsRegistry::addCounter(Out, "xterm_alloc_invalid_frees_total", Labels,
                                double(S.InvalidFrees));
    MetricsRegistry::addCounter(Out, "xterm_alloc_double_frees_total", Labels,
                                double(S.DoubleFrees));
    MetricsRegistry::addCounter(Out, "xterm_alloc_bytes_requested_total",
                                Labels, double(S.BytesRequested));
  });
}

void exterminator::registerInjectorMetrics(MetricsRegistry &Registry,
                                           const FaultInjector &Injector,
                                           std::string Label) {
  std::string Labels = MetricsRegistry::label("heap", Label);
  Registry.addCollector([&Injector, Labels = std::move(Labels)](
                            std::vector<MetricSample> &Out) {
    const FaultInjectorStats &S = Injector.injectorStats();
    MetricsRegistry::addCounter(Out, "xterm_inject_software_faults_total",
                                Labels, double(S.SoftwareFaultsFired));
    MetricsRegistry::addCounter(Out, "xterm_inject_hardware_events_total",
                                Labels, double(S.HardwareFaultEvents));
    MetricsRegistry::addCounter(Out, "xterm_inject_bits_flipped_total",
                                Labels, double(S.BitsFlipped));
    MetricsRegistry::addCounter(Out, "xterm_inject_stuckat_rewrites_total",
                                Labels, double(S.StuckAtRewrites));
    MetricsRegistry::addCounter(Out, "xterm_inject_row_objects_total", Labels,
                                double(S.RowObjectsCorrupted));
  });
}

void exterminator::registerRetirementMetrics(MetricsRegistry &Registry,
                                             const DieHardHeap &Heap,
                                             std::string Label) {
  std::string Labels = MetricsRegistry::label("heap", Label);
  Registry.addCollector([&Heap, Labels = std::move(Labels)](
                            std::vector<MetricSample> &Out) {
    MetricsRegistry::addGauge(Out, "xterm_retired_pages", Labels,
                              double(Heap.retiredPageCount()));
    MetricsRegistry::addGauge(Out, "xterm_retired_slots", Labels,
                              double(Heap.retiredSlotCount()));
  });
}

void exterminator::registerCodecMetrics(MetricsRegistry &Registry) {
  // The codec counters are process-global (every wire frame, snapshot,
  // and bundle in the process funnels through the same encoder), so the
  // collector captures nothing.
  Registry.addCollector([](std::vector<MetricSample> &Out) {
    const CodecStatsSnapshot S = codecStats();
    MetricsRegistry::addCounter(Out, "xterm_codec_compress_calls_total", {},
                                double(S.CompressCalls));
    MetricsRegistry::addCounter(Out, "xterm_codec_compress_in_bytes_total", {},
                                double(S.CompressInBytes));
    MetricsRegistry::addCounter(Out, "xterm_codec_compress_out_bytes_total", {},
                                double(S.CompressOutBytes));
    MetricsRegistry::addCounter(Out, "xterm_codec_decompress_calls_total", {},
                                double(S.DecompressCalls));
    MetricsRegistry::addCounter(Out, "xterm_codec_decompress_out_bytes_total",
                                {}, double(S.DecompressOutBytes));
    MetricsRegistry::addCounter(Out, "xterm_codec_incompressible_blocks_total",
                                {}, double(S.IncompressibleBlocks));
    MetricsRegistry::addCounter(Out, "xterm_codec_rejected_blocks_total", {},
                                double(S.RejectedBlocks));
  });
}

//===- observe/AlertEngine.h - Threshold alerting with hysteresis -*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability plane's alerting half: declarative threshold rules
/// evaluated against metric snapshots, in the netdata health.d idiom —
/// a warn and/or crit threshold over one metric, an `every` evaluation
/// cadence, and a de-escalation `delay` so a metric flapping across the
/// threshold raises exactly one alert instead of a storm.
///
/// Hysteresis contract: escalation is immediate (a crossing raises on
/// the evaluation that sees it); de-escalation is delayed — the
/// proposed severity must stay below the held severity for
/// ClearDelayTicks consecutive ticks before the alert steps down, and
/// any re-crossing in between resets the countdown.  This gives the
/// fleet operator the netdata property that a posterior oscillating
/// around the classification bar shows one steady WARNING, not a
/// raise/clear pair per oscillation.
///
/// Time is an abstract uint64_t tick supplied by the caller (the watch
/// CLI uses poll rounds; tests use plain integers), which keeps every
/// transition deterministic and unit-testable.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_OBSERVE_ALERTENGINE_H
#define EXTERMINATOR_OBSERVE_ALERTENGINE_H

#include "observe/MetricsRegistry.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace exterminator {

enum class AlertSeverity : uint8_t {
  Clear = 0,
  Warning = 1,
  Critical = 2,
};

const char *alertSeverityName(AlertSeverity Severity);

/// One declarative threshold rule.
struct AlertRule {
  /// Rule identity, e.g. "site_posterior_classified".
  std::string Name;
  /// Snapshot sample name it watches; a labelled family is aggregated
  /// by max over its samples (any one bad site / peer / path trips the
  /// rule).
  std::string Metric;
  /// Comparison applied to the aggregated value at each threshold.
  enum class Compare : uint8_t {
    GreaterThan,
    GreaterOrEqual,
  };
  Compare Cmp = Compare::GreaterThan;
  /// Thresholds; an empty optional disables that level.
  std::optional<double> Warn;
  std::optional<double> Crit;
  /// Evaluate only every N ticks (netdata `every`).
  uint64_t EveryTicks = 1;
  /// Consecutive below-severity ticks required before de-escalating
  /// (netdata `delay: down`).  0 de-escalates immediately.
  uint64_t ClearDelayTicks = 3;
};

/// The live state of one rule.
struct AlertStatus {
  AlertRule Rule;
  AlertSeverity Severity = AlertSeverity::Clear;
  /// Last aggregated value seen; meaningless until HasValue.
  double LastValue = 0.0;
  bool HasValue = false;
  /// Labels of the sample that drove the aggregate (the worst site /
  /// peer), for rendering.
  std::string WorstLabels;
  /// Count of Clear -> raised transitions — the "exactly one alert"
  /// number the hysteresis tests pin.
  uint64_t RaisedEvents = 0;
  uint64_t LastTransitionTick = 0;

  // Internal evaluation state.
  uint64_t NextEvalTick = 0;
  bool PendingDown = false;
  uint64_t PendingDownSince = 0;
};

/// Evaluates a rule set against successive snapshots.
class AlertEngine {
public:
  void addRule(const AlertRule &Rule);

  /// Installs the built-in fleet rules: warn when any site's corruption
  /// posterior (xterm_site_posterior, the margin over the §5.1
  /// classification bar) reaches 0; crit on any journal persist
  /// failure or replication queue overflow.
  void addBuiltinRules();

  /// Advances every due rule against \p Snap at \p Tick.  Ticks must be
  /// non-decreasing.  A rule whose metric is absent from the snapshot
  /// holds its state (no data is not evidence of recovery).
  void evaluate(const MetricsSnapshot &Snap, uint64_t Tick);

  const std::vector<AlertStatus> &status() const { return Rules; }

  /// Rules currently above Clear.
  std::vector<AlertStatus> active() const;

  /// Terse one-line-per-active-alert rendering for `xtermtool watch`;
  /// empty string when everything is clear.
  std::string renderText() const;

private:
  std::vector<AlertStatus> Rules;
};

} // namespace exterminator

#endif // EXTERMINATOR_OBSERVE_ALERTENGINE_H

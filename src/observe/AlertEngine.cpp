//===- observe/AlertEngine.cpp - Threshold alerting with hysteresis -------===//

#include "observe/AlertEngine.h"

#include <cstdio>

using namespace exterminator;

const char *exterminator::alertSeverityName(AlertSeverity Severity) {
  switch (Severity) {
  case AlertSeverity::Clear:
    return "CLEAR";
  case AlertSeverity::Warning:
    return "WARNING";
  case AlertSeverity::Critical:
    return "CRITICAL";
  }
  return "unknown";
}

void AlertEngine::addRule(const AlertRule &Rule) {
  AlertStatus Status;
  Status.Rule = Rule;
  if (Status.Rule.EveryTicks == 0)
    Status.Rule.EveryTicks = 1;
  Rules.push_back(std::move(Status));
}

void AlertEngine::addBuiltinRules() {
  AlertRule Posterior;
  Posterior.Name = "site_posterior_classified";
  Posterior.Metric = "xterm_site_posterior";
  Posterior.Cmp = AlertRule::Compare::GreaterOrEqual;
  // The exported posterior is logBF minus the classification threshold,
  // so crossing 0 IS crossing the §5.1 bar.
  Posterior.Warn = 0.0;
  addRule(Posterior);

  AlertRule Persist;
  Persist.Name = "persist_failures";
  Persist.Metric = "xterm_persist_failures_total";
  Persist.Cmp = AlertRule::Compare::GreaterThan;
  Persist.Crit = 0.0;
  addRule(Persist);

  AlertRule Overflow;
  Overflow.Name = "replication_queue_overflow";
  Overflow.Metric = "xterm_replication_queue_overflows_total";
  Overflow.Cmp = AlertRule::Compare::GreaterThan;
  Overflow.Crit = 0.0;
  addRule(Overflow);

  // A hardware-fault report means a physical page is corrupting memory
  // right now — software patches cannot fix it and every fleet member
  // sharing the DIMM is at risk, so it pages immediately (PR 9).
  AlertRule Hardware;
  Hardware.Name = "hardware_fault_detected";
  Hardware.Metric = "xterm_hardware_faults_total";
  Hardware.Cmp = AlertRule::Compare::GreaterThan;
  Hardware.Crit = 0.0;
  addRule(Hardware);
}

static bool crosses(AlertRule::Compare Cmp, double Value, double Threshold) {
  return Cmp == AlertRule::Compare::GreaterThan ? Value > Threshold
                                                : Value >= Threshold;
}

void AlertEngine::evaluate(const MetricsSnapshot &Snap, uint64_t Tick) {
  for (AlertStatus &Status : Rules) {
    if (Tick < Status.NextEvalTick)
      continue;
    Status.NextEvalTick = Tick + Status.Rule.EveryTicks;

    // Aggregate the watched family by max, remembering which sample
    // drove it.
    bool Found = false;
    double Value = 0.0;
    std::string_view Worst;
    for (const MetricSample &S : Snap.Samples) {
      if (S.Name != Status.Rule.Metric)
        continue;
      if (!Found || S.Value > Value) {
        Value = S.Value;
        Worst = S.Labels;
      }
      Found = true;
    }
    if (!Found)
      continue; // absent metric: hold state
    Status.LastValue = Value;
    Status.HasValue = true;
    Status.WorstLabels = Worst;

    AlertSeverity Proposed = AlertSeverity::Clear;
    if (Status.Rule.Warn && crosses(Status.Rule.Cmp, Value, *Status.Rule.Warn))
      Proposed = AlertSeverity::Warning;
    if (Status.Rule.Crit && crosses(Status.Rule.Cmp, Value, *Status.Rule.Crit))
      Proposed = AlertSeverity::Critical;

    if (Proposed >= Status.Severity) {
      // Escalations (and holds) apply immediately; any pending
      // de-escalation countdown is cancelled by the re-crossing.
      if (Proposed > Status.Severity) {
        if (Status.Severity == AlertSeverity::Clear)
          ++Status.RaisedEvents;
        Status.Severity = Proposed;
        Status.LastTransitionTick = Tick;
      }
      Status.PendingDown = false;
      continue;
    }
    if (!Status.PendingDown) {
      Status.PendingDown = true;
      Status.PendingDownSince = Tick;
    }
    if (Tick - Status.PendingDownSince >= Status.Rule.ClearDelayTicks) {
      Status.Severity = Proposed;
      Status.LastTransitionTick = Tick;
      Status.PendingDown = false;
    }
  }
}

std::vector<AlertStatus> AlertEngine::active() const {
  std::vector<AlertStatus> Out;
  for (const AlertStatus &Status : Rules)
    if (Status.Severity != AlertSeverity::Clear)
      Out.push_back(Status);
  return Out;
}

std::string AlertEngine::renderText() const {
  std::string Out;
  for (const AlertStatus &Status : Rules) {
    if (Status.Severity == AlertSeverity::Clear)
      continue;
    char Line[256];
    std::snprintf(Line, sizeof(Line), "%s %s = %.6g (%s%s%s)\n",
                  alertSeverityName(Status.Severity),
                  Status.Rule.Name.c_str(), Status.LastValue,
                  Status.Rule.Metric.c_str(),
                  Status.WorstLabels.empty() ? "" : " ",
                  Status.WorstLabels.c_str());
    Out += Line;
  }
  return Out;
}

//===- diagnose/DiagnosisPipeline.h - Unified diagnosis --------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnosis pipeline: the single ingestion point for every kind of
/// error evidence Exterminator produces, and the owner of everything that
/// happens after a run ends.
///
/// Drivers (iterative, replicated, cumulative) only *collect* evidence —
/// heap images dumped at a common allocation time (§3.4) or per-run
/// statistical summaries (§5) — and submit it here.  The pipeline owns:
///
///  * error isolation — the §4 image pipeline (dangling overwrites first,
///    then overflow culprits) or the §5 Bayesian classifier for summaries;
///  * patch derivation — pads, front pads, and deferrals from findings,
///    including the §6.2 deferral-doubling rule for patched pairs that
///    keep failing;
///  * patch merging — every derived patch max-merges into one *active*
///    PatchSet (§6.3's reload source, §6.4's collaboration unit);
///  * reporting — rendering the active set as a human-readable bug
///    report (§9).
///
/// Centralizing this flow is what makes evidence portable: anything that
/// can produce a heap image or a run summary — a driver in this process,
/// a file from another machine via xtermtool — feeds the same pipeline
/// and contributes to the same patch set.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_DIAGNOSE_DIAGNOSISPIPELINE_H
#define EXTERMINATOR_DIAGNOSE_DIAGNOSISPIPELINE_H

#include "cumulative/CumulativeIsolator.h"
#include "heapimage/HeapImage.h"
#include "isolate/ErrorIsolator.h"
#include "observe/MetricsRegistry.h"
#include "patch/RuntimePatch.h"
#include "report/PatchReport.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace exterminator {

/// Tuning for the diagnosis pipeline (the diagnosis-side half of
/// ExterminatorConfig).
struct DiagnosisConfig {
  /// Iterative/replicated isolation tuning (§4).
  IsolationConfig Isolation;
  /// Cumulative-mode tuning (§5).
  CumulativeConfig Cumulative;
};

/// Image evidence from one failure: images dumped at a common allocation
/// time, plus optional end-of-run images of failed runs to fall back on
/// (dangling overwrites may postdate the last allocation).
struct ImageEvidence {
  std::vector<HeapImage> Primary;
  std::vector<HeapImage> Fallback;
};

/// What one summary submission concluded.
struct CumulativeDiagnosis {
  /// The classifier's current findings (threshold-crossing sites).
  std::vector<CumulativeOverflowFinding> Overflows;
  std::vector<CumulativeDanglingFinding> Danglings;

  bool foundAnything() const {
    return !Overflows.empty() || !Danglings.empty();
  }
};

/// A versioned snapshot of the active patch set: the unit the patch
/// exchange broadcasts.  Epochs let a client fetch incrementally — it
/// sends the epoch it already holds and the server skips the (unchanged)
/// patch payload when nothing new has been diagnosed.
struct PatchSnapshot {
  uint64_t Epoch = 0;
  PatchSet Patches;
};

/// The unified diagnosis pipeline (see file comment).
class DiagnosisPipeline {
public:
  explicit DiagnosisPipeline(const DiagnosisConfig &Config = {});

  const DiagnosisConfig &config() const { return Config; }

  /// Seeds the active patch set (earlier sessions, other users — §6.4).
  void seedPatches(const PatchSet &Initial);

  /// The active patch set: everything diagnosed so far, max-merged.
  const PatchSet &patches() const { return Active; }

  /// Version of the active set: bumps exactly when a submission changes
  /// it (max-merge is idempotent, so re-submitted evidence does not).
  /// Starts at 0 for an empty set.
  uint64_t epoch() const { return Epoch; }

  /// The active set plus its epoch (what patches() broadcasts as).
  PatchSnapshot snapshot() const { return {Epoch, Active}; }

  /// Submits image evidence: runs §4 isolation over the primary images,
  /// falls back to the end-of-run images when the primaries yield no
  /// patches, and merges derived patches into the active set.
  /// Equivalent to isolateImages + absorbIsolation.
  IsolationResult submitImages(const ImageEvidence &Evidence);

  /// The isolation half of submitImages, with no pipeline mutation
  /// (the internally-synchronized view cache aside).  Reads only the
  /// (immutable) configuration, so concurrent callers need no external
  /// synchronization — the patch server runs this outside its lock and
  /// serializes only the merge.
  ///
  /// On the fast evidence path, isolation runs over *cached* views: an
  /// image set already indexed by an earlier submission (keyed by
  /// content fingerprint, verified by full equality) reuses its indexes
  /// instead of rebuilding them, so retried/duplicate submissions and
  /// the primary→fallback sequence never re-index the same images, and
  /// the evidence sweeps fan out on the shared executor.  Cached and
  /// fresh views diagnose identically (pinned by test).
  IsolationResult isolateImages(const ImageEvidence &Evidence) const;

  /// The merge half of submitImages: folds already-derived patches into
  /// the active set (bumping the epoch if anything changed).
  void absorbIsolation(const IsolationResult &Result);

  /// Reduces a final heap image to a §5 run summary (the evidence format
  /// cheap enough to ship: kilobytes instead of megabytes).
  RunSummary summarize(const HeapImage &FinalImage, bool Failed) const;

  /// Submits one run summary: folds it into the accumulated state,
  /// classifies, and merges derived patches into the active set.
  /// \p CleanStreak is the caller's count of consecutive clean runs; 0
  /// means failures continue, which doubles an already-applied deferral
  /// instead of re-deriving it (§6.2's logarithmic convergence —
  /// post-patch failures measure their free-to-failure distance from the
  /// already-deferred free).
  CumulativeDiagnosis submitSummary(const RunSummary &Summary,
                                    unsigned CleanStreak);

  /// The accumulated cumulative-mode state (run counts, Bayes trials).
  const CumulativeIsolator &cumulative() const { return Cumulative; }

  /// Serializes the full diagnostic state — epoch, active patch set, and
  /// the cumulative isolator including its running Bayes sums ("XDS1").
  /// What the patch server's durable snapshots store: restoreState on a
  /// fresh pipeline reproduces this pipeline bit-identically (same
  /// patches, same epoch, same classification factors).
  std::vector<uint8_t> serializeState() const;

  /// All-or-nothing restore of serializeState's output: a malformed
  /// buffer returns false and leaves the pipeline untouched.  The view
  /// cache is not part of the state (it is a cache).
  bool restoreState(const std::vector<uint8_t> &Buffer);

  /// Renders the active patch set as a bug report (§9).
  std::string report(const SiteRegistry *Registry = nullptr) const;

  /// Appends this pipeline's observability samples: epoch, active patch
  /// counts, cumulative run counts, image-cache hit rate, and the top
  /// \p MaxSites per-site corruption posteriors (margin over the §5.1
  /// bar) with their trial counts.  The caller synchronizes pipeline
  /// access exactly as for any other read (the patch server calls this
  /// under its mutex).
  void collectMetrics(std::vector<MetricSample> &Out,
                      size_t MaxSites = 32) const;

private:
  /// Merges \p Derived into the active set, bumping the epoch when the
  /// merge actually changed it.
  void mergeActive(const PatchSet &Derived);

  /// One indexed image set.  Cached entries own copies of the images
  /// their views reference (so a shared_ptr keeps an isolation run
  /// safe against concurrent eviction); ephemeral entries borrow the
  /// caller's images and must not outlive the isolation call.
  struct IndexedImages {
    std::vector<HeapImage> OwnedImages; ///< empty for ephemeral entries
    std::vector<HeapImageView> Views;
  };

  /// Returns indexed views for \p Images: the cached entry when an
  /// equal set was indexed and retained before, otherwise a fresh
  /// build — which is *cached* (image set copied into the entry) only
  /// on a fingerprint's second sighting, so one-off evidence never
  /// pays the copy-and-retain cost.  Returns nullptr when \p Images
  /// cannot be isolated (fewer than two images).
  std::shared_ptr<const IndexedImages>
  indexedViews(const std::vector<HeapImage> &Images) const;

  DiagnosisConfig Config;
  CumulativeIsolator Cumulative;
  PatchSet Active;
  uint64_t Epoch = 0;

  struct CacheSlot {
    uint64_t Fingerprint = 0;
    uint64_t LastUse = 0;
    std::shared_ptr<const IndexedImages> Entry;
  };
  static constexpr size_t MaxRecentFingerprints = 8;
  mutable std::mutex CacheMutex;
  /// View-cache effectiveness counters (observability): a hit is an
  /// equality-verified cached entry reused; everything else that
  /// indexes views is a miss.  Atomic because isolateImages is const
  /// and concurrent.
  mutable std::atomic<uint64_t> CacheHits{0};
  mutable std::atomic<uint64_t> CacheMisses{0};
  mutable std::vector<CacheSlot> ViewCache;
  /// Fingerprints seen once (FIFO): promotion-to-cache gate.
  mutable std::vector<uint64_t> RecentFingerprints;
  mutable uint64_t CacheClock = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_DIAGNOSE_DIAGNOSISPIPELINE_H

//===- diagnose/DiagnosisPipeline.cpp - Unified diagnosis ------------------===//

#include "diagnose/DiagnosisPipeline.h"

#include "cumulative/SiteEstimator.h"

#include <algorithm>

using namespace exterminator;

DiagnosisPipeline::DiagnosisPipeline(const DiagnosisConfig &Config)
    : Config(Config), Cumulative(Config.Cumulative) {}

void DiagnosisPipeline::mergeActive(const PatchSet &Derived) {
  // merge reports change itself, so the common nothing-new ingest pays
  // no copy or deep compare of the active set.
  if (!Derived.empty() && Active.merge(Derived))
    ++Epoch;
}

void DiagnosisPipeline::seedPatches(const PatchSet &Initial) {
  mergeActive(Initial);
}

IsolationResult
DiagnosisPipeline::isolateImages(const ImageEvidence &Evidence) const {
  IsolationResult Result = isolateErrors(Evidence.Primary, Config.Isolation);
  if (Result.Patches.empty() && Evidence.Fallback.size() >= 2)
    Result = isolateErrors(Evidence.Fallback, Config.Isolation);
  return Result;
}

void DiagnosisPipeline::absorbIsolation(const IsolationResult &Result) {
  mergeActive(Result.Patches);
}

IsolationResult DiagnosisPipeline::submitImages(const ImageEvidence &Evidence) {
  IsolationResult Result = isolateImages(Evidence);
  absorbIsolation(Result);
  return Result;
}

RunSummary DiagnosisPipeline::summarize(const HeapImage &FinalImage,
                                        bool Failed) const {
  return summarizeRun(FinalImage, Failed);
}

CumulativeDiagnosis DiagnosisPipeline::submitSummary(const RunSummary &Summary,
                                                     unsigned CleanStreak) {
  Cumulative.addRun(Summary);

  CumulativeDiagnosis Diagnosis;
  Diagnosis.Overflows = Cumulative.classifyOverflows();
  Diagnosis.Danglings = Cumulative.classifyDanglings();

  // Fold findings into the active patch set.  A deferral that has
  // already been applied but keeps failing doubles instead — the §6.2
  // logarithmic-convergence rule — because post-patch failures measure
  // their free-to-failure distance from the already-deferred free.
  PatchSet Derived;
  for (const CumulativeOverflowFinding &Finding : Diagnosis.Overflows)
    Derived.addPad(Finding.AllocSite, Finding.PadBytes);
  for (const CumulativeDanglingFinding &Finding : Diagnosis.Danglings) {
    const uint64_t Existing =
        Active.deferralFor(Finding.AllocSite, Finding.FreeSite);
    uint64_t Target = Finding.DeferralTicks;
    if (Existing > 0 && CleanStreak == 0)
      Target = std::max(Target, Existing * 2 + 1);
    Derived.addDeferral(Finding.AllocSite, Finding.FreeSite, Target);
  }
  mergeActive(Derived);
  return Diagnosis;
}

std::string DiagnosisPipeline::report(const SiteRegistry *Registry) const {
  return generatePatchReport(Active, Registry);
}

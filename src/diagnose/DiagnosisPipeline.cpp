//===- diagnose/DiagnosisPipeline.cpp - Unified diagnosis ------------------===//

#include "diagnose/DiagnosisPipeline.h"

#include "cumulative/SiteEstimator.h"
#include "patch/PatchIO.h"
#include "support/Executor.h"
#include "support/Serializer.h"

#include <algorithm>
#include <cstdio>

using namespace exterminator;

/// Cached indexed image sets per pipeline.  Submissions in practice
/// alternate between at most a primary and a fallback set plus retries,
/// so a handful of slots covers the reuse without unbounded growth.
static constexpr size_t MaxCachedViewSets = 4;

DiagnosisPipeline::DiagnosisPipeline(const DiagnosisConfig &Config)
    : Config(Config), Cumulative(Config.Cumulative) {}

void DiagnosisPipeline::mergeActive(const PatchSet &Derived) {
  // merge reports change itself, so the common nothing-new ingest pays
  // no copy or deep compare of the active set.
  if (!Derived.empty() && Active.merge(Derived))
    ++Epoch;
}

void DiagnosisPipeline::seedPatches(const PatchSet &Initial) {
  mergeActive(Initial);
}

std::shared_ptr<const DiagnosisPipeline::IndexedImages>
DiagnosisPipeline::indexedViews(const std::vector<HeapImage> &Images) const {
  if (Images.size() < 2)
    return nullptr;

  uint64_t Fingerprint = 0x243F6A8885A308D3ull ^ Images.size();
  for (const HeapImage &Image : Images)
    Fingerprint ^= heapImageFingerprint(Image) * 0x100000001B3ull;

  // Collect fingerprint-matching candidates under the lock, but run
  // the O(image-bytes) equality verification outside it — entries are
  // immutable and the shared_ptr protects against eviction, so a long
  // comparison must not serialize concurrent submissions.
  std::vector<std::shared_ptr<const IndexedImages>> Candidates;
  bool SeenBefore = false;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    for (CacheSlot &Slot : ViewCache)
      if (Slot.Fingerprint == Fingerprint &&
          Slot.Entry->OwnedImages.size() == Images.size())
        Candidates.push_back(Slot.Entry);
    // Caching an entry copies the whole image set, and most evidence a
    // long-running server sees is distinct — so only a fingerprint's
    // *second* sighting pays for retention (retries and duplicate
    // submissions repeat quickly; one-off evidence never pays).
    for (uint64_t Recent : RecentFingerprints)
      SeenBefore |= Recent == Fingerprint;
    if (!SeenBefore && Candidates.empty()) {
      if (RecentFingerprints.size() >= MaxRecentFingerprints)
        RecentFingerprints.erase(RecentFingerprints.begin());
      RecentFingerprints.push_back(Fingerprint);
    }
  }
  for (const std::shared_ptr<const IndexedImages> &Candidate : Candidates) {
    // A fingerprint hit still verifies full equality, so a collision
    // costs a rebuild, never a diagnosis over the wrong images.
    bool Equal = true;
    for (size_t I = 0; I < Images.size() && Equal; ++I)
      Equal = Candidate->OwnedImages[I] == Images[I];
    if (!Equal)
      continue;
    CacheHits.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(CacheMutex);
    for (CacheSlot &Slot : ViewCache)
      if (Slot.Entry == Candidate)
        Slot.LastUse = ++CacheClock;
    return Candidate;
  }
  CacheMisses.fetch_add(1, std::memory_order_relaxed);
  // A cached candidate that fails equality is a fingerprint collision:
  // treat it as a second sighting so the colliding set can still be
  // cached (insertion below replaces nothing; both entries coexist).
  if (!Candidates.empty())
    SeenBefore = true;

  // Build outside the lock: indexing is the expensive part, and two
  // concurrent builders of the same set merely race to insert.
  auto Entry = std::make_shared<IndexedImages>();
  if (!SeenBefore) {
    // Ephemeral: views borrow the caller's images (no copy, not
    // cached); the holder only lives for this isolation call.
    Entry->Views.reserve(Images.size());
    for (const HeapImage &Image : Images)
      Entry->Views.emplace_back(Image);
    return Entry;
  }
  Entry->OwnedImages = Images;
  Entry->Views.reserve(Entry->OwnedImages.size());
  for (const HeapImage &Image : Entry->OwnedImages)
    Entry->Views.emplace_back(Image);

  std::lock_guard<std::mutex> Lock(CacheMutex);
  if (ViewCache.size() >= MaxCachedViewSets) {
    size_t Oldest = 0;
    for (size_t I = 1; I < ViewCache.size(); ++I)
      if (ViewCache[I].LastUse < ViewCache[Oldest].LastUse)
        Oldest = I;
    ViewCache.erase(ViewCache.begin() + Oldest);
  }
  ViewCache.push_back({Fingerprint, ++CacheClock, Entry});
  return Entry;
}

IsolationResult
DiagnosisPipeline::isolateImages(const ImageEvidence &Evidence) const {
  if (evidence_path::isLegacy()) {
    // Pre-PR-4 flow: re-index per attempt, sweep sequentially.
    IsolationResult Result =
        isolateErrors(Evidence.Primary, Config.Isolation);
    if (Result.Patches.empty() && Evidence.Fallback.size() >= 2)
      Result = isolateErrors(Evidence.Fallback, Config.Isolation);
    return Result;
  }

  Executor *Pool = &sharedExecutor();
  IsolationResult Result;
  if (auto Primary = indexedViews(Evidence.Primary))
    Result = isolateErrors(Primary->Views, Config.Isolation, Pool);
  if (Result.Patches.empty())
    if (auto Fallback = indexedViews(Evidence.Fallback))
      Result = isolateErrors(Fallback->Views, Config.Isolation, Pool);
  return Result;
}

void DiagnosisPipeline::absorbIsolation(const IsolationResult &Result) {
  mergeActive(Result.Patches);
}

IsolationResult DiagnosisPipeline::submitImages(const ImageEvidence &Evidence) {
  IsolationResult Result = isolateImages(Evidence);
  absorbIsolation(Result);
  return Result;
}

RunSummary DiagnosisPipeline::summarize(const HeapImage &FinalImage,
                                        bool Failed) const {
  return summarizeRun(FinalImage, Failed);
}

CumulativeDiagnosis DiagnosisPipeline::submitSummary(const RunSummary &Summary,
                                                     unsigned CleanStreak) {
  Cumulative.addRun(Summary);

  CumulativeDiagnosis Diagnosis;
  Diagnosis.Overflows = Cumulative.classifyOverflows();
  Diagnosis.Danglings = Cumulative.classifyDanglings();

  // Fold findings into the active patch set.  A deferral that has
  // already been applied but keeps failing doubles instead — the §6.2
  // logarithmic-convergence rule — because post-patch failures measure
  // their free-to-failure distance from the already-deferred free.
  PatchSet Derived;
  for (const CumulativeOverflowFinding &Finding : Diagnosis.Overflows)
    Derived.addPad(Finding.AllocSite, Finding.PadBytes);
  for (const CumulativeDanglingFinding &Finding : Diagnosis.Danglings) {
    const uint64_t Existing =
        Active.deferralFor(Finding.AllocSite, Finding.FreeSite);
    uint64_t Target = Finding.DeferralTicks;
    if (Existing > 0 && CleanStreak == 0)
      Target = std::max(Target, Existing * 2 + 1);
    Derived.addDeferral(Finding.AllocSite, Finding.FreeSite, Target);
  }
  mergeActive(Derived);
  return Diagnosis;
}

std::string DiagnosisPipeline::report(const SiteRegistry *Registry) const {
  return generatePatchReport(Active, Registry);
}

/// Pipeline-state blob magic ("XDS1"): epoch + active set + cumulative
/// isolator state, the payload the exchange StateStore snapshots.
static constexpr uint32_t PipelineStateMagic = 0x58445331;

std::vector<uint8_t> DiagnosisPipeline::serializeState() const {
  ByteWriter Writer;
  Writer.writeU32(PipelineStateMagic);
  Writer.writeU64(Epoch);
  Writer.writeBlob(serializePatchSet(Active));
  Writer.writeBlob(Cumulative.serialize());
  return Writer.buffer();
}

bool DiagnosisPipeline::restoreState(const std::vector<uint8_t> &Buffer) {
  ByteReader Reader(Buffer);
  if (Reader.readU32() != PipelineStateMagic)
    return false;
  const uint64_t NewEpoch = Reader.readU64();
  const std::vector<uint8_t> PatchBytes = Reader.readBlob();
  const std::vector<uint8_t> CumulativeBytes = Reader.readBlob();
  if (Reader.failed() || !Reader.atEnd())
    return false;
  // Decode both halves into locals before touching any member: the
  // deserializers are themselves all-or-nothing, so a failure here
  // leaves the pipeline exactly as it was.
  PatchSet NewActive;
  if (!deserializePatchSet(PatchBytes, NewActive))
    return false;
  CumulativeIsolator NewCumulative(Config.Cumulative);
  if (!NewCumulative.deserialize(CumulativeBytes))
    return false;
  Epoch = NewEpoch;
  Active = std::move(NewActive);
  Cumulative = std::move(NewCumulative);
  return true;
}

/// Renders a 32-bit site id the way reports print them.
static std::string formatSite(SiteId Site) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%08x", Site);
  return Buf;
}

void DiagnosisPipeline::collectMetrics(std::vector<MetricSample> &Out,
                                       size_t MaxSites) const {
  MetricsRegistry::addGauge(Out, "xterm_epoch", {}, double(Epoch));
  MetricsRegistry::addGauge(Out, "xterm_active_patches",
                            MetricsRegistry::label("kind", "pad"),
                            double(Active.padCount()));
  MetricsRegistry::addGauge(Out, "xterm_active_patches",
                            MetricsRegistry::label("kind", "front_pad"),
                            double(Active.frontPadCount()));
  MetricsRegistry::addGauge(Out, "xterm_active_patches",
                            MetricsRegistry::label("kind", "deferral"),
                            double(Active.deferralCount()));
  MetricsRegistry::addGauge(Out, "xterm_active_patches",
                            MetricsRegistry::label("kind", "hardware_page"),
                            double(Active.hardwareReportCount()));
  // Σ max-merged evidence regions: monotone under merge, hence a counter.
  MetricsRegistry::addCounter(Out, "xterm_hardware_faults_total", {},
                              double(Active.hardwareEvidenceTotal()));
  MetricsRegistry::addCounter(Out, "xterm_cumulative_runs_total", {},
                              double(Cumulative.runCount()));
  MetricsRegistry::addCounter(Out, "xterm_cumulative_failed_runs_total", {},
                              double(Cumulative.failedRunCount()));
  MetricsRegistry::addCounter(Out, "xterm_cumulative_corrupt_runs_total", {},
                              double(Cumulative.corruptRunCount()));
  const double Hits = double(CacheHits.load(std::memory_order_relaxed));
  const double Misses = double(CacheMisses.load(std::memory_order_relaxed));
  MetricsRegistry::addCounter(Out, "xterm_image_cache_hits_total", {}, Hits);
  MetricsRegistry::addCounter(Out, "xterm_image_cache_misses_total", {},
                              Misses);
  MetricsRegistry::addGauge(Out, "xterm_image_cache_hit_ratio", {},
                            Hits + Misses > 0 ? Hits / (Hits + Misses) : 0.0);
  for (const SitePosterior &P : Cumulative.sitePosteriors(MaxSites)) {
    std::string Labels =
        P.Dangling
            ? MetricsRegistry::label("kind", "dangling") + "," +
                  MetricsRegistry::label("alloc", formatSite(P.AllocSite)) +
                  "," + MetricsRegistry::label("free", formatSite(P.FreeSite))
            : MetricsRegistry::label("kind", "overflow") + "," +
                  MetricsRegistry::label("site", formatSite(P.AllocSite));
    MetricsRegistry::addGauge(Out, "xterm_site_posterior", Labels, P.margin());
    MetricsRegistry::addCounter(Out, "xterm_site_trials_total",
                                std::move(Labels), double(P.TrialCount));
  }
}

//===- heapimage/HeapImageIO.h - Heap image (de)serialization --*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of heap images (§3.4).  Iterative mode stores an
/// image per run on disk and post-processes them; this module is that disk
/// format.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_HEAPIMAGE_HEAPIMAGEIO_H
#define EXTERMINATOR_HEAPIMAGE_HEAPIMAGEIO_H

#include "heapimage/HeapImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace exterminator {

/// Encodes \p Image into a self-describing byte buffer.
std::vector<uint8_t> serializeHeapImage(const HeapImage &Image);

/// Decodes an image; returns false (leaving \p ImageOut unspecified) on a
/// malformed buffer.
bool deserializeHeapImage(const std::vector<uint8_t> &Buffer,
                          HeapImage &ImageOut);

/// Saves \p Image to \p Path; returns false on I/O failure.
bool saveHeapImage(const HeapImage &Image, const std::string &Path);

/// Loads an image from \p Path; returns false on I/O or format failure.
bool loadHeapImage(const std::string &Path, HeapImage &ImageOut);

} // namespace exterminator

#endif // EXTERMINATOR_HEAPIMAGE_HEAPIMAGEIO_H

//===- heapimage/HeapImageIO.h - Heap image (de)serialization --*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of heap images (§3.4).  Iterative mode stores an
/// image per run on disk and post-processes them; this module is that disk
/// format.
///
/// Two wire formats exist:
///
///  * v1 ("XHI1") — the original eager array-of-structs layout: full
///    per-slot metadata plus a length-prefixed blob of every slot's raw
///    contents.  Still *loaded* for compatibility; serializeHeapImageV1
///    is retained so tests and benchmarks can measure against it.
///  * v2 ("XHI2") — the columnar layout: an explicit version header,
///    varint-packed metadata (virgin slots collapse to region runs), and
///    run-length-encoded contents.  Writes stream through a ByteSink, so
///    saving never materializes a second copy of the image.
///
/// deserializeHeapImage dispatches on the magic, so readers accept both.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_HEAPIMAGE_HEAPIMAGEIO_H
#define EXTERMINATOR_HEAPIMAGE_HEAPIMAGEIO_H

#include "heapimage/HeapImage.h"
#include "support/Serializer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace exterminator {

/// Wire format versions (HeapImage::SourceFormatVersion after a load).
inline constexpr uint32_t HeapImageFormatV1 = 1;
inline constexpr uint32_t HeapImageFormatV2 = 2;

/// Encodes \p Image into a self-describing v2 byte buffer.
std::vector<uint8_t> serializeHeapImage(const HeapImage &Image);

/// Streams \p Image in v2 format into \p Sink; returns false on write
/// failure.
bool serializeHeapImage(const HeapImage &Image, ByteSink &Sink);

/// Encodes \p Image in the legacy v1 format (compat tests, size
/// comparisons).
std::vector<uint8_t> serializeHeapImageV1(const HeapImage &Image);

/// Decodes an image of either format version; returns false (leaving
/// \p ImageOut unspecified) on a malformed buffer.
bool deserializeHeapImage(const std::vector<uint8_t> &Buffer,
                          HeapImage &ImageOut);

/// Streaming decode of either format version.  Does not check for
/// trailing bytes — callers owning the stream decide what follows.
bool deserializeHeapImage(ByteSource &Source, HeapImage &ImageOut);

/// Saves \p Image (v2, streamed) to \p Path; returns false on I/O
/// failure.
bool saveHeapImage(const HeapImage &Image, const std::string &Path);

/// Loads an image of either format from \p Path; returns false on I/O or
/// format failure (including trailing garbage).
bool loadHeapImage(const std::string &Path, HeapImage &ImageOut);

} // namespace exterminator

#endif // EXTERMINATOR_HEAPIMAGE_HEAPIMAGEIO_H

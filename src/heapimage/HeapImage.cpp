//===- heapimage/HeapImage.cpp - Heap image dumps --------------------------===//

#include "heapimage/HeapImage.h"

#include "diefast/Canary.h"
#include "diefast/DieFastHeap.h"

#include <algorithm>
#include <cstring>

using namespace exterminator;

/// Shortest repeated-word run worth a Pattern entry: two words (16 bytes)
/// already serialize smaller than their literal bytes.
static constexpr size_t MinPatternWords = 2;

//===----------------------------------------------------------------------===//
// SlotContents
//===----------------------------------------------------------------------===//

SlotContents::SlotContents(const HeapImage &Image, uint64_t GlobalSlot)
    : Image(&Image), FirstRun(Image.slotFirstRun(GlobalSlot)),
      NumRuns(Image.slotRunEnd(GlobalSlot) - Image.slotFirstRun(GlobalSlot)) {
  uint64_t Total = 0;
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R)
    Total += Image.runs()[R].Length;
  Size = Total;
}

const ContentsRun &SlotContents::run(size_t I) const {
  assert(I < NumRuns && "run index out of range");
  return Image->runs()[FirstRun + I];
}

uint8_t SlotContents::operator[](size_t I) const {
  assert(I < Size && "contents offset out of range");
  uint64_t Offset = I;
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R) {
    const ContentsRun &Run = Image->runs()[R];
    if (Offset < Run.Length) {
      if (Run.RunKind == ContentsRun::Literal)
        return Image->pool()[Run.PoolOffset + Offset];
      return static_cast<uint8_t>(Run.Word >> (8 * (Offset % 8)));
    }
    Offset -= Run.Length;
  }
  return 0; // Unreachable with a well-formed run table.
}

const uint8_t *SlotContents::bytes(std::vector<uint8_t> &Scratch) const {
  if (NumRuns == 1) {
    const ContentsRun &Run = Image->runs()[FirstRun];
    if (Run.RunKind == ContentsRun::Literal)
      return Image->pool().data() + Run.PoolOffset;
  }
  Scratch.resize(Size);
  decodeTo(Scratch.data());
  return Scratch.data();
}

void SlotContents::decodeTo(uint8_t *Out) const {
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R) {
    const ContentsRun &Run = Image->runs()[R];
    if (Run.RunKind == ContentsRun::Literal) {
      std::memcpy(Out, Image->pool().data() + Run.PoolOffset, Run.Length);
    } else {
      for (uint32_t I = 0; I < Run.Length; I += 8)
        std::memcpy(Out + I, &Run.Word, 8);
    }
    Out += Run.Length;
  }
}

std::vector<uint8_t> SlotContents::decode() const {
  std::vector<uint8_t> Out(Size);
  decodeTo(Out.data());
  return Out;
}

std::optional<CorruptionExtent>
SlotContents::findCorruption(const Canary &HeapCanary) const {
  // Runs are 8-byte aligned within the slot, so a run always starts at
  // phase 0 of the 4-byte canary pattern.
  const uint64_t Expected = HeapCanary.patternWord();
  size_t Begin = Size, End = 0;
  uint64_t Offset = 0;
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R) {
    const ContentsRun &Run = Image->runs()[R];
    if (Run.RunKind == ContentsRun::Pattern) {
      if (Run.Word != Expected) {
        // Every 8-byte block of the run differs identically; the extent
        // spans from the first differing byte of the first block to the
        // last differing byte of the last block.
        size_t FirstByte = 8, LastByte = 0;
        for (size_t B = 0; B < 8; ++B) {
          const uint8_t Have = static_cast<uint8_t>(Run.Word >> (8 * B));
          const uint8_t Want = static_cast<uint8_t>(Expected >> (8 * B));
          if (Have != Want) {
            FirstByte = std::min(FirstByte, B);
            LastByte = B + 1;
          }
        }
        Begin = std::min(Begin, static_cast<size_t>(Offset) + FirstByte);
        End = std::max(End, static_cast<size_t>(Offset) + Run.Length - 8 +
                                LastByte);
      }
    } else {
      const uint8_t *Data = Image->pool().data() + Run.PoolOffset;
      if (std::optional<CorruptionExtent> Extent =
              HeapCanary.findCorruption(Data, Run.Length)) {
        Begin = std::min(Begin, static_cast<size_t>(Offset) + Extent->Begin);
        End = std::max(End, static_cast<size_t>(Offset) + Extent->End);
      }
    }
    Offset += Run.Length;
  }
  if (End == 0)
    return std::nullopt;
  return CorruptionExtent{Begin, End};
}

bool SlotContents::equals(const SlotContents &Other) const {
  if (Size != Other.Size)
    return false;
  // Fast path: structurally identical encodings (both sides come from
  // the same canonical encoder).
  if (NumRuns == Other.NumRuns) {
    bool Structural = true;
    for (size_t R = 0; R < NumRuns && Structural; ++R) {
      const ContentsRun &A = run(R);
      const ContentsRun &B = Other.run(R);
      if (A.RunKind != B.RunKind || A.Length != B.Length) {
        Structural = false;
      } else if (A.RunKind == ContentsRun::Pattern) {
        if (A.Word != B.Word)
          return false;
      } else if (std::memcmp(Image->pool().data() + A.PoolOffset,
                             Other.Image->pool().data() + B.PoolOffset,
                             A.Length) != 0) {
        return false;
      }
    }
    if (Structural)
      return true;
  }
  std::vector<uint8_t> ScratchA, ScratchB;
  return std::memcmp(bytes(ScratchA), Other.bytes(ScratchB), Size) == 0;
}

//===----------------------------------------------------------------------===//
// HeapImage
//===----------------------------------------------------------------------===//

size_t HeapImage::objectCount() const {
  size_t Count = 0;
  for (uint64_t Id : ObjectIds)
    if (Id != 0)
      ++Count;
  return Count;
}

uint32_t HeapImage::beginMiniheap(uint32_t SizeClassIndex, uint64_t ObjectSize,
                                  uint64_t BaseAddress,
                                  uint64_t CreationTime) {
  ImageMiniheapInfo Info;
  Info.SizeClassIndex = SizeClassIndex;
  Info.ObjectSize = ObjectSize;
  Info.BaseAddress = BaseAddress;
  Info.CreationTime = CreationTime;
  Info.FirstSlot = Flags.size();
  Info.NumSlots = 0;
  Miniheaps.push_back(Info);
  return static_cast<uint32_t>(Miniheaps.size() - 1);
}

void HeapImage::addSlot(uint8_t SlotFlags, uint64_t ObjectId,
                        uint64_t FreeTime, SiteId AllocSite, SiteId FreeSite,
                        uint32_t RequestedSize) {
  assert(!Miniheaps.empty() && "addSlot before beginMiniheap");
  ++Miniheaps.back().NumSlots;
  Flags.push_back(SlotFlags);
  ObjectIds.push_back(ObjectId);
  FreeTimes.push_back(FreeTime);
  AllocSites.push_back(AllocSite);
  FreeSites.push_back(FreeSite);
  RequestedSizes.push_back(RequestedSize);
  RunBegin.push_back(static_cast<uint32_t>(Runs.size()));
}

void HeapImage::addLiteralRun(const uint8_t *Data, size_t Size) {
  assert(!RunBegin.empty() && "contents run before addSlot");
  ContentsRun Run;
  Run.RunKind = ContentsRun::Literal;
  Run.Length = static_cast<uint32_t>(Size);
  Run.PoolOffset = static_cast<uint32_t>(Pool.size());
  Pool.insert(Pool.end(), Data, Data + Size);
  Runs.push_back(Run);
}

void HeapImage::addPatternRun(uint64_t Word, uint32_t Length) {
  assert(!RunBegin.empty() && "contents run before addSlot");
  assert(Length % 8 == 0 && "pattern runs cover whole words");
  ContentsRun Run;
  Run.RunKind = ContentsRun::Pattern;
  Run.Length = Length;
  Run.Word = Word;
  Runs.push_back(Run);
}

void HeapImage::addSlotBytes(const uint8_t *Data, size_t Size) {
  const size_t Words = Size / 8;
  auto wordAt = [&](size_t W) {
    uint64_t Value;
    std::memcpy(&Value, Data + W * 8, 8);
    return Value;
  };

  size_t LiteralStart = 0;
  size_t W = 0;
  while (W < Words) {
    const uint64_t Value = wordAt(W);
    size_t Repeat = 1;
    while (W + Repeat < Words && wordAt(W + Repeat) == Value)
      ++Repeat;
    // A whole-slot single word is also a pattern run, so even 8-byte
    // virgin slots stay collapsible at serialization time.
    if (Repeat >= MinPatternWords || (W == 0 && Repeat == Words)) {
      if (LiteralStart < W * 8)
        addLiteralRun(Data + LiteralStart, W * 8 - LiteralStart);
      addPatternRun(Value, static_cast<uint32_t>(Repeat * 8));
      W += Repeat;
      LiteralStart = W * 8;
    } else {
      W += Repeat;
    }
  }
  // Object sizes are powers of two ≥ 8, so there is normally no tail;
  // handle one anyway for robustness against odd inputs.
  if (LiteralStart < Size)
    addLiteralRun(Data + LiteralStart, Size - LiteralStart);
}

void HeapImage::reserveSlots(size_t Slots) {
  Flags.reserve(Flags.size() + Slots);
  ObjectIds.reserve(ObjectIds.size() + Slots);
  FreeTimes.reserve(FreeTimes.size() + Slots);
  AllocSites.reserve(AllocSites.size() + Slots);
  FreeSites.reserve(FreeSites.size() + Slots);
  RequestedSizes.reserve(RequestedSizes.size() + Slots);
  RunBegin.reserve(RunBegin.size() + Slots);
}

bool HeapImage::operator==(const HeapImage &Other) const {
  // SourceFormatVersion is provenance, not content.
  return AllocationTime == Other.AllocationTime &&
         CanaryValue == Other.CanaryValue &&
         CanaryFillProbability == Other.CanaryFillProbability &&
         Multiplier == Other.Multiplier && HeapSeed == Other.HeapSeed &&
         Miniheaps == Other.Miniheaps && Flags == Other.Flags &&
         ObjectIds == Other.ObjectIds && FreeTimes == Other.FreeTimes &&
         AllocSites == Other.AllocSites && FreeSites == Other.FreeSites &&
         RequestedSizes == Other.RequestedSizes &&
         RunBegin == Other.RunBegin && Runs == Other.Runs &&
         Pool == Other.Pool;
}

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

HeapImage exterminator::captureHeapImage(const DieFastHeap &Heap) {
  HeapImage Image;
  const DieHardHeap &Inner = Heap.heap();
  Image.AllocationTime = Inner.allocationClock();
  Image.CanaryValue = Heap.canary().value();
  Image.CanaryFillProbability = Heap.canaryFillProbability();
  Image.Multiplier = Inner.multiplier();
  Image.HeapSeed = Inner.config().Seed;

  Inner.forEachMiniheap([&](unsigned /*ClassIndex*/, unsigned /*HeapIndex*/,
                            const Miniheap &Mini) {
    Image.beginMiniheap(Mini.sizeClassIndex(), Mini.objectSize(),
                        reinterpret_cast<uint64_t>(Mini.base()),
                        Mini.creationTime());
    Image.reserveSlots(Mini.numSlots());
    for (size_t I = 0; I < Mini.numSlots(); ++I) {
      const SlotMetadata &Meta = Mini.slot(I);
      const uint8_t Flags =
          (Mini.isAllocated(I) ? SlotFlagAllocated : 0) |
          (Meta.Bad ? SlotFlagBad : 0) | (Meta.Canaried ? SlotFlagCanaried : 0);
      Image.addSlot(Flags, Meta.ObjectId, Meta.FreeTime, Meta.AllocSite,
                    Meta.FreeSite, Meta.RequestedSize);
      Image.addSlotBytes(Mini.slotPointer(I), Mini.objectSize());
    }
  });
  return Image;
}

//===----------------------------------------------------------------------===//
// HeapImageView
//===----------------------------------------------------------------------===//

HeapImageView::HeapImageView(const HeapImage &Image) : Image(Image) {
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S)
      if (uint64_t Id = Image.objectIdAt(Mini.FirstSlot + S))
        ById.emplace(Id, ImageLocation{M, S});
    ByAddress.push_back(M);
  }
  std::sort(ByAddress.begin(), ByAddress.end(), [&](uint32_t A, uint32_t B) {
    return Image.miniheapInfo(A).BaseAddress <
           Image.miniheapInfo(B).BaseAddress;
  });
}

std::optional<ImageLocation>
HeapImageView::findById(uint64_t ObjectId) const {
  auto It = ById.find(ObjectId);
  if (It == ById.end())
    return std::nullopt;
  return It->second;
}

std::optional<std::pair<ImageLocation, uint64_t>>
HeapImageView::locateAddress(uint64_t Address) const {
  // Binary search for the last miniheap whose base is <= Address.
  auto It = std::upper_bound(
      ByAddress.begin(), ByAddress.end(), Address,
      [&](uint64_t Addr, uint32_t M) {
        return Addr < Image.miniheapInfo(M).BaseAddress;
      });
  if (It == ByAddress.begin())
    return std::nullopt;
  const uint32_t M = *--It;
  const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
  if (Address < Mini.BaseAddress || Address >= Mini.endAddress())
    return std::nullopt;
  const uint64_t Offset = Address - Mini.BaseAddress;
  ImageLocation Loc{M, static_cast<uint32_t>(Offset / Mini.ObjectSize)};
  return std::make_pair(Loc, Offset % Mini.ObjectSize);
}

std::vector<HeapImageView>
exterminator::makeViews(const std::vector<HeapImage> &Images) {
  std::vector<HeapImageView> Views;
  Views.reserve(Images.size());
  for (const HeapImage &Image : Images)
    Views.emplace_back(Image);
  return Views;
}

//===- heapimage/HeapImage.cpp - Heap image dumps --------------------------===//

#include "heapimage/HeapImage.h"

#include "diefast/Canary.h"
#include "diefast/DieFastHeap.h"
#include "support/Executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <type_traits>

using namespace exterminator;

/// Shortest repeated-word run worth a Pattern entry: two words (16 bytes)
/// already serialize smaller than their literal bytes.
static constexpr size_t MinPatternWords = 2;

//===----------------------------------------------------------------------===//
// evidence_path
//===----------------------------------------------------------------------===//

namespace {

std::atomic<evidence_path::Mode> ActiveMode{evidence_path::Mode::Fast};

} // namespace

void evidence_path::force(Mode M) {
  ActiveMode.store(M, std::memory_order_relaxed);
}

evidence_path::Mode evidence_path::mode() {
  return ActiveMode.load(std::memory_order_relaxed);
}

bool evidence_path::isLegacy() { return mode() == Mode::Legacy; }

//===----------------------------------------------------------------------===//
// SlotContents
//===----------------------------------------------------------------------===//

SlotContents::SlotContents(const HeapImage &Image, uint64_t GlobalSlot)
    : Image(&Image), FirstRun(Image.slotFirstRun(GlobalSlot)),
      NumRuns(Image.slotRunEnd(GlobalSlot) - Image.slotFirstRun(GlobalSlot)) {
  uint64_t Total = 0;
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R)
    Total += Image.runs()[R].Length;
  Size = Total;
}

const ContentsRun &SlotContents::run(size_t I) const {
  assert(I < NumRuns && "run index out of range");
  return Image->runs()[FirstRun + I];
}

uint8_t SlotContents::operator[](size_t I) const {
  assert(I < Size && "contents offset out of range");
  uint64_t Offset = I;
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R) {
    const ContentsRun &Run = Image->runs()[R];
    if (Offset < Run.Length) {
      if (Run.RunKind == ContentsRun::Literal)
        return Image->pool()[Run.PoolOffset + Offset];
      return static_cast<uint8_t>(Run.Word >> (8 * (Offset % 8)));
    }
    Offset -= Run.Length;
  }
  return 0; // Unreachable with a well-formed run table.
}

const uint8_t *SlotContents::bytes(std::vector<uint8_t> &Scratch) const {
  if (NumRuns == 1) {
    const ContentsRun &Run = Image->runs()[FirstRun];
    if (Run.RunKind == ContentsRun::Literal)
      return Image->pool().data() + Run.PoolOffset;
  }
  Scratch.resize(Size);
  decodeTo(Scratch.data());
  return Scratch.data();
}

void SlotContents::decodeTo(uint8_t *Out) const {
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R) {
    const ContentsRun &Run = Image->runs()[R];
    if (Run.RunKind == ContentsRun::Literal) {
      std::memcpy(Out, Image->pool().data() + Run.PoolOffset, Run.Length);
    } else {
      for (uint32_t I = 0; I < Run.Length; I += 8)
        std::memcpy(Out + I, &Run.Word, 8);
    }
    Out += Run.Length;
  }
}

std::vector<uint8_t> SlotContents::decode() const {
  std::vector<uint8_t> Out(Size);
  decodeTo(Out.data());
  return Out;
}

std::optional<CorruptionExtent>
SlotContents::findCorruption(const Canary &HeapCanary) const {
  // Runs are 8-byte aligned within the slot, so a run always starts at
  // phase 0 of the 4-byte canary pattern.
  const uint64_t Expected = HeapCanary.patternWord();
  size_t Begin = Size, End = 0;
  uint64_t Offset = 0;
  for (uint32_t R = FirstRun; R < FirstRun + NumRuns; ++R) {
    const ContentsRun &Run = Image->runs()[R];
    if (Run.RunKind == ContentsRun::Pattern) {
      if (Run.Word != Expected) {
        // Every 8-byte block of the run differs identically; the extent
        // spans from the first differing byte of the first block to the
        // last differing byte of the last block.
        size_t FirstByte = 8, LastByte = 0;
        for (size_t B = 0; B < 8; ++B) {
          const uint8_t Have = static_cast<uint8_t>(Run.Word >> (8 * B));
          const uint8_t Want = static_cast<uint8_t>(Expected >> (8 * B));
          if (Have != Want) {
            FirstByte = std::min(FirstByte, B);
            LastByte = B + 1;
          }
        }
        Begin = std::min(Begin, static_cast<size_t>(Offset) + FirstByte);
        End = std::max(End, static_cast<size_t>(Offset) + Run.Length - 8 +
                                LastByte);
      }
    } else {
      const uint8_t *Data = Image->pool().data() + Run.PoolOffset;
      if (std::optional<CorruptionExtent> Extent =
              HeapCanary.findCorruption(Data, Run.Length)) {
        Begin = std::min(Begin, static_cast<size_t>(Offset) + Extent->Begin);
        End = std::max(End, static_cast<size_t>(Offset) + Extent->End);
      }
    }
    Offset += Run.Length;
  }
  if (End == 0)
    return std::nullopt;
  return CorruptionExtent{Begin, End};
}

bool SlotContents::equals(const SlotContents &Other) const {
  if (Size != Other.Size)
    return false;
  // Fast path: structurally identical encodings (both sides come from
  // the same canonical encoder).
  if (NumRuns == Other.NumRuns) {
    bool Structural = true;
    for (size_t R = 0; R < NumRuns && Structural; ++R) {
      const ContentsRun &A = run(R);
      const ContentsRun &B = Other.run(R);
      if (A.RunKind != B.RunKind || A.Length != B.Length) {
        Structural = false;
      } else if (A.RunKind == ContentsRun::Pattern) {
        if (A.Word != B.Word)
          return false;
      } else if (std::memcmp(Image->pool().data() + A.PoolOffset,
                             Other.Image->pool().data() + B.PoolOffset,
                             A.Length) != 0) {
        return false;
      }
    }
    if (Structural)
      return true;
  }
  std::vector<uint8_t> ScratchA, ScratchB;
  return std::memcmp(bytes(ScratchA), Other.bytes(ScratchB), Size) == 0;
}

//===----------------------------------------------------------------------===//
// HeapImage
//===----------------------------------------------------------------------===//

size_t HeapImage::objectCount() const {
  size_t Count = 0;
  for (uint64_t Id : ObjectIds)
    if (Id != 0)
      ++Count;
  return Count;
}

uint32_t HeapImage::beginMiniheap(uint32_t SizeClassIndex, uint64_t ObjectSize,
                                  uint64_t BaseAddress,
                                  uint64_t CreationTime) {
  ImageMiniheapInfo Info;
  Info.SizeClassIndex = SizeClassIndex;
  Info.ObjectSize = ObjectSize;
  Info.BaseAddress = BaseAddress;
  Info.CreationTime = CreationTime;
  Info.FirstSlot = Flags.size();
  Info.NumSlots = 0;
  Miniheaps.push_back(Info);
  return static_cast<uint32_t>(Miniheaps.size() - 1);
}

void HeapImage::addSlot(uint8_t SlotFlags, uint64_t ObjectId,
                        uint64_t FreeTime, SiteId AllocSite, SiteId FreeSite,
                        uint32_t RequestedSize) {
  assert(!Miniheaps.empty() && "addSlot before beginMiniheap");
  ++Miniheaps.back().NumSlots;
  Flags.push_back(SlotFlags);
  ObjectIds.push_back(ObjectId);
  FreeTimes.push_back(FreeTime);
  AllocSites.push_back(AllocSite);
  FreeSites.push_back(FreeSite);
  RequestedSizes.push_back(RequestedSize);
  RunBegin.push_back(static_cast<uint32_t>(Runs.size()));
}

void HeapImage::addLiteralRun(const uint8_t *Data, size_t Size) {
  assert(!RunBegin.empty() && "contents run before addSlot");
  ContentsRun Run;
  Run.RunKind = ContentsRun::Literal;
  Run.Length = static_cast<uint32_t>(Size);
  Run.PoolOffset = static_cast<uint32_t>(Pool.size());
  Pool.insert(Pool.end(), Data, Data + Size);
  Runs.push_back(Run);
}

void HeapImage::addPatternRun(uint64_t Word, uint32_t Length) {
  assert(!RunBegin.empty() && "contents run before addSlot");
  assert(Length % 8 == 0 && "pattern runs cover whole words");
  ContentsRun Run;
  Run.RunKind = ContentsRun::Pattern;
  Run.Length = Length;
  Run.Word = Word;
  Runs.push_back(Run);
}

void HeapImage::addSlotBytesFast(const uint8_t *Data, size_t Size) {
  // Uniform slot (virgin all-zero, canary-filled, or zero-filled
  // fresh allocation — the dominant populations of a DieHard heap):
  // one dispatched SIMD sweep settles the whole slot and emits the
  // single pattern run directly, with no run-boundary scanning.
  uint64_t First;
  std::memcpy(&First, Data, 8);
  if (canary_detail::Verify(Data, Size, First)) {
    addPatternRun(First, static_cast<uint32_t>(Size));
    return;
  }
  // Mixed contents: the same canonical run decomposition as the
  // scalar encoder — a pattern run starts exactly where two adjacent
  // words first match — but both scans run at vector width: FindPair
  // locates the next run start across literal stretches, MatchWords
  // measures the run.  The whole-slot-single-word special case of the
  // scalar loop cannot fire here (the sweep above caught it), so the
  // decompositions are identical (pinned by test).
  size_t LiteralStart = 0;
  const size_t Words = Size / 8;
  size_t W = 0;
  while (W < Words) {
    const size_t RunStart =
        W + canary_detail::FindPair(Data + W * 8, Words - W);
    if (RunStart >= Words)
      break; // no further adjacent pair: literal to the end
    uint64_t Value;
    std::memcpy(&Value, Data + RunStart * 8, 8);
    const size_t Repeat =
        2 + canary_detail::MatchWords(Data + (RunStart + 2) * 8,
                                      Words - RunStart - 2, Value);
    if (LiteralStart < RunStart * 8)
      addLiteralRun(Data + LiteralStart, RunStart * 8 - LiteralStart);
    addPatternRun(Value, static_cast<uint32_t>(Repeat * 8));
    W = RunStart + Repeat;
    LiteralStart = W * 8;
  }
  if (LiteralStart < Size)
    addLiteralRun(Data + LiteralStart, Size - LiteralStart);
}

void HeapImage::addSlotBytes(const uint8_t *Data, size_t Size) {
  if (!evidence_path::isLegacy() && Size >= 8 && Size % 8 == 0) {
    addSlotBytesFast(Data, Size);
    return;
  }

  // Legacy path (and the odd-size fallback): the scalar word loop.
  const size_t Words = Size / 8;
  auto wordAt = [&](size_t W) {
    uint64_t Value;
    std::memcpy(&Value, Data + W * 8, 8);
    return Value;
  };

  size_t LiteralStart = 0;
  size_t W = 0;
  while (W < Words) {
    const uint64_t Value = wordAt(W);
    size_t Repeat = 1;
    while (W + Repeat < Words && wordAt(W + Repeat) == Value)
      ++Repeat;
    // A whole-slot single word is also a pattern run, so even 8-byte
    // virgin slots stay collapsible at serialization time.
    if (Repeat >= MinPatternWords || (W == 0 && Repeat == Words)) {
      if (LiteralStart < W * 8)
        addLiteralRun(Data + LiteralStart, W * 8 - LiteralStart);
      addPatternRun(Value, static_cast<uint32_t>(Repeat * 8));
      W += Repeat;
      LiteralStart = W * 8;
    } else {
      W += Repeat;
    }
  }
  // Object sizes are powers of two ≥ 8, so there is normally no tail;
  // handle one anyway for robustness against odd inputs.
  if (LiteralStart < Size)
    addLiteralRun(Data + LiteralStart, Size - LiteralStart);
}

void HeapImage::captureSlotsBulk(const Miniheap &Mini) {
  assert(!Miniheaps.empty() && "captureSlotsBulk before beginMiniheap");
  const size_t N = Mini.numSlots();
  const size_t Base = Flags.size();
  Miniheaps.back().NumSlots += N;
  Flags.resize(Base + N);
  ObjectIds.resize(Base + N);
  FreeTimes.resize(Base + N);
  AllocSites.resize(Base + N);
  FreeSites.resize(Base + N);
  RequestedSizes.resize(Base + N);
  RunBegin.resize(Base + N);

  uint8_t *FlagsOut = Flags.data() + Base;
  uint64_t *IdsOut = ObjectIds.data() + Base;
  uint64_t *FreeTimesOut = FreeTimes.data() + Base;
  SiteId *AllocSitesOut = AllocSites.data() + Base;
  SiteId *FreeSitesOut = FreeSites.data() + Base;
  uint32_t *SizesOut = RequestedSizes.data() + Base;
  uint32_t *RunBeginOut = RunBegin.data() + Base;

  const size_t ObjectSize = Mini.objectSize();
  // Every slot contributes at least one run; pre-sizing keeps growth
  // out of the per-slot loop for the (dominant) uniform-slot case.
  Runs.reserve(Runs.size() + N);
  const bool WordSized = ObjectSize >= 8 && ObjectSize % 8 == 0;
  for (size_t I = 0; I < N; ++I) {
    const SlotMetadata &Meta = Mini.slot(I);
    FlagsOut[I] =
        (Mini.isAllocated(I) ? SlotFlagAllocated : 0) |
        (Meta.Bad ? SlotFlagBad : 0) | (Meta.Canaried ? SlotFlagCanaried : 0);
    IdsOut[I] = Meta.ObjectId;
    FreeTimesOut[I] = Meta.FreeTime;
    AllocSitesOut[I] = Meta.AllocSite;
    FreeSitesOut[I] = Meta.FreeSite;
    SizesOut[I] = Meta.RequestedSize;
    RunBeginOut[I] = static_cast<uint32_t>(Runs.size());
    if (WordSized)
      addSlotBytesFast(Mini.slotPointer(I), ObjectSize);
    else
      addSlotBytes(Mini.slotPointer(I), ObjectSize);
  }
}

void HeapImage::appendFragment(const HeapImage &Fragment) {
  const uint64_t SlotBase = Flags.size();
  const uint32_t RunBase = static_cast<uint32_t>(Runs.size());
  const uint32_t PoolBase = static_cast<uint32_t>(Pool.size());

  for (ImageMiniheapInfo Info : Fragment.Miniheaps) {
    Info.FirstSlot += SlotBase;
    Miniheaps.push_back(Info);
  }
  Flags.insert(Flags.end(), Fragment.Flags.begin(), Fragment.Flags.end());
  ObjectIds.insert(ObjectIds.end(), Fragment.ObjectIds.begin(),
                   Fragment.ObjectIds.end());
  FreeTimes.insert(FreeTimes.end(), Fragment.FreeTimes.begin(),
                   Fragment.FreeTimes.end());
  AllocSites.insert(AllocSites.end(), Fragment.AllocSites.begin(),
                    Fragment.AllocSites.end());
  FreeSites.insert(FreeSites.end(), Fragment.FreeSites.begin(),
                   Fragment.FreeSites.end());
  RequestedSizes.insert(RequestedSizes.end(),
                        Fragment.RequestedSizes.begin(),
                        Fragment.RequestedSizes.end());
  for (uint32_t Begin : Fragment.RunBegin)
    RunBegin.push_back(Begin + RunBase);
  for (ContentsRun Run : Fragment.Runs) {
    if (Run.RunKind == ContentsRun::Literal)
      Run.PoolOffset += PoolBase;
    Runs.push_back(Run);
  }
  Pool.insert(Pool.end(), Fragment.Pool.begin(), Fragment.Pool.end());
}

void HeapImage::reserveSlots(size_t Slots) {
  Flags.reserve(Flags.size() + Slots);
  ObjectIds.reserve(ObjectIds.size() + Slots);
  FreeTimes.reserve(FreeTimes.size() + Slots);
  AllocSites.reserve(AllocSites.size() + Slots);
  FreeSites.reserve(FreeSites.size() + Slots);
  RequestedSizes.reserve(RequestedSizes.size() + Slots);
  RunBegin.reserve(RunBegin.size() + Slots);
}

bool HeapImage::operator==(const HeapImage &Other) const {
  // SourceFormatVersion is provenance, not content.
  return AllocationTime == Other.AllocationTime &&
         CanaryValue == Other.CanaryValue &&
         CanaryFillProbability == Other.CanaryFillProbability &&
         Multiplier == Other.Multiplier && HeapSeed == Other.HeapSeed &&
         Miniheaps == Other.Miniheaps && Flags == Other.Flags &&
         ObjectIds == Other.ObjectIds && FreeTimes == Other.FreeTimes &&
         AllocSites == Other.AllocSites && FreeSites == Other.FreeSites &&
         RequestedSizes == Other.RequestedSizes &&
         RunBegin == Other.RunBegin && Runs == Other.Runs &&
         Pool == Other.Pool;
}

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

namespace {

/// Captures one miniheap (descriptor, slot columns, contents runs) into
/// \p Image.  The per-slot encoding is slot-local, so the same function
/// serves sequential capture and the per-fragment half of parallel
/// capture — which is what makes the stitched result bit-identical.
void captureMiniheapInto(HeapImage &Image, const Miniheap &Mini) {
  Image.beginMiniheap(Mini.sizeClassIndex(), Mini.objectSize(),
                      reinterpret_cast<uint64_t>(Mini.base()),
                      Mini.creationTime());
  if (!evidence_path::isLegacy()) {
    Image.captureSlotsBulk(Mini);
    return;
  }
  Image.reserveSlots(Mini.numSlots());
  for (size_t I = 0; I < Mini.numSlots(); ++I) {
    const SlotMetadata &Meta = Mini.slot(I);
    const uint8_t Flags =
        (Mini.isAllocated(I) ? SlotFlagAllocated : 0) |
        (Meta.Bad ? SlotFlagBad : 0) | (Meta.Canaried ? SlotFlagCanaried : 0);
    Image.addSlot(Flags, Meta.ObjectId, Meta.FreeTime, Meta.AllocSite,
                  Meta.FreeSite, Meta.RequestedSize);
    Image.addSlotBytes(Mini.slotPointer(I), Mini.objectSize());
  }
}

} // namespace

HeapImage exterminator::captureHeapImage(const DieFastHeap &Heap,
                                         Executor *Pool) {
  HeapImage Image;
  const DieHardHeap &Inner = Heap.heap();
  Image.AllocationTime = Inner.allocationClock();
  Image.CanaryValue = Heap.canary().value();
  Image.CanaryFillProbability = Heap.canaryFillProbability();
  Image.Multiplier = Inner.multiplier();
  Image.HeapSeed = Inner.config().Seed;

  std::vector<const Miniheap *> Minis;
  Inner.forEachMiniheap([&](unsigned /*ClassIndex*/, unsigned /*HeapIndex*/,
                            const Miniheap &Mini) { Minis.push_back(&Mini); });

  if (!evidence_path::isLegacy() && Pool && Pool->threadCount() > 1 &&
      Minis.size() > 1) {
    // Parallel capture: one fragment per miniheap, stitched in miniheap
    // order.  Fragments are per-index slots, so no locking; the stitch
    // order (not the completion order) fixes the output bytes.
    std::vector<HeapImage> Fragments(Minis.size());
    Pool->parallelFor(Minis.size(), [&](size_t I) {
      captureMiniheapInto(Fragments[I], *Minis[I]);
    });
    for (const HeapImage &Fragment : Fragments)
      Image.appendFragment(Fragment);
    return Image;
  }

  for (const Miniheap *Mini : Minis)
    captureMiniheapInto(Image, *Mini);
  return Image;
}

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

namespace {

inline uint64_t mixHash(uint64_t H, uint64_t Value) {
  H ^= Value * 0x9E3779B97F4A7C15ull;
  H = (H << 27) | (H >> 37);
  return H * 0xBF58476D1CE4E5B9ull;
}

uint64_t hashBytes(uint64_t H, const uint8_t *Data, size_t Size) {
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Chunk;
    std::memcpy(&Chunk, Data + I, 8);
    H = mixHash(H, Chunk);
  }
  uint64_t Tail = 0;
  for (size_t B = 0; I + B < Size; ++B)
    Tail |= uint64_t(Data[I + B]) << (8 * B);
  return mixHash(H, Tail ^ Size);
}

template <typename T>
uint64_t hashPod(uint64_t H, const std::vector<T> &Column) {
  static_assert(std::is_trivially_copyable_v<T> && !std::is_class_v<T>,
                "column fingerprints cover padding-free scalars only");
  H = mixHash(H, Column.size());
  return hashBytes(H, reinterpret_cast<const uint8_t *>(Column.data()),
                   Column.size() * sizeof(T));
}

} // namespace

uint64_t exterminator::heapImageFingerprint(const HeapImage &Image) {
  uint64_t H = 0x5851F42D4C957F2Dull;
  H = mixHash(H, Image.AllocationTime);
  H = mixHash(H, Image.CanaryValue);
  uint64_t Bits;
  std::memcpy(&Bits, &Image.CanaryFillProbability, 8);
  H = mixHash(H, Bits);
  std::memcpy(&Bits, &Image.Multiplier, 8);
  H = mixHash(H, Bits);
  H = mixHash(H, Image.HeapSeed);
  // Structs are hashed field-wise: raw struct bytes would fold in
  // indeterminate padding and make equal images fingerprint unequal.
  H = mixHash(H, Image.miniheapCount());
  for (const ImageMiniheapInfo &Mini : Image.miniheaps()) {
    H = mixHash(H, Mini.SizeClassIndex);
    H = mixHash(H, Mini.ObjectSize);
    H = mixHash(H, Mini.BaseAddress);
    H = mixHash(H, Mini.CreationTime);
    H = mixHash(H, Mini.FirstSlot);
    H = mixHash(H, Mini.NumSlots);
  }
  H = hashPod(H, Image.flagsColumn());
  H = hashPod(H, Image.objectIdColumn());
  H = hashPod(H, Image.freeTimeColumn());
  H = hashPod(H, Image.allocSiteColumn());
  H = hashPod(H, Image.freeSiteColumn());
  H = hashPod(H, Image.requestedSizeColumn());
  H = mixHash(H, Image.runs().size());
  for (const ContentsRun &Run : Image.runs()) {
    H = mixHash(H, (uint64_t(Run.Length) << 32) | Run.PoolOffset);
    H = mixHash(H, Run.Word ^ Run.RunKind);
  }
  for (uint64_t G = 0; G < Image.totalSlots(); ++G)
    H = mixHash(H, Image.slotFirstRun(G));
  H = hashPod(H, Image.pool());
  return H;
}

//===----------------------------------------------------------------------===//
// HeapImageView
//===----------------------------------------------------------------------===//

HeapImageView::HeapImageView(const HeapImage &Image)
    : Image(Image), LegacyIndex(evidence_path::isLegacy()) {
  if (!LegacyIndex) {
    // Pre-size the flat table exactly: one sequential pass over the id
    // column is far cheaper than growth rehashes mid-build.
    size_t IdCount = 0;
    for (uint64_t Id : Image.objectIdColumn())
      IdCount += Id != 0;
    FlatById.reserve(IdCount);
  }
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S)
      if (uint64_t Id = Image.objectIdAt(Mini.FirstSlot + S)) {
        if (LegacyIndex)
          ById.emplace(Id, ImageLocation{M, S});
        else
          FlatById.emplace(Id, ImageLocation{M, S});
      }
    ByAddress.push_back(M);
  }
  std::sort(ByAddress.begin(), ByAddress.end(), [&](uint32_t A, uint32_t B) {
    return Image.miniheapInfo(A).BaseAddress <
           Image.miniheapInfo(B).BaseAddress;
  });
}

std::optional<ImageLocation>
HeapImageView::findById(uint64_t ObjectId) const {
  if (!LegacyIndex) {
    if (const ImageLocation *Loc = FlatById.lookup(ObjectId))
      return *Loc;
    return std::nullopt;
  }
  auto It = ById.find(ObjectId);
  if (It == ById.end())
    return std::nullopt;
  return It->second;
}

std::optional<std::pair<ImageLocation, uint64_t>>
HeapImageView::locateAddress(uint64_t Address) const {
  // Binary search for the last miniheap whose base is <= Address.
  auto It = std::upper_bound(
      ByAddress.begin(), ByAddress.end(), Address,
      [&](uint64_t Addr, uint32_t M) {
        return Addr < Image.miniheapInfo(M).BaseAddress;
      });
  if (It == ByAddress.begin())
    return std::nullopt;
  const uint32_t M = *--It;
  const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
  if (Address < Mini.BaseAddress || Address >= Mini.endAddress())
    return std::nullopt;
  const uint64_t Offset = Address - Mini.BaseAddress;
  ImageLocation Loc{M, static_cast<uint32_t>(Offset / Mini.ObjectSize)};
  return std::make_pair(Loc, Offset % Mini.ObjectSize);
}

std::vector<HeapImageView>
exterminator::makeViews(const std::vector<HeapImage> &Images) {
  std::vector<HeapImageView> Views;
  Views.reserve(Images.size());
  for (const HeapImage &Image : Images)
    Views.emplace_back(Image);
  return Views;
}

//===- heapimage/HeapImage.cpp - Heap image dumps --------------------------===//

#include "heapimage/HeapImage.h"

#include "diefast/DieFastHeap.h"

#include <algorithm>
#include <cstring>

using namespace exterminator;

size_t HeapImage::totalSlots() const {
  size_t Total = 0;
  for (const ImageMiniheap &Mini : Miniheaps)
    Total += Mini.Slots.size();
  return Total;
}

size_t HeapImage::objectCount() const {
  size_t Count = 0;
  for (const ImageMiniheap &Mini : Miniheaps)
    for (const ImageSlot &Slot : Mini.Slots)
      if (Slot.ObjectId != 0)
        ++Count;
  return Count;
}

HeapImage exterminator::captureHeapImage(const DieFastHeap &Heap) {
  HeapImage Image;
  const DieHardHeap &Inner = Heap.heap();
  Image.AllocationTime = Inner.allocationClock();
  Image.CanaryValue = Heap.canary().value();
  Image.CanaryFillProbability = Heap.canaryFillProbability();
  Image.Multiplier = Inner.multiplier();
  Image.HeapSeed = Inner.config().Seed;

  Inner.forEachMiniheap([&](unsigned /*ClassIndex*/, unsigned /*HeapIndex*/,
                            const Miniheap &Mini) {
    ImageMiniheap Out;
    Out.SizeClassIndex = Mini.sizeClassIndex();
    Out.ObjectSize = Mini.objectSize();
    Out.BaseAddress = reinterpret_cast<uint64_t>(Mini.base());
    Out.CreationTime = Mini.creationTime();
    Out.Slots.resize(Mini.numSlots());
    for (size_t I = 0; I < Mini.numSlots(); ++I) {
      const SlotMetadata &Meta = Mini.slot(I);
      ImageSlot &Slot = Out.Slots[I];
      Slot.Allocated = Mini.isAllocated(I);
      Slot.Bad = Meta.Bad;
      Slot.Canaried = Meta.Canaried;
      Slot.ObjectId = Meta.ObjectId;
      Slot.AllocTime = Meta.AllocTime;
      Slot.FreeTime = Meta.FreeTime;
      Slot.AllocSite = Meta.AllocSite;
      Slot.FreeSite = Meta.FreeSite;
      Slot.RequestedSize = Meta.RequestedSize;
      Slot.Contents.assign(Mini.slotPointer(I),
                           Mini.slotPointer(I) + Mini.objectSize());
    }
    Image.Miniheaps.push_back(std::move(Out));
  });
  return Image;
}

ImageIndex::ImageIndex(const HeapImage &Image) : Image(Image) {
  for (uint32_t M = 0; M < Image.Miniheaps.size(); ++M) {
    const ImageMiniheap &Mini = Image.Miniheaps[M];
    for (uint32_t S = 0; S < Mini.Slots.size(); ++S)
      if (uint64_t Id = Mini.Slots[S].ObjectId)
        ById.emplace(Id, ImageLocation{M, S});
    ByAddress.push_back(M);
  }
  std::sort(ByAddress.begin(), ByAddress.end(), [&](uint32_t A, uint32_t B) {
    return Image.Miniheaps[A].BaseAddress < Image.Miniheaps[B].BaseAddress;
  });
}

std::optional<ImageLocation> ImageIndex::findById(uint64_t ObjectId) const {
  auto It = ById.find(ObjectId);
  if (It == ById.end())
    return std::nullopt;
  return It->second;
}

std::optional<std::pair<ImageLocation, uint64_t>>
ImageIndex::locateAddress(uint64_t Address) const {
  // Binary search for the last miniheap whose base is <= Address.
  auto It = std::upper_bound(
      ByAddress.begin(), ByAddress.end(), Address,
      [&](uint64_t Addr, uint32_t M) {
        return Addr < Image.Miniheaps[M].BaseAddress;
      });
  if (It == ByAddress.begin())
    return std::nullopt;
  const uint32_t M = *--It;
  const ImageMiniheap &Mini = Image.Miniheaps[M];
  const uint64_t End =
      Mini.BaseAddress + Mini.Slots.size() * Mini.ObjectSize;
  if (Address < Mini.BaseAddress || Address >= End)
    return std::nullopt;
  const uint64_t Offset = Address - Mini.BaseAddress;
  ImageLocation Loc{M, static_cast<uint32_t>(Offset / Mini.ObjectSize)};
  return std::make_pair(Loc, Offset % Mini.ObjectSize);
}

//===- heapimage/HeapImageIO.cpp - Heap image (de)serialization ------------===//

#include "heapimage/HeapImageIO.h"

#include "heapimage/ImageFormatDetail.h"

using namespace exterminator;
using namespace exterminator::imagedetail;

// Format magics: "XHI1" (legacy array-of-structs) and "XHI2" (columnar).
static constexpr uint32_t ImageMagicV1 = 0x58484931;
static constexpr uint32_t ImageMagicV2 = 0x58484932;

// The slot-record tag constants (VirginRunTag, HasMetaBit, FlagsMask)
// live in ImageFormatDetail.h since PR 10: the delta body codec shares
// them.

//===----------------------------------------------------------------------===//
// Shared v2 body codec (ImageFormatDetail.h) — used by this file's
// single-image format and by ImageBundle's multi-image format.
//===----------------------------------------------------------------------===//

void imagedetail::SiteDictionary::collect(const HeapImage &Image) {
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      intern(Image.allocSite(Loc));
      intern(Image.freeSite(Loc));
    }
  }
}

void imagedetail::writeImageHeader(StreamWriter &Writer,
                                   const HeapImage &Image) {
  Writer.writeU64(Image.AllocationTime);
  Writer.writeU32(Image.CanaryValue);
  Writer.writeF64(Image.CanaryFillProbability);
  Writer.writeF64(Image.Multiplier);
  Writer.writeU64(Image.HeapSeed);
}

void imagedetail::readImageHeader(StreamReader &Reader, HeapImage &Image) {
  Image.AllocationTime = Reader.readU64();
  Image.CanaryValue = Reader.readU32();
  Image.CanaryFillProbability = Reader.readF64();
  Image.Multiplier = Reader.readF64();
  Image.HeapSeed = Reader.readU64();
}

void imagedetail::writeSiteTable(StreamWriter &Writer,
                                 const std::vector<SiteId> &Table) {
  Writer.writeVarU64(Table.size());
  for (SiteId Site : Table)
    Writer.writeU32(Site);
}

bool imagedetail::readSiteTable(StreamReader &Reader,
                                std::vector<SiteId> &TableOut) {
  const uint64_t NumSites = Reader.readVarU64();
  if (Reader.failed() || NumSites == 0 || NumSites > MaxSites)
    return false;
  TableOut.clear();
  TableOut.reserve(std::min(NumSites, ReserveCap));
  for (uint64_t I = 0; I < NumSites && !Reader.failed(); ++I)
    TableOut.push_back(Reader.readU32());
  return !Reader.failed();
}

/// True when slot \p Loc can join a virgin region run: never allocated,
/// no recorded history, and contents a single repeated word.
static bool isVirginSlot(const HeapImage &Image, const ImageLocation &Loc,
                         uint64_t &WordOut) {
  if (Image.slotFlags(Loc) != 0 || Image.objectId(Loc) != 0 ||
      Image.freeTime(Loc) != 0 || Image.allocSite(Loc) != 0 ||
      Image.freeSite(Loc) != 0 || Image.requestedSize(Loc) != 0)
    return false;
  const SlotContents Contents = Image.contents(Loc);
  if (Contents.runCount() != 1)
    return false;
  const ContentsRun &Run = Contents.run(0);
  if (Run.RunKind != ContentsRun::Pattern)
    return false;
  WordOut = Run.Word;
  return true;
}

void imagedetail::writeSlotContents(StreamWriter &Writer,
                                    const HeapImage &Image,
                                    const SlotContents &Contents) {
  Writer.writeVarU64(Contents.runCount());
  for (size_t R = 0; R < Contents.runCount(); ++R) {
    const ContentsRun &Run = Contents.run(R);
    Writer.writeU8(Run.RunKind);
    Writer.writeVarU64(Run.Length);
    if (Run.RunKind == ContentsRun::Pattern)
      Writer.writeU64(Run.Word);
    else
      Writer.writeBytes(Image.pool().data() + Run.PoolOffset, Run.Length);
  }
}

void imagedetail::writeImageBody(StreamWriter &Writer, const HeapImage &Image,
                                 const SiteDictionary &Sites) {
  Writer.writeVarU64(Image.miniheapCount());

  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    Writer.writeVarU64(Mini.SizeClassIndex);
    Writer.writeVarU64(Mini.ObjectSize);
    Writer.writeU64(Mini.BaseAddress);
    Writer.writeVarU64(Mini.CreationTime);
    Writer.writeVarU64(Mini.NumSlots);

    for (uint32_t S = 0; S < Mini.NumSlots;) {
      const ImageLocation Loc{M, S};
      uint64_t Word = 0;
      if (isVirginSlot(Image, Loc, Word)) {
        // Collapse the whole virgin region (same fill word) to one
        // record — the dominant population of an over-provisioned heap.
        uint32_t Count = 1;
        uint64_t NextWord = 0;
        while (S + Count < Mini.NumSlots &&
               isVirginSlot(Image, ImageLocation{M, S + Count}, NextWord) &&
               NextWord == Word)
          ++Count;
        Writer.writeU8(VirginRunTag);
        Writer.writeVarU64(Count);
        Writer.writeU64(Word);
        S += Count;
        continue;
      }

      const uint8_t Flags = Image.slotFlags(Loc);
      const bool HasMeta =
          Image.objectId(Loc) != 0 || Image.freeTime(Loc) != 0 ||
          Image.allocSite(Loc) != 0 || Image.freeSite(Loc) != 0 ||
          Image.requestedSize(Loc) != 0;
      Writer.writeU8(Flags | (HasMeta ? HasMetaBit : 0));
      if (HasMeta) {
        Writer.writeVarU64(Image.objectId(Loc));
        Writer.writeVarU64(Image.freeTime(Loc));
        Writer.writeVarU64(Sites.indexOf(Image.allocSite(Loc)));
        Writer.writeVarU64(Sites.indexOf(Image.freeSite(Loc)));
        Writer.writeVarU64(Image.requestedSize(Loc));
      }
      writeSlotContents(Writer, Image, Image.contents(Loc));
      ++S;
    }
  }
}

bool imagedetail::readSlotContents(StreamReader &Reader, HeapImage &Image,
                                   uint64_t ObjectSize,
                                   std::vector<uint8_t> &Scratch) {
  const uint64_t RunCount = Reader.readVarU64();
  if (Reader.failed() || RunCount > ObjectSize / 8 + 1)
    return false;
  uint64_t Total = 0;
  for (uint64_t R = 0; R < RunCount; ++R) {
    const uint8_t Kind = Reader.readU8();
    const uint64_t Length = Reader.readVarU64();
    // Non-wrapping form: Total + Length could overflow on a corrupt
    // varint and slip past the bound into a huge allocation.
    if (Reader.failed() || Length == 0 || Length > ObjectSize - Total)
      return false;
    if (Kind == ContentsRun::Pattern) {
      if (Length % 8 != 0)
        return false;
      const uint64_t Word = Reader.readU64();
      if (Reader.failed())
        return false;
      Image.addPatternRun(Word, static_cast<uint32_t>(Length));
    } else if (Kind == ContentsRun::Literal) {
      Scratch.resize(Length);
      if (!Reader.readBytes(Scratch.data(), Length))
        return false;
      Image.addLiteralRun(Scratch.data(), Length);
    } else {
      return false;
    }
    Total += Length;
  }
  return Total == ObjectSize;
}

bool imagedetail::readImageBody(StreamReader &Reader, HeapImage &Image,
                                const std::vector<SiteId> &SiteTable,
                                uint64_t &SlotBudget) {
  const uint64_t NumMiniheaps = Reader.readVarU64();
  if (Reader.failed() || NumMiniheaps > MaxMiniheaps)
    return false;

  std::vector<uint8_t> Scratch;
  for (uint64_t M = 0; M < NumMiniheaps; ++M) {
    const uint64_t SizeClassIndex = Reader.readVarU64();
    const uint64_t ObjectSize = Reader.readVarU64();
    const uint64_t BaseAddress = Reader.readU64();
    const uint64_t CreationTime = Reader.readVarU64();
    const uint64_t NumSlots = Reader.readVarU64();
    if (Reader.failed() || NumSlots > MaxSlotsPerMiniheap ||
        NumSlots > SlotBudget || ObjectSize == 0 ||
        ObjectSize > MaxObjectSizeBound || ObjectSize % 8 != 0)
      return false;
    SlotBudget -= NumSlots;
    Image.beginMiniheap(static_cast<uint32_t>(SizeClassIndex), ObjectSize,
                        BaseAddress, CreationTime);
    Image.reserveSlots(std::min(NumSlots, ReserveCap));

    for (uint64_t S = 0; S < NumSlots;) {
      const uint8_t Tag = Reader.readU8();
      if (Reader.failed())
        return false;
      if (Tag == VirginRunTag) {
        const uint64_t Count = Reader.readVarU64();
        const uint64_t Word = Reader.readU64();
        // Non-wrapping form (see readSlotContents).
        if (Reader.failed() || Count == 0 || Count > NumSlots - S)
          return false;
        for (uint64_t I = 0; I < Count; ++I) {
          Image.addSlot(0, 0, 0, 0, 0, 0);
          Image.addPatternRun(Word, static_cast<uint32_t>(ObjectSize));
        }
        S += Count;
        continue;
      }
      if (Tag & ~(FlagsMask | HasMetaBit))
        return false;
      uint64_t ObjectId = 0, FreeTime = 0, RequestedSize = 0;
      SiteId AllocSite = 0, FreeSite = 0;
      if (Tag & HasMetaBit) {
        ObjectId = Reader.readVarU64();
        FreeTime = Reader.readVarU64();
        const uint64_t AllocIndex = Reader.readVarU64();
        const uint64_t FreeIndex = Reader.readVarU64();
        RequestedSize = Reader.readVarU64();
        if (Reader.failed() || AllocIndex >= SiteTable.size() ||
            FreeIndex >= SiteTable.size() || RequestedSize > ~uint32_t(0))
          return false;
        AllocSite = SiteTable[AllocIndex];
        FreeSite = SiteTable[FreeIndex];
      }
      Image.addSlot(Tag & FlagsMask, ObjectId, FreeTime, AllocSite,
                    FreeSite, static_cast<uint32_t>(RequestedSize));
      if (!readSlotContents(Reader, Image, ObjectSize, Scratch))
        return false;
      ++S;
    }
  }
  return !Reader.failed();
}

//===----------------------------------------------------------------------===//
// v2 serialization
//===----------------------------------------------------------------------===//

bool exterminator::serializeHeapImage(const HeapImage &Image,
                                      ByteSink &Sink) {
  StreamWriter Writer(Sink);
  Writer.writeU32(ImageMagicV2);
  Writer.writeU32(HeapImageFormatV2);
  writeImageHeader(Writer, Image);

  // Call-site dictionary: a handful of 32-bit site hashes account for
  // every slot, so slots store 1-byte dictionary indexes instead of
  // 5-byte varint hashes.  First-appearance order keeps the encoding
  // deterministic.
  SiteDictionary Sites;
  Sites.collect(Image);
  writeSiteTable(Writer, Sites.table());
  writeImageBody(Writer, Image, Sites);
  return !Writer.failed();
}

std::vector<uint8_t>
exterminator::serializeHeapImage(const HeapImage &Image) {
  std::vector<uint8_t> Buffer;
  VectorSink Sink(Buffer);
  serializeHeapImage(Image, Sink);
  return Buffer;
}

//===----------------------------------------------------------------------===//
// v2 deserialization
//===----------------------------------------------------------------------===//

static bool deserializeV2(StreamReader &Reader, HeapImage &Image) {
  if (Reader.readU32() != HeapImageFormatV2)
    return false;
  readImageHeader(Reader, Image);
  Image.SourceFormatVersion = HeapImageFormatV2;

  std::vector<SiteId> SiteTable;
  if (!readSiteTable(Reader, SiteTable))
    return false;
  uint64_t SlotBudget = MaxTotalSlots;
  return readImageBody(Reader, Image, SiteTable, SlotBudget);
}

//===----------------------------------------------------------------------===//
// v1 compatibility
//===----------------------------------------------------------------------===//

std::vector<uint8_t>
exterminator::serializeHeapImageV1(const HeapImage &Image) {
  ByteWriter Writer;
  Writer.writeU32(ImageMagicV1);
  Writer.writeU64(Image.AllocationTime);
  Writer.writeU32(Image.CanaryValue);
  Writer.writeF64(Image.CanaryFillProbability);
  Writer.writeF64(Image.Multiplier);
  Writer.writeU64(Image.HeapSeed);
  Writer.writeU64(Image.miniheapCount());
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    Writer.writeU32(Mini.SizeClassIndex);
    Writer.writeU64(Mini.ObjectSize);
    Writer.writeU64(Mini.BaseAddress);
    Writer.writeU64(Mini.CreationTime);
    Writer.writeU64(Mini.NumSlots);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      const uint8_t Flags = Image.slotFlags(Loc);
      uint8_t V1Flags = (Flags & SlotFlagAllocated ? 1 : 0) |
                        (Flags & SlotFlagBad ? 2 : 0) |
                        (Flags & SlotFlagCanaried ? 4 : 0);
      Writer.writeU8(V1Flags);
      Writer.writeU64(Image.objectId(Loc));
      Writer.writeU64(Image.allocTime(Loc)); // v1 stored the pair
      Writer.writeU64(Image.freeTime(Loc));
      Writer.writeU32(Image.allocSite(Loc));
      Writer.writeU32(Image.freeSite(Loc));
      Writer.writeU32(Image.requestedSize(Loc));
      Writer.writeBlob(Image.contents(Loc).decode());
    }
  }
  return Writer.buffer();
}

static bool deserializeV1(StreamReader &Reader, HeapImage &Image) {
  Image.AllocationTime = Reader.readU64();
  Image.CanaryValue = Reader.readU32();
  Image.CanaryFillProbability = Reader.readF64();
  Image.Multiplier = Reader.readF64();
  Image.HeapSeed = Reader.readU64();
  Image.SourceFormatVersion = HeapImageFormatV1;
  const uint64_t NumMiniheaps = Reader.readU64();
  if (Reader.failed() || NumMiniheaps > MaxMiniheaps)
    return false;

  std::vector<uint8_t> Contents;
  for (uint64_t M = 0; M < NumMiniheaps; ++M) {
    const uint32_t SizeClassIndex = Reader.readU32();
    const uint64_t ObjectSize = Reader.readU64();
    const uint64_t BaseAddress = Reader.readU64();
    const uint64_t CreationTime = Reader.readU64();
    const uint64_t NumSlots = Reader.readU64();
    // Same shape rules as v2 (including ObjectSize % 8: real captures
    // are power-of-two sized), so a loaded v1 image always re-saves as
    // a loadable v2 file.
    if (Reader.failed() || NumSlots > MaxSlotsPerMiniheap ||
        Image.totalSlots() + NumSlots > MaxTotalSlots || ObjectSize == 0 ||
        ObjectSize > MaxObjectSizeBound || ObjectSize % 8 != 0)
      return false;
    Image.beginMiniheap(SizeClassIndex, ObjectSize, BaseAddress,
                        CreationTime);
    Image.reserveSlots(std::min(NumSlots, ReserveCap));
    for (uint64_t S = 0; S < NumSlots; ++S) {
      const uint8_t V1Flags = Reader.readU8();
      const uint8_t Flags = (V1Flags & 1 ? SlotFlagAllocated : 0) |
                            (V1Flags & 2 ? SlotFlagBad : 0) |
                            (V1Flags & 4 ? SlotFlagCanaried : 0);
      const uint64_t ObjectId = Reader.readU64();
      Reader.readU64(); // AllocTime: redundant with ObjectId, dropped.
      const uint64_t FreeTime = Reader.readU64();
      const SiteId AllocSite = Reader.readU32();
      const SiteId FreeSite = Reader.readU32();
      const uint32_t RequestedSize = Reader.readU32();
      const uint64_t ContentsSize = Reader.readU64();
      if (Reader.failed() || ContentsSize != ObjectSize)
        return false;
      Contents.resize(ContentsSize);
      if (!Reader.readBytes(Contents.data(), ContentsSize))
        return false;
      Image.addSlot(Flags, ObjectId, FreeTime, AllocSite, FreeSite,
                    RequestedSize);
      Image.addSlotBytes(Contents.data(), Contents.size());
    }
  }
  return !Reader.failed();
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

bool exterminator::deserializeHeapImage(ByteSource &Source,
                                        HeapImage &ImageOut) {
  StreamReader Reader(Source);
  const uint32_t Magic = Reader.readU32();
  if (Reader.failed())
    return false;
  ImageOut = HeapImage();
  if (Magic == ImageMagicV2)
    return deserializeV2(Reader, ImageOut);
  if (Magic == ImageMagicV1)
    return deserializeV1(Reader, ImageOut);
  return false;
}

bool exterminator::deserializeHeapImage(const std::vector<uint8_t> &Buffer,
                                        HeapImage &ImageOut) {
  MemorySource Source(Buffer);
  if (!deserializeHeapImage(Source, ImageOut))
    return false;
  return Source.remaining() == 0;
}

bool exterminator::saveHeapImage(const HeapImage &Image,
                                 const std::string &Path) {
  FileSink Sink(Path);
  if (!Sink.ok())
    return false;
  if (!serializeHeapImage(Image, Sink))
    return false;
  return Sink.close();
}

bool exterminator::loadHeapImage(const std::string &Path,
                                 HeapImage &ImageOut) {
  FileSource Source(Path);
  if (!Source.ok())
    return false;
  if (!deserializeHeapImage(Source, ImageOut))
    return false;
  return Source.exhausted();
}

//===- heapimage/HeapImageIO.cpp - Heap image (de)serialization ------------===//

#include "heapimage/HeapImageIO.h"

#include "support/Serializer.h"

using namespace exterminator;

// Format magic/version: bump when the layout changes.
static constexpr uint32_t ImageMagic = 0x58484931; // "XHI1"

std::vector<uint8_t> exterminator::serializeHeapImage(const HeapImage &Image) {
  ByteWriter Writer;
  Writer.writeU32(ImageMagic);
  Writer.writeU64(Image.AllocationTime);
  Writer.writeU32(Image.CanaryValue);
  Writer.writeF64(Image.CanaryFillProbability);
  Writer.writeF64(Image.Multiplier);
  Writer.writeU64(Image.HeapSeed);
  Writer.writeU64(Image.Miniheaps.size());
  for (const ImageMiniheap &Mini : Image.Miniheaps) {
    Writer.writeU32(Mini.SizeClassIndex);
    Writer.writeU64(Mini.ObjectSize);
    Writer.writeU64(Mini.BaseAddress);
    Writer.writeU64(Mini.CreationTime);
    Writer.writeU64(Mini.Slots.size());
    for (const ImageSlot &Slot : Mini.Slots) {
      uint8_t Flags = (Slot.Allocated ? 1 : 0) | (Slot.Bad ? 2 : 0) |
                      (Slot.Canaried ? 4 : 0);
      Writer.writeU8(Flags);
      Writer.writeU64(Slot.ObjectId);
      Writer.writeU64(Slot.AllocTime);
      Writer.writeU64(Slot.FreeTime);
      Writer.writeU32(Slot.AllocSite);
      Writer.writeU32(Slot.FreeSite);
      Writer.writeU32(Slot.RequestedSize);
      Writer.writeBlob(Slot.Contents);
    }
  }
  return Writer.buffer();
}

bool exterminator::deserializeHeapImage(const std::vector<uint8_t> &Buffer,
                                        HeapImage &ImageOut) {
  ByteReader Reader(Buffer);
  if (Reader.readU32() != ImageMagic)
    return false;
  ImageOut = HeapImage();
  ImageOut.AllocationTime = Reader.readU64();
  ImageOut.CanaryValue = Reader.readU32();
  ImageOut.CanaryFillProbability = Reader.readF64();
  ImageOut.Multiplier = Reader.readF64();
  ImageOut.HeapSeed = Reader.readU64();
  const uint64_t NumMiniheaps = Reader.readU64();
  if (Reader.failed())
    return false;
  ImageOut.Miniheaps.reserve(NumMiniheaps);
  for (uint64_t M = 0; M < NumMiniheaps; ++M) {
    ImageMiniheap Mini;
    Mini.SizeClassIndex = Reader.readU32();
    Mini.ObjectSize = Reader.readU64();
    Mini.BaseAddress = Reader.readU64();
    Mini.CreationTime = Reader.readU64();
    const uint64_t NumSlots = Reader.readU64();
    if (Reader.failed())
      return false;
    Mini.Slots.reserve(NumSlots);
    for (uint64_t S = 0; S < NumSlots; ++S) {
      ImageSlot Slot;
      const uint8_t Flags = Reader.readU8();
      Slot.Allocated = Flags & 1;
      Slot.Bad = Flags & 2;
      Slot.Canaried = Flags & 4;
      Slot.ObjectId = Reader.readU64();
      Slot.AllocTime = Reader.readU64();
      Slot.FreeTime = Reader.readU64();
      Slot.AllocSite = Reader.readU32();
      Slot.FreeSite = Reader.readU32();
      Slot.RequestedSize = Reader.readU32();
      Slot.Contents = Reader.readBlob();
      if (Reader.failed())
        return false;
      Mini.Slots.push_back(std::move(Slot));
    }
    ImageOut.Miniheaps.push_back(std::move(Mini));
  }
  return Reader.atEnd();
}

bool exterminator::saveHeapImage(const HeapImage &Image,
                                 const std::string &Path) {
  return writeFileBytes(Path, serializeHeapImage(Image));
}

bool exterminator::loadHeapImage(const std::string &Path,
                                 HeapImage &ImageOut) {
  std::vector<uint8_t> Buffer;
  if (!readFileBytes(Path, Buffer))
    return false;
  return deserializeHeapImage(Buffer, ImageOut);
}

//===- heapimage/ImageBundle.h - Multi-image wire format -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The image *bundle* format ("XIB1"): a set of heap images serialized
/// with one cross-image call-site dictionary.  Diagnosis evidence always
/// travels as sets — §4 isolation needs multiple images of
/// differently-randomized heaps, and those replicated dumps reference
/// almost exactly the same allocation/deallocation sites — so a bundle
/// writes the union site table once and every image's slot records index
/// into it.  A bundle of N replicated dumps is therefore strictly smaller
/// than N independent v2 files (tests pin this), which is what makes
/// image evidence cheap enough to ship to a patch server.
///
/// The per-image bodies reuse the v2 columnar/run-length encoding
/// byte-for-byte (ImageFormatDetail.h); only the dictionary placement
/// differs.
///
/// Bundle format v2 (PR 10) additionally *delta-encodes* every member
/// image against the first: replicated dumps capture the same program
/// state under different heap layouts, so member slots reference the
/// base image's slot by object id instead of repeating metadata and
/// contents (codec/DeltaCodec.h).  v1 bundles still decode; encoders
/// pick the version per peer (uncompressed v3 wire peers receive v1).
///
/// On disk a bundle is wrapped in the compressed container ("XIC1"): the
/// bundle byte stream passes through the LZ block codec
/// (codec/CodecStream.h).  loadImageBundle transparently reads both the
/// container and bare "XIB1" files.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_HEAPIMAGE_IMAGEBUNDLE_H
#define EXTERMINATOR_HEAPIMAGE_IMAGEBUNDLE_H

#include "heapimage/HeapImage.h"
#include "support/Serializer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace exterminator {

/// Bundle wire-format versions: v1 encodes every image standalone, v2
/// delta-encodes members against the first image.
inline constexpr uint32_t ImageBundleFormatV1 = 1;
inline constexpr uint32_t ImageBundleFormatV2 = 2;

/// "XIC1": the compressed bundle file container (an "XIB1" byte stream
/// passed through the codec layer's block stream).
inline constexpr uint32_t CompressedBundleMagic = 0x58494331;

/// Most images one bundle may carry (far above MaxImages in any config;
/// a forged count fails here instead of looping).
inline constexpr uint64_t MaxBundleImages = 1024;

/// Default decoded-slot budget shared across every image of one bundle
/// (matches the single-image file bound).  Virgin-run records amplify —
/// a dozen wire bytes declare Count slots — so decoders bound what they
/// will materialize, not what they will read.
inline constexpr uint64_t MaxBundleSlots = uint64_t(1) << 24;

/// The tighter budget the patch server applies to bundles arriving over
/// the wire (2M slots ≈ two orders of magnitude above any real evidence
/// set: MaxImages ≤ 8 captures of thousands of slots).  Keeps a forged
/// ~100-byte SubmitImages frame from inflating into gigabytes of
/// columns before rejection.
inline constexpr uint64_t MaxWireSlots = uint64_t(1) << 21;

/// Streams \p Images as one bundle into \p Sink; returns false on write
/// failure or an unknown \p FormatVersion.  An empty set encodes as a
/// valid zero-image bundle.  v2 (the default) delta-encodes members
/// against the first image; pass ImageBundleFormatV1 for peers that
/// predate the delta codec.
bool serializeImageBundle(const std::vector<HeapImage> &Images,
                          ByteSink &Sink,
                          uint32_t FormatVersion = ImageBundleFormatV2);

/// Encodes \p Images into a self-describing bundle byte buffer.
std::vector<uint8_t>
serializeImageBundle(const std::vector<HeapImage> &Images,
                     uint32_t FormatVersion = ImageBundleFormatV2);

/// Streaming decode of one bundle.  Returns false (leaving \p ImagesOut
/// unspecified) on malformed input — truncation, bad magic/version,
/// oversized counts, slot declarations past \p SlotBudget, or slot
/// records referencing out-of-range dictionary entries.  \p SlotBudget
/// is decremented by the slots actually declared, so one budget can
/// span several bundles (the server shares one across a submission's
/// primary + fallback pair).  Does not check for trailing bytes —
/// callers owning the stream decide what follows.
bool deserializeImageBundle(ByteSource &Source,
                            std::vector<HeapImage> &ImagesOut,
                            uint64_t &SlotBudget);
inline bool deserializeImageBundle(ByteSource &Source,
                                   std::vector<HeapImage> &ImagesOut) {
  uint64_t SlotBudget = MaxBundleSlots;
  return deserializeImageBundle(Source, ImagesOut, SlotBudget);
}

/// Buffer decode; additionally rejects trailing garbage.
bool deserializeImageBundle(const std::vector<uint8_t> &Buffer,
                            std::vector<HeapImage> &ImagesOut,
                            uint64_t &SlotBudget);
inline bool deserializeImageBundle(const std::vector<uint8_t> &Buffer,
                                   std::vector<HeapImage> &ImagesOut) {
  uint64_t SlotBudget = MaxBundleSlots;
  return deserializeImageBundle(Buffer, ImagesOut, SlotBudget);
}

/// Saves \p Images as a bundle file; returns false on I/O failure.
bool saveImageBundle(const std::vector<HeapImage> &Images,
                     const std::string &Path);

/// Loads a bundle file; returns false on I/O or format failure.
bool loadImageBundle(const std::string &Path,
                     std::vector<HeapImage> &ImagesOut);

} // namespace exterminator

#endif // EXTERMINATOR_HEAPIMAGE_IMAGEBUNDLE_H

//===- heapimage/HeapImage.h - Heap image dumps ----------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap images (§3.4): when DieFast signals an error, the voter detects
/// divergence, or the program crashes, Exterminator dumps the complete
/// state of the heap — "akin to a core dump, but contains less data (e.g.,
/// no code), and is organized to simplify processing".
///
/// An image records the allocation time of the dump (the *malloc
/// breakpoint* for replay runs), the heap's canary, and for every miniheap
/// its base address plus per-slot metadata and raw contents.  ImageIndex
/// provides the two lookups the error isolator lives on: object-id →
/// location (ids identify the same logical object across
/// differently-randomized heaps) and address → location (pointer
/// identification, §4.1).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_HEAPIMAGE_HEAPIMAGE_H
#define EXTERMINATOR_HEAPIMAGE_HEAPIMAGE_H

#include "support/SiteHash.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace exterminator {

class DieFastHeap;

/// One object slot as captured in an image.
struct ImageSlot {
  bool Allocated = false;
  bool Bad = false;
  bool Canaried = false;
  uint64_t ObjectId = 0;
  uint64_t AllocTime = 0;
  uint64_t FreeTime = 0;
  SiteId AllocSite = 0;
  SiteId FreeSite = 0;
  uint32_t RequestedSize = 0;
  /// Raw slot contents (exactly the miniheap's object size).
  std::vector<uint8_t> Contents;
};

/// One miniheap as captured in an image.
struct ImageMiniheap {
  uint32_t SizeClassIndex = 0;
  uint64_t ObjectSize = 0;
  /// Slab base address in the dumping process.  Addresses are only
  /// meaningful within one image; cross-image identity uses object ids.
  uint64_t BaseAddress = 0;
  uint64_t CreationTime = 0;
  std::vector<ImageSlot> Slots;

  uint64_t slotAddress(size_t Slot) const {
    return BaseAddress + Slot * ObjectSize;
  }
};

/// Locates a slot within an image.
struct ImageLocation {
  uint32_t MiniheapIndex = 0;
  uint32_t SlotIndex = 0;

  bool operator==(const ImageLocation &Other) const = default;
};

/// A complete heap image.
struct HeapImage {
  /// Allocation clock at dump time ("the current allocation time,
  /// measured by the number of allocations to date").
  uint64_t AllocationTime = 0;
  /// The dumping heap's random canary value.
  uint32_t CanaryValue = 0;
  /// Canary fill probability p in effect (1.0 outside cumulative mode).
  double CanaryFillProbability = 1.0;
  /// Heap multiplier M.
  double Multiplier = 2.0;
  /// Seed of the dumping heap, recorded for reproducibility reports.
  uint64_t HeapSeed = 0;
  std::vector<ImageMiniheap> Miniheaps;

  const ImageSlot &slot(const ImageLocation &Loc) const {
    return Miniheaps[Loc.MiniheapIndex].Slots[Loc.SlotIndex];
  }
  const ImageMiniheap &miniheap(const ImageLocation &Loc) const {
    return Miniheaps[Loc.MiniheapIndex];
  }
  uint64_t slotAddress(const ImageLocation &Loc) const {
    return Miniheaps[Loc.MiniheapIndex].slotAddress(Loc.SlotIndex);
  }

  /// Total number of object slots across all miniheaps.
  size_t totalSlots() const;

  /// Number of slots holding objects (live or freed-with-history).
  size_t objectCount() const;
};

/// Captures a heap image from a live DieFast heap.
HeapImage captureHeapImage(const DieFastHeap &Heap);

/// Fast lookups over one image.
class ImageIndex {
public:
  explicit ImageIndex(const HeapImage &Image);

  /// Finds the slot currently associated with \p ObjectId (the id of its
  /// last — possibly still live — owner).
  std::optional<ImageLocation> findById(uint64_t ObjectId) const;

  /// Finds the slot containing address \p Address, with the byte offset
  /// into the slot.
  std::optional<std::pair<ImageLocation, uint64_t>>
  locateAddress(uint64_t Address) const;

  const HeapImage &image() const { return Image; }

private:
  const HeapImage &Image;
  std::unordered_map<uint64_t, ImageLocation> ById;
  /// Miniheap index sorted by base address for binary search.
  std::vector<uint32_t> ByAddress;
};

} // namespace exterminator

#endif // EXTERMINATOR_HEAPIMAGE_HEAPIMAGE_H

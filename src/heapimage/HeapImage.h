//===- heapimage/HeapImage.h - Heap image dumps ----------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap images (§3.4): when DieFast signals an error, the voter detects
/// divergence, or the program crashes, Exterminator dumps the complete
/// state of the heap — "akin to a core dump, but contains less data (e.g.,
/// no code), and is organized to simplify processing".
///
/// Format v2 stores an image *columnar* (structure-of-arrays): one flat
/// array per metadata field across every slot of every miniheap, plus a
/// run-length-encoded contents pool.  Slot contents are encoded as runs —
/// either literal bytes in a shared pool or a repeated 64-bit word — which
/// collapses the two dominant slot populations of a DieHard heap (virgin
/// all-zero slots and canary-filled freed slots) to a few bytes each.
/// The §5 complaint that images run "tens or hundreds of megabytes" is
/// what this layout attacks: metadata scans touch only the columns they
/// need, and contents whose pattern is known never get materialized.
///
/// HeapImageView layers the two lookups the error isolator lives on over
/// an image without copying it: object-id → location (ids identify the
/// same logical object across differently-randomized heaps) and
/// address → location (pointer identification, §4.1).  Isolators consume
/// views; SlotContents hands them canary scans and byte access directly
/// over the run encoding.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_HEAPIMAGE_HEAPIMAGE_H
#define EXTERMINATOR_HEAPIMAGE_HEAPIMAGE_H

#include "support/FlatU64Map.h"
#include "support/SiteHash.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace exterminator {

class DieFastHeap;
class Canary;
class Executor;
class Miniheap;
struct CorruptionExtent;

/// Selects between the PR-4 fast evidence path and the pre-PR-4
/// implementation kept in the same binary for A/B benchmarking (the
/// evidence-side sibling of DieHardConfig::LegacyHotPath).  The toggle
/// governs slot-contents run encoding (SIMD uniform-slot detection and
/// repeat scans vs the scalar word loop), capture parallelism, the
/// HeapImageView object-id index (flat open-addressing vs
/// std::unordered_map), the columnar evidence sweeps, and the
/// DiagnosisPipeline view cache.  Both paths are pinned bit-identical
/// (same serialized images, same derived patch sets) by
/// tests/evidence_test.cpp; never enable Legacy in production.
namespace evidence_path {

enum class Mode {
  /// SIMD encoding, flat indexes, parallel sweeps, cached views.
  Fast,
  /// The pre-PR-4 implementation (bench baseline toggle).
  Legacy,
};

void force(Mode M);
Mode mode();
bool isLegacy();

/// RAII: forces \p M for a scope, restoring the previous mode (tests
/// and the fast-vs-legacy bench sections).
class Scoped {
public:
  explicit Scoped(Mode M) : Previous(mode()) { force(M); }
  ~Scoped() { force(Previous); }
  Scoped(const Scoped &) = delete;
  Scoped &operator=(const Scoped &) = delete;

private:
  Mode Previous;
};

} // namespace evidence_path

/// Per-slot state bits (the Flags column).
enum : uint8_t {
  SlotFlagAllocated = 1,
  SlotFlagBad = 2,
  SlotFlagCanaried = 4,
};

/// One miniheap's descriptor within an image.  Slot columns for this
/// miniheap occupy global indexes [FirstSlot, FirstSlot + NumSlots).
struct ImageMiniheapInfo {
  uint32_t SizeClassIndex = 0;
  uint64_t ObjectSize = 0;
  /// Slab base address in the dumping process.  Addresses are only
  /// meaningful within one image; cross-image identity uses object ids.
  uint64_t BaseAddress = 0;
  uint64_t CreationTime = 0;
  uint64_t FirstSlot = 0;
  uint64_t NumSlots = 0;

  uint64_t slotAddress(size_t Slot) const {
    return BaseAddress + Slot * ObjectSize;
  }
  uint64_t endAddress() const { return BaseAddress + NumSlots * ObjectSize; }

  bool operator==(const ImageMiniheapInfo &Other) const = default;
};

/// One run of a slot's contents: either Length literal bytes in the
/// image's pool, or a 64-bit word repeated Length/8 times.  Runs are
/// 8-byte aligned within the slot (object sizes are powers of two ≥ 8),
/// so canary phase is preserved.
struct ContentsRun {
  enum Kind : uint8_t { Literal = 0, Pattern = 1 };

  uint32_t Length = 0;
  /// Literal runs: offset of the bytes in the pool.
  uint32_t PoolOffset = 0;
  /// Pattern runs: the repeated word.
  uint64_t Word = 0;
  uint8_t RunKind = Literal;

  bool operator==(const ContentsRun &Other) const = default;
};

/// Locates a slot within an image.
struct ImageLocation {
  uint32_t MiniheapIndex = 0;
  uint32_t SlotIndex = 0;

  bool operator==(const ImageLocation &Other) const = default;
};

class HeapImage;

/// Read access to one slot's contents over the run encoding.
class SlotContents {
public:
  size_t size() const { return Size; }
  size_t runCount() const { return NumRuns; }
  const ContentsRun &run(size_t I) const;

  /// Byte at offset \p I (decodes through the run table).
  uint8_t operator[](size_t I) const;

  /// A pointer to the full contents: zero-copy when the slot is a single
  /// literal run, otherwise decoded into \p Scratch.
  const uint8_t *bytes(std::vector<uint8_t> &Scratch) const;

  /// Decodes the full contents into \p Out (must hold size() bytes).
  void decodeTo(uint8_t *Out) const;
  std::vector<uint8_t> decode() const;

  /// The smallest byte range whose bytes differ from \p HeapCanary's
  /// fill pattern, computed run-aware: pattern runs are checked in O(1)
  /// and literal runs byte-wise.  std::nullopt when the pattern is
  /// intact.
  std::optional<CorruptionExtent> findCorruption(const Canary &HeapCanary) const;

  /// Byte equality with another slot's contents without full decode.
  bool equals(const SlotContents &Other) const;

private:
  friend class HeapImage;
  SlotContents(const HeapImage &Image, uint64_t GlobalSlot);

  const HeapImage *Image;
  uint32_t FirstRun;
  uint32_t NumRuns;
  uint64_t Size;
};

/// A complete heap image (format v2, columnar).
class HeapImage {
public:
  /// Allocation clock at dump time ("the current allocation time,
  /// measured by the number of allocations to date").
  uint64_t AllocationTime = 0;
  /// The dumping heap's random canary value.
  uint32_t CanaryValue = 0;
  /// Canary fill probability p in effect (1.0 outside cumulative mode).
  double CanaryFillProbability = 1.0;
  /// Heap multiplier M.
  double Multiplier = 2.0;
  /// Seed of the dumping heap, recorded for reproducibility reports.
  uint64_t HeapSeed = 0;
  /// Serialization format the image was loaded from (2 for captures).
  uint32_t SourceFormatVersion = 2;

  //===--------------------------------------------------------------------===//
  // Shape
  //===--------------------------------------------------------------------===//

  size_t miniheapCount() const { return Miniheaps.size(); }
  const ImageMiniheapInfo &miniheapInfo(uint32_t M) const {
    return Miniheaps[M];
  }
  const ImageMiniheapInfo &miniheap(const ImageLocation &Loc) const {
    return Miniheaps[Loc.MiniheapIndex];
  }
  const std::vector<ImageMiniheapInfo> &miniheaps() const { return Miniheaps; }

  /// Total number of object slots across all miniheaps.
  size_t totalSlots() const { return Flags.size(); }

  /// Number of slots holding objects (live or freed-with-history).
  size_t objectCount() const;

  uint64_t slotAddress(const ImageLocation &Loc) const {
    return Miniheaps[Loc.MiniheapIndex].slotAddress(Loc.SlotIndex);
  }

  uint64_t globalSlot(const ImageLocation &Loc) const {
    assert(Loc.SlotIndex < Miniheaps[Loc.MiniheapIndex].NumSlots);
    return Miniheaps[Loc.MiniheapIndex].FirstSlot + Loc.SlotIndex;
  }

  //===--------------------------------------------------------------------===//
  // Columnar slot accessors
  //===--------------------------------------------------------------------===//

  uint8_t slotFlags(const ImageLocation &Loc) const {
    return Flags[globalSlot(Loc)];
  }
  bool isAllocated(const ImageLocation &Loc) const {
    return slotFlags(Loc) & SlotFlagAllocated;
  }
  bool isBad(const ImageLocation &Loc) const {
    return slotFlags(Loc) & SlotFlagBad;
  }
  bool isCanaried(const ImageLocation &Loc) const {
    return slotFlags(Loc) & SlotFlagCanaried;
  }
  /// The object is the ObjectId'th allocation from its heap; 0 = the slot
  /// has never held an object.  Object ids are drawn from the allocation
  /// clock, so the id doubles as the allocation time (the collapsed
  /// ObjectId/AllocTime pair).
  uint64_t objectId(const ImageLocation &Loc) const {
    return ObjectIds[globalSlot(Loc)];
  }
  uint64_t allocTime(const ImageLocation &Loc) const {
    return ObjectIds[globalSlot(Loc)];
  }
  uint64_t freeTime(const ImageLocation &Loc) const {
    return FreeTimes[globalSlot(Loc)];
  }
  SiteId allocSite(const ImageLocation &Loc) const {
    return AllocSites[globalSlot(Loc)];
  }
  SiteId freeSite(const ImageLocation &Loc) const {
    return FreeSites[globalSlot(Loc)];
  }
  uint32_t requestedSize(const ImageLocation &Loc) const {
    return RequestedSizes[globalSlot(Loc)];
  }
  SlotContents contents(const ImageLocation &Loc) const {
    return SlotContents(*this, globalSlot(Loc));
  }

  // Global-index variants for whole-image column sweeps.
  uint8_t slotFlagsAt(uint64_t G) const { return Flags[G]; }
  uint64_t objectIdAt(uint64_t G) const { return ObjectIds[G]; }
  SlotContents contentsAt(uint64_t G) const { return SlotContents(*this, G); }

  // Raw column access for the fast evidence sweeps: isolators iterate
  // these directly instead of taking the per-slot accessor chain
  // (ImageLocation -> globalSlot -> column) for every slot.
  const std::vector<uint8_t> &flagsColumn() const { return Flags; }
  const std::vector<uint64_t> &objectIdColumn() const { return ObjectIds; }
  const std::vector<uint64_t> &freeTimeColumn() const { return FreeTimes; }
  const std::vector<SiteId> &allocSiteColumn() const { return AllocSites; }
  const std::vector<SiteId> &freeSiteColumn() const { return FreeSites; }
  const std::vector<uint32_t> &requestedSizeColumn() const {
    return RequestedSizes;
  }

  //===--------------------------------------------------------------------===//
  // Construction (capture and deserialization)
  //===--------------------------------------------------------------------===//

  /// Starts a new miniheap; subsequent addSlot calls belong to it until
  /// the next beginMiniheap.  Returns its index.
  uint32_t beginMiniheap(uint32_t SizeClassIndex, uint64_t ObjectSize,
                         uint64_t BaseAddress, uint64_t CreationTime);

  /// Appends one slot's metadata; contents runs added afterwards apply to
  /// this slot.
  void addSlot(uint8_t SlotFlags, uint64_t ObjectId, uint64_t FreeTime,
               SiteId AllocSite, SiteId FreeSite, uint32_t RequestedSize);

  /// Appends a literal contents run for the current slot.
  void addLiteralRun(const uint8_t *Data, size_t Size);

  /// Appends a repeated-word contents run for the current slot
  /// (\p Length must be a multiple of 8).
  void addPatternRun(uint64_t Word, uint32_t Length);

  /// Encodes \p Size raw bytes into runs for the current slot (the
  /// canonical encoder used by capture and v1 conversion).
  void addSlotBytes(const uint8_t *Data, size_t Size);

  /// Reserves column capacity for \p Slots upcoming slots.
  void reserveSlots(size_t Slots);

  /// Bulk capture of every slot of \p Mini into the current miniheap
  /// (which must just have been begun): columns are resized once and
  /// filled through raw pointers, skipping the per-slot push_back
  /// capacity checks that dominate small-slot captures.  Produces
  /// exactly what addSlot + addSlotBytes per slot produce.
  void captureSlotsBulk(const Miniheap &Mini);

  /// Appends every miniheap of \p Fragment (columns, runs, pool) after
  /// this image's own, rebasing slot, run, and pool offsets — the
  /// deterministic stitch step of parallel capture.  The result is
  /// byte-identical to having captured the fragment's miniheaps into
  /// this image directly.
  void appendFragment(const HeapImage &Fragment);

  //===--------------------------------------------------------------------===//
  // Raw access for serialization
  //===--------------------------------------------------------------------===//

  const std::vector<ContentsRun> &runs() const { return Runs; }
  const std::vector<uint8_t> &pool() const { return Pool; }
  uint32_t slotFirstRun(uint64_t G) const { return RunBegin[G]; }
  uint32_t slotRunEnd(uint64_t G) const {
    return G + 1 < RunBegin.size() ? RunBegin[G + 1]
                                   : static_cast<uint32_t>(Runs.size());
  }

  bool operator==(const HeapImage &Other) const;

private:
  friend class SlotContents;

  /// The fast-path half of addSlotBytes (SIMD uniform sweep + vector
  /// run scans); requires Size >= 8 and Size % 8 == 0.  captureSlotsBulk
  /// calls it directly so the per-slot mode dispatch disappears from
  /// the capture inner loop.
  void addSlotBytesFast(const uint8_t *Data, size_t Size);

  std::vector<ImageMiniheapInfo> Miniheaps;

  // One entry per slot, all miniheaps concatenated.
  std::vector<uint8_t> Flags;
  std::vector<uint64_t> ObjectIds; // == allocation time (see objectId())
  std::vector<uint64_t> FreeTimes;
  std::vector<SiteId> AllocSites;
  std::vector<SiteId> FreeSites;
  std::vector<uint32_t> RequestedSizes;

  // Contents: per-slot first-run index into Runs; literal bytes in Pool.
  std::vector<uint32_t> RunBegin;
  std::vector<ContentsRun> Runs;
  std::vector<uint8_t> Pool;
};

/// Captures a heap image from a live DieFast heap.  With a \p Pool, the
/// fast path captures miniheaps concurrently and stitches the fragments
/// in deterministic miniheap order — bit-identical to the sequential
/// capture (pinned by test); the legacy path ignores the pool.
HeapImage captureHeapImage(const DieFastHeap &Heap, Executor *Pool = nullptr);

/// A 64-bit content fingerprint over everything operator== compares.
/// Equal images always fingerprint equal; the DiagnosisPipeline view
/// cache keys on this (and re-checks full equality on a hit, so hash
/// collisions cost a rebuild, never a wrong diagnosis).
uint64_t heapImageFingerprint(const HeapImage &Image);

/// Zero-copy read interface over one image: columnar accessors plus the
/// id and address indexes isolation needs.  Replaces both the old
/// materialized ImageSlot vectors and the standalone ImageIndex.
class HeapImageView {
public:
  explicit HeapImageView(const HeapImage &Image);

  /// Finds the slot currently associated with \p ObjectId (the id of its
  /// last — possibly still live — owner).
  std::optional<ImageLocation> findById(uint64_t ObjectId) const;

  /// Finds the slot containing address \p Address, with the byte offset
  /// into the slot.
  std::optional<std::pair<ImageLocation, uint64_t>>
  locateAddress(uint64_t Address) const;

  const HeapImage &image() const { return Image; }
  const HeapImage *operator->() const { return &Image; }

private:
  const HeapImage &Image;
  /// Which index the constructor populated (the evidence_path mode at
  /// construction time, so a view stays self-consistent even if the
  /// global toggle flips while it is alive).
  bool LegacyIndex;
  /// Fast path: flat open-addressing id index (one probe per lookup).
  FlatU64Map<ImageLocation> FlatById;
  /// Legacy path: the pre-PR-4 node-based index.
  std::unordered_map<uint64_t, ImageLocation> ById;
  /// Miniheap index sorted by base address for binary search.
  std::vector<uint32_t> ByAddress;
};

/// Builds one view per image (the isolators' input; views keep references
/// into \p Images, which must outlive them).
std::vector<HeapImageView> makeViews(const std::vector<HeapImage> &Images);

} // namespace exterminator

#endif // EXTERMINATOR_HEAPIMAGE_HEAPIMAGE_H

//===- heapimage/ImageBundle.cpp - Multi-image wire format ------------------===//

#include "heapimage/ImageBundle.h"

#include "codec/CodecStream.h"
#include "codec/DeltaCodec.h"
#include "heapimage/HeapImageIO.h"
#include "heapimage/ImageFormatDetail.h"

#include <memory>

using namespace exterminator;
using namespace exterminator::imagedetail;

// "XIB1": image bundle, cross-image dictionary.
static constexpr uint32_t BundleMagic = 0x58494231;

bool exterminator::serializeImageBundle(const std::vector<HeapImage> &Images,
                                        ByteSink &Sink,
                                        uint32_t FormatVersion) {
  if (FormatVersion != ImageBundleFormatV1 &&
      FormatVersion != ImageBundleFormatV2)
    return false;
  StreamWriter Writer(Sink);
  Writer.writeU32(BundleMagic);
  Writer.writeU32(FormatVersion);
  Writer.writeVarU64(Images.size());

  // One dictionary across every image: replicated dumps of the same
  // program reference the same sites, so the union table is barely
  // larger than any one image's table.
  SiteDictionary Sites;
  for (const HeapImage &Image : Images)
    Sites.collect(Image);
  writeSiteTable(Writer, Sites.table());

  // v2: every body uses the delta codec — the first image with a null
  // base (canary-run encoding only), members referencing the first
  // image's slots by object id (codec/DeltaCodec.h).
  std::unique_ptr<HeapImageView> Base;
  for (const HeapImage &Image : Images) {
    writeImageHeader(Writer, Image);
    if (FormatVersion == ImageBundleFormatV1) {
      writeImageBody(Writer, Image, Sites);
      continue;
    }
    writeDeltaImageBody(Writer, Image, Sites, Base.get());
    if (!Base)
      Base = std::make_unique<HeapImageView>(Images.front());
  }
  return !Writer.failed();
}

std::vector<uint8_t>
exterminator::serializeImageBundle(const std::vector<HeapImage> &Images,
                                   uint32_t FormatVersion) {
  std::vector<uint8_t> Buffer;
  VectorSink Sink(Buffer);
  if (!serializeImageBundle(Images, Sink, FormatVersion))
    Buffer.clear();
  return Buffer;
}

/// Decodes a bundle after its magic: version, count, site table, images.
static bool deserializeBundleBody(StreamReader &Reader,
                                  std::vector<HeapImage> &ImagesOut,
                                  uint64_t &SlotBudget) {
  const uint32_t FormatVersion = Reader.readU32();
  if (FormatVersion != ImageBundleFormatV1 &&
      FormatVersion != ImageBundleFormatV2)
    return false;
  const uint64_t NumImages = Reader.readVarU64();
  if (Reader.failed() || NumImages > MaxBundleImages)
    return false;

  std::vector<SiteId> SiteTable;
  if (!readSiteTable(Reader, SiteTable))
    return false;

  ImagesOut.clear();
  ImagesOut.reserve(NumImages);
  std::unique_ptr<HeapImageView> Base;
  for (uint64_t I = 0; I < NumImages; ++I) {
    HeapImage Image;
    readImageHeader(Reader, Image);
    Image.SourceFormatVersion = HeapImageFormatV2;
    if (Reader.failed())
      return false;
    // One budget across all images: N forged maximal images cannot
    // multiply what one is allowed to declare.  The first v2 image reads
    // with a null base — readDeltaImageBody rejects reference tags
    // there, so a forged bundle cannot make image 0 reference a base
    // that does not exist.
    if (FormatVersion == ImageBundleFormatV1) {
      if (!readImageBody(Reader, Image, SiteTable, SlotBudget))
        return false;
    } else if (!readDeltaImageBody(Reader, Image, SiteTable, Base.get(),
                                   SlotBudget)) {
      return false;
    }
    ImagesOut.push_back(std::move(Image));
    if (FormatVersion == ImageBundleFormatV2 && !Base)
      Base = std::make_unique<HeapImageView>(ImagesOut.front());
  }
  return !Reader.failed();
}

bool exterminator::deserializeImageBundle(ByteSource &Source,
                                          std::vector<HeapImage> &ImagesOut,
                                          uint64_t &SlotBudget) {
  StreamReader Reader(Source);
  const uint32_t Magic = Reader.readU32();
  if (Reader.failed())
    return false;
  if (Magic == CompressedBundleMagic) {
    // Compressed container: the inner stream must be exactly one bare
    // bundle (no nested containers — bounds adversarial recursion).
    DecompressingSource Unzip(Source);
    StreamReader Inner(Unzip);
    if (Inner.readU32() != BundleMagic)
      return false;
    if (!deserializeBundleBody(Inner, ImagesOut, SlotBudget))
      return false;
    // Drain the terminator and reject trailing bytes *inside* the
    // compressed stream; what follows it in Source is the caller's.
    uint8_t Tail = 0;
    return Unzip.read(&Tail, 1) == 0 && Unzip.finished();
  }
  if (Magic != BundleMagic)
    return false;
  return deserializeBundleBody(Reader, ImagesOut, SlotBudget);
}

bool exterminator::deserializeImageBundle(const std::vector<uint8_t> &Buffer,
                                          std::vector<HeapImage> &ImagesOut,
                                          uint64_t &SlotBudget) {
  MemorySource Source(Buffer);
  if (!deserializeImageBundle(Source, ImagesOut, SlotBudget))
    return false;
  return Source.remaining() == 0;
}

bool exterminator::saveImageBundle(const std::vector<HeapImage> &Images,
                                   const std::string &Path) {
  FileSink Sink(Path);
  if (!Sink.ok())
    return false;
  StreamWriter Header(Sink);
  Header.writeU32(CompressedBundleMagic);
  if (Header.failed())
    return false;
  CompressingSink Zip(Sink);
  if (!serializeImageBundle(Images, Zip))
    return false;
  if (!Zip.finish())
    return false;
  return Sink.close();
}

bool exterminator::loadImageBundle(const std::string &Path,
                                   std::vector<HeapImage> &ImagesOut) {
  FileSource Source(Path);
  if (!Source.ok())
    return false;
  if (!deserializeImageBundle(Source, ImagesOut))
    return false;
  return Source.exhausted();
}

//===- heapimage/ImageBundle.cpp - Multi-image wire format ------------------===//

#include "heapimage/ImageBundle.h"

#include "heapimage/HeapImageIO.h"
#include "heapimage/ImageFormatDetail.h"

using namespace exterminator;
using namespace exterminator::imagedetail;

// "XIB1": image bundle, cross-image dictionary.
static constexpr uint32_t BundleMagic = 0x58494231;

bool exterminator::serializeImageBundle(const std::vector<HeapImage> &Images,
                                        ByteSink &Sink) {
  StreamWriter Writer(Sink);
  Writer.writeU32(BundleMagic);
  Writer.writeU32(ImageBundleFormatV1);
  Writer.writeVarU64(Images.size());

  // One dictionary across every image: replicated dumps of the same
  // program reference the same sites, so the union table is barely
  // larger than any one image's table.
  SiteDictionary Sites;
  for (const HeapImage &Image : Images)
    Sites.collect(Image);
  writeSiteTable(Writer, Sites.table());

  for (const HeapImage &Image : Images) {
    writeImageHeader(Writer, Image);
    writeImageBody(Writer, Image, Sites);
  }
  return !Writer.failed();
}

std::vector<uint8_t>
exterminator::serializeImageBundle(const std::vector<HeapImage> &Images) {
  std::vector<uint8_t> Buffer;
  VectorSink Sink(Buffer);
  serializeImageBundle(Images, Sink);
  return Buffer;
}

bool exterminator::deserializeImageBundle(ByteSource &Source,
                                          std::vector<HeapImage> &ImagesOut,
                                          uint64_t &SlotBudget) {
  StreamReader Reader(Source);
  if (Reader.readU32() != BundleMagic)
    return false;
  if (Reader.readU32() != ImageBundleFormatV1)
    return false;
  const uint64_t NumImages = Reader.readVarU64();
  if (Reader.failed() || NumImages > MaxBundleImages)
    return false;

  std::vector<SiteId> SiteTable;
  if (!readSiteTable(Reader, SiteTable))
    return false;

  ImagesOut.clear();
  ImagesOut.reserve(NumImages);
  for (uint64_t I = 0; I < NumImages; ++I) {
    HeapImage Image;
    readImageHeader(Reader, Image);
    Image.SourceFormatVersion = HeapImageFormatV2;
    // One budget across all images: N forged maximal images cannot
    // multiply what one is allowed to declare.
    if (Reader.failed() || !readImageBody(Reader, Image, SiteTable,
                                          SlotBudget))
      return false;
    ImagesOut.push_back(std::move(Image));
  }
  return !Reader.failed();
}

bool exterminator::deserializeImageBundle(const std::vector<uint8_t> &Buffer,
                                          std::vector<HeapImage> &ImagesOut,
                                          uint64_t &SlotBudget) {
  MemorySource Source(Buffer);
  if (!deserializeImageBundle(Source, ImagesOut, SlotBudget))
    return false;
  return Source.remaining() == 0;
}

bool exterminator::saveImageBundle(const std::vector<HeapImage> &Images,
                                   const std::string &Path) {
  FileSink Sink(Path);
  if (!Sink.ok())
    return false;
  if (!serializeImageBundle(Images, Sink))
    return false;
  return Sink.close();
}

bool exterminator::loadImageBundle(const std::string &Path,
                                   std::vector<HeapImage> &ImagesOut) {
  FileSource Source(Path);
  if (!Source.ok())
    return false;
  if (!deserializeImageBundle(Source, ImagesOut))
    return false;
  return Source.exhausted();
}

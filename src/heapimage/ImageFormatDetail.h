//===- heapimage/ImageFormatDetail.h - Shared v2 body codec ----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal building blocks shared by the two columnar wire formats: the
/// single-image v2 format (HeapImageIO) and the multi-image bundle format
/// (ImageBundle).  Both encode the same header fields and miniheap/slot
/// body; they differ only in where the call-site dictionary lives — per
/// image for v2, one table across all images for a bundle (replicated
/// dumps share almost all sites, so the bundle amortizes the table).
///
/// Not installed API: only the format translation units (HeapImageIO,
/// ImageBundle) and the codec layer's delta body codec (codec/DeltaCodec)
/// include this.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_HEAPIMAGE_IMAGEFORMATDETAIL_H
#define EXTERMINATOR_HEAPIMAGE_IMAGEFORMATDETAIL_H

#include "heapimage/HeapImage.h"
#include "support/Serializer.h"

#include <unordered_map>
#include <vector>

namespace exterminator {
namespace imagedetail {

// Sanity bounds rejecting absurd values from corrupt headers before any
// allocation is sized from them.  Counts read from a header additionally
// never pre-size more than ReserveCap entries (see reserveSlots calls):
// a forged count with no data behind it then fails at the first record
// read instead of reserving gigabytes up front.
inline constexpr uint64_t MaxMiniheaps = uint64_t(1) << 24;
inline constexpr uint64_t MaxSlotsPerMiniheap = uint64_t(1) << 28;
inline constexpr uint64_t MaxObjectSizeBound = uint64_t(1) << 20;
inline constexpr uint64_t MaxSites = uint64_t(1) << 20;
inline constexpr uint64_t ReserveCap = uint64_t(1) << 16;
/// Virgin-region records amplify (a few bytes expand to Count slots), so
/// the decoded image's total slot count is capped as well — 16M slots is
/// an order of magnitude past any real capture.
inline constexpr uint64_t MaxTotalSlots = uint64_t(1) << 24;

/// Slot-record tag bytes.  A plain record's tag is flags|HasMetaBit with
/// the flags in the low three bits, so the high tag values are free for
/// markers: 0xff collapses a virgin region, and the delta body codec
/// (codec/DeltaCodec.h) claims 0xfe/0xfd for base-image references.
inline constexpr uint8_t VirginRunTag = 0xff;
inline constexpr uint8_t HasMetaBit = 0x80;
inline constexpr uint8_t FlagsMask =
    SlotFlagAllocated | SlotFlagBad | SlotFlagCanaried;

/// First-appearance-order call-site dictionary builder.  Index 0 is
/// always "no site", so the dominant metadata-free slots encode their
/// site references in one byte.
class SiteDictionary {
public:
  SiteDictionary() { intern(0); }

  uint64_t intern(SiteId Site) {
    auto [It, Inserted] = Index.emplace(Site, Table.size());
    if (Inserted)
      Table.push_back(Site);
    return It->second;
  }

  /// Interns every alloc/free site the image references.
  void collect(const HeapImage &Image);

  uint64_t indexOf(SiteId Site) const { return Index.at(Site); }
  const std::vector<SiteId> &table() const { return Table; }

private:
  std::vector<SiteId> Table;
  std::unordered_map<SiteId, uint64_t> Index;
};

/// Writes the per-image scalar header fields (allocation time, canary,
/// p, M, seed) — everything that differs between replicated dumps.
void writeImageHeader(StreamWriter &Writer, const HeapImage &Image);

/// Reads the scalar header fields written by writeImageHeader.
void readImageHeader(StreamReader &Reader, HeapImage &Image);

/// Writes the dictionary's site table (varint count + 32-bit hashes).
void writeSiteTable(StreamWriter &Writer, const std::vector<SiteId> &Table);

/// Reads a site table; returns false on a malformed or oversized one.
bool readSiteTable(StreamReader &Reader, std::vector<SiteId> &TableOut);

/// Writes one slot's contents as run records (varint run count, then per
/// run: kind byte, varint length, repeated word or literal bytes).
void writeSlotContents(StreamWriter &Writer, const HeapImage &Image,
                       const SlotContents &Contents);

/// Reads one slot's contents runs into the current slot of \p Image;
/// the total decoded length must be exactly \p ObjectSize.
bool readSlotContents(StreamReader &Reader, HeapImage &Image,
                      uint64_t ObjectSize, std::vector<uint8_t> &Scratch);

/// Writes the image body: miniheap count, then per-miniheap descriptors
/// and slot records (virgin regions collapsed, metadata varint-packed,
/// contents run-encoded).  Site references are indexes into \p Sites,
/// which must already contain every site the image uses.
void writeImageBody(StreamWriter &Writer, const HeapImage &Image,
                    const SiteDictionary &Sites);

/// Reads an image body, resolving site indexes through \p SiteTable.
/// Returns false on malformed input, including out-of-range dictionary
/// references; \p Image must be freshly constructed apart from its
/// header fields.  \p SlotBudget bounds the slots this body may declare
/// and is decremented by what it consumes — virgin-run records amplify
/// (a dozen wire bytes expand to Count decoded slots), so the budget is
/// what keeps a tiny forged body from materializing gigabytes of
/// columns.  Single-image formats pass MaxTotalSlots; a bundle shares
/// one budget across all its images, and the wire path shrinks it
/// further (MaxWireSlots).
bool readImageBody(StreamReader &Reader, HeapImage &Image,
                   const std::vector<SiteId> &SiteTable,
                   uint64_t &SlotBudget);

} // namespace imagedetail
} // namespace exterminator

#endif // EXTERMINATOR_HEAPIMAGE_IMAGEFORMATDETAIL_H

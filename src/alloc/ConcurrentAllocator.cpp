//===- alloc/ConcurrentAllocator.cpp - Multithreaded front-end -------------===//

#include "alloc/ConcurrentAllocator.h"

#include "alloc/SizeClass.h"
#include "diefast/CanaryOps.h"
#include "support/MpscQueue.h"

#include <cassert>
#include <new>
#include <unordered_map>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Thread-exit plumbing
//
// Each thread's first allocation against an allocator registers the
// (allocator, cache) pair in a thread_local registry whose destructor
// flushes the cache back — but only if the allocator is still alive,
// which a global registry of live instances (keyed by address *and*
// instance id, so a recycled address cannot impersonate a dead
// allocator) decides under its own lock.  Lock order here is
// LiveRegistry -> BackendLock; the allocator destructor takes the
// registry lock alone (to deregister) and the backend lock alone (to
// flush), never nested, so no cycle exists.
//===----------------------------------------------------------------------===//

namespace {

std::mutex &liveRegistryLock() {
  // Leaked on purpose: main-thread TLS destructors run during exit and
  // must still be able to lock this.
  static std::mutex *M = new std::mutex;
  return *M;
}

std::unordered_map<void *, uint64_t> &liveRegistry() {
  static auto *Map = new std::unordered_map<void *, uint64_t>;
  return *Map;
}

std::atomic<uint64_t> NextInstanceId{1};

struct TlsEntry {
  ConcurrentAllocator *Owner;
  uint64_t Instance;
  ConcurrentAllocator::ThreadCache *Cache;
};

struct TlsRegistry {
  std::vector<TlsEntry> Entries;

  ~TlsRegistry() {
    for (const TlsEntry &E : Entries) {
      std::lock_guard<std::mutex> Lock(liveRegistryLock());
      auto It = liveRegistry().find(E.Owner);
      if (It == liveRegistry().end() || It->second != E.Instance)
        continue; // The allocator died first; it flushed everything.
      E.Owner->flushCache(*E.Cache);
    }
  }
};

thread_local TlsRegistry Tls;

} // namespace

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

ConcurrentAllocator::ConcurrentAllocator(const ConcurrentAllocatorConfig &Config,
                                         const CallContext *Context)
    : Cfg(Config), Context(Context), Backend(Config.Heap, Context),
      // Same derived seed as DieFastHeap: the canary stream must be
      // independent of placement, and matching the constant keeps
      // MagazineSize == 1 runs bit-identical to DieFastHeap.
      CanaryRng(Config.Heap.Seed ^ 0xca11a7c0ffee1234ULL),
      HeapCanary(Canary::random(CanaryRng)),
      InstanceId(NextInstanceId.fetch_add(1, std::memory_order_relaxed)) {
  // Lock-free pointer resolution requires that no page be shared by two
  // slabs: guard regions of at least a page guarantee it (4 KiB pages;
  // see DieHardHeap::registerRange).
  assert(Cfg.Heap.GuardBytes >= 4096 &&
         "concurrent front-end requires page-sized guard regions");
  assert(!Cfg.Heap.LegacyHotPath &&
         "the legacy hot path is single-threaded only");
  assert(Cfg.MagazineSize >= 1 && "magazines hold at least one slot");
  std::lock_guard<std::mutex> Lock(liveRegistryLock());
  liveRegistry()[this] = InstanceId;
}

ConcurrentAllocator::~ConcurrentAllocator() {
  {
    // Deregister first: threads exiting from here on skip their flush.
    std::lock_guard<std::mutex> Lock(liveRegistryLock());
    liveRegistry().erase(this);
  }
  flushAll();
}

//===----------------------------------------------------------------------===//
// Caches
//===----------------------------------------------------------------------===//

ConcurrentAllocator::ThreadCache &ConcurrentAllocator::createCache() {
  std::lock_guard<std::mutex> Lock(CacheLock);
  AllCaches.emplace_back(new ThreadCache(sizeclass::numClasses()));
  return *AllCaches.back();
}

ConcurrentAllocator::ThreadCache &ConcurrentAllocator::threadCache() {
  for (const TlsEntry &E : Tls.Entries)
    if (E.Owner == this && E.Instance == InstanceId)
      return *E.Cache;
  ThreadCache &Fresh = createCache();
  Tls.Entries.push_back(TlsEntry{this, InstanceId, &Fresh});
  return Fresh;
}

std::unique_lock<std::mutex> ConcurrentAllocator::lockBackend() {
  std::unique_lock<std::mutex> Lock(BackendLock);
  LockAcquires.fetch_add(1, std::memory_order_relaxed);
  Backend.advanceClockTo(Clock.load(std::memory_order_relaxed));
  return Lock;
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

void *ConcurrentAllocator::allocate(size_t Size) {
  if (Cfg.GlobalLockBaseline) {
    auto Lock = lockBackend();
    return baselineAllocate(Size);
  }
  return allocateFrom(threadCache(), Size);
}

void *ConcurrentAllocator::allocateFrom(ThreadCache &Cache, size_t Size,
                                        ObjectRef *RefOut) {
  if (!sizeclass::fits(Size))
    return nullptr;
  if (Cfg.GlobalLockBaseline) {
    auto Lock = lockBackend();
    void *Ptr = baselineAllocate(Size);
    if (Ptr && RefOut)
      *RefOut = *Backend.findObject(Ptr);
    return Ptr;
  }

  const unsigned ClassIndex = sizeclass::classFor(Size);
  auto &Magazine = Cache.Magazines[ClassIndex];
  for (;;) {
    if (Magazine.empty())
      refill(Cache, ClassIndex);
    const ThreadCache::CachedSlot Slot = Magazine.back();
    Magazine.pop_back();
    Miniheap &Mini = *Slot.Heap;
    SlotMetadata &Meta = Mini.slot(Slot.Ref.SlotIndex);
    uint8_t *Ptr = Mini.slotPointer(Slot.Ref.SlotIndex);

    // DieFast §3.3 at hand-out: the check runs on the exact slot being
    // returned, lock-free — the slot is reserved, so this thread owns
    // its bytes and metadata exclusively.
    if (Cfg.DieFastCanaries &&
        !canary_ops::prepareReusedSlot(HeapCanary, Meta, Ptr,
                                       Mini.objectSize(), Size,
                                       Cfg.ZeroFillAllocations,
                                       /*LegacyHotPath=*/false)) {
      // Bad-object isolation without the backend lock: the slot stays
      // reserved forever (it is simply never handed out or released), so
      // no bitmap or class counter needs touching.  Its pending-free bit
      // is still set from the free that canaried it, keeping stale frees
      // off the quarantined contents.
      Meta.Bad = true;
      signalError(ErrorSignalKind::CanaryCorruptOnAlloc, Slot.Ref);
      continue;
    }

    // Commit, stamped from the front-end clock.  Mirrors
    // DieHardHeap::commitAllocation, written directly because the
    // backend clock is only re-synced under the lock.
    const uint64_t Id = Clock.fetch_add(1, std::memory_order_relaxed) + 1;
    Meta.ObjectId = Id;
    Meta.FreeTime = 0;
    Meta.AllocSite = Context ? Context->currentSite() : 0;
    Meta.FreeSite = 0;
    Meta.RequestedSize = static_cast<uint32_t>(Size);
    Meta.FrontPad = 0;
    Meta.Canaried = false;
    // The slot is live again: re-arm its pending-free bit so the next
    // free can claim it.  Sequenced before the pointer escapes to the
    // program, so any thread that can free it observes the clear.
    Mini.clearPendingFree(Slot.Ref.SlotIndex);

    Cache.Allocations.fetch_add(1, std::memory_order_relaxed);
    Cache.BytesRequested.fetch_add(Size, std::memory_order_relaxed);
    if (RefOut)
      *RefOut = Slot.Ref;
    return Ptr;
  }
}

void ConcurrentAllocator::refill(ThreadCache &Cache, unsigned ClassIndex) {
  auto Lock = lockBackend();
  // Drain before drawing: every free queued up to this point re-enters
  // the uniform lottery before any new slot is picked.  (This ordering
  // is also what makes MagazineSize == 1 bit-identical to the direct
  // backend.)
  if (PendingRemote.load(std::memory_order_acquire) > 0)
    drainRemoteFrees();
  auto &Magazine = Cache.Magazines[ClassIndex];
  while (Magazine.size() < Cfg.MagazineSize) {
    Miniheap *Mini = nullptr;
    const ObjectRef Ref = Backend.reserveSlot(ClassIndex, &Mini);
    Magazine.push_back(ThreadCache::CachedSlot{Ref, Mini});
  }
}

void *ConcurrentAllocator::baselineAllocate(size_t Size) {
  if (!sizeclass::fits(Size))
    return nullptr;
  Backend.tickAllocationClock(Size);
  Clock.fetch_add(1, std::memory_order_relaxed);
  const unsigned ClassIndex = sizeclass::classFor(Size);
  for (;;) {
    Miniheap *Mini = nullptr;
    const ObjectRef Ref = Backend.reserveSlot(ClassIndex, &Mini);
    uint8_t *Ptr = Mini->slotPointer(Ref.SlotIndex);
    if (Cfg.DieFastCanaries &&
        !canary_ops::prepareReusedSlot(HeapCanary, Mini->slot(Ref.SlotIndex),
                                       Ptr, Mini->objectSize(), Size,
                                       Cfg.ZeroFillAllocations,
                                       /*LegacyHotPath=*/false)) {
      Backend.markBad(Ref);
      signalError(ErrorSignalKind::CanaryCorruptOnAlloc, Ref);
      continue;
    }
    Backend.commitAllocation(Ref, Size);
    return Ptr;
  }
}

//===----------------------------------------------------------------------===//
// Deallocation
//===----------------------------------------------------------------------===//

void ConcurrentAllocator::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  if (Cfg.GlobalLockBaseline) {
    auto Lock = lockBackend();
    baselineDeallocate(Ptr);
    return;
  }

  // Lock-free: resolve through the page directory, claim, push.
  const auto Resolved = Backend.resolvePointer(Ptr);
  if (!Resolved || static_cast<uint8_t *>(Ptr) != Resolved->SlotStart) {
    // Outside the heap or mid-object: invalid free, counted and ignored
    // (Table 1).
    RemoteInvalidFrees.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Miniheap &Mini = *Resolved->Heap;
  const size_t Slot = Resolved->Ref.SlotIndex;
  if (!Mini.claimPendingFree(Slot)) {
    // The slot is already on its way to (or through) the free pool: a
    // double free, detected without the lock and without touching the
    // slot's memory.
    RemoteDoubleFrees.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // This claim owns the slot until the owner drains it.  Stamp the free
  // site now — it belongs to this thread's context — and hand the slot
  // over as a queue node built in the dead object's first bytes (slots
  // are >= MinObjectSize == 8 >= sizeof(MpscNode)).  FreeTime is stamped
  // at drain, from the re-synced clock.
  Mini.slot(Slot).FreeSite = Context ? Context->currentSite() : 0;
  static_assert(sizeof(MpscNode) <= sizeclass::MinObjectSize,
                "remote-free nodes must fit the smallest slot");
  auto *Node = new (Ptr) MpscNode;
  Mini.remoteFreeQueue().push(Node);
  PendingRemote.fetch_add(1, std::memory_order_release);
}

void ConcurrentAllocator::baselineDeallocate(void *Ptr) {
  ObjectRef Ref;
  if (!Backend.deallocateWithRef(Ptr, Ref))
    return; // Invalid or double free: counted and ignored (Table 1).
  if (!Cfg.DieFastCanaries)
    return;
  Miniheap &Mini = Backend.miniheap(Ref);
  canary_ops::sweepFreedNeighbors(
      Mini, HeapCanary, Ref, [&](const ObjectRef &Corrupt) {
        Backend.quarantine(Corrupt);
        signalError(ErrorSignalKind::CanaryCorruptOnFree, Corrupt);
      });
  canary_ops::canaryFillFreedSlot(Mini, HeapCanary, CanaryRng,
                                  Cfg.CanaryFillProbability, Ref.SlotIndex);
}

uint64_t ConcurrentAllocator::drainRemoteFrees() {
  uint64_t Drained = 0;
  Backend.forEachMiniheap([&](unsigned C, unsigned H, Miniheap &Mini) {
    MpscNode *Node = Mini.remoteFreeQueue().drainAll();
    if (!Node)
      return;
    // Collect every slot index before processing any: the nodes live in
    // the freed objects themselves, and a canary fill of one slot must
    // not clobber a link we have yet to follow.
    DrainScratch.clear();
    for (; Node; Node = Node->Next) {
      std::optional<size_t> Slot = Mini.slotContaining(Node);
      assert(Slot && "queued node must lie in its own miniheap");
      DrainScratch.push_back(*Slot);
    }
    for (const size_t Slot : DrainScratch) {
      const ObjectRef Ref{C, H, Slot};
      // The free site was stamped by the freeing thread; deallocateIn
      // would otherwise sample the draining thread's context.
      const SiteId Site = Mini.slot(Slot).FreeSite;
      [[maybe_unused]] const bool Freed = Backend.deallocateResolved(Ref, Site);
      assert(Freed && "pending-free claim is exclusive; drain cannot "
                      "double-free");
      if (Cfg.DieFastCanaries) {
        canary_ops::sweepFreedNeighbors(
            Mini, HeapCanary, Ref, [&](const ObjectRef &Corrupt) {
              Backend.quarantine(Corrupt);
              signalError(ErrorSignalKind::CanaryCorruptOnFree, Corrupt);
            });
        canary_ops::canaryFillFreedSlot(Mini, HeapCanary, CanaryRng,
                                        Cfg.CanaryFillProbability, Slot);
      }
      ++Drained;
    }
  });
  if (Drained)
    PendingRemote.fetch_sub(static_cast<int64_t>(Drained),
                            std::memory_order_relaxed);
  return Drained;
}

//===----------------------------------------------------------------------===//
// Flush, stats, errors
//===----------------------------------------------------------------------===//

void ConcurrentAllocator::flushCacheLocked(ThreadCache &Cache) {
  for (auto &Magazine : Cache.Magazines) {
    for (const ThreadCache::CachedSlot &Slot : Magazine)
      Backend.releaseReserved(Slot.Ref);
    Magazine.clear();
  }
}

void ConcurrentAllocator::flushCache(ThreadCache &Cache) {
  auto Lock = lockBackend();
  drainRemoteFrees();
  flushCacheLocked(Cache);
}

void ConcurrentAllocator::flushAll() {
  std::lock_guard<std::mutex> Caches(CacheLock);
  auto Lock = lockBackend();
  drainRemoteFrees();
  for (auto &Cache : AllCaches)
    flushCacheLocked(*Cache);
}

const AllocatorStats &ConcurrentAllocator::stats() const {
  std::lock_guard<std::mutex> Caches(CacheLock);
  std::lock_guard<std::mutex> Lock(BackendLock);
  AllocatorStats S = Backend.stats();
  S.InvalidFrees += RemoteInvalidFrees.load(std::memory_order_relaxed);
  S.DoubleFrees += RemoteDoubleFrees.load(std::memory_order_relaxed);
  for (const auto &Cache : AllCaches) {
    S.Allocations += Cache->Allocations.load(std::memory_order_relaxed);
    S.BytesRequested += Cache->BytesRequested.load(std::memory_order_relaxed);
  }
  Aggregated = S;
  return Aggregated;
}

void ConcurrentAllocator::signalError(ErrorSignalKind Kind,
                                      const ObjectRef &Where) {
  ErrorsSignalled.fetch_add(1, std::memory_order_relaxed);
  if (OnError)
    OnError(ErrorSignal{Kind, Where,
                        Clock.load(std::memory_order_relaxed)});
}

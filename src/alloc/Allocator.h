//===- alloc/Allocator.h - Allocator interface -----------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator interface every heap in this project implements: the
/// GNU-libc stand-in (BaselineAllocator), the DieHard randomized heap, the
/// DieFast debugging allocator, and the correcting allocator.  Workloads
/// are written against this interface so the Figure 7 harness can swap
/// heaps underneath them.
///
/// The paper interposes on malloc/free in unaltered binaries; here the
/// interposition point is this interface (see DESIGN.md, substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ALLOC_ALLOCATOR_H
#define EXTERMINATOR_ALLOC_ALLOCATOR_H

#include <cstddef>
#include <cstdint>

namespace exterminator {

/// Counters every allocator maintains; invalid/double frees are counted
/// rather than crashing (Table 1: both are tolerated).
struct AllocatorStats {
  uint64_t Allocations = 0;
  uint64_t Deallocations = 0;
  uint64_t InvalidFrees = 0;
  uint64_t DoubleFrees = 0;
  uint64_t BytesRequested = 0;
};

/// Abstract malloc/free interface.
class Allocator {
public:
  virtual ~Allocator();

  /// Returns storage for at least \p Size bytes, or nullptr when the
  /// request cannot be satisfied.
  virtual void *allocate(size_t Size) = 0;

  /// Releases \p Ptr.  Invalid and double frees must be ignored (and
  /// counted), never fatal.
  virtual void deallocate(void *Ptr) = 0;

  /// Human-readable allocator name for reports.
  virtual const char *name() const = 0;

  /// Virtual so wrapper heaps (DieFast, the correcting allocator) can
  /// forward to the heap that actually owns the counters instead of
  /// copying the whole struct on every allocate/deallocate.
  virtual const AllocatorStats &stats() const { return Stats; }

protected:
  AllocatorStats Stats;
};

} // namespace exterminator

#endif // EXTERMINATOR_ALLOC_ALLOCATOR_H

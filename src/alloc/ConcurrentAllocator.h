//===- alloc/ConcurrentAllocator.h - Multithreaded front-end ---*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent allocator front-end (PR 7): per-thread caches over one
/// shared randomized DieHard backend, preserving the paper's
/// probabilistic guarantees per slot while taking the backend lock off
/// both hot paths.
///
/// The shape is the classic production-allocator split, applied to a
/// randomized heap:
///
///  * **Allocation** pops from a per-thread, per-size-class *magazine*
///    of slots pre-drawn through `DieHardHeap::placeRandomly` — the
///    exact uniform-placement path — in batches under the backend lock.
///    Batching changes *when* draws happen, not their distribution:
///    every draw is still uniform over the free slots at draw time, and
///    the DieFast canary check/zero-fill runs per slot at hand-out, just
///    as in the single-threaded heap.
///
///  * **Deallocation** never takes the lock: the pointer resolves
///    through the lock-free page directory, an atomic *pending-free* bit
///    claims the slot (making concurrent double frees detectable without
///    the lock), and one lock-free push queues the slot on its own
///    miniheap's MPSC remote-free queue — the node lives in the dead
///    object's first bytes, so the free path allocates nothing.  Owners
///    drain all queues at the start of every refill/flush, before new
///    slots are drawn, so a freed slot re-enters the uniform lottery at
///    the next draw.
///
///  * **Pointer lookup** is lock-free end to end: the page directory
///    republishes epoch-style on growth (support/PageTable.h), and slab
///    records are fully written before their directory ids publish.
///    This requires page-sized guard regions (no ambiguous pages), which
///    the constructor asserts.
///
/// A `GlobalLockBaseline` mode routes every operation through one mutex
/// around the backend — the pre-PR-7 "just lock it" design — so
/// bench/micro_allocators can measure the scaling win in one binary, the
/// same A/B discipline the LegacyHotPath toggle established in PR 1.
///
/// Object ids come from a front-end atomic clock; the backend clock is
/// re-synchronized to it whenever the lock is taken, so FreeTime stamps
/// and miniheap creation times stay on one timeline.  With MagazineSize
/// == 1 and a single thread, the allocator is bit-identical to driving
/// the backend directly (tests pin this).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ALLOC_CONCURRENTALLOCATOR_H
#define EXTERMINATOR_ALLOC_CONCURRENTALLOCATOR_H

#include "alloc/Allocator.h"
#include "alloc/DieHardHeap.h"
#include "diefast/Canary.h"
#include "diefast/ErrorSignal.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace exterminator {

/// Tuning knobs for the concurrent front-end.
struct ConcurrentAllocatorConfig {
  /// The shared randomized backend.  GuardBytes must be at least a page
  /// (4096) so pointer lookups never hit an ambiguous page, and
  /// LegacyHotPath must be off.
  DieHardConfig Heap;
  /// Slots per thread-cache magazine (per size class).  1 degenerates to
  /// the direct backend, lock per operation; larger values amortize the
  /// lock over more operations.
  size_t MagazineSize = 32;
  /// Apply DieFast semantics (§3.3) to every slot: canary verify/
  /// quarantine at hand-out, neighbor sweeps and probabilistic canary
  /// fill at drain.  Off = plain DieHard semantics.
  bool DieFastCanaries = false;
  /// Probability p of canary-filling a freed slot (canary mode only).
  double CanaryFillProbability = 1.0;
  /// Zero-fill allocations (§2.1; canary mode only, mirroring
  /// DieFastConfig).
  bool ZeroFillAllocations = true;
  /// Bench baseline: one mutex around the backend for every operation,
  /// no caches, no remote-free queues.  Never enable in production.
  bool GlobalLockBaseline = false;
};

/// Multithreaded malloc/free over one randomized DieHard backend.
///
/// Thread safety: allocate/deallocate/stats may be called from any
/// thread concurrently.  Destruction and backendForTesting require
/// quiescence (no concurrent operations).  The error handler, when set,
/// may be invoked concurrently from multiple threads.
class ConcurrentAllocator : public Allocator {
public:
  /// One thread's private magazines.  Obtained implicitly per thread via
  /// allocate(), or explicitly via createCache()/allocateFrom() —
  /// the deterministic route tests and single-threaded drivers use.
  class ThreadCache {
    friend class ConcurrentAllocator;

    struct CachedSlot {
      ObjectRef Ref;
      Miniheap *Heap;
    };

    explicit ThreadCache(size_t NumClasses) : Magazines(NumClasses) {}

    /// Pre-drawn slots per size class, consumed back-to-front.
    std::vector<std::vector<CachedSlot>> Magazines;
    /// Front-end counters; atomic because stats() aggregates them while
    /// the owning thread runs.
    std::atomic<uint64_t> Allocations{0};
    std::atomic<uint64_t> BytesRequested{0};
  };

  explicit ConcurrentAllocator(
      const ConcurrentAllocatorConfig &Config = ConcurrentAllocatorConfig(),
      const CallContext *Context = nullptr);
  ~ConcurrentAllocator() override;

  /// Allocates from the calling thread's cache (created on first use and
  /// flushed back automatically at thread exit).
  void *allocate(size_t Size) override;

  /// Lock-free remote free: resolve, claim, push.  Safe from any thread,
  /// including threads that never allocated.
  void deallocate(void *Ptr) override;

  const char *name() const override {
    return Cfg.DieFastCanaries ? "diefast-mt" : "diehard-mt";
  }

  /// Aggregated front-end + backend counters.  Takes both locks; values
  /// are exact under quiescence, a consistent-enough snapshot otherwise.
  const AllocatorStats &stats() const override;

  /// The calling thread's cache for this allocator (created on first
  /// use; registered for flush at thread exit).
  ThreadCache &threadCache();

  /// Creates a cache detached from any thread.  Tests drive several
  /// caches from one thread through allocateFrom to exercise the
  /// magazine machinery deterministically.
  ThreadCache &createCache();

  /// Allocates from an explicit cache.  \p RefOut, when non-null,
  /// receives the slot that was handed out (uniformity tests tally it).
  /// The caller owns the cache's thread affinity: one thread at a time.
  void *allocateFrom(ThreadCache &Cache, size_t Size,
                     ObjectRef *RefOut = nullptr);

  /// Returns every magazine slot of \p Cache to the backend free pool
  /// and drains all remote-free queues.
  void flushCache(ThreadCache &Cache);

  /// Flushes every cache and drains every queue.  Call at quiescence;
  /// afterwards the backend's live count equals the program's live
  /// objects exactly.
  void flushAll();

  /// Installs the handler invoked on each detected corruption (canary
  /// mode).  Must be thread-safe; may fire concurrently.
  void setErrorHandler(ErrorSignalHandler Handler) {
    OnError = std::move(Handler);
  }

  /// Corruptions signalled so far.
  uint64_t errorsSignalled() const {
    return ErrorsSignalled.load(std::memory_order_relaxed);
  }

  /// Allocations performed to date (object ids are drawn from this).
  uint64_t allocationClock() const {
    return Clock.load(std::memory_order_relaxed);
  }

  /// Times the backend lock was acquired, across all threads and both
  /// modes.  The bench divides by operations: the cached mode's whole
  /// point is that this grows by ~2/MagazineSize per alloc/free pair
  /// where the global-lock baseline pays 2 — a machine-independent
  /// witness of the decontention that wall-clock numbers on a small host
  /// can understate.
  uint64_t backendLockAcquires() const {
    return LockAcquires.load(std::memory_order_relaxed);
  }

  /// Frees pushed but not yet drained (hint; exact under quiescence).
  uint64_t pendingRemoteFrees() const {
    const int64_t N = PendingRemote.load(std::memory_order_relaxed);
    return N > 0 ? static_cast<uint64_t>(N) : 0;
  }

  /// The shared backend, for tests and heap-image capture.  Quiescence
  /// required; flushAll() first for exact live accounting.
  DieHardHeap &backend() { return Backend; }
  const DieHardHeap &backend() const { return Backend; }

  const ConcurrentAllocatorConfig &config() const { return Cfg; }
  const Canary &canary() const { return HeapCanary; }

private:
  /// Drains every miniheap's remote-free queue into the backend
  /// (BackendLock held).  Returns the number of slots freed.
  uint64_t drainRemoteFrees();

  /// Tops up one magazine under the backend lock: drain first, then
  /// draw, so every queued free is back in the lottery before any draw.
  void refill(ThreadCache &Cache, unsigned ClassIndex);

  /// flushCache body with BackendLock already held.
  void flushCacheLocked(ThreadCache &Cache);

  /// Baseline-mode operations (BackendLock held): the single-threaded
  /// DieHard/DieFast paths verbatim.
  void *baselineAllocate(size_t Size);
  void baselineDeallocate(void *Ptr);

  void signalError(ErrorSignalKind Kind, const ObjectRef &Where);

  /// Takes the backend lock, counts the acquisition, and re-syncs the
  /// backend clock to the front-end clock.
  std::unique_lock<std::mutex> lockBackend();

  ConcurrentAllocatorConfig Cfg;
  const CallContext *Context;
  DieHardHeap Backend;
  /// Canary-mode randomness (drain-time fills); seeded exactly like
  /// DieFastHeap's so MagazineSize == 1 reproduces its placements.
  RandomGenerator CanaryRng;
  Canary HeapCanary;
  ErrorSignalHandler OnError;

  /// Serializes every backend mutation: refills, drains, flushes,
  /// baseline-mode operations.
  mutable std::mutex BackendLock;
  /// Guards AllCaches (creation + stats aggregation).  Lock order:
  /// CacheLock before BackendLock; never the reverse.
  mutable std::mutex CacheLock;
  std::vector<std::unique_ptr<ThreadCache>> AllCaches;

  /// Front-end allocation clock; object ids are fetch_add'ed from it
  /// without the lock.
  std::atomic<uint64_t> Clock{0};
  /// Queued-but-undrained frees (drain-skip hint; may transiently read
  /// negative while a drain races a push's counter increment).
  std::atomic<int64_t> PendingRemote{0};
  std::atomic<uint64_t> LockAcquires{0};
  std::atomic<uint64_t> ErrorsSignalled{0};
  /// Lock-free-path free errors (the backend's counters only see frees
  /// that reach it).
  std::atomic<uint64_t> RemoteInvalidFrees{0};
  std::atomic<uint64_t> RemoteDoubleFrees{0};

  /// Identifies this instance across reuse of its address (thread-exit
  /// flushes check it against the live-instance registry).
  uint64_t InstanceId;

  /// Scratch for drainRemoteFrees (lock-held; avoids per-drain
  /// allocation).
  std::vector<size_t> DrainScratch;

  /// Aggregation target for stats().
  mutable AllocatorStats Aggregated;
};

} // namespace exterminator

#endif // EXTERMINATOR_ALLOC_CONCURRENTALLOCATOR_H

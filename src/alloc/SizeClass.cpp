//===- alloc/SizeClass.cpp - Power-of-two size classes ---------------------===//

#include "alloc/SizeClass.h"

#include <bit>
#include <cassert>

using namespace exterminator;

static constexpr unsigned MinShift = 3;  // log2(MinObjectSize)
static constexpr unsigned MaxShift = 20; // log2(MaxObjectSize)

unsigned sizeclass::numClasses() { return MaxShift - MinShift + 1; }

unsigned sizeclass::classFor(size_t Size) {
  assert(Size > 0 && "zero-sized allocation has no class");
  assert(Size <= MaxObjectSize && "request exceeds the largest size class");
  if (Size <= MinObjectSize)
    return 0;
  return std::bit_width(Size - 1) - MinShift;
}

size_t sizeclass::classSize(unsigned Index) {
  assert(Index < numClasses() && "size class index out of range");
  return size_t(1) << (MinShift + Index);
}

bool sizeclass::fits(size_t Size) {
  return Size > 0 && Size <= MaxObjectSize;
}

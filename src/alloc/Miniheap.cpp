//===- alloc/Miniheap.cpp - One-size-class randomized slab -----------------===//

#include "alloc/Miniheap.h"

#include "alloc/SizeClass.h"

#include <bit>
#include <cstring>

using namespace exterminator;

Miniheap::Miniheap(unsigned SizeClassIndex, size_t NumSlots,
                   uint64_t CreationTime, size_t GuardBytes)
    : SizeClassIndex(SizeClassIndex),
      ObjectSize(sizeclass::classSize(SizeClassIndex)),
      ObjectShift(std::countr_zero(ObjectSize)), NumSlots(NumSlots),
      CreationTime(CreationTime) {
  assert(NumSlots > 0 && "miniheap must have at least one slot");
  // Guard regions on both sides absorb forward overflows off the last
  // slot and backward overflows off the first (the sparse address space
  // between real miniheaps plays this role in the paper).
  GuardOffset = GuardBytes;
  const size_t SlabBytes = NumSlots * ObjectSize + 2 * GuardBytes;
  Slab = std::make_unique<uint8_t[]>(SlabBytes);
  std::memset(Slab.get(), 0, SlabBytes);
  InUse.resize(NumSlots);
  Metadata = std::make_unique<SlotMetadata[]>(NumSlots);
  PendingFreeWords =
      std::make_unique<std::atomic<uint64_t>[]>((NumSlots + 63) / 64);
}

bool Miniheap::contains(const void *Ptr) const {
  const uint8_t *Addr = static_cast<const uint8_t *>(Ptr);
  return Addr >= base() && Addr < base() + NumSlots * ObjectSize;
}

std::optional<size_t> Miniheap::slotContaining(const void *Ptr) const {
  if (!contains(Ptr))
    return std::nullopt;
  const uint8_t *Addr = static_cast<const uint8_t *>(Ptr);
  // Object sizes are powers of two: shift instead of divide.
  return static_cast<size_t>(Addr - base()) >> ObjectShift;
}

void Miniheap::markAllocated(size_t Slot) {
  [[maybe_unused]] bool Changed = InUse.set(Slot);
  assert(Changed && "slot was already allocated");
}

void Miniheap::markFree(size_t Slot) {
  [[maybe_unused]] bool Changed = InUse.reset(Slot);
  assert(Changed && "slot was already free");
}

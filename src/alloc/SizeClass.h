//===- alloc/SizeClass.h - Power-of-two size classes -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DieHard's size-class scheme (§3.1, Figure 2): objects are rounded up to
/// powers of two, and each miniheap holds objects of exactly one class.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ALLOC_SIZECLASS_H
#define EXTERMINATOR_ALLOC_SIZECLASS_H

#include <cstddef>
#include <cstdint>

namespace exterminator {

namespace sizeclass {

/// Smallest object size: big enough for a 64-bit pointer plus a whole
/// 32-bit canary word.
inline constexpr size_t MinObjectSize = 8;

/// Largest object size served from miniheaps.
inline constexpr size_t MaxObjectSize = size_t(1) << 20;

/// Number of size classes: 8, 16, 32, ..., MaxObjectSize.
unsigned numClasses();

/// Maps a requested size (1..MaxObjectSize) to its class index.
unsigned classFor(size_t Size);

/// The object size of class \p Index.
size_t classSize(unsigned Index);

/// True if \p Size can be served from a miniheap.
bool fits(size_t Size);

} // namespace sizeclass

} // namespace exterminator

#endif // EXTERMINATOR_ALLOC_SIZECLASS_H

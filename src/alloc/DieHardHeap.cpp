//===- alloc/DieHardHeap.cpp - Adaptive randomized heap --------------------===//

#include "alloc/DieHardHeap.h"

#include <algorithm>
#include <cstring>

using namespace exterminator;

DieHardHeap::DieHardHeap(const DieHardConfig &Config,
                         const CallContext *Context)
    : Config(Config), Context(Context), Rng(Config.Seed) {
  assert(Config.Multiplier > 1.0 && "heap multiplier must exceed 1");
  assert(Config.InitialSlots > 0 && "initial miniheap must be nonempty");
  Classes.resize(sizeclass::numClasses());
  Slabs.reserve(MaxSlabs);
}

DieHardHeap::~DieHardHeap() = default;

void *DieHardHeap::allocate(size_t Size) {
  ObjectRef Ref;
  return allocateWithRef(Size, Ref);
}

void *DieHardHeap::allocateWithRef(size_t Size, ObjectRef &RefOut) {
  if (!sizeclass::fits(Size))
    return nullptr;

  tickAllocationClock(Size);
  const ObjectRef Ref = reserveSlot(sizeclass::classFor(Size));
  commitAllocation(Ref, Size);
  RefOut = Ref;
  return miniheap(Ref).slotPointer(Ref.SlotIndex);
}

void DieHardHeap::tickAllocationClock(size_t Size) {
  ++Clock;
  ++Stats.Allocations;
  Stats.BytesRequested += Size;
}

ObjectRef DieHardHeap::reserveSlot(unsigned ClassIndex, Miniheap **HeapOut) {
  ClassState &Class = Classes[ClassIndex];
  ensureCapacity(Class, ClassIndex);
  const ObjectRef Ref = placeRandomly(Class, ClassIndex);
  Miniheap &Heap = *Class.Heaps[Ref.HeapIndex];
  Heap.markAllocated(Ref.SlotIndex);
  ++Class.Live;
  ++LiveObjects;
  if (HeapOut)
    *HeapOut = &Heap;
  return Ref;
}

void DieHardHeap::releaseReserved(const ObjectRef &Ref) {
  Miniheap &Heap = miniheap(Ref);
  assert(Heap.isAllocated(Ref.SlotIndex) &&
         "releaseReserved requires a reserved slot");
  assert(!Heap.slot(Ref.SlotIndex).Bad && "bad slots are never released");
  Heap.markFree(Ref.SlotIndex);
  --Classes[Ref.ClassIndex].Live;
  --LiveObjects;
  // A magazine slot whose page was retired while it sat reserved in a
  // thread cache must not rejoin the free pool on flush.
  if (!RetiredPages.empty() && slotOnRetiredPage(Heap, Ref.SlotIndex)) {
    quarantine(Ref);
    ++RetiredSlots;
  }
}

void DieHardHeap::commitAllocation(const ObjectRef &Ref, size_t Size) {
  SlotMetadata &Meta = miniheap(Ref).slot(Ref.SlotIndex);
  assert(!Meta.Bad && "cannot commit an allocation into a bad slot");
  Meta.ObjectId = Clock; // doubles as the allocation time
  Meta.FreeTime = 0;
  Meta.AllocSite = Context ? Context->currentSite() : 0;
  Meta.FreeSite = 0;
  Meta.RequestedSize = static_cast<uint32_t>(Size);
  Meta.FrontPad = 0;
  Meta.Canaried = false;
}

void DieHardHeap::markBad(const ObjectRef &Ref) {
  Miniheap &Heap = miniheap(Ref);
  assert(Heap.isAllocated(Ref.SlotIndex) &&
         "markBad requires a reserved slot");
  Heap.slot(Ref.SlotIndex).Bad = true;
}

void DieHardHeap::deallocate(void *Ptr) {
  ObjectRef Ref;
  deallocateWithRef(Ptr, Ref);
}

bool DieHardHeap::deallocateWithRef(void *Ptr, ObjectRef &RefOut,
                                    std::optional<SiteId> SiteOverride) {
  if (!Ptr)
    return false;

  // Range check: pointers outside the heap, or not at an object start, are
  // invalid frees, which DieFast detects and ignores (§2).
  std::optional<ObjectRef> Found = findObject(Ptr);
  if (!Found) {
    ++Stats.InvalidFrees;
    return false;
  }
  Miniheap &Heap = miniheap(*Found);
  // The free stamps FreeTime/FreeSite into this slot's metadata after
  // the bitmap check; random placement makes that line a near-certain
  // miss on DRAM-bound churn, so start pulling it for write now.  The
  // prefetch lives here, not in findObject, so pure lookups
  // (isLivePointer, diffing) do not pay the read-for-ownership — and
  // the legacy toggle keeps measuring the pre-PR-1 free path unaided.
  if (!Config.LegacyHotPath)
    __builtin_prefetch(&Heap.slot(Found->SlotIndex), /*rw=*/1,
                       /*locality=*/3);
  if (Ptr != Heap.slotPointer(Found->SlotIndex)) {
    ++Stats.InvalidFrees;
    return false;
  }

  RefOut = *Found;
  return deallocateIn(Heap, *Found, SiteOverride);
}

bool DieHardHeap::deallocateResolved(const ObjectRef &Ref,
                                     std::optional<SiteId> SiteOverride) {
  return deallocateIn(miniheap(Ref), Ref, SiteOverride);
}

bool DieHardHeap::deallocateIn(Miniheap &Heap, const ObjectRef &Ref,
                               std::optional<SiteId> SiteOverride) {
  // A bit can only be reset once, so multiple frees are benign (§2).  Bad
  // slots keep their bit set forever, so a free of a quarantined object
  // lands here as well.
  if (!Heap.isAllocated(Ref.SlotIndex) || Heap.slot(Ref.SlotIndex).Bad) {
    ++Stats.DoubleFrees;
    return false;
  }

  Heap.markFree(Ref.SlotIndex);
  --Classes[Ref.ClassIndex].Live;
  --LiveObjects;
  ++Stats.Deallocations;

  SlotMetadata &Meta = Heap.slot(Ref.SlotIndex);
  Meta.FreeTime = Clock;
  Meta.FreeSite =
      SiteOverride ? *SiteOverride : (Context ? Context->currentSite() : 0);

  // A slot whose page was retired while the object lived is withdrawn
  // the moment it comes back: the free succeeds, then the slot goes
  // straight to quarantine instead of the free pool.  This is the only
  // re-entry path into the lottery, so it covers the concurrent
  // front-end's magazines as well.
  if (!RetiredPages.empty() && slotOnRetiredPage(Heap, Ref.SlotIndex)) {
    quarantine(Ref);
    ++RetiredSlots;
  }
  return true;
}

void DieHardHeap::quarantine(const ObjectRef &Ref) {
  Miniheap &Heap = miniheap(Ref);
  assert(!Heap.isAllocated(Ref.SlotIndex) &&
         "only free slots can be quarantined");
  Heap.markAllocated(Ref.SlotIndex);
  Heap.slot(Ref.SlotIndex).Bad = true;
  ++Classes[Ref.ClassIndex].Live;
  ++LiveObjects;
}

bool DieHardHeap::slotOnRetiredPage(const Miniheap &Heap, size_t Slot) const {
  const uint8_t *Begin = Heap.slotPointer(Slot);
  const uintptr_t FirstPage =
      reinterpret_cast<uintptr_t>(Begin) >> PageShift << PageShift;
  const uintptr_t LastPage =
      reinterpret_cast<uintptr_t>(Begin + Heap.objectSize() - 1) >> PageShift
      << PageShift;
  for (uintptr_t Page = FirstPage; Page <= LastPage;
       Page += uintptr_t(1) << PageShift)
    if (std::binary_search(RetiredPages.begin(), RetiredPages.end(), Page))
      return true;
  return false;
}

size_t DieHardHeap::retirePage(uintptr_t PageAddress) {
  const uintptr_t Page = PageAddress >> PageShift << PageShift;
  auto It = std::lower_bound(RetiredPages.begin(), RetiredPages.end(), Page);
  if (It != RetiredPages.end() && *It == Page)
    return 0; // already retired
  RetiredPages.insert(It, Page);

  // Quarantine every currently-free slot overlapping the page.  Live
  // slots keep serving their object; deallocateIn retires them on free.
  size_t Quarantined = 0;
  for (unsigned C = 0; C < Classes.size(); ++C)
    for (unsigned H = 0; H < Classes[C].Heaps.size(); ++H) {
      Miniheap &Heap = *Classes[C].Heaps[H];
      const uintptr_t SlabBegin = reinterpret_cast<uintptr_t>(Heap.base());
      const uintptr_t SlabEnd =
          SlabBegin + Heap.numSlots() * Heap.objectSize();
      if (SlabEnd <= Page || SlabBegin >= Page + (uintptr_t(1) << PageShift))
        continue;
      for (size_t Slot = 0; Slot < Heap.numSlots(); ++Slot) {
        if (Heap.isAllocated(Slot) || !slotOnRetiredPage(Heap, Slot))
          continue;
        quarantine(ObjectRef{C, H, Slot});
        ++RetiredSlots;
        ++Quarantined;
      }
    }
  return Quarantined;
}

bool DieHardHeap::isPageRetired(uintptr_t Address) const {
  const uintptr_t Page = Address >> PageShift << PageShift;
  return std::binary_search(RetiredPages.begin(), RetiredPages.end(), Page);
}

std::optional<ObjectRef> DieHardHeap::findObject(const void *Ptr) const {
  const uint8_t *Addr = static_cast<const uint8_t *>(Ptr);
  if (Config.LegacyHotPath)
    return findObjectSorted(Addr);

  // Page directory: every page an object region overlaps is keyed here,
  // so a miss proves Addr is outside the heap (guard regions included).
  const uint32_t Id = PageDirectory.lookup(pageOf(Addr));
  if (Id == PageTable::NotFound)
    return std::nullopt;
  if (Id == AmbiguousPage)
    return findObjectSorted(Addr);
  const Range &Slab = Slabs[Id];
  // The page can hang over the slab's edges into guard space; range-check
  // before trusting it.
  if (Addr < Slab.Base || Addr >= Slab.End)
    return std::nullopt;
  std::optional<size_t> Slot = Slab.Heap->slotContaining(Addr);
  assert(Slot && "in-range address must resolve to a slot");
  return ObjectRef{Slab.ClassIndex, Slab.HeapIndex, *Slot};
}

std::optional<DieHardHeap::ResolvedObject>
DieHardHeap::resolvePointer(const void *Ptr) const {
  const uint8_t *Addr = static_cast<const uint8_t *>(Ptr);
  std::optional<ObjectRef> Found;
  Miniheap *Heap = nullptr;
  if (Config.LegacyHotPath) {
    Found = findObjectSorted(Addr);
    if (Found)
      Heap = Classes[Found->ClassIndex].Heaps[Found->HeapIndex].get();
  } else {
    const uint32_t Id = PageDirectory.lookup(pageOf(Addr));
    if (Id == PageTable::NotFound)
      return std::nullopt;
    if (Id == AmbiguousPage) {
      // Sub-page guards only; the lock-free contract (see header) is off
      // this path.
      Found = findObjectSorted(Addr);
      if (Found)
        Heap = Classes[Found->ClassIndex].Heaps[Found->HeapIndex].get();
    } else {
      const Range &Slab = Slabs[Id];
      if (Addr < Slab.Base || Addr >= Slab.End)
        return std::nullopt;
      std::optional<size_t> Slot = Slab.Heap->slotContaining(Addr);
      assert(Slot && "in-range address must resolve to a slot");
      Found = ObjectRef{Slab.ClassIndex, Slab.HeapIndex, *Slot};
      Heap = Slab.Heap;
    }
  }
  if (!Found)
    return std::nullopt;
  return ResolvedObject{*Found, Heap, Heap->slotPointer(Found->SlotIndex)};
}

std::optional<ObjectRef>
DieHardHeap::findObjectSorted(const uint8_t *Addr) const {
  // Ranges is sorted by base; find the first range whose base is > Addr,
  // then step back.
  auto It = std::upper_bound(
      Ranges.begin(), Ranges.end(), Addr,
      [](const uint8_t *A, const Range &R) { return A < R.Base; });
  if (It == Ranges.begin())
    return std::nullopt;
  --It;
  if (Addr >= It->End)
    return std::nullopt;
  std::optional<size_t> Slot = It->Heap->slotContaining(Addr);
  if (!Slot)
    return std::nullopt;
  return ObjectRef{It->ClassIndex, It->HeapIndex, *Slot};
}

bool DieHardHeap::isLivePointer(const void *Ptr) const {
  std::optional<ObjectRef> Ref = findObject(Ptr);
  if (!Ref)
    return false;
  const Miniheap &Heap = miniheap(*Ref);
  return Heap.isAllocated(Ref->SlotIndex) && !Heap.slot(Ref->SlotIndex).Bad;
}

std::optional<ObjectRef> DieHardHeap::previousSlot(const ObjectRef &Ref) const {
  if (Ref.SlotIndex == 0)
    return std::nullopt;
  return ObjectRef{Ref.ClassIndex, Ref.HeapIndex, Ref.SlotIndex - 1};
}

std::optional<ObjectRef> DieHardHeap::nextSlot(const ObjectRef &Ref) const {
  const Miniheap &Heap = miniheap(Ref);
  if (Ref.SlotIndex + 1 >= Heap.numSlots())
    return std::nullopt;
  return ObjectRef{Ref.ClassIndex, Ref.HeapIndex, Ref.SlotIndex + 1};
}

void DieHardHeap::ensureCapacity(ClassState &Class, unsigned ClassIndex) {
  // Keep (Live + 1) <= Capacity / M: adding a miniheap twice as large as
  // the previous largest each time the bound would be violated (§3.1).
  // MaxLive caches floor(Capacity / M): for integer Live the comparison
  // is exactly equivalent and the hot check costs no multiplier math.
  while (Class.Live + 1 > Class.MaxLive) {
    size_t NewSlots = Class.Heaps.empty()
                          ? Config.InitialSlots
                          : Class.Heaps.back()->numSlots() * 2;
    auto Heap = std::make_unique<Miniheap>(ClassIndex, NewSlots, Clock,
                                           Config.GuardBytes);
    registerRange(Heap.get(), ClassIndex,
                  static_cast<unsigned>(Class.Heaps.size()));
    Class.Capacity += NewSlots;
    Class.MaxLive = static_cast<size_t>(static_cast<double>(Class.Capacity) /
                                        Config.Multiplier);
    Class.CumulativeSlots.push_back(Class.Capacity);
    Class.Heaps.push_back(std::move(Heap));
  }
}

std::pair<unsigned, size_t>
DieHardHeap::resolveClassSlot(const ClassState &Class, size_t Pick) const {
  // First miniheap whose inclusive prefix sum exceeds Pick owns the slot.
  // Doubling miniheaps keep this table at ~log2(live) entries, so a
  // branch-free predicate-sum scan (every comparison compiles to
  // setcc/add, none to a conditional jump) beats a binary search whose
  // branches are data-random by construction.
  const size_t *Cum = Class.CumulativeSlots.data();
  const size_t Count = Class.CumulativeSlots.size();
  unsigned HeapIndex = 0;
  for (size_t I = 0; I < Count; ++I)
    HeapIndex += static_cast<unsigned>(Pick >= Cum[I]);
  assert(HeapIndex < Count && "pick past class capacity");
  const size_t Before = HeapIndex == 0 ? 0 : Cum[HeapIndex - 1];
  return {HeapIndex, Pick - Before};
}

ObjectRef DieHardHeap::placeRandomly(ClassState &Class, unsigned ClassIndex) {
  assert(Class.Live < Class.Capacity && "class has no free slot");

  if (Config.LegacyHotPath) {
    // The pre-PR-1 implementation: every probe walks the miniheap list
    // linearly to resolve the class-global pick.  Kept only for the bench
    // baseline toggle.
    for (;;) {
      size_t Pick = Rng.nextBelow(Class.Capacity);
      unsigned HeapIndex = 0;
      for (const auto &Heap : Class.Heaps) {
        if (Pick < Heap->numSlots()) {
          if (!Heap->isAllocated(Pick))
            return ObjectRef{ClassIndex, HeapIndex, Pick};
          break;
        }
        Pick -= Heap->numSlots();
        ++HeapIndex;
      }
    }
  }

  // Uniform random probing over the class's combined slot space; expected
  // O(1) probes at <= 1/M occupancy (§3.1).  Each probe is one draw, one
  // branch-free scan of the offset table, one bitmap word load.
  static constexpr unsigned MaxPlacementProbes = 64;
  for (unsigned Probe = 0; Probe < MaxPlacementProbes; ++Probe) {
    const size_t Pick = Rng.nextBelow(Class.Capacity);
    const auto [HeapIndex, Slot] = resolveClassSlot(Class, Pick);
    if (!Class.Heaps[HeapIndex]->isAllocated(Slot))
      return ObjectRef{ClassIndex, HeapIndex, Slot};
  }

  // Degenerate density (never reached at the <= 1/M invariant): draw a
  // uniform rank among the free slots and select it exactly — the same
  // distribution rejection sampling produces, with a bounded sweep.
  size_t Rank = Rng.nextBelow(Class.Capacity - Class.Live);
  for (unsigned H = 0; H < Class.Heaps.size(); ++H) {
    const Miniheap &Heap = *Class.Heaps[H];
    const size_t FreeHere = Heap.numSlots() - Heap.allocatedCount();
    if (Rank < FreeHere) {
      std::optional<size_t> Slot = Heap.inUseBitmap().selectClear(Rank);
      assert(Slot && "rank within free count must select");
      return ObjectRef{ClassIndex, H, *Slot};
    }
    Rank -= FreeHere;
  }
  assert(false && "free-slot rank walk must terminate");
  return ObjectRef{ClassIndex, 0, 0};
}

void DieHardHeap::registerRange(Miniheap *Heap, unsigned ClassIndex,
                                unsigned HeapIndex) {
  Range NewRange{Heap->base(),
                 Heap->base() + Heap->numSlots() * Heap->objectSize(),
                 ClassIndex, HeapIndex, Heap};
  auto It = std::upper_bound(
      Ranges.begin(), Ranges.end(), NewRange,
      [](const Range &A, const Range &B) { return A.Base < B.Base; });
  Ranges.insert(It, NewRange);

  // Page directory: map every page the object region overlaps to this
  // slab.  A page already claimed by another slab (only possible when
  // guard regions are smaller than a page) turns ambiguous and falls back
  // to the sorted-range search.
  assert(Slabs.size() < MaxSlabs &&
         "slab cap reached; raise MaxSlabs (reserved so concurrent "
         "readers never race a reallocation)");
  const uint32_t SlabId = static_cast<uint32_t>(Slabs.size());
  // The Range must be fully written before any page id pointing at it
  // publishes: emplace's release store is the publication point for
  // lock-free resolvePointer readers.
  Slabs.push_back(NewRange);
  for (uintptr_t Page = pageOf(NewRange.Base),
                 LastPage = pageOf(NewRange.End - 1);
       Page <= LastPage; ++Page) {
    const auto [Value, Inserted] = PageDirectory.emplace(Page, SlabId);
    (void)Value;
    if (!Inserted)
      PageDirectory.overwrite(Page, AmbiguousPage);
  }
}

//===- alloc/Miniheap.h - One-size-class randomized slab -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniheap (paper §3.1, Figure 2): a contiguous slab of equally-sized
/// object slots with an in-use bitmap, plus the out-of-band per-object
/// metadata Exterminator adds (§3.2, Figure 1): object id, allocation and
/// deallocation sites, deallocation time, and the canary bit.
///
/// The slab is real memory, so buffer overflows performed by workloads are
/// actual out-of-bounds writes and heap diffing reads actual bytes.  A
/// guard region after the slab absorbs forward overflows from the last
/// slot (in the paper, miniheaps are scattered across a sparse address
/// space; the guard region plays the role of the empty space between
/// them).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ALLOC_MINIHEAP_H
#define EXTERMINATOR_ALLOC_MINIHEAP_H

#include "support/Bitmap.h"
#include "support/MpscQueue.h"
#include "support/SiteHash.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

namespace exterminator {

/// Out-of-band metadata kept for every object slot (paper Figure 1).
///
/// The paper's Figure 1 lists object id and allocation time as separate
/// fields, but ids are drawn from the allocation clock, so ObjectId *is*
/// the allocation time — one 8-byte field covers both (allocTime()).
/// Dropping the duplicate shaves a cache line's worth of metadata off
/// every 1.6 slots on the placement-bound hot path.
struct SlotMetadata {
  /// The object is the ObjectId'th allocation from this heap; 0 = the
  /// slot has never been allocated.  Doubles as the allocation time.
  uint64_t ObjectId = 0;
  /// Allocation clock value when the object was last freed.
  uint64_t FreeTime = 0;
  /// Call-site hash of the allocation (Figure 3).
  SiteId AllocSite = 0;
  /// Call-site hash of the deallocation.
  SiteId FreeSite = 0;
  /// The size the program actually requested (<= slot size).
  uint32_t RequestedSize = 0;
  /// Bytes of front padding before the pointer the program holds
  /// (backward-overflow correction; 0 normally).
  uint32_t FrontPad = 0;
  /// Canary bitset entry: the slot was filled with canaries when freed.
  bool Canaried = false;
  /// Bad-object isolation (§3.3): the slot was found corrupted and is
  /// permanently withheld from reuse to preserve its contents.
  bool Bad = false;

  /// Allocation clock value when the object was allocated (== ObjectId).
  uint64_t allocTime() const { return ObjectId; }
};
static_assert(sizeof(SlotMetadata) <= 40,
              "SlotMetadata grew past five words; placement-op cache "
              "behavior regresses (see ROADMAP open items)");

/// A slab of NumSlots objects of one size class.
class Miniheap {
public:
  /// \param SizeClassIndex this miniheap's size class.
  /// \param NumSlots number of object slots.
  /// \param CreationTime allocation-clock value when the miniheap was
  ///        created; cumulative-mode isolation needs it (§5.1, τ(M_j)).
  /// \param GuardBytes guard region appended after the slab.
  Miniheap(unsigned SizeClassIndex, size_t NumSlots, uint64_t CreationTime,
           size_t GuardBytes);

  unsigned sizeClassIndex() const { return SizeClassIndex; }
  size_t objectSize() const { return ObjectSize; }
  size_t numSlots() const { return NumSlots; }
  uint64_t creationTime() const { return CreationTime; }

  uint8_t *base() { return Slab.get() + GuardOffset; }
  const uint8_t *base() const { return Slab.get() + GuardOffset; }

  uint8_t *slotPointer(size_t Slot) {
    assert(Slot < NumSlots && "slot index out of range");
    return base() + Slot * ObjectSize;
  }
  const uint8_t *slotPointer(size_t Slot) const {
    assert(Slot < NumSlots && "slot index out of range");
    return base() + Slot * ObjectSize;
  }

  /// True if \p Ptr points into the slab (guard region excluded).
  bool contains(const void *Ptr) const;

  /// The slot containing \p Ptr, if any.
  std::optional<size_t> slotContaining(const void *Ptr) const;

  bool isAllocated(size_t Slot) const { return InUse.test(Slot); }
  size_t allocatedCount() const { return InUse.count(); }
  const Bitmap &inUseBitmap() const { return InUse; }

  /// Marks \p Slot allocated.  Asserts it was free.
  void markAllocated(size_t Slot);

  /// Marks \p Slot free.  Asserts it was allocated.
  void markFree(size_t Slot);

  SlotMetadata &slot(size_t Slot) {
    assert(Slot < NumSlots && "slot index out of range");
    return Metadata[Slot];
  }
  const SlotMetadata &slot(size_t Slot) const {
    assert(Slot < NumSlots && "slot index out of range");
    return Metadata[Slot];
  }

  /// \name Remote-free support (concurrent front-end, PR 7)
  /// A free from a thread that does not hold the backend lock claims the
  /// slot's *pending-free* bit, pushes a node into this miniheap's queue,
  /// and returns; the bit makes the claim exclusive, so double frees from
  /// racing threads are detected without the lock, and the slot cannot be
  /// enqueued twice.  The owner drains the queue under the lock and
  /// clears the bit only when the slot is next committed — between drain
  /// and commit the slot is free (or quarantined) and a stale free
  /// attempt must keep bouncing off the set bit rather than scribble a
  /// queue node into memory it no longer owns.
  /// @{

  /// Atomically claims the pending-free bit for \p Slot.  Returns true
  /// when this caller set it (the free proceeds); false means another
  /// free already owns the slot (a concurrent double free).
  bool claimPendingFree(size_t Slot) {
    assert(Slot < NumSlots && "slot index out of range");
    const uint64_t Bit = uint64_t(1) << (Slot & 63);
    const uint64_t Old = PendingFreeWords[Slot >> 6].fetch_or(
        Bit, std::memory_order_acq_rel);
    return (Old & Bit) == 0;
  }

  /// Clears the pending-free bit at commit time (the slot is live again;
  /// the next free must be able to claim it).
  void clearPendingFree(size_t Slot) {
    assert(Slot < NumSlots && "slot index out of range");
    const uint64_t Bit = uint64_t(1) << (Slot & 63);
    PendingFreeWords[Slot >> 6].fetch_and(~Bit, std::memory_order_release);
  }

  /// This miniheap's remote-free queue (drained under the backend lock).
  MpscQueue &remoteFreeQueue() { return RemoteFrees; }

  /// @}

private:
  unsigned SizeClassIndex;
  size_t ObjectSize;
  unsigned ObjectShift;
  size_t GuardOffset = 0;
  size_t NumSlots;
  uint64_t CreationTime;
  std::unique_ptr<uint8_t[]> Slab;
  Bitmap InUse;
  std::unique_ptr<SlotMetadata[]> Metadata;
  /// One pending-free bit per slot (see claimPendingFree); value-
  /// initialized to zero.  Kept separate from InUse, which stays a plain
  /// bitmap owned by the lock holder.
  std::unique_ptr<std::atomic<uint64_t>[]> PendingFreeWords;
  /// Frees pushed by threads not holding the backend lock.
  MpscQueue RemoteFrees;
};

} // namespace exterminator

#endif // EXTERMINATOR_ALLOC_MINIHEAP_H

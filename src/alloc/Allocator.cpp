//===- alloc/Allocator.cpp - Allocator interface ---------------------------===//

#include "alloc/Allocator.h"

using namespace exterminator;

// Out-of-line virtual anchor.
Allocator::~Allocator() = default;

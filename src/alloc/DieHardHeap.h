//===- alloc/DieHardHeap.h - Adaptive randomized heap ----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive DieHard heap (paper §3.1, Figure 2; Berger & Zorn 2006),
/// the substrate Exterminator is built on.
///
/// Objects of each power-of-two size class are allocated uniformly at
/// random across that class's miniheaps, whose combined capacity is kept
/// at least M times the number of live objects (the *heap multiplier*).
/// When an allocation would push the class above 1/M occupancy, a new
/// miniheap twice as large as the previous largest is added.  Random
/// bitmap probing gives O(1) expected allocation; frees reset a bit, which
/// makes double frees benign, and range checks make invalid frees benign
/// (Table 1).
///
/// Hot-path layout (see ROADMAP.md "Hot-path architecture"):
///
///  * Placement draws one random index over the class's combined slot
///    space and resolves it to a miniheap through a per-class cumulative
///    slot-offset table (rebuilt only when the class grows), so a probe is
///    a draw, a branch-free scan over a handful of prefix sums, and one
///    bitmap word load.  A bounded number of rejection probes is followed by an
///    exact rank-select over the free slots, preserving the uniform
///    distribution even on adversarially dense maps.
///
///  * Pointer lookup (`findObject`) consults a page directory keyed on the
///    address's 4 KiB page: every page a slab's object region overlaps
///    maps to that slab, making free-path resolution one hash probe.  The
///    sorted-range binary search is kept as the fallback for pages shared
///    by two slabs (possible only with guard regions smaller than a page).
///
/// The heap also maintains Exterminator's per-object metadata (§3.2):
/// object ids from a global allocation clock, allocation/deallocation site
/// hashes sampled from an optional CallContext, and deallocation times.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ALLOC_DIEHARDHEAP_H
#define EXTERMINATOR_ALLOC_DIEHARDHEAP_H

#include "alloc/Allocator.h"
#include "alloc/Miniheap.h"
#include "alloc/SizeClass.h"
#include "support/PageTable.h"
#include "support/RandomGenerator.h"
#include "support/SiteHash.h"

#include <memory>
#include <optional>
#include <vector>

namespace exterminator {

/// Tuning knobs for the DieHard heap.
struct DieHardConfig {
  /// Heap multiplier M: the heap is never more than 1/M full (paper fixes
  /// M = 2 for all experiments).
  double Multiplier = 2.0;
  /// Slots in the first miniheap of each size class.
  size_t InitialSlots = 64;
  /// Seed for the heap's placement randomness.
  uint64_t Seed = 0;
  /// Guard region after each slab, absorbing forward overflows off the
  /// last slot (stands in for the sparse address space between miniheaps).
  size_t GuardBytes = 4096;
  /// Routes placement and pointer lookup through the pre-PR-1 O(n) code
  /// paths (linear miniheap scan, sorted-range-only lookup).  Exists so
  /// bench/micro_allocators can measure the fast paths against the
  /// original implementation in one run; never enable it in production.
  bool LegacyHotPath = false;
};

/// Identifies one object slot in the heap.
struct ObjectRef {
  unsigned ClassIndex = 0;
  unsigned HeapIndex = 0;
  size_t SlotIndex = 0;

  bool operator==(const ObjectRef &Other) const = default;
};

/// The adaptive DieHard randomized allocator.
class DieHardHeap : public Allocator {
public:
  /// \param Context optional call-context to sample allocation and
  ///        deallocation sites from; may be null (sites record as 0).
  explicit DieHardHeap(const DieHardConfig &Config = DieHardConfig(),
                       const CallContext *Context = nullptr);
  ~DieHardHeap() override;

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *name() const override { return "diehard"; }

  /// Allocates and also reports which slot was chosen (used by DieFast to
  /// run canary checks on the exact slot).  Advances the allocation clock.
  void *allocateWithRef(size_t Size, ObjectRef &RefOut);

  /// \name Two-phase allocation (DieFast building blocks, §3.3)
  /// DieFast must inspect a slot's canary and old metadata *before* the
  /// slot is recycled, so allocation is split: tick the clock, reserve a
  /// random slot (metadata untouched), then either commit it as a fresh
  /// object or mark it bad and reserve another.
  /// @{

  /// Advances the allocation clock and accounts one allocation request.
  void tickAllocationClock(size_t Size);

  /// Reserves a uniformly random free slot of \p ClassIndex: marks it
  /// allocated but leaves its metadata (the previous object's history)
  /// untouched.  Grows the class if needed.  \p HeapOut, when non-null,
  /// receives the owning miniheap (the concurrent front-end caches it so
  /// cached allocations never touch Classes).
  ObjectRef reserveSlot(unsigned ClassIndex, Miniheap **HeapOut = nullptr);

  /// Returns a reserved-but-uncommitted slot to the free pool without
  /// touching metadata or stats: the undo of reserveSlot, used by the
  /// concurrent front-end to flush unconsumed magazine slots.
  void releaseReserved(const ObjectRef &Ref);

  /// Advances the allocation clock to at least \p Time without counting
  /// an allocation.  The concurrent front-end stamps object ids from its
  /// own atomic clock and re-synchronizes the backend clock here whenever
  /// it takes the lock, so FreeTime stamps and miniheap creation times
  /// stay on the same timeline.
  void advanceClockTo(uint64_t Time) {
    if (Time > Clock)
      Clock = Time;
  }

  /// Fills in metadata for a reserved slot as a fresh object of \p Size
  /// bytes, stamped with the current clock and call context.
  void commitAllocation(const ObjectRef &Ref, size_t Size);

  /// Converts a reserved slot into a quarantined bad slot, preserving the
  /// previous object's metadata and contents (bad-object isolation).
  void markBad(const ObjectRef &Ref);

  /// @}

  /// Frees and reports which slot was released; returns false (and counts
  /// the event) for invalid or double frees.  \p SiteOverride, when set,
  /// records that site hash instead of sampling the call context — the
  /// correcting allocator uses it so deferred frees keep the site of the
  /// original free request (§6.3).
  bool deallocateWithRef(void *Ptr, ObjectRef &RefOut,
                         std::optional<SiteId> SiteOverride = std::nullopt);

  /// Frees an already-resolved slot (callers that mapped the pointer
  /// once keep the lookup off the hot path).  Returns false for a double
  /// free.
  bool deallocateResolved(const ObjectRef &Ref,
                          std::optional<SiteId> SiteOverride = std::nullopt);

  /// Permanently withholds a slot from reuse, preserving its contents
  /// (DieFast's bad-object isolation, §3.3).  The slot must be free.
  void quarantine(const ObjectRef &Ref);

  /// Retires the 4 KiB page containing \p PageAddress from the slot
  /// lottery (PR 9: a hardware-fault report implicated it).  Free slots
  /// overlapping the page are quarantined immediately; live slots are
  /// quarantined the moment they are freed.  Because quarantined slots
  /// are marked allocated+bad, random placement — the single draw path
  /// under both the sequential heap and the concurrent front-end's
  /// magazines — can never hand them out again.  Addresses that overlap
  /// no slab (reports imported from another process's address space) are
  /// recorded but retire nothing.  Returns the slots quarantined now.
  size_t retirePage(uintptr_t PageAddress);

  /// True if the page containing \p Address has been retired.
  bool isPageRetired(uintptr_t Address) const;

  /// Pages retired so far (the xterm_retired_pages gauge).
  size_t retiredPageCount() const { return RetiredPages.size(); }

  /// Slots quarantined by page retirement (immediate + on-free).
  size_t retiredSlotCount() const { return RetiredSlots; }

  /// Maps any address within an object slot to the slot.
  std::optional<ObjectRef> findObject(const void *Ptr) const;

  /// A pointer resolved to its slot with the owning miniheap and the
  /// slot's start address already in hand (one lookup serves the whole
  /// free path).
  struct ResolvedObject {
    ObjectRef Ref;
    Miniheap *Heap;
    uint8_t *SlotStart;
  };

  /// Like findObject, but also reports the owning miniheap and slot
  /// start.  When guard regions span at least a page (no ambiguous
  /// pages) this takes the page-directory path only and is safe to call
  /// lock-free, concurrently with allocations on other threads, for
  /// pointers whose slab registration happened-before this call — i.e.
  /// any pointer the allocator previously returned and the program
  /// handed to this thread.  With sub-page guards it may fall back to
  /// the sorted-range search, which requires external serialization.
  std::optional<ResolvedObject> resolvePointer(const void *Ptr) const;

  /// True if \p Ptr points into a currently-allocated (non-bad) slot.
  bool isLivePointer(const void *Ptr) const;

  const Miniheap &miniheap(const ObjectRef &Ref) const {
    return *Classes[Ref.ClassIndex].Heaps[Ref.HeapIndex];
  }
  Miniheap &miniheap(const ObjectRef &Ref) {
    return *Classes[Ref.ClassIndex].Heaps[Ref.HeapIndex];
  }

  uint8_t *objectPointer(const ObjectRef &Ref) {
    return miniheap(Ref).slotPointer(Ref.SlotIndex);
  }
  const uint8_t *objectPointer(const ObjectRef &Ref) const {
    return miniheap(Ref).slotPointer(Ref.SlotIndex);
  }
  const SlotMetadata &objectMetadata(const ObjectRef &Ref) const {
    return miniheap(Ref).slot(Ref.SlotIndex);
  }

  /// Neighboring slots in address order within the same miniheap; the
  /// objects DieFast checks on free (§3.3, "implicit fence-posts").
  std::optional<ObjectRef> previousSlot(const ObjectRef &Ref) const;
  std::optional<ObjectRef> nextSlot(const ObjectRef &Ref) const;

  /// Number of allocations performed to date; doubles as the object-id
  /// counter and as "allocation time" (§3.2, §3.4).
  uint64_t allocationClock() const { return Clock; }

  /// Objects currently allocated (bad slots included, as they occupy
  /// capacity).
  size_t liveObjectCount() const { return LiveObjects; }

  /// Total object slots across all miniheaps of class \p ClassIndex.
  size_t classCapacity(unsigned ClassIndex) const {
    return Classes[ClassIndex].Capacity;
  }

  /// Heap multiplier M.
  double multiplier() const { return Config.Multiplier; }

  /// The configuration this heap was built with.
  const DieHardConfig &config() const { return Config; }

  /// Number of miniheaps in class \p ClassIndex.
  unsigned classHeapCount(unsigned ClassIndex) const {
    return static_cast<unsigned>(Classes[ClassIndex].Heaps.size());
  }

  /// Visits every miniheap (heap-image capture, isolation).
  template <typename CallbackT> void forEachMiniheap(CallbackT Callback) const {
    for (unsigned C = 0; C < Classes.size(); ++C)
      for (unsigned H = 0; H < Classes[C].Heaps.size(); ++H)
        Callback(C, H, *Classes[C].Heaps[H]);
  }

  /// Mutable visit (the concurrent front-end drains per-miniheap
  /// remote-free queues; callers hold the backend lock).
  template <typename CallbackT> void forEachMiniheap(CallbackT Callback) {
    for (unsigned C = 0; C < Classes.size(); ++C)
      for (unsigned H = 0; H < Classes[C].Heaps.size(); ++H)
        Callback(C, H, *Classes[C].Heaps[H]);
  }

  const CallContext *callContext() const { return Context; }

private:
  struct ClassState {
    std::vector<std::unique_ptr<Miniheap>> Heaps;
    /// Inclusive prefix sums of Heaps[i]->numSlots(); CumulativeSlots[i]
    /// is the combined slot count of heaps 0..i.  Grows in lockstep with
    /// Heaps, so a class-global slot index resolves to a miniheap by
    /// binary search instead of a linear walk.
    std::vector<size_t> CumulativeSlots;
    size_t Capacity = 0;
    size_t Live = 0;
    /// floor(Capacity / M): the hot-path growth check compares integers
    /// instead of redoing the multiplier math on every allocation.
    size_t MaxLive = 0;
  };

  /// Adds miniheaps until the class can absorb one more object while
  /// staying at most 1/M full.
  void ensureCapacity(ClassState &Class, unsigned ClassIndex);

  /// Picks a uniformly random free slot across all miniheaps of a class.
  ObjectRef placeRandomly(ClassState &Class, unsigned ClassIndex);

  /// Resolves a class-global slot index to (miniheap, slot) through the
  /// cumulative offset table (branch-free predicate-sum scan; see the
  /// definition for why not a binary search).
  std::pair<unsigned, size_t> resolveClassSlot(const ClassState &Class,
                                               size_t Pick) const;

  /// The pre-directory lookup: binary search over the sorted slab ranges.
  /// Kept as the fallback for ambiguous pages and the legacy toggle.
  std::optional<ObjectRef> findObjectSorted(const uint8_t *Addr) const;

  /// Shared tail of the two deallocation entry points; \p Heap must be
  /// the miniheap \p Ref lives in (resolved exactly once by the caller).
  bool deallocateIn(Miniheap &Heap, const ObjectRef &Ref,
                    std::optional<SiteId> SiteOverride);

  void registerRange(Miniheap *Heap, unsigned ClassIndex, unsigned HeapIndex);

  /// True when any byte of \p Heap's slot \p Slot lies on a retired page.
  bool slotOnRetiredPage(const Miniheap &Heap, size_t Slot) const;

  DieHardConfig Config;
  const CallContext *Context;
  RandomGenerator Rng;
  std::vector<ClassState> Classes;
  uint64_t Clock = 0;
  size_t LiveObjects = 0;

  /// Sorted page-aligned addresses of retired pages (PR 9).  Empty for
  /// nearly every heap, so the free-path check is one branch.
  std::vector<uintptr_t> RetiredPages;
  /// Slots quarantined because their page was retired.
  size_t RetiredSlots = 0;

  /// One slab's object region (guard regions excluded).
  struct Range {
    const uint8_t *Base;
    const uint8_t *End;
    unsigned ClassIndex;
    unsigned HeapIndex;
    /// Owning miniheap, denormalized so a directory hit resolves without
    /// chasing Classes[c].Heaps[h].
    Miniheap *Heap;
  };
  /// Sorted (by base address) index of every slab: the fallback lookup
  /// path and the legacy toggle's only path.
  std::vector<Range> Ranges;
  /// Hard cap on slabs per heap.  Doubling miniheaps mean even a class
  /// grown to 2^MaxSlabs-ish slots stays far below it; the cap buys a
  /// never-reallocated Slabs array, which lock-free readers index
  /// concurrently with registration (entries are fully written before
  /// their page-directory ids publish).
  static constexpr size_t MaxSlabs = 1024;
  /// Append-only copy of every slab in registration order; stable ids for
  /// the page directory.  reserve(MaxSlabs) in the constructor pins the
  /// storage so concurrent directory hits never race a reallocation.
  std::vector<Range> Slabs;

  static constexpr unsigned PageShift = 12;
  /// Sentinel for a page overlapped by more than one slab's object
  /// region; lookups on such pages take the sorted-range fallback.
  static constexpr uint32_t AmbiguousPage = PageTable::NotFound - 1;
  static uintptr_t pageOf(const uint8_t *Addr) {
    return reinterpret_cast<uintptr_t>(Addr) >> PageShift;
  }
  /// 4 KiB page -> index into Slabs (or AmbiguousPage).  Covers every
  /// page any object region overlaps, so a missing key proves the address
  /// is outside the heap.
  PageTable PageDirectory;
};

} // namespace exterminator

#endif // EXTERMINATOR_ALLOC_DIEHARDHEAP_H

//===- alloc/BaselineAllocator.cpp - Lea-style baseline --------------------===//

#include "alloc/BaselineAllocator.h"

#include <bit>
#include <cassert>
#include <cstring>

using namespace exterminator;

// Small bins serve 8-byte-granular sizes up to SmallLimit; large bins
// serve powers of two up to MaxRequest.
static constexpr size_t SmallLimit = 256;
static constexpr size_t MaxRequest = size_t(1) << 20;
static constexpr unsigned NumSmallBins = SmallLimit / 8;   // bins 0..31
static constexpr unsigned FirstLargeShift = 9;             // 512
static constexpr unsigned LastLargeShift = 20;              // 1 MiB
static constexpr unsigned NumBins =
    NumSmallBins + (LastLargeShift - FirstLargeShift + 1);

// Chunk headers carry the bin index plus a magic tag, mirroring dlmalloc's
// boundary tags.
static constexpr uint64_t HeaderMagic = 0x1eaa110cULL << 32;
static constexpr size_t HeaderSize = 8;
static constexpr size_t ArenaSize = size_t(1) << 18; // 256 KiB

BaselineAllocator::BaselineAllocator() : Bins(NumBins, nullptr) {}

BaselineAllocator::~BaselineAllocator() = default;

unsigned BaselineAllocator::binFor(size_t Size) {
  assert(Size > 0 && Size <= MaxRequest && "size out of range");
  if (Size <= SmallLimit)
    return static_cast<unsigned>((Size + 7) / 8) - 1;
  unsigned Shift = std::bit_width(Size - 1);
  if (Shift < FirstLargeShift)
    Shift = FirstLargeShift;
  return NumSmallBins + (Shift - FirstLargeShift);
}

size_t BaselineAllocator::binChunkSize(unsigned Bin) {
  if (Bin < NumSmallBins)
    return (Bin + 1) * 8;
  return size_t(1) << (FirstLargeShift + (Bin - NumSmallBins));
}

void *BaselineAllocator::allocate(size_t Size) {
  if (Size == 0)
    Size = 1;
  if (Size > MaxRequest)
    return nullptr;

  while (ArenaLock.test_and_set(std::memory_order_acquire)) {
  }
  ++Stats.Allocations;
  Stats.BytesRequested += Size;

  const unsigned Bin = binFor(Size);
  void *Ptr;
  if (FreeChunk *Chunk = Bins[Bin]) {
    Bins[Bin] = Chunk->Next;
    uint64_t *Header = reinterpret_cast<uint64_t *>(Chunk) - 1;
    *Header = HeaderMagic | Bin;
    Ptr = Chunk;
  } else {
    Ptr = carve(Bin);
  }
  ArenaLock.clear(std::memory_order_release);
  return Ptr;
}

void BaselineAllocator::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  while (ArenaLock.test_and_set(std::memory_order_acquire)) {
  }
  uint64_t *Header = static_cast<uint64_t *>(Ptr) - 1;
  const uint64_t Tag = *Header;
  if ((Tag & 0xffffffff00000000ULL) != HeaderMagic) {
    // Not one of our live chunks: either a foreign pointer or a double
    // free (freed chunks have their tag cleared).  Real dlmalloc would
    // corrupt itself here; we count and ignore so harness code survives.
    ++Stats.InvalidFrees;
    ArenaLock.clear(std::memory_order_release);
    return;
  }
  const unsigned Bin = static_cast<unsigned>(Tag & 0xffffffffULL);
  assert(Bin < NumBins && "corrupt chunk header");
  *Header = 0; // Clears the tag so a second free is caught above.
  FreeChunk *Chunk = static_cast<FreeChunk *>(Ptr);
  Chunk->Next = Bins[Bin];
  Bins[Bin] = Chunk;
  ++Stats.Deallocations;
  ArenaLock.clear(std::memory_order_release);
}

void *BaselineAllocator::carve(unsigned Bin) {
  const size_t Payload = binChunkSize(Bin);
  const size_t Chunk = HeaderSize + Payload;
  if (Chunk > ArenaRemaining) {
    const size_t NewArena = Chunk > ArenaSize ? Chunk : ArenaSize;
    Arenas.push_back(std::make_unique<uint8_t[]>(NewArena));
    ArenaCursor = Arenas.back().get();
    ArenaRemaining = NewArena;
  }
  uint64_t *Header = reinterpret_cast<uint64_t *>(ArenaCursor);
  *Header = HeaderMagic | Bin;
  void *Ptr = ArenaCursor + HeaderSize;
  ArenaCursor += Chunk;
  ArenaRemaining -= Chunk;
  return Ptr;
}

//===- alloc/BaselineAllocator.h - Lea-style baseline ----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Lea-style segregated-freelist allocator standing in for the GNU libc
/// (ptmalloc/dlmalloc) allocator that Figure 7 normalizes against.  Like
/// dlmalloc it prepends a word-sized boundary header to each chunk,
/// serves small requests from exact-size bins and larger ones from
/// power-of-two bins, and carves fresh chunks from large arenas with a
/// bump pointer.  It makes no reliability guarantees whatsoever — that is
/// the point of the comparison.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ALLOC_BASELINEALLOCATOR_H
#define EXTERMINATOR_ALLOC_BASELINEALLOCATOR_H

#include "alloc/Allocator.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace exterminator {

/// Segregated-freelist allocator (the Figure 7 baseline).
class BaselineAllocator : public Allocator {
public:
  BaselineAllocator();
  ~BaselineAllocator() override;

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *name() const override { return "gnu-libc-baseline"; }

private:
  struct FreeChunk {
    FreeChunk *Next;
  };

  static unsigned binFor(size_t Size);
  static size_t binChunkSize(unsigned Bin);

  /// Carves a fresh chunk (header + payload) for \p Bin from the current
  /// arena, growing it if needed.
  void *carve(unsigned Bin);

  std::vector<std::unique_ptr<uint8_t[]>> Arenas;
  uint8_t *ArenaCursor = nullptr;
  size_t ArenaRemaining = 0;
  std::vector<FreeChunk *> Bins;
  /// ptmalloc2 (the paper-era glibc allocator) serializes every operation
  /// on an arena mutex even in single-threaded programs; model that cost
  /// with an uncontended spinlock.
  std::atomic_flag ArenaLock = ATOMIC_FLAG_INIT;
};

} // namespace exterminator

#endif // EXTERMINATOR_ALLOC_BASELINEALLOCATOR_H

//===- report/PatchReport.h - Patches as bug reports -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable bug reports from runtime patches — the paper's §9
/// future work: "runtime patches contain information that describe the
/// error location and its extent ... we plan to develop a tool to
/// process runtime patches into bug reports with suggested fixes."
///
/// A pad patch *is* a diagnosis: objects from one allocation site are
/// overrun by up to N bytes.  A deferral patch is a diagnosis too: the
/// free at one site runs while the object is still in use, by roughly
/// half the deferral's allocation-time distance.  The report renders
/// these with optional symbolic site names from a SiteRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_REPORT_PATCHREPORT_H
#define EXTERMINATOR_REPORT_PATCHREPORT_H

#include "patch/RuntimePatch.h"

#include <map>
#include <string>

namespace exterminator {

/// Optional symbolic names for site hashes (a debug-info stand-in: real
/// deployments would resolve return addresses through symbols).
class SiteRegistry {
public:
  void name(SiteId Site, std::string Name) {
    Names[Site] = std::move(Name);
  }

  /// The registered name, or a hex rendering of the hash.
  std::string describe(SiteId Site) const;

  size_t size() const { return Names.size(); }

private:
  std::map<SiteId, std::string> Names;
};

/// Renders \p Patches as a bug report with one finding per patch entry,
/// each with an explanation and a suggested fix.
std::string generatePatchReport(const PatchSet &Patches,
                                const SiteRegistry *Registry = nullptr);

} // namespace exterminator

#endif // EXTERMINATOR_REPORT_PATCHREPORT_H

//===- report/PatchReport.cpp - Patches as bug reports ----------------------===//

#include "report/PatchReport.h"

#include <cstdio>

using namespace exterminator;

std::string SiteRegistry::describe(SiteId Site) const {
  auto It = Names.find(Site);
  if (It != Names.end())
    return It->second;
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "site 0x%08x", Site);
  return Buffer;
}

static std::string describeSite(const SiteRegistry *Registry, SiteId Site) {
  if (Registry)
    return Registry->describe(Site);
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "site 0x%08x", Site);
  return Buffer;
}

std::string
exterminator::generatePatchReport(const PatchSet &Patches,
                                  const SiteRegistry *Registry) {
  std::string Report;
  char Line[512];
  unsigned Finding = 0;

  auto Append = [&](const char *Text) { Report += Text; };

  Append("Exterminator bug report\n");
  Append("=======================\n");
  if (Patches.empty()) {
    Append("No errors recorded: the patch set is empty.\n");
    return Report;
  }

  for (const PadPatch &Pad : Patches.pads()) {
    ++Finding;
    std::snprintf(Line, sizeof(Line),
                  "\n[%u] heap-buffer-overflow (write past end)\n",
                  Finding);
    Append(Line);
    std::snprintf(Line, sizeof(Line), "    where:  allocations from %s\n",
                  describeSite(Registry, Pad.AllocSite).c_str());
    Append(Line);
    std::snprintf(Line, sizeof(Line),
                  "    extent: writes up to %u byte(s) beyond the "
                  "requested size\n",
                  Pad.PadBytes);
    Append(Line);
    std::snprintf(Line, sizeof(Line),
                  "    active mitigation: every allocation from this "
                  "site is padded by %u byte(s)\n",
                  Pad.PadBytes);
    Append(Line);
    std::snprintf(Line, sizeof(Line),
                  "    suggested fix: enlarge the buffer by at least %u "
                  "byte(s), or repair the length computation that "
                  "overruns it\n",
                  Pad.PadBytes);
    Append(Line);
  }

  for (const FrontPadPatch &Pad : Patches.frontPads()) {
    ++Finding;
    std::snprintf(Line, sizeof(Line),
                  "\n[%u] heap-buffer-underflow (write before start)\n",
                  Finding);
    Append(Line);
    std::snprintf(Line, sizeof(Line), "    where:  allocations from %s\n",
                  describeSite(Registry, Pad.AllocSite).c_str());
    Append(Line);
    std::snprintf(Line, sizeof(Line),
                  "    extent: writes up to %u byte(s) before the "
                  "buffer's start\n",
                  Pad.PadBytes);
    Append(Line);
    std::snprintf(Line, sizeof(Line),
                  "    active mitigation: allocations from this site are "
                  "front-padded by %u byte(s)\n",
                  Pad.PadBytes);
    Append(Line);
    Append("    suggested fix: repair the negative index or reversed "
           "bounds computation that writes before the buffer\n");
  }

  for (const DeferralPatch &Deferral : Patches.deferrals()) {
    ++Finding;
    std::snprintf(Line, sizeof(Line),
                  "\n[%u] dangling pointer (use after premature free)\n",
                  Finding);
    Append(Line);
    std::snprintf(Line, sizeof(Line), "    allocated at: %s\n",
                  describeSite(Registry, Deferral.AllocSite).c_str());
    Append(Line);
    std::snprintf(Line, sizeof(Line), "    freed at:     %s\n",
                  describeSite(Registry, Deferral.FreeSite).c_str());
    Append(Line);
    // The deferral is 2.(T - tau) + 1, so the observed use-after-free
    // window is at least half of it (§6.2).
    const uint64_t Window = Deferral.DeferTicks / 2;
    std::snprintf(Line, sizeof(Line),
                  "    extent: the object is still used at least %llu "
                  "allocation(s) after this free\n",
                  static_cast<unsigned long long>(Window));
    Append(Line);
    std::snprintf(Line, sizeof(Line),
                  "    active mitigation: frees at this site pair are "
                  "deferred by %llu allocation(s)\n",
                  static_cast<unsigned long long>(Deferral.DeferTicks));
    Append(Line);
    Append("    suggested fix: move the free past the object's last "
           "use, or transfer ownership to the longer-lived consumer\n");
  }

  for (const HardwareFaultReport &Report2 : Patches.hardwareReports()) {
    ++Finding;
    std::snprintf(Line, sizeof(Line),
                  "\n[%u] hardware memory fault (suspected failing DRAM)\n",
                  Finding);
    Append(Line);
    std::snprintf(Line, sizeof(Line),
                  "    where:  physical page 0x%012llx\n",
                  static_cast<unsigned long long>(Report2.PageAddress));
    Append(Line);
    std::string Kinds;
    if (Report2.KindMask & HardwareFaultBitFlip)
      Kinds += "bit-flip ";
    if (Report2.KindMask & HardwareFaultStuckAt)
      Kinds += "stuck-at ";
    if (Report2.KindMask & HardwareFaultRowCluster)
      Kinds += "row-cluster ";
    if (Kinds.empty())
      Kinds = "unknown ";
    std::snprintf(Line, sizeof(Line),
                  "    signature: %swith %llu corruption region(s)\n",
                  Kinds.c_str(),
                  static_cast<unsigned long long>(Report2.EvidenceRegions));
    Append(Line);
    Append("    active mitigation: the page is retired from the slot "
           "lottery (no future allocation lands on it)\n");
    Append("    suggested fix: no code change — schedule the DIMM for "
           "replacement; no allocation site is implicated\n");
  }

  if (Patches.hardwareReportCount() == 0) {
    // Pre-PR-9 rendering, byte-identical for pure-software patch sets.
    std::snprintf(Line, sizeof(Line),
                  "\n%u finding(s): %zu overflow site(s), %zu underflow "
                  "site(s), %zu dangling site pair(s)\n",
                  Finding, Patches.padCount(), Patches.frontPadCount(),
                  Patches.deferralCount());
  } else {
    std::snprintf(Line, sizeof(Line),
                  "\n%u finding(s): %zu overflow site(s), %zu underflow "
                  "site(s), %zu dangling site pair(s), %zu hardware "
                  "page(s)\n",
                  Finding, Patches.padCount(), Patches.frontPadCount(),
                  Patches.deferralCount(), Patches.hardwareReportCount());
  }
  Append(Line);
  return Report;
}

//===- exchange/PatchClient.cpp - Evidence shipping client ------------------===//

#include "exchange/PatchClient.h"

#include <algorithm>
#include <random>

using namespace exterminator;

/// Nonzero random token identifying one summary submission.  Generated
/// when the frame is *encoded*, so every retry of that frame — by a
/// failover transport or a flaky network — carries the same token and
/// the server applies the summary exactly once.
static uint64_t freshSubmissionToken() {
  static std::mt19937_64 Rng([] {
    std::random_device Device;
    return (uint64_t(Device()) << 32) | Device();
  }());
  const uint64_t Token = Rng();
  return Token ? Token : 1;
}

bool PatchClient::queueImages(const ImageEvidence &Evidence) {
  std::vector<uint8_t> Frame =
      encodeFrame(MessageType::SubmitImages, encodeSubmitImages(Evidence));
  if (Frame.empty())
    return false; // evidence exceeds the frame limit
  PendingRequests.push_back(std::move(Frame));
  return true;
}

bool PatchClient::queueSummary(const RunSummary &Summary,
                               unsigned CleanStreak) {
  std::vector<uint8_t> Frame = encodeFrame(
      MessageType::SubmitSummary,
      encodeSubmitSummary(Summary, CleanStreak, freshSubmissionToken()));
  if (Frame.empty())
    return false;
  PendingRequests.push_back(std::move(Frame));
  return true;
}

void PatchClient::noteServerState(uint64_t Instance, uint64_t Epoch) {
  SeenInstance = Instance;
  SeenEpoch = Epoch;
  SeenAnything = true;
}

bool PatchClient::flush() {
  // Bounded chunks: with pipelining, replies to early requests sit
  // unread while later requests are still being written; a chunk keeps
  // that backlog far below any socket buffer so neither peer can end up
  // blocked in send() against the other.
  std::vector<std::vector<uint8_t>> Batch = std::move(PendingRequests);
  PendingRequests.clear();
  bool Ok = true;
  for (size_t Begin = 0; Begin < Batch.size() && Ok;
       Begin += FlushChunk) {
    const size_t End = std::min(Batch.size(), Begin + FlushChunk);
    const std::vector<std::vector<uint8_t>> Chunk(
        std::make_move_iterator(Batch.begin() + Begin),
        std::make_move_iterator(Batch.begin() + End));
    std::vector<std::vector<uint8_t>> Responses;
    if (!Transport.exchange(Chunk, Responses) ||
        Responses.size() != Chunk.size()) {
      Ok = false;
      break;
    }
    for (const std::vector<uint8_t> &Response : Responses) {
      Frame Reply;
      size_t Consumed = 0;
      if (decodeFrame(Response.data(), Response.size(), Reply, Consumed) !=
              FrameError::None ||
          Reply.Type == MessageType::ErrorReply) {
        Ok = false;
        break;
      }
      // Track the server state the replies report so a following
      // syncPatches can skip its round trip.  A success-typed reply
      // whose payload fails to decode is a protocol failure, same as
      // in the one-shot submit paths.
      if (Reply.Type == MessageType::SubmitImagesReply) {
        ImagesReply Decoded;
        if (!decodeImagesReply(Reply.Payload, Decoded)) {
          Ok = false;
          break;
        }
        noteServerState(Decoded.Instance, Decoded.Epoch);
      } else if (Reply.Type == MessageType::SubmitSummaryReply) {
        SummaryReply Decoded;
        if (!decodeSummaryReply(Reply.Payload, Decoded)) {
          Ok = false;
          break;
        }
        noteServerState(Decoded.Instance, Decoded.Epoch);
      }
    }
  }
  return Ok;
}

bool PatchClient::roundTrip(std::vector<uint8_t> Request, Frame &ReplyFrame) {
  std::vector<std::vector<uint8_t>> Responses;
  if (!Transport.exchange({std::move(Request)}, Responses) ||
      Responses.size() != 1)
    return false;
  size_t Consumed = 0;
  if (decodeFrame(Responses[0].data(), Responses[0].size(), ReplyFrame,
                  Consumed) != FrameError::None)
    return false;
  return ReplyFrame.Type != MessageType::ErrorReply;
}

bool PatchClient::submitImages(const ImageEvidence &Evidence,
                               ImagesReply *ReplyOut) {
  std::vector<uint8_t> Request =
      encodeFrame(MessageType::SubmitImages, encodeSubmitImages(Evidence));
  if (Request.empty())
    return false; // evidence exceeds the frame limit
  Frame Reply;
  if (!roundTrip(std::move(Request), Reply) ||
      Reply.Type != MessageType::SubmitImagesReply)
    return false;
  ImagesReply Decoded;
  if (!decodeImagesReply(Reply.Payload, Decoded))
    return false;
  noteServerState(Decoded.Instance, Decoded.Epoch);
  if (ReplyOut)
    *ReplyOut = Decoded;
  return true;
}

bool PatchClient::submitSummary(const RunSummary &Summary,
                                unsigned CleanStreak,
                                CumulativeDiagnosis *DiagnosisOut) {
  Frame Reply;
  if (!roundTrip(encodeFrame(MessageType::SubmitSummary,
                             encodeSubmitSummary(Summary, CleanStreak,
                                                 freshSubmissionToken())),
                 Reply) ||
      Reply.Type != MessageType::SubmitSummaryReply)
    return false;
  SummaryReply Decoded;
  if (!decodeSummaryReply(Reply.Payload, Decoded))
    return false;
  noteServerState(Decoded.Instance, Decoded.Epoch);
  if (DiagnosisOut)
    *DiagnosisOut = std::move(Decoded.Diagnosis);
  return true;
}

bool PatchClient::fetchPatches() {
  Frame Reply;
  if (!roundTrip(encodeFrame(MessageType::FetchPatches,
                             encodeFetchPatches(MirrorEpoch,
                                                MirrorInstance)),
                 Reply) ||
      Reply.Type != MessageType::PatchesReply)
    return false;
  PatchesReply Decoded;
  if (!decodePatchesReply(Reply.Payload, Decoded))
    return false;
  if (Decoded.Modified) {
    Mirror = std::move(Decoded.Patches);
  } else if (MirrorEpoch != Decoded.Epoch ||
             MirrorInstance != Decoded.Instance) {
    return false; // unmodified must mean "exactly what I sent"
  }
  MirrorEpoch = Decoded.Epoch;
  MirrorInstance = Decoded.Instance;
  noteServerState(Decoded.Instance, Decoded.Epoch);
  return true;
}

bool PatchClient::syncPatches() {
  if (SeenAnything && SeenInstance == MirrorInstance &&
      SeenEpoch == MirrorEpoch)
    return true; // the last reply proved the mirror current
  return fetchPatches();
}

bool PatchClient::shutdownServer() {
  Frame Reply;
  return roundTrip(encodeFrame(MessageType::Shutdown, {}), Reply) &&
         Reply.Type == MessageType::ShutdownReply;
}

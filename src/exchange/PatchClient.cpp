//===- exchange/PatchClient.cpp - Evidence shipping client ------------------===//

#include "exchange/PatchClient.h"

#include <algorithm>
#include <random>

using namespace exterminator;

/// Nonzero random token identifying one summary submission.  Generated
/// when the submission is *queued*, so every retry of that submission —
/// by a failover transport, a flaky network, or a version downgrade —
/// carries the same token and the server applies the summary exactly
/// once.
static uint64_t freshSubmissionToken() {
  static std::mt19937_64 Rng([] {
    std::random_device Device;
    return (uint64_t(Device()) << 32) | Device();
  }());
  const uint64_t Token = Rng();
  return Token ? Token : 1;
}

/// The bundle format a peer at \p WireVersion understands: v4 peers
/// take delta bundles, v3 peers predate the delta codec.
static uint32_t bundleVersionFor(uint8_t WireVersion) {
  return WireVersion >= ProtocolVersion ? ImageBundleFormatV2
                                        : ImageBundleFormatV1;
}

bool PatchClient::downgrade() {
  if (PeerVersion <= LegacyProtocolVersion)
    return false;
  PeerVersion = LegacyProtocolVersion;
  return true;
}

std::vector<uint8_t>
PatchClient::encodePending(const PendingRequest &Request,
                           uint8_t Version) const {
  if (Request.Type == MessageType::SubmitImages)
    return encodeFrame(
        MessageType::SubmitImages,
        encodeSubmitImages(Request.Evidence, bundleVersionFor(Version)),
        Version);
  return encodeFrame(MessageType::SubmitSummary,
                     encodeSubmitSummary(Request.Summary, Request.CleanStreak,
                                         Request.Token),
                     Version);
}

bool PatchClient::queueImages(const ImageEvidence &Evidence) {
  PendingRequest Request;
  Request.Type = MessageType::SubmitImages;
  Request.Evidence = Evidence;
  // Validate the frame bound at queue time, against the *legacy*
  // encoding — the larger of the two, so a mid-batch downgrade can
  // never turn an accepted submission unencodable.
  if (encodePending(Request, LegacyProtocolVersion).empty())
    return false; // evidence exceeds the frame limit
  PendingRequests.push_back(std::move(Request));
  return true;
}

bool PatchClient::queueSummary(const RunSummary &Summary,
                               unsigned CleanStreak) {
  PendingRequest Request;
  Request.Type = MessageType::SubmitSummary;
  Request.Summary = Summary;
  Request.CleanStreak = CleanStreak;
  Request.Token = freshSubmissionToken();
  if (encodePending(Request, LegacyProtocolVersion).empty())
    return false;
  PendingRequests.push_back(std::move(Request));
  return true;
}

void PatchClient::noteServerState(uint64_t Instance, uint64_t Epoch) {
  SeenInstance = Instance;
  SeenEpoch = Epoch;
  SeenAnything = true;
}

bool PatchClient::flush() {
  // Bounded chunks: with pipelining, replies to early requests sit
  // unread while later requests are still being written; a chunk keeps
  // that backlog far below any socket buffer so neither peer can end up
  // blocked in send() against the other.
  std::vector<PendingRequest> Batch = std::move(PendingRequests);
  PendingRequests.clear();
  for (size_t Begin = 0; Begin < Batch.size(); Begin += FlushChunk) {
    const size_t End = std::min(Batch.size(), Begin + FlushChunk);
    // A chunk retries at most once, after a downgrade: requests are
    // re-encoded from their parameters (same tokens, legacy bundles),
    // and the rejecting server never processed them.
    for (;;) {
      std::vector<std::vector<uint8_t>> Chunk;
      Chunk.reserve(End - Begin);
      for (size_t I = Begin; I < End; ++I) {
        Chunk.push_back(encodePending(Batch[I], PeerVersion));
        if (Chunk.back().empty())
          return false;
      }
      std::vector<std::vector<uint8_t>> Responses;
      if (!Transport.exchange(Chunk, Responses) ||
          Responses.size() != Chunk.size()) {
        // A pre-v4 server rejects the first pipelined frame and closes;
        // the transport reports wholesale failure but the rejection
        // sits in the received prefix.  Only that evidence downgrades —
        // a bare transport fault stays a failure.
        if (sawVersionRejection(Responses) && downgrade())
          continue;
        return false;
      }
      bool VersionRejected = false;
      bool Ok = true;
      for (const std::vector<uint8_t> &Response : Responses) {
        Frame Reply;
        size_t Consumed = 0;
        if (decodeFrame(Response.data(), Response.size(), Reply,
                        Consumed) != FrameError::None) {
          Ok = false;
          break;
        }
        if (Reply.Type == MessageType::ErrorReply) {
          VersionRejected = isVersionRejection(Reply);
          Ok = false;
          break;
        }
        // Track the server state the replies report so a following
        // syncPatches can skip its round trip.  A success-typed reply
        // whose payload fails to decode is a protocol failure, same as
        // in the one-shot submit paths.
        if (Reply.Type == MessageType::SubmitImagesReply) {
          ImagesReply Decoded;
          if (!decodeImagesReply(Reply.Payload, Decoded)) {
            Ok = false;
            break;
          }
          noteServerState(Decoded.Instance, Decoded.Epoch);
        } else if (Reply.Type == MessageType::SubmitSummaryReply) {
          SummaryReply Decoded;
          if (!decodeSummaryReply(Reply.Payload, Decoded)) {
            Ok = false;
            break;
          }
          noteServerState(Decoded.Instance, Decoded.Epoch);
        }
      }
      if (Ok)
        break;
      if (VersionRejected && downgrade())
        continue;
      return false;
    }
  }
  return true;
}

template <typename BuildPayloadFn>
bool PatchClient::roundTrip(MessageType Type, BuildPayloadFn BuildPayload,
                            Frame &ReplyFrame) {
  // At most two passes: the second runs only after a downgrade, against
  // a server that rejected (and therefore never processed) the first.
  for (;;) {
    std::vector<uint8_t> Request =
        encodeFrame(Type, BuildPayload(PeerVersion), PeerVersion);
    if (Request.empty())
      return false;
    std::vector<std::vector<uint8_t>> Responses;
    if (!Transport.exchange({std::move(Request)}, Responses) ||
        Responses.size() != 1) {
      if (sawVersionRejection(Responses) && downgrade())
        continue;
      return false;
    }
    size_t Consumed = 0;
    if (decodeFrame(Responses[0].data(), Responses[0].size(), ReplyFrame,
                    Consumed) != FrameError::None)
      return false;
    if (ReplyFrame.Type != MessageType::ErrorReply)
      return true;
    if (isVersionRejection(ReplyFrame) && downgrade())
      continue;
    return false;
  }
}

bool PatchClient::submitImages(const ImageEvidence &Evidence,
                               ImagesReply *ReplyOut) {
  Frame Reply;
  if (!roundTrip(MessageType::SubmitImages,
                 [&](uint8_t Version) {
                   return encodeSubmitImages(Evidence,
                                             bundleVersionFor(Version));
                 },
                 Reply) ||
      Reply.Type != MessageType::SubmitImagesReply)
    return false;
  ImagesReply Decoded;
  if (!decodeImagesReply(Reply.Payload, Decoded))
    return false;
  noteServerState(Decoded.Instance, Decoded.Epoch);
  if (ReplyOut)
    *ReplyOut = Decoded;
  return true;
}

bool PatchClient::submitSummary(const RunSummary &Summary,
                                unsigned CleanStreak,
                                CumulativeDiagnosis *DiagnosisOut) {
  // Token minted once, outside the payload builder: a downgrade retry
  // must carry the same token or a replica pair could double-count.
  const uint64_t Token = freshSubmissionToken();
  Frame Reply;
  if (!roundTrip(MessageType::SubmitSummary,
                 [&](uint8_t) {
                   return encodeSubmitSummary(Summary, CleanStreak, Token);
                 },
                 Reply) ||
      Reply.Type != MessageType::SubmitSummaryReply)
    return false;
  SummaryReply Decoded;
  if (!decodeSummaryReply(Reply.Payload, Decoded))
    return false;
  noteServerState(Decoded.Instance, Decoded.Epoch);
  if (DiagnosisOut)
    *DiagnosisOut = std::move(Decoded.Diagnosis);
  return true;
}

bool PatchClient::fetchPatches() {
  Frame Reply;
  if (!roundTrip(MessageType::FetchPatches,
                 [&](uint8_t) {
                   return encodeFetchPatches(MirrorEpoch, MirrorInstance);
                 },
                 Reply) ||
      Reply.Type != MessageType::PatchesReply)
    return false;
  PatchesReply Decoded;
  if (!decodePatchesReply(Reply.Payload, Decoded))
    return false;
  if (Decoded.Modified) {
    Mirror = std::move(Decoded.Patches);
  } else if (MirrorEpoch != Decoded.Epoch ||
             MirrorInstance != Decoded.Instance) {
    return false; // unmodified must mean "exactly what I sent"
  }
  MirrorEpoch = Decoded.Epoch;
  MirrorInstance = Decoded.Instance;
  noteServerState(Decoded.Instance, Decoded.Epoch);
  return true;
}

bool PatchClient::syncPatches() {
  if (SeenAnything && SeenInstance == MirrorInstance &&
      SeenEpoch == MirrorEpoch)
    return true; // the last reply proved the mirror current
  return fetchPatches();
}

bool PatchClient::shutdownServer() {
  Frame Reply;
  return roundTrip(MessageType::Shutdown,
                   [](uint8_t) { return std::vector<uint8_t>(); }, Reply) &&
         Reply.Type == MessageType::ShutdownReply;
}

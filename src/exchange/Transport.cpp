//===- exchange/Transport.cpp - Client transport interface ------------------===//

#include "exchange/Transport.h"

#include "exchange/PatchServer.h"

using namespace exterminator;

ClientTransport::~ClientTransport() = default;

bool LoopbackTransport::exchange(
    const std::vector<std::vector<uint8_t>> &Requests,
    std::vector<std::vector<uint8_t>> &ResponsesOut) {
  ResponsesOut.clear();
  ResponsesOut.reserve(Requests.size());
  for (const std::vector<uint8_t> &Request : Requests) {
    std::vector<uint8_t> Response;
    // A malformed request still yields an ErrorReply frame; the
    // connection-close semantics of byte streams do not apply in
    // process.
    Server.handleFrame(Request, Response);
    ResponsesOut.push_back(std::move(Response));
  }
  return true;
}

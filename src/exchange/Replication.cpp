//===- exchange/Replication.cpp - Leaderless server replication -----------===//

#include "exchange/Replication.h"

#include <chrono>

using namespace exterminator;

ReplicaSet::Peer::Peer()
    : PushedEpoch(ReplicaSet::NeverAcked),
      SeenEpoch(ReplicaSet::NeverAcked) {}

ReplicaSet::ReplicaSet(PatchServer &Local) : Local(Local) {
  Local.attachReplication(this);
}

ReplicaSet::~ReplicaSet() {
  stop();
  Local.attachReplication(nullptr);
}

void ReplicaSet::addPeer(const std::string &Label,
                         std::unique_ptr<ClientTransport> Transport) {
  auto P = std::make_unique<Peer>();
  P->Label = Label;
  P->Transport = std::move(Transport);
  std::lock_guard<std::mutex> Lock(Mutex);
  Peers.push_back(std::move(P));
}

void ReplicaSet::addPeer(const Endpoint &Ep) {
  addPeer(endpointToString(Ep),
          std::make_unique<SocketClientTransport>(Ep, /*ConnectRetries=*/0));
}

size_t ReplicaSet::peerCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Peers.size();
}

ReplicaSetStats ReplicaSet::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

void ReplicaSet::attachMetrics(MetricsRegistry &Registry) {
  Registry.addCollector(
      [this](std::vector<MetricSample> &Out) { collectMetrics(Out); });
}

void ReplicaSet::collectMetrics(std::vector<MetricSample> &Out) const {
  // Fetch the local epoch *before* taking the replica mutex: epoch()
  // locks the server, and Mutex is never held across calls into Local
  // (the lock-order rule in the member comment applies to collectors
  // too).
  const uint64_t LocalEpoch = Local.epoch();
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsRegistry::addCounter(Out, "xterm_replication_records_streamed_total",
                              {}, double(Counters.RecordsStreamed));
  MetricsRegistry::addCounter(Out, "xterm_replication_stream_failures_total",
                              {}, double(Counters.StreamFailures));
  MetricsRegistry::addCounter(Out, "xterm_replication_anti_entropy_rounds_total",
                              {}, double(Counters.AntiEntropyRounds));
  MetricsRegistry::addCounter(Out, "xterm_replication_push_merges_total", {},
                              double(Counters.PushMerges));
  MetricsRegistry::addCounter(Out, "xterm_replication_pull_merges_total", {},
                              double(Counters.PullMerges));
  MetricsRegistry::addCounter(Out, "xterm_replication_queue_overflows_total",
                              {}, double(Counters.QueueOverflows));
  for (const std::unique_ptr<Peer> &P : Peers) {
    const std::string Labels = MetricsRegistry::label("peer", P->Label);
    MetricsRegistry::addGauge(Out, "xterm_replication_queue_depth", Labels,
                              double(P->Outbound.size()));
    const uint64_t Lag = P->PushedEpoch == NeverAcked
                             ? LocalEpoch
                             : (LocalEpoch > P->PushedEpoch
                                    ? LocalEpoch - P->PushedEpoch
                                    : 0);
    MetricsRegistry::addGauge(Out, "xterm_replication_acked_epoch_lag", Labels,
                              double(Lag));
  }
}

void ReplicaSet::enqueueAll(MessageType Type, std::vector<uint8_t> Payload) {
  if (Payload.size() > MaxFramePayload)
    return; // over the frame limit; anti-entropy will carry the state
  bool Notify = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (auto &P : Peers) {
      if (P->Outbound.size() >= MaxQueuedPerPeer) {
        // Bounded queue: drop the oldest record and force the next
        // anti-entropy round to push the full set, so a dropped patch
        // delta is deferred, never lost.  A dropped summary is lost to
        // this peer (it cannot be reconstructed from the merged set);
        // the origin server still holds it durably.
        P->Outbound.pop_front();
        P->PushedEpoch = NeverAcked;
        ++Counters.QueueOverflows;
      }
      P->Outbound.push_back(OutboundRecord{Type, Payload});
      Notify = true;
    }
    WakeFlag = Notify;
  }
  if (Notify)
    Wake.notify_all();
}

void ReplicaSet::onPatchDelta(const PatchSet &Delta) {
  enqueueAll(MessageType::MergePatches, encodeMergePatches(Delta));
}

void ReplicaSet::onSummary(const RunSummary &Summary, unsigned CleanStreak,
                           uint64_t Token) {
  enqueueAll(MessageType::ReplicateSummary,
             encodeSubmitSummary(Summary, CleanStreak, Token));
}

bool ReplicaSet::drainPeer(Peer &P) {
  // Copy the queue head under the lock, ship outside it, pop what was
  // acked.  Records enqueued mid-exchange stay behind the copied batch,
  // so per-peer order is preserved.  Frames are built here, at the
  // peer's negotiated version; a version rejection downgrades the peer
  // and re-frames the same batch once (the rejecting peer never
  // processed it, and summaries keep their origin tokens).
  std::vector<OutboundRecord> Batch;
  uint8_t Version;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Batch.assign(P.Outbound.begin(), P.Outbound.end());
    Version = P.Version;
  }
  if (Batch.empty())
    return true;

  for (;;) {
    std::vector<std::vector<uint8_t>> Frames;
    Frames.reserve(Batch.size());
    for (const OutboundRecord &Record : Batch)
      Frames.push_back(encodeFrame(Record.Type, Record.Payload, Version));

    auto TryDowngrade = [&]() {
      if (Version <= LegacyProtocolVersion)
        return false;
      Version = LegacyProtocolVersion;
      std::lock_guard<std::mutex> Lock(Mutex);
      P.Version = Version;
      return true;
    };

    std::vector<std::vector<uint8_t>> Responses;
    if (!P.Transport->exchange(Frames, Responses) ||
        Responses.size() != Frames.size()) {
      // Downgrade only on evidence: a version rejection in the partial
      // response prefix.  A down peer is a stream failure, not a
      // version mismatch.
      if (sawVersionRejection(Responses) && TryDowngrade())
        continue;
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counters.StreamFailures;
      return false;
    }

    size_t Acked = 0, Rejected = 0;
    bool VersionRejected = false;
    for (const std::vector<uint8_t> &Response : Responses) {
      Frame Reply;
      size_t Consumed = 0;
      if (decodeFrame(Response.data(), Response.size(), Reply, Consumed) !=
          FrameError::None) {
        ++Rejected; // garbled reply: dropped, not retried forever
      } else if (Reply.Type != MessageType::ErrorReply) {
        ++Acked;
      } else {
        if (isVersionRejection(Reply))
          VersionRejected = true;
        ++Rejected; // poison record: dropped, not retried forever
      }
    }
    if (VersionRejected && TryDowngrade())
      continue;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      // The transport delivered every frame, so the whole batch leaves
      // the queue either way; rejects only affect the counters.
      for (size_t I = 0; I < Batch.size() && !P.Outbound.empty(); ++I)
        P.Outbound.pop_front();
      Counters.RecordsStreamed += Acked;
      Counters.StreamFailures += Rejected;
    }
    return Rejected == 0;
  }
}

bool ReplicaSet::drainOnce() {
  size_t Count;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Count = Peers.size();
  }
  bool AllOk = true;
  for (size_t I = 0; I < Count; ++I) {
    Peer *P;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      P = Peers[I].get();
    }
    AllOk = drainPeer(*P) && AllOk;
  }
  return AllOk;
}

size_t ReplicaSet::antiEntropyOnce() {
  const PatchSnapshot Snap = Local.snapshot();
  size_t Count;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.AntiEntropyRounds;
    Count = Peers.size();
  }

  size_t Answered = 0;
  for (size_t I = 0; I < Count; ++I) {
    Peer *P;
    uint64_t PushedEpoch, SeenInstance, SeenEpoch;
    uint8_t Version;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      P = Peers[I].get();
      PushedEpoch = P->PushedEpoch;
      SeenInstance = P->SeenInstance;
      SeenEpoch = P->SeenEpoch;
      Version = P->Version;
    }

    // Push before pull in one batched exchange: the pull's reply then
    // already reflects the push, so the merged result this round is the
    // pairwise join.  Frames encode at the peer's negotiated version —
    // full-set pushes are the biggest frames replication ships, so a v4
    // peer receives them compressed — and a version rejection
    // downgrades and retries once, like every other send path.
    const bool Push = PushedEpoch != Snap.Epoch;
    auto TryDowngrade = [&]() {
      if (Version <= LegacyProtocolVersion)
        return false;
      Version = LegacyProtocolVersion;
      std::lock_guard<std::mutex> Lock(Mutex);
      P->Version = Version;
      return true;
    };

    std::vector<std::vector<uint8_t>> Responses;
    for (;;) {
      std::vector<std::vector<uint8_t>> Requests;
      if (Push)
        Requests.push_back(encodeFrame(MessageType::MergePatches,
                                       encodeMergePatches(Snap.Patches),
                                       Version));
      Requests.push_back(encodeFrame(MessageType::FetchPatches,
                                     encodeFetchPatches(SeenEpoch,
                                                        SeenInstance),
                                     Version));

      Responses.clear();
      if (!P->Transport->exchange(Requests, Responses) ||
          Responses.size() != Requests.size()) {
        if (sawVersionRejection(Responses) && TryDowngrade())
          continue;
        Responses.clear();
        break;
      }
      Frame First;
      size_t Consumed = 0;
      if (decodeFrame(Responses[0].data(), Responses[0].size(), First,
                      Consumed) == FrameError::None &&
          isVersionRejection(First) && TryDowngrade())
        continue;
      break;
    }
    if (Responses.empty())
      continue;
    ++Answered;

    size_t R = 0;
    if (Push) {
      Frame Reply;
      size_t Consumed = 0;
      MergeReply Merge;
      if (decodeFrame(Responses[R].data(), Responses[R].size(), Reply,
                      Consumed) == FrameError::None &&
          Reply.Type == MessageType::MergePatchesReply &&
          decodeMergeReply(Reply.Payload, Merge)) {
        std::lock_guard<std::mutex> Lock(Mutex);
        // The peer now holds everything up to the epoch we serialized;
        // a concurrent local change re-arms the next round.  The
        // reply's (instance, epoch) is NOT recorded as Seen — it
        // describes a peer state (their set joined with ours) this
        // server has not absorbed.
        P->PushedEpoch = Snap.Epoch;
        if (Merge.Changed)
          ++Counters.PushMerges;
      }
      ++R;
    }

    Frame Reply;
    size_t Consumed = 0;
    PatchesReply Pulled;
    if (decodeFrame(Responses[R].data(), Responses[R].size(), Reply,
                    Consumed) != FrameError::None ||
        Reply.Type != MessageType::PatchesReply ||
        !decodePatchesReply(Reply.Payload, Pulled))
      continue;
    if (Pulled.Modified) {
      if (Local.mergePatches(Pulled.Patches)) {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Counters.PullMerges;
      }
    }
    {
      // Now the local set contains the peer's state as of its reply —
      // the pair a converged next round answers "unmodified" to.
      std::lock_guard<std::mutex> Lock(Mutex);
      P->SeenInstance = Pulled.Instance;
      P->SeenEpoch = Pulled.Epoch;
    }
  }
  return Answered;
}

void ReplicaSet::pumpLoop(unsigned IntervalMs) {
  const auto Interval =
      std::chrono::milliseconds(IntervalMs ? IntervalMs : 1);
  auto NextAnti = std::chrono::steady_clock::now() + Interval;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Wake.wait_until(Lock, NextAnti,
                      [this] { return Stopping || WakeFlag; });
      if (Stopping)
        return;
      WakeFlag = false;
    }
    drainOnce();
    const auto Now = std::chrono::steady_clock::now();
    if (Now >= NextAnti) {
      antiEntropyOnce();
      NextAnti = Now + Interval;
    }
  }
}

void ReplicaSet::start(unsigned IntervalMs) {
  if (Background.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = false;
  }
  Background = std::thread([this, IntervalMs] { pumpLoop(IntervalMs); });
}

void ReplicaSet::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Wake.notify_all();
  if (Background.joinable())
    Background.join();
}

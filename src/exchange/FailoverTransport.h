//===- exchange/FailoverTransport.h - Multi-endpoint failover --*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client-side failover over an ordered endpoint list: the transport a
/// deployed Exterminator process points at a replicated patch-server
/// fleet.  Each exchange tries the preferred endpoint first and walks
/// the list on failure, sleeping an exponentially growing, jittered
/// backoff between attempts, within a bounded attempt budget.  Because
/// every server converges to the same merged patch set (replication +
/// anti-entropy) and submissions are retry-safe (max-merge idempotence
/// for patches, dedup tokens for summaries), *any* endpoint is a
/// correct destination — failover needs no coordination, only
/// persistence.
///
/// After failing over, the client's cached (instance, epoch) simply
/// refers to a server the new endpoint is not: the next fetch misses
/// once and transfers the full set — one extra round trip, no protocol.
///
/// The jitter stream is a deterministic xorshift seeded from the
/// policy, so tests can pin that every sleep lands inside
/// [backoff·(1−jitter), backoff] without mocking a clock.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_FAILOVERTRANSPORT_H
#define EXTERMINATOR_EXCHANGE_FAILOVERTRANSPORT_H

#include "exchange/SocketTransport.h"
#include "exchange/Transport.h"

#include <memory>
#include <string>
#include <vector>

namespace exterminator {

/// Retry/backoff policy for FailoverTransport.
struct FailoverPolicy {
  /// Total exchange attempts (across all endpoints) before giving up.
  unsigned MaxAttempts = 8;
  /// Sleep before the first retry; doubles per subsequent failure.
  unsigned BaseBackoffMs = 25;
  /// Backoff ceiling.
  unsigned MaxBackoffMs = 800;
  /// Each sleep is drawn uniformly from [backoff·(1−Jitter), backoff] —
  /// decorrelates a fleet of clients retrying after the same crash.
  double JitterFraction = 0.5;
  /// Seed of the deterministic jitter stream.
  uint64_t Seed = 0x243F6A8885A308D3ull;
  /// When true, successive exchanges start from successive endpoints
  /// (round-robin load spread); when false the transport is sticky —
  /// it stays on the last endpoint that worked.
  bool Rotate = false;
};

struct FailoverStats {
  uint64_t Exchanges = 0;  ///< exchange() calls
  uint64_t Attempts = 0;   ///< inner exchange attempts
  uint64_t Failovers = 0;  ///< attempts moved to a different endpoint
  uint64_t Exhausted = 0;  ///< exchanges that spent the whole budget
};

/// ClientTransport decorator fanning one logical server across an
/// ordered endpoint list.  Not thread-safe (one client, one thread —
/// the same contract as the transports it wraps).
class FailoverTransport : public ClientTransport {
public:
  /// Socket fleet: one SocketClientTransport per endpoint, created with
  /// zero connect retries — this class owns the retry policy.
  FailoverTransport(const std::vector<Endpoint> &Endpoints,
                    const FailoverPolicy &Policy = {});

  /// Injected transports (tests, in-process fleets): borrowed, must
  /// outlive this object.  \p Labels name them in lastError(); padded
  /// with "peer<i>" when short.
  FailoverTransport(const std::vector<ClientTransport *> &Transports,
                    const FailoverPolicy &Policy = {},
                    const std::vector<std::string> &Labels = {});

  bool exchange(const std::vector<std::vector<uint8_t>> &Requests,
                std::vector<std::vector<uint8_t>> &ResponsesOut) override;

  /// Per-endpoint roll-up of the failures behind the last exhausted
  /// exchange ("label: reason; label: reason").
  std::string lastError() const override { return LastError; }

  const FailoverStats &stats() const { return Stats; }

  /// Sleeps (ms) taken during the most recent exchange, in order — what
  /// the backoff-bounds test inspects.
  const std::vector<unsigned> &backoffHistory() const {
    return LastBackoffsMs;
  }

  size_t endpointCount() const { return Slots.size(); }

private:
  struct Slot {
    std::string Label;
    std::unique_ptr<ClientTransport> Owned; ///< socket ctor only
    ClientTransport *Transport = nullptr;
    std::string LastError;
  };

  /// Backoff for the \p Failure-th consecutive failure (0-based):
  /// min(Base·2^Failure, Max), jittered.  Advances the RNG.
  unsigned plannedBackoffMs(unsigned Failure);

  std::vector<Slot> Slots;
  FailoverPolicy Policy;
  FailoverStats Stats;
  std::vector<unsigned> LastBackoffsMs;
  std::string LastError;
  size_t Preferred = 0;     ///< sticky start index
  size_t RotateCursor = 0;  ///< round-robin start index
  uint64_t RngState;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_FAILOVERTRANSPORT_H

//===- exchange/Replication.h - Leaderless server replication --*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leaderless replication for a fleet of patch servers.  Every server
/// runs a ReplicaSet over the full peer mesh; correctness rests on two
/// properties the rest of the system already pins:
///
///  * Patch merges are a max-merge — commutative, associative,
///    idempotent — so patch state is a join-semilattice: servers
///    converge to the same set no matter the delivery order or count,
///    and serialization is canonical (sorted), so converged sets are
///    bit-identical on the wire and on disk.
///  * Run summaries are *not* idempotent (they grow the Bayesian trial
///    history), so each carries its origin's dedup token; a summary
///    reaching a server twice — by any combination of client retry and
///    replica forwarding — applies once.
///
/// Two mechanisms, layered:
///
///  1. **Journal streaming** (hot path): the local server hands every
///     accepted local-origin change to onPatchDelta/onSummary — exactly
///     the records it journals ("XSJ1" records, re-encoded as
///     MergePatches/ReplicateSummary wire frames).  Each peer has a
///     bounded outbound queue drained in batched exchanges.  Forwarded
///     changes are *not* re-forwarded by the receiver (the no-restream
///     rule): a full mesh delivers direct in one hop, and transitive
///     delivery — peer links down, queue overflow, a restarted peer —
///     is anti-entropy's job.
///
///  2. **Anti-entropy** (repair path): periodically, for each peer,
///     push the full local patch set unless the peer already acked the
///     current epoch, and pull the peer's set via FetchPatches keyed on
///     the cached (instance, epoch) — so a converged pair exchanges two
///     tiny frames and no patch bytes.  Pulled sets max-merge into the
///     local server.  Patch state lost from an overflowed stream queue
///     is repaired here; streamed summaries dropped by overflow are
///     lost to the peers (bounded queues must drop something, and
///     summaries cannot be max-merged) — the origin server still holds
///     them durably.
///
/// Epoch bookkeeping: a peer's *own* pushes never tell it what the
/// target's set contains, so push-skipping keys on the local epoch the
/// peer last acked, and pull-skipping keys on the peer's (instance,
/// epoch) — the same staleness pair clients use, which is what makes a
/// restarted peer (fresh instance) automatically re-sync both ways.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_REPLICATION_H
#define EXTERMINATOR_EXCHANGE_REPLICATION_H

#include "exchange/PatchServer.h"
#include "exchange/SocketTransport.h"
#include "exchange/Transport.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace exterminator {

struct ReplicaSetStats {
  uint64_t RecordsStreamed = 0;   ///< journal records acked by a peer
  uint64_t StreamFailures = 0;    ///< per-peer drain attempts that failed
  uint64_t AntiEntropyRounds = 0; ///< antiEntropyOnce() calls
  uint64_t PushMerges = 0;        ///< full-set pushes that changed a peer
  uint64_t PullMerges = 0;        ///< pulls that changed the local set
  uint64_t QueueOverflows = 0;    ///< streamed records dropped (bounded queue)
};

/// One server's replication links to its peers.  Construct around the
/// local server (the constructor attaches itself as the replication
/// sink), add peers, then either start() the background pump or drive
/// drainOnce()/antiEntropyOnce() by hand (what deterministic tests do).
class ReplicaSet : public ReplicationSink {
public:
  explicit ReplicaSet(PatchServer &Local);
  ~ReplicaSet() override;

  ReplicaSet(const ReplicaSet &) = delete;
  ReplicaSet &operator=(const ReplicaSet &) = delete;

  /// Adds a peer behind an owned transport (tests and in-process
  /// fleets use LoopbackTransport here).  Add peers before start().
  void addPeer(const std::string &Label,
               std::unique_ptr<ClientTransport> Transport);

  /// Adds a socket peer (`serve --peer`).  Zero connect retries: a
  /// down peer fails fast and the stream queue + anti-entropy retry.
  void addPeer(const Endpoint &Ep);

  size_t peerCount() const;

  /// \name ReplicationSink (called by the local server, outside its mutex)
  /// @{
  void onPatchDelta(const PatchSet &Delta) override;
  void onSummary(const RunSummary &Summary, unsigned CleanStreak,
                 uint64_t Token) override;
  /// @}

  /// Ships every queued record to every peer (one batched exchange per
  /// peer).  A peer that fails keeps its queue for the next call.
  /// Returns true when every peer acked everything queued.
  bool drainOnce();

  /// One anti-entropy round over all peers (push + pull, batched into
  /// one exchange per peer).  Returns how many peers answered.
  size_t antiEntropyOnce();

  /// Background pump: drain on demand (woken by enqueues), anti-entropy
  /// every \p IntervalMs.
  void start(unsigned IntervalMs = 1000);
  void stop();

  ReplicaSetStats stats() const;

  /// Attaches the observability plane: a pull collector exporting the
  /// replication counters plus per-peer queue depth and acked-epoch lag
  /// gauges (labelled peer="<Label>").  Lag is how many epochs the
  /// local set is ahead of the peer's last acked push (a peer that
  /// never acked lags by the full local epoch).  Attach before serving;
  /// this set must outlive the registry's last snapshot.
  void attachMetrics(MetricsRegistry &Registry);

private:
  void collectMetrics(std::vector<MetricSample> &Out) const;

  /// One queued replication record: the message type and its payload
  /// bytes.  Frames are built per peer at drain time, at whatever wire
  /// version that peer negotiated — a mixed-version fleet streams the
  /// same records compressed to v4 peers and raw to v3 ones.
  struct OutboundRecord {
    MessageType Type;
    std::vector<uint8_t> Payload;
  };

  struct Peer {
    std::string Label;
    std::unique_ptr<ClientTransport> Transport;
    /// Replication records awaiting this peer, oldest first.
    std::deque<OutboundRecord> Outbound;
    /// Wire version this peer speaks (sticky downgrade, same trigger
    /// set as PatchClient: transport failure or a version-rejection
    /// ErrorReply while we were speaking v4).
    uint8_t Version = ProtocolVersion;
    /// Local epoch this peer last acked a full-set push for;
    /// NeverAcked until then.
    uint64_t PushedEpoch;
    /// The peer's identity, for pull staleness (client semantics).
    uint64_t SeenInstance = 0;
    uint64_t SeenEpoch;
    Peer();
  };

  static constexpr uint64_t NeverAcked = ~uint64_t(0);
  /// Outbound bound per peer: past this the oldest record is dropped
  /// and PushedEpoch reset so the next anti-entropy round pushes the
  /// full set (patch deltas are thereby never lost, only deferred).
  static constexpr size_t MaxQueuedPerPeer = 1024;

  void enqueueAll(MessageType Type, std::vector<uint8_t> Payload);
  bool drainPeer(Peer &P);
  void pumpLoop(unsigned IntervalMs);

  PatchServer &Local;
  /// Guards Peers' queues and cursors plus Counters; never held across
  /// transport IO or calls into Local.
  mutable std::mutex Mutex;
  std::condition_variable Wake;
  bool WakeFlag = false;
  bool Stopping = false;
  std::vector<std::unique_ptr<Peer>> Peers;
  ReplicaSetStats Counters;
  std::thread Background;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_REPLICATION_H

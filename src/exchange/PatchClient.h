//===- exchange/PatchClient.h - Evidence shipping client -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the patch exchange: batches evidence (heap-image
/// sets and run summaries), ships it over any ClientTransport, and keeps
/// a local mirror of the server's merged patch set keyed by epoch.
///
/// Batching matters on real transports: a deployed process queues the
/// evidence of several runs and flushes once; frames pipeline in
/// bounded chunks (one connection per 32-frame chunk, so a thousand
/// queued summaries cost a handful of connections, not a thousand).  Fetches are
/// incremental by (instance, epoch) — the common case ("nothing new")
/// is a 17-byte reply payload with no patch set in it, and syncPatches
/// skips even that when the last submission reply already proved the
/// mirror current.
///
/// Version negotiation (v4): the client speaks the newest protocol
/// until this peer proves it cannot — the transport fails mid-exchange
/// (a pre-v4 server closes after rejecting the first frame) or an
/// ErrorReply says "unknown protocol version" — then re-encodes at v3
/// and sticks there for the life of this client.  Queued evidence is
/// stored as *parameters*, not frames, so a downgrade re-encodes the
/// same batch (same dedup tokens, v1 bundles for the legacy peer) and
/// retries once; the retry is safe because a server that rejected the
/// version never processed the payload, summaries carry their original
/// tokens, and patch merges are idempotent.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_PATCHCLIENT_H
#define EXTERMINATOR_EXCHANGE_PATCHCLIENT_H

#include "exchange/Transport.h"
#include "exchange/WireProtocol.h"

#include <algorithm>
#include <optional>

namespace exterminator {

/// Batching, epoch-caching client of a PatchServer.
class PatchClient {
public:
  /// Epoch value meaning "I hold nothing" — never equal to a server
  /// epoch, so the first fetch always transfers.
  static constexpr uint64_t NeverFetched = ~uint64_t(0);

  explicit PatchClient(ClientTransport &Transport) : Transport(Transport) {}

  /// \name Batched submission
  /// queue* encodes evidence into the pending batch; flush() ships it
  /// in bounded chunks (FlushChunk frames per transport exchange, so
  /// unread pipelined replies can never outgrow socket buffers and
  /// deadlock a write-write pair).
  /// @{
  /// Returns false (queueing nothing) when the encoded evidence exceeds
  /// the wire frame limit — submit fewer images per evidence set.
  bool queueImages(const ImageEvidence &Evidence);
  bool queueSummary(const RunSummary &Summary, unsigned CleanStreak);
  size_t pendingCount() const { return PendingRequests.size(); }
  /// Ships the batch; returns false on transport failure or any error
  /// reply (the batch is dropped either way — evidence submission is
  /// idempotent under max-merge, so callers just re-collect).
  bool flush();
  /// @}

  /// \name One-shot submission
  /// @{
  /// Submits one image-evidence set; on success optionally reports how
  /// many findings isolation derived.
  bool submitImages(const ImageEvidence &Evidence,
                    ImagesReply *ReplyOut = nullptr);
  /// Submits one run summary; on success optionally reports the
  /// classifier's findings (what a local submitSummary would return).
  bool submitSummary(const RunSummary &Summary, unsigned CleanStreak,
                     CumulativeDiagnosis *DiagnosisOut = nullptr);
  /// @}

  /// Pulls the server's patch set if it changed since the last fetch;
  /// returns false on transport/protocol failure.  On success patches()
  /// and epoch() reflect the server.
  bool fetchPatches();

  /// fetchPatches, skipped entirely when the last submission reply
  /// already proved the mirror current (every reply carries the
  /// server's (instance, epoch); a driver that just submitted knows
  /// whether anything changed without another round trip).
  bool syncPatches();

  /// Asks the server to stop serving (admin; used by `xtermtool
  /// shutdown` and test teardown).
  bool shutdownServer();

  /// Caps the wire version this client speaks (the "force a legacy
  /// client" test knob; also clamps the starting peer version).
  void setMaxWireVersion(uint8_t Version) {
    MaxVersion = Version;
    PeerVersion = std::min(PeerVersion, Version);
  }

  /// The version this client currently believes the peer speaks
  /// (observability: tests pin the sticky downgrade through this).
  uint8_t peerVersion() const { return PeerVersion; }

  /// Last fetched merged patch set (empty before the first fetch).
  const PatchSet &patches() const { return Mirror; }
  /// Epoch of patches(); NeverFetched before the first fetch.
  uint64_t epoch() const { return MirrorEpoch; }
  /// Server instance patches() came from; 0 before the first fetch.
  uint64_t serverInstance() const { return MirrorInstance; }

private:
  /// One queued submission, stored as parameters so a version downgrade
  /// can re-encode it (same token, the right bundle format) instead of
  /// replaying stale bytes.
  struct PendingRequest {
    MessageType Type = MessageType::SubmitSummary;
    ImageEvidence Evidence;  ///< SubmitImages
    RunSummary Summary;      ///< SubmitSummary
    unsigned CleanStreak = 0;
    uint64_t Token = 0; ///< minted at queue time; stable across retries
  };

  /// Encodes \p Request as a frame at \p Version (bundle format coupled
  /// to the wire version for image submissions).
  std::vector<uint8_t> encodePending(const PendingRequest &Request,
                                     uint8_t Version) const;

  /// Ships one request (re-encoding \p Payload via \p BuildPayload at
  /// the current peer version) and decodes the single reply frame into
  /// \p ReplyFrame; returns false on transport failure or ErrorReply.
  /// A version rejection downgrades and retries once.
  template <typename BuildPayloadFn>
  bool roundTrip(MessageType Type, BuildPayloadFn BuildPayload,
                 Frame &ReplyFrame);

  /// Sticks this peer at the legacy version; false when already there
  /// (so a rejection loop terminates after one retry).
  bool downgrade();

  /// Records the (instance, epoch) a submission reply reported.
  void noteServerState(uint64_t Instance, uint64_t Epoch);

  /// Frames per transport exchange in flush() (bounds pipelined unread
  /// replies; see flush()).
  static constexpr size_t FlushChunk = 32;

  ClientTransport &Transport;
  std::vector<PendingRequest> PendingRequests;
  /// Version this client encodes at for this peer (sticky downgrade).
  uint8_t PeerVersion = ProtocolVersion;
  uint8_t MaxVersion = ProtocolVersion;
  PatchSet Mirror;
  uint64_t MirrorEpoch = NeverFetched;
  uint64_t MirrorInstance = 0;
  /// Latest (instance, epoch) any reply reported; what syncPatches
  /// compares against the mirror.
  uint64_t SeenInstance = 0;
  uint64_t SeenEpoch = NeverFetched;
  bool SeenAnything = false;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_PATCHCLIENT_H

//===- exchange/PatchServer.h - Evidence ingestion service -----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The patch server: a DiagnosisPipeline behind the wire protocol.  It is
/// the fleet-scale form of §6.4's collaborative correction — many
/// processes observe errors independently, ship their evidence here, and
/// every client pulls back one merged, versioned patch set covering all
/// observed errors.
///
/// The server core is transport-agnostic: handleFrame maps one request
/// frame to one response frame.  The in-process loopback transport calls
/// it directly (deterministic; what tests and the collaborative bench
/// use); SocketPatchServer pumps it from an accept/worker loop.  All
/// entry points are thread-safe — concurrent connections serialize on
/// the pipeline mutex, which is the merge order independence the
/// PatchMerge tests already pin (max-merge commutes).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_PATCHSERVER_H
#define EXTERMINATOR_EXCHANGE_PATCHSERVER_H

#include "exchange/WireProtocol.h"

#include <atomic>
#include <cstdint>
#include <mutex>

namespace exterminator {

/// Ingestion counters (observability for the bench and the CLI).
struct PatchServerStats {
  uint64_t ImagesIngested = 0;
  uint64_t SummariesIngested = 0;
  uint64_t FetchesServed = 0;
  uint64_t FetchesUnmodified = 0;
  uint64_t FramesRejected = 0;
};

/// Wraps a DiagnosisPipeline behind the framed wire protocol.
class PatchServer {
public:
  explicit PatchServer(const DiagnosisConfig &Config = {});

  /// Seeds the pipeline's active set (resuming a server from a patch
  /// file on disk).
  void seedPatches(const PatchSet &Initial);

  /// Handles one request frame, producing exactly one response frame
  /// (an ErrorReply for anything malformed — adversarial input never
  /// crashes, it answers).  Returns false when the request could not be
  /// parsed as a frame at all, in which case a byte-stream transport
  /// cannot resynchronize and should close the connection after sending
  /// the response.
  bool handleFrame(const uint8_t *Request, size_t Size,
                   std::vector<uint8_t> &ResponseOut);
  bool handleFrame(const std::vector<uint8_t> &Request,
                   std::vector<uint8_t> &ResponseOut) {
    return handleFrame(Request.data(), Request.size(), ResponseOut);
  }

  /// A Shutdown frame was accepted; socket front-ends stop serving.
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_acquire);
  }

  /// Current merged patch set + epoch (what PatchesReply serves).
  PatchSnapshot snapshot() const;

  PatchServerStats stats() const;

  /// Random identity of this server process.  Epochs are only
  /// comparable within one instance; clients key staleness on the
  /// (instance, epoch) pair so a restarted server (epoch back at 0)
  /// can never collide with a cached epoch.
  uint64_t instance() const { return Instance; }

private:
  std::vector<uint8_t> dispatch(const Frame &Request);

  mutable std::mutex Mutex;
  DiagnosisPipeline Pipeline;
  PatchServerStats Stats;
  uint64_t Instance;
  std::atomic<bool> ShutdownFlag{false};
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_PATCHSERVER_H

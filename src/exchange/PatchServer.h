//===- exchange/PatchServer.h - Evidence ingestion service -----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The patch server: a DiagnosisPipeline behind the wire protocol.  It is
/// the fleet-scale form of §6.4's collaborative correction — many
/// processes observe errors independently, ship their evidence here, and
/// every client pulls back one merged, versioned patch set covering all
/// observed errors.
///
/// The server core is transport-agnostic: handleFrame maps one request
/// frame to one response frame.  The in-process loopback transport calls
/// it directly (deterministic; what tests and the collaborative bench
/// use); SocketPatchServer pumps it from an accept/worker loop.  All
/// entry points are thread-safe — concurrent connections serialize on
/// the pipeline mutex, which is the merge order independence the
/// PatchMerge tests already pin (max-merge commutes).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_PATCHSERVER_H
#define EXTERMINATOR_EXCHANGE_PATCHSERVER_H

#include "exchange/WireProtocol.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

namespace exterminator {

class StateStore;

/// Where a server forwards its locally accepted state changes so replica
/// peers can apply them too (implemented by ReplicaSet).  Only *local*
/// origins stream — a change that arrived via MergePatches or
/// ReplicateSummary is never re-forwarded, which is what keeps a full
/// mesh loop-free; transitive propagation is anti-entropy's job.
/// Callbacks run outside the server mutex and must not re-enter the
/// server synchronously on the same thread.
class ReplicationSink {
public:
  virtual ~ReplicationSink();

  /// A patch-set delta the local server just merged (an image
  /// submission's isolation result, or a seed file).
  virtual void onPatchDelta(const PatchSet &Delta) = 0;

  /// A run summary the local server just accepted from a client,
  /// with the client's dedup token (0 if the client sent none).
  virtual void onSummary(const RunSummary &Summary, unsigned CleanStreak,
                         uint64_t Token) = 0;
};

/// Ingestion counters (observability for the bench and the CLI).
struct PatchServerStats {
  uint64_t ImagesIngested = 0;
  uint64_t SummariesIngested = 0;
  uint64_t FetchesServed = 0;
  uint64_t FetchesUnmodified = 0;
  uint64_t FramesRejected = 0;
  /// Durable-state counters (zero unless a StateStore is attached).
  uint64_t JournalAppends = 0;
  uint64_t SnapshotsWritten = 0;
  uint64_t PersistFailures = 0;
  /// Replication counters (zero unless this server has peers).
  uint64_t MergesIngested = 0;       ///< MergePatches frames accepted
  uint64_t ReplicatedSummaries = 0;  ///< ReplicateSummary frames applied
  uint64_t DuplicatesSuppressed = 0; ///< summary tokens seen twice
  /// Observability counters.
  uint64_t StatsServed = 0; ///< Stats frames answered
};

/// Wraps a DiagnosisPipeline behind the framed wire protocol.
class PatchServer {
public:
  explicit PatchServer(const DiagnosisConfig &Config = {});

  /// Seeds the pipeline's active set (resuming a server from a patch
  /// file on disk).  With a state store attached, a seed that changes
  /// the active set is journaled like any other submission — so attach
  /// first, then seed: the seed max-merges *into* the restored state
  /// (restored state is the base and keeps its epoch; the seed only
  /// ever adds or widens patches).
  void seedPatches(const PatchSet &Initial);

  /// Attaches durable state: restores \p Store's snapshot, replays its
  /// journal (verifying each record's epoch — a mismatch means the
  /// journal does not belong to the snapshot), writes a fresh compacting
  /// snapshot, and from then on journals every accepted state-changing
  /// submission, re-snapshotting every \p SnapshotInterval journal
  /// appends and on persistNow().  Returns false (serving from it would
  /// lose or fabricate history) on corrupt state, a replay epoch
  /// conflict, or snapshot I/O failure; \p ErrorOut names the reason.
  ///
  /// Restart semantics: a recovered server keeps the epoch it crashed
  /// with, but this process's instance id is fresh — so a client holding
  /// the pre-crash (instance, epoch) re-fetches exactly once and is
  /// current again.
  bool attachState(StateStore &Store, unsigned SnapshotInterval = 64,
                   std::string *ErrorOut = nullptr);

  /// Attaches the replication sink that receives locally accepted state
  /// changes (see ReplicationSink).  Attach before serving; pass
  /// nullptr to detach.
  void attachReplication(ReplicationSink *Sink) { Replica = Sink; }

  /// Max-merges \p Delta into the active set as a *remote-origin*
  /// change: journaled like any submission but never forwarded to the
  /// replication sink (the anti-entropy pull path; the wire-side
  /// MergePatches handler is the same logic).  Returns true when the
  /// merge changed the active set.
  bool mergePatches(const PatchSet &Delta);

  /// Snapshots the current state to the attached store (shutdown path,
  /// and the every-N compaction); true when no store is attached or the
  /// snapshot succeeded.  Serialization and the snapshot write happen
  /// under the server mutex — the compaction pause that buys the
  /// journal its bounded replay; per-submission journal appends never
  /// pay it.
  bool persistNow();

  /// The full diagnostic state (what snapshots persist): epoch, active
  /// set, cumulative trials and Bayes sums.  Two servers with equal
  /// serializeState() bytes are bit-identical diagnostically.
  std::vector<uint8_t> serializeState() const;

  /// Handles one request frame, producing exactly one response frame
  /// (an ErrorReply for anything malformed — adversarial input never
  /// crashes, it answers).  Returns false when the request could not be
  /// parsed as a frame at all, in which case a byte-stream transport
  /// cannot resynchronize and should close the connection after sending
  /// the response.
  bool handleFrame(const uint8_t *Request, size_t Size,
                   std::vector<uint8_t> &ResponseOut);
  bool handleFrame(const std::vector<uint8_t> &Request,
                   std::vector<uint8_t> &ResponseOut) {
    return handleFrame(Request.data(), Request.size(), ResponseOut);
  }

  /// Caps the wire version this server accepts (default: the current
  /// ProtocolVersion).  handleFrame answers frames above the cap with
  /// the same "unknown protocol version" ErrorReply-and-close a real
  /// pre-v4 server produces — the test knob for mixed-version fleets.
  void setMaxWireVersion(uint8_t Version) { MaxWireVersion = Version; }

  /// A Shutdown frame was accepted; socket front-ends stop serving.
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_acquire);
  }

  /// Current merged patch set + epoch (what PatchesReply serves).
  PatchSnapshot snapshot() const;

  /// Runs accumulated in the cumulative (§5) state — observability for
  /// the CLI's restore banner.
  uint64_t cumulativeRuns() const;

  PatchServerStats stats() const;

  /// Current epoch of the active patch set (one mutex acquisition; the
  /// cheap accessor observability collectors read *before* taking their
  /// own locks — see ReplicaSet::attachMetrics).
  uint64_t epoch() const;

  /// Attaches the observability plane: registers a collector exporting
  /// this server's counters and its pipeline's diagnostic metrics, and
  /// makes Stats requests answer with \p Registry's full snapshot
  /// (every subsystem that attached to it) instead of only this
  /// server's own samples.  Attach before serving; this server must
  /// outlive the registry's last snapshot.
  void attachMetrics(MetricsRegistry &Registry);

  /// Appends this server's samples (ingestion counters plus the
  /// pipeline's collectMetrics) — what the registry collector pulls,
  /// and what a Stats request falls back to when no registry is
  /// attached.
  void collectMetrics(std::vector<MetricSample> &Out) const;

  /// Random identity of this server process.  Epochs are only
  /// comparable within one instance; clients key staleness on the
  /// (instance, epoch) pair so a restarted server (epoch back at 0)
  /// can never collide with a cached epoch.
  uint64_t instance() const { return Instance; }

private:
  std::vector<uint8_t> dispatch(const Frame &Request);

  /// Drains queued journal records to the attached store and
  /// re-snapshots when the interval is due.  Called with no locks held
  /// (the journal IO must never stall fetches waiting on Mutex).
  void persistQueued();

  /// Records \p Token in the duplicate-suppression window; returns
  /// false when it was already there (a retry to suppress).  Token 0 is
  /// always fresh.  Call under Mutex.
  bool noteToken(uint64_t Token);

  mutable std::mutex Mutex;
  DiagnosisPipeline Pipeline;
  PatchServerStats Stats;
  uint64_t Instance;
  /// Highest wire version handleFrame accepts (see setMaxWireVersion).
  uint8_t MaxWireVersion = ProtocolVersion;
  std::atomic<bool> ShutdownFlag{false};
  /// Durable state (optional; guarded by Mutex for attach-time writes,
  /// internally synchronized for enqueue/drain).
  StateStore *Store = nullptr;
  unsigned SnapshotInterval = 64;
  /// Replication sink (optional; set before serving).
  ReplicationSink *Replica = nullptr;
  /// Observability registry (optional; set before serving).  Stats
  /// requests snapshot it *outside* Mutex — collectors take their own
  /// subsystem locks, this server's included.
  MetricsRegistry *Metrics = nullptr;
  /// Two-generation token window: lookups hit both sets, inserts go to
  /// Current; when Current fills, Previous is dropped and the sets
  /// rotate.  Bounds memory while keeping any token for at least
  /// TokenWindow further submissions — far past any retry budget.
  static constexpr size_t TokenWindow = 4096;
  std::unordered_set<uint64_t> TokensCurrent, TokensPrevious;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_PATCHSERVER_H

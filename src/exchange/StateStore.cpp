//===- exchange/StateStore.cpp - Durable exchange state --------------------===//

#include "exchange/StateStore.h"

#include "exchange/WireProtocol.h"
#include "patch/PatchIO.h"
#include "support/Serializer.h"

#include <sys/stat.h>
#include <unistd.h>
#include <utility>

using namespace exterminator;

static constexpr uint32_t SnapshotMagic = 0x58535431; // "XST1"
static constexpr uint32_t JournalMagic = 0x58534A31;  // "XSJ1"
static constexpr uint8_t StateVersion = 1;
/// Journal header: magic + version + generation.
static constexpr size_t JournalHeaderBytes = 4 + 1 + 8;
/// Record size bound: protects the loader from sizing a buffer off a
/// corrupt length prefix (the same reasoning as MaxFramePayload, and
/// journal records are re-encodings of wire payloads anyway).
static constexpr uint32_t MaxJournalRecordBytes = MaxFramePayload;

StateStore::StateStore(const std::string &Directory) : Dir(Directory) {
  // Best-effort create; an unusable directory surfaces as a failed
  // load/snapshot, which callers already have to handle.
  ::mkdir(Dir.c_str(), 0755);
}

StateStore::~StateStore() { closeJournal(); }

std::string StateStore::snapshotPath() const { return Dir + "/snapshot.xst"; }
std::string StateStore::journalPath() const { return Dir + "/journal.xsj"; }

uint64_t StateStore::appendedSinceSnapshot() const {
  return Appended.load(std::memory_order_relaxed);
}

void StateStore::closeJournal() {
  if (Journal) {
    std::fclose(Journal);
    Journal = nullptr;
  }
}

bool StateStore::openJournalForAppend() {
  Journal = std::fopen(journalPath().c_str(), "ab");
  return Journal != nullptr;
}

static std::vector<uint8_t>
encodeRecord(const StateStore::JournalRecord &Record) {
  ByteWriter Writer;
  Writer.writeU8(Record.RecordKind);
  Writer.writeU64(Record.EpochAfter);
  if (Record.RecordKind == StateStore::JournalRecord::PatchesKind) {
    Writer.writeBlob(serializePatchSet(Record.PatchDelta));
  } else {
    Writer.writeVarU64(Record.CleanStreak);
    Writer.writeBlob(serializeRunSummary(Record.Summary));
  }
  return Writer.buffer();
}

static bool decodeRecord(const uint8_t *Data, size_t Size,
                         StateStore::JournalRecord &Out) {
  ByteReader Reader(Data, Size);
  Out.RecordKind = Reader.readU8();
  Out.EpochAfter = Reader.readU64();
  if (Out.RecordKind == StateStore::JournalRecord::PatchesKind) {
    if (!deserializePatchSet(Reader.readBlob(), Out.PatchDelta))
      return false;
  } else if (Out.RecordKind == StateStore::JournalRecord::SummaryKind) {
    Out.CleanStreak = static_cast<unsigned>(Reader.readVarU64());
    if (!deserializeRunSummary(Reader.readBlob(), Out.Summary))
      return false;
  } else {
    return false;
  }
  return !Reader.failed() && Reader.atEnd();
}

StateStore::LoadResult
StateStore::load(std::vector<uint8_t> &SnapshotStateOut,
                 std::vector<JournalRecord> &RecordsOut) {
  SnapshotStateOut.clear();
  RecordsOut.clear();

  std::vector<uint8_t> SnapBytes;
  const bool HaveSnapshot = readFileBytes(snapshotPath(), SnapBytes);
  std::vector<uint8_t> JournalBytes;
  const bool HaveJournal = readFileBytes(journalPath(), JournalBytes);

  if (!HaveSnapshot) {
    // A journal without its snapshot means the directory lost a file —
    // replaying deltas against empty state would fabricate a history.
    return HaveJournal ? LoadResult::Corrupt : LoadResult::Fresh;
  }

  // The trailing checksum covers everything before it, so a truncated
  // or bit-flipped snapshot is rejected before any field is trusted.
  if (SnapBytes.size() <= 4)
    return LoadResult::Corrupt;
  const uint32_t StoredCheck =
      readFrameU32(SnapBytes.data() + SnapBytes.size() - 4);
  if (frameChecksum(SnapBytes.data(), SnapBytes.size() - 4) != StoredCheck)
    return LoadResult::Corrupt;
  ByteReader Reader(SnapBytes.data(), SnapBytes.size() - 4);
  if (Reader.readU32() != SnapshotMagic || Reader.readU8() != StateVersion)
    return LoadResult::Corrupt;
  const uint64_t SnapshotGen = Reader.readU64();
  std::vector<uint8_t> State = Reader.readBlob();
  if (Reader.failed() || !Reader.atEnd())
    return LoadResult::Corrupt;

  if (HaveJournal) {
    // The journal header is only ever written atomically (the reset is
    // a crash-safe replace), so a short or mis-magicked header means
    // external corruption; its records carried acknowledged
    // submissions, so refuse rather than silently dropping them.
    if (JournalBytes.size() < JournalHeaderBytes)
      return LoadResult::Corrupt;
    ByteReader Header(JournalBytes.data(), JournalHeaderBytes);
    const uint32_t Magic = Header.readU32();
    const uint8_t Version = Header.readU8();
    const uint64_t JournalGen = Header.readU64();
    if (Magic != JournalMagic || Version != StateVersion)
      return LoadResult::Corrupt;
    {
      // A journal generation *ahead* of the snapshot cannot come from
      // this class's write ordering (snapshot first, then journal
      // reset); the directory mixes state from different servers.
      if (JournalGen > SnapshotGen)
        return LoadResult::Corrupt;
      if (JournalGen == SnapshotGen) {
        // Stale generations (JournalGen < SnapshotGen) are the normal
        // crash window between snapshot rename and journal reset: the
        // records are already inside the snapshot, so skip them.
        size_t Offset = JournalHeaderBytes;
        while (JournalBytes.size() - Offset >= 8) {
          const uint32_t Length = readFrameU32(JournalBytes.data() + Offset);
          if (Length > MaxJournalRecordBytes)
            break;
          if (JournalBytes.size() - Offset - 4 < uint64_t(Length) + 4)
            break; // torn tail: the record a crash interrupted
          const uint8_t *Record = JournalBytes.data() + Offset + 4;
          if (frameChecksum(Record, Length) != readFrameU32(Record + Length))
            break;
          JournalRecord Decoded;
          if (!decodeRecord(Record, Length, Decoded))
            break;
          RecordsOut.push_back(std::move(Decoded));
          Offset += 4 + size_t(Length) + 4;
        }
      }
    }
  }

  Generation = SnapshotGen;
  SnapshotStateOut = std::move(State);
  return LoadResult::Restored;
}

bool StateStore::writeSnapshot(const std::vector<uint8_t> &PipelineState) {
  std::lock_guard<std::mutex> JournalLock(JournalMutex);
  {
    // Enqueued-but-undrained records were applied (and enqueued) under
    // the caller's application lock before the state was serialized, so
    // the snapshot already contains their effects — journaling them on
    // top of it would replay them twice.
    std::lock_guard<std::mutex> QueueLock(QueueMutex);
    Queue.clear();
  }
  closeJournal();

  const uint64_t NextGen = Generation + 1;
  ByteWriter Writer;
  Writer.writeU32(SnapshotMagic);
  Writer.writeU8(StateVersion);
  Writer.writeU64(NextGen);
  Writer.writeBlob(PipelineState);
  Writer.writeU32(frameChecksum(Writer.buffer().data(), Writer.size()));
  if (!writeFileBytes(snapshotPath(), Writer.buffer()))
    return false;
  Generation = NextGen;

  // Reset the journal to the new generation.  A crash between the two
  // writeFileBytes calls leaves a stale-generation journal that load()
  // ignores; a failure here leaves Journal closed, so drains fail loudly
  // instead of appending records the next load would mispair.
  ByteWriter Header;
  Header.writeU32(JournalMagic);
  Header.writeU8(StateVersion);
  Header.writeU64(NextGen);
  if (!writeFileBytes(journalPath(), Header.buffer()))
    return false;
  Appended.store(0, std::memory_order_relaxed);
  JournalFailed = false;
  return openJournalForAppend();
}

void StateStore::enqueue(const JournalRecord &Record) {
  std::vector<uint8_t> Encoded = encodeRecord(Record);
  std::lock_guard<std::mutex> QueueLock(QueueMutex);
  Queue.push_back(std::move(Encoded));
}

bool StateStore::drain(size_t &AppendedOut) {
  AppendedOut = 0;
  std::lock_guard<std::mutex> JournalLock(JournalMutex);
  // Take the whole queue in one swap: records enqueued after this point
  // belong to a later drain (their enqueuer calls drain itself and is
  // blocked on JournalMutex right now), which keeps append order equal
  // to enqueue order across concurrent drainers.
  std::vector<std::vector<uint8_t>> Batch;
  {
    std::lock_guard<std::mutex> QueueLock(QueueMutex);
    Batch.swap(Queue);
  }
  if (Batch.empty())
    return Journal != nullptr && !JournalFailed;

  bool Ok = Journal != nullptr && !JournalFailed;
  size_t Wrote = 0;
  for (const std::vector<uint8_t> &Record : Batch) {
    if (!Ok)
      break;
    uint8_t Length[4];
    for (int I = 0; I < 4; ++I)
      Length[I] = static_cast<uint8_t>(Record.size() >> (8 * I));
    const uint32_t Check = frameChecksum(Record.data(), Record.size());
    uint8_t CheckBytes[4];
    for (int I = 0; I < 4; ++I)
      CheckBytes[I] = static_cast<uint8_t>(Check >> (8 * I));
    Ok = std::fwrite(Length, 1, 4, Journal) == 4 &&
         std::fwrite(Record.data(), 1, Record.size(), Journal) ==
             Record.size() &&
         std::fwrite(CheckBytes, 1, 4, Journal) == 4;
    if (Ok)
      ++Wrote;
  }
  if (Wrote) {
    Ok = Ok && std::fflush(Journal) == 0 && ::fsync(::fileno(Journal)) == 0;
    Appended.fetch_add(Wrote, std::memory_order_relaxed);
  }
  AppendedOut = Wrote;
  if (!Ok)
    JournalFailed = true;
  return Ok;
}

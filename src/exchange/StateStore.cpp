//===- exchange/StateStore.cpp - Durable exchange state --------------------===//

#include "exchange/StateStore.h"

#include "codec/BlockCodec.h"
#include "exchange/WireProtocol.h"
#include "patch/PatchIO.h"
#include "support/Serializer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#include <utility>

using namespace exterminator;

static constexpr uint32_t SnapshotMagic = 0x58535431; // "XST1"
static constexpr uint32_t JournalMagic = 0x58534A31;  // "XSJ1"
/// Snapshot format: v1 stores the pipeline-state blob raw; v2 (PR 10)
/// stores it as a codec envelope (BlockCodec.h).  Both load; new
/// snapshots are written as v2.  The checksum still covers the whole
/// file, so corruption is caught before any decompression runs.
static constexpr uint8_t SnapshotVersionLegacy = 1;
static constexpr uint8_t SnapshotVersion = 2;
/// Journal format: v1 (PR 5) has no token field; v2 appends the dedup
/// token to summary records; v3 (PR 10) may wrap a record in the codec
/// envelope behind a marker byte (records below the threshold stay
/// plain — compressing a 40-byte patch delta buys nothing).  All load;
/// new journals are written as v3.
static constexpr uint8_t JournalVersionLegacy = 1;
static constexpr uint8_t JournalVersionTokens = 2;
static constexpr uint8_t JournalVersion = 3;
/// First byte of a v3 compressed record: outside the Kind value space
/// (kinds are small enums), so a record is self-describing.  The codec
/// envelope of the plain record bytes follows.
static constexpr uint8_t CompressedRecordMarker = 0x80;
/// Records below this many encoded bytes are stored plain — the
/// envelope header plus LZ overhead beats the savings on small records.
static constexpr size_t CompressRecordThreshold = 512;
/// Journal header: magic + version + generation.
static constexpr size_t JournalHeaderBytes = 4 + 1 + 8;
/// Record size bound: protects the loader from sizing a buffer off a
/// corrupt length prefix (the same reasoning as MaxFramePayload, and
/// journal records are re-encodings of wire payloads anyway).
static constexpr uint32_t MaxJournalRecordBytes = MaxFramePayload;

/// Pre-rotation layouts used one fixed snapshot name.
static constexpr const char *LegacySnapshotName = "snapshot.xst";
static constexpr const char *SnapshotPrefix = "snapshot-";
static constexpr const char *SnapshotSuffix = ".xst";

StateStore::StateStore(const std::string &Directory) : Dir(Directory) {
  // Best-effort create; an unusable directory surfaces as a failed
  // load/snapshot, which callers already have to handle.
  ::mkdir(Dir.c_str(), 0755);
}

StateStore::~StateStore() { closeJournal(); }

std::string StateStore::rotatedSnapshotPath(uint64_t Gen) const {
  // Zero-padded so lexicographic order equals generation order in
  // directory listings (a debugging nicety; load() parses the number).
  char Name[64];
  std::snprintf(Name, sizeof(Name), "%s%020llu%s", SnapshotPrefix,
                static_cast<unsigned long long>(Gen), SnapshotSuffix);
  return Dir + "/" + Name;
}

std::string StateStore::journalPath() const { return Dir + "/journal.xsj"; }

/// Parses a rotated snapshot filename; returns false for anything else.
static bool parseSnapshotName(const std::string &Name, uint64_t &GenOut) {
  const std::string Prefix = SnapshotPrefix;
  const std::string Suffix = SnapshotSuffix;
  if (Name.size() <= Prefix.size() + Suffix.size() ||
      Name.compare(0, Prefix.size(), Prefix) != 0 ||
      Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
    return false;
  const std::string Digits =
      Name.substr(Prefix.size(), Name.size() - Prefix.size() - Suffix.size());
  if (Digits.empty() ||
      Digits.find_first_not_of("0123456789") != std::string::npos ||
      Digits.size() > 20)
    return false;
  GenOut = 0;
  for (char C : Digits) {
    if (GenOut > (~uint64_t(0) - (C - '0')) / 10)
      return false; // overflow: not a generation this class wrote
    GenOut = GenOut * 10 + uint64_t(C - '0');
  }
  return true;
}

/// Lists rotated snapshots, newest generation first.
static std::vector<std::pair<uint64_t, std::string>>
listRotatedSnapshots(const std::string &Dir) {
  std::vector<std::pair<uint64_t, std::string>> Found;
  if (DIR *Handle = ::opendir(Dir.c_str())) {
    while (dirent *Entry = ::readdir(Handle)) {
      uint64_t Gen = 0;
      if (parseSnapshotName(Entry->d_name, Gen))
        Found.emplace_back(Gen, Dir + "/" + Entry->d_name);
    }
    ::closedir(Handle);
  }
  std::sort(Found.begin(), Found.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  return Found;
}

std::string StateStore::snapshotPath() const {
  const auto Rotated = listRotatedSnapshots(Dir);
  if (!Rotated.empty())
    return Rotated.front().second;
  return Dir + "/" + LegacySnapshotName;
}

std::vector<std::string> StateStore::snapshotFiles() const {
  std::vector<std::string> Paths;
  for (const auto &[Gen, Path] : listRotatedSnapshots(Dir))
    Paths.push_back(Path);
  const std::string Legacy = Dir + "/" + LegacySnapshotName;
  if (::access(Legacy.c_str(), F_OK) == 0)
    Paths.push_back(Legacy);
  return Paths;
}

uint64_t StateStore::appendedSinceSnapshot() const {
  return Appended.load(std::memory_order_relaxed);
}

void StateStore::attachMetrics(MetricsRegistry &Registry) {
  AppendLatency = Registry.histogram("xterm_journal_append_seconds");
  FsyncLatency = Registry.histogram("xterm_journal_fsync_seconds");
}

void StateStore::closeJournal() {
  if (Journal) {
    std::fclose(Journal);
    Journal = nullptr;
  }
}

bool StateStore::openJournalForAppend() {
  Journal = std::fopen(journalPath().c_str(), "ab");
  return Journal != nullptr;
}

static std::vector<uint8_t>
encodeRecord(const StateStore::JournalRecord &Record) {
  ByteWriter Writer;
  Writer.writeU8(Record.RecordKind);
  Writer.writeU64(Record.EpochAfter);
  if (Record.RecordKind == StateStore::JournalRecord::PatchesKind) {
    Writer.writeBlob(serializePatchSet(Record.PatchDelta));
  } else {
    Writer.writeVarU64(Record.CleanStreak);
    Writer.writeBlob(serializeRunSummary(Record.Summary));
    Writer.writeU64(Record.Token);
  }
  std::vector<uint8_t> Plain = Writer.buffer();
  // v3: big records (full patch-set seeds, summary batches) ship
  // through the codec when that actually shrinks them; the marker byte
  // keeps plain and compressed records distinguishable per record.
  if (Plain.size() >= CompressRecordThreshold) {
    std::vector<uint8_t> Envelope = encodeCodecBlock(Plain);
    if (Envelope.size() + 1 < Plain.size()) {
      std::vector<uint8_t> Wrapped;
      Wrapped.reserve(Envelope.size() + 1);
      Wrapped.push_back(CompressedRecordMarker);
      Wrapped.insert(Wrapped.end(), Envelope.begin(), Envelope.end());
      return Wrapped;
    }
  }
  return Plain;
}

static bool decodeRecord(const uint8_t *Data, size_t Size,
                         uint8_t JournalFormat,
                         StateStore::JournalRecord &Out) {
  // v3 compressed record: unwrap the envelope, then decode the plain
  // bytes.  The expansion bound mirrors the record-length bound — a
  // corrupt envelope cannot inflate past what a plain record may hold.
  std::vector<uint8_t> Expanded;
  if (Size >= 1 && Data[0] == CompressedRecordMarker) {
    if (JournalFormat < JournalVersion)
      return false; // pre-v3 journals never wrote the marker
    if (!decodeCodecBlock(Data + 1, Size - 1, Expanded,
                          MaxJournalRecordBytes))
      return false;
    if (!Expanded.empty() && Expanded[0] == CompressedRecordMarker)
      return false; // no nested compression
    Data = Expanded.data();
    Size = Expanded.size();
  }
  ByteReader Reader(Data, Size);
  Out.RecordKind = Reader.readU8();
  Out.EpochAfter = Reader.readU64();
  if (Out.RecordKind == StateStore::JournalRecord::PatchesKind) {
    if (!deserializePatchSet(Reader.readBlob(), Out.PatchDelta))
      return false;
  } else if (Out.RecordKind == StateStore::JournalRecord::SummaryKind) {
    Out.CleanStreak = static_cast<unsigned>(Reader.readVarU64());
    if (!deserializeRunSummary(Reader.readBlob(), Out.Summary))
      return false;
    // v1 journals predate submission tokens; a zero token is never
    // suppressed, which is the right degradation for pre-upgrade
    // records.
    Out.Token = JournalFormat >= JournalVersionTokens ? Reader.readU64()
                                                      : uint64_t(0);
  } else {
    return false;
  }
  return !Reader.failed() && Reader.atEnd();
}

/// Validates one snapshot file: checksum over everything, then magic,
/// version, generation, state blob (v2: codec envelope around it).
static bool readSnapshotFile(const std::string &Path, uint64_t &GenOut,
                             std::vector<uint8_t> &StateOut) {
  std::vector<uint8_t> Bytes;
  if (!readFileBytes(Path, Bytes) || Bytes.size() <= 4)
    return false;
  const uint32_t StoredCheck = readFrameU32(Bytes.data() + Bytes.size() - 4);
  if (frameChecksum(Bytes.data(), Bytes.size() - 4) != StoredCheck)
    return false;
  ByteReader Reader(Bytes.data(), Bytes.size() - 4);
  if (Reader.readU32() != SnapshotMagic)
    return false;
  const uint8_t Version = Reader.readU8();
  if (Version != SnapshotVersionLegacy && Version != SnapshotVersion)
    return false;
  GenOut = Reader.readU64();
  if (Version == SnapshotVersionLegacy) {
    StateOut = Reader.readBlob();
  } else {
    // The envelope's declared raw size is bounded before allocation;
    // pipeline states are megabytes at the extreme, so the frame bound
    // is generous and a forged multi-gigabyte declaration still fails
    // cheaply.
    const std::vector<uint8_t> Envelope = Reader.readBlob();
    if (Reader.failed() ||
        !decodeCodecBlock(Envelope, StateOut, MaxFramePayload))
      return false;
  }
  return !Reader.failed() && Reader.atEnd();
}

StateStore::LoadResult
StateStore::load(std::vector<uint8_t> &SnapshotStateOut,
                 std::vector<JournalRecord> &RecordsOut) {
  SnapshotStateOut.clear();
  RecordsOut.clear();

  // Candidate snapshots, newest first; the legacy single-file layout is
  // the oldest candidate (it predates every rotated generation this
  // store would have written after upgrading).
  std::vector<std::string> Candidates;
  uint64_t NewestNamedGen = 0;
  for (const auto &[Gen, Path] : listRotatedSnapshots(Dir)) {
    NewestNamedGen = std::max(NewestNamedGen, Gen);
    Candidates.push_back(Path);
  }
  {
    const std::string Legacy = Dir + "/" + LegacySnapshotName;
    if (::access(Legacy.c_str(), F_OK) == 0)
      Candidates.push_back(Legacy);
  }

  std::vector<uint8_t> JournalBytes;
  const bool HaveJournal = readFileBytes(journalPath(), JournalBytes);

  if (Candidates.empty()) {
    // A journal without any snapshot means the directory lost a file —
    // replaying deltas against empty state would fabricate a history.
    return HaveJournal ? LoadResult::Corrupt : LoadResult::Fresh;
  }

  uint64_t ChosenGen = 0;
  std::vector<uint8_t> State;
  bool Loaded = false;
  bool SkippedCorrupt = false;
  for (const std::string &Path : Candidates) {
    if (readSnapshotFile(Path, ChosenGen, State)) {
      Loaded = true;
      break;
    }
    SkippedCorrupt = true;
  }
  if (!Loaded)
    return LoadResult::Corrupt;

  if (HaveJournal) {
    // The journal header is only ever written atomically (the reset is
    // a crash-safe replace), so a short or mis-magicked header means
    // external corruption; its records carried acknowledged
    // submissions, so refuse rather than silently dropping them.
    if (JournalBytes.size() < JournalHeaderBytes)
      return LoadResult::Corrupt;
    ByteReader Header(JournalBytes.data(), JournalHeaderBytes);
    const uint32_t Magic = Header.readU32();
    const uint8_t Version = Header.readU8();
    const uint64_t JournalGen = Header.readU64();
    if (Magic != JournalMagic || Version < JournalVersionLegacy ||
        Version > JournalVersion)
      return LoadResult::Corrupt;
    // A journal generation no snapshot file accounts for cannot come
    // from this class's write ordering (snapshot first, then journal
    // reset); the directory mixes state from different servers.  When
    // the journal's own snapshot is the corrupt head being skipped, the
    // journal is sacrificed with it: its records applied on top of a
    // state we can no longer read.
    if (JournalGen > ChosenGen && JournalGen > NewestNamedGen &&
        !SkippedCorrupt)
      return LoadResult::Corrupt;
    if (JournalGen == ChosenGen) {
      // Generations behind the snapshot (the normal crash window
      // between snapshot rename and journal reset) are already inside
      // it, so only the exact pair replays.
      size_t Offset = JournalHeaderBytes;
      while (JournalBytes.size() - Offset >= 8) {
        const uint32_t Length = readFrameU32(JournalBytes.data() + Offset);
        if (Length > MaxJournalRecordBytes)
          break;
        if (JournalBytes.size() - Offset - 4 < uint64_t(Length) + 4)
          break; // torn tail: the record a crash interrupted
        const uint8_t *Record = JournalBytes.data() + Offset + 4;
        if (frameChecksum(Record, Length) != readFrameU32(Record + Length))
          break;
        JournalRecord Decoded;
        if (!decodeRecord(Record, Length, Version, Decoded))
          break;
        RecordsOut.push_back(std::move(Decoded));
        Offset += 4 + size_t(Length) + 4;
      }
    }
  }

  Generation = std::max(ChosenGen, NewestNamedGen);
  SnapshotStateOut = std::move(State);
  return LoadResult::Restored;
}

void StateStore::pruneSnapshots(uint64_t NewestGen) {
  // Retention: keep the newest SnapshotKeep generations; everything
  // older (and any legacy single-file snapshot, now superseded) goes.
  // Best-effort — a prune that fails leaves extra fallbacks, never
  // less state.
  for (const auto &[Gen, Path] : listRotatedSnapshots(Dir))
    if (Gen + SnapshotKeep <= NewestGen)
      ::unlink(Path.c_str());
  ::unlink((Dir + "/" + LegacySnapshotName).c_str());
}

bool StateStore::writeSnapshot(const std::vector<uint8_t> &PipelineState) {
  std::lock_guard<std::mutex> JournalLock(JournalMutex);
  {
    // Enqueued-but-undrained records were applied (and enqueued) under
    // the caller's application lock before the state was serialized, so
    // the snapshot already contains their effects — journaling them on
    // top of it would replay them twice.
    std::lock_guard<std::mutex> QueueLock(QueueMutex);
    Queue.clear();
  }
  closeJournal();

  const uint64_t NextGen = Generation + 1;
  ByteWriter Writer;
  Writer.writeU32(SnapshotMagic);
  Writer.writeU8(SnapshotVersion);
  Writer.writeU64(NextGen);
  // v2: the state blob travels as a codec envelope (stored raw inside
  // it when incompressible, so this never grows the file by more than
  // the envelope header).
  Writer.writeBlob(encodeCodecBlock(PipelineState));
  Writer.writeU32(frameChecksum(Writer.buffer().data(), Writer.size()));
  if (!writeFileBytes(rotatedSnapshotPath(NextGen), Writer.buffer()))
    return false;
  Generation = NextGen;
  pruneSnapshots(NextGen);

  // Reset the journal to the new generation.  A crash between the two
  // writeFileBytes calls leaves a stale-generation journal that load()
  // ignores; a failure here leaves Journal closed, so drains fail loudly
  // instead of appending records the next load would mispair.
  ByteWriter Header;
  Header.writeU32(JournalMagic);
  Header.writeU8(JournalVersion);
  Header.writeU64(NextGen);
  if (!writeFileBytes(journalPath(), Header.buffer()))
    return false;
  Appended.store(0, std::memory_order_relaxed);
  JournalFailed = false;
  return openJournalForAppend();
}

void StateStore::enqueue(const JournalRecord &Record) {
  std::vector<uint8_t> Encoded = encodeRecord(Record);
  std::lock_guard<std::mutex> QueueLock(QueueMutex);
  Queue.push_back(std::move(Encoded));
}

bool StateStore::drain(size_t &AppendedOut) {
  AppendedOut = 0;
  std::lock_guard<std::mutex> JournalLock(JournalMutex);
  // Take the whole queue in one swap: records enqueued after this point
  // belong to a later drain (their enqueuer calls drain itself and is
  // blocked on JournalMutex right now), which keeps append order equal
  // to enqueue order across concurrent drainers.
  std::vector<std::vector<uint8_t>> Batch;
  {
    std::lock_guard<std::mutex> QueueLock(QueueMutex);
    Batch.swap(Queue);
  }
  if (Batch.empty())
    return Journal != nullptr && !JournalFailed;

  bool Ok = Journal != nullptr && !JournalFailed;
  size_t Wrote = 0;
  // Timing is gated on attachment: un-instrumented stores must not pay
  // even the clock reads.
  const bool Timed = bool(AppendLatency);
  const auto AppendStart =
      Timed ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point();
  for (const std::vector<uint8_t> &Record : Batch) {
    if (!Ok)
      break;
    uint8_t Length[4];
    for (int I = 0; I < 4; ++I)
      Length[I] = static_cast<uint8_t>(Record.size() >> (8 * I));
    const uint32_t Check = frameChecksum(Record.data(), Record.size());
    uint8_t CheckBytes[4];
    for (int I = 0; I < 4; ++I)
      CheckBytes[I] = static_cast<uint8_t>(Check >> (8 * I));
    Ok = std::fwrite(Length, 1, 4, Journal) == 4 &&
         std::fwrite(Record.data(), 1, Record.size(), Journal) ==
             Record.size() &&
         std::fwrite(CheckBytes, 1, 4, Journal) == 4;
    if (Ok)
      ++Wrote;
  }
  if (Wrote) {
    if (Timed) {
      const auto WriteEnd = std::chrono::steady_clock::now();
      AppendLatency.observe(
          std::chrono::duration<double>(WriteEnd - AppendStart).count());
      Ok = Ok && std::fflush(Journal) == 0 && ::fsync(::fileno(Journal)) == 0;
      FsyncLatency.observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - WriteEnd)
                               .count());
    } else {
      Ok = Ok && std::fflush(Journal) == 0 && ::fsync(::fileno(Journal)) == 0;
    }
    Appended.fetch_add(Wrote, std::memory_order_relaxed);
  }
  AppendedOut = Wrote;
  if (!Ok)
    JournalFailed = true;
  return Ok;
}

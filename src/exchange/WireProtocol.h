//===- exchange/WireProtocol.h - Patch-exchange wire format ----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The patch-exchange wire protocol: how a community of Exterminator
/// processes ships error evidence to a patch server and pulls back the
/// merged patch set (§6.4 at fleet scale).
///
/// Every message is one *frame*:
///
///   u32  FrameMagic      "XPF1"
///   u8   ProtocolVersion (3 or 4; see the version history below)
///   u8   MessageType
///   u32  PayloadLength   (little-endian; bounded by MaxFramePayload)
///   u8[] Payload         (v4: compression envelope, see below)
///   u32  Checksum        FNV-1a over the payload bytes as transmitted
///
/// The fixed 10-byte header makes frames cheap to delimit on a byte
/// stream; the length bound and checksum make a hostile or corrupted
/// peer a parse error instead of an allocation bomb.  Requests and
/// replies use disjoint type ranges so a frame is self-describing.
///
/// Payloads ride on the formats the rest of the system already speaks:
/// image evidence as two ImageBundles (primary + fallback, one
/// cross-image site dictionary each), run summaries and patch sets in
/// their existing serialized forms, plus varint-packed scalars.
///
/// Version history: v1 was the single-server protocol.  v2 adds the
/// replication messages (MergePatches, ReplicateSummary) and prefixes
/// every summary submission with a random u64 *submission token*.  The
/// token is what makes summaries safe to retry: patch merges are
/// idempotent under max-merge, but a run summary grows the Bayesian
/// trial history every time it is applied, so a client retry after a
/// lost reply (or a replica forwarding a summary the origin also
/// retried) would double-count trials.  Servers remember recently seen
/// tokens and answer a duplicate with their current state instead of
/// re-applying it.
///
/// v3 adds the observability pair (Stats, StatsReply): any endpoint can
/// be scraped for a point-in-time metrics snapshot, either as binary
/// samples (what `xtermtool watch` and the AlertEngine consume) or as
/// server-rendered Prometheus-style text exposition (what `xtermtool
/// stats` prints).
///
/// v4 adds payload compression.  A v4 payload is an *envelope*:
///
///   u8 encoding            0 = raw, 1 = LZ block codec
///   [varint RawSize]       encoding 1 only; bounded by MaxFramePayload
///   u8[] body              raw bytes, or the compressed block
///
/// The checksum still covers the payload bytes *as transmitted* (the
/// envelope), so corruption is rejected by a cheap hash before any
/// decompression runs.  The declared RawSize is validated against
/// MaxFramePayload before any buffer is sized from it — a compression
/// bomb is FrameError::OversizedExpansion, never an allocation.
/// Encoders compress only when it shrinks the frame, so small or
/// incompressible payloads ride as encoding 0 with one byte of
/// overhead.
///
/// Negotiation is by downgrade, not handshake: a v4 client speaks v4
/// until a peer rejects the version (the transport fails or the first
/// reply is an ErrorReply saying "unknown protocol version"), then
/// re-encodes at v3 and sticks there for that peer.  Servers accept
/// both versions, answer each request in the version it arrived with,
/// and couple the bundle format to it (v4 SubmitImages carries delta
/// bundles, v3 carries the standalone v1 bundles a legacy server
/// expects) — so an uncompressed v3 peer interoperates bit-identically
/// with the pre-v4 protocol.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_WIREPROTOCOL_H
#define EXTERMINATOR_EXCHANGE_WIREPROTOCOL_H

#include "diagnose/DiagnosisPipeline.h"
#include "heapimage/ImageBundle.h"
#include "observe/MetricsRegistry.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace exterminator {

/// Protocol constants.
inline constexpr uint32_t FrameMagic = 0x58504631; // "XPF1"
/// Current protocol version (v4: compressed payload envelopes).
inline constexpr uint8_t ProtocolVersion = 4;
/// Oldest version every endpoint still speaks (raw payloads, standalone
/// v1 bundles).  Clients downgrade to this when a peer rejects v4.
inline constexpr uint8_t LegacyProtocolVersion = 3;
/// v4 payload-envelope encoding bytes.
inline constexpr uint8_t PayloadEncodingRaw = 0;
inline constexpr uint8_t PayloadEncodingLz = 1;
/// Bytes of frame header before the payload: magic + version + type +
/// payload length.
inline constexpr size_t FrameHeaderBytes = 10;
/// Hard payload bound (64 MiB): a length prefix past this is rejected
/// before any buffer is sized from it.  Far above any real evidence
/// batch (v2 images are ~100 KiB, summaries are KiB).
inline constexpr uint32_t MaxFramePayload = 64u << 20;

/// Frame message types.  Requests < 64, replies >= 64.
enum class MessageType : uint8_t {
  // Requests.
  SubmitImages = 1,  ///< payload: ImageBundle primary ++ ImageBundle fallback
  SubmitSummary = 2, ///< payload: u64 token ++ varint CleanStreak ++ blob
  FetchPatches = 3,  ///< payload: u64 instance ++ u64 epoch the client holds
  Shutdown = 4,      ///< payload: empty (admin; server stops serving)
  /// Peer-to-peer: max-merge a serialized PatchSet into the active set.
  /// Carries either one journaled delta (streaming replication) or a
  /// peer's full set (anti-entropy); max-merge makes the two
  /// indistinguishable and the message idempotent.
  MergePatches = 5, ///< payload: length-prefixed PatchSet
  /// Peer-to-peer: a run summary forwarded by the server that accepted
  /// it.  Same payload as SubmitSummary; a separate type because the
  /// receiver must *not* forward it again (no-restream rule, see
  /// Replication.h) and answers with a cheap ack, not a diagnosis.
  ReplicateSummary = 6, ///< payload: u64 token ++ varint CleanStreak ++ blob
  /// Scrape the server's metrics snapshot (observability; read-only).
  Stats = 7, ///< payload: u8 format (see StatsFormat)

  // Replies.  Every substantive reply leads with the server's
  // u64 instance ++ u64 epoch (see encodeFetchPatches on why the pair).
  SubmitImagesReply = 64,  ///< ++ varint #overflows, varint #danglings
  SubmitSummaryReply = 65, ///< ++ CumulativeDiagnosis findings
  PatchesReply = 66,       ///< ++ u8 modified, [length-prefixed PatchSet]
  ShutdownReply = 67,      ///< payload: empty
  ErrorReply = 68,         ///< payload: length-prefixed message string
  MergePatchesReply = 69,  ///< ++ u8 changed
  ReplicateReply = 70,     ///< ++ u8 applied (0: duplicate suppressed)
  StatsReply = 71,         ///< ++ u8 format ++ samples or text blob
};

inline bool isReply(MessageType Type) {
  return static_cast<uint8_t>(Type) >= 64;
}

/// FNV-1a over \p Size bytes (the frame payload checksum).
uint32_t frameChecksum(const uint8_t *Data, size_t Size);

/// Decodes a little-endian u32 frame-header field (shared by the buffer
/// decoder and the socket stream delimiter; host-endianness-independent).
uint32_t readFrameU32(const uint8_t *Data);

/// Encodes a complete frame around \p Payload at \p Version.  v3 frames
/// are bit-identical to the pre-v4 encoder; v4 frames wrap the payload
/// in the compression envelope (compressed only when that shrinks it).
/// Returns an empty buffer when the payload exceeds MaxFramePayload or
/// \p Version is unknown — such a frame could never be accepted, and
/// past 4 GiB the u32 length prefix would wrap into a desynced stream,
/// so the bound is enforced on the send side too.
std::vector<uint8_t> encodeFrame(MessageType Type,
                                 const std::vector<uint8_t> &Payload,
                                 uint8_t Version = ProtocolVersion);

/// A decoded frame (payload copied out of the transport buffer, with
/// the v4 envelope already stripped/expanded).  Version records which
/// protocol the frame arrived in — servers echo it in their replies so
/// a legacy peer never sees a frame it cannot parse.
struct Frame {
  MessageType Type = MessageType::ErrorReply;
  uint8_t Version = ProtocolVersion;
  std::vector<uint8_t> Payload;
};

/// Why a frame failed to decode — the adversarial-input taxonomy the
/// tests pin (each must be rejected, never crash).
enum class FrameError {
  None,
  Truncated,       ///< fewer bytes than the header + length promise
  BadMagic,        ///< not a frame at all
  BadVersion,      ///< unknown protocol version
  BadType,         ///< message type outside the known set
  OversizedLength, ///< length prefix past MaxFramePayload
  BadChecksum,     ///< payload bytes do not match the checksum
  BadEncoding,     ///< v4 envelope: unknown encoding byte or a
                   ///< compressed body that fails to expand
  OversizedExpansion, ///< v4 envelope: declared raw size past
                      ///< MaxFramePayload (compression bomb)
};

/// Decodes one frame from \p Data; on success sets \p FrameOut and
/// \p ConsumedOut (total frame bytes).  On failure returns the reason.
FrameError decodeFrame(const uint8_t *Data, size_t Size, Frame &FrameOut,
                       size_t &ConsumedOut);

const char *frameErrorName(FrameError Error);

/// True when \p Reply is the "unknown protocol version" ErrorReply a
/// pre-v4 server answers a v4 frame with — the shared downgrade trigger
/// for PatchClient and ReplicaSet.
bool isVersionRejection(const Frame &Reply);

/// True when any frame in \p Responses decodes as a version rejection.
/// Senders run this over the (possibly partial) response set of a
/// failed exchange: a pre-v4 server answers the first pipelined frame
/// with the rejection and then closes, so the evidence of *why* the
/// transport failed sits in the received prefix.  A transport failure
/// with no such evidence (connect refused, timeout) is NOT a downgrade
/// trigger — transient faults must stay failures, not silent retries.
bool sawVersionRejection(const std::vector<std::vector<uint8_t>> &Responses);

//===----------------------------------------------------------------------===//
// Payload codecs
//===----------------------------------------------------------------------===//

/// SubmitImages: primary and fallback image sets as two bundles.
/// \p BundleVersion couples the bundle format to the negotiated wire
/// version: v4 peers receive delta-encoded v2 bundles, v3 peers the
/// standalone v1 encoding they predate the delta codec expect.
std::vector<uint8_t>
encodeSubmitImages(const ImageEvidence &Evidence,
                   uint32_t BundleVersion = ImageBundleFormatV2);
bool decodeSubmitImages(const std::vector<uint8_t> &Payload,
                        ImageEvidence &EvidenceOut);

/// SubmitSummary: the §5 per-run statistics plus the client's clean-run
/// streak (drives the §6.2 deferral-doubling rule server-side).
/// \p Token is the submission's random retry-dedup identity (see the
/// file comment); 0 means "untracked" and is never suppressed.  The
/// same codec carries ReplicateSummary, which forwards the origin's
/// token so a retry suppressed anywhere is suppressed everywhere.
std::vector<uint8_t> encodeSubmitSummary(const RunSummary &Summary,
                                         unsigned CleanStreak,
                                         uint64_t Token);
bool decodeSubmitSummary(const std::vector<uint8_t> &Payload,
                         RunSummary &SummaryOut, unsigned &CleanStreakOut,
                         uint64_t &TokenOut);

/// FetchPatches: what the client already holds.  Epochs are only
/// comparable within one server instance — a restarted server counts
/// from 0 again — so staleness is the (instance, epoch) pair, never the
/// epoch alone (an epoch collision across restarts would silently serve
/// stale patches).  Use (0, PatchClient::NeverFetched) before the first
/// fetch.
std::vector<uint8_t> encodeFetchPatches(uint64_t KnownEpoch,
                                        uint64_t KnownInstance);
bool decodeFetchPatches(const std::vector<uint8_t> &Payload,
                        uint64_t &KnownEpochOut,
                        uint64_t &KnownInstanceOut);

/// SubmitImagesReply: the server identity, its new epoch, and how many
/// findings isolation produced from this submission.
struct ImagesReply {
  uint64_t Instance = 0;
  uint64_t Epoch = 0;
  uint64_t OverflowFindings = 0;
  uint64_t DanglingFindings = 0;
};
std::vector<uint8_t> encodeImagesReply(const ImagesReply &Reply);
bool decodeImagesReply(const std::vector<uint8_t> &Payload,
                       ImagesReply &ReplyOut);

/// SubmitSummaryReply: the server identity, its new epoch, and the
/// classifier's findings, so a remote CumulativeDriver sees exactly
/// what a local pipeline returns.
struct SummaryReply {
  uint64_t Instance = 0;
  uint64_t Epoch = 0;
  CumulativeDiagnosis Diagnosis;
};
std::vector<uint8_t> encodeSummaryReply(const SummaryReply &Reply);
bool decodeSummaryReply(const std::vector<uint8_t> &Payload,
                        SummaryReply &ReplyOut);

/// PatchesReply: the server's identity and epoch plus, when they differ
/// from the client's, the full patch set (patch sets are kilobytes, so
/// "incremental" fetch means skipping the payload when unchanged).
struct PatchesReply {
  uint64_t Instance = 0;
  uint64_t Epoch = 0;
  bool Modified = false;
  PatchSet Patches; // meaningful only when Modified
};
std::vector<uint8_t> encodePatchesReply(const PatchesReply &Reply);
bool decodePatchesReply(const std::vector<uint8_t> &Payload,
                        PatchesReply &ReplyOut);

/// MergePatches: a patch-set delta (or full set) to max-merge into the
/// receiver's active set.
std::vector<uint8_t> encodeMergePatches(const PatchSet &Delta);
bool decodeMergePatches(const std::vector<uint8_t> &Payload,
                        PatchSet &DeltaOut);

/// MergePatchesReply: the receiver's identity/epoch after the merge and
/// whether the merge changed anything (what lets an anti-entropy pusher
/// cache "this peer already holds my set").
struct MergeReply {
  uint64_t Instance = 0;
  uint64_t Epoch = 0;
  bool Changed = false;
};
std::vector<uint8_t> encodeMergeReply(const MergeReply &Reply);
bool decodeMergeReply(const std::vector<uint8_t> &Payload,
                      MergeReply &ReplyOut);

/// ReplicateReply: ack for a forwarded summary.  Applied=false means
/// the token was a known duplicate and the summary was suppressed.
struct ReplicateAck {
  uint64_t Instance = 0;
  uint64_t Epoch = 0;
  bool Applied = false;
};
std::vector<uint8_t> encodeReplicateReply(const ReplicateAck &Reply);
bool decodeReplicateReply(const std::vector<uint8_t> &Payload,
                          ReplicateAck &ReplyOut);

/// ErrorReply: a short human-readable reason.
std::vector<uint8_t> encodeErrorReply(const std::string &Message);
bool decodeErrorReply(const std::vector<uint8_t> &Payload,
                      std::string &MessageOut);

/// How a Stats requester wants the snapshot serialized.
enum class StatsFormat : uint8_t {
  /// Flat MetricSample list — machine-readable, what `xtermtool watch`
  /// and the AlertEngine consume.
  Samples = 0,
  /// Server-rendered text exposition — what `xtermtool stats` prints
  /// verbatim (rendering on the server keeps every scraper's output
  /// identical to the server's own exit report).
  Text = 1,
};

/// Stats request: just the desired format.
std::vector<uint8_t> encodeStatsRequest(StatsFormat Format);
bool decodeStatsRequest(const std::vector<uint8_t> &Payload,
                        StatsFormat &FormatOut);

/// StatsReply: the server identity and epoch plus the snapshot in the
/// requested format.
struct StatsReply {
  uint64_t Instance = 0;
  uint64_t Epoch = 0;
  StatsFormat Format = StatsFormat::Samples;
  std::vector<MetricSample> Samples; ///< when Format == Samples
  std::string Text;                  ///< when Format == Text
};
std::vector<uint8_t> encodeStatsReply(const StatsReply &Reply);
bool decodeStatsReply(const std::vector<uint8_t> &Payload,
                      StatsReply &ReplyOut);

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_WIREPROTOCOL_H

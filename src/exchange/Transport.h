//===- exchange/Transport.h - Client transport interface -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the exchange speaks through one interface: send a
/// batch of request frames, get one response frame per request.  Two
/// implementations exist —
///
///  * LoopbackTransport: calls a PatchServer in-process.  Deterministic
///    and dependency-free; what the round-trip equivalence tests and the
///    ingest-throughput bench run on.
///  * SocketClientTransport (SocketTransport.h): a Unix/TCP connection.
///    Batched requests pipeline over one connection.
///
/// Keeping the interface at the frame level means the protocol logic
/// (PatchClient, PatchServer) is identical over both, which is what lets
/// a test pin loopback ≡ socket.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_TRANSPORT_H
#define EXTERMINATOR_EXCHANGE_TRANSPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace exterminator {

class PatchServer;

/// Frame-level request/response transport.
class ClientTransport {
public:
  virtual ~ClientTransport();

  /// Ships every frame in \p Requests and collects one response frame
  /// per request, in order.  Returns false on transport failure; \p
  /// ResponsesOut then holds, best-effort, the prefix of responses that
  /// *were* received before the failure — which is how a protocol layer
  /// sees the ErrorReply a pre-v4 server sends right before closing the
  /// connection on a pipelined batch (the v4 downgrade trigger).
  virtual bool exchange(const std::vector<std::vector<uint8_t>> &Requests,
                        std::vector<std::vector<uint8_t>> &ResponsesOut) = 0;

  /// Human-readable reason for the most recent exchange() failure —
  /// endpoint and errno for sockets, the per-endpoint roll-up for
  /// failover — so a failed submission names what broke instead of a
  /// bare false.  Empty when nothing failed (or the transport cannot
  /// say).
  virtual std::string lastError() const { return {}; }
};

/// In-process transport: requests go straight to a PatchServer.
class LoopbackTransport : public ClientTransport {
public:
  explicit LoopbackTransport(PatchServer &Server) : Server(Server) {}

  bool exchange(const std::vector<std::vector<uint8_t>> &Requests,
                std::vector<std::vector<uint8_t>> &ResponsesOut) override;

private:
  PatchServer &Server;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_TRANSPORT_H

//===- exchange/FailoverTransport.cpp - Multi-endpoint failover -----------===//

#include "exchange/FailoverTransport.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

using namespace exterminator;

FailoverTransport::FailoverTransport(const std::vector<Endpoint> &Endpoints,
                                     const FailoverPolicy &Policy)
    : Policy(Policy), RngState(Policy.Seed ? Policy.Seed : 1) {
  for (const Endpoint &Ep : Endpoints) {
    Slot S;
    S.Label = endpointToString(Ep);
    // Zero connect retries: a dead endpoint must fail fast so the
    // budgeted walk reaches a live one; this class owns all waiting.
    S.Owned = std::make_unique<SocketClientTransport>(Ep, 0);
    S.Transport = S.Owned.get();
    Slots.push_back(std::move(S));
  }
}

FailoverTransport::FailoverTransport(
    const std::vector<ClientTransport *> &Transports,
    const FailoverPolicy &Policy, const std::vector<std::string> &Labels)
    : Policy(Policy), RngState(Policy.Seed ? Policy.Seed : 1) {
  for (size_t I = 0; I < Transports.size(); ++I) {
    Slot S;
    S.Label = I < Labels.size() ? Labels[I] : "peer" + std::to_string(I);
    S.Transport = Transports[I];
    Slots.push_back(std::move(S));
  }
}

unsigned FailoverTransport::plannedBackoffMs(unsigned Failure) {
  // min(Base·2^Failure, Max), with the shift saturated well before the
  // doubling could overflow.
  const double Base = double(Policy.BaseBackoffMs) *
                      double(uint64_t(1) << std::min(Failure, 30u));
  const double Capped = std::min(Base, double(Policy.MaxBackoffMs));
  // xorshift64 → uniform in [0, 1); deterministic for the seed, so the
  // bounds test can replay the stream.
  uint64_t X = RngState;
  X ^= X << 13;
  X ^= X >> 7;
  X ^= X << 17;
  RngState = X;
  const double Unit = double(X >> 11) / double(uint64_t(1) << 53);
  const double Jitter =
      std::clamp(Policy.JitterFraction, 0.0, 1.0) * Unit;
  return static_cast<unsigned>(std::floor(Capped * (1.0 - Jitter)));
}

bool FailoverTransport::exchange(
    const std::vector<std::vector<uint8_t>> &Requests,
    std::vector<std::vector<uint8_t>> &ResponsesOut) {
  ++Stats.Exchanges;
  LastBackoffsMs.clear();
  LastError.clear();
  if (Slots.empty()) {
    LastError = "no endpoints configured";
    return false;
  }

  size_t Index;
  if (Policy.Rotate) {
    Index = RotateCursor % Slots.size();
    RotateCursor = (RotateCursor + 1) % Slots.size();
  } else {
    Index = Preferred % Slots.size();
  }

  const unsigned Budget = std::max(1u, Policy.MaxAttempts);
  for (unsigned Attempt = 0; Attempt < Budget; ++Attempt) {
    Slot &S = Slots[Index];
    ++Stats.Attempts;
    if (S.Transport->exchange(Requests, ResponsesOut)) {
      Preferred = Index;
      return true;
    }
    S.LastError = S.Transport->lastError();
    if (S.LastError.empty())
      S.LastError = "exchange failed";
    if (Attempt + 1 == Budget)
      break;
    // Walk the list before sleeping: the very next endpoint may be
    // healthy, and the growing backoff only needs to gate how fast the
    // *whole list* is re-polled.
    if (Slots.size() > 1) {
      Index = (Index + 1) % Slots.size();
      ++Stats.Failovers;
    }
    const unsigned SleepMs = plannedBackoffMs(Attempt);
    LastBackoffsMs.push_back(SleepMs);
    if (SleepMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
  }

  ++Stats.Exhausted;
  for (const Slot &S : Slots) {
    if (S.LastError.empty())
      continue;
    if (!LastError.empty())
      LastError += "; ";
    // Socket transports already lead with their endpoint string.
    if (S.LastError.rfind(S.Label, 0) == 0)
      LastError += S.LastError;
    else
      LastError += S.Label + ": " + S.LastError;
  }
  if (LastError.empty())
    LastError = "every endpoint failed";
  return false;
}

//===- exchange/WireProtocol.cpp - Patch-exchange wire format ---------------===//

#include "exchange/WireProtocol.h"

#include "codec/BlockCodec.h"
#include "heapimage/ImageBundle.h"
#include "patch/PatchIO.h"

#include <cstring>

using namespace exterminator;

uint32_t exterminator::frameChecksum(const uint8_t *Data, size_t Size) {
  uint32_t Hash = 2166136261u; // FNV-1a
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Data[I];
    Hash *= 16777619u;
  }
  return Hash;
}

static bool isKnownType(uint8_t Type) {
  switch (static_cast<MessageType>(Type)) {
  case MessageType::SubmitImages:
  case MessageType::SubmitSummary:
  case MessageType::FetchPatches:
  case MessageType::Shutdown:
  case MessageType::MergePatches:
  case MessageType::ReplicateSummary:
  case MessageType::Stats:
  case MessageType::SubmitImagesReply:
  case MessageType::SubmitSummaryReply:
  case MessageType::PatchesReply:
  case MessageType::ShutdownReply:
  case MessageType::ErrorReply:
  case MessageType::MergePatchesReply:
  case MessageType::ReplicateReply:
  case MessageType::StatsReply:
    return true;
  }
  return false;
}

/// Builds the v4 payload envelope: u8 encoding ++ [varint RawSize ++]
/// body.  Compresses only when the whole envelope ends up smaller than
/// raw ++ its one-byte tag.
static std::vector<uint8_t>
buildEnvelope(const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Envelope;
  std::vector<uint8_t> Compressed;
  const size_t CompSize =
      lzCompress(Payload.data(), Payload.size(), Compressed);
  if (CompSize != 0) {
    VectorSink Sink(Envelope);
    StreamWriter Writer(Sink);
    Writer.writeU8(PayloadEncodingLz);
    Writer.writeVarU64(Payload.size());
    Writer.writeBytes(Compressed.data(), CompSize);
    if (Envelope.size() < 1 + Payload.size()) {
      codecdetail::noteCompress(Payload.size(), Envelope.size(),
                                /*Stored=*/false);
      return Envelope;
    }
    Envelope.clear();
  }
  Envelope.reserve(1 + Payload.size());
  Envelope.push_back(PayloadEncodingRaw);
  Envelope.insert(Envelope.end(), Payload.begin(), Payload.end());
  codecdetail::noteCompress(Payload.size(), Envelope.size(),
                            /*Stored=*/true);
  return Envelope;
}

std::vector<uint8_t>
exterminator::encodeFrame(MessageType Type,
                          const std::vector<uint8_t> &Payload,
                          uint8_t Version) {
  // Enforce the bound on the send side too: a payload past the limit
  // would be rejected by every receiver anyway (and past 4 GiB the u32
  // length would silently wrap into a desynced stream), so refuse to
  // encode it — callers treat an empty frame as "too big to ship".
  if (Payload.size() > MaxFramePayload)
    return {};
  if (Version != ProtocolVersion && Version != LegacyProtocolVersion)
    return {};
  // v3 wire bytes stay bit-identical to the pre-v4 encoder: the
  // envelope exists only inside v4 frames.
  const std::vector<uint8_t> *Wire = &Payload;
  std::vector<uint8_t> Envelope;
  if (Version == ProtocolVersion) {
    Envelope = buildEnvelope(Payload);
    if (Envelope.size() > MaxFramePayload)
      return {};
    Wire = &Envelope;
  }
  std::vector<uint8_t> Out;
  VectorSink Sink(Out);
  StreamWriter Writer(Sink);
  Writer.writeU32(FrameMagic);
  Writer.writeU8(Version);
  Writer.writeU8(static_cast<uint8_t>(Type));
  Writer.writeU32(static_cast<uint32_t>(Wire->size()));
  Writer.writeBytes(Wire->data(), Wire->size());
  Writer.writeU32(frameChecksum(Wire->data(), Wire->size()));
  return Out;
}

uint32_t exterminator::readFrameU32(const uint8_t *Data) {
  // Explicit little-endian, matching StreamWriter::writeU32 — the frame
  // must decode identically on any host the TCP endpoint reaches.
  return uint32_t(Data[0]) | uint32_t(Data[1]) << 8 |
         uint32_t(Data[2]) << 16 | uint32_t(Data[3]) << 24;
}

/// Expands a v4 payload envelope into FrameOut.Payload.  Runs only
/// after the checksum passed, so every byte here is what the sender
/// meant — failures are a hostile or buggy *encoder*, not line noise.
static FrameError expandEnvelope(const uint8_t *Data, size_t Size,
                                 Frame &FrameOut) {
  if (Size < 1)
    return FrameError::BadEncoding;
  const uint8_t Encoding = Data[0];
  if (Encoding == PayloadEncodingRaw) {
    FrameOut.Payload.assign(Data + 1, Data + Size);
    return FrameError::None;
  }
  if (Encoding != PayloadEncodingLz)
    return FrameError::BadEncoding;
  ByteReader Reader(Data + 1, Size - 1);
  const uint64_t RawSize = Reader.readVarU64();
  if (Reader.failed())
    return FrameError::BadEncoding;
  // The bomb gate: the declared expansion is bounded *before* any
  // buffer is sized from it, same discipline as MaxWireSlots.
  if (RawSize > MaxFramePayload)
    return FrameError::OversizedExpansion;
  FrameOut.Payload.resize(RawSize);
  const size_t BodyOffset = 1 + (Size - 1 - Reader.remaining());
  if (!lzDecompress(Data + BodyOffset, Size - BodyOffset,
                    FrameOut.Payload.data(), RawSize)) {
    FrameOut.Payload.clear();
    return FrameError::BadEncoding;
  }
  codecdetail::noteDecompress(RawSize);
  return FrameError::None;
}

FrameError exterminator::decodeFrame(const uint8_t *Data, size_t Size,
                                     Frame &FrameOut, size_t &ConsumedOut) {
  if (Size < FrameHeaderBytes)
    return FrameError::Truncated;
  const uint32_t Magic = readFrameU32(Data);
  const uint8_t Version = Data[4];
  const uint8_t Type = Data[5];
  const uint32_t Length = readFrameU32(Data + 6);
  if (Magic != FrameMagic)
    return FrameError::BadMagic;
  if (Version != ProtocolVersion && Version != LegacyProtocolVersion)
    return FrameError::BadVersion;
  if (!isKnownType(Type))
    return FrameError::BadType;
  // The length bound comes before the truncation check so a forged
  // multi-gigabyte prefix is its own error, not a "keep reading".
  if (Length > MaxFramePayload)
    return FrameError::OversizedLength;
  if (Size < FrameHeaderBytes + size_t(Length) + 4)
    return FrameError::Truncated;
  if (readFrameU32(Data + FrameHeaderBytes + Length) !=
      frameChecksum(Data + FrameHeaderBytes, Length))
    return FrameError::BadChecksum;
  FrameOut.Type = static_cast<MessageType>(Type);
  FrameOut.Version = Version;
  if (Version == ProtocolVersion) {
    const FrameError Error =
        expandEnvelope(Data + FrameHeaderBytes, Length, FrameOut);
    if (Error != FrameError::None) {
      codecdetail::noteReject();
      return Error;
    }
  } else {
    FrameOut.Payload.assign(Data + FrameHeaderBytes,
                            Data + FrameHeaderBytes + Length);
  }
  ConsumedOut = FrameHeaderBytes + size_t(Length) + 4;
  return FrameError::None;
}

const char *exterminator::frameErrorName(FrameError Error) {
  switch (Error) {
  case FrameError::None:
    return "none";
  case FrameError::Truncated:
    return "truncated frame";
  case FrameError::BadMagic:
    return "bad frame magic";
  case FrameError::BadVersion:
    return "unknown protocol version";
  case FrameError::BadType:
    return "unknown message type";
  case FrameError::OversizedLength:
    return "oversized length prefix";
  case FrameError::BadChecksum:
    return "payload checksum mismatch";
  case FrameError::BadEncoding:
    return "bad payload encoding";
  case FrameError::OversizedExpansion:
    return "oversized declared expansion";
  }
  return "unknown";
}

bool exterminator::isVersionRejection(const Frame &Reply) {
  if (Reply.Type != MessageType::ErrorReply)
    return false;
  std::string Message;
  return decodeErrorReply(Reply.Payload, Message) &&
         Message == frameErrorName(FrameError::BadVersion);
}

bool exterminator::sawVersionRejection(
    const std::vector<std::vector<uint8_t>> &Responses) {
  for (const std::vector<uint8_t> &Response : Responses) {
    Frame Reply;
    size_t Consumed = 0;
    if (decodeFrame(Response.data(), Response.size(), Reply, Consumed) ==
            FrameError::None &&
        isVersionRejection(Reply))
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Payload codecs
//===----------------------------------------------------------------------===//

std::vector<uint8_t>
exterminator::encodeSubmitImages(const ImageEvidence &Evidence,
                                 uint32_t BundleVersion) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  serializeImageBundle(Evidence.Primary, Sink, BundleVersion);
  serializeImageBundle(Evidence.Fallback, Sink, BundleVersion);
  return Payload;
}

bool exterminator::decodeSubmitImages(const std::vector<uint8_t> &Payload,
                                      ImageEvidence &EvidenceOut) {
  MemorySource Source(Payload);
  // One wire budget across both bundles: the server materializes at
  // most MaxWireSlots decoded slots per submission no matter what the
  // frame declares (see MaxWireSlots).
  uint64_t SlotBudget = MaxWireSlots;
  if (!deserializeImageBundle(Source, EvidenceOut.Primary, SlotBudget))
    return false;
  if (!deserializeImageBundle(Source, EvidenceOut.Fallback, SlotBudget))
    return false;
  return Source.remaining() == 0;
}

std::vector<uint8_t>
exterminator::encodeSubmitSummary(const RunSummary &Summary,
                                  unsigned CleanStreak, uint64_t Token) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(Token);
  Writer.writeVarU64(CleanStreak);
  const std::vector<uint8_t> Blob = serializeRunSummary(Summary);
  Writer.writeVarU64(Blob.size());
  Writer.writeBytes(Blob.data(), Blob.size());
  return Payload;
}

bool exterminator::decodeSubmitSummary(const std::vector<uint8_t> &Payload,
                                       RunSummary &SummaryOut,
                                       unsigned &CleanStreakOut,
                                       uint64_t &TokenOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  TokenOut = Reader.readU64();
  const uint64_t Streak = Reader.readVarU64();
  const uint64_t BlobSize = Reader.readVarU64();
  if (Reader.failed() || Streak > ~0u || BlobSize > Payload.size())
    return false;
  std::vector<uint8_t> Blob(BlobSize);
  if (!Reader.readBytes(Blob.data(), Blob.size()))
    return false;
  if (Source.remaining() != 0)
    return false;
  CleanStreakOut = static_cast<unsigned>(Streak);
  return deserializeRunSummary(Blob, SummaryOut);
}

std::vector<uint8_t>
exterminator::encodeFetchPatches(uint64_t KnownEpoch,
                                 uint64_t KnownInstance) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(KnownInstance);
  Writer.writeU64(KnownEpoch);
  return Payload;
}

bool exterminator::decodeFetchPatches(const std::vector<uint8_t> &Payload,
                                      uint64_t &KnownEpochOut,
                                      uint64_t &KnownInstanceOut) {
  if (Payload.size() != 16)
    return false;
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  KnownInstanceOut = Reader.readU64();
  KnownEpochOut = Reader.readU64();
  return !Reader.failed();
}

std::vector<uint8_t>
exterminator::encodeImagesReply(const ImagesReply &Reply) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(Reply.Instance);
  Writer.writeU64(Reply.Epoch);
  Writer.writeVarU64(Reply.OverflowFindings);
  Writer.writeVarU64(Reply.DanglingFindings);
  return Payload;
}

bool exterminator::decodeImagesReply(const std::vector<uint8_t> &Payload,
                                     ImagesReply &ReplyOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  ReplyOut.Instance = Reader.readU64();
  ReplyOut.Epoch = Reader.readU64();
  ReplyOut.OverflowFindings = Reader.readVarU64();
  ReplyOut.DanglingFindings = Reader.readVarU64();
  return !Reader.failed() && Source.remaining() == 0;
}

/// Finding counts in a reply are bounded by the sites a program can
/// contain, not by what a forged frame claims.
static constexpr uint64_t MaxReplyFindings = uint64_t(1) << 20;

std::vector<uint8_t>
exterminator::encodeSummaryReply(const SummaryReply &Reply) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(Reply.Instance);
  Writer.writeU64(Reply.Epoch);
  Writer.writeVarU64(Reply.Diagnosis.Overflows.size());
  for (const CumulativeOverflowFinding &F : Reply.Diagnosis.Overflows) {
    Writer.writeU32(F.AllocSite);
    Writer.writeF64(F.LogBayesFactor);
    Writer.writeF64(F.LogThreshold);
    Writer.writeU32(F.PadBytes);
    Writer.writeU32(F.TrialCount);
    Writer.writeU32(F.ObservedCount);
  }
  Writer.writeVarU64(Reply.Diagnosis.Danglings.size());
  for (const CumulativeDanglingFinding &F : Reply.Diagnosis.Danglings) {
    Writer.writeU32(F.AllocSite);
    Writer.writeU32(F.FreeSite);
    Writer.writeF64(F.LogBayesFactor);
    Writer.writeF64(F.LogThreshold);
    Writer.writeU64(F.DeferralTicks);
    Writer.writeU32(F.TrialCount);
    Writer.writeU32(F.ObservedCount);
  }
  return Payload;
}

bool exterminator::decodeSummaryReply(const std::vector<uint8_t> &Payload,
                                      SummaryReply &ReplyOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  ReplyOut.Instance = Reader.readU64();
  ReplyOut.Epoch = Reader.readU64();
  const uint64_t NumOverflows = Reader.readVarU64();
  if (Reader.failed() || NumOverflows > MaxReplyFindings)
    return false;
  ReplyOut.Diagnosis.Overflows.clear();
  for (uint64_t I = 0; I < NumOverflows && !Reader.failed(); ++I) {
    CumulativeOverflowFinding F;
    F.AllocSite = Reader.readU32();
    F.LogBayesFactor = Reader.readF64();
    F.LogThreshold = Reader.readF64();
    F.PadBytes = Reader.readU32();
    F.TrialCount = Reader.readU32();
    F.ObservedCount = Reader.readU32();
    ReplyOut.Diagnosis.Overflows.push_back(F);
  }
  const uint64_t NumDanglings = Reader.readVarU64();
  if (Reader.failed() || NumDanglings > MaxReplyFindings)
    return false;
  ReplyOut.Diagnosis.Danglings.clear();
  for (uint64_t I = 0; I < NumDanglings && !Reader.failed(); ++I) {
    CumulativeDanglingFinding F;
    F.AllocSite = Reader.readU32();
    F.FreeSite = Reader.readU32();
    F.LogBayesFactor = Reader.readF64();
    F.LogThreshold = Reader.readF64();
    F.DeferralTicks = Reader.readU64();
    F.TrialCount = Reader.readU32();
    F.ObservedCount = Reader.readU32();
    ReplyOut.Diagnosis.Danglings.push_back(F);
  }
  return !Reader.failed() && Source.remaining() == 0;
}

std::vector<uint8_t>
exterminator::encodePatchesReply(const PatchesReply &Reply) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(Reply.Instance);
  Writer.writeU64(Reply.Epoch);
  Writer.writeU8(Reply.Modified ? 1 : 0);
  if (Reply.Modified) {
    const std::vector<uint8_t> Blob = serializePatchSet(Reply.Patches);
    Writer.writeVarU64(Blob.size());
    Writer.writeBytes(Blob.data(), Blob.size());
  }
  return Payload;
}

bool exterminator::decodePatchesReply(const std::vector<uint8_t> &Payload,
                                      PatchesReply &ReplyOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  ReplyOut.Instance = Reader.readU64();
  ReplyOut.Epoch = Reader.readU64();
  const uint8_t Modified = Reader.readU8();
  if (Reader.failed() || Modified > 1)
    return false;
  ReplyOut.Modified = Modified != 0;
  ReplyOut.Patches.clear();
  if (ReplyOut.Modified) {
    const uint64_t BlobSize = Reader.readVarU64();
    if (Reader.failed() || BlobSize > Payload.size())
      return false;
    std::vector<uint8_t> Blob(BlobSize);
    if (!Reader.readBytes(Blob.data(), Blob.size()))
      return false;
    if (!deserializePatchSet(Blob, ReplyOut.Patches))
      return false;
  }
  return Source.remaining() == 0;
}

std::vector<uint8_t>
exterminator::encodeMergePatches(const PatchSet &Delta) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  const std::vector<uint8_t> Blob = serializePatchSet(Delta);
  Writer.writeVarU64(Blob.size());
  Writer.writeBytes(Blob.data(), Blob.size());
  return Payload;
}

bool exterminator::decodeMergePatches(const std::vector<uint8_t> &Payload,
                                      PatchSet &DeltaOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  const uint64_t BlobSize = Reader.readVarU64();
  if (Reader.failed() || BlobSize > Payload.size())
    return false;
  std::vector<uint8_t> Blob(BlobSize);
  if (!Reader.readBytes(Blob.data(), Blob.size()))
    return false;
  if (Source.remaining() != 0)
    return false;
  DeltaOut.clear();
  return deserializePatchSet(Blob, DeltaOut);
}

std::vector<uint8_t>
exterminator::encodeMergeReply(const MergeReply &Reply) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(Reply.Instance);
  Writer.writeU64(Reply.Epoch);
  Writer.writeU8(Reply.Changed ? 1 : 0);
  return Payload;
}

bool exterminator::decodeMergeReply(const std::vector<uint8_t> &Payload,
                                    MergeReply &ReplyOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  ReplyOut.Instance = Reader.readU64();
  ReplyOut.Epoch = Reader.readU64();
  const uint8_t Changed = Reader.readU8();
  if (Reader.failed() || Changed > 1)
    return false;
  ReplyOut.Changed = Changed != 0;
  return Source.remaining() == 0;
}

std::vector<uint8_t>
exterminator::encodeReplicateReply(const ReplicateAck &Reply) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(Reply.Instance);
  Writer.writeU64(Reply.Epoch);
  Writer.writeU8(Reply.Applied ? 1 : 0);
  return Payload;
}

bool exterminator::decodeReplicateReply(const std::vector<uint8_t> &Payload,
                                        ReplicateAck &ReplyOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  ReplyOut.Instance = Reader.readU64();
  ReplyOut.Epoch = Reader.readU64();
  const uint8_t Applied = Reader.readU8();
  if (Reader.failed() || Applied > 1)
    return false;
  ReplyOut.Applied = Applied != 0;
  return Source.remaining() == 0;
}

std::vector<uint8_t>
exterminator::encodeErrorReply(const std::string &Message) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeVarU64(Message.size());
  Writer.writeBytes(Message.data(), Message.size());
  return Payload;
}

bool exterminator::decodeErrorReply(const std::vector<uint8_t> &Payload,
                                    std::string &MessageOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  const uint64_t Size = Reader.readVarU64();
  if (Reader.failed() || Size > Payload.size())
    return false;
  MessageOut.resize(Size);
  if (!Reader.readBytes(MessageOut.data(), Size))
    return false;
  return Source.remaining() == 0;
}

std::vector<uint8_t> exterminator::encodeStatsRequest(StatsFormat Format) {
  return {static_cast<uint8_t>(Format)};
}

bool exterminator::decodeStatsRequest(const std::vector<uint8_t> &Payload,
                                      StatsFormat &FormatOut) {
  if (Payload.size() != 1 ||
      Payload[0] > static_cast<uint8_t>(StatsFormat::Text))
    return false;
  FormatOut = static_cast<StatsFormat>(Payload[0]);
  return true;
}

/// Sample counts in a reply are bounded by what a registry can plausibly
/// hold (tens of instruments plus a capped per-site family), not by what
/// a forged frame claims.
static constexpr uint64_t MaxStatsSamples = uint64_t(1) << 16;

std::vector<uint8_t> exterminator::encodeStatsReply(const StatsReply &Reply) {
  std::vector<uint8_t> Payload;
  VectorSink Sink(Payload);
  StreamWriter Writer(Sink);
  Writer.writeU64(Reply.Instance);
  Writer.writeU64(Reply.Epoch);
  Writer.writeU8(static_cast<uint8_t>(Reply.Format));
  if (Reply.Format == StatsFormat::Text) {
    Writer.writeVarU64(Reply.Text.size());
    Writer.writeBytes(Reply.Text.data(), Reply.Text.size());
    return Payload;
  }
  Writer.writeVarU64(Reply.Samples.size());
  for (const MetricSample &S : Reply.Samples) {
    Writer.writeVarU64(S.Name.size());
    Writer.writeBytes(S.Name.data(), S.Name.size());
    Writer.writeVarU64(S.Labels.size());
    Writer.writeBytes(S.Labels.data(), S.Labels.size());
    Writer.writeF64(S.Value);
    Writer.writeU8(static_cast<uint8_t>(S.Kind));
  }
  return Payload;
}

bool exterminator::decodeStatsReply(const std::vector<uint8_t> &Payload,
                                    StatsReply &ReplyOut) {
  MemorySource Source(Payload);
  StreamReader Reader(Source);
  ReplyOut.Instance = Reader.readU64();
  ReplyOut.Epoch = Reader.readU64();
  const uint8_t Format = Reader.readU8();
  if (Reader.failed() || Format > static_cast<uint8_t>(StatsFormat::Text))
    return false;
  ReplyOut.Format = static_cast<StatsFormat>(Format);
  if (ReplyOut.Format == StatsFormat::Text) {
    const uint64_t TextSize = Reader.readVarU64();
    if (Reader.failed() || TextSize > Payload.size())
      return false;
    ReplyOut.Text.resize(TextSize);
    if (!Reader.readBytes(ReplyOut.Text.data(), TextSize))
      return false;
    return Source.remaining() == 0;
  }
  const uint64_t Count = Reader.readVarU64();
  if (Reader.failed() || Count > MaxStatsSamples)
    return false;
  ReplyOut.Samples.clear();
  ReplyOut.Samples.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I) {
    MetricSample S;
    const uint64_t NameSize = Reader.readVarU64();
    if (Reader.failed() || NameSize > Payload.size())
      return false;
    S.Name.resize(NameSize);
    if (!Reader.readBytes(S.Name.data(), NameSize))
      return false;
    const uint64_t LabelsSize = Reader.readVarU64();
    if (Reader.failed() || LabelsSize > Payload.size())
      return false;
    S.Labels.resize(LabelsSize);
    if (!Reader.readBytes(S.Labels.data(), LabelsSize))
      return false;
    S.Value = Reader.readF64();
    const uint8_t Kind = Reader.readU8();
    if (Reader.failed() || Kind > static_cast<uint8_t>(SampleKind::Gauge))
      return false;
    S.Kind = static_cast<SampleKind>(Kind);
    ReplyOut.Samples.push_back(std::move(S));
  }
  return Source.remaining() == 0;
}

//===- exchange/FaultyTransport.cpp - Fault-injection decorator -----------===//

#include "exchange/FaultyTransport.h"

#include <chrono>
#include <thread>

using namespace exterminator;

bool FaultyTransport::exchange(
    const std::vector<std::vector<uint8_t>> &Requests,
    std::vector<std::vector<uint8_t>> &ResponsesOut) {
  ++Stats.Exchanges;
  LastError.clear();
  Plan Next;
  if (!Script.empty()) {
    Next = Script.front();
    Script.pop_front();
  }
  if (Next.Kind != TransportFault::None)
    ++Stats.Injected;

  switch (Next.Kind) {
  case TransportFault::FailConnect:
    LastError = "injected: connect failed";
    return false;

  case TransportFault::DropReply:
    // The server sees and applies the batch; the client never learns.
    Inner.exchange(Requests, ResponsesOut);
    ResponsesOut.clear();
    LastError = "injected: connection lost before replies";
    return false;

  case TransportFault::Duplicate: {
    std::vector<std::vector<uint8_t>> First;
    if (!Inner.exchange(Requests, First)) {
      LastError = Inner.lastError();
      return false;
    }
    break; // fall through to the second, authoritative delivery
  }

  case TransportFault::TruncateReply: {
    if (!Inner.exchange(Requests, ResponsesOut)) {
      LastError = Inner.lastError();
      return false;
    }
    if (!ResponsesOut.empty() && !ResponsesOut.back().empty())
      ResponsesOut.back().resize(ResponsesOut.back().size() / 2);
    return true;
  }

  case TransportFault::Delay:
    if (Next.DelayMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(Next.DelayMs));
    break;

  case TransportFault::None:
    break;
  }

  if (Inner.exchange(Requests, ResponsesOut))
    return true;
  LastError = Inner.lastError();
  return false;
}

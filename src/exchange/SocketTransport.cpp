//===- exchange/SocketTransport.cpp - Unix/TCP transport --------------------===//

#include "exchange/SocketTransport.h"

#include "exchange/PatchServer.h"
#include "exchange/WireProtocol.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Endpoint parsing
//===----------------------------------------------------------------------===//

bool exterminator::parseEndpoint(const std::string &Spec, Endpoint &Out) {
  if (Spec.rfind("unix:", 0) == 0) {
    Out.Family = Endpoint::Unix;
    Out.Path = Spec.substr(5);
    // sockaddr_un::sun_path is ~108 bytes; leave room for the NUL.
    return !Out.Path.empty() && Out.Path.size() < sizeof(sockaddr_un{}.sun_path);
  }
  if (Spec.rfind("tcp:", 0) == 0) {
    const std::string Rest = Spec.substr(4);
    const size_t Colon = Rest.rfind(':');
    std::string Host = "127.0.0.1";
    std::string PortStr = Rest;
    if (Colon != std::string::npos) {
      Host = Rest.substr(0, Colon);
      PortStr = Rest.substr(Colon + 1);
    }
    if (Host.empty() || PortStr.empty() ||
        PortStr.find_first_not_of("0123456789") != std::string::npos ||
        PortStr.size() > 5)
      return false;
    // Only IPv4 literals are supported (the connect path uses
    // inet_pton, no resolver); reject hostnames here so the user gets
    // an immediate parse error instead of a silent retry loop that can
    // never succeed.
    in_addr Parsed;
    if (::inet_pton(AF_INET, Host.c_str(), &Parsed) != 1)
      return false;
    const unsigned long Port = std::stoul(PortStr);
    if (Port > 65535)
      return false;
    Out.Family = Endpoint::Tcp;
    Out.Host = Host;
    Out.Port = static_cast<uint16_t>(Port);
    return true;
  }
  return false;
}

bool exterminator::parseEndpointList(const std::string &Spec,
                                     std::vector<Endpoint> &Out) {
  Out.clear();
  size_t Begin = 0;
  while (Begin <= Spec.size()) {
    size_t End = Spec.find(',', Begin);
    if (End == std::string::npos)
      End = Spec.size();
    Endpoint Ep;
    if (!parseEndpoint(Spec.substr(Begin, End - Begin), Ep))
      return false;
    Out.push_back(Ep);
    Begin = End + 1;
    if (End == Spec.size())
      break;
  }
  return !Out.empty();
}

std::string exterminator::endpointToString(const Endpoint &Ep) {
  if (Ep.Family == Endpoint::Unix)
    return "unix:" + Ep.Path;
  return "tcp:" + Ep.Host + ":" + std::to_string(Ep.Port);
}

//===----------------------------------------------------------------------===//
// Byte-stream plumbing
//===----------------------------------------------------------------------===//

/// Writes all of \p Size bytes (MSG_NOSIGNAL: a peer that hung up is a
/// return value, not a SIGPIPE).
static bool sendAll(int Fd, const uint8_t *Data, size_t Size) {
  while (Size > 0) {
    const ssize_t N = ::send(Fd, Data, Size, MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Size bytes; returns the count actually read (short
/// at EOF, error, or an expired deadline).  \p Deadline, when non-null,
/// is an absolute bound on the whole read: unlike a per-recv timeout
/// (SO_RCVTIMEO), it cannot be reset by a peer trickling one byte per
/// interval, so a slow-loris frame is cut off just like a silent one.
static size_t recvAll(int Fd, uint8_t *Data, size_t Size,
                      const std::chrono::steady_clock::time_point *Deadline =
                          nullptr) {
  size_t Total = 0;
  while (Total < Size) {
    if (Deadline) {
      const auto Now = std::chrono::steady_clock::now();
      if (Now >= *Deadline)
        break;
      const auto RemainingMs =
          std::chrono::duration_cast<std::chrono::milliseconds>(*Deadline -
                                                                Now)
              .count() +
          1;
      pollfd Poll{Fd, POLLIN, 0};
      const int Ready =
          ::poll(&Poll, 1, static_cast<int>(std::min<long long>(
                               RemainingMs, 1000000)));
      if (Ready < 0 && errno == EINTR)
        continue;
      if (Ready <= 0)
        break; // deadline expired (or a dead socket) with bytes pending
    }
    const ssize_t N = ::recv(Fd, Data + Total, Size - Total, 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Total += static_cast<size_t>(N);
  }
  return Total;
}

namespace {
enum class FrameRead {
  Frame,    ///< a complete frame landed in the buffer
  CleanEof, ///< the peer closed between frames
  Garbage,  ///< undelimitable bytes (bad magic / absurd length / cut off)
};
} // namespace

/// Reads one wire frame off \p Fd.  Delimits by the header's length
/// field after bounding it; full validation (checksum, type) stays with
/// decodeFrame.  On Garbage, \p Out holds whatever bytes arrived so the
/// caller can run them through decodeFrame for a precise error reply.
static FrameRead readFrameBytes(
    int Fd, std::vector<uint8_t> &Out,
    const std::chrono::steady_clock::time_point *Deadline = nullptr) {
  Out.resize(FrameHeaderBytes);
  const size_t HeaderGot =
      recvAll(Fd, Out.data(), FrameHeaderBytes, Deadline);
  if (HeaderGot == 0)
    return FrameRead::CleanEof;
  if (HeaderGot < FrameHeaderBytes) {
    Out.resize(HeaderGot);
    return FrameRead::Garbage;
  }
  const uint32_t Magic = readFrameU32(Out.data());
  const uint32_t Length = readFrameU32(Out.data() + 6);
  if (Magic != FrameMagic || Length > MaxFramePayload)
    return FrameRead::Garbage;
  Out.resize(FrameHeaderBytes + size_t(Length) + 4);
  if (recvAll(Fd, Out.data() + FrameHeaderBytes, size_t(Length) + 4,
              Deadline) != size_t(Length) + 4)
    return FrameRead::Garbage;
  return FrameRead::Frame;
}

//===----------------------------------------------------------------------===//
// SocketClientTransport
//===----------------------------------------------------------------------===//

bool SocketClientTransport::fail(const std::string &Context, int Errno) {
  LastError = endpointToString(Server) + ": " + Context;
  if (Errno != 0)
    LastError += std::string(": ") + std::strerror(Errno);
  return false;
}

int SocketClientTransport::connectToServer() {
  int LastErrno = 0;
  for (unsigned Attempt = 0;; ++Attempt) {
    int Fd = -1;
    if (Server.Family == Endpoint::Unix) {
      Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd >= 0) {
        sockaddr_un Addr{};
        Addr.sun_family = AF_UNIX;
        std::strncpy(Addr.sun_path, Server.Path.c_str(),
                     sizeof(Addr.sun_path) - 1);
        if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)) == 0)
          return Fd;
        LastErrno = errno;
        ::close(Fd);
        Fd = -1;
      } else {
        LastErrno = errno;
      }
    } else {
      Fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (Fd >= 0) {
        sockaddr_in Addr{};
        Addr.sin_family = AF_INET;
        Addr.sin_port = htons(Server.Port);
        if (::inet_pton(AF_INET, Server.Host.c_str(), &Addr.sin_addr) == 1 &&
            ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)) == 0)
          return Fd;
        LastErrno = errno;
        ::close(Fd);
        Fd = -1;
      } else {
        LastErrno = errno;
      }
    }
    if (Attempt >= ConnectRetries) {
      fail("connect failed", LastErrno);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool SocketClientTransport::exchange(
    const std::vector<std::vector<uint8_t>> &Requests,
    std::vector<std::vector<uint8_t>> &ResponsesOut) {
  ResponsesOut.clear();
  LastError.clear();
  if (Requests.empty())
    return true;
  const int Fd = connectToServer();
  if (Fd < 0)
    return false; // connectToServer recorded the reason

  // Pipeline: all requests out, then one response per request.  The
  // server answers in order, so no request ids are needed.
  bool Ok = true;
  for (const std::vector<uint8_t> &Request : Requests)
    if (!sendAll(Fd, Request.data(), Request.size())) {
      Ok = fail("send failed", errno);
      break;
    }
  for (size_t I = 0; Ok && I < Requests.size(); ++I) {
    std::vector<uint8_t> Response;
    const FrameRead Read = readFrameBytes(Fd, Response);
    if (Read != FrameRead::Frame) {
      // errno is only meaningful when recv actually failed; a clean
      // close or a short/garbled frame is a protocol-level report.
      Ok = fail(Read == FrameRead::CleanEof
                    ? "connection closed before reply " +
                          std::to_string(I + 1) + " of " +
                          std::to_string(Requests.size())
                    : "short or garbled reply frame",
                0);
      break;
    }
    ResponsesOut.push_back(std::move(Response));
  }
  ::close(Fd);
  return Ok;
}

//===----------------------------------------------------------------------===//
// SocketPatchServer
//===----------------------------------------------------------------------===//

SocketPatchServer::SocketPatchServer(PatchServer &Server, unsigned Workers)
    : Server(Server), Workers(Workers == 0 ? 1 : Workers) {}

SocketPatchServer::~SocketPatchServer() {
  stop();
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (!UnixPathToUnlink.empty())
    ::unlink(UnixPathToUnlink.c_str());
}

bool SocketPatchServer::listen(const Endpoint &Ep) {
  if (ListenFd >= 0)
    return false;
  Bound = Ep;
  if (Ep.Family == Endpoint::Unix) {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return false;
    ::unlink(Ep.Path.c_str()); // stale socket from a previous run
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Ep.Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0 ||
        ::listen(ListenFd, 64) != 0) {
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    UnixPathToUnlink = Ep.Path;
    return true;
  }

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return false;
  const int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Ep.Port);
  if (::inet_pton(AF_INET, Ep.Host.empty() ? "127.0.0.1" : Ep.Host.c_str(),
                  &Addr.sin_addr) != 1 ||
      ::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
          0 ||
      ::listen(ListenFd, 64) != 0) {
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  // tcp:0 asked the kernel for a port; report the real one.
  socklen_t AddrLen = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                    &AddrLen) == 0)
    Bound.Port = ntohs(Addr.sin_port);
  if (Bound.Host.empty())
    Bound.Host = "127.0.0.1";
  return true;
}

void SocketPatchServer::serve() {
  if (ListenFd < 0)
    return;
  // 1 + Workers indexes over a pool of the same size: the accept loop
  // and every worker each own one index for the whole serve lifetime,
  // and parallelFor's join barrier is the drain barrier.
  Pool = std::make_unique<Executor>(1 + Workers);
  Pool->parallelFor(1 + Workers, [this](size_t I) {
    if (I == 0)
      acceptLoop();
    else
      workerLoop();
  });
  Pool.reset();
}

bool SocketPatchServer::start() {
  if (ListenFd < 0 || Background.joinable())
    return false;
  Background = std::thread([this] { serve(); });
  return true;
}

void SocketPatchServer::requestStop() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping)
      return;
    Stopping = true;
    for (unsigned I = 0; I < Workers; ++I)
      Pending.push_back(-1);
  }
  QueueReady.notify_all();
  // Kicks accept() out with an error; the fd is closed in the
  // destructor (closing here would race a concurrent accept).
  ::shutdown(ListenFd, SHUT_RDWR);
}

void SocketPatchServer::stop() {
  requestStop();
  if (Background.joinable())
    Background.join();
}

void SocketPatchServer::attachMetrics(MetricsRegistry &Registry) {
  Registry.addCollector([this](std::vector<MetricSample> &Out) {
    MetricsRegistry::addCounter(
        Out, "xterm_connections_accepted_total", {},
        double(ConnectionsAccepted.load(std::memory_order_relaxed)));
    MetricsRegistry::addCounter(
        Out, "xterm_connections_shed_total", {},
        double(ConnectionsShed.load(std::memory_order_relaxed)));
    MetricsRegistry::addCounter(
        Out, "xterm_read_timeout_cutoffs_total", {},
        double(ReadTimeoutCutoffs.load(std::memory_order_relaxed)));
    MetricsRegistry::addGauge(
        Out, "xterm_active_connections", {},
        double(ActiveConnections.load(std::memory_order_relaxed)));
  });
}

void SocketPatchServer::acceptLoop() {
  for (;;) {
    // Poll before accepting so stop detection does not depend on
    // shutdown() unblocking accept() (Linux does, other platforms need
    // not); the 200 ms tick bounds shutdown latency either way.
    pollfd Poll{ListenFd, POLLIN, 0};
    const int Ready = ::poll(&Poll, 1, 200);
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      if (Stopping)
        return;
    }
    if (Ready < 0 && errno != EINTR) {
      requestStop();
      return;
    }
    if (Ready <= 0)
      continue;
    const int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // requestStop's shutdown(), or a dead listener either way.
      requestStop();
      return;
    }
    // Connection cap: shed load at the door instead of letting a flood
    // pin unbounded fds and queue memory.  Closing with nothing written
    // is the standard over-capacity signal (the client sees EOF and can
    // retry against a less loaded mirror).
    if (MaxConnections != 0 &&
        ActiveConnections.load(std::memory_order_acquire) >= MaxConnections) {
      ConnectionsShed.fetch_add(1, std::memory_order_relaxed);
      ::close(Fd);
      continue;
    }
    ConnectionsAccepted.fetch_add(1, std::memory_order_relaxed);
    ActiveConnections.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      if (Stopping) {
        ActiveConnections.fetch_sub(1, std::memory_order_acq_rel);
        ::close(Fd);
        return;
      }
      Pending.push_back(Fd);
    }
    QueueReady.notify_one();
  }
}

void SocketPatchServer::workerLoop() {
  for (;;) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueReady.wait(Lock, [this] { return !Pending.empty(); });
      Fd = Pending.front();
      Pending.pop_front();
    }
    if (Fd < 0)
      return; // stop sentinel
    serveConnection(Fd);
    ActiveConnections.fetch_sub(1, std::memory_order_acq_rel);
    if (Server.shutdownRequested())
      requestStop();
  }
}

void SocketPatchServer::serveConnection(int Fd) {
  // Every frame read runs against an absolute per-frame deadline: a
  // peer that stalls mid-frame, goes silent between frames, or
  // trickles bytes to keep a per-recv timeout alive is cut off after
  // at most ReadTimeoutMs, and readFrameBytes reports Garbage (partial
  // frame, answered with an ErrorReply) or CleanEof (idle between
  // frames) — the worker moves on either way.
  std::vector<uint8_t> Request, Response;
  for (;;) {
    std::chrono::steady_clock::time_point Deadline;
    if (ReadTimeoutMs != 0)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ReadTimeoutMs);
    const FrameRead Read =
        readFrameBytes(Fd, Request, ReadTimeoutMs != 0 ? &Deadline : nullptr);
    if (Read == FrameRead::CleanEof)
      break;
    // readFrameBytes reports a deadline expiry as Garbage (a partial
    // frame); the expired clock is what distinguishes a cut-off stall
    // from actual garbage bytes.
    if (Read == FrameRead::Garbage && ReadTimeoutMs != 0 &&
        std::chrono::steady_clock::now() >= Deadline)
      ReadTimeoutCutoffs.fetch_add(1, std::memory_order_relaxed);
    // handleFrame answers garbage with a precise ErrorReply; its false
    // return means the byte stream cannot be resynchronized, so reply
    // and close.
    const bool Resyncable = Server.handleFrame(Request, Response);
    sendAll(Fd, Response.data(), Response.size());
    if (Read != FrameRead::Frame || !Resyncable ||
        Server.shutdownRequested()) {
      // Lingering close.  The peer may still be writing a pipelined
      // batch; an immediate close() turns its unread bytes into an
      // RST, and a reset flushes the peer's receive queue — including
      // the ErrorReply just sent (for a version rejection, that reply
      // is the very evidence the client's downgrade logic needs).
      // Half-close our direction and drain, bounded in both time and
      // bytes, until the peer reads the reply and closes.
      ::shutdown(Fd, SHUT_WR);
      const auto LingerDeadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(1000);
      size_t LingerBudget = 4u << 20;
      for (;;) {
        const auto Now = std::chrono::steady_clock::now();
        if (Now >= LingerDeadline || LingerBudget == 0)
          break;
        const auto RemainingMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                LingerDeadline - Now)
                .count() +
            1;
        pollfd Poll{Fd, POLLIN, 0};
        const int Ready = ::poll(&Poll, 1, static_cast<int>(RemainingMs));
        if (Ready < 0 && errno == EINTR)
          continue;
        if (Ready <= 0)
          break;
        uint8_t Scratch[4096];
        const ssize_t N = ::recv(
            Fd, Scratch, std::min(sizeof(Scratch), LingerBudget), 0);
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0)
          break; // EOF: the peer saw the reply and closed
        LingerBudget -= static_cast<size_t>(N);
      }
      break;
    }
  }
  ::close(Fd);
}

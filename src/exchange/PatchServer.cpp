//===- exchange/PatchServer.cpp - Evidence ingestion service ----------------===//

#include "exchange/PatchServer.h"

#include <random>

using namespace exterminator;

/// Nonzero random instance id; entropy quality is irrelevant, only
/// cross-restart collision resistance (see PatchServer::instance).
static uint64_t randomInstanceId() {
  std::random_device Device;
  uint64_t Id = (uint64_t(Device()) << 32) | Device();
  return Id ? Id : 1;
}

PatchServer::PatchServer(const DiagnosisConfig &Config)
    : Pipeline(Config), Instance(randomInstanceId()) {}

void PatchServer::seedPatches(const PatchSet &Initial) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Pipeline.seedPatches(Initial);
}

PatchSnapshot PatchServer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Pipeline.snapshot();
}

PatchServerStats PatchServer::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

bool PatchServer::handleFrame(const uint8_t *Request, size_t Size,
                              std::vector<uint8_t> &ResponseOut) {
  Frame Parsed;
  size_t Consumed = 0;
  const FrameError Error = decodeFrame(Request, Size, Parsed, Consumed);
  if (Error != FrameError::None) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Stats.FramesRejected;
    }
    ResponseOut = encodeFrame(MessageType::ErrorReply,
                              encodeErrorReply(frameErrorName(Error)));
    return false;
  }
  if (Consumed != Size) {
    // One request frame per handleFrame call; trailing bytes mean the
    // transport mis-framed (byte-stream fronts delimit by the header's
    // length field, so this only fires for hostile input).
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.FramesRejected;
    ResponseOut = encodeFrame(MessageType::ErrorReply,
                              encodeErrorReply("trailing bytes after frame"));
    return false;
  }
  ResponseOut = dispatch(Parsed);
  return true;
}

std::vector<uint8_t> PatchServer::dispatch(const Frame &Request) {
  auto Reject = [this](const char *Reason) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.FramesRejected;
    return encodeFrame(MessageType::ErrorReply, encodeErrorReply(Reason));
  };

  switch (Request.Type) {
  case MessageType::SubmitImages: {
    ImageEvidence Evidence;
    if (!decodeSubmitImages(Request.Payload, Evidence))
      return Reject("malformed image bundle");
    // Isolation is the expensive part and reads only immutable config —
    // run it unlocked so concurrent fetches and submissions aren't
    // stalled behind it; only the merge serializes.
    const IsolationResult Result = Pipeline.isolateImages(Evidence);
    std::lock_guard<std::mutex> Lock(Mutex);
    Pipeline.absorbIsolation(Result);
    Stats.ImagesIngested +=
        Evidence.Primary.size() + Evidence.Fallback.size();
    ImagesReply Reply;
    Reply.Instance = Instance;
    Reply.Epoch = Pipeline.epoch();
    Reply.OverflowFindings = Result.Overflows.size();
    Reply.DanglingFindings = Result.Danglings.size();
    return encodeFrame(MessageType::SubmitImagesReply,
                       encodeImagesReply(Reply));
  }

  case MessageType::SubmitSummary: {
    RunSummary Summary;
    unsigned CleanStreak = 0;
    if (!decodeSubmitSummary(Request.Payload, Summary, CleanStreak))
      return Reject("malformed run summary");
    std::lock_guard<std::mutex> Lock(Mutex);
    SummaryReply Reply;
    Reply.Instance = Instance;
    Reply.Diagnosis = Pipeline.submitSummary(Summary, CleanStreak);
    Reply.Epoch = Pipeline.epoch();
    ++Stats.SummariesIngested;
    return encodeFrame(MessageType::SubmitSummaryReply,
                       encodeSummaryReply(Reply));
  }

  case MessageType::FetchPatches: {
    uint64_t KnownEpoch = 0, KnownInstance = 0;
    if (!decodeFetchPatches(Request.Payload, KnownEpoch, KnownInstance))
      return Reject("malformed fetch request");
    std::lock_guard<std::mutex> Lock(Mutex);
    PatchesReply Reply;
    Reply.Instance = Instance;
    Reply.Epoch = Pipeline.epoch();
    // Staleness is the (instance, epoch) pair: a client holding another
    // instance's epoch always gets the full set.
    Reply.Modified =
        KnownInstance != Instance || KnownEpoch != Reply.Epoch;
    if (Reply.Modified)
      Reply.Patches = Pipeline.patches();
    ++Stats.FetchesServed;
    if (!Reply.Modified)
      ++Stats.FetchesUnmodified;
    return encodeFrame(MessageType::PatchesReply,
                       encodePatchesReply(Reply));
  }

  case MessageType::Shutdown:
    if (!Request.Payload.empty())
      return Reject("shutdown carries no payload");
    ShutdownFlag.store(true, std::memory_order_release);
    return encodeFrame(MessageType::ShutdownReply, {});

  default:
    // A reply type arriving as a request.
    return Reject("reply type sent as request");
  }
}

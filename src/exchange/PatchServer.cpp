//===- exchange/PatchServer.cpp - Evidence ingestion service ----------------===//

#include "exchange/PatchServer.h"

#include "exchange/StateStore.h"

#include <random>

using namespace exterminator;

/// Nonzero random instance id; entropy quality is irrelevant, only
/// cross-restart collision resistance (see PatchServer::instance).
static uint64_t randomInstanceId() {
  std::random_device Device;
  uint64_t Id = (uint64_t(Device()) << 32) | Device();
  return Id ? Id : 1;
}

ReplicationSink::~ReplicationSink() = default;

PatchServer::PatchServer(const DiagnosisConfig &Config)
    : Pipeline(Config), Instance(randomInstanceId()) {}

bool PatchServer::noteToken(uint64_t Token) {
  if (Token == 0)
    return true;
  if (TokensCurrent.count(Token) || TokensPrevious.count(Token))
    return false;
  if (TokensCurrent.size() >= TokenWindow) {
    TokensPrevious = std::move(TokensCurrent);
    TokensCurrent.clear();
  }
  TokensCurrent.insert(Token);
  return true;
}

void PatchServer::seedPatches(const PatchSet &Initial) {
  bool Changed = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    const uint64_t Before = Pipeline.epoch();
    Pipeline.seedPatches(Initial);
    Changed = Pipeline.epoch() != Before;
    if (Store && Changed) {
      StateStore::JournalRecord Record;
      Record.RecordKind = StateStore::JournalRecord::PatchesKind;
      Record.EpochAfter = Pipeline.epoch();
      Record.PatchDelta = Initial;
      Store->enqueue(Record);
    }
  }
  if (Changed && Store)
    persistQueued();
  // A seed is a local origin (an operator handed this server a patch
  // file), so it streams to peers like any accepted submission.
  if (Changed && Replica)
    Replica->onPatchDelta(Initial);
}

bool PatchServer::mergePatches(const PatchSet &Delta) {
  bool Changed = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    const uint64_t Before = Pipeline.epoch();
    Pipeline.seedPatches(Delta);
    Changed = Pipeline.epoch() != Before;
    ++Stats.MergesIngested;
    if (Store && Changed) {
      StateStore::JournalRecord Record;
      Record.RecordKind = StateStore::JournalRecord::PatchesKind;
      Record.EpochAfter = Pipeline.epoch();
      Record.PatchDelta = Delta;
      Store->enqueue(Record);
    }
  }
  if (Changed && Store)
    persistQueued();
  // Remote origin: no replication-sink forward (no-restream rule).
  return Changed;
}

bool PatchServer::attachState(StateStore &NewStore, unsigned Interval,
                              std::string *ErrorOut) {
  auto Fail = [&](const char *Reason) {
    if (ErrorOut)
      *ErrorOut = Reason;
    return false;
  };
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<uint8_t> State;
  std::vector<StateStore::JournalRecord> Records;
  switch (NewStore.load(State, Records)) {
  case StateStore::LoadResult::Corrupt:
    return Fail("state directory is corrupt (truncated snapshot, or a "
                "journal that does not pair with it)");
  case StateStore::LoadResult::Fresh:
    break;
  case StateStore::LoadResult::Restored: {
    // Restore and replay into a scratch pipeline first: a journal that
    // conflicts partway through must not leave the *serving* pipeline
    // holding a partially replayed foreign history.
    DiagnosisPipeline Scratch(Pipeline.config());
    if (!Scratch.restoreState(State))
      return Fail("snapshot payload does not decode");
    for (const StateStore::JournalRecord &Record : Records) {
      // Replay is the same code path live ingestion took, so the
      // rebuilt state is bit-identical to the pre-crash server's.
      if (Record.RecordKind == StateStore::JournalRecord::PatchesKind)
        Scratch.seedPatches(Record.PatchDelta);
      else
        Scratch.submitSummary(Record.Summary, Record.CleanStreak);
      if (Scratch.epoch() != Record.EpochAfter)
        return Fail("conflicting epochs: journal records do not replay "
                    "against this snapshot");
    }
    if (!Pipeline.restoreState(Scratch.serializeState()))
      return Fail("snapshot payload does not decode");
    // Rebuild the duplicate-suppression window from the replayed
    // records: a client retrying across the restart must still be
    // suppressed (tokens from before the snapshot are gone, but so is
    // any plausible retry window).
    for (const StateStore::JournalRecord &Record : Records)
      if (Record.RecordKind == StateStore::JournalRecord::SummaryKind)
        noteToken(Record.Token);
    break;
  }
  }
  // Compact everything replayed into one fresh snapshot; this also
  // resets the journal, so appends never follow a torn tail.
  if (!NewStore.writeSnapshot(Pipeline.serializeState()))
    return Fail("cannot write snapshot to state directory");
  ++Stats.SnapshotsWritten;
  Store = &NewStore;
  SnapshotInterval = Interval ? Interval : 1;
  return true;
}

bool PatchServer::persistNow() {
  if (!Store)
    return true;
  std::lock_guard<std::mutex> Lock(Mutex);
  const bool Ok = Store->writeSnapshot(Pipeline.serializeState());
  if (Ok)
    ++Stats.SnapshotsWritten;
  else
    ++Stats.PersistFailures;
  return Ok;
}

std::vector<uint8_t> PatchServer::serializeState() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Pipeline.serializeState();
}

void PatchServer::persistQueued() {
  if (!Store)
    return;
  size_t Appended = 0;
  const bool Ok = Store->drain(Appended);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stats.JournalAppends += Appended;
    if (!Ok)
      ++Stats.PersistFailures;
  }
  // A failed drain (full disk, torn append) disables the journal; a
  // successful snapshot re-establishes full durability — the pipeline
  // state already contains every applied submission, including the
  // records the drain dropped — and reopens a fresh journal.  While the
  // disk stays broken this retries (and counts a failure) per
  // submission; the previous snapshot is never at risk.
  if (!Ok || Store->appendedSinceSnapshot() >= SnapshotInterval)
    persistNow();
}

PatchSnapshot PatchServer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Pipeline.snapshot();
}

uint64_t PatchServer::cumulativeRuns() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Pipeline.cumulative().runCount();
}

PatchServerStats PatchServer::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

uint64_t PatchServer::epoch() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Pipeline.epoch();
}

void PatchServer::attachMetrics(MetricsRegistry &Registry) {
  Metrics = &Registry;
  Registry.addCollector(
      [this](std::vector<MetricSample> &Out) { collectMetrics(Out); });
}

void PatchServer::collectMetrics(std::vector<MetricSample> &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsRegistry::addCounter(Out, "xterm_ingest_images_total", {},
                              double(Stats.ImagesIngested));
  MetricsRegistry::addCounter(Out, "xterm_ingest_summaries_total", {},
                              double(Stats.SummariesIngested));
  MetricsRegistry::addCounter(Out, "xterm_fetches_served_total", {},
                              double(Stats.FetchesServed));
  MetricsRegistry::addCounter(Out, "xterm_fetches_unmodified_total", {},
                              double(Stats.FetchesUnmodified));
  MetricsRegistry::addCounter(Out, "xterm_frames_rejected_total", {},
                              double(Stats.FramesRejected));
  MetricsRegistry::addCounter(Out, "xterm_journal_appends_total", {},
                              double(Stats.JournalAppends));
  MetricsRegistry::addCounter(Out, "xterm_snapshots_written_total", {},
                              double(Stats.SnapshotsWritten));
  MetricsRegistry::addCounter(Out, "xterm_persist_failures_total", {},
                              double(Stats.PersistFailures));
  MetricsRegistry::addCounter(Out, "xterm_merges_ingested_total", {},
                              double(Stats.MergesIngested));
  MetricsRegistry::addCounter(Out, "xterm_replicated_summaries_total", {},
                              double(Stats.ReplicatedSummaries));
  MetricsRegistry::addCounter(Out, "xterm_duplicates_suppressed_total", {},
                              double(Stats.DuplicatesSuppressed));
  MetricsRegistry::addCounter(Out, "xterm_stats_served_total", {},
                              double(Stats.StatsServed));
  Pipeline.collectMetrics(Out);
}

bool PatchServer::handleFrame(const uint8_t *Request, size_t Size,
                              std::vector<uint8_t> &ResponseOut) {
  Frame Parsed;
  size_t Consumed = 0;
  const FrameError Error = decodeFrame(Request, Size, Parsed, Consumed);
  if (Error != FrameError::None) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Stats.FramesRejected;
    }
    // The sender's version is unknown (or unparseable), so the error
    // answers in the legacy encoding every client generation reads.
    ResponseOut = encodeFrame(MessageType::ErrorReply,
                              encodeErrorReply(frameErrorName(Error)),
                              LegacyProtocolVersion);
    return false;
  }
  if (Parsed.Version > MaxWireVersion) {
    // The legacy-peer emulation (setMaxWireVersion): answer exactly as
    // a pre-v4 server's decodeFrame rejection would — a v3 ErrorReply
    // saying "unknown protocol version", then close the connection —
    // which is the reply a v4 client keys its downgrade on.
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Stats.FramesRejected;
    }
    ResponseOut =
        encodeFrame(MessageType::ErrorReply,
                    encodeErrorReply(frameErrorName(FrameError::BadVersion)),
                    LegacyProtocolVersion);
    return false;
  }
  if (Consumed != Size) {
    // One request frame per handleFrame call; trailing bytes mean the
    // transport mis-framed (byte-stream fronts delimit by the header's
    // length field, so this only fires for hostile input).
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.FramesRejected;
    ResponseOut = encodeFrame(MessageType::ErrorReply,
                              encodeErrorReply("trailing bytes after frame"),
                              Parsed.Version);
    return false;
  }
  ResponseOut = dispatch(Parsed);
  return true;
}

std::vector<uint8_t> PatchServer::dispatch(const Frame &Request) {
  // Every reply echoes the request's wire version: a legacy v3 peer
  // must never be handed a v4 envelope it cannot parse, and a v4 peer
  // gets its replies compressed.
  const uint8_t Version = Request.Version;
  auto Respond = [Version](MessageType Type,
                           const std::vector<uint8_t> &Payload) {
    return encodeFrame(Type, Payload, Version);
  };
  auto Reject = [this, &Respond](const char *Reason) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.FramesRejected;
    return Respond(MessageType::ErrorReply, encodeErrorReply(Reason));
  };

  switch (Request.Type) {
  case MessageType::SubmitImages: {
    ImageEvidence Evidence;
    if (!decodeSubmitImages(Request.Payload, Evidence))
      return Reject("malformed image bundle");
    // Isolation is the expensive part and reads only immutable config —
    // run it unlocked so concurrent fetches and submissions aren't
    // stalled behind it; only the merge serializes.  Likewise the
    // journal: the record is *enqueued* under the lock (fixing its
    // replay order) but written to disk after release.
    const IsolationResult Result = Pipeline.isolateImages(Evidence);
    ImagesReply Reply;
    bool Changed = false;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      const uint64_t Before = Pipeline.epoch();
      Pipeline.absorbIsolation(Result);
      Stats.ImagesIngested +=
          Evidence.Primary.size() + Evidence.Fallback.size();
      Reply.Instance = Instance;
      Reply.Epoch = Pipeline.epoch();
      Reply.OverflowFindings = Result.Overflows.size();
      Reply.DanglingFindings = Result.Danglings.size();
      Changed = Reply.Epoch != Before;
      // An image submission's only durable effect is the patch merge, so
      // journal the derived delta — and only when it changed the set
      // (max-merge idempotence makes re-submissions no-ops).
      if (Store && Changed) {
        StateStore::JournalRecord Record;
        Record.RecordKind = StateStore::JournalRecord::PatchesKind;
        Record.EpochAfter = Reply.Epoch;
        Record.PatchDelta = Result.Patches;
        Store->enqueue(Record);
      }
    }
    if (Changed && Store)
      persistQueued();
    if (Changed && Replica)
      Replica->onPatchDelta(Result.Patches);
    return Respond(MessageType::SubmitImagesReply, encodeImagesReply(Reply));
  }

  case MessageType::SubmitSummary: {
    RunSummary Summary;
    unsigned CleanStreak = 0;
    uint64_t Token = 0;
    if (!decodeSubmitSummary(Request.Payload, Summary, CleanStreak, Token))
      return Reject("malformed run summary");
    SummaryReply Reply;
    bool Applied = false;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Reply.Instance = Instance;
      Applied = noteToken(Token);
      if (Applied) {
        Reply.Diagnosis = Pipeline.submitSummary(Summary, CleanStreak);
        ++Stats.SummariesIngested;
      } else {
        // A retry of a summary this server (or a replica that forwarded
        // it here) already counted: acknowledge with the current state
        // and an empty diagnosis, but do not grow the trial history
        // again — that is the epoch-idempotence the duplicate tests
        // pin.
        ++Stats.DuplicatesSuppressed;
      }
      Reply.Epoch = Pipeline.epoch();
      // Every accepted summary is journaled, epoch bump or not: it
      // grows the cumulative trial state even when no patch is derived,
      // and the Bayes history is exactly what restarts must not lose.
      if (Store && Applied) {
        StateStore::JournalRecord Record;
        Record.RecordKind = StateStore::JournalRecord::SummaryKind;
        Record.EpochAfter = Reply.Epoch;
        Record.Summary = Summary;
        Record.CleanStreak = CleanStreak;
        Record.Token = Token;
        Store->enqueue(Record);
      }
    }
    if (Applied && Store)
      persistQueued();
    if (Applied && Replica)
      Replica->onSummary(Summary, CleanStreak, Token);
    return Respond(MessageType::SubmitSummaryReply,
                   encodeSummaryReply(Reply));
  }

  case MessageType::MergePatches: {
    PatchSet Delta;
    if (!decodeMergePatches(Request.Payload, Delta))
      return Reject("malformed patch delta");
    MergeReply Reply;
    Reply.Changed = mergePatches(Delta);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Reply.Instance = Instance;
      Reply.Epoch = Pipeline.epoch();
    }
    return Respond(MessageType::MergePatchesReply, encodeMergeReply(Reply));
  }

  case MessageType::ReplicateSummary: {
    RunSummary Summary;
    unsigned CleanStreak = 0;
    uint64_t Token = 0;
    if (!decodeSubmitSummary(Request.Payload, Summary, CleanStreak, Token))
      return Reject("malformed run summary");
    ReplicateAck Reply;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Reply.Instance = Instance;
      Reply.Applied = noteToken(Token);
      if (Reply.Applied) {
        Pipeline.submitSummary(Summary, CleanStreak);
        ++Stats.ReplicatedSummaries;
      } else {
        ++Stats.DuplicatesSuppressed;
      }
      Reply.Epoch = Pipeline.epoch();
      if (Store && Reply.Applied) {
        StateStore::JournalRecord Record;
        Record.RecordKind = StateStore::JournalRecord::SummaryKind;
        Record.EpochAfter = Reply.Epoch;
        Record.Summary = Summary;
        Record.CleanStreak = CleanStreak;
        Record.Token = Token;
        Store->enqueue(Record);
      }
    }
    if (Reply.Applied && Store)
      persistQueued();
    // Remote origin: never re-forwarded (no-restream rule).
    return Respond(MessageType::ReplicateReply, encodeReplicateReply(Reply));
  }

  case MessageType::FetchPatches: {
    uint64_t KnownEpoch = 0, KnownInstance = 0;
    if (!decodeFetchPatches(Request.Payload, KnownEpoch, KnownInstance))
      return Reject("malformed fetch request");
    std::lock_guard<std::mutex> Lock(Mutex);
    PatchesReply Reply;
    Reply.Instance = Instance;
    Reply.Epoch = Pipeline.epoch();
    // Staleness is the (instance, epoch) pair: a client holding another
    // instance's epoch always gets the full set.
    Reply.Modified =
        KnownInstance != Instance || KnownEpoch != Reply.Epoch;
    if (Reply.Modified)
      Reply.Patches = Pipeline.patches();
    ++Stats.FetchesServed;
    if (!Reply.Modified)
      ++Stats.FetchesUnmodified;
    return Respond(MessageType::PatchesReply, encodePatchesReply(Reply));
  }

  case MessageType::Stats: {
    StatsFormat Format;
    if (!decodeStatsRequest(Request.Payload, Format))
      return Reject("malformed stats request");
    // Snapshot *outside* Mutex: collectors (this server's included)
    // take their own locks.
    MetricsSnapshot Snap;
    if (Metrics)
      Snap = Metrics->snapshot();
    else
      collectMetrics(Snap.Samples);
    StatsReply Reply;
    Reply.Format = Format;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Reply.Instance = Instance;
      Reply.Epoch = Pipeline.epoch();
      ++Stats.StatsServed;
    }
    if (Format == StatsFormat::Text)
      Reply.Text = MetricsRegistry::renderText(Snap);
    else
      Reply.Samples = std::move(Snap.Samples);
    return Respond(MessageType::StatsReply, encodeStatsReply(Reply));
  }

  case MessageType::Shutdown:
    if (!Request.Payload.empty())
      return Reject("shutdown carries no payload");
    ShutdownFlag.store(true, std::memory_order_release);
    return Respond(MessageType::ShutdownReply, {});

  default:
    // A reply type arriving as a request.
    return Reject("reply type sent as request");
  }
}

//===- exchange/StateStore.h - Durable exchange state ----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable state for the patch server: what makes restarts lossless.
/// §6.4's community of users only pays off if accumulated evidence
/// survives the server process — the §5.1 Bayesian classifier needs the
/// full trial history, not just the patches it has derived so far.
///
/// A state directory holds a ring of snapshots plus one journal:
///
///  * `snapshot-<generation>.xst` ("XST1") — checksummed snapshots of
///    the full diagnostic state (DiagnosisPipeline::serializeState:
///    epoch, active patch set, cumulative isolator with its running
///    Bayes sums), one file per generation, the last K generations
///    retained (setSnapshotKeep; default 2).  Each is written through
///    the crash-safe writeFileBytes (temp file + fsync + rename), so a
///    crash mid-write leaves prior snapshots intact; keeping more than
///    one means even external corruption of the newest file (the disk,
///    not this class) degrades to the previous generation instead of an
///    unusable directory.  The pre-rotation single `snapshot.xst`
///    layout still loads.
///
///  * `journal.xsj` ("XSJ1") — an append-only journal of the accepted
///    state-changing submissions since the newest snapshot.  Each
///    record is length-prefixed and checksummed and carries the epoch
///    the server held after applying it; replaying the journal on top
///    of its snapshot reproduces the exact pre-crash state, and a torn
///    tail (the record a crash interrupted) is detected and skipped.
///    Header version 2 records also carry the submission's dedup token
///    (version-1 journals still load, with zero tokens).  Version 3
///    records may travel through the codec layer: a record whose
///    encoding crosses a size threshold is stored as a marker byte plus
///    its compressed envelope, with the declared expansion bounded
///    before any allocation.  Snapshots compress the same way from
///    snapshot version 2 (older snapshots and journals still load).
///
/// The generation counter pairs the journal with its snapshot: a
/// snapshot write bumps it and resets the journal, so a crash between
/// those steps leaves a stale-generation journal that load() ignores
/// (its records are already inside the snapshot).  load() restores the
/// newest snapshot that validates; the journal replays only on top of
/// its exact-generation snapshot — when that snapshot is the corrupt
/// one being skipped, the journal is sacrificed with it (falling back a
/// generation is lossy by definition).  A journal generation ahead of
/// *every* snapshot present can only mean the directory mixes files
/// from different servers — that stays Corrupt rather than a guess.
///
/// Write path: callers enqueue() encoded records while holding whatever
/// lock orders their application (the patch server's pipeline mutex —
/// enqueue is a cheap queue push, so the lock is never held across file
/// IO), then drain() outside that lock to append and fsync.  drain()
/// returns only once every record enqueued before the call is on disk,
/// so a server that drains before replying has made that reply durable.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_STATESTORE_H
#define EXTERMINATOR_EXCHANGE_STATESTORE_H

#include "cumulative/RunSummary.h"
#include "observe/MetricsRegistry.h"
#include "patch/RuntimePatch.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace exterminator {

/// Manages one durable-state directory (see file comment).
class StateStore {
public:
  /// Opens (creating if needed) the state directory at \p Directory.
  explicit StateStore(const std::string &Directory);
  ~StateStore();

  StateStore(const StateStore &) = delete;
  StateStore &operator=(const StateStore &) = delete;

  /// One journaled submission.
  struct JournalRecord {
    enum Kind : uint8_t {
      /// A patch-set delta max-merged into the active set (an image
      /// submission's isolation result, or a seed file).
      PatchesKind = 1,
      /// One accepted run summary (changes the cumulative trial state
      /// even when no patch is derived, so every summary is journaled).
      SummaryKind = 2,
    };
    uint8_t RecordKind = PatchesKind;
    /// The server's epoch after applying this record; replay verifies
    /// it so a journal can never be applied against the wrong snapshot.
    uint64_t EpochAfter = 0;
    PatchSet PatchDelta;      ///< PatchesKind
    RunSummary Summary;       ///< SummaryKind
    unsigned CleanStreak = 0; ///< SummaryKind
    /// SummaryKind: the submission's dedup token, so a replayed server
    /// still suppresses a client retry that straddles its restart.
    uint64_t Token = 0;
  };

  enum class LoadResult {
    Fresh,    ///< no prior state (empty or brand-new directory)
    Restored, ///< snapshot (and any replayable journal records) loaded
    Corrupt,  ///< state present but unusable; do not serve from it
  };

  /// Reads the directory's state: on Restored, \p SnapshotStateOut holds
  /// the pipeline-state blob of the newest snapshot that validates and
  /// \p RecordsOut the journal records to replay on top of it, in
  /// append order.  A torn journal tail is skipped (everything before
  /// it is returned); a journal whose generation does not match the
  /// chosen snapshot is ignored wholesale (stale, or paired with a
  /// corrupt head snapshot that was skipped).  Corrupt means nothing in
  /// the directory is servable: every snapshot fails validation, or a
  /// journal claims a generation no snapshot file accounts for.
  LoadResult load(std::vector<uint8_t> &SnapshotStateOut,
                  std::vector<JournalRecord> &RecordsOut);

  /// Retention: how many generation-numbered snapshots writeSnapshot
  /// leaves on disk (clamped to >= 1; default 2 — the head plus one
  /// fallback).  Call before attaching.
  void setSnapshotKeep(unsigned Keep) { SnapshotKeep = Keep ? Keep : 1; }

  /// The on-disk snapshot files, newest generation first (observability
  /// for the retention tests and the CLI).
  std::vector<std::string> snapshotFiles() const;

  /// Writes \p PipelineState as the new snapshot (crash-safe replace),
  /// bumps the generation, and resets the journal — including any
  /// enqueued-but-undrained records, whose effects the caller's state
  /// already contains.  Returns false on I/O failure (the previous
  /// snapshot then remains authoritative).
  bool writeSnapshot(const std::vector<uint8_t> &PipelineState);

  /// Queues one record for the journal.  Cheap (encode + push): call it
  /// while holding the lock that orders record application, so the
  /// journal order always matches the apply order.
  void enqueue(const JournalRecord &Record);

  /// Appends every queued record to the journal and fsyncs.  Call
  /// outside the application lock — this is the file IO.  On return,
  /// all records enqueued before the call are durable (possibly written
  /// by a concurrent drainer).  \p AppendedOut is how many this call
  /// wrote.  Returns false on I/O failure.
  bool drain(size_t &AppendedOut);

  /// Records appended since the last snapshot (the snapshot-interval
  /// trigger).
  uint64_t appendedSinceSnapshot() const;

  /// Publishes journal IO latency into \p Registry as the
  /// xterm_journal_append_seconds (per-drain batch write) and
  /// xterm_journal_fsync_seconds (per-drain fflush+fsync) histograms.
  /// Push-model: the fsync these time dwarfs the atomic bucket bumps.
  /// Attach before serving.
  void attachMetrics(MetricsRegistry &Registry);

  const std::string &directory() const { return Dir; }
  /// Path of the newest on-disk snapshot (the head of the ring), or of
  /// the legacy single-file layout when only that exists.
  std::string snapshotPath() const;
  std::string journalPath() const;

private:
  bool openJournalForAppend();
  void closeJournal();
  std::string rotatedSnapshotPath(uint64_t Gen) const;
  void pruneSnapshots(uint64_t NewestGen);

  std::string Dir;
  /// Snapshot/journal pairing counter; 0 until the first snapshot.
  uint64_t Generation = 0;
  unsigned SnapshotKeep = 2;

  std::mutex QueueMutex;
  std::vector<std::vector<uint8_t>> Queue;

  /// Serializes journal file access (appends and resets).  Lock order:
  /// callers may hold their application lock when enqueueing (which
  /// takes only QueueMutex) but must not hold JournalMutex while
  /// acquiring it.
  std::mutex JournalMutex;
  std::FILE *Journal = nullptr;
  std::atomic<uint64_t> Appended{0};
  bool JournalFailed = false;

  /// Observability (no-op handles until attachMetrics).
  MetricsRegistry::Histogram AppendLatency;
  MetricsRegistry::Histogram FsyncLatency;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_STATESTORE_H

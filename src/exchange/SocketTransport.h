//===- exchange/SocketTransport.h - Unix/TCP transport ---------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket leg of the patch exchange: a client transport that
/// pipelines frames over one Unix-domain or TCP connection, and a server
/// front-end that pumps accepted connections through PatchServer on a
/// small accept/worker loop built from support/Executor.
///
/// Endpoints are spelled as strings so the CLI, the example, and the
/// tests share one parser:
///
///   unix:/path/to.sock       Unix-domain socket
///   tcp:PORT                 TCP on 127.0.0.1 (0 = kernel-assigned)
///   tcp:HOST:PORT            TCP on an explicit IPv4 literal (no
///                            resolver: hostnames are a parse error)
///
/// Framing over the byte stream is the wire protocol's own: read the
/// fixed header, bound-check the length, read payload + checksum.  A
/// connection that sends garbage gets an ErrorReply and is closed — the
/// server never dies on hostile input (tests pin this).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_SOCKETTRANSPORT_H
#define EXTERMINATOR_EXCHANGE_SOCKETTRANSPORT_H

#include "exchange/Transport.h"
#include "support/Executor.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace exterminator {

class MetricsRegistry;
class PatchServer;

/// A parsed endpoint string.
struct Endpoint {
  enum Kind { Unix, Tcp } Family = Unix;
  std::string Path; ///< Unix: socket path.
  std::string Host; ///< Tcp: IPv4 host (default 127.0.0.1).
  uint16_t Port = 0;
};

/// Parses "unix:PATH", "tcp:PORT", or "tcp:HOST:PORT"; returns false on
/// anything else.
bool parseEndpoint(const std::string &Spec, Endpoint &Out);

/// Parses a comma-separated endpoint list — the failover spelling the
/// CLI accepts ("unix:/a.sock,tcp:7302,tcp:10.0.0.3:7303"); order is
/// preference order.  False on an empty list or any bad element.
bool parseEndpointList(const std::string &Spec, std::vector<Endpoint> &Out);

/// Renders an endpoint back to its string spelling.
std::string endpointToString(const Endpoint &Ep);

/// Client transport over one connection per exchange.  Each exchange
/// connects, writes every request frame (pipelining), reads one response
/// frame per request, and closes.
class SocketClientTransport : public ClientTransport {
public:
  /// \param ConnectRetries extra connect attempts (50 ms apart) before
  ///        giving up — absorbs the server-startup race in scripted use
  ///        (CI starts `xtermtool serve` in the background and submits
  ///        immediately).  Pass 0 when a failover wrapper owns the
  ///        retry policy.
  explicit SocketClientTransport(const Endpoint &Server,
                                 unsigned ConnectRetries = 40)
      : Server(Server), ConnectRetries(ConnectRetries) {}

  bool exchange(const std::vector<std::vector<uint8_t>> &Requests,
                std::vector<std::vector<uint8_t>> &ResponsesOut) override;

  /// "<endpoint>: <what failed>: <strerror>" for the last failure.
  std::string lastError() const override { return LastError; }

  const Endpoint &serverEndpoint() const { return Server; }

private:
  int connectToServer();
  /// Records "<endpoint>: <Context>[: strerror(Errno)]"; returns false
  /// so failure paths read `return fail(...)`.
  bool fail(const std::string &Context, int Errno);

  Endpoint Server;
  unsigned ConnectRetries;
  std::string LastError;
};

/// Socket front-end for a PatchServer: accepts connections and pumps
/// their frames through handleFrame.
///
/// The serving loop runs as one Executor::parallelFor over
/// 1 + Workers indexes: index 0 accepts and enqueues connections, the
/// rest drain the queue, each owning one connection at a time (a
/// connection may carry many frames — clients batch).  The fork-join
/// barrier doubles as shutdown: requestStop() closes the listening
/// socket and enqueues one sentinel per worker, so serve() returns only
/// when every in-flight connection has drained.
class SocketPatchServer {
public:
  /// \param Workers concurrent connection handlers (≥ 1).
  SocketPatchServer(PatchServer &Server, unsigned Workers = 2);
  ~SocketPatchServer();

  /// Per-frame read deadline: each frame must arrive in full within
  /// this long, measured from its first byte being awaited — an
  /// absolute bound, so a peer that stalls, goes silent between
  /// frames, or trickles bytes to keep a per-recv timeout alive parks
  /// a worker for at most one deadline instead of indefinitely.
  /// 0 disables the deadline.  Call before serving.
  void setReadTimeout(unsigned Milliseconds) {
    ReadTimeoutMs = Milliseconds;
  }

  /// Caps concurrent connections (queued + in service); connections
  /// accepted past the cap are closed immediately, bounding the fds and
  /// queue memory a connection flood can pin.  0 means unlimited.
  /// Call before serving.
  void setMaxConnections(unsigned Cap) { MaxConnections = Cap; }

  SocketPatchServer(const SocketPatchServer &) = delete;
  SocketPatchServer &operator=(const SocketPatchServer &) = delete;

  /// Binds and listens on \p Ep; returns false on socket failure.  For
  /// tcp:0 the kernel assigns a port — read it back via endpoint().
  bool listen(const Endpoint &Ep);

  /// The bound endpoint (with the real port after tcp:0).
  const Endpoint &endpoint() const { return Bound; }

  /// Serves until a Shutdown frame is accepted or requestStop() is
  /// called.  Blocks the caller (it participates in the pool).
  void serve();

  /// serve() on a background thread.
  bool start();

  /// Initiates shutdown without waiting (callable from any thread,
  /// including a connection worker).
  void requestStop();

  /// requestStop() and join the background thread, if any.
  void stop();

  /// Attaches the observability plane: a pull collector exporting
  /// connections accepted/shed, read-timeout cutoffs, and the active
  /// connection gauge.  Attach before serving; this front-end must
  /// outlive the registry's last snapshot.
  void attachMetrics(MetricsRegistry &Registry);

private:
  void acceptLoop();
  void workerLoop();
  /// Pumps one connection: frame in, handleFrame, frame out, until EOF
  /// or an unrecoverable parse error.
  void serveConnection(int Fd);

  PatchServer &Server;
  unsigned Workers;
  Endpoint Bound;
  int ListenFd = -1;
  std::string UnixPathToUnlink;
  /// 30 s default: generous for a live client, finite for a dead one.
  unsigned ReadTimeoutMs = 30000;
  unsigned MaxConnections = 0;
  /// Connections accepted and not yet fully served.
  std::atomic<unsigned> ActiveConnections{0};
  /// Observability counters (exported by attachMetrics; always
  /// maintained — they are single relaxed atomics on per-connection,
  /// not per-frame, paths).
  std::atomic<uint64_t> ConnectionsAccepted{0};
  std::atomic<uint64_t> ConnectionsShed{0};
  std::atomic<uint64_t> ReadTimeoutCutoffs{0};

  std::mutex QueueMutex;
  std::condition_variable QueueReady;
  /// Accepted connection fds; -1 is the per-worker stop sentinel.
  std::deque<int> Pending;
  bool Stopping = false;

  std::unique_ptr<Executor> Pool;
  std::thread Background;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_SOCKETTRANSPORT_H

//===- exchange/FaultyTransport.h - Fault-injection decorator --*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ClientTransport decorator that injects transport faults on a
/// script: the deterministic half of the chaos harness.  Each
/// exchange() consumes the next scripted fault (pass-through when the
/// script is empty), so a test can spell out exactly the failure
/// sequence it wants — "deliver this submission but lose the reply,
/// then behave" — and assert the recovery byte-for-byte.
///
/// The faults model what a real socket does, seen from the frame level:
///
///  * FailConnect — the server was unreachable; nothing was delivered.
///  * DropReply — the connection died after the requests flushed: the
///    server applied them, the client learned nothing.  The fault that
///    makes retries produce duplicates, which is what the summary dedup
///    tokens exist for.
///  * Duplicate — the whole batch is delivered twice (a retransmit a
///    load balancer or an over-eager retry layer might produce).
///  * TruncateReply — the reply stream was cut mid-frame; the client
///    sees a partial frame and must reject it cleanly.
///  * Delay — the exchange completes, late.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_EXCHANGE_FAULTYTRANSPORT_H
#define EXTERMINATOR_EXCHANGE_FAULTYTRANSPORT_H

#include "exchange/Transport.h"

#include <deque>

namespace exterminator {

enum class TransportFault : uint8_t {
  None,          ///< pass through
  FailConnect,   ///< fail; nothing reaches the server
  DropReply,     ///< deliver to the server; report transport failure
  Duplicate,     ///< deliver the batch twice; return the second replies
  TruncateReply, ///< deliver; return the last reply frame cut in half
  Delay,         ///< deliver after DelayMs
};

struct FaultyTransportStats {
  uint64_t Exchanges = 0;
  uint64_t Injected = 0; ///< exchanges that consumed a non-None fault
};

/// Scripted fault injection around any ClientTransport.
class FaultyTransport : public ClientTransport {
public:
  explicit FaultyTransport(ClientTransport &Inner) : Inner(Inner) {}

  /// Appends one fault to the script (consumed FIFO, one per
  /// exchange).
  void push(TransportFault Kind, unsigned DelayMs = 0) {
    Script.push_back({Kind, DelayMs});
  }

  size_t scriptRemaining() const { return Script.size(); }

  bool exchange(const std::vector<std::vector<uint8_t>> &Requests,
                std::vector<std::vector<uint8_t>> &ResponsesOut) override;

  std::string lastError() const override { return LastError; }

  const FaultyTransportStats &stats() const { return Stats; }

private:
  struct Plan {
    TransportFault Kind = TransportFault::None;
    unsigned DelayMs = 0;
  };

  ClientTransport &Inner;
  std::deque<Plan> Script;
  FaultyTransportStats Stats;
  std::string LastError;
};

} // namespace exterminator

#endif // EXTERMINATOR_EXCHANGE_FAULTYTRANSPORT_H

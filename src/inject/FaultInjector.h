//===- inject/FaultInjector.h - Fault injection ----------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An allocator decorator that injects memory errors into an otherwise
/// correct program (§7.2).  It interposes between the workload and the
/// heap stack, so an injected bug behaves exactly like an application
/// bug:
///
///  * BufferOverflow — remembers the pointer returned for the trigger
///    allocation and later writes a deterministic byte string past the
///    *requested* end of that buffer (forward overflow, §2.1).  When a
///    runtime patch pads the allocation site, the same write lands inside
///    the enlarged allocation and the bug is corrected.
///
///  * PrematureFree — at the trigger allocation, frees one of the
///    program's oldest live objects behind its back.  The program's own
///    eventual free becomes a benign double free; its continued use of
///    the object becomes a dangling-pointer error.  When a runtime patch
///    defers frees at that site pair, the hidden free is delayed past the
///    program's last use and the bug is corrected.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_INJECT_FAULTINJECTOR_H
#define EXTERMINATOR_INJECT_FAULTINJECTOR_H

#include "alloc/Allocator.h"
#include "inject/FaultPlan.h"
#include "support/RandomGenerator.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// Wraps an allocator and injects the faults described by a plan.
class FaultInjector : public Allocator {
public:
  FaultInjector(Allocator &Inner, const FaultPlan &Plan);
  ~FaultInjector() override;

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *name() const override { return "fault-injector"; }

  /// Counters live in the wrapped allocator; forwarding keeps the
  /// per-operation stats copy off the hot path.
  const AllocatorStats &stats() const override { return Inner.stats(); }

  /// Whether the fault has fired this run.
  bool faultFired() const { return Fired; }

  /// Allocation index observed so far (application clock).
  uint64_t allocationCount() const { return AllocCount; }

  /// The pointer prematurely freed (PrematureFree), for tests.
  const void *injectedVictim() const { return Victim; }

private:
  void fireOverflowIfDue(bool Force = false);

  Allocator &Inner;
  FaultPlan Plan;
  uint64_t AllocCount = 0;
  bool Fired = false;

  // BufferOverflow state.
  void *OverflowTarget = nullptr;
  size_t OverflowTargetSize = 0;
  uint64_t OverflowDueAt = 0;

  // PrematureFree state: live objects in allocation order.
  struct LiveObject {
    void *Ptr;
    uint64_t AllocIndex;
  };
  std::vector<LiveObject> Live;
  void *Victim = nullptr;
};

} // namespace exterminator

#endif // EXTERMINATOR_INJECT_FAULTINJECTOR_H

//===- inject/FaultInjector.h - Fault injection ----------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An allocator decorator that injects memory errors into an otherwise
/// correct program (§7.2).  It interposes between the workload and the
/// heap stack, so an injected bug behaves exactly like an application
/// bug:
///
///  * BufferOverflow — remembers the pointer returned for the trigger
///    allocation and later writes a deterministic byte string past the
///    *requested* end of that buffer (forward overflow, §2.1).  When a
///    runtime patch pads the allocation site, the same write lands inside
///    the enlarged allocation and the bug is corrected.
///
///  * PrematureFree — at the trigger allocation, frees one of the
///    program's oldest live objects behind its back.  The program's own
///    eventual free becomes a benign double free; its continued use of
///    the object becomes a dangling-pointer error.  When a runtime patch
///    defers frees at that site pair, the hidden free is delayed past the
///    program's last use and the bug is corrected.
///
/// The hardware fault models (PR 9) behave like failing DRAM rather than
/// a buggy call site.  A software bug is keyed to allocation order, so it
/// strikes the *same logical object* in every differently-randomized
/// replica; a hardware fault is keyed to a physical location, so across
/// replicas it strikes whatever object randomization placed there.  The
/// injector reproduces that distinction by selecting hardware victims
/// through their *slab-relative placement* (via an attached DieHardHeap):
/// replaying one heap seed re-corrupts bit-identical locations, while
/// replicas with different seeds corrupt unrelated objects — exactly the
/// decorrelation the origin classifier recognizes.
///
///  * BitFlip — flips FlipBits seeded bits in the chosen victim cell.
///    Victims are preferentially drawn from recently-freed (canary-
///    filled) slots, where DieFast's sweeps surface the damage.
///
///  * StuckAt — picks one bit of the victim cell and a stuck value; the
///    cell is re-forced on every subsequent heap operation, so every
///    rewrite (canary refill, reallocation) is re-corrupted.
///
///  * RowCluster — flips one seeded bit in every tracked object
///    overlapping the simulated DRAM row (RowBytes, slab-aligned)
///    containing the victim: spatially-clustered multi-slot damage.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_INJECT_FAULTINJECTOR_H
#define EXTERMINATOR_INJECT_FAULTINJECTOR_H

#include "alloc/Allocator.h"
#include "inject/FaultPlan.h"
#include "support/RandomGenerator.h"

#include <cstdint>
#include <vector>

namespace exterminator {

class DieHardHeap;

/// Injection-side accounting, exported through the observability plane
/// (registerInjectorMetrics) so injected-fault counts are scrapeable
/// next to heap stats.
struct FaultInjectorStats {
  /// Software faults fired (overflow string written or victim freed).
  uint64_t SoftwareFaultsFired = 0;
  /// Hardware trigger events fired (any hardware kind).
  uint64_t HardwareFaultEvents = 0;
  /// Individual bits flipped by BitFlip and RowCluster faults.
  uint64_t BitsFlipped = 0;
  /// Times the stuck-at cell was forced back to its stuck value after
  /// something rewrote it (the first corruption counts too).
  uint64_t StuckAtRewrites = 0;
  /// Objects corrupted by the row-cluster fault.
  uint64_t RowObjectsCorrupted = 0;
};

/// Wraps an allocator and injects the faults described by a plan.
class FaultInjector : public Allocator {
public:
  FaultInjector(Allocator &Inner, const FaultPlan &Plan);
  ~FaultInjector() override;

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *name() const override { return "fault-injector"; }

  /// Counters live in the wrapped allocator; forwarding keeps the
  /// per-operation stats copy off the hot path.
  const AllocatorStats &stats() const override { return Inner.stats(); }

  /// Attaches the backing DieHard heap so hardware victims can be keyed
  /// to slab-relative placement (deterministic per heap seed, unrelated
  /// across seeds).  Without a heap the injector falls back to
  /// allocation-order keying, which is replayable but — like a software
  /// bug — correlated across replicas.
  void attachHeap(const DieHardHeap *Heap) { Backend = Heap; }

  /// Whether the fault has fired this run.
  bool faultFired() const { return Fired; }

  /// Allocation index observed so far (application clock).
  uint64_t allocationCount() const { return AllocCount; }

  /// The pointer prematurely freed (PrematureFree) or the hardware
  /// victim cell's object start, for tests.
  const void *injectedVictim() const { return Victim; }

  /// Injection accounting (see FaultInjectorStats).
  const FaultInjectorStats &injectorStats() const { return IStats; }

  /// The corruption the hardware fault wrote, for replay-determinism
  /// tests: (object allocation index, byte offset within the object,
  /// XOR mask applied), in the order applied.
  struct InjectedFlip {
    uint64_t AllocIndex;
    uint32_t ByteOffset;
    uint8_t Mask;
  };
  const std::vector<InjectedFlip> &injectedFlips() const { return Flips; }

private:
  struct TrackedObject {
    void *Ptr;
    size_t Size;
    uint64_t AllocIndex;
    bool FreedCanaried; // freed behind us: candidate canaried cell
  };

  void fireOverflowIfDue(bool Force = false);
  void fireHardwareIfDue();
  void enforceStuckAt();

  /// Placement key for hardware victim choice: deterministic per heap
  /// seed, decorrelated across seeds (see attachHeap).
  uint64_t placementKey(const TrackedObject &Object) const;

  void flipBit(const TrackedObject &Object, uint64_t KeyBits,
               uint32_t FlipIndex);

  Allocator &Inner;
  FaultPlan Plan;
  const DieHardHeap *Backend = nullptr;
  uint64_t AllocCount = 0;
  bool Fired = false;
  FaultInjectorStats IStats;

  // BufferOverflow state.
  void *OverflowTarget = nullptr;
  size_t OverflowTargetSize = 0;
  uint64_t OverflowDueAt = 0;

  // PrematureFree state: live objects in allocation order.
  struct LiveObject {
    void *Ptr;
    uint64_t AllocIndex;
  };
  std::vector<LiveObject> Live;
  void *Victim = nullptr;

  // Hardware state: live and recently-freed objects in allocation order.
  std::vector<TrackedObject> Tracked;
  std::vector<InjectedFlip> Flips;
  /// Bound on retained freed entries (oldest evicted first).
  static constexpr size_t MaxFreedTracked = 64;
  size_t FreedTracked = 0;

  // StuckAt state: the stuck cell, valid once the fault fired.
  uint8_t *StuckByte = nullptr;
  uint8_t StuckMask = 0;
  uint8_t StuckValue = 0; // the stuck bit's value under StuckMask
  uint64_t StuckAllocIndex = 0;
  uint32_t StuckOffset = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_INJECT_FAULTINJECTOR_H

//===- inject/FaultInjector.cpp - Fault injection ---------------------------===//

#include "inject/FaultInjector.h"

#include "alloc/DieHardHeap.h"
#include "inject/FaultPlan.h"

#include <algorithm>
#include <cstring>

using namespace exterminator;

FaultInjector::FaultInjector(Allocator &Inner, const FaultPlan &Plan)
    : Inner(Inner), Plan(Plan) {}

FaultInjector::~FaultInjector() = default;

void *FaultInjector::allocate(size_t Size) {
  void *Ptr = Inner.allocate(Size);
  if (!Ptr)
    return Ptr;
  ++AllocCount;

  switch (Plan.Kind) {
  case FaultKind::None:
    break;

  case FaultKind::BufferOverflow:
  case FaultKind::BufferUnderflow:
    if (AllocCount == Plan.TriggerAllocation) {
      OverflowTarget = Ptr;
      OverflowTargetSize = Size;
      OverflowDueAt = AllocCount + Plan.OverflowDelay;
    }
    fireOverflowIfDue();
    break;

  case FaultKind::PrematureFree:
    Live.push_back(LiveObject{Ptr, AllocCount});
    if (AllocCount == Plan.TriggerAllocation && !Fired && !Live.empty()) {
      // Free one of the oldest still-live objects behind the program's
      // back; the choice depends only on the application-level allocation
      // order, so it is identical across differently-randomized heaps.
      RandomGenerator Rng(Plan.PatternSeed);
      const uint64_t Window =
          std::min<uint64_t>(Plan.VictimWindow, Live.size());
      const size_t Pick = static_cast<size_t>(Rng.nextBelow(Window));
      Victim = Live[Pick].Ptr;
      Live.erase(Live.begin() + Pick);
      Inner.deallocate(Victim);
      Fired = true;
      ++IStats.SoftwareFaultsFired;
    }
    break;

  case FaultKind::BitFlip:
  case FaultKind::StuckAt:
  case FaultKind::RowCluster:
    // A freed slot being recycled loses its canary (and our claim to its
    // bytes): drop the stale entry before tracking the new owner.
    for (size_t I = 0; I < Tracked.size(); ++I)
      if (Tracked[I].FreedCanaried && Tracked[I].Ptr == Ptr) {
        Tracked.erase(Tracked.begin() + I);
        --FreedTracked;
        break;
      }
    Tracked.push_back(TrackedObject{Ptr, Size, AllocCount, false});
    fireHardwareIfDue();
    enforceStuckAt();
    break;
  }
  return Ptr;
}

void FaultInjector::deallocate(void *Ptr) {
  if (Plan.Kind == FaultKind::PrematureFree) {
    auto It = std::find_if(Live.begin(), Live.end(), [&](const LiveObject &O) {
      return O.Ptr == Ptr;
    });
    if (It != Live.end())
      Live.erase(It);
    // The program freeing the injected victim again is the double free
    // the heap must tolerate; forward it unchanged.
  }
  if ((Plan.Kind == FaultKind::BufferOverflow ||
       Plan.Kind == FaultKind::BufferUnderflow) &&
      Ptr == OverflowTarget && !Fired) {
    // Target freed before the overrun was due: the bug strikes on the
    // object's last moment instead (keeps plans effective regardless of
    // object lifetime).
    fireOverflowIfDue(/*Force=*/true);
    OverflowTarget = nullptr;
  }
  if (isHardwareFault(Plan.Kind)) {
    // Keep the freed slot tracked: DieFast canary-fills it, making it
    // exactly the cell population DRAM faults are seen through.  Bounded
    // retention; oldest freed entries age out first.
    auto It = std::find_if(
        Tracked.begin(), Tracked.end(), [&](const TrackedObject &O) {
          return O.Ptr == Ptr && !O.FreedCanaried;
        });
    if (It != Tracked.end()) {
      It->FreedCanaried = true;
      ++FreedTracked;
      if (FreedTracked > MaxFreedTracked)
        for (size_t I = 0; I < Tracked.size(); ++I)
          if (Tracked[I].FreedCanaried) {
            Tracked.erase(Tracked.begin() + I);
            --FreedTracked;
            break;
          }
    }
    Inner.deallocate(Ptr);
    // The free rewrote the slot (canary fill): a stuck cell in it is
    // re-corrupted immediately.
    enforceStuckAt();
    return;
  }
  Inner.deallocate(Ptr);
}

void FaultInjector::fireOverflowIfDue(bool Force) {
  if (Fired || !OverflowTarget)
    return;
  if (!Force && AllocCount < OverflowDueAt)
    return;
  // A deterministic byte string written just past the requested end of
  // the buffer (forward) or just before its start (backward, §2.1).
  // Zero bytes are avoided so the string never masquerades as freshly
  // zero-filled memory.
  uint8_t *Start = static_cast<uint8_t *>(OverflowTarget);
  uint8_t *At = Plan.Kind == FaultKind::BufferUnderflow
                    ? Start - Plan.OverflowBytes
                    : Start + OverflowTargetSize;
  uint64_t State = Plan.PatternSeed;
  for (uint32_t I = 0; I < Plan.OverflowBytes; ++I) {
    uint8_t Byte = static_cast<uint8_t>(splitMix64(State) >> 24);
    At[I] = Byte ? Byte : 0x5a;
  }
  Fired = true;
  ++IStats.SoftwareFaultsFired;
}

uint64_t FaultInjector::placementKey(const TrackedObject &Object) const {
  if (Backend) {
    // Key the choice to slab-relative placement: replaying the same heap
    // seed reproduces it exactly, while differently-randomized replicas
    // place other objects at this physical location — the decorrelation
    // that distinguishes a failing cell from a buggy call site.
    if (auto Resolved = Backend->resolvePointer(Object.Ptr)) {
      const Miniheap &Mini = Backend->miniheap(Resolved->Ref);
      const uint64_t RelOffset =
          static_cast<uint64_t>(Resolved->SlotStart - Mini.base());
      uint64_t State = Plan.PatternSeed ^
                       (uint64_t(Resolved->Ref.ClassIndex) << 48) ^
                       (uint64_t(Resolved->Ref.HeapIndex) << 40) ^ RelOffset;
      return splitMix64(State);
    }
  }
  // No backend attached (or a foreign pointer): replayable fallback keyed
  // to allocation order.
  uint64_t State = Plan.PatternSeed ^ Object.AllocIndex;
  return splitMix64(State);
}

void FaultInjector::flipBit(const TrackedObject &Object, uint64_t KeyBits,
                            uint32_t FlipIndex) {
  uint64_t State = KeyBits + 0x9e3779b97f4a7c15ull * (FlipIndex + 1);
  const uint64_t H = splitMix64(State);
  const uint32_t ByteOffset =
      static_cast<uint32_t>(H % std::max<size_t>(Object.Size, 1));
  const uint8_t Mask = static_cast<uint8_t>(1u << ((H >> 32) & 7));
  static_cast<uint8_t *>(Object.Ptr)[ByteOffset] ^= Mask;
  Flips.push_back(InjectedFlip{Object.AllocIndex, ByteOffset, Mask});
  ++IStats.BitsFlipped;
}

void FaultInjector::fireHardwareIfDue() {
  if (Fired || AllocCount < Plan.TriggerAllocation || Tracked.empty())
    return;

  // Victim: the placement-minimal candidate, preferring freed
  // (canary-filled) cells, where corruption is observable evidence.
  const TrackedObject *VictimObject = nullptr;
  uint64_t VictimKey = 0;
  for (int Pass = 0; Pass < 2 && !VictimObject; ++Pass) {
    const bool WantFreed = Pass == 0;
    for (const TrackedObject &Object : Tracked) {
      if (Object.FreedCanaried != WantFreed)
        continue;
      const uint64_t Key = placementKey(Object);
      if (!VictimObject || Key < VictimKey ||
          (Key == VictimKey && Object.AllocIndex < VictimObject->AllocIndex)) {
        VictimObject = &Object;
        VictimKey = Key;
      }
    }
  }
  if (!VictimObject)
    return;
  Victim = VictimObject->Ptr;
  Fired = true;
  ++IStats.HardwareFaultEvents;

  switch (Plan.Kind) {
  case FaultKind::BitFlip: {
    // FlipBits distinct bit positions within the victim; a colliding
    // draw re-rolls (bounded — positions are plentiful next to draws).
    std::vector<std::pair<uint32_t, uint8_t>> Chosen;
    for (uint32_t I = 0; Chosen.size() < Plan.FlipBits && I < 8 * Plan.FlipBits + 64;
         ++I) {
      uint64_t State = VictimKey + 0x9e3779b97f4a7c15ull * (I + 1);
      const uint64_t H = splitMix64(State);
      const uint32_t ByteOffset = static_cast<uint32_t>(
          H % std::max<size_t>(VictimObject->Size, 1));
      const uint8_t Mask = static_cast<uint8_t>(1u << ((H >> 32) & 7));
      bool Duplicate = false;
      for (const auto &[Byte, Bit] : Chosen)
        Duplicate |= Byte == ByteOffset && Bit == Mask;
      if (Duplicate)
        continue;
      Chosen.emplace_back(ByteOffset, Mask);
      static_cast<uint8_t *>(VictimObject->Ptr)[ByteOffset] ^= Mask;
      Flips.push_back(
          InjectedFlip{VictimObject->AllocIndex, ByteOffset, Mask});
      ++IStats.BitsFlipped;
    }
    break;
  }

  case FaultKind::StuckAt: {
    const uint64_t H = splitMix64(VictimKey);
    StuckOffset = static_cast<uint32_t>(
        H % std::max<size_t>(VictimObject->Size, 1));
    StuckMask = static_cast<uint8_t>(1u << ((H >> 32) & 7));
    StuckByte = static_cast<uint8_t *>(VictimObject->Ptr) + StuckOffset;
    // Stuck at the complement of the current value, so the fault is
    // visible immediately and every faithful rewrite re-corrupts.
    StuckValue = static_cast<uint8_t>((*StuckByte & StuckMask) ^ StuckMask);
    StuckAllocIndex = VictimObject->AllocIndex;
    enforceStuckAt();
    break;
  }

  case FaultKind::RowCluster: {
    // The simulated DRAM row: RowBytes aligned within the victim's slab
    // (absolute-address fallback without a backend).  Clamped to a page
    // so the row never crosses the 4 KiB unit retirement works in.
    const uint64_t Row =
        std::clamp<uint64_t>(Plan.RowBytes, 8, uint64_t(1) << 12);
    const uint8_t *VictimPtr = static_cast<const uint8_t *>(Victim);
    const Miniheap *VictimMini = nullptr;
    uint64_t RowBegin, RowEnd;
    if (Backend) {
      if (auto Resolved = Backend->resolvePointer(Victim)) {
        VictimMini = &Backend->miniheap(Resolved->Ref);
        const uint64_t Base = reinterpret_cast<uint64_t>(VictimMini->base());
        const uint64_t Rel = reinterpret_cast<uint64_t>(VictimPtr) - Base;
        RowBegin = Base + (Rel / Row) * Row;
      } else {
        RowBegin = reinterpret_cast<uint64_t>(VictimPtr) & ~(Row - 1);
      }
    } else {
      RowBegin = reinterpret_cast<uint64_t>(VictimPtr) & ~(Row - 1);
    }
    RowEnd = RowBegin + Row;

    // Flip one placement-keyed bit in every tracked object overlapping
    // the row, in allocation order (deterministic given the heap seed).
    for (const TrackedObject &Object : Tracked) {
      const uint64_t Begin = reinterpret_cast<uint64_t>(Object.Ptr);
      const uint64_t End = Begin + Object.Size;
      if (End <= RowBegin || Begin >= RowEnd)
        continue;
      if (VictimMini) {
        // Same-slab membership: the row is physical, not an artifact of
        // where the process allocator happened to place two slabs.
        auto Resolved = Backend->resolvePointer(Object.Ptr);
        if (!Resolved || &Backend->miniheap(Resolved->Ref) != VictimMini)
          continue;
      }
      flipBit(Object, placementKey(Object), 0);
      ++IStats.RowObjectsCorrupted;
    }
    break;
  }

  default:
    break;
  }
}

void FaultInjector::enforceStuckAt() {
  if (!StuckByte)
    return;
  const uint8_t Current = *StuckByte;
  if ((Current & StuckMask) != StuckValue) {
    *StuckByte = static_cast<uint8_t>((Current & ~StuckMask) | StuckValue);
    ++IStats.StuckAtRewrites;
    Flips.push_back(InjectedFlip{StuckAllocIndex, StuckOffset, StuckMask});
  }
}

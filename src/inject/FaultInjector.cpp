//===- inject/FaultInjector.cpp - Fault injection ---------------------------===//

#include "inject/FaultInjector.h"

#include "inject/FaultPlan.h"

#include <algorithm>
#include <cstring>

using namespace exterminator;

FaultInjector::FaultInjector(Allocator &Inner, const FaultPlan &Plan)
    : Inner(Inner), Plan(Plan) {}

FaultInjector::~FaultInjector() = default;

void *FaultInjector::allocate(size_t Size) {
  void *Ptr = Inner.allocate(Size);
  if (!Ptr)
    return Ptr;
  ++AllocCount;

  switch (Plan.Kind) {
  case FaultKind::None:
    break;

  case FaultKind::BufferOverflow:
  case FaultKind::BufferUnderflow:
    if (AllocCount == Plan.TriggerAllocation) {
      OverflowTarget = Ptr;
      OverflowTargetSize = Size;
      OverflowDueAt = AllocCount + Plan.OverflowDelay;
    }
    fireOverflowIfDue();
    break;

  case FaultKind::PrematureFree:
    Live.push_back(LiveObject{Ptr, AllocCount});
    if (AllocCount == Plan.TriggerAllocation && !Fired && !Live.empty()) {
      // Free one of the oldest still-live objects behind the program's
      // back; the choice depends only on the application-level allocation
      // order, so it is identical across differently-randomized heaps.
      RandomGenerator Rng(Plan.PatternSeed);
      const uint64_t Window =
          std::min<uint64_t>(Plan.VictimWindow, Live.size());
      const size_t Pick = static_cast<size_t>(Rng.nextBelow(Window));
      Victim = Live[Pick].Ptr;
      Live.erase(Live.begin() + Pick);
      Inner.deallocate(Victim);
      Fired = true;
    }
    break;
  }
  return Ptr;
}

void FaultInjector::deallocate(void *Ptr) {
  if (Plan.Kind == FaultKind::PrematureFree) {
    auto It = std::find_if(Live.begin(), Live.end(), [&](const LiveObject &O) {
      return O.Ptr == Ptr;
    });
    if (It != Live.end())
      Live.erase(It);
    // The program freeing the injected victim again is the double free
    // the heap must tolerate; forward it unchanged.
  }
  if ((Plan.Kind == FaultKind::BufferOverflow ||
       Plan.Kind == FaultKind::BufferUnderflow) &&
      Ptr == OverflowTarget && !Fired) {
    // Target freed before the overrun was due: the bug strikes on the
    // object's last moment instead (keeps plans effective regardless of
    // object lifetime).
    fireOverflowIfDue(/*Force=*/true);
    OverflowTarget = nullptr;
  }
  Inner.deallocate(Ptr);
}

void FaultInjector::fireOverflowIfDue(bool Force) {
  if (Fired || !OverflowTarget)
    return;
  if (!Force && AllocCount < OverflowDueAt)
    return;
  // A deterministic byte string written just past the requested end of
  // the buffer (forward) or just before its start (backward, §2.1).
  // Zero bytes are avoided so the string never masquerades as freshly
  // zero-filled memory.
  uint8_t *Start = static_cast<uint8_t *>(OverflowTarget);
  uint8_t *At = Plan.Kind == FaultKind::BufferUnderflow
                    ? Start - Plan.OverflowBytes
                    : Start + OverflowTargetSize;
  uint64_t State = Plan.PatternSeed;
  for (uint32_t I = 0; I < Plan.OverflowBytes; ++I) {
    uint8_t Byte = static_cast<uint8_t>(splitMix64(State) >> 24);
    At[I] = Byte ? Byte : 0x5a;
  }
  Fired = true;
}

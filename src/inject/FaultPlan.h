//===- inject/FaultPlan.h - Fault injection plans --------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptions of injectable memory errors, mirroring the fault injector
/// that accompanies the DieHard distribution (§7.2).  A plan is keyed to
/// *application-level allocation indexes*, which are identical across
/// differently-randomized heaps — this is exactly the deterministic-error
/// assumption of iterative/replicated isolation (§2.1).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_INJECT_FAULTPLAN_H
#define EXTERMINATOR_INJECT_FAULTPLAN_H

#include <cstdint>

namespace exterminator {

/// Kinds of injectable errors.  The first group are the paper's software
/// bugs (§7.2); the hardware group models failing DRAM (PR 9): faults
/// keyed to *heap placement* rather than allocation order, so they strike
/// the same physical location in every replay of one heap seed but
/// uncorrelated locations across differently-randomized replicas — the
/// signature the origin classifier keys on.
enum class FaultKind {
  None,
  /// Write OverflowBytes past the requested end of a chosen allocation.
  BufferOverflow,
  /// Write OverflowBytes *before* the start of a chosen allocation
  /// (backward overflow; the §2.1 extension exercises this).
  BufferUnderflow,
  /// Free a still-live object behind the program's back, leaving the
  /// program with a dangling pointer it will keep using.
  PrematureFree,
  /// Flip FlipBits seeded bits in one placement-chosen victim cell — a
  /// transient single/multi bit upset.
  BitFlip,
  /// A cell whose chosen bit is stuck at a seeded value: re-corrupted
  /// after every rewrite (the injector re-forces it on every subsequent
  /// heap operation, whoever owns the cell by then).
  StuckAt,
  /// Flip one seeded bit in every tracked object overlapping the
  /// simulated DRAM row (RowBytes, slab-aligned) containing the victim.
  RowCluster,
};

/// True for the DRAM-fault models (PR 9).
inline bool isHardwareFault(FaultKind Kind) {
  return Kind == FaultKind::BitFlip || Kind == FaultKind::StuckAt ||
         Kind == FaultKind::RowCluster;
}

/// One injected error.
struct FaultPlan {
  FaultKind Kind = FaultKind::None;

  /// The application-level allocation index (1-based) at which the fault
  /// fires: for overflows, the allocation whose buffer will be overrun;
  /// for premature frees, the point at which a victim is chosen and
  /// freed.
  uint64_t TriggerAllocation = 0;

  /// BufferOverflow: how many bytes past the requested size to write.
  uint32_t OverflowBytes = 0;

  /// BufferOverflow: perform the overrun this many allocations after the
  /// target allocation (0 = immediately), modelling a bug that strikes
  /// later in the object's lifetime.
  uint64_t OverflowDelay = 0;

  /// Seed for the overflow string contents and the premature-free victim
  /// choice.  Identical plans inject identical faults in every run.
  uint64_t PatternSeed = 1;

  /// PrematureFree: choose the victim among the oldest live objects
  /// (index drawn from [0, VictimWindow) in allocation order).
  uint64_t VictimWindow = 16;

  /// BitFlip: number of distinct bits to flip in the victim object.
  uint32_t FlipBits = 1;

  /// RowCluster: size of the simulated DRAM row, aligned within the
  /// victim's slab.  Clamped to a 4 KiB page so a row never leaves the
  /// page the fault implicates.
  uint64_t RowBytes = 1024;
};

} // namespace exterminator

#endif // EXTERMINATOR_INJECT_FAULTPLAN_H

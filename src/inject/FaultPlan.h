//===- inject/FaultPlan.h - Fault injection plans --------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptions of injectable memory errors, mirroring the fault injector
/// that accompanies the DieHard distribution (§7.2).  A plan is keyed to
/// *application-level allocation indexes*, which are identical across
/// differently-randomized heaps — this is exactly the deterministic-error
/// assumption of iterative/replicated isolation (§2.1).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_INJECT_FAULTPLAN_H
#define EXTERMINATOR_INJECT_FAULTPLAN_H

#include <cstdint>

namespace exterminator {

/// Kinds of injectable errors.
enum class FaultKind {
  None,
  /// Write OverflowBytes past the requested end of a chosen allocation.
  BufferOverflow,
  /// Write OverflowBytes *before* the start of a chosen allocation
  /// (backward overflow; the §2.1 extension exercises this).
  BufferUnderflow,
  /// Free a still-live object behind the program's back, leaving the
  /// program with a dangling pointer it will keep using.
  PrematureFree,
};

/// One injected error.
struct FaultPlan {
  FaultKind Kind = FaultKind::None;

  /// The application-level allocation index (1-based) at which the fault
  /// fires: for overflows, the allocation whose buffer will be overrun;
  /// for premature frees, the point at which a victim is chosen and
  /// freed.
  uint64_t TriggerAllocation = 0;

  /// BufferOverflow: how many bytes past the requested size to write.
  uint32_t OverflowBytes = 0;

  /// BufferOverflow: perform the overrun this many allocations after the
  /// target allocation (0 = immediately), modelling a bug that strikes
  /// later in the object's lifetime.
  uint64_t OverflowDelay = 0;

  /// Seed for the overflow string contents and the premature-free victim
  /// choice.  Identical plans inject identical faults in every run.
  uint64_t PatternSeed = 1;

  /// PrematureFree: choose the victim among the oldest live objects
  /// (index drawn from [0, VictimWindow) in allocation order).
  uint64_t VictimWindow = 16;
};

} // namespace exterminator

#endif // EXTERMINATOR_INJECT_FAULTPLAN_H

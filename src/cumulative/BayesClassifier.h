//===- cumulative/BayesClassifier.h - Hypothesis testing -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cumulative-mode Bayesian error classifier (§5.1).
///
/// Each run contributes a trial (X_i, Y_i) for a site: X_i is the chance
/// the site satisfies the corruption criteria by luck, Y_i whether it did.
/// The classifier compares H0 : θ_A = 0 (no error; Y happens at rate X)
/// against H1 : θ_A > 0 (the site causes failures at some rate θ on top
/// of chance), flagging the site when
///
///     P(X̄,Ȳ | H1) / P(X̄,Ȳ | H0)  >  P(H0) / P(H1),
///
/// with a uniform prior on θ_A and prior P(H1) = 1/(cN) over the N sites
/// (c = 4): some probability the corruption is an overflow at all, split
/// evenly across candidate sites.
///
/// Likelihoods are evaluated in log space; the θ integral uses composite
/// Simpson quadrature on the log-sum-exp of the per-node log likelihoods.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CUMULATIVE_BAYESCLASSIFIER_H
#define EXTERMINATOR_CUMULATIVE_BAYESCLASSIFIER_H

#include <cstddef>
#include <vector>

namespace exterminator {

/// One (X, Y) observation for a site.
struct BayesTrial {
  /// Probability of Y = 1 under the null hypothesis.
  double Probability = 0.0;
  /// The observed outcome.
  bool Observed = false;
};

/// The §5.1 likelihood-ratio classifier.
class BayesClassifier {
public:
  /// \param PriorC the constant c in P(H1) = 1/(cN); the paper uses 4.
  explicit BayesClassifier(double PriorC = 4.0) : PriorC(PriorC) {}

  /// log P(X̄,Ȳ | H0) = Σ log[(1−X_i)(1−Y_i) + X_i·Y_i].
  static double logLikelihoodH0(const std::vector<BayesTrial> &Trials);

  /// log P(X̄,Ȳ | H1) = log ∫₀¹ Π_i P(Y_i | θ, X_i) dθ with
  /// P(Y=1 | θ, X) = (1−θ)X + θ.
  static double logLikelihoodH1(const std::vector<BayesTrial> &Trials);

  /// log Bayes factor log[P(X̄,Ȳ|H1) / P(X̄,Ȳ|H0)].
  static double logBayesFactor(const std::vector<BayesTrial> &Trials);

  /// The decision threshold log[P(H0)/P(H1)] for \p NumSites candidate
  /// sites.
  double logThreshold(size_t NumSites) const;

  /// True when the site should be flagged as an error source.
  bool isErrorSource(const std::vector<BayesTrial> &Trials,
                     size_t NumSites) const;

private:
  double PriorC;
};

} // namespace exterminator

#endif // EXTERMINATOR_CUMULATIVE_BAYESCLASSIFIER_H

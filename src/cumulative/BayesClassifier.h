//===- cumulative/BayesClassifier.h - Hypothesis testing -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cumulative-mode Bayesian error classifier (§5.1).
///
/// Each run contributes a trial (X_i, Y_i) for a site: X_i is the chance
/// the site satisfies the corruption criteria by luck, Y_i whether it did.
/// The classifier compares H0 : θ_A = 0 (no error; Y happens at rate X)
/// against H1 : θ_A > 0 (the site causes failures at some rate θ on top
/// of chance), flagging the site when
///
///     P(X̄,Ȳ | H1) / P(X̄,Ȳ | H0)  >  P(H0) / P(H1),
///
/// with a uniform prior on θ_A and prior P(H1) = 1/(cN) over the N sites
/// (c = 4): some probability the corruption is an overflow at all, split
/// evenly across candidate sites.
///
/// Likelihoods are evaluated in log space; the θ integral uses composite
/// Simpson quadrature on the log-sum-exp of the per-node log likelihoods.
///
/// Two evaluation forms exist: the batch statics (recompute over a trial
/// vector) and BayesAccumulator, which folds trials in as they arrive and
/// answers logBayesFactor() in O(#quadrature nodes) instead of
/// O(#nodes × #trials).  The accumulator performs the identical additions
/// in the identical order, so both forms produce bit-identical factors —
/// what lets the patch server classify after every ingested summary
/// without the per-summary cost growing with the fleet's history.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CUMULATIVE_BAYESCLASSIFIER_H
#define EXTERMINATOR_CUMULATIVE_BAYESCLASSIFIER_H

#include <cstddef>
#include <vector>

namespace exterminator {

class ByteWriter;
class ByteReader;

/// One (X, Y) observation for a site.
struct BayesTrial {
  /// Probability of Y = 1 under the null hypothesis.
  double Probability = 0.0;
  /// The observed outcome.
  bool Observed = false;
};

/// The §5.1 likelihood-ratio classifier.
class BayesClassifier {
public:
  /// \param PriorC the constant c in P(H1) = 1/(cN); the paper uses 4.
  explicit BayesClassifier(double PriorC = 4.0) : PriorC(PriorC) {}

  /// log P(X̄,Ȳ | H0) = Σ log[(1−X_i)(1−Y_i) + X_i·Y_i].
  static double logLikelihoodH0(const std::vector<BayesTrial> &Trials);

  /// log P(X̄,Ȳ | H1) = log ∫₀¹ Π_i P(Y_i | θ, X_i) dθ with
  /// P(Y=1 | θ, X) = (1−θ)X + θ.
  static double logLikelihoodH1(const std::vector<BayesTrial> &Trials);

  /// log Bayes factor log[P(X̄,Ȳ|H1) / P(X̄,Ȳ|H0)].
  static double logBayesFactor(const std::vector<BayesTrial> &Trials);

  /// The decision threshold log[P(H0)/P(H1)] for \p NumSites candidate
  /// sites.
  double logThreshold(size_t NumSites) const;

  /// True when the site should be flagged as an error source.
  bool isErrorSource(const std::vector<BayesTrial> &Trials,
                     size_t NumSites) const;

private:
  double PriorC;
};

/// Incremental evaluation state for one site's trials: the running H0
/// log likelihood plus the running per-θ-node log likelihoods of the
/// Simpson quadrature.  addTrial is O(nodes); logBayesFactor is O(nodes)
/// regardless of how many trials have accumulated.  Bit-identical to the
/// batch statics over the same trial sequence (same additions, same
/// order).
class BayesAccumulator {
public:
  BayesAccumulator();

  void addTrial(const BayesTrial &Trial);

  size_t trialCount() const { return NumTrials; }

  double logLikelihoodH0() const { return LogH0; }
  double logLikelihoodH1() const;
  double logBayesFactor() const { return logLikelihoodH1() - LogH0; }

  /// Serializes the running sums (trial count, H0 sum, per-node sums) so
  /// accumulated classifier state survives a server restart.  Restoring
  /// the f64 bits directly is bit-identical to replaying the folded
  /// trials — and O(nodes) instead of O(trials × nodes).
  void serialize(ByteWriter &Writer) const;

  /// Restores serialized sums; returns false (leaving the accumulator
  /// untouched) when the stream is malformed or the quadrature node
  /// count does not match this build's.
  bool deserialize(ByteReader &Reader);

private:
  size_t NumTrials = 0;
  double LogH0 = 0.0;
  /// Running Σ_i log P(Y_i | θ_node, X_i) per quadrature node.
  std::vector<double> NodeLogSums;
};

} // namespace exterminator

#endif // EXTERMINATOR_CUMULATIVE_BAYESCLASSIFIER_H

//===- cumulative/BayesClassifier.cpp - Hypothesis testing ------------------===//

#include "cumulative/BayesClassifier.h"

#include "support/Serializer.h"
#include "support/Statistics.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

using namespace exterminator;

// Simpson quadrature intervals for the θ integral; the integrand is a
// polynomial of degree = #trials, so a few hundred nodes are ample.
static constexpr int NumIntervals = 512;

static double clampProbability(double P) {
  // Guard against trials computed as exactly 0 or 1, which would make a
  // single contrary observation produce -inf and poison the product.
  const double Epsilon = 1e-12;
  if (P < Epsilon)
    return Epsilon;
  if (P > 1.0 - Epsilon)
    return 1.0 - Epsilon;
  return P;
}

double
BayesClassifier::logLikelihoodH0(const std::vector<BayesTrial> &Trials) {
  double LogSum = 0.0;
  for (const BayesTrial &Trial : Trials) {
    const double X = clampProbability(Trial.Probability);
    LogSum += std::log(Trial.Observed ? X : 1.0 - X);
  }
  return LogSum;
}

/// log Π_i P(Y_i | θ, X_i) at a fixed θ.
static double logLikelihoodAtTheta(const std::vector<BayesTrial> &Trials,
                                   double Theta) {
  double LogSum = 0.0;
  for (const BayesTrial &Trial : Trials) {
    const double X = clampProbability(Trial.Probability);
    const double PYes = clampProbability((1.0 - Theta) * X + Theta);
    LogSum += std::log(Trial.Observed ? PYes : 1.0 - PYes);
  }
  return LogSum;
}

double
BayesClassifier::logLikelihoodH1(const std::vector<BayesTrial> &Trials) {
  // Composite Simpson over θ ∈ [0, 1], accumulated with log-sum-exp so
  // long trial sequences cannot underflow.
  const double H = 1.0 / NumIntervals;
  double LogAccum = -std::numeric_limits<double>::infinity();
  for (int I = 0; I <= NumIntervals; ++I) {
    const double Theta = I * H;
    double Weight = (I == 0 || I == NumIntervals) ? 1.0
                    : (I % 2 == 1)                ? 4.0
                                                  : 2.0;
    const double LogTerm =
        logLikelihoodAtTheta(Trials, Theta) + std::log(Weight);
    LogAccum = logAdd(LogAccum, LogTerm);
  }
  return LogAccum + std::log(H / 3.0);
}

double
BayesClassifier::logBayesFactor(const std::vector<BayesTrial> &Trials) {
  return logLikelihoodH1(Trials) - logLikelihoodH0(Trials);
}

double BayesClassifier::logThreshold(size_t NumSites) const {
  assert(NumSites > 0 && "need at least one candidate site");
  // P(H1) = 1/(cN), P(H0) = 1 − P(H1).
  const double PH1 = 1.0 / (PriorC * static_cast<double>(NumSites));
  return std::log((1.0 - PH1) / PH1);
}

bool BayesClassifier::isErrorSource(const std::vector<BayesTrial> &Trials,
                                    size_t NumSites) const {
  if (Trials.empty())
    return false;
  return logBayesFactor(Trials) > logThreshold(NumSites);
}

//===----------------------------------------------------------------------===//
// BayesAccumulator
//===----------------------------------------------------------------------===//

BayesAccumulator::BayesAccumulator() : NodeLogSums(NumIntervals + 1, 0.0) {}

void BayesAccumulator::addTrial(const BayesTrial &Trial) {
  ++NumTrials;
  const double X = clampProbability(Trial.Probability);
  // Exactly logLikelihoodH0's per-trial term, folded in arrival order so
  // the running sum matches the batch recompute bit for bit.
  LogH0 += std::log(Trial.Observed ? X : 1.0 - X);
  // And logLikelihoodAtTheta's per-trial term at every quadrature node.
  const double H = 1.0 / NumIntervals;
  for (int I = 0; I <= NumIntervals; ++I) {
    const double Theta = I * H;
    const double PYes = clampProbability((1.0 - Theta) * X + Theta);
    NodeLogSums[I] += std::log(Trial.Observed ? PYes : 1.0 - PYes);
  }
}

void BayesAccumulator::serialize(ByteWriter &Writer) const {
  Writer.writeVarU64(NumTrials);
  Writer.writeVarU64(NodeLogSums.size());
  Writer.writeF64(LogH0);
  for (double Sum : NodeLogSums)
    Writer.writeF64(Sum);
}

bool BayesAccumulator::deserialize(ByteReader &Reader) {
  const uint64_t Trials = Reader.readVarU64();
  const uint64_t Nodes = Reader.readVarU64();
  // A node-count mismatch means the state was written by a build with a
  // different quadrature resolution; its sums are not comparable.
  if (Reader.failed() || Nodes != uint64_t(NumIntervals) + 1)
    return false;
  const double H0 = Reader.readF64();
  std::vector<double> Sums(NumIntervals + 1, 0.0);
  for (double &Sum : Sums)
    Sum = Reader.readF64();
  if (Reader.failed())
    return false;
  NumTrials = Trials;
  LogH0 = H0;
  NodeLogSums = std::move(Sums);
  return true;
}

double BayesAccumulator::logLikelihoodH1() const {
  // The batch logLikelihoodH1 loop with the per-node trial sums already
  // in hand.
  const double H = 1.0 / NumIntervals;
  double LogAccum = -std::numeric_limits<double>::infinity();
  for (int I = 0; I <= NumIntervals; ++I) {
    double Weight = (I == 0 || I == NumIntervals) ? 1.0
                    : (I % 2 == 1)                ? 4.0
                                                  : 2.0;
    LogAccum = logAdd(LogAccum, NodeLogSums[I] + std::log(Weight));
  }
  return LogAccum + std::log(H / 3.0);
}

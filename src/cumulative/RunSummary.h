//===- cumulative/RunSummary.h - Per-run summaries -------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cumulative-mode per-run summaries (§5).  Instead of storing whole heap
/// images, cumulative mode reduces each run to a few kilobytes of
/// statistics: for each allocation site, the probability X that the site
/// could have caused the observed corruption and the indicator Y of
/// whether it actually satisfied the criteria ("each run can be thought of
/// as a coin flip, where P(C_A) is the probability of heads").  Dangling
/// analysis keeps the analogous canary-trial per (allocation,
/// deallocation) site pair.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CUMULATIVE_RUNSUMMARY_H
#define EXTERMINATOR_CUMULATIVE_RUNSUMMARY_H

#include "support/SiteHash.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// One overflow coin flip for an allocation site (§5.1).
struct OverflowTrial {
  SiteId AllocSite = 0;
  /// X_i = P(C_A): probability at least one object from the site lies in
  /// the corrupted miniheap below the corruption, by chance.
  double Probability = 0.0;
  /// Y_i = C_A: whether some object from the site actually does.
  bool Observed = false;
  /// Pad estimate from this run when Observed: distance from the nearest
  /// preceding object of this site to the corruption end, minus its
  /// requested size (§5.1, final paragraph).
  uint32_t PadEstimate = 0;

  bool operator==(const OverflowTrial &Other) const = default;
};

/// One dangling coin flip for an (allocation, deallocation) pair (§5.2).
struct DanglingTrial {
  SiteId AllocSite = 0;
  SiteId FreeSite = 0;
  /// X_i: probability at least one freed object of the pair was canaried
  /// (1 − (1−p)^n over the n observed frees).
  double Probability = 0.0;
  /// Y_i: whether one actually was.
  bool Observed = false;
  /// Allocations between the oldest canaried object's free and the
  /// failure; the deferral is twice the maximum of this (§5.2).
  uint64_t FreeToFailure = 0;

  bool operator==(const DanglingTrial &Other) const = default;
};

/// Everything cumulative mode keeps from one execution.
struct RunSummary {
  /// The run failed (crash, abort, or divergent output).
  bool Failed = false;
  /// Heap corruption (a broken canary) was observed.
  bool CorruptionObserved = false;
  /// Allocation clock at the end of the run (failure time T).
  uint64_t EndTime = 0;
  /// Overflow trials: present whenever corruption was observed.
  std::vector<OverflowTrial> OverflowTrials;
  /// Dangling trials: present for failed runs.
  std::vector<DanglingTrial> DanglingTrials;
};

/// Byte-level round-trip for persistence across executions.
std::vector<uint8_t> serializeRunSummary(const RunSummary &Summary);
bool deserializeRunSummary(const std::vector<uint8_t> &Buffer,
                           RunSummary &SummaryOut);

} // namespace exterminator

#endif // EXTERMINATOR_CUMULATIVE_RUNSUMMARY_H

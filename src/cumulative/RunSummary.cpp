//===- cumulative/RunSummary.cpp - Per-run summaries ------------------------===//

#include "cumulative/RunSummary.h"

#include "support/Serializer.h"

using namespace exterminator;

static constexpr uint32_t SummaryMagic = 0x58525331; // "XRS1"

/// Per-category trial bound for deserialization.  One run's trials are
/// bounded by the sites the program touched — real summaries carry
/// dozens to hundreds ("a few kilobytes per execution", §5) — so 16K is
/// generous headroom while keeping a forged summary from declaring
/// millions of distinct sites, each of which would cost the ingesting
/// CumulativeIsolator a trial-state entry (now including the ~4 KB
/// incremental Bayes accumulator).
static constexpr uint64_t MaxSummaryTrials = uint64_t(1) << 14;

std::vector<uint8_t>
exterminator::serializeRunSummary(const RunSummary &Summary) {
  ByteWriter Writer;
  Writer.writeU32(SummaryMagic);
  Writer.writeU8(Summary.Failed ? 1 : 0);
  Writer.writeU8(Summary.CorruptionObserved ? 1 : 0);
  Writer.writeU64(Summary.EndTime);
  Writer.writeU64(Summary.OverflowTrials.size());
  for (const OverflowTrial &Trial : Summary.OverflowTrials) {
    Writer.writeU32(Trial.AllocSite);
    Writer.writeF64(Trial.Probability);
    Writer.writeU8(Trial.Observed ? 1 : 0);
    Writer.writeU32(Trial.PadEstimate);
  }
  Writer.writeU64(Summary.DanglingTrials.size());
  for (const DanglingTrial &Trial : Summary.DanglingTrials) {
    Writer.writeU32(Trial.AllocSite);
    Writer.writeU32(Trial.FreeSite);
    Writer.writeF64(Trial.Probability);
    Writer.writeU8(Trial.Observed ? 1 : 0);
    Writer.writeU64(Trial.FreeToFailure);
  }
  return Writer.buffer();
}

bool exterminator::deserializeRunSummary(const std::vector<uint8_t> &Buffer,
                                         RunSummary &SummaryOut) {
  ByteReader Reader(Buffer);
  if (Reader.readU32() != SummaryMagic)
    return false;
  SummaryOut = RunSummary();
  SummaryOut.Failed = Reader.readU8() != 0;
  SummaryOut.CorruptionObserved = Reader.readU8() != 0;
  SummaryOut.EndTime = Reader.readU64();
  const uint64_t NumOverflow = Reader.readU64();
  if (Reader.failed() || NumOverflow > MaxSummaryTrials)
    return false;
  for (uint64_t I = 0; I < NumOverflow && !Reader.failed(); ++I) {
    OverflowTrial Trial;
    Trial.AllocSite = Reader.readU32();
    Trial.Probability = Reader.readF64();
    Trial.Observed = Reader.readU8() != 0;
    Trial.PadEstimate = Reader.readU32();
    SummaryOut.OverflowTrials.push_back(Trial);
  }
  const uint64_t NumDangling = Reader.readU64();
  if (Reader.failed() || NumDangling > MaxSummaryTrials)
    return false;
  for (uint64_t I = 0; I < NumDangling && !Reader.failed(); ++I) {
    DanglingTrial Trial;
    Trial.AllocSite = Reader.readU32();
    Trial.FreeSite = Reader.readU32();
    Trial.Probability = Reader.readF64();
    Trial.Observed = Reader.readU8() != 0;
    Trial.FreeToFailure = Reader.readU64();
    SummaryOut.DanglingTrials.push_back(Trial);
  }
  return Reader.atEnd();
}

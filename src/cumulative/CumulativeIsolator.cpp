//===- cumulative/CumulativeIsolator.cpp - Cumulative isolation ------------===//

#include "cumulative/CumulativeIsolator.h"

#include "support/Serializer.h"

#include <algorithm>
#include <utility>

using namespace exterminator;

CumulativeIsolator::CumulativeIsolator(const CumulativeConfig &Config)
    : Config(Config) {}

/// Most distinct sites/pairs the accumulated state will track.  Real
/// programs have at most tens of thousands of allocation sites; the cap
/// exists for the patch-server deployment, where each tracked entry
/// costs trial state (including the ~4 KB incremental Bayes
/// accumulator) and a stream of forged summaries could otherwise grow
/// the server without bound.  Trials for sites past the cap are
/// dropped; already-tracked sites keep accumulating.
static constexpr size_t MaxTrackedSites = size_t(1) << 16;

/// Most trials retained per site/pair.  At thousands of coin flips the
/// Bayes factor has decided the site either way — further trials only
/// grow the stored vector (classification reads the O(1) accumulator),
/// so the long-lived server drops them instead of growing per-site
/// state forever.  The accumulator stops folding at the same count so
/// serialize → deserialize (which replays the stored trials) rebuilds
/// the identical classifier state.
static constexpr size_t MaxTrialsPerSite = size_t(1) << 12;

void CumulativeIsolator::addRun(const RunSummary &Summary) {
  ++Runs;
  if (Summary.Failed)
    ++FailedRuns;
  if (Summary.CorruptionObserved)
    ++CorruptRuns;

  for (const OverflowTrial &Trial : Summary.OverflowTrials) {
    if (OverflowSites.size() >= MaxTrackedSites &&
        !OverflowSites.count(Trial.AllocSite))
      continue;
    OverflowSiteState &State = OverflowSites[Trial.AllocSite];
    if (State.Trials.size() < MaxTrialsPerSite) {
      State.Trials.push_back(BayesTrial{Trial.Probability, Trial.Observed});
      State.Accum.addTrial(State.Trials.back());
    }
    // Pad estimates stay live past the trial cap: the patch value must
    // track the largest overflow ever observed.
    if (Trial.Observed) {
      ++State.Observed;
      State.MaxPad = std::max(State.MaxPad, Trial.PadEstimate);
    }
  }
  for (const DanglingTrial &Trial : Summary.DanglingTrials) {
    const uint64_t Key = pairKey(Trial.AllocSite, Trial.FreeSite);
    if (DanglingPairs.size() >= MaxTrackedSites && !DanglingPairs.count(Key))
      continue;
    DanglingPairState &State = DanglingPairs[Key];
    if (State.Trials.size() < MaxTrialsPerSite) {
      State.Trials.push_back(BayesTrial{Trial.Probability, Trial.Observed});
      State.Accum.addTrial(State.Trials.back());
    }
    if (Trial.Observed) {
      ++State.Observed;
      State.MaxFreeToFailure =
          std::max(State.MaxFreeToFailure, Trial.FreeToFailure);
    }
  }
}

std::vector<CumulativeOverflowFinding>
CumulativeIsolator::classifyOverflows() const {
  std::vector<CumulativeOverflowFinding> Findings;
  if (OverflowSites.empty())
    return Findings;
  const size_t NumSites = Config.TotalSitesHint
                              ? Config.TotalSitesHint
                              : OverflowSites.size();
  const BayesClassifier Classifier(Config.PriorC);
  const double Threshold = Classifier.logThreshold(NumSites);

  for (const auto &[Site, State] : OverflowSites) {
    // O(nodes) from the incremental accumulator — classification after
    // every ingested summary stays flat as the fleet's history grows
    // (bit-identical to recomputing over State.Trials).
    const double LogBF = State.Accum.logBayesFactor();
    if (LogBF <= Threshold)
      continue;
    CumulativeOverflowFinding Finding;
    Finding.AllocSite = Site;
    Finding.LogBayesFactor = LogBF;
    Finding.LogThreshold = Threshold;
    Finding.PadBytes = State.MaxPad;
    Finding.TrialCount = static_cast<uint32_t>(State.Trials.size());
    Finding.ObservedCount = State.Observed;
    Findings.push_back(Finding);
  }
  std::sort(Findings.begin(), Findings.end(),
            [](const CumulativeOverflowFinding &A,
               const CumulativeOverflowFinding &B) {
              return A.LogBayesFactor > B.LogBayesFactor;
            });
  return Findings;
}

std::vector<CumulativeDanglingFinding>
CumulativeIsolator::classifyDanglings() const {
  std::vector<CumulativeDanglingFinding> Findings;
  if (DanglingPairs.empty())
    return Findings;
  const size_t NumPairs = Config.TotalSitesHint ? Config.TotalSitesHint
                                                : DanglingPairs.size();
  const BayesClassifier Classifier(Config.PriorC);
  const double Threshold = Classifier.logThreshold(NumPairs);

  for (const auto &[Key, State] : DanglingPairs) {
    const double LogBF = State.Accum.logBayesFactor();
    if (LogBF <= Threshold)
      continue;
    CumulativeDanglingFinding Finding;
    Finding.AllocSite = static_cast<SiteId>(Key >> 32);
    Finding.FreeSite = static_cast<SiteId>(Key & 0xffffffffu);
    Finding.LogBayesFactor = LogBF;
    Finding.LogThreshold = Threshold;
    Finding.DeferralTicks = 2 * State.MaxFreeToFailure;
    Finding.TrialCount = static_cast<uint32_t>(State.Trials.size());
    Finding.ObservedCount = State.Observed;
    Findings.push_back(Finding);
  }
  std::sort(Findings.begin(), Findings.end(),
            [](const CumulativeDanglingFinding &A,
               const CumulativeDanglingFinding &B) {
              return A.LogBayesFactor > B.LogBayesFactor;
            });
  return Findings;
}

std::vector<SitePosterior>
CumulativeIsolator::sitePosteriors(size_t MaxSites) const {
  std::vector<SitePosterior> Out;
  const BayesClassifier Classifier(Config.PriorC);
  if (!OverflowSites.empty()) {
    const size_t NumSites = Config.TotalSitesHint ? Config.TotalSitesHint
                                                  : OverflowSites.size();
    const double Threshold = Classifier.logThreshold(NumSites);
    for (const auto &[Site, State] : OverflowSites) {
      SitePosterior P;
      P.AllocSite = Site;
      P.LogBayesFactor = State.Accum.logBayesFactor();
      P.LogThreshold = Threshold;
      P.TrialCount = static_cast<uint32_t>(State.Trials.size());
      P.ObservedCount = State.Observed;
      Out.push_back(P);
    }
  }
  if (!DanglingPairs.empty()) {
    const size_t NumPairs = Config.TotalSitesHint ? Config.TotalSitesHint
                                                  : DanglingPairs.size();
    const double Threshold = Classifier.logThreshold(NumPairs);
    for (const auto &[Key, State] : DanglingPairs) {
      SitePosterior P;
      P.Dangling = true;
      P.AllocSite = static_cast<SiteId>(Key >> 32);
      P.FreeSite = static_cast<SiteId>(Key & 0xffffffffu);
      P.LogBayesFactor = State.Accum.logBayesFactor();
      P.LogThreshold = Threshold;
      P.TrialCount = static_cast<uint32_t>(State.Trials.size());
      P.ObservedCount = State.Observed;
      Out.push_back(P);
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const SitePosterior &A, const SitePosterior &B) {
              return A.margin() > B.margin();
            });
  if (MaxSites && Out.size() > MaxSites)
    Out.resize(MaxSites);
  return Out;
}

PatchSet CumulativeIsolator::patches() const {
  PatchSet Patches;
  for (const CumulativeOverflowFinding &Finding : classifyOverflows())
    Patches.addPad(Finding.AllocSite, Finding.PadBytes);
  for (const CumulativeDanglingFinding &Finding : classifyDanglings())
    Patches.addDeferral(Finding.AllocSite, Finding.FreeSite,
                        Finding.DeferralTicks);
  return Patches;
}

/// State format magics.  v1 ("XCS1") stores trials only and rebuilds the
/// incremental Bayes accumulators by replaying them; v2 ("XCS2") appends
/// each site's running log-likelihood sums so a restored server gets its
/// classifier state back in O(nodes) per site without replay — the f64
/// bits round-trip exactly, so the restored factors are bit-identical
/// either way.  serialize() writes v2; deserialize() accepts both.
static constexpr uint32_t StateMagicV1 = 0x58435331; // "XCS1"
static constexpr uint32_t StateMagicV2 = 0x58435332; // "XCS2"

std::vector<uint8_t> CumulativeIsolator::serialize() const {
  ByteWriter Writer;
  Writer.writeU32(StateMagicV2);
  Writer.writeU64(Runs);
  Writer.writeU64(FailedRuns);
  Writer.writeU64(CorruptRuns);
  Writer.writeU64(OverflowSites.size());
  for (const auto &[Site, State] : OverflowSites) {
    Writer.writeU32(Site);
    Writer.writeU32(State.MaxPad);
    Writer.writeU32(State.Observed);
    Writer.writeU64(State.Trials.size());
    for (const BayesTrial &Trial : State.Trials) {
      Writer.writeF64(Trial.Probability);
      Writer.writeU8(Trial.Observed ? 1 : 0);
    }
    State.Accum.serialize(Writer);
  }
  Writer.writeU64(DanglingPairs.size());
  for (const auto &[Key, State] : DanglingPairs) {
    Writer.writeU64(Key);
    Writer.writeU64(State.MaxFreeToFailure);
    Writer.writeU32(State.Observed);
    Writer.writeU64(State.Trials.size());
    for (const BayesTrial &Trial : State.Trials) {
      Writer.writeF64(Trial.Probability);
      Writer.writeU8(Trial.Observed ? 1 : 0);
    }
    State.Accum.serialize(Writer);
  }
  return Writer.buffer();
}

bool CumulativeIsolator::deserialize(const std::vector<uint8_t> &Buffer) {
  // Decode into locals and swap only on success — a torn state file must
  // never half-seed the accumulated history (all-or-nothing, like
  // deserializePatchSet).
  ByteReader Reader(Buffer);
  const uint32_t Magic = Reader.readU32();
  if (Magic != StateMagicV1 && Magic != StateMagicV2)
    return false;
  const bool HasAccum = Magic == StateMagicV2;
  uint64_t NewRuns = Reader.readU64();
  uint64_t NewFailedRuns = Reader.readU64();
  uint64_t NewCorruptRuns = Reader.readU64();
  std::map<SiteId, OverflowSiteState> NewOverflowSites;
  std::map<uint64_t, DanglingPairState> NewDanglingPairs;

  const uint64_t NumSites = Reader.readU64();
  for (uint64_t I = 0; I < NumSites && !Reader.failed(); ++I) {
    const SiteId Site = Reader.readU32();
    OverflowSiteState &State = NewOverflowSites[Site];
    State.MaxPad = Reader.readU32();
    State.Observed = Reader.readU32();
    const uint64_t NumTrials = Reader.readU64();
    for (uint64_t T = 0; T < NumTrials && !Reader.failed(); ++T) {
      BayesTrial Trial;
      Trial.Probability = Reader.readF64();
      Trial.Observed = Reader.readU8() != 0;
      State.Trials.push_back(Trial);
      if (!HasAccum)
        State.Accum.addTrial(Trial);
    }
    if (HasAccum && !State.Accum.deserialize(Reader))
      return false;
  }
  const uint64_t NumPairs = Reader.readU64();
  for (uint64_t I = 0; I < NumPairs && !Reader.failed(); ++I) {
    const uint64_t Key = Reader.readU64();
    DanglingPairState &State = NewDanglingPairs[Key];
    State.MaxFreeToFailure = Reader.readU64();
    State.Observed = Reader.readU32();
    const uint64_t NumTrials = Reader.readU64();
    for (uint64_t T = 0; T < NumTrials && !Reader.failed(); ++T) {
      BayesTrial Trial;
      Trial.Probability = Reader.readF64();
      Trial.Observed = Reader.readU8() != 0;
      State.Trials.push_back(Trial);
      if (!HasAccum)
        State.Accum.addTrial(Trial);
    }
    if (HasAccum && !State.Accum.deserialize(Reader))
      return false;
  }
  if (!Reader.atEnd())
    return false;
  Runs = NewRuns;
  FailedRuns = NewFailedRuns;
  CorruptRuns = NewCorruptRuns;
  OverflowSites = std::move(NewOverflowSites);
  DanglingPairs = std::move(NewDanglingPairs);
  return true;
}

//===- cumulative/CumulativeIsolator.h - Cumulative isolation --*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cumulative-mode error isolation (§5): accumulates per-run summaries
/// across many executions — no replication, identical inputs, or
/// deterministic behavior required — and flags allocation sites (for
/// overflows) or site pairs (for dangling pointers) whose observed
/// corruption criteria fire more often than chance, using the §5.1
/// Bayesian classifier.  Produces the same runtime patches as the
/// iterative pipeline.
///
/// The accumulated state is serializable; the paper stores it in the
/// patch file between runs ("a few kilobytes per execution, compared to
/// tens or hundreds of megabytes for each heap image").
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CUMULATIVE_CUMULATIVEISOLATOR_H
#define EXTERMINATOR_CUMULATIVE_CUMULATIVEISOLATOR_H

#include "cumulative/BayesClassifier.h"
#include "cumulative/RunSummary.h"
#include "patch/RuntimePatch.h"

#include <cstdint>
#include <map>
#include <vector>

namespace exterminator {

/// Tuning for cumulative isolation.
struct CumulativeConfig {
  /// The constant c in the prior P(H1) = 1/(cN); the paper uses 4.
  double PriorC = 4.0;
  /// If nonzero, overrides N (the number of candidate sites) in the
  /// decision threshold; by default the number of sites with trials.
  size_t TotalSitesHint = 0;
};

/// An allocation site flagged as an overflow source.
struct CumulativeOverflowFinding {
  SiteId AllocSite = 0;
  double LogBayesFactor = 0.0;
  double LogThreshold = 0.0;
  /// max per-run pad estimate (§5.1): the patch's pad value.
  uint32_t PadBytes = 0;
  uint32_t TrialCount = 0;
  uint32_t ObservedCount = 0;
};

/// A site pair flagged as a dangling-pointer source.
struct CumulativeDanglingFinding {
  SiteId AllocSite = 0;
  SiteId FreeSite = 0;
  double LogBayesFactor = 0.0;
  double LogThreshold = 0.0;
  /// 2 × max(free-to-failure distance) (§5.2): the patch's deferral.
  uint64_t DeferralTicks = 0;
  uint32_t TrialCount = 0;
  uint32_t ObservedCount = 0;
};

/// One tracked site's (or site pair's) standing against the §5.1
/// classification bar, classified or not — what the observability plane
/// exports as the xterm_site_posterior family.  margin() > 0 is exactly
/// the classify* flagging condition.
struct SitePosterior {
  bool Dangling = false;
  SiteId AllocSite = 0;
  SiteId FreeSite = 0; ///< meaningful only when Dangling
  double LogBayesFactor = 0.0;
  double LogThreshold = 0.0;
  uint32_t TrialCount = 0;
  uint32_t ObservedCount = 0;
  double margin() const { return LogBayesFactor - LogThreshold; }
};

/// Accumulates run summaries and classifies error sources.
class CumulativeIsolator {
public:
  explicit CumulativeIsolator(const CumulativeConfig &Config = {});

  /// Folds one execution's summary into the accumulated state.
  void addRun(const RunSummary &Summary);

  uint64_t runCount() const { return Runs; }
  uint64_t failedRunCount() const { return FailedRuns; }
  uint64_t corruptRunCount() const { return CorruptRuns; }

  /// Sites whose Bayes factor crosses the threshold, best-first.
  std::vector<CumulativeOverflowFinding> classifyOverflows() const;
  std::vector<CumulativeDanglingFinding> classifyDanglings() const;

  /// Every tracked site's standing against the bar (thresholds computed
  /// exactly as classify* computes them), worst-offender-first by
  /// margin; \p MaxSites > 0 truncates to the top offenders so the
  /// exported family stays bounded regardless of fleet history.
  std::vector<SitePosterior> sitePosteriors(size_t MaxSites = 0) const;

  /// Runtime patches for everything currently classified as an error.
  PatchSet patches() const;

  /// Round-trips the accumulated state (persisted between executions,
  /// and the cumulative half of the patch server's durable snapshots).
  /// serialize writes format v2 ("XCS2"): trials plus each site's
  /// running Bayes log-likelihood sums, so a restore rebuilds the
  /// classifier bit-identically without replaying trial history;
  /// deserialize also accepts v1 ("XCS1", trials only, replayed).
  /// deserialize is all-or-nothing: a malformed buffer returns false
  /// and leaves the accumulated state untouched.
  std::vector<uint8_t> serialize() const;
  bool deserialize(const std::vector<uint8_t> &Buffer);

private:
  struct OverflowSiteState {
    std::vector<BayesTrial> Trials;
    /// Incremental classifier state over Trials (same order, so the
    /// factor is bit-identical to a batch recompute) — keeps per-summary
    /// classification cost flat as runs accumulate.
    BayesAccumulator Accum;
    uint32_t MaxPad = 0;
    uint32_t Observed = 0;
  };
  struct DanglingPairState {
    std::vector<BayesTrial> Trials;
    BayesAccumulator Accum;
    uint64_t MaxFreeToFailure = 0;
    uint32_t Observed = 0;
  };

  CumulativeConfig Config;
  uint64_t Runs = 0;
  uint64_t FailedRuns = 0;
  uint64_t CorruptRuns = 0;
  std::map<SiteId, OverflowSiteState> OverflowSites;
  std::map<uint64_t, DanglingPairState> DanglingPairs;

  static uint64_t pairKey(SiteId AllocSite, SiteId FreeSite) {
    return (uint64_t(AllocSite) << 32) | FreeSite;
  }
};

} // namespace exterminator

#endif // EXTERMINATOR_CUMULATIVE_CUMULATIVEISOLATOR_H

//===- cumulative/SiteEstimator.h - Per-site probabilities -----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reduces one heap image to cumulative-mode trials (§5.1, §5.2).
///
/// Overflow: for the observed corruption (miniheap M_c, slot index k), an
/// object i could be the forward-overflow source iff it was placed in M_c
/// (probability size'(i,M_c) / Σ_j size'(i,M_j), counting only miniheaps
/// that existed when i was allocated) at a lower address (probability
/// k / size(M_c)).  A site's trial is
/// P(C_A) = 1 − Π_{i from A} (1 − P(C_i)) with the observed indicator C_A.
///
/// Dangling: with canary-fill probability p, a pair's trial is
/// X = 1 − (1−p)^n over its n observed freed objects and Y = "some object
/// actually got canaried" — failures correlate with Y exactly when the
/// pair dangles.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CUMULATIVE_SITEESTIMATOR_H
#define EXTERMINATOR_CUMULATIVE_SITEESTIMATOR_H

#include "cumulative/RunSummary.h"
#include "heapimage/HeapImage.h"

namespace exterminator {

/// Builds the cumulative-mode summary of one execution.
/// \param Image heap image captured at the end of the run (at failure for
///        failed runs).
/// \param Failed whether the run failed.
RunSummary summarizeRun(const HeapImage &Image, bool Failed);

} // namespace exterminator

#endif // EXTERMINATOR_CUMULATIVE_SITEESTIMATOR_H

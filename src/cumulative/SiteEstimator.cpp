//===- cumulative/SiteEstimator.cpp - Per-site probabilities ----------------===//

#include "cumulative/SiteEstimator.h"

#include "diefast/Canary.h"

#include <algorithm>
#include <map>
#include <optional>

using namespace exterminator;

namespace {

/// The first (lowest-index) corrupted canaried slot in the image.
struct Corruption {
  uint32_t MiniheapIndex;
  uint32_t SlotIndex;
  /// End of the corrupted bytes as an offset within the miniheap.
  uint64_t EndOffsetInMiniheap;
};

} // namespace

static std::optional<Corruption> findFirstCorruption(const HeapImage &Image) {
  const Canary HeapCanary = Canary::fromValue(Image.CanaryValue);
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      const uint8_t Flags = Image.slotFlags(Loc);
      if (!(Flags & SlotFlagCanaried) ||
          ((Flags & SlotFlagAllocated) && !(Flags & SlotFlagBad)))
        continue;
      std::optional<CorruptionExtent> Extent =
          Image.contents(Loc).findCorruption(HeapCanary);
      if (!Extent)
        continue;
      return Corruption{M, S, S * Mini.ObjectSize + Extent->End};
    }
  }
  return std::nullopt;
}

/// Overflow trials for the corruption at (M_c, k) per the §5.1 estimator.
static void computeOverflowTrials(const HeapImage &Image,
                                  const Corruption &Corrupt,
                                  std::vector<OverflowTrial> &TrialsOut) {
  const ImageMiniheapInfo &CorruptMini =
      Image.miniheapInfo(Corrupt.MiniheapIndex);
  const uint32_t ClassIndex = CorruptMini.SizeClassIndex;
  const double CorruptSize = static_cast<double>(CorruptMini.NumSlots);
  const double K = static_cast<double>(Corrupt.SlotIndex);

  // Miniheaps of the corrupt size class, for the size'(i, M_j) sums.
  std::vector<const ImageMiniheapInfo *> ClassMiniheaps;
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M)
    if (Image.miniheapInfo(M).SizeClassIndex == ClassIndex)
      ClassMiniheaps.push_back(&Image.miniheapInfo(M));

  struct SiteState {
    double ProbNoObject = 1.0; // Π (1 − P(C_i))
    bool Observed = false;
    uint32_t PadEstimate = 0;
    /// Nearest observed object start below the corruption, for the pad.
    std::optional<uint64_t> NearestBelowOffset;
  };
  std::map<SiteId, SiteState> Sites;

  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    if (Mini.SizeClassIndex != ClassIndex)
      continue; // Objects of other classes can never land in M_c.
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      if (Image.objectId(Loc) == 0)
        continue;
      SiteState &State = Sites[Image.allocSite(Loc)];

      // size'(i, M_j): miniheaps that existed when object i was
      // allocated (ObjectId doubles as the allocation time).
      const uint64_t AllocTime = Image.allocTime(Loc);
      double Denominator = 0.0;
      for (const ImageMiniheapInfo *Other : ClassMiniheaps)
        if (Other->CreationTime <= AllocTime)
          Denominator += static_cast<double>(Other->NumSlots);
      const double Numerator =
          CorruptMini.CreationTime <= AllocTime ? CorruptSize : 0.0;
      if (Denominator > 0.0) {
        const double PCi = (Numerator / Denominator) * (K / CorruptSize);
        State.ProbNoObject *= 1.0 - PCi;
      }

      // Observed C_i: the object lies in M_c strictly below the corrupted
      // slot.
      if (M == Corrupt.MiniheapIndex && S < Corrupt.SlotIndex) {
        State.Observed = true;
        const uint64_t StartOffset = S * Mini.ObjectSize;
        if (!State.NearestBelowOffset ||
            StartOffset > *State.NearestBelowOffset) {
          State.NearestBelowOffset = StartOffset;
          const uint64_t Distance =
              Corrupt.EndOffsetInMiniheap - StartOffset;
          const uint32_t RequestedSize = Image.requestedSize(Loc);
          State.PadEstimate = static_cast<uint32_t>(
              Distance > RequestedSize ? Distance - RequestedSize : 0);
        }
      }
    }
  }

  for (const auto &[Site, State] : Sites) {
    OverflowTrial Trial;
    Trial.AllocSite = Site;
    Trial.Probability = 1.0 - State.ProbNoObject;
    Trial.Observed = State.Observed;
    Trial.PadEstimate = State.Observed ? State.PadEstimate : 0;
    TrialsOut.push_back(Trial);
  }
}

/// Dangling trials: one Bernoulli summary per (alloc, free) pair (§5.2).
static void computeDanglingTrials(const HeapImage &Image,
                                  std::vector<DanglingTrial> &TrialsOut) {
  struct PairState {
    uint64_t FreedCount = 0;
    uint64_t CanariedCount = 0;
    uint64_t OldestCanariedFreeTime = 0;
  };
  std::map<std::pair<SiteId, SiteId>, PairState> Pairs;

  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      // Observed freed objects: freed at least once and not recycled
      // (still free, or quarantined with their history intact).
      if (Image.objectId(Loc) == 0 || Image.freeTime(Loc) == 0)
        continue;
      const uint8_t Flags = Image.slotFlags(Loc);
      if ((Flags & SlotFlagAllocated) && !(Flags & SlotFlagBad))
        continue;
      PairState &State = Pairs[{Image.allocSite(Loc), Image.freeSite(Loc)}];
      ++State.FreedCount;
      if (Flags & SlotFlagCanaried) {
        ++State.CanariedCount;
        if (State.OldestCanariedFreeTime == 0 ||
            Image.freeTime(Loc) < State.OldestCanariedFreeTime)
          State.OldestCanariedFreeTime = Image.freeTime(Loc);
      }
    }
  }

  const double P = Image.CanaryFillProbability;
  for (const auto &[Key, State] : Pairs) {
    DanglingTrial Trial;
    Trial.AllocSite = Key.first;
    Trial.FreeSite = Key.second;
    // X = 1 − (1−p)^n: chance some object of the pair got canaried.
    double NoneCanaried = 1.0;
    for (uint64_t I = 0; I < State.FreedCount; ++I)
      NoneCanaried *= 1.0 - P;
    Trial.Probability = 1.0 - NoneCanaried;
    Trial.Observed = State.CanariedCount > 0;
    Trial.FreeToFailure =
        Trial.Observed ? Image.AllocationTime - State.OldestCanariedFreeTime
                       : 0;
    TrialsOut.push_back(Trial);
  }
}

RunSummary exterminator::summarizeRun(const HeapImage &Image, bool Failed) {
  RunSummary Summary;
  Summary.Failed = Failed;
  Summary.EndTime = Image.AllocationTime;

  std::optional<Corruption> Corrupt = findFirstCorruption(Image);
  Summary.CorruptionObserved = Corrupt.has_value();
  if (Corrupt)
    computeOverflowTrials(Image, *Corrupt, Summary.OverflowTrials);

  // Dangling analysis only learns from failed runs (§5.2: "For each
  // failed run, Exterminator computes the probability that an object was
  // canaried from each allocation site").
  if (Failed)
    computeDanglingTrials(Image, Summary.DanglingTrials);
  return Summary;
}

//===- support/Statistics.h - Summary statistics ---------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small numeric helpers shared by the evaluation harness: arithmetic and
/// geometric means (Figure 7 reports geometric-mean overheads), a Welford
/// accumulator, and log-space addition used by the cumulative-mode Bayes
/// classifier (§5.1).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_STATISTICS_H
#define EXTERMINATOR_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace exterminator {

/// Arithmetic mean of \p Values (0 for empty input).
double mean(const std::vector<double> &Values);

/// Geometric mean of \p Values; all entries must be positive.
double geometricMean(const std::vector<double> &Values);

/// log(exp(LogA) + exp(LogB)) computed without overflow.
double logAdd(double LogA, double LogB);

/// Streaming mean/variance (Welford's algorithm).
class RunningStat {
public:
  void add(double Value);
  size_t count() const { return Count; }
  double mean() const { return Count ? Mean : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return Min; }
  double max() const { return Max; }

private:
  size_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_STATISTICS_H

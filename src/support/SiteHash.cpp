//===- support/SiteHash.cpp - Call-site hashing ---------------------------===//

#include "support/SiteHash.h"

using namespace exterminator;

SiteId exterminator::computeSiteHash(const uint32_t Pc[SiteHashDepth]) {
  // Paper Figure 3 (DJB2 [6]): int hash = 5381;
  // for i in 0..5: hash = ((hash << 5) + hash) + pc[i].
  uint32_t Hash = 5381;
  for (unsigned I = 0; I < SiteHashDepth; ++I)
    Hash = ((Hash << 5) + Hash) + Pc[I];
  return Hash;
}

SiteId CallContext::currentSite() const {
  uint32_t Pc[SiteHashDepth] = {0, 0, 0, 0, 0};
  const size_t Depth = Frames.size();
  const size_t Take = Depth < SiteHashDepth ? Depth : SiteHashDepth;
  // Pc[0] is the innermost (most recent) frame, as a return-address walk
  // would produce.
  for (size_t I = 0; I < Take; ++I)
    Pc[I] = Frames[Depth - 1 - I];
  return computeSiteHash(Pc);
}

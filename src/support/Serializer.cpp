//===- support/Serializer.cpp - Binary serialization ----------------------===//

#include "support/Serializer.h"

#include <cstdio>
#include <cstring>

using namespace exterminator;

void ByteWriter::writeU32(uint32_t Value) {
  for (int I = 0; I < 4; ++I)
    Buffer.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

void ByteWriter::writeU64(uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Buffer.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

void ByteWriter::writeF64(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeU64(Bits);
}

void ByteWriter::writeBytes(const void *Data, size_t Size) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  Buffer.insert(Buffer.end(), Bytes, Bytes + Size);
}

void ByteWriter::writeBlob(const std::vector<uint8_t> &Blob) {
  writeU64(Blob.size());
  writeBytes(Blob.data(), Blob.size());
}

void ByteWriter::writeString(const std::string &Str) {
  writeU64(Str.size());
  writeBytes(Str.data(), Str.size());
}

uint8_t ByteReader::readU8() {
  uint8_t Value = 0;
  readBytes(&Value, 1);
  return Value;
}

uint32_t ByteReader::readU32() {
  uint8_t Raw[4] = {};
  readBytes(Raw, 4);
  uint32_t Value = 0;
  for (int I = 3; I >= 0; --I)
    Value = (Value << 8) | Raw[I];
  return Value;
}

uint64_t ByteReader::readU64() {
  uint8_t Raw[8] = {};
  readBytes(Raw, 8);
  uint64_t Value = 0;
  for (int I = 7; I >= 0; --I)
    Value = (Value << 8) | Raw[I];
  return Value;
}

double ByteReader::readF64() {
  uint64_t Bits = readU64();
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

bool ByteReader::readBytes(void *Out, size_t Count) {
  if (Failed || Count > Size - Offset) {
    Failed = true;
    std::memset(Out, 0, Count);
    return false;
  }
  std::memcpy(Out, Data + Offset, Count);
  Offset += Count;
  return true;
}

std::vector<uint8_t> ByteReader::readBlob() {
  uint64_t Count = readU64();
  if (Failed || Count > Size - Offset) {
    Failed = true;
    return {};
  }
  std::vector<uint8_t> Blob(Data + Offset, Data + Offset + Count);
  Offset += Count;
  return Blob;
}

std::string ByteReader::readString() {
  uint64_t Count = readU64();
  if (Failed || Count > Size - Offset) {
    Failed = true;
    return {};
  }
  std::string Str(reinterpret_cast<const char *>(Data + Offset), Count);
  Offset += Count;
  return Str;
}

bool exterminator::writeFileBytes(const std::string &Path,
                                  const std::vector<uint8_t> &Buffer) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Written =
      Buffer.empty() ? 0 : std::fwrite(Buffer.data(), 1, Buffer.size(), File);
  bool Ok = Written == Buffer.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

bool exterminator::readFileBytes(const std::string &Path,
                                 std::vector<uint8_t> &Buffer) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Buffer.clear();
  uint8_t Chunk[4096];
  size_t Count;
  while ((Count = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Buffer.insert(Buffer.end(), Chunk, Chunk + Count);
  bool Ok = std::feof(File) && !std::ferror(File);
  std::fclose(File);
  return Ok;
}

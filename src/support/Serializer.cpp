//===- support/Serializer.cpp - Binary serialization ----------------------===//

#include "support/Serializer.h"

#include <cstring>

#include <unistd.h>

using namespace exterminator;

void ByteWriter::writeU32(uint32_t Value) {
  for (int I = 0; I < 4; ++I)
    Buffer.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

void ByteWriter::writeU64(uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Buffer.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

void ByteWriter::writeF64(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeU64(Bits);
}

/// Shared LEB128 encoder: returns the number of bytes written to \p Out
/// (at most 10).
static size_t encodeVarU64(uint64_t Value, uint8_t Out[10]) {
  size_t Count = 0;
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value)
      Byte |= 0x80;
    Out[Count++] = Byte;
  } while (Value);
  return Count;
}

/// Shared LEB128 decoder.  \p ReadByte returns the next byte or -1 on
/// stream failure; \p Malformed is set on an overlong encoding: more
/// than 10 bytes, or a tenth byte carrying bits past bit 63 — silently
/// shifting those out would decode a corrupt field to a wrong value
/// instead of failing.
template <typename ReadByteFn>
static uint64_t decodeVarU64(ReadByteFn &&ReadByte, bool &Malformed) {
  uint64_t Value = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    const int Byte = ReadByte();
    if (Byte < 0)
      return 0;
    if (Shift == 63 && (Byte & 0x7f) > 1) {
      Malformed = true;
      return 0;
    }
    Value |= uint64_t(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return Value;
  }
  Malformed = true;
  return 0;
}

void ByteWriter::writeVarU64(uint64_t Value) {
  uint8_t Encoded[10];
  writeBytes(Encoded, encodeVarU64(Value, Encoded));
}

void ByteWriter::writeBytes(const void *Data, size_t Size) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  Buffer.insert(Buffer.end(), Bytes, Bytes + Size);
}

void ByteWriter::writeBlob(const std::vector<uint8_t> &Blob) {
  writeU64(Blob.size());
  writeBytes(Blob.data(), Blob.size());
}

void ByteWriter::writeString(const std::string &Str) {
  writeU64(Str.size());
  writeBytes(Str.data(), Str.size());
}

uint8_t ByteReader::readU8() {
  uint8_t Value = 0;
  readBytes(&Value, 1);
  return Value;
}

uint32_t ByteReader::readU32() {
  uint8_t Raw[4] = {};
  readBytes(Raw, 4);
  uint32_t Value = 0;
  for (int I = 3; I >= 0; --I)
    Value = (Value << 8) | Raw[I];
  return Value;
}

uint64_t ByteReader::readU64() {
  uint8_t Raw[8] = {};
  readBytes(Raw, 8);
  uint64_t Value = 0;
  for (int I = 7; I >= 0; --I)
    Value = (Value << 8) | Raw[I];
  return Value;
}

double ByteReader::readF64() {
  uint64_t Bits = readU64();
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

uint64_t ByteReader::readVarU64() {
  bool Malformed = false;
  const uint64_t Value = decodeVarU64(
      [&]() -> int {
        const uint8_t Byte = readU8();
        return Failed ? -1 : Byte;
      },
      Malformed);
  if (Malformed)
    Failed = true;
  return Value;
}

bool ByteReader::readBytes(void *Out, size_t Count) {
  if (Failed || Count > Size - Offset) {
    Failed = true;
    std::memset(Out, 0, Count);
    return false;
  }
  std::memcpy(Out, Data + Offset, Count);
  Offset += Count;
  return true;
}

std::vector<uint8_t> ByteReader::readBlob() {
  uint64_t Count = readU64();
  if (Failed || Count > Size - Offset) {
    Failed = true;
    return {};
  }
  std::vector<uint8_t> Blob(Data + Offset, Data + Offset + Count);
  Offset += Count;
  return Blob;
}

std::string ByteReader::readString() {
  uint64_t Count = readU64();
  if (Failed || Count > Size - Offset) {
    Failed = true;
    return {};
  }
  std::string Str(reinterpret_cast<const char *>(Data + Offset), Count);
  Offset += Count;
  return Str;
}

//===----------------------------------------------------------------------===//
// Streaming layer
//===----------------------------------------------------------------------===//

ByteSink::~ByteSink() = default;
ByteSource::~ByteSource() = default;

bool VectorSink::write(const void *Data, size_t Size) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  Out.insert(Out.end(), Bytes, Bytes + Size);
  return true;
}

FileSink::FileSink(const std::string &Path)
    : File(std::fopen(Path.c_str(), "wb")) {}

FileSink::~FileSink() { close(); }

bool FileSink::write(const void *Data, size_t Size) {
  if (!File)
    return false;
  if (std::fwrite(Data, 1, Size, File) != Size) {
    WriteFailed = true;
    return false;
  }
  return true;
}

bool FileSink::close() {
  if (!File)
    return !WriteFailed;
  const bool Ok = std::fclose(File) == 0 && !WriteFailed;
  File = nullptr;
  WriteFailed = !Ok;
  return Ok;
}

size_t MemorySource::read(void *Out, size_t Count) {
  const size_t Take = Count < Size - Offset ? Count : Size - Offset;
  std::memcpy(Out, Data + Offset, Take);
  Offset += Take;
  return Take;
}

FileSource::FileSource(const std::string &Path)
    : File(std::fopen(Path.c_str(), "rb")) {}

FileSource::~FileSource() {
  if (File)
    std::fclose(File);
}

size_t FileSource::read(void *Out, size_t Size) {
  if (!File)
    return 0;
  return std::fread(Out, 1, Size, File);
}

bool FileSource::exhausted() {
  if (!File)
    return true;
  // Peek one byte: a successful read means trailing garbage.
  uint8_t Byte;
  if (std::fread(&Byte, 1, 1, File) == 1) {
    std::ungetc(Byte, File);
    return false;
  }
  return std::feof(File) != 0;
}

void StreamWriter::writeU32(uint32_t Value) {
  uint8_t Raw[4];
  for (int I = 0; I < 4; ++I)
    Raw[I] = static_cast<uint8_t>(Value >> (8 * I));
  writeBytes(Raw, 4);
}

void StreamWriter::writeU64(uint64_t Value) {
  uint8_t Raw[8];
  for (int I = 0; I < 8; ++I)
    Raw[I] = static_cast<uint8_t>(Value >> (8 * I));
  writeBytes(Raw, 8);
}

void StreamWriter::writeF64(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  writeU64(Bits);
}

void StreamWriter::writeVarU64(uint64_t Value) {
  uint8_t Encoded[10];
  writeBytes(Encoded, encodeVarU64(Value, Encoded));
}

void StreamWriter::writeBytes(const void *Data, size_t Size) {
  if (Failed)
    return;
  if (!Sink.write(Data, Size))
    Failed = true;
}

uint8_t StreamReader::readU8() {
  uint8_t Value = 0;
  readBytes(&Value, 1);
  return Value;
}

uint32_t StreamReader::readU32() {
  uint8_t Raw[4] = {};
  readBytes(Raw, 4);
  uint32_t Value = 0;
  for (int I = 3; I >= 0; --I)
    Value = (Value << 8) | Raw[I];
  return Value;
}

uint64_t StreamReader::readU64() {
  uint8_t Raw[8] = {};
  readBytes(Raw, 8);
  uint64_t Value = 0;
  for (int I = 7; I >= 0; --I)
    Value = (Value << 8) | Raw[I];
  return Value;
}

double StreamReader::readF64() {
  uint64_t Bits = readU64();
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

uint64_t StreamReader::readVarU64() {
  bool Malformed = false;
  const uint64_t Value = decodeVarU64(
      [&]() -> int {
        const uint8_t Byte = readU8();
        return Failed ? -1 : Byte;
      },
      Malformed);
  if (Malformed)
    Failed = true;
  return Value;
}

bool StreamReader::readBytes(void *Out, size_t Count) {
  if (Failed || Source.read(Out, Count) != Count) {
    Failed = true;
    std::memset(Out, 0, Count);
    return false;
  }
  return true;
}

bool exterminator::writeFileBytes(const std::string &Path,
                                  const std::vector<uint8_t> &Buffer) {
  // Never truncate the target in place: a crash or full disk mid-write
  // must leave any existing file (a patch file, a server snapshot)
  // untouched.  Write a sibling temp file, fsync it, then rename() over
  // the target — the replacement is all-or-nothing.
  const std::string Temp = Path + ".tmp";
  std::FILE *File = std::fopen(Temp.c_str(), "wb");
  if (!File)
    return false;
  size_t Written =
      Buffer.empty() ? 0 : std::fwrite(Buffer.data(), 1, Buffer.size(), File);
  bool Ok = Written == Buffer.size();
  Ok = Ok && std::fflush(File) == 0 && ::fsync(::fileno(File)) == 0;
  Ok &= std::fclose(File) == 0;
  Ok = Ok && std::rename(Temp.c_str(), Path.c_str()) == 0;
  if (!Ok) {
    std::remove(Temp.c_str());
    return false;
  }
  return true;
}

bool exterminator::readFileBytes(const std::string &Path,
                                 std::vector<uint8_t> &Buffer) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Buffer.clear();
  uint8_t Chunk[4096];
  size_t Count;
  while ((Count = std::fread(Chunk, 1, sizeof(Chunk), File)) > 0)
    Buffer.insert(Buffer.end(), Chunk, Chunk + Count);
  bool Ok = std::feof(File) && !std::ferror(File);
  std::fclose(File);
  return Ok;
}

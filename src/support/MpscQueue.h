//===- support/MpscQueue.h - Lock-free MPSC intrusive queue ----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free multi-producer single-consumer queue of intrusive nodes,
/// the spine of the concurrent allocator's remote-free path: a thread
/// freeing an object owned by another structure pushes one node (stored
/// in the freed object's own first bytes) and walks away; the owner
/// drains the whole queue in one atomic exchange during its next refill.
///
/// The producer side is a Treiber push: one compare-exchange on the head,
/// no allocation, no waiting — a failed CAS retries against the fresh
/// head and cannot livelock producers against the consumer (drain swaps
/// the head to null, after which pushes succeed immediately on the empty
/// list).  The consumer side is a single exchange(nullptr), so drain is
/// wait-free and sees a consistent snapshot: every push whose CAS
/// completed before the exchange is in the snapshot, later pushes land on
/// the fresh empty list.
///
/// Pushes build a LIFO chain; drainAll reverses it before returning, so
/// the consumer observes each producer's nodes in push order
/// (FIFO-per-producer).  All head updates are RMWs, so they form a single
/// release sequence: a consumer that acquires the head synchronizes with
/// *every* producer in the chain, not just the last one — each node's
/// payload writes (sequenced before its push) are visible at drain.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_MPSCQUEUE_H
#define EXTERMINATOR_SUPPORT_MPSCQUEUE_H

#include <atomic>
#include <cstddef>

namespace exterminator {

/// One queue link.  Embed as the first member of (or placement-new into)
/// the queued object; the queue never allocates.
struct MpscNode {
  MpscNode *Next = nullptr;
};

/// Lock-free multi-producer single-consumer intrusive queue.
///
/// Any thread may push concurrently; drainAll must be called by one
/// thread at a time (the owner, under its own serialization).  Nodes are
/// borrowed, never owned: after drainAll returns, the consumer is free to
/// reuse or destroy the node memory.
class MpscQueue {
public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue &) = delete;
  MpscQueue &operator=(const MpscQueue &) = delete;

  /// Links \p Node into the queue.  Lock-free; safe from any thread.
  void push(MpscNode *Node) {
    MpscNode *Expected = Head.load(std::memory_order_relaxed);
    do {
      Node->Next = Expected;
    } while (!Head.compare_exchange_weak(Expected, Node,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  /// Detaches every queued node and returns them in FIFO-per-producer
  /// order (oldest first).  Wait-free; single consumer at a time.
  MpscNode *drainAll() {
    MpscNode *Chain = Head.exchange(nullptr, std::memory_order_acquire);
    // The chain is newest-first; reverse it so consumers see each
    // producer's pushes in order.
    MpscNode *Reversed = nullptr;
    while (Chain) {
      MpscNode *Next = Chain->Next;
      Chain->Next = Reversed;
      Reversed = Chain;
      Chain = Next;
    }
    return Reversed;
  }

  /// True when no node is queued.  A racing push may land immediately
  /// after; use only as a drain-skip hint or under quiescence.
  bool empty() const {
    return Head.load(std::memory_order_acquire) == nullptr;
  }

private:
  std::atomic<MpscNode *> Head{nullptr};
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_MPSCQUEUE_H

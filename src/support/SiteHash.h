//===- support/SiteHash.h - Call-site hashing ------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation/deallocation call-site identification (paper §3.2, Fig. 3).
///
/// Exterminator identifies heap objects by the *calling context* of their
/// allocation and deallocation: the paper hashes the least-significant
/// bytes of the five most-recent return addresses with the DJB2 hash.  We
/// reproduce the exact hash (Figure 3) over an explicit CallContext — a
/// five-deep stack of frame tokens maintained by the workload — which
/// yields stable, reproducible 32-bit site identifiers without depending
/// on ASLR or the compiler's code layout.  Everything downstream (error
/// isolation, runtime patches) only needs these identifiers.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_SITEHASH_H
#define EXTERMINATOR_SUPPORT_SITEHASH_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace exterminator {

/// A 32-bit call-site identifier; 0 means "unknown site".
using SiteId = uint32_t;

/// Number of stack frames folded into a site hash (paper: "the five
/// most-recent return addresses").
inline constexpr unsigned SiteHashDepth = 5;

/// The paper's DJB2-based site hash (Figure 3), verbatim:
/// hash = ((hash << 5) + hash) + pc[i], seeded with 5381, over five
/// program-counter words.
SiteId computeSiteHash(const uint32_t Pc[SiteHashDepth]);

/// A stack of synthetic "return addresses" standing in for the native call
/// stack.  Workloads push a frame token on entry to each logical function
/// and pop on exit; \c currentSite hashes the five most recent frames.
class CallContext {
public:
  CallContext() = default;

  void pushFrame(uint32_t FrameToken) { Frames.push_back(FrameToken); }

  void popFrame() {
    assert(!Frames.empty() && "popFrame on empty call context");
    Frames.pop_back();
  }

  size_t depth() const { return Frames.size(); }

  /// Hashes the five most-recent frames (missing frames hash as zero,
  /// mirroring a shallow native stack).
  SiteId currentSite() const;

  /// RAII helper: pushes a frame for the lifetime of the scope.
  class Scope {
  public:
    Scope(CallContext &Ctx, uint32_t FrameToken) : Ctx(Ctx) {
      Ctx.pushFrame(FrameToken);
    }
    ~Scope() { Ctx.popFrame(); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    CallContext &Ctx;
  };

private:
  std::vector<uint32_t> Frames;
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_SITEHASH_H

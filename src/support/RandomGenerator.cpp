//===- support/RandomGenerator.cpp - Deterministic PRNG ------------------===//

#include "support/RandomGenerator.h"

using namespace exterminator;

uint64_t exterminator::splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void RandomGenerator::reseed(uint64_t Seed) {
  // xoshiro256** must not be seeded with an all-zero state; SplitMix64
  // never produces four consecutive zeros.
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

uint64_t RandomGenerator::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t RandomGenerator::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Rejection sampling keeps the distribution exactly uniform.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t X = next();
    if (X >= Threshold)
      return X % Bound;
  }
}

double RandomGenerator::nextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool RandomGenerator::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

RandomGenerator RandomGenerator::fork() {
  return RandomGenerator(next());
}

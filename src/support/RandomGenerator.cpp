//===- support/RandomGenerator.cpp - Deterministic PRNG ------------------===//

#include "support/RandomGenerator.h"

using namespace exterminator;

uint64_t exterminator::splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

void RandomGenerator::reseed(uint64_t Seed) {
  // xoshiro256** must not be seeded with an all-zero state; SplitMix64
  // never produces four consecutive zeros.
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

double RandomGenerator::nextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool RandomGenerator::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

RandomGenerator RandomGenerator::fork() {
  return RandomGenerator(next());
}

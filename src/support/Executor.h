//===- support/Executor.h - Small thread-pool executor ---------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with one primitive: parallelFor, a
/// fork-join map over an index range.  Replicated mode (§3.4, Figure 5)
/// uses it to run its N replicas concurrently — each replica owns an
/// independent heap, so the only synchronization the paper's design needs
/// is the join barrier, which doubles as the lockstep heap-image dump
/// barrier: no isolation starts until every replica has produced its
/// image.
///
/// The calling thread participates in the work, so an Executor with
/// threadCount() == 1 still makes progress (and degenerates to a plain
/// loop), and results written to per-index slots need no locking.  Each
/// parallelFor owns its job state, so a worker that wakes late drains a
/// finished job harmlessly instead of touching the next one.
/// Header-only; workers live for the lifetime of the Executor.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_EXECUTOR_H
#define EXTERMINATOR_SUPPORT_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace exterminator {

/// Fixed-size thread pool with fork-join parallelFor.
class Executor {
public:
  /// \param Threads total workers including the calling thread; 0 means
  ///        one per hardware thread.
  explicit Executor(unsigned Threads = 0) {
    if (Threads == 0)
      Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
    NumThreads = Threads;
    // The calling thread is worker 0; spawn the rest.
    for (unsigned I = 1; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  ~Executor() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ShuttingDown = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &Worker : Workers)
      Worker.join();
  }

  unsigned threadCount() const { return NumThreads; }

  /// Runs Body(I) for every I in [0, N), spread across the pool, and
  /// returns only when all N calls have finished (the join barrier).
  /// Bodies for distinct indexes may run concurrently; Body must not
  /// call parallelFor on the same Executor.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body) {
    if (N == 0)
      return;
    if (NumThreads == 1 || N == 1) {
      for (size_t I = 0; I < N; ++I)
        Body(I);
      return;
    }

    auto Job = std::make_shared<JobState>();
    Job->Body = &Body;
    Job->Size = N;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Current = Job;
    }
    WakeWorkers.notify_all();

    // The calling thread works too, then waits for stragglers.
    drain(*Job);
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      JobDone.wait(Lock, [&] {
        return Job->Completed.load(std::memory_order_acquire) == N;
      });
      if (Current == Job)
        Current.reset();
    }
  }

private:
  struct JobState {
    const std::function<void(size_t)> *Body = nullptr;
    size_t Size = 0;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Completed{0};
  };

  /// Claims and runs indexes of \p Job until none remain.  Body stays
  /// alive while any index is unclaimed (the caller cannot return before
  /// Completed == Size), and draining an already-finished job is a no-op.
  void drain(JobState &Job) {
    for (;;) {
      const size_t I = Job.Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Job.Size)
        return;
      (*Job.Body)(I);
      if (Job.Completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          Job.Size) {
        // Last finisher wakes the caller; take the lock so the caller's
        // predicate check cannot race past the notify.
        std::lock_guard<std::mutex> Lock(Mutex);
        JobDone.notify_all();
      }
    }
  }

  void workerLoop() {
    for (;;) {
      std::shared_ptr<JobState> Job;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WakeWorkers.wait(Lock, [this] {
          return ShuttingDown ||
                 (Current && Current->Next.load(
                                 std::memory_order_relaxed) < Current->Size);
        });
        if (ShuttingDown)
          return;
        Job = Current;
      }
      drain(*Job);
      // Don't spin on a drained job still registered as Current: wait
      // for the next one (the predicate above sees Next >= Size).
    }
  }

  unsigned NumThreads = 1;
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  bool ShuttingDown = false;
  std::shared_ptr<JobState> Current;
};

/// The process-wide executor the evidence path fans out on (parallel
/// heap-image capture, §4 evidence sweeps).  Lazily constructed on first
/// use with one worker per hardware thread; concurrent parallelFor calls
/// from different threads are safe — every caller drains its own job to
/// completion, so a job whose Current slot was overtaken still finishes.
/// Dedicated pools (replicated-mode replicas, the socket server's
/// accept/worker loop) stay separate: a parallelFor body must never
/// re-enter its own executor, and those pools park threads in
/// long-running bodies.
inline Executor &sharedExecutor() {
  static Executor Pool;
  return Pool;
}

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_EXECUTOR_H

//===- support/Serializer.h - Binary serialization -------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary readers/writers used by heap images (§3.4) and
/// runtime patch files (§6).  Readers are fail-soft: out-of-bounds reads
/// set a sticky failure flag and return zeros, so callers can validate once
/// at the end instead of after every field (no exceptions, per the LLVM
/// coding standards).
///
/// Two layers:
///
///  * ByteWriter/ByteReader — in-memory buffers, used by the small formats
///    (patch files, run summaries).
///  * ByteSink/ByteSource + StreamWriter/StreamReader — streaming field
///    codecs over an abstract byte stream, used by heap-image format v2 so
///    multi-megabyte images serialize straight to disk without an
///    intermediate buffer.  Both layers share the LEB128 varint encoding
///    the columnar image format leans on.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_SERIALIZER_H
#define EXTERMINATOR_SUPPORT_SERIALIZER_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace exterminator {

/// Appends little-endian fields to a growable byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t Value) { Buffer.push_back(Value); }
  void writeU32(uint32_t Value);
  void writeU64(uint64_t Value);
  void writeF64(double Value);
  /// Unsigned LEB128: 1 byte per 7 bits, small values stay small.
  void writeVarU64(uint64_t Value);
  void writeBytes(const void *Data, size_t Size);
  /// Length-prefixed byte string.
  void writeBlob(const std::vector<uint8_t> &Blob);
  void writeString(const std::string &Str);

  const std::vector<uint8_t> &buffer() const { return Buffer; }
  size_t size() const { return Buffer.size(); }

private:
  std::vector<uint8_t> Buffer;
};

/// Reads little-endian fields from a byte buffer with sticky failure.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buffer)
      : Data(Buffer.data()), Size(Buffer.size()) {}

  uint8_t readU8();
  uint32_t readU32();
  uint64_t readU64();
  double readF64();
  uint64_t readVarU64();
  bool readBytes(void *Out, size_t Count);
  std::vector<uint8_t> readBlob();
  std::string readString();

  /// True if any read ran past the end of the buffer.
  bool failed() const { return Failed; }
  /// True when the whole buffer has been consumed without failure.
  bool atEnd() const { return !Failed && Offset == Size; }
  size_t remaining() const { return Failed ? 0 : Size - Offset; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Offset = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Streaming layer
//===----------------------------------------------------------------------===//

/// Abstract byte destination for streaming serialization.
class ByteSink {
public:
  virtual ~ByteSink();
  /// Returns false on write failure (sticky in StreamWriter).
  virtual bool write(const void *Data, size_t Size) = 0;
};

/// Appends to a caller-owned byte vector.
class VectorSink : public ByteSink {
public:
  explicit VectorSink(std::vector<uint8_t> &Out) : Out(Out) {}
  bool write(const void *Data, size_t Size) override;

private:
  std::vector<uint8_t> &Out;
};

/// Buffered writes to a file; the destructor closes.  Check ok() (or
/// close()'s return) — buffered bytes flush on close.
class FileSink : public ByteSink {
public:
  explicit FileSink(const std::string &Path);
  ~FileSink() override;
  bool write(const void *Data, size_t Size) override;
  /// Flushes and closes; returns false if anything failed.
  bool close();
  bool ok() const { return File != nullptr; }

private:
  std::FILE *File = nullptr;
  bool WriteFailed = false;
};

/// Abstract byte origin for streaming deserialization.
class ByteSource {
public:
  virtual ~ByteSource();
  /// Reads up to \p Size bytes; returns the count actually read (short
  /// reads only at end of stream).
  virtual size_t read(void *Out, size_t Size) = 0;
};

/// Reads from a caller-owned memory range.
class MemorySource : public ByteSource {
public:
  MemorySource(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit MemorySource(const std::vector<uint8_t> &Buffer)
      : Data(Buffer.data()), Size(Buffer.size()) {}
  size_t read(void *Out, size_t Size) override;
  /// Bytes not yet consumed (the streaming analogue of ByteReader::atEnd).
  size_t remaining() const { return Size - Offset; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Offset = 0;
};

/// Buffered reads from a file; the destructor closes.
class FileSource : public ByteSource {
public:
  explicit FileSource(const std::string &Path);
  ~FileSource() override;
  size_t read(void *Out, size_t Size) override;
  bool ok() const { return File != nullptr; }
  /// True once the underlying file is exhausted and the buffer drained.
  bool exhausted();

private:
  std::FILE *File = nullptr;
};

/// Little-endian field encoder over any ByteSink with sticky failure.
class StreamWriter {
public:
  explicit StreamWriter(ByteSink &Sink) : Sink(Sink) {}

  void writeU8(uint8_t Value) { writeBytes(&Value, 1); }
  void writeU32(uint32_t Value);
  void writeU64(uint64_t Value);
  void writeF64(double Value);
  void writeVarU64(uint64_t Value);
  void writeBytes(const void *Data, size_t Size);

  /// True if any write failed.
  bool failed() const { return Failed; }

private:
  ByteSink &Sink;
  bool Failed = false;
};

/// Little-endian field decoder over any ByteSource with sticky failure.
class StreamReader {
public:
  explicit StreamReader(ByteSource &Source) : Source(Source) {}

  uint8_t readU8();
  uint32_t readU32();
  uint64_t readU64();
  double readF64();
  uint64_t readVarU64();
  bool readBytes(void *Out, size_t Count);

  bool failed() const { return Failed; }

private:
  ByteSource &Source;
  bool Failed = false;
};

/// Writes \p Buffer to \p Path crash-safely: the bytes land in a temp
/// file in the same directory, are fsync'ed, and rename() atomically
/// replaces the target — an interruption or I/O failure mid-write leaves
/// any existing file at \p Path intact.  Returns false on failure
/// (without clobbering the old file).
bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Buffer);

/// Reads all of \p Path into \p Buffer; returns false on I/O failure.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Buffer);

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_SERIALIZER_H

//===- support/Serializer.h - Binary serialization -------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary readers/writers used by heap images (§3.4) and
/// runtime patch files (§6).  The reader is fail-soft: out-of-bounds reads
/// set a sticky failure flag and return zeros, so callers can validate once
/// at the end instead of after every field (no exceptions, per the LLVM
/// coding standards).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_SERIALIZER_H
#define EXTERMINATOR_SUPPORT_SERIALIZER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace exterminator {

/// Appends little-endian fields to a growable byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t Value) { Buffer.push_back(Value); }
  void writeU32(uint32_t Value);
  void writeU64(uint64_t Value);
  void writeF64(double Value);
  void writeBytes(const void *Data, size_t Size);
  /// Length-prefixed byte string.
  void writeBlob(const std::vector<uint8_t> &Blob);
  void writeString(const std::string &Str);

  const std::vector<uint8_t> &buffer() const { return Buffer; }
  size_t size() const { return Buffer.size(); }

private:
  std::vector<uint8_t> Buffer;
};

/// Reads little-endian fields from a byte buffer with sticky failure.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Buffer)
      : Data(Buffer.data()), Size(Buffer.size()) {}

  uint8_t readU8();
  uint32_t readU32();
  uint64_t readU64();
  double readF64();
  bool readBytes(void *Out, size_t Count);
  std::vector<uint8_t> readBlob();
  std::string readString();

  /// True if any read ran past the end of the buffer.
  bool failed() const { return Failed; }
  /// True when the whole buffer has been consumed without failure.
  bool atEnd() const { return !Failed && Offset == Size; }
  size_t remaining() const { return Failed ? 0 : Size - Offset; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Offset = 0;
  bool Failed = false;
};

/// Writes \p Buffer to \p Path; returns false on I/O failure.
bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Buffer);

/// Reads all of \p Path into \p Buffer; returns false on I/O failure.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Buffer);

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_SERIALIZER_H

//===- support/RandomGenerator.h - Deterministic PRNG ----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable pseudo-random number generator.
///
/// Every randomized component of Exterminator (heap placement, canary
/// values, canary-fill coin flips, fault injection, workload noise) draws
/// from an explicitly-seeded RandomGenerator so that whole experiments are
/// reproducible from a single master seed.  The core is xoshiro256**,
/// seeded through SplitMix64 as its authors recommend.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_RANDOMGENERATOR_H
#define EXTERMINATOR_SUPPORT_RANDOMGENERATOR_H

#include <cassert>
#include <cstdint>

namespace exterminator {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
uint64_t splitMix64(uint64_t &State);

/// Deterministic xoshiro256** generator.
class RandomGenerator {
public:
  /// Creates a generator whose entire stream is a function of \p Seed.
  explicit RandomGenerator(uint64_t Seed = 0) { reseed(Seed); }

  /// Resets the stream as if freshly constructed with \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next 64 random bits.  Inline: the heap draws at least
  /// once per allocation.
  uint64_t next() {
    const auto Rotl = [](uint64_t X, int K) {
      return (X << K) | (X >> (64 - K));
    };
    const uint64_t Result = Rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = Rotl(State[3], 45);
    return Result;
  }

  /// Returns the next 32 random bits.
  uint32_t next32() { return static_cast<uint32_t>(next() >> 32); }

  /// Returns a uniform integer in [0, Bound).  \p Bound must be nonzero.
  /// Inline for the allocator's placement probes.  The draw->value
  /// mapping is part of the reproducibility contract (seeded experiment
  /// streams must not shift between releases), so the classic rejection
  /// + modulo mapping is kept rather than a faster reduction that would
  /// renumber every stream.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Rejection sampling keeps the distribution exactly uniform.
    const uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t X = next();
      if (X >= Threshold)
        return X % Bound;
    }
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool chance(double P);

  /// Derives an independent child generator; calls advance this stream.
  RandomGenerator fork();

private:
  uint64_t State[4];
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_RANDOMGENERATOR_H

//===- support/Bitmap.cpp - Allocation bitmap ----------------------------===//

#include "support/Bitmap.h"

#include <bit>

using namespace exterminator;

void Bitmap::resize(size_t NewNumBits) {
  NumBits = NewNumBits;
  NumSet = 0;
  Words.assign((NumBits + 63) / 64, 0);
}

bool Bitmap::set(size_t Index) {
  assert(Index < NumBits && "bit index out of range");
  uint64_t &Word = Words[Index / 64];
  const uint64_t Mask = uint64_t(1) << (Index % 64);
  if (Word & Mask)
    return false;
  Word |= Mask;
  ++NumSet;
  return true;
}

bool Bitmap::reset(size_t Index) {
  assert(Index < NumBits && "bit index out of range");
  uint64_t &Word = Words[Index / 64];
  const uint64_t Mask = uint64_t(1) << (Index % 64);
  if (!(Word & Mask))
    return false;
  Word &= ~Mask;
  --NumSet;
  return true;
}

void Bitmap::clear() {
  NumSet = 0;
  for (auto &Word : Words)
    Word = 0;
}

std::optional<size_t> Bitmap::probeClear(RandomGenerator &Rng) const {
  if (NumSet == NumBits || NumBits == 0)
    return std::nullopt;
  // Random probing: each probe hits a clear bit with probability
  // (NumBits - NumSet) / NumBits, so at most-1/M load this terminates in
  // O(1) expected probes (paper §3.1).
  for (;;) {
    size_t Index = Rng.nextBelow(NumBits);
    if (!test(Index))
      return Index;
  }
}

std::optional<size_t> Bitmap::findNextSet(size_t From) const {
  if (From >= NumBits)
    return std::nullopt;
  size_t WordIndex = From / 64;
  uint64_t Word = Words[WordIndex] & (~uint64_t(0) << (From % 64));
  for (;;) {
    if (Word != 0) {
      size_t Index = WordIndex * 64 + std::countr_zero(Word);
      if (Index >= NumBits)
        return std::nullopt;
      return Index;
    }
    if (++WordIndex >= Words.size())
      return std::nullopt;
    Word = Words[WordIndex];
  }
}

//===- support/Bitmap.cpp - Allocation bitmap ----------------------------===//

#include "support/Bitmap.h"

#include <bit>

using namespace exterminator;

void Bitmap::resize(size_t NewNumBits) {
  NumBits = NewNumBits;
  NumSet = 0;
  Words.assign((NumBits + 63) / 64, 0);
}

void Bitmap::clear() {
  NumSet = 0;
  for (auto &Word : Words)
    Word = 0;
}

std::optional<size_t> Bitmap::probeClear(RandomGenerator &Rng) const {
  if (NumSet == NumBits || NumBits == 0)
    return std::nullopt;
  // Rejection sampling is exactly uniform over the clear bits: each probe
  // hits one with probability (NumBits - NumSet) / NumBits, so at the
  // <= 1/M loads DieHard maintains this terminates in O(1) expected
  // probes (paper §3.1).
  static constexpr unsigned MaxProbes = 64;
  for (unsigned Probe = 0; Probe < MaxProbes; ++Probe) {
    const size_t Index = Rng.nextBelow(NumBits);
    if (!((Words[Index / 64] >> (Index % 64)) & 1))
      return Index;
  }
  // Dense map: 64 straight misses.  Switch to rank selection, which draws
  // from the same uniform distribution but is guaranteed to finish in one
  // word-wise sweep.
  return selectClear(Rng.nextBelow(NumBits - NumSet));
}

std::optional<size_t> Bitmap::selectClear(size_t Rank) const {
  if (Rank >= NumBits - NumSet)
    return std::nullopt;
  const size_t TailBits = NumBits % 64;
  for (size_t W = 0; W < Words.size(); ++W) {
    uint64_t Clear = ~Words[W];
    // Mask off the bits past NumBits in a partial last word.
    if (W + 1 == Words.size() && TailBits != 0)
      Clear &= (uint64_t(1) << TailBits) - 1;
    const unsigned ClearHere = std::popcount(Clear);
    if (Rank < ClearHere) {
      // Drop the lowest Rank clear bits, then the lowest survivor is the
      // one we want.
      for (size_t R = 0; R < Rank; ++R)
        Clear &= Clear - 1;
      return W * 64 + std::countr_zero(Clear);
    }
    Rank -= ClearHere;
  }
  assert(false && "rank < clearCount() must select within the sweep");
  return std::nullopt;
}

std::optional<size_t> Bitmap::findNextSet(size_t From) const {
  if (From >= NumBits)
    return std::nullopt;
  size_t WordIndex = From / 64;
  uint64_t Word = Words[WordIndex] & (~uint64_t(0) << (From % 64));
  for (;;) {
    if (Word != 0) {
      size_t Index = WordIndex * 64 + std::countr_zero(Word);
      if (Index >= NumBits)
        return std::nullopt;
      return Index;
    }
    if (++WordIndex >= Words.size())
      return std::nullopt;
    Word = Words[WordIndex];
  }
}

//===- support/Bitmap.h - Allocation bitmap --------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size bit vector used as the in-use bitmap of DieHard miniheaps
/// (paper §3.1, Figure 2).
///
/// Besides the usual set/reset/test operations it offers the operation the
/// DieHard allocator is built on: \c probeClear, which finds a uniformly
/// random clear bit.  Probing is word-wise: a probe costs one 64-bit load,
/// and when the map is dense enough that rejection sampling stalls, the
/// search falls back to \c selectClear — exact rank selection over the
/// clear bits by per-word popcount — which draws from the very same
/// uniform distribution in O(words) worst case.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_BITMAP_H
#define EXTERMINATOR_SUPPORT_BITMAP_H

#include "support/RandomGenerator.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace exterminator {

/// Fixed-size bit vector with random probing.
class Bitmap {
public:
  Bitmap() = default;
  explicit Bitmap(size_t NumBits) { resize(NumBits); }

  /// Resizes to \p NumBits bits, clearing all of them.
  void resize(size_t NumBits);

  size_t size() const { return NumBits; }

  /// Number of set bits.
  size_t count() const { return NumSet; }

  /// Number of clear bits.
  size_t clearCount() const { return NumBits - NumSet; }

  bool test(size_t Index) const {
    assert(Index < NumBits && "bit index out of range");
    return (Words[Index / 64] >> (Index % 64)) & 1;
  }

  /// Sets bit \p Index; returns false if it was already set.  Inline: this
  /// runs on every allocation.
  bool set(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    uint64_t &Word = Words[Index / 64];
    const uint64_t Mask = uint64_t(1) << (Index % 64);
    if (Word & Mask)
      return false;
    Word |= Mask;
    ++NumSet;
    return true;
  }

  /// Clears bit \p Index; returns false if it was already clear.  Inline:
  /// this runs on every deallocation.
  bool reset(size_t Index) {
    assert(Index < NumBits && "bit index out of range");
    uint64_t &Word = Words[Index / 64];
    const uint64_t Mask = uint64_t(1) << (Index % 64);
    if (!(Word & Mask))
      return false;
    Word &= ~Mask;
    --NumSet;
    return true;
  }

  /// Clears every bit.
  void clear();

  /// Returns the index of a uniformly random clear bit (expected O(1)
  /// probes when load factor <= 1/2, O(words) worst case via the
  /// rank-select fallback), or std::nullopt if the map is full.
  std::optional<size_t> probeClear(RandomGenerator &Rng) const;

  /// Returns the index of the \p Rank'th clear bit (rank 0 = lowest), or
  /// std::nullopt when fewer than Rank+1 bits are clear.  Word-wise
  /// popcount scan: exact uniform selection over free slots when fed a
  /// uniform rank.
  std::optional<size_t> selectClear(size_t Rank) const;

  /// Returns the index of the first set bit at or after \p From, or
  /// std::nullopt if none.
  std::optional<size_t> findNextSet(size_t From) const;

private:
  std::vector<uint64_t> Words;
  size_t NumBits = 0;
  size_t NumSet = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_BITMAP_H

//===- support/Bitmap.h - Allocation bitmap --------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size bit vector used as the in-use bitmap of DieHard miniheaps
/// (paper §3.1, Figure 2).
///
/// Besides the usual set/reset/test operations it offers the operation the
/// DieHard allocator is built on: \c probeClear, which finds a clear bit by
/// uniform random probing in O(1) expected time when the map is at most
/// 1/M full.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_BITMAP_H
#define EXTERMINATOR_SUPPORT_BITMAP_H

#include "support/RandomGenerator.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace exterminator {

/// Fixed-size bit vector with random probing.
class Bitmap {
public:
  Bitmap() = default;
  explicit Bitmap(size_t NumBits) { resize(NumBits); }

  /// Resizes to \p NumBits bits, clearing all of them.
  void resize(size_t NumBits);

  size_t size() const { return NumBits; }

  /// Number of set bits.
  size_t count() const { return NumSet; }

  bool test(size_t Index) const {
    assert(Index < NumBits && "bit index out of range");
    return (Words[Index / 64] >> (Index % 64)) & 1;
  }

  /// Sets bit \p Index; returns false if it was already set.
  bool set(size_t Index);

  /// Clears bit \p Index; returns false if it was already clear.
  bool reset(size_t Index);

  /// Clears every bit.
  void clear();

  /// Returns the index of a uniformly random clear bit, found by random
  /// probing (expected O(1) probes when load factor <= 1/2), or
  /// std::nullopt if the map is full.
  std::optional<size_t> probeClear(RandomGenerator &Rng) const;

  /// Returns the index of the first set bit at or after \p From, or
  /// std::nullopt if none.
  std::optional<size_t> findNextSet(size_t From) const;

private:
  std::vector<uint64_t> Words;
  size_t NumBits = 0;
  size_t NumSet = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_BITMAP_H

//===- support/Statistics.cpp - Summary statistics -------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace exterminator;

double exterminator::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double Value : Values)
    Sum += Value;
  return Sum / static_cast<double>(Values.size());
}

double exterminator::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double Value : Values) {
    assert(Value > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(Value);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double exterminator::logAdd(double LogA, double LogB) {
  if (LogA < LogB)
    std::swap(LogA, LogB);
  if (std::isinf(LogB) && LogB < 0)
    return LogA;
  return LogA + std::log1p(std::exp(LogB - LogA));
}

void RunningStat::add(double Value) {
  if (Count == 0) {
    Min = Max = Value;
  } else {
    if (Value < Min)
      Min = Value;
    if (Value > Max)
      Max = Value;
  }
  ++Count;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Value - Mean);
}

double RunningStat::variance() const {
  if (Count < 2)
    return 0.0;
  return M2 / static_cast<double>(Count - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

//===- support/PageTable.h - Flat page-number hash table -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash table from page numbers to 32-bit ids,
/// backing the heap's O(1) pointer lookup (the page directory).
///
/// std::unordered_map costs two dependent cache misses per lookup (bucket
/// then node); on the free path that is the difference between the page
/// directory winning and losing against the sorted-range binary search it
/// replaces.  This table keeps 16-byte entries in one contiguous power-of
/// -two array with linear probing and Fibonacci hashing, so the common
/// lookup is a single probe into one cache line.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_PAGETABLE_H
#define EXTERMINATOR_SUPPORT_PAGETABLE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace exterminator {

/// Open-addressing page-number -> id map.  Page number 0 is reserved as
/// the empty sentinel (heap pages never map page zero).
class PageTable {
public:
  static constexpr uint32_t NotFound = ~uint32_t(0);

  PageTable() { Entries.resize(InitialCapacity); }

  size_t size() const { return Count; }

  /// Returns the id stored for \p Page, or NotFound.  Page 0 (null and
  /// near-null addresses) is never stored, so it misses immediately.
  uint32_t lookup(uintptr_t Page) const {
    if (Page == 0)
      return NotFound;
    size_t Index = indexFor(Page);
    for (;;) {
      const Entry &E = Entries[Index];
      if (E.Page == Page)
        return E.Value;
      if (E.Page == 0)
        return NotFound;
      Index = (Index + 1) & (Entries.size() - 1);
    }
  }

  /// Inserts \p Page -> \p Value if absent.  Returns a reference to the
  /// stored value (existing or fresh) plus whether an insert happened,
  /// so callers can overwrite an existing mapping (e.g. to mark it
  /// ambiguous).  Unlike std::unordered_map, the reference is
  /// invalidated by the next emplace (growth rehashes in place): use it
  /// immediately, never hold it.
  std::pair<uint32_t &, bool> emplace(uintptr_t Page, uint32_t Value) {
    assert(Page != 0 && "page 0 is the empty sentinel");
    if ((Count + 1) * 4 >= Entries.size() * 3)
      grow();
    size_t Index = indexFor(Page);
    for (;;) {
      Entry &E = Entries[Index];
      if (E.Page == Page)
        return {E.Value, false};
      if (E.Page == 0) {
        E.Page = Page;
        E.Value = Value;
        ++Count;
        return {E.Value, true};
      }
      Index = (Index + 1) & (Entries.size() - 1);
    }
  }

private:
  struct Entry {
    uintptr_t Page = 0;
    uint32_t Value = 0;
  };

  static constexpr size_t InitialCapacity = 1024; // power of two

  size_t indexFor(uintptr_t Page) const {
    // Fibonacci hashing spreads consecutive page numbers (the common
    // insert pattern) across the table.
    const uint64_t Hash = static_cast<uint64_t>(Page) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(Hash >> 32) & (Entries.size() - 1);
  }

  void grow() {
    std::vector<Entry> Old = std::move(Entries);
    Entries.assign(Old.size() * 2, Entry{});
    Count = 0;
    for (const Entry &E : Old)
      if (E.Page != 0)
        emplace(E.Page, E.Value);
  }

  std::vector<Entry> Entries;
  size_t Count = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_PAGETABLE_H

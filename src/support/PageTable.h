//===- support/PageTable.h - Flat page-number hash table -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash table from page numbers to 32-bit ids,
/// backing the heap's O(1) pointer lookup (the page directory).
///
/// std::unordered_map costs two dependent cache misses per lookup (bucket
/// then node); on the free path that is the difference between the page
/// directory winning and losing against the sorted-range binary search it
/// replaces.  This table keeps 16-byte entries in one contiguous power-of
/// -two array with linear probing and Fibonacci hashing, so the common
/// lookup is a single probe into one cache line.
///
/// Concurrency (PR 7): lookups are lock-free and may run concurrently
/// with one externally-serialized writer — the shape the concurrent
/// allocator needs, where every remote free resolves its pointer without
/// the backend lock while refills occasionally register new slabs.
///
///  * Entries are published value-then-page: the writer stores Value
///    first, then Page with release.  A reader that acquire-loads a
///    matching Page therefore always reads the entry's final Value.
///    Entries are never deleted and a page's value is overwritten only to
///    widen it to a sentinel, so a reader can never observe a key that
///    later means something narrower.
///
///  * Growth republishes instead of rehashing in place: a doubled table
///    is filled privately, then swung in with one release store of the
///    current-table pointer (epoch-style).  Retired tables are kept until
///    destruction, so a reader still probing an old epoch's table reads
///    stale-but-valid entries, never freed memory.  Doubling bounds the
///    retired memory at ~1x the final table, the same bound a
///    quiescence-counting scheme would buy at far higher complexity —
///    the single quiescent point (heap destruction) is the reclamation.
///
///  * The safety contract mirrors the allocator's: a reader may consult
///    the directory only for pages whose registration happened-before
///    its lookup (the pointer it resolves was obtained from an
///    allocation after the slab registered, and travelled to the reader
///    through program synchronization).  Probing an older table for such
///    a page still hits: tables only ever gain entries, and every entry
///    present at publish time was copied forward.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_PAGETABLE_H
#define EXTERMINATOR_SUPPORT_PAGETABLE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace exterminator {

/// Open-addressing page-number -> id map with lock-free lookup.  Page
/// number 0 is reserved as the empty sentinel (heap pages never map page
/// zero).  One writer at a time (external serialization); any number of
/// concurrent readers.
class PageTable {
public:
  static constexpr uint32_t NotFound = ~uint32_t(0);

  PageTable() {
    Tables.push_back(std::make_unique<Table>(InitialCapacity));
    Current.store(Tables.back().get(), std::memory_order_release);
  }

  PageTable(const PageTable &) = delete;
  PageTable &operator=(const PageTable &) = delete;

  size_t size() const { return Count; }

  /// Returns the id stored for \p Page, or NotFound.  Lock-free: safe
  /// concurrently with emplace/overwrite on another thread, for pages
  /// whose registration happened-before this call (see file comment).
  /// Page 0 (null and near-null addresses) is never stored, so it misses
  /// immediately.
  uint32_t lookup(uintptr_t Page) const {
    if (Page == 0)
      return NotFound;
    const Table &T = *Current.load(std::memory_order_acquire);
    size_t Index = T.indexFor(Page);
    for (;;) {
      const Entry &E = T.Slots[Index];
      const uintptr_t Key = E.Page.load(std::memory_order_acquire);
      if (Key == Page)
        return E.Value.load(std::memory_order_relaxed);
      if (Key == 0)
        return NotFound;
      Index = (Index + 1) & (T.Capacity - 1);
    }
  }

  /// Inserts \p Page -> \p Value if absent.  Returns the stored value
  /// (existing or fresh) plus whether an insert happened, so callers can
  /// detect and widen an existing mapping (overwrite).  Writer-side:
  /// callers serialize all emplace/overwrite calls externally.
  std::pair<uint32_t, bool> emplace(uintptr_t Page, uint32_t Value) {
    assert(Page != 0 && "page 0 is the empty sentinel");
    Table *T = Current.load(std::memory_order_relaxed);
    if ((Count + 1) * 4 >= T->Capacity * 3)
      T = grow();
    size_t Index = T->indexFor(Page);
    for (;;) {
      Entry &E = T->Slots[Index];
      const uintptr_t Key = E.Page.load(std::memory_order_relaxed);
      if (Key == Page)
        return {E.Value.load(std::memory_order_relaxed), false};
      if (Key == 0) {
        // Value first, then the key with release: a reader that sees the
        // key sees the value.
        E.Value.store(Value, std::memory_order_relaxed);
        E.Page.store(Page, std::memory_order_release);
        ++Count;
        return {Value, true};
      }
      Index = (Index + 1) & (T->Capacity - 1);
    }
  }

  /// Replaces the value stored for \p Page, which must be present.
  /// Intended for widening a mapping to a sentinel (e.g. marking a page
  /// ambiguous); concurrent readers observe either the old or the new
  /// value.
  void overwrite(uintptr_t Page, uint32_t Value) {
    Table *T = Current.load(std::memory_order_relaxed);
    size_t Index = T->indexFor(Page);
    for (;;) {
      Entry &E = T->Slots[Index];
      const uintptr_t Key = E.Page.load(std::memory_order_relaxed);
      assert(Key != 0 && "overwrite of a page that was never inserted");
      if (Key == Page) {
        E.Value.store(Value, std::memory_order_release);
        return;
      }
      Index = (Index + 1) & (T->Capacity - 1);
    }
  }

private:
  struct Entry {
    std::atomic<uintptr_t> Page{0};
    std::atomic<uint32_t> Value{0};
  };

  /// One epoch's table: a power-of-two array of entries.  Immutable in
  /// capacity; entries only ever transition empty -> occupied.
  struct Table {
    explicit Table(size_t Cap)
        : Capacity(Cap), Slots(std::make_unique<Entry[]>(Cap)) {}

    size_t indexFor(uintptr_t Page) const {
      // Fibonacci hashing spreads consecutive page numbers (the common
      // insert pattern) across the table.
      const uint64_t Hash =
          static_cast<uint64_t>(Page) * 0x9E3779B97F4A7C15ull;
      return static_cast<size_t>(Hash >> 32) & (Capacity - 1);
    }

    const size_t Capacity;
    std::unique_ptr<Entry[]> Slots;
  };

  static constexpr size_t InitialCapacity = 1024; // power of two

  /// Builds the doubled table privately, copies every entry forward, then
  /// publishes it with one release store.  The old table is retired, not
  /// freed: readers may still be probing it.
  Table *grow() {
    Table *Old = Current.load(std::memory_order_relaxed);
    auto Fresh = std::make_unique<Table>(Old->Capacity * 2);
    for (size_t I = 0; I < Old->Capacity; ++I) {
      const uintptr_t Page = Old->Slots[I].Page.load(std::memory_order_relaxed);
      if (Page == 0)
        continue;
      const uint32_t Value =
          Old->Slots[I].Value.load(std::memory_order_relaxed);
      size_t Index = Fresh->indexFor(Page);
      while (Fresh->Slots[Index].Page.load(std::memory_order_relaxed) != 0)
        Index = (Index + 1) & (Fresh->Capacity - 1);
      // The fresh table is still private; plain ordering suffices — the
      // publishing release store below covers every write.
      Fresh->Slots[Index].Value.store(Value, std::memory_order_relaxed);
      Fresh->Slots[Index].Page.store(Page, std::memory_order_relaxed);
    }
    Table *Published = Fresh.get();
    Tables.push_back(std::move(Fresh));
    Current.store(Published, std::memory_order_release);
    return Published;
  }

  /// Every epoch's table, oldest first; the last is the current one.
  /// Retired tables stay mapped until destruction (see file comment).
  std::vector<std::unique_ptr<Table>> Tables;
  std::atomic<Table *> Current{nullptr};
  size_t Count = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_PAGETABLE_H

//===- support/FlatU64Map.h - Flat 64-bit-key hash table -------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash table from nonzero 64-bit keys to small
/// values — the same design as support/PageTable.h (one contiguous
/// power-of-two array, linear probing, Fibonacci hashing) generalized
/// over the value type.
///
/// HeapImageView's object-id index lives on this: every §4 isolation
/// query (findById) used to pay std::unordered_map's two dependent cache
/// misses per lookup plus one node allocation per insert; here a lookup
/// is a multiply, a shift, and (almost always) one probe into one cache
/// line, and building the index over N ids is N stores into one
/// pre-sized array.
///
/// Key 0 is reserved as the empty sentinel.  Object ids are drawn from
/// the allocation clock starting at 1, so id 0 ("never held an object")
/// is exactly the key the index must not contain anyway.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_SUPPORT_FLATU64MAP_H
#define EXTERMINATOR_SUPPORT_FLATU64MAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace exterminator {

/// Open-addressing map from nonzero uint64_t keys to V.  V must be
/// trivially copyable and cheap to store by value.
template <typename V> class FlatU64Map {
public:
  FlatU64Map() = default;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Pre-sizes the table for \p Expected insertions (avoids rehashing
  /// during a bulk build; the table still grows if exceeded).
  void reserve(size_t Expected) {
    size_t Cap = InitialCapacity;
    // Keep the load factor at or below 3/4 after Expected inserts.
    while (Expected * 4 >= Cap * 3)
      Cap *= 2;
    if (Cap > Entries.size())
      rehash(Cap);
  }

  /// Returns a pointer to the value stored for \p Key, or nullptr.
  const V *lookup(uint64_t Key) const {
    if (Key == 0 || Entries.empty())
      return nullptr;
    size_t Index = indexFor(Key);
    for (;;) {
      const Entry &E = Entries[Index];
      if (E.Key == Key)
        return &E.Value;
      if (E.Key == 0)
        return nullptr;
      Index = (Index + 1) & (Entries.size() - 1);
    }
  }

  /// Inserts \p Key -> \p Value if absent; keeps the existing mapping
  /// otherwise (unordered_map::emplace semantics, which is what the
  /// view index wants: the first slot seen for an id wins).  Returns
  /// true when an insert happened.
  bool emplace(uint64_t Key, const V &Value) {
    assert(Key != 0 && "key 0 is the empty sentinel");
    if (Entries.empty())
      rehash(InitialCapacity);
    if ((Count + 1) * 4 >= Entries.size() * 3)
      rehash(Entries.size() * 2);
    size_t Index = indexFor(Key);
    for (;;) {
      Entry &E = Entries[Index];
      if (E.Key == Key)
        return false;
      if (E.Key == 0) {
        E.Key = Key;
        E.Value = Value;
        ++Count;
        return true;
      }
      Index = (Index + 1) & (Entries.size() - 1);
    }
  }

private:
  struct Entry {
    uint64_t Key = 0;
    V Value{};
  };

  static constexpr size_t InitialCapacity = 64; // power of two

  size_t indexFor(uint64_t Key) const {
    // Fibonacci hashing: object ids are consecutive clock values, so a
    // plain mask would pile them into one run of buckets.
    const uint64_t Hash = Key * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(Hash >> 32) & (Entries.size() - 1);
  }

  void rehash(size_t NewCapacity) {
    std::vector<Entry> Old = std::move(Entries);
    Entries.assign(NewCapacity, Entry{});
    Count = 0;
    for (const Entry &E : Old)
      if (E.Key != 0)
        emplace(E.Key, E.Value);
  }

  std::vector<Entry> Entries;
  size_t Count = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_SUPPORT_FLATU64MAP_H

//===- patch/RuntimePatch.h - Runtime patches ------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime patches (§6): the output of error isolation and the input to
/// the correcting allocator.
///
/// A *pad patch* maps an allocation site to the number of bytes of padding
/// needed to contain an overflow from objects allocated there (§6.1).  A
/// *deferral patch* maps an (allocation site, deallocation site) pair to a
/// number of allocation-clock ticks by which frees at that pair must be
/// deferred, preventing a premature free from dangling (§6.2).
///
/// Patches compose by taking maxima, which is what makes collaborative
/// correction work: merging the patch sets of many users yields a patch
/// set covering all observed errors (§6.4).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_PATCH_RUNTIMEPATCH_H
#define EXTERMINATOR_PATCH_RUNTIMEPATCH_H

#include "support/SiteHash.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace exterminator {

/// Pads every allocation from AllocSite by PadBytes (§6.1).
struct PadPatch {
  SiteId AllocSite = 0;
  uint32_t PadBytes = 0;

  bool operator==(const PadPatch &Other) const = default;
};

/// Front-pads every allocation from AllocSite by PadBytes: the backward
/// overflow extension (§2.1 names backward overflows as future work; the
/// correcting allocator absorbs them by returning an interior pointer
/// with PadBytes of slack before it).
struct FrontPadPatch {
  SiteId AllocSite = 0;
  uint32_t PadBytes = 0;

  bool operator==(const FrontPadPatch &Other) const = default;
};

/// Defers frees at (AllocSite, FreeSite) by DeferTicks allocations (§6.2).
struct DeferralPatch {
  SiteId AllocSite = 0;
  SiteId FreeSite = 0;
  uint64_t DeferTicks = 0;

  bool operator==(const DeferralPatch &Other) const = default;
};

/// Fault-model bits for a hardware-fault report; ORed under merge (two
/// sightings of the same page with different signatures accumulate).
enum HardwareFaultKindMask : uint32_t {
  HardwareFaultBitFlip = 1u << 0,
  HardwareFaultStuckAt = 1u << 1,
  HardwareFaultRowCluster = 1u << 2,
};

/// A suspected failing physical page (PR 9).  Not a patch in the §6
/// sense — no allocation site is to blame — but it rides in the PatchSet
/// because its merge laws (OR the kind mask, max the evidence count) are
/// idempotent/commutative/associative like the patch tables', so epochs,
/// journaling, replication, and snapshots work unchanged.  The
/// correcting allocator's response is page retirement, not padding.
struct HardwareFaultReport {
  /// Page-aligned address of the implicated page (the unit DRAM-style
  /// faults cluster in, and the unit the allocator retires).
  uint64_t PageAddress = 0;
  /// HardwareFaultKindMask bits observed for this page.
  uint32_t KindMask = 0;
  /// Corruption regions attributed to this page so far (max-merged; the
  /// xterm_hardware_faults_total metric sums these).
  uint64_t EvidenceRegions = 0;

  bool operator==(const HardwareFaultReport &Other) const = default;
};

/// A set of runtime patches: the pad table and the deferral table the
/// correcting allocator builds at load time (§6.3).
class PatchSet {
public:
  /// Records a pad for \p AllocSite, keeping the maximum pad seen (§6.1:
  /// "Exterminator uses the maximum padding value encountered so far").
  /// Returns true when the set changed (new site, or a larger pad) —
  /// what the diagnosis pipeline's epoch counter keys on.
  bool addPad(SiteId AllocSite, uint32_t PadBytes);

  /// Records a front pad (backward-overflow extension), keeping the max.
  bool addFrontPad(SiteId AllocSite, uint32_t PadBytes);

  /// Front pad for \p AllocSite; 0 when unpatched.
  uint32_t frontPadFor(SiteId AllocSite) const;

  /// All front-pad patches, sorted by site.
  std::vector<FrontPadPatch> frontPads() const;

  size_t frontPadCount() const { return FrontPadTable.size(); }

  /// Records a deferral for the site pair, keeping the maximum.
  bool addDeferral(SiteId AllocSite, SiteId FreeSite, uint64_t DeferTicks);

  /// Pad for \p AllocSite; 0 when unpatched.
  uint32_t padFor(SiteId AllocSite) const;

  /// Deferral for the site pair; 0 when unpatched.
  uint64_t deferralFor(SiteId AllocSite, SiteId FreeSite) const;

  /// Records a hardware-fault report for a page: ORs \p KindMask into
  /// the page's mask and raises its evidence count to the maximum seen.
  /// Returns true when the set changed (epoch detection, like addPad).
  bool addHardwareReport(uint64_t PageAddress, uint32_t KindMask,
                         uint64_t EvidenceRegions);

  /// All hardware-fault reports, sorted by page address.
  std::vector<HardwareFaultReport> hardwareReports() const;

  /// Sum of EvidenceRegions over all reports — monotone under merge, so
  /// it is exported as the xterm_hardware_faults_total counter.
  uint64_t hardwareEvidenceTotal() const;

  size_t hardwareReportCount() const { return HardwareTable.size(); }

  /// Max-merges \p Other into this set (collaborative correction, §6.4);
  /// returns true when anything changed.
  bool merge(const PatchSet &Other);

  /// All pad patches, sorted by site for deterministic output.
  std::vector<PadPatch> pads() const;

  /// All deferral patches, sorted by site pair.
  std::vector<DeferralPatch> deferrals() const;

  size_t padCount() const { return PadTable.size(); }
  size_t deferralCount() const { return DeferralTable.size(); }
  bool empty() const {
    return PadTable.empty() && FrontPadTable.empty() &&
           DeferralTable.empty() && HardwareTable.empty();
  }
  void clear();

  bool operator==(const PatchSet &Other) const;

private:
  static uint64_t pairKey(SiteId AllocSite, SiteId FreeSite) {
    return (uint64_t(AllocSite) << 32) | FreeSite;
  }

  struct HardwareCell {
    uint32_t KindMask = 0;
    uint64_t EvidenceRegions = 0;

    bool operator==(const HardwareCell &Other) const = default;
  };

  std::unordered_map<SiteId, uint32_t> PadTable;
  std::unordered_map<SiteId, uint32_t> FrontPadTable;
  std::unordered_map<uint64_t, uint64_t> DeferralTable;
  std::unordered_map<uint64_t, HardwareCell> HardwareTable;
};

} // namespace exterminator

#endif // EXTERMINATOR_PATCH_RUNTIMEPATCH_H

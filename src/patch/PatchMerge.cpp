//===- patch/PatchMerge.cpp - Collaborative correction ----------------------===//

#include "patch/PatchMerge.h"

#include "patch/PatchIO.h"

using namespace exterminator;

PatchSet exterminator::mergePatchSets(const std::vector<PatchSet> &Sets) {
  PatchSet Merged;
  for (const PatchSet &Set : Sets)
    Merged.merge(Set);
  return Merged;
}

bool exterminator::mergePatchFiles(const std::vector<std::string> &Paths,
                                   const std::string &OutputPath) {
  PatchSet Merged;
  for (const std::string &Path : Paths) {
    PatchSet Loaded;
    if (!loadPatchSet(Path, Loaded))
      return false;
    Merged.merge(Loaded);
  }
  return savePatchSet(Merged, OutputPath);
}

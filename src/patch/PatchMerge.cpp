//===- patch/PatchMerge.cpp - Collaborative correction ----------------------===//

#include "patch/PatchMerge.h"

#include "patch/PatchIO.h"

using namespace exterminator;

PatchSet exterminator::mergePatchSets(const std::vector<PatchSet> &Sets) {
  // PatchSet's add/merge operations are keyed max-folds, so folding set
  // by set deduplicates pads per allocation site (and deferrals per
  // site pair) and is invariant to input order — §6.4's "maximum buffer
  // pad required for any allocation site", pinned by the merge-order
  // and duplicate-entry tests.
  PatchSet Merged;
  for (const PatchSet &Set : Sets)
    Merged.merge(Set);
  return Merged;
}

bool exterminator::mergePatchFiles(const std::vector<std::string> &Paths,
                                   const std::string &OutputPath) {
  std::vector<PatchSet> Sets;
  Sets.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    PatchSet Loaded;
    if (!loadPatchSet(Path, Loaded))
      return false;
    Sets.push_back(std::move(Loaded));
  }
  return savePatchSet(mergePatchSets(Sets), OutputPath);
}

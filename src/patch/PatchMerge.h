//===- patch/PatchMerge.h - Collaborative correction -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collaborative bug correction (§6.4): "a simple utility that takes as
/// input a number of runtime patch files ... and combines these patches by
/// computing the maximum buffer pad required for any allocation site, and
/// the maximal deferral amount", producing one patch file covering every
/// error observed by any user.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_PATCH_PATCHMERGE_H
#define EXTERMINATOR_PATCH_PATCHMERGE_H

#include "patch/RuntimePatch.h"

#include <string>
#include <vector>

namespace exterminator {

/// Max-merges \p Sets into a single patch set.
PatchSet mergePatchSets(const std::vector<PatchSet> &Sets);

/// Loads every patch file in \p Paths, max-merges them, and writes the
/// result to \p OutputPath.  Returns false if any file fails to load or
/// the output fails to write.
bool mergePatchFiles(const std::vector<std::string> &Paths,
                     const std::string &OutputPath);

} // namespace exterminator

#endif // EXTERMINATOR_PATCH_PATCHMERGE_H

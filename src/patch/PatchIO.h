//===- patch/PatchIO.h - Patch file format ---------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime patch file format (§6.3): what the correcting allocator
/// loads at start-up or on a reload signal, and what collaborating users
/// exchange (§6.4).  Patch files are bounded by the number of allocation
/// sites in the program, so they stay compact.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_PATCH_PATCHIO_H
#define EXTERMINATOR_PATCH_PATCHIO_H

#include "patch/RuntimePatch.h"

#include <string>
#include <vector>

namespace exterminator {

/// Encodes \p Patches into a self-describing byte buffer.
std::vector<uint8_t> serializePatchSet(const PatchSet &Patches);

/// Decodes a patch set; returns false on a malformed buffer.
bool deserializePatchSet(const std::vector<uint8_t> &Buffer,
                         PatchSet &PatchesOut);

/// Saves \p Patches to \p Path; returns false on I/O failure.
bool savePatchSet(const PatchSet &Patches, const std::string &Path);

/// Loads patches from \p Path; returns false on I/O or format failure.
bool loadPatchSet(const std::string &Path, PatchSet &PatchesOut);

} // namespace exterminator

#endif // EXTERMINATOR_PATCH_PATCHIO_H

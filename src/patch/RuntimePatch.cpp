//===- patch/RuntimePatch.cpp - Runtime patches ----------------------------===//

#include "patch/RuntimePatch.h"

#include <algorithm>

using namespace exterminator;

/// The max-merge primitive all patch tables share: insert, or raise an
/// existing entry to the maximum.  Returns whether the table changed
/// (what the diagnosis pipeline's epoch detection keys on).
template <typename MapT>
static bool maxInsert(MapT &Table, typename MapT::key_type Key,
                      typename MapT::mapped_type Value) {
  auto [It, Inserted] = Table.try_emplace(Key, Value);
  if (!Inserted && Value > It->second) {
    It->second = Value;
    return true;
  }
  return Inserted;
}

bool PatchSet::addPad(SiteId AllocSite, uint32_t PadBytes) {
  return maxInsert(PadTable, AllocSite, PadBytes);
}

bool PatchSet::addFrontPad(SiteId AllocSite, uint32_t PadBytes) {
  return maxInsert(FrontPadTable, AllocSite, PadBytes);
}

uint32_t PatchSet::frontPadFor(SiteId AllocSite) const {
  if (FrontPadTable.empty())
    return 0;
  auto It = FrontPadTable.find(AllocSite);
  return It == FrontPadTable.end() ? 0 : It->second;
}

std::vector<FrontPadPatch> PatchSet::frontPads() const {
  std::vector<FrontPadPatch> Result;
  Result.reserve(FrontPadTable.size());
  for (const auto &[Site, Pad] : FrontPadTable)
    Result.push_back(FrontPadPatch{Site, Pad});
  std::sort(Result.begin(), Result.end(),
            [](const FrontPadPatch &A, const FrontPadPatch &B) {
              return A.AllocSite < B.AllocSite;
            });
  return Result;
}

bool PatchSet::addDeferral(SiteId AllocSite, SiteId FreeSite,
                           uint64_t DeferTicks) {
  return maxInsert(DeferralTable, pairKey(AllocSite, FreeSite), DeferTicks);
}

uint32_t PatchSet::padFor(SiteId AllocSite) const {
  // Hot path: the correcting allocator queries on every malloc, and most
  // programs run with few or no patches.
  if (PadTable.empty())
    return 0;
  auto It = PadTable.find(AllocSite);
  return It == PadTable.end() ? 0 : It->second;
}

uint64_t PatchSet::deferralFor(SiteId AllocSite, SiteId FreeSite) const {
  if (DeferralTable.empty())
    return 0;
  auto It = DeferralTable.find(pairKey(AllocSite, FreeSite));
  return It == DeferralTable.end() ? 0 : It->second;
}

bool PatchSet::addHardwareReport(uint64_t PageAddress, uint32_t KindMask,
                                 uint64_t EvidenceRegions) {
  auto [It, Inserted] =
      HardwareTable.try_emplace(PageAddress,
                                HardwareCell{KindMask, EvidenceRegions});
  if (Inserted)
    return true;
  bool Changed = false;
  if ((It->second.KindMask | KindMask) != It->second.KindMask) {
    It->second.KindMask |= KindMask;
    Changed = true;
  }
  if (EvidenceRegions > It->second.EvidenceRegions) {
    It->second.EvidenceRegions = EvidenceRegions;
    Changed = true;
  }
  return Changed;
}

std::vector<HardwareFaultReport> PatchSet::hardwareReports() const {
  std::vector<HardwareFaultReport> Result;
  Result.reserve(HardwareTable.size());
  for (const auto &[Page, Cell] : HardwareTable)
    Result.push_back(
        HardwareFaultReport{Page, Cell.KindMask, Cell.EvidenceRegions});
  std::sort(Result.begin(), Result.end(),
            [](const HardwareFaultReport &A, const HardwareFaultReport &B) {
              return A.PageAddress < B.PageAddress;
            });
  return Result;
}

uint64_t PatchSet::hardwareEvidenceTotal() const {
  uint64_t Total = 0;
  for (const auto &[Page, Cell] : HardwareTable)
    Total += Cell.EvidenceRegions;
  return Total;
}

bool PatchSet::merge(const PatchSet &Other) {
  bool Changed = false;
  for (const auto &[Site, Pad] : Other.PadTable)
    Changed |= addPad(Site, Pad);
  for (const auto &[Site, Pad] : Other.FrontPadTable)
    Changed |= addFrontPad(Site, Pad);
  for (const auto &[Key, Defer] : Other.DeferralTable)
    Changed |= maxInsert(DeferralTable, Key, Defer);
  for (const auto &[Page, Cell] : Other.HardwareTable)
    Changed |= addHardwareReport(Page, Cell.KindMask, Cell.EvidenceRegions);
  return Changed;
}

std::vector<PadPatch> PatchSet::pads() const {
  std::vector<PadPatch> Result;
  Result.reserve(PadTable.size());
  for (const auto &[Site, Pad] : PadTable)
    Result.push_back(PadPatch{Site, Pad});
  std::sort(Result.begin(), Result.end(),
            [](const PadPatch &A, const PadPatch &B) {
              return A.AllocSite < B.AllocSite;
            });
  return Result;
}

std::vector<DeferralPatch> PatchSet::deferrals() const {
  std::vector<DeferralPatch> Result;
  Result.reserve(DeferralTable.size());
  for (const auto &[Key, Defer] : DeferralTable)
    Result.push_back(DeferralPatch{static_cast<SiteId>(Key >> 32),
                                   static_cast<SiteId>(Key & 0xffffffffu),
                                   Defer});
  std::sort(Result.begin(), Result.end(),
            [](const DeferralPatch &A, const DeferralPatch &B) {
              if (A.AllocSite != B.AllocSite)
                return A.AllocSite < B.AllocSite;
              return A.FreeSite < B.FreeSite;
            });
  return Result;
}

void PatchSet::clear() {
  PadTable.clear();
  FrontPadTable.clear();
  DeferralTable.clear();
  HardwareTable.clear();
}

bool PatchSet::operator==(const PatchSet &Other) const {
  return PadTable == Other.PadTable &&
         FrontPadTable == Other.FrontPadTable &&
         DeferralTable == Other.DeferralTable &&
         HardwareTable == Other.HardwareTable;
}

//===- patch/RuntimePatch.cpp - Runtime patches ----------------------------===//

#include "patch/RuntimePatch.h"

#include <algorithm>

using namespace exterminator;

/// The max-merge primitive all patch tables share: insert, or raise an
/// existing entry to the maximum.  Returns whether the table changed
/// (what the diagnosis pipeline's epoch detection keys on).
template <typename MapT>
static bool maxInsert(MapT &Table, typename MapT::key_type Key,
                      typename MapT::mapped_type Value) {
  auto [It, Inserted] = Table.try_emplace(Key, Value);
  if (!Inserted && Value > It->second) {
    It->second = Value;
    return true;
  }
  return Inserted;
}

bool PatchSet::addPad(SiteId AllocSite, uint32_t PadBytes) {
  return maxInsert(PadTable, AllocSite, PadBytes);
}

bool PatchSet::addFrontPad(SiteId AllocSite, uint32_t PadBytes) {
  return maxInsert(FrontPadTable, AllocSite, PadBytes);
}

uint32_t PatchSet::frontPadFor(SiteId AllocSite) const {
  if (FrontPadTable.empty())
    return 0;
  auto It = FrontPadTable.find(AllocSite);
  return It == FrontPadTable.end() ? 0 : It->second;
}

std::vector<FrontPadPatch> PatchSet::frontPads() const {
  std::vector<FrontPadPatch> Result;
  Result.reserve(FrontPadTable.size());
  for (const auto &[Site, Pad] : FrontPadTable)
    Result.push_back(FrontPadPatch{Site, Pad});
  std::sort(Result.begin(), Result.end(),
            [](const FrontPadPatch &A, const FrontPadPatch &B) {
              return A.AllocSite < B.AllocSite;
            });
  return Result;
}

bool PatchSet::addDeferral(SiteId AllocSite, SiteId FreeSite,
                           uint64_t DeferTicks) {
  return maxInsert(DeferralTable, pairKey(AllocSite, FreeSite), DeferTicks);
}

uint32_t PatchSet::padFor(SiteId AllocSite) const {
  // Hot path: the correcting allocator queries on every malloc, and most
  // programs run with few or no patches.
  if (PadTable.empty())
    return 0;
  auto It = PadTable.find(AllocSite);
  return It == PadTable.end() ? 0 : It->second;
}

uint64_t PatchSet::deferralFor(SiteId AllocSite, SiteId FreeSite) const {
  if (DeferralTable.empty())
    return 0;
  auto It = DeferralTable.find(pairKey(AllocSite, FreeSite));
  return It == DeferralTable.end() ? 0 : It->second;
}

bool PatchSet::merge(const PatchSet &Other) {
  bool Changed = false;
  for (const auto &[Site, Pad] : Other.PadTable)
    Changed |= addPad(Site, Pad);
  for (const auto &[Site, Pad] : Other.FrontPadTable)
    Changed |= addFrontPad(Site, Pad);
  for (const auto &[Key, Defer] : Other.DeferralTable)
    Changed |= maxInsert(DeferralTable, Key, Defer);
  return Changed;
}

std::vector<PadPatch> PatchSet::pads() const {
  std::vector<PadPatch> Result;
  Result.reserve(PadTable.size());
  for (const auto &[Site, Pad] : PadTable)
    Result.push_back(PadPatch{Site, Pad});
  std::sort(Result.begin(), Result.end(),
            [](const PadPatch &A, const PadPatch &B) {
              return A.AllocSite < B.AllocSite;
            });
  return Result;
}

std::vector<DeferralPatch> PatchSet::deferrals() const {
  std::vector<DeferralPatch> Result;
  Result.reserve(DeferralTable.size());
  for (const auto &[Key, Defer] : DeferralTable)
    Result.push_back(DeferralPatch{static_cast<SiteId>(Key >> 32),
                                   static_cast<SiteId>(Key & 0xffffffffu),
                                   Defer});
  std::sort(Result.begin(), Result.end(),
            [](const DeferralPatch &A, const DeferralPatch &B) {
              if (A.AllocSite != B.AllocSite)
                return A.AllocSite < B.AllocSite;
              return A.FreeSite < B.FreeSite;
            });
  return Result;
}

void PatchSet::clear() {
  PadTable.clear();
  FrontPadTable.clear();
  DeferralTable.clear();
}

bool PatchSet::operator==(const PatchSet &Other) const {
  return PadTable == Other.PadTable &&
         FrontPadTable == Other.FrontPadTable &&
         DeferralTable == Other.DeferralTable;
}

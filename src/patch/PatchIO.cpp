//===- patch/PatchIO.cpp - Patch file format --------------------------------===//

#include "patch/PatchIO.h"

#include "support/Serializer.h"

#include <utility>

using namespace exterminator;

static constexpr uint32_t PatchMagic = 0x58505432; // "XPT2"

std::vector<uint8_t> exterminator::serializePatchSet(const PatchSet &Patches) {
  ByteWriter Writer;
  Writer.writeU32(PatchMagic);
  const std::vector<PadPatch> Pads = Patches.pads();
  const std::vector<FrontPadPatch> FrontPads = Patches.frontPads();
  const std::vector<DeferralPatch> Deferrals = Patches.deferrals();
  Writer.writeU64(Pads.size());
  for (const PadPatch &Pad : Pads) {
    Writer.writeU32(Pad.AllocSite);
    Writer.writeU32(Pad.PadBytes);
  }
  Writer.writeU64(FrontPads.size());
  for (const FrontPadPatch &Pad : FrontPads) {
    Writer.writeU32(Pad.AllocSite);
    Writer.writeU32(Pad.PadBytes);
  }
  Writer.writeU64(Deferrals.size());
  for (const DeferralPatch &Deferral : Deferrals) {
    Writer.writeU32(Deferral.AllocSite);
    Writer.writeU32(Deferral.FreeSite);
    Writer.writeU64(Deferral.DeferTicks);
  }
  return Writer.buffer();
}

bool exterminator::deserializePatchSet(const std::vector<uint8_t> &Buffer,
                                       PatchSet &PatchesOut) {
  // Decode into a local and swap only on success: a buffer malformed
  // mid-stream (a torn state file) must never leave \p PatchesOut half
  // populated — a partially-seeded server would serve weaker patches
  // than it claims to hold.
  ByteReader Reader(Buffer);
  if (Reader.readU32() != PatchMagic)
    return false;
  PatchSet Decoded;
  const uint64_t NumPads = Reader.readU64();
  for (uint64_t I = 0; I < NumPads && !Reader.failed(); ++I) {
    SiteId Site = Reader.readU32();
    uint32_t Pad = Reader.readU32();
    Decoded.addPad(Site, Pad);
  }
  const uint64_t NumFrontPads = Reader.readU64();
  for (uint64_t I = 0; I < NumFrontPads && !Reader.failed(); ++I) {
    SiteId Site = Reader.readU32();
    uint32_t Pad = Reader.readU32();
    Decoded.addFrontPad(Site, Pad);
  }
  const uint64_t NumDeferrals = Reader.readU64();
  for (uint64_t I = 0; I < NumDeferrals && !Reader.failed(); ++I) {
    SiteId AllocSite = Reader.readU32();
    SiteId FreeSite = Reader.readU32();
    uint64_t Defer = Reader.readU64();
    Decoded.addDeferral(AllocSite, FreeSite, Defer);
  }
  if (!Reader.atEnd())
    return false;
  PatchesOut = std::move(Decoded);
  return true;
}

bool exterminator::savePatchSet(const PatchSet &Patches,
                                const std::string &Path) {
  return writeFileBytes(Path, serializePatchSet(Patches));
}

bool exterminator::loadPatchSet(const std::string &Path,
                                PatchSet &PatchesOut) {
  std::vector<uint8_t> Buffer;
  if (!readFileBytes(Path, Buffer))
    return false;
  return deserializePatchSet(Buffer, PatchesOut);
}

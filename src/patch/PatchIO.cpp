//===- patch/PatchIO.cpp - Patch file format --------------------------------===//

#include "patch/PatchIO.h"

#include "support/Serializer.h"

#include <utility>

using namespace exterminator;

static constexpr uint32_t PatchMagic = 0x58505432;   // "XPT2"
static constexpr uint32_t PatchMagicV3 = 0x58505433; // "XPT3": + hardware

std::vector<uint8_t> exterminator::serializePatchSet(const PatchSet &Patches) {
  // Sets without hardware reports serialize as XPT2, byte-identical to
  // the pre-PR-9 format: pure-software patch files (and their on-disk
  // fingerprints) are unchanged, and old readers keep working on them.
  const std::vector<HardwareFaultReport> Hardware = Patches.hardwareReports();
  ByteWriter Writer;
  Writer.writeU32(Hardware.empty() ? PatchMagic : PatchMagicV3);
  const std::vector<PadPatch> Pads = Patches.pads();
  const std::vector<FrontPadPatch> FrontPads = Patches.frontPads();
  const std::vector<DeferralPatch> Deferrals = Patches.deferrals();
  Writer.writeU64(Pads.size());
  for (const PadPatch &Pad : Pads) {
    Writer.writeU32(Pad.AllocSite);
    Writer.writeU32(Pad.PadBytes);
  }
  Writer.writeU64(FrontPads.size());
  for (const FrontPadPatch &Pad : FrontPads) {
    Writer.writeU32(Pad.AllocSite);
    Writer.writeU32(Pad.PadBytes);
  }
  Writer.writeU64(Deferrals.size());
  for (const DeferralPatch &Deferral : Deferrals) {
    Writer.writeU32(Deferral.AllocSite);
    Writer.writeU32(Deferral.FreeSite);
    Writer.writeU64(Deferral.DeferTicks);
  }
  if (!Hardware.empty()) {
    Writer.writeU64(Hardware.size());
    for (const HardwareFaultReport &Report : Hardware) {
      Writer.writeU64(Report.PageAddress);
      Writer.writeU32(Report.KindMask);
      Writer.writeU64(Report.EvidenceRegions);
    }
  }
  return Writer.buffer();
}

bool exterminator::deserializePatchSet(const std::vector<uint8_t> &Buffer,
                                       PatchSet &PatchesOut) {
  // Decode into a local and swap only on success: a buffer malformed
  // mid-stream (a torn state file) must never leave \p PatchesOut half
  // populated — a partially-seeded server would serve weaker patches
  // than it claims to hold.
  ByteReader Reader(Buffer);
  const uint32_t Magic = Reader.readU32();
  if (Magic != PatchMagic && Magic != PatchMagicV3)
    return false;
  PatchSet Decoded;
  const uint64_t NumPads = Reader.readU64();
  for (uint64_t I = 0; I < NumPads && !Reader.failed(); ++I) {
    SiteId Site = Reader.readU32();
    uint32_t Pad = Reader.readU32();
    Decoded.addPad(Site, Pad);
  }
  const uint64_t NumFrontPads = Reader.readU64();
  for (uint64_t I = 0; I < NumFrontPads && !Reader.failed(); ++I) {
    SiteId Site = Reader.readU32();
    uint32_t Pad = Reader.readU32();
    Decoded.addFrontPad(Site, Pad);
  }
  const uint64_t NumDeferrals = Reader.readU64();
  for (uint64_t I = 0; I < NumDeferrals && !Reader.failed(); ++I) {
    SiteId AllocSite = Reader.readU32();
    SiteId FreeSite = Reader.readU32();
    uint64_t Defer = Reader.readU64();
    Decoded.addDeferral(AllocSite, FreeSite, Defer);
  }
  if (Magic == PatchMagicV3) {
    const uint64_t NumHardware = Reader.readU64();
    for (uint64_t I = 0; I < NumHardware && !Reader.failed(); ++I) {
      uint64_t Page = Reader.readU64();
      uint32_t Mask = Reader.readU32();
      uint64_t Evidence = Reader.readU64();
      Decoded.addHardwareReport(Page, Mask, Evidence);
    }
  }
  if (!Reader.atEnd())
    return false;
  PatchesOut = std::move(Decoded);
  return true;
}

bool exterminator::savePatchSet(const PatchSet &Patches,
                                const std::string &Path) {
  return writeFileBytes(Path, serializePatchSet(Patches));
}

bool exterminator::loadPatchSet(const std::string &Path,
                                PatchSet &PatchesOut) {
  std::vector<uint8_t> Buffer;
  if (!readFileBytes(Path, Buffer))
    return false;
  return deserializePatchSet(Buffer, PatchesOut);
}

//===- isolate/ErrorIsolator.h - Iterative/replicated isolation *- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4 error-isolation pipeline: given k heap images of the same
/// execution (iterative mode) or of replicas over the same input
/// (replicated mode), classify dangling-pointer overwrites first (their
/// corruption is identical across images, Theorem 1), exclude them from
/// overflow evidence, isolate overflow culprits, and emit runtime patches:
/// a pad for the most highly-ranked overflow culprit (§6.1) and a deferral
/// for every dangling finding (§6.2).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ISOLATE_ERRORISOLATOR_H
#define EXTERMINATOR_ISOLATE_ERRORISOLATOR_H

#include "isolate/DanglingIsolator.h"
#include "isolate/OverflowIsolator.h"
#include "patch/RuntimePatch.h"

#include <vector>

namespace exterminator {

/// Tuning for the full isolation pipeline.
struct IsolationConfig {
  OverflowIsolatorConfig Overflow;
  /// Origin classification (PR 9): hardware-shaped evidence is diverted
  /// into page findings instead of feeding site patches.
  OriginClassifierConfig Origin;
  /// Patch every overflow candidate at or above this score rather than
  /// only the top-ranked one (off by default; the paper patches "the most
  /// highly-ranked culprit").
  bool PatchAllCandidates = false;
  /// Candidates below this score never generate patches.
  double MinPatchScore = 0.5;
};

/// Everything one isolation episode produced.
struct IsolationResult {
  /// Overflow culprits, ranked best-first.
  std::vector<OverflowCandidate> Overflows;
  /// Dangling-pointer overwrites.
  std::vector<DanglingFinding> Danglings;
  /// Suspected failing pages (hardware-origin evidence, PR 9).
  std::vector<HardwareFinding> HardwareFaults;
  /// The runtime patches derived from the findings (site patches for the
  /// software findings, page reports for the hardware ones).
  PatchSet Patches;

  bool foundAnything() const {
    return !Overflows.empty() || !Danglings.empty() ||
           !HardwareFaults.empty();
  }
};

class Executor;

/// Runs the complete §4 isolation pipeline over a set of heap images.
/// \p Pool, when given, fans the evidence sweeps across the executor
/// (deterministic: findings are identical to a sequential run).
IsolationResult isolateErrors(const std::vector<HeapImage> &Images,
                              const IsolationConfig &Config = {},
                              Executor *Pool = nullptr);

/// Same pipeline over pre-built views (avoids re-indexing when the
/// caller — e.g. DiagnosisPipeline — already holds them).
IsolationResult isolateErrors(const std::vector<HeapImageView> &Views,
                              const IsolationConfig &Config = {},
                              Executor *Pool = nullptr);

} // namespace exterminator

#endif // EXTERMINATOR_ISOLATE_ERRORISOLATOR_H

//===- isolate/DanglingIsolator.cpp - Dangling-pointer isolation -----------===//

#include "isolate/DanglingIsolator.h"

#include "diefast/Canary.h"

#include <algorithm>

using namespace exterminator;

DanglingIsolator::DanglingIsolator(const std::vector<HeapImageView> &Views)
    : Views(Views) {}

/// A slot is inspectable for dangling overwrites when its canary was
/// written and the contents have been preserved: either it is still free,
/// or DieFast quarantined it on detection.
static bool isCanaryPreserved(uint8_t Flags) {
  return (Flags & SlotFlagCanaried) &&
         (!(Flags & SlotFlagAllocated) || (Flags & SlotFlagBad));
}

std::vector<DanglingFinding> DanglingIsolator::isolate() const {
  std::vector<DanglingFinding> Findings;
  if (Views.size() < 2)
    return Findings; // A single image cannot separate overwrite sources.

  const HeapImage &First = Views.front().image();
  const Canary FirstCanary = Canary::fromValue(First.CanaryValue);

  std::vector<std::vector<uint8_t>> Scratch(Views.size());
  for (uint32_t M = 0; M < First.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = First.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      if (!isCanaryPreserved(First.slotFlags(Loc)) ||
          First.objectId(Loc) == 0)
        continue;
      const SlotContents Contents = First.contents(Loc);
      std::optional<CorruptionExtent> Extent =
          Contents.findCorruption(FirstCanary);
      if (!Extent)
        continue;

      // Gather the same logical object in every other image; it must be
      // freed, canaried, and corrupted there too.
      uint64_t UnionBegin = Extent->Begin;
      uint64_t UnionEnd = Extent->End;
      std::vector<const uint8_t *> Bytes(Views.size());
      Bytes[0] = Contents.bytes(Scratch[0]);
      bool Comparable = true;
      for (size_t I = 1; I < Views.size() && Comparable; ++I) {
        std::optional<ImageLocation> OtherLoc =
            Views[I].findById(First.objectId(Loc));
        if (!OtherLoc) {
          Comparable = false;
          break;
        }
        const HeapImage &Other = Views[I].image();
        const SlotContents OtherContents = Other.contents(*OtherLoc);
        if (!isCanaryPreserved(Other.slotFlags(*OtherLoc)) ||
            OtherContents.size() != Contents.size()) {
          Comparable = false;
          break;
        }
        const Canary OtherCanary = Canary::fromValue(Other.CanaryValue);
        std::optional<CorruptionExtent> OtherExtent =
            OtherContents.findCorruption(OtherCanary);
        if (!OtherExtent) {
          Comparable = false;
          break;
        }
        UnionBegin = std::min(UnionBegin, OtherExtent->Begin);
        UnionEnd = std::max(UnionEnd, OtherExtent->End);
        Bytes[I] = OtherContents.bytes(Scratch[I]);
      }
      if (!Comparable)
        continue;

      // The overwrite must be byte-identical across all images over the
      // union of corrupted ranges.  (Canary values differ per image, so a
      // written byte colliding with one image's canary still matches: the
      // slot byte holds the written value either way.)
      bool Identical = true;
      for (size_t I = 1; I < Views.size() && Identical; ++I)
        for (uint64_t B = UnionBegin; B < UnionEnd; ++B)
          if (Bytes[I][B] != Bytes[0][B]) {
            Identical = false;
            break;
          }
      if (!Identical)
        continue;

      DanglingFinding Finding;
      Finding.ObjectId = First.objectId(Loc);
      Finding.AllocSite = First.allocSite(Loc);
      Finding.FreeSite = First.freeSite(Loc);
      Finding.FreeTime = First.freeTime(Loc);
      // T: the latest allocation time across the images (images taken at
      // the same malloc breakpoint agree; crash dumps may lag slightly).
      uint64_t FailureTime = 0;
      for (const HeapImageView &View : Views)
        FailureTime = std::max(FailureTime, View.image().AllocationTime);
      Finding.FailureTime = FailureTime;
      // Extend the object's drag, not its lifetime: 2·(T − τ) + 1 (§6.2).
      Finding.DeferralTicks = 2 * (FailureTime - Finding.FreeTime) + 1;
      Findings.push_back(Finding);
    }
  }
  return Findings;
}

//===- isolate/DanglingIsolator.cpp - Dangling-pointer isolation -----------===//

#include "isolate/DanglingIsolator.h"

#include "diefast/Canary.h"

#include <algorithm>

using namespace exterminator;

DanglingIsolator::DanglingIsolator(const std::vector<HeapImage> &Images,
                                   const std::vector<ImageIndex> &Indexes)
    : Images(Images), Indexes(Indexes) {
  assert(Images.size() == Indexes.size() &&
         "images and indexes must be parallel");
}

/// A slot is inspectable for dangling overwrites when its canary was
/// written and the contents have been preserved: either it is still free,
/// or DieFast quarantined it on detection.
static bool isCanaryPreserved(const ImageSlot &Slot) {
  return Slot.Canaried && (!Slot.Allocated || Slot.Bad);
}

std::vector<DanglingFinding> DanglingIsolator::isolate() const {
  std::vector<DanglingFinding> Findings;
  if (Images.size() < 2)
    return Findings; // A single image cannot separate overwrite sources.

  const HeapImage &First = Images.front();
  const Canary FirstCanary = Canary::fromValue(First.CanaryValue);

  for (uint32_t M = 0; M < First.Miniheaps.size(); ++M) {
    const ImageMiniheap &Mini = First.Miniheaps[M];
    for (uint32_t S = 0; S < Mini.Slots.size(); ++S) {
      const ImageSlot &Slot = Mini.Slots[S];
      if (!isCanaryPreserved(Slot) || Slot.ObjectId == 0)
        continue;
      std::optional<CorruptionExtent> Extent = FirstCanary.findCorruption(
          Slot.Contents.data(), Slot.Contents.size());
      if (!Extent)
        continue;

      // Gather the same logical object in every other image; it must be
      // freed, canaried, and corrupted there too.
      uint64_t UnionBegin = Extent->Begin;
      uint64_t UnionEnd = Extent->End;
      std::vector<const ImageSlot *> Slots(Images.size());
      Slots[0] = &Slot;
      bool Comparable = true;
      for (size_t I = 1; I < Images.size() && Comparable; ++I) {
        std::optional<ImageLocation> Loc = Indexes[I].findById(Slot.ObjectId);
        if (!Loc) {
          Comparable = false;
          break;
        }
        const ImageSlot &Other = Images[I].slot(*Loc);
        if (!isCanaryPreserved(Other) ||
            Other.Contents.size() != Slot.Contents.size()) {
          Comparable = false;
          break;
        }
        const Canary OtherCanary = Canary::fromValue(Images[I].CanaryValue);
        std::optional<CorruptionExtent> OtherExtent =
            OtherCanary.findCorruption(Other.Contents.data(),
                                       Other.Contents.size());
        if (!OtherExtent) {
          Comparable = false;
          break;
        }
        UnionBegin = std::min(UnionBegin, OtherExtent->Begin);
        UnionEnd = std::max(UnionEnd, OtherExtent->End);
        Slots[I] = &Other;
      }
      if (!Comparable)
        continue;

      // The overwrite must be byte-identical across all images over the
      // union of corrupted ranges.  (Canary values differ per image, so a
      // written byte colliding with one image's canary still matches: the
      // slot byte holds the written value either way.)
      bool Identical = true;
      for (size_t I = 1; I < Images.size() && Identical; ++I)
        for (uint64_t B = UnionBegin; B < UnionEnd; ++B)
          if (Slots[I]->Contents[B] != Slot.Contents[B]) {
            Identical = false;
            break;
          }
      if (!Identical)
        continue;

      DanglingFinding Finding;
      Finding.ObjectId = Slot.ObjectId;
      Finding.AllocSite = Slot.AllocSite;
      Finding.FreeSite = Slot.FreeSite;
      Finding.FreeTime = Slot.FreeTime;
      // T: the latest allocation time across the images (images taken at
      // the same malloc breakpoint agree; crash dumps may lag slightly).
      uint64_t FailureTime = 0;
      for (const HeapImage &Image : Images)
        FailureTime = std::max(FailureTime, Image.AllocationTime);
      Finding.FailureTime = FailureTime;
      // Extend the object's drag, not its lifetime: 2·(T − τ) + 1 (§6.2).
      Finding.DeferralTicks = 2 * (FailureTime - Finding.FreeTime) + 1;
      Findings.push_back(Finding);
    }
  }
  return Findings;
}

//===- isolate/DanglingIsolator.h - Dangling-pointer isolation -*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dangling pointer isolation for iterative/replicated modes (§4.2).
///
/// A freed, canary-filled object that has been *overwritten with identical
/// values across every heap image* is classified as a dangling-pointer
/// overwrite: Theorem 1 shows a buffer overflow lands identically in k
/// randomized heaps with probability at most (1/2)^k · (1/(H−S))^k, so
/// identical corruption of the same logical object implicates a write
/// through a stale pointer to that object.
///
/// The corresponding runtime patch defers the object's deallocation by
/// 2·(T − τ) + 1 allocations, where τ is its recorded deallocation time
/// and T the allocation time at failure — doubling the object's *drag*
/// each episode so a correct patch is found in a logarithmic number of
/// executions (§6.2).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ISOLATE_DANGLINGISOLATOR_H
#define EXTERMINATOR_ISOLATE_DANGLINGISOLATOR_H

#include "heapimage/HeapImage.h"
#include "support/SiteHash.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// One isolated dangling-pointer error.
struct DanglingFinding {
  /// The prematurely-freed object.
  uint64_t ObjectId = 0;
  /// Allocation / deallocation sites of the dangled object; the deferral
  /// patch is keyed on this pair.
  SiteId AllocSite = 0;
  SiteId FreeSite = 0;
  /// Recorded deallocation time τ.
  uint64_t FreeTime = 0;
  /// Allocation time T at failure.
  uint64_t FailureTime = 0;
  /// Computed lifetime extension: 2·(T − τ) + 1.
  uint64_t DeferralTicks = 0;
};

/// Searches heap images for dangling-pointer overwrites.
class DanglingIsolator {
public:
  explicit DanglingIsolator(const std::vector<HeapImageView> &Views);

  /// Returns every freed object overwritten identically in all images.
  std::vector<DanglingFinding> isolate() const;

private:
  const std::vector<HeapImageView> &Views;
};

} // namespace exterminator

#endif // EXTERMINATOR_ISOLATE_DANGLINGISOLATOR_H

//===- isolate/OverflowIsolator.cpp - Buffer-overflow isolation ------------===//

#include "isolate/OverflowIsolator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace exterminator;

OverflowIsolator::OverflowIsolator(const std::vector<HeapImageView> &Views,
                                   const OverflowIsolatorConfig &Config,
                                   Executor *Pool)
    : Views(Views), Config(Config), Pool(Pool) {}

namespace {

/// A corruption region re-expressed as byte offsets relative to a culprit
/// candidate's object start within one image.  Offsets are signed:
/// negative offsets are backward-overflow evidence (§2.1 extension).
struct RelativeRegion {
  uint32_t ImageIndex;
  int64_t BeginOffset;
  int64_t EndOffset;
  const std::vector<uint8_t> *Bytes;
};

/// One observed byte at one culprit-relative offset in one image — a
/// row of the fast path's flat agreement table.
struct Observation {
  int64_t Offset;
  uint32_t ImageIndex;
  uint8_t Byte;
};

} // namespace

std::vector<uint64_t> OverflowIsolator::candidatesLegacy(
    const std::vector<std::vector<CorruptionRegion>> &ByImage) const {
  // Enumerate candidate culprits: for each victim region, every object at
  // a lower address in the same miniheap could be a forward-overflow
  // source; with the backward extension, objects at higher addresses are
  // candidates too.
  std::unordered_map<uint64_t, bool> CandidateIds;
  for (uint32_t I = 0; I < ByImage.size(); ++I) {
    const HeapImage &Image = Views[I].image();
    for (const CorruptionRegion &Region : ByImage[I]) {
      const ImageMiniheapInfo &Mini =
          Image.miniheapInfo(Region.Victim.MiniheapIndex);
      const uint32_t Limit = Config.DetectBackwardOverflows
                                 ? static_cast<uint32_t>(Mini.NumSlots)
                                 : Region.Victim.SlotIndex;
      for (uint32_t C = 0; C < Limit; ++C) {
        if (C == Region.Victim.SlotIndex)
          continue;
        const uint64_t Id =
            Image.objectId(ImageLocation{Region.Victim.MiniheapIndex, C});
        if (Id != 0)
          CandidateIds.emplace(Id, true);
      }
    }
  }
  std::vector<uint64_t> Candidates;
  Candidates.reserve(CandidateIds.size());
  for (const auto &[Id, Unused] : CandidateIds) {
    (void)Unused;
    Candidates.push_back(Id);
  }
  return Candidates;
}

std::vector<uint64_t> OverflowIsolator::candidatesFast(
    const std::vector<std::vector<CorruptionRegion>> &ByImage) const {
  // Same candidate set as the legacy enumeration, but victim regions
  // are first grouped by (image, miniheap) so each miniheap's id column
  // is swept exactly once instead of once per region.
  struct VictimGroup {
    uint32_t Image;
    uint32_t Mini;
    std::vector<uint32_t> Victims;
  };
  std::vector<VictimGroup> Groups;
  for (uint32_t I = 0; I < ByImage.size(); ++I)
    for (const CorruptionRegion &Region : ByImage[I]) {
      VictimGroup *Group = nullptr;
      for (VictimGroup &Existing : Groups)
        if (Existing.Image == I &&
            Existing.Mini == Region.Victim.MiniheapIndex) {
          Group = &Existing;
          break;
        }
      if (!Group) {
        Groups.push_back({I, Region.Victim.MiniheapIndex, {}});
        Group = &Groups.back();
      }
      Group->Victims.push_back(Region.Victim.SlotIndex);
    }

  std::vector<uint64_t> Candidates;
  for (VictimGroup &Group : Groups) {
    const HeapImage &Image = Views[Group.Image].image();
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(Group.Mini);
    const uint64_t *Ids = Image.objectIdColumn().data() + Mini.FirstSlot;
    std::sort(Group.Victims.begin(), Group.Victims.end());
    Group.Victims.erase(
        std::unique(Group.Victims.begin(), Group.Victims.end()),
        Group.Victims.end());
    if (Config.DetectBackwardOverflows) {
      // Per region, legacy admits every slot but that region's victim;
      // the union over a group therefore excludes a slot only when it
      // is the group's sole victim.
      const bool SingleVictim = Group.Victims.size() == 1;
      for (uint32_t C = 0; C < Mini.NumSlots; ++C) {
        if (SingleVictim && C == Group.Victims.front())
          continue;
        if (Ids[C] != 0)
          Candidates.push_back(Ids[C]);
      }
    } else {
      // Forward-only legacy admits C < victim slot; the union over the
      // group is C < its highest victim slot.
      const uint32_t Limit = Group.Victims.back();
      for (uint32_t C = 0; C < Limit; ++C)
        if (Ids[C] != 0)
          Candidates.push_back(Ids[C]);
    }
  }
  std::sort(Candidates.begin(), Candidates.end());
  Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                   Candidates.end());
  return Candidates;
}

std::vector<OverflowCandidate>
OverflowIsolator::isolate(const std::vector<uint64_t> &ExcludeIds) const {
  if (Views.size() < 2)
    return {}; // Theorem 3: one image leaves H−1 candidates per victim.

  const EvidenceCollector Collector(Views, Pool);
  return isolateFromEvidence(Collector.collectAllEvidence(ExcludeIds));
}

OverflowIsolator::Isolation
OverflowIsolator::isolateWithOrigins(const std::vector<uint64_t> &ExcludeIds,
                                     const OriginClassifierConfig &Origin) const {
  Isolation Result;
  if (Views.size() < 2)
    return Result;

  const EvidenceCollector Collector(Views, Pool);
  OriginPartition Partition =
      classifyOrigins(Views, Collector.collectAllEvidence(ExcludeIds), Origin);
  Result.Hardware = std::move(Partition.Hardware);
  Result.Candidates = isolateFromEvidence(Partition.Software);
  return Result;
}

std::vector<OverflowCandidate> OverflowIsolator::isolateFromEvidence(
    const std::vector<std::vector<CorruptionRegion>> &ByImage) const {
  std::vector<OverflowCandidate> Result;

  const std::vector<uint64_t> CandidateIds =
      evidence_path::isLegacy() ? candidatesLegacy(ByImage)
                                : candidatesFast(ByImage);

  // Hoisted scratch: the candidate loop reuses these instead of paying
  // an allocation per candidate (the fast path's flat offset table
  // replaces the per-offset node-and-vector std::map as well).
  std::vector<ImageLocation> Locations(Views.size());
  std::vector<Observation> Observations;
  std::vector<RelativeRegion> Relative;
  std::vector<uint8_t> ImageConfirmed;

  for (const uint64_t CulpritId : CandidateIds) {
    // Locate the culprit in every image; candidates whose slot has been
    // recycled in some image cannot be cross-checked.
    bool Present = true;
    for (size_t I = 0; I < Views.size() && Present; ++I) {
      std::optional<ImageLocation> Loc = Views[I].findById(CulpritId);
      if (!Loc)
        Present = false;
      else
        Locations[I] = *Loc;
    }
    if (!Present)
      continue;

    const HeapImage &FirstImage = Views[0].image();
    const SiteId CulpritSite = FirstImage.allocSite(Locations[0]);
    const uint32_t RequestedSize = FirstImage.requestedSize(Locations[0]);

    // Project every image's corruption regions into culprit-relative
    // offsets; a deterministic overflow produces the same offsets (same
    // distance δ) in every image, while unrelated corruption lands at
    // random offsets (Theorem 3).
    Relative.clear();
    for (uint32_t I = 0; I < ByImage.size(); ++I) {
      const HeapImage &Image = Views[I].image();
      const ImageMiniheapInfo &CulpritMini = Image.miniheap(Locations[I]);
      const uint64_t CulpritStart = Image.slotAddress(Locations[I]);
      for (const CorruptionRegion &Region : ByImage[I]) {
        if (Region.BeginAddress < CulpritMini.BaseAddress ||
            Region.EndAddress > CulpritMini.endAddress())
          continue; // Overflows do not cross miniheaps (§5.1 assumption).
        const int64_t Begin = static_cast<int64_t>(Region.BeginAddress) -
                              static_cast<int64_t>(CulpritStart);
        const int64_t End = static_cast<int64_t>(Region.EndAddress) -
                            static_cast<int64_t>(CulpritStart);
        // Corruption confined to the culprit's own requested bytes is not
        // overflow evidence against it; backward evidence (negative
        // offsets) only counts when the extension is enabled.
        const bool Forward = End > static_cast<int64_t>(RequestedSize);
        const bool Backward = Config.DetectBackwardOverflows && Begin < 0;
        if (!Forward && !Backward)
          continue;
        Relative.push_back(RelativeRegion{I, Begin, End, &Region.Bytes});
      }
    }
    if (Relative.empty())
      continue;

    // Byte-level cross-image agreement: an offset counts as evidence for
    // an image when that image's observed byte agrees with at least one
    // *other* image at the same culprit-relative offset ("the overflowed
    // values have some bytes in common across the images").
    uint64_t EvidenceBytes = 0;
    int64_t MaxEndOffset = 0;
    int64_t MinBeginOffset = 0;
    ImageConfirmed.assign(Views.size(), 0);

    auto ScoreGroup = [&](const Observation *Group, size_t Count,
                          int64_t Offset) {
      for (size_t A = 0; A < Count; ++A) {
        bool Agrees = false;
        for (size_t B = 0; B < Count; ++B)
          if (B != A && Group[B].ImageIndex != Group[A].ImageIndex &&
              Group[B].Byte == Group[A].Byte) {
            Agrees = true;
            break;
          }
        if (Agrees) {
          ++EvidenceBytes;
          ImageConfirmed[Group[A].ImageIndex] = 1;
          if (Offset >= 0)
            MaxEndOffset = std::max(MaxEndOffset, Offset + 1);
          else
            MinBeginOffset = std::min(MinBeginOffset, Offset);
        }
      }
    };

    if (evidence_path::isLegacy()) {
      // Pre-PR-4 structure, verbatim: one red-black-tree node (and one
      // vector) per distinct offset, scored in place.
      std::map<int64_t, std::vector<std::pair<uint32_t, uint8_t>>> ByOffset;
      for (const RelativeRegion &Rel : Relative)
        for (int64_t Offset = Rel.BeginOffset; Offset < Rel.EndOffset;
             ++Offset)
          ByOffset[Offset].emplace_back(
              Rel.ImageIndex,
              (*Rel.Bytes)[static_cast<size_t>(Offset - Rel.BeginOffset)]);
      for (const auto &[Offset, Entries] : ByOffset) {
        for (size_t A = 0; A < Entries.size(); ++A) {
          bool Agrees = false;
          for (size_t B = 0; B < Entries.size(); ++B)
            if (B != A && Entries[B].first != Entries[A].first &&
                Entries[B].second == Entries[A].second) {
              Agrees = true;
              break;
            }
          if (Agrees) {
            ++EvidenceBytes;
            ImageConfirmed[Entries[A].first] = 1;
            if (Offset >= 0)
              MaxEndOffset = std::max(MaxEndOffset, Offset + 1);
            else
              MinBeginOffset = std::min(MinBeginOffset, Offset);
          }
        }
      }
    } else {
      // Fast path: one flat, reused observation table, sorted by offset
      // and scored per group — no per-offset allocations.  Agreement is
      // order-independent within a group, so the sort only needs the
      // offset key.
      Observations.clear();
      for (const RelativeRegion &Rel : Relative)
        for (int64_t Offset = Rel.BeginOffset; Offset < Rel.EndOffset;
             ++Offset)
          Observations.push_back(Observation{
              Offset, Rel.ImageIndex,
              (*Rel.Bytes)[static_cast<size_t>(Offset - Rel.BeginOffset)]});
      std::sort(Observations.begin(), Observations.end(),
                [](const Observation &A, const Observation &B) {
                  return A.Offset < B.Offset;
                });
      for (size_t Begin = 0; Begin < Observations.size();) {
        size_t End = Begin + 1;
        while (End < Observations.size() &&
               Observations[End].Offset == Observations[Begin].Offset)
          ++End;
        ScoreGroup(Observations.data() + Begin, End - Begin,
                   Observations[Begin].Offset);
        Begin = End;
      }
    }

    uint32_t Confirmations = 0;
    for (bool Confirmed : ImageConfirmed)
      if (Confirmed)
        ++Confirmations;
    // A culprit-victim pair requires corroboration from at least two
    // differently-randomized heaps (§4.1, "Culprit Identification").
    if (Confirmations < Config.MinConfirmations || EvidenceBytes == 0)
      continue;

    OverflowCandidate Candidate;
    Candidate.CulpritObjectId = CulpritId;
    Candidate.CulpritAllocSite = CulpritSite;
    Candidate.EvidenceBytes = EvidenceBytes;
    Candidate.Confirmations = Confirmations;
    // Score 1 − (1/256)^S: the odds that S matching bytes arose by
    // chance.
    double Miss = 1.0;
    for (uint64_t I = 0; I < EvidenceBytes && Miss > 1e-300; ++I)
      Miss /= 256.0;
    Candidate.Score = 1.0 - Miss;
    // Pad so the farthest corruption lands inside the culprit's own
    // allocation: (corruption end − object start) − requested size; the
    // front pad covers the deepest backward reach.
    Candidate.PadBytes = static_cast<uint32_t>(
        MaxEndOffset > static_cast<int64_t>(RequestedSize)
            ? MaxEndOffset - RequestedSize
            : 0);
    Candidate.FrontPadBytes = static_cast<uint32_t>(-MinBeginOffset);
    Result.push_back(Candidate);
  }

  std::sort(Result.begin(), Result.end(),
            [](const OverflowCandidate &A, const OverflowCandidate &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              if (A.EvidenceBytes != B.EvidenceBytes)
                return A.EvidenceBytes > B.EvidenceBytes;
              return A.CulpritObjectId < B.CulpritObjectId;
            });
  return Result;
}

//===- isolate/OverflowIsolator.cpp - Buffer-overflow isolation ------------===//

#include "isolate/OverflowIsolator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace exterminator;

OverflowIsolator::OverflowIsolator(const std::vector<HeapImageView> &Views,
                                   const OverflowIsolatorConfig &Config)
    : Views(Views), Config(Config) {}

namespace {

/// A corruption region re-expressed as byte offsets relative to a culprit
/// candidate's object start within one image.  Offsets are signed:
/// negative offsets are backward-overflow evidence (§2.1 extension).
struct RelativeRegion {
  uint32_t ImageIndex;
  int64_t BeginOffset;
  int64_t EndOffset;
  const std::vector<uint8_t> *Bytes;
};

} // namespace

std::vector<OverflowCandidate>
OverflowIsolator::isolate(const std::vector<uint64_t> &ExcludeIds) const {
  std::vector<OverflowCandidate> Result;
  if (Views.size() < 2)
    return Result; // Theorem 3: one image leaves H−1 candidates per victim.

  const EvidenceCollector Collector(Views);
  const std::vector<std::vector<CorruptionRegion>> ByImage =
      Collector.collectAllEvidence(ExcludeIds);

  // Enumerate candidate culprits: for each victim region, every object at
  // a lower address in the same miniheap could be a forward-overflow
  // source; with the backward extension, objects at higher addresses are
  // candidates too.
  std::unordered_map<uint64_t, bool> CandidateIds;
  for (uint32_t I = 0; I < ByImage.size(); ++I) {
    const HeapImage &Image = Views[I].image();
    for (const CorruptionRegion &Region : ByImage[I]) {
      const ImageMiniheapInfo &Mini =
          Image.miniheapInfo(Region.Victim.MiniheapIndex);
      const uint32_t Limit = Config.DetectBackwardOverflows
                                 ? static_cast<uint32_t>(Mini.NumSlots)
                                 : Region.Victim.SlotIndex;
      for (uint32_t C = 0; C < Limit; ++C) {
        if (C == Region.Victim.SlotIndex)
          continue;
        const uint64_t Id =
            Image.objectId(ImageLocation{Region.Victim.MiniheapIndex, C});
        if (Id != 0)
          CandidateIds.emplace(Id, true);
      }
    }
  }

  for (const auto &[CulpritId, Unused] : CandidateIds) {
    (void)Unused;

    // Locate the culprit in every image; candidates whose slot has been
    // recycled in some image cannot be cross-checked.
    std::vector<ImageLocation> Locations(Views.size());
    bool Present = true;
    for (size_t I = 0; I < Views.size() && Present; ++I) {
      std::optional<ImageLocation> Loc = Views[I].findById(CulpritId);
      if (!Loc)
        Present = false;
      else
        Locations[I] = *Loc;
    }
    if (!Present)
      continue;

    const HeapImage &FirstImage = Views[0].image();
    const SiteId CulpritSite = FirstImage.allocSite(Locations[0]);
    const uint32_t RequestedSize = FirstImage.requestedSize(Locations[0]);

    // Project every image's corruption regions into culprit-relative
    // offsets; a deterministic overflow produces the same offsets (same
    // distance δ) in every image, while unrelated corruption lands at
    // random offsets (Theorem 3).
    std::vector<RelativeRegion> Relative;
    for (uint32_t I = 0; I < ByImage.size(); ++I) {
      const HeapImage &Image = Views[I].image();
      const ImageMiniheapInfo &CulpritMini = Image.miniheap(Locations[I]);
      const uint64_t CulpritStart = Image.slotAddress(Locations[I]);
      for (const CorruptionRegion &Region : ByImage[I]) {
        if (Region.BeginAddress < CulpritMini.BaseAddress ||
            Region.EndAddress > CulpritMini.endAddress())
          continue; // Overflows do not cross miniheaps (§5.1 assumption).
        const int64_t Begin = static_cast<int64_t>(Region.BeginAddress) -
                              static_cast<int64_t>(CulpritStart);
        const int64_t End = static_cast<int64_t>(Region.EndAddress) -
                            static_cast<int64_t>(CulpritStart);
        // Corruption confined to the culprit's own requested bytes is not
        // overflow evidence against it; backward evidence (negative
        // offsets) only counts when the extension is enabled.
        const bool Forward = End > static_cast<int64_t>(RequestedSize);
        const bool Backward = Config.DetectBackwardOverflows && Begin < 0;
        if (!Forward && !Backward)
          continue;
        Relative.push_back(RelativeRegion{I, Begin, End, &Region.Bytes});
      }
    }
    if (Relative.empty())
      continue;

    // Byte-level cross-image agreement: an offset counts as evidence for
    // an image when that image's observed byte agrees with at least one
    // *other* image at the same culprit-relative offset ("the overflowed
    // values have some bytes in common across the images").
    std::map<int64_t, std::vector<std::pair<uint32_t, uint8_t>>> ByOffset;
    for (const RelativeRegion &Rel : Relative)
      for (int64_t Offset = Rel.BeginOffset; Offset < Rel.EndOffset;
           ++Offset)
        ByOffset[Offset].emplace_back(
            Rel.ImageIndex,
            (*Rel.Bytes)[static_cast<size_t>(Offset - Rel.BeginOffset)]);

    uint64_t EvidenceBytes = 0;
    int64_t MaxEndOffset = 0;
    int64_t MinBeginOffset = 0;
    std::vector<bool> ImageConfirmed(Views.size(), false);
    for (const auto &[Offset, Observations] : ByOffset) {
      for (size_t A = 0; A < Observations.size(); ++A) {
        bool Agrees = false;
        for (size_t B = 0; B < Observations.size(); ++B)
          if (B != A && Observations[B].first != Observations[A].first &&
              Observations[B].second == Observations[A].second) {
            Agrees = true;
            break;
          }
        if (Agrees) {
          ++EvidenceBytes;
          ImageConfirmed[Observations[A].first] = true;
          if (Offset >= 0)
            MaxEndOffset = std::max(MaxEndOffset, Offset + 1);
          else
            MinBeginOffset = std::min(MinBeginOffset, Offset);
        }
      }
    }

    uint32_t Confirmations = 0;
    for (bool Confirmed : ImageConfirmed)
      if (Confirmed)
        ++Confirmations;
    // A culprit-victim pair requires corroboration from at least two
    // differently-randomized heaps (§4.1, "Culprit Identification").
    if (Confirmations < Config.MinConfirmations || EvidenceBytes == 0)
      continue;

    OverflowCandidate Candidate;
    Candidate.CulpritObjectId = CulpritId;
    Candidate.CulpritAllocSite = CulpritSite;
    Candidate.EvidenceBytes = EvidenceBytes;
    Candidate.Confirmations = Confirmations;
    // Score 1 − (1/256)^S: the odds that S matching bytes arose by
    // chance.
    double Miss = 1.0;
    for (uint64_t I = 0; I < EvidenceBytes && Miss > 1e-300; ++I)
      Miss /= 256.0;
    Candidate.Score = 1.0 - Miss;
    // Pad so the farthest corruption lands inside the culprit's own
    // allocation: (corruption end − object start) − requested size; the
    // front pad covers the deepest backward reach.
    Candidate.PadBytes = static_cast<uint32_t>(
        MaxEndOffset > static_cast<int64_t>(RequestedSize)
            ? MaxEndOffset - RequestedSize
            : 0);
    Candidate.FrontPadBytes = static_cast<uint32_t>(-MinBeginOffset);
    Result.push_back(Candidate);
  }

  std::sort(Result.begin(), Result.end(),
            [](const OverflowCandidate &A, const OverflowCandidate &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              if (A.EvidenceBytes != B.EvidenceBytes)
                return A.EvidenceBytes > B.EvidenceBytes;
              return A.CulpritObjectId < B.CulpritObjectId;
            });
  return Result;
}

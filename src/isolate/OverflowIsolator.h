//===- isolate/OverflowIsolator.h - Buffer-overflow isolation --*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Buffer-overflow isolation for iterative/replicated modes (§4.1).
///
/// Victims are located through corruption evidence (broken canaries and
/// cross-image live-object discrepancies).  For each victim, every object
/// at a lower address in the same miniheap is a potential *culprit*;
/// because the overflow is deterministic, the corruption must lie at the
/// same distance δ from the culprit in every image, while the random
/// placement of every other object makes coincidental agreement
/// vanishingly rare (Theorem 3: one extra image drops the expected number
/// of spurious culprits to 1/(H−1)^(k−2)).
///
/// Confirmed culprit-victim pairs are scored 1 − (1/256)^S where S sums
/// the lengths of matching overflow strings; the patch pads the culprit's
/// allocation site enough to contain the farthest observed corruption.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ISOLATE_OVERFLOWISOLATOR_H
#define EXTERMINATOR_ISOLATE_OVERFLOWISOLATOR_H

#include "isolate/ObjectDiff.h"
#include "isolate/OriginClassifier.h"
#include "support/SiteHash.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// One ranked overflow culprit.
struct OverflowCandidate {
  /// The object whose allocation overflows.
  uint64_t CulpritObjectId = 0;
  /// Its allocation site: the key of the pad patch.
  SiteId CulpritAllocSite = 0;
  /// Bytes of padding needed to contain every observed corruption:
  /// max(corruption end − object start) − requested size (§6.1).
  uint32_t PadBytes = 0;
  /// Bytes of *front* padding for backward overflows (the §2.1
  /// extension): max(object start − corruption begin) when corruption
  /// appears at the same negative offset in every image.
  uint32_t FrontPadBytes = 0;
  /// Confidence 1 − (1/256)^S (§4.1, "Culprit Identification").
  double Score = 0.0;
  /// S: total matched overflow-string bytes across image pairs.
  uint64_t EvidenceBytes = 0;
  /// Distinct (image, victim) confirmations.
  uint32_t Confirmations = 0;
};

/// Tuning for overflow isolation.
struct OverflowIsolatorConfig {
  /// Minimum number of images in which a culprit's corruption must be
  /// corroborated.  Two is the paper's baseline (each extra image divides
  /// the expected spurious-culprit count by H−1).
  uint32_t MinConfirmations = 2;
  /// Also search for backward (under-run) overflows — the extension the
  /// paper names in §2.1 but does not implement.
  bool DetectBackwardOverflows = true;
};

/// Searches heap images for buffer overflows.
class OverflowIsolator {
public:
  /// \p Pool, when given, fans the evidence-collection sweeps across the
  /// executor (see EvidenceCollector; the findings are unaffected).
  explicit OverflowIsolator(const std::vector<HeapImageView> &Views,
                            const OverflowIsolatorConfig &Config = {},
                            Executor *Pool = nullptr);

  /// Returns culprits ranked by score (ties broken toward more evidence
  /// bytes).  \p ExcludeIds lists objects already classified as dangling
  /// overwrites, whose corruption must not be treated as overflow
  /// evidence.
  std::vector<OverflowCandidate>
  isolate(const std::vector<uint64_t> &ExcludeIds = {}) const;

  /// Overflow candidates plus the hardware findings diverted before
  /// candidate scoring (PR 9).
  struct Isolation {
    std::vector<OverflowCandidate> Candidates;
    std::vector<HardwareFinding> Hardware;
  };

  /// Like isolate(), but runs the origin classifier over the collected
  /// evidence first: hardware-origin regions never become site-patch
  /// evidence and are returned as page findings instead.  With the
  /// classifier disabled (or no hardware-shaped evidence present) the
  /// candidates are bit-identical to isolate()'s.
  Isolation isolateWithOrigins(const std::vector<uint64_t> &ExcludeIds,
                               const OriginClassifierConfig &Origin) const;

private:
  /// The §4.1 candidate enumeration + δ-agreement scoring over an
  /// already-collected (and possibly origin-filtered) evidence set.
  std::vector<OverflowCandidate> isolateFromEvidence(
      const std::vector<std::vector<CorruptionRegion>> &ByImage) const;

  /// Candidate-culprit enumeration, pre-PR-4 shape: every region
  /// re-scans its victim's whole miniheap into a node-based dedup map.
  std::vector<uint64_t> candidatesLegacy(
      const std::vector<std::vector<CorruptionRegion>> &ByImage) const;

  /// Fast enumeration: victim regions grouped by (image, miniheap) so
  /// each miniheap's id column is scanned exactly once; produces the
  /// same candidate *set* (pinned by the fast/legacy equivalence test).
  std::vector<uint64_t> candidatesFast(
      const std::vector<std::vector<CorruptionRegion>> &ByImage) const;

  const std::vector<HeapImageView> &Views;
  OverflowIsolatorConfig Config;
  Executor *Pool;
};

} // namespace exterminator

#endif // EXTERMINATOR_ISOLATE_OVERFLOWISOLATOR_H

//===- isolate/OriginClassifier.h - Software-vs-hardware origin *- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Origin classification of corruption evidence (PR 9): before corruption
/// regions feed the §4 overflow analysis, each is judged *software* (a
/// buggy call site — eligible for site patches) or *hardware* (a failing
/// memory cell — diverted into a page-level hardware-fault report).
///
/// The signature of hardware damage, following the DRAM field studies in
/// the related work, is the inverse of an overflow's:
///
///  * **Extent**: one or two bytes with one or two flipped bits each
///    (single/multi bit upsets), versus an overflow's dense byte string.
///    The expected value is known exactly for canary-filled slots, so the
///    flipped-bit population is computable, not guessed.
///
///  * **Decorrelation**: a deterministic software bug is keyed to
///    allocation order and so corrupts the *same logical object at the
///    same offset with the same bytes* in every differently-randomized
///    image (§2.1); a failing cell is keyed to physical placement and so
///    corrupts whatever object each image's randomization put there.
///    Evidence reproduced across images is therefore pulled back to the
///    software side regardless of how bit-flip-like it looks.
///
///  * **Spatial clustering**: several corrupted slots inside one
///    row-sized window of a single slab indicate a row/column fault
///    (kind mask RowCluster); a single cell indicates a bit flip; the
///    same cell and mask recurring across images indicates stuck-at.
///
/// Diversion is deliberately conservative: anything failing the bit-level
/// tests stays software, so pure-software runs produce evidence — and
/// hence patches — bit-identical to a classifier-free pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ISOLATE_ORIGINCLASSIFIER_H
#define EXTERMINATOR_ISOLATE_ORIGINCLASSIFIER_H

#include "isolate/ObjectDiff.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// Tuning for origin classification.
struct OriginClassifierConfig {
  /// Classification on/off; when off, every region is software and no
  /// hardware findings are produced (the pre-PR-9 pipeline).
  bool Enabled = true;
  /// Hardware damage is at most this many contiguous bytes; longer
  /// regions are overflow strings.
  uint32_t MaxRegionBytes = 2;
  /// Each corrupted byte may have at most this many flipped bits versus
  /// its expected (canary) value.
  uint32_t MaxFlippedBitsPerByte = 2;
  /// Window for spatial clustering: candidate regions within one aligned
  /// window of this size count toward a row-cluster signature.
  uint64_t RowWindowBytes = 1024;
  /// Distinct corrupted slots within one window needed to call the
  /// damage a row cluster.
  uint32_t MinClusterSlots = 2;
};

/// One suspected failing page, aggregated over all images' diverted
/// evidence.  Feeds PatchSet::addHardwareReport.
struct HardwareFinding {
  /// 4 KiB-aligned address of the implicated page.
  uint64_t PageAddress = 0;
  /// HardwareFaultKindMask bits inferred from the evidence shape.
  uint32_t KindMask = 0;
  /// Number of corruption regions attributed to the page.
  uint64_t EvidenceRegions = 0;
};

/// The result of classifying one evidence set.
struct OriginPartition {
  /// Software-origin regions, per image, in the exact order they were
  /// collected (the overflow isolator depends on evidence order).
  std::vector<std::vector<CorruptionRegion>> Software;
  /// Page-level hardware findings, sorted by page address.
  std::vector<HardwareFinding> Hardware;
};

/// Partitions \p ByImage (as produced by EvidenceCollector) into
/// software-origin evidence and hardware-fault findings.
OriginPartition
classifyOrigins(const std::vector<HeapImageView> &Views,
                const std::vector<std::vector<CorruptionRegion>> &ByImage,
                const OriginClassifierConfig &Config = {});

} // namespace exterminator

#endif // EXTERMINATOR_ISOLATE_ORIGINCLASSIFIER_H

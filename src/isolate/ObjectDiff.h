//===- isolate/ObjectDiff.h - Corruption evidence gathering ----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evidence gathering for iterative/replicated error isolation (§4.1).
///
/// Two sources of corruption evidence exist in a set of heap images:
///
///  1. *Broken canaries*: a freed, canary-filled slot whose pattern is no
///     longer intact (including slots DieFast already quarantined).
///
///  2. *Live-object discrepancies*: the same logical object (identified by
///     object id) differing across images.  Legitimate differences must be
///     masked out: canary-fill asymmetries (via the canary bitmap),
///     logical pointers (values that resolve to the same logical object at
///     the same offset in every image), and values that legitimately
///     differ per process such as pids — recognizable because they differ
///     in *every* image, whereas a deterministic overflow corrupts a
///     minority of images with one fixed value (the rest agree on the
///     original contents).
///
/// The collector consumes HeapImageViews: canary sweeps stay inside the
/// run encoding (a clean canary-filled slot is one O(1) pattern-run
/// check) and live-object contents are only materialized when the slot's
/// encoding forces it.
///
/// Evidence is reported as byte ranges at absolute addresses within one
/// image, carrying the observed (corrupting) bytes for later similarity
/// scoring.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_ISOLATE_OBJECTDIFF_H
#define EXTERMINATOR_ISOLATE_OBJECTDIFF_H

#include "heapimage/HeapImage.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// How one word of a live object compares across images (§4.1 masking
/// rules).
enum class WordClassKind {
  /// Identical everywhere: no evidence.
  Equal,
  /// Resolves to the same logical object and offset in every image.
  LogicalPointer,
  /// Pairwise distinct in all images: pids, handles, address-dependent
  /// values — legitimately different.
  LegitimatelyDifferent,
  /// A minority of images disagrees with the plurality: overflow
  /// evidence against the minority.
  OverflowEvidence,
};

/// A contiguous byte range of corruption within one image.
struct CorruptionRegion {
  /// Which image the corruption appears in.
  uint32_t ImageIndex = 0;
  /// The slot holding the corrupted bytes (the victim).
  ImageLocation Victim;
  /// Absolute byte range [Begin, End) in that image's address space.
  uint64_t BeginAddress = 0;
  uint64_t EndAddress = 0;
  /// The observed corrupting bytes (EndAddress - BeginAddress of them).
  std::vector<uint8_t> Bytes;

  uint64_t length() const { return EndAddress - BeginAddress; }
};

class Executor;

/// Gathers corruption evidence from a set of heap images of the same
/// program execution (iterative or replicated mode).
class EvidenceCollector {
public:
  /// \p Views must outlive the collector.  With a \p Pool (and the fast
  /// evidence path active), collectAllEvidence fans the per-image canary
  /// sweeps and the per-miniheap live-object diffs across the pool;
  /// results land in per-index slots and merge in deterministic order,
  /// so the evidence is identical to a sequential collection.
  explicit EvidenceCollector(const std::vector<HeapImageView> &Views,
                             Executor *Pool = nullptr);

  /// Broken-canary evidence in image \p ImageIndex, optionally skipping
  /// the object ids in \p ExcludeIds (objects already classified as
  /// dangling overwrites).
  std::vector<CorruptionRegion>
  collectCanaryEvidence(uint32_t ImageIndex,
                        const std::vector<uint64_t> &ExcludeIds = {}) const;

  /// Cross-image discrepancy evidence for the live object \p ObjectId;
  /// appends one region per corrupted range per minority image.
  void diffLiveObject(uint64_t ObjectId,
                      std::vector<CorruptionRegion> &EvidenceOut) const;

  /// All evidence in every image: canary evidence plus live-object diffs
  /// over every object live in all images.  Result is indexed by image.
  std::vector<std::vector<CorruptionRegion>>
  collectAllEvidence(const std::vector<uint64_t> &ExcludeIds = {}) const;

  /// Classifies one 8-byte word of a live object (exposed for tests).
  /// \p Values holds the word's value in each image.
  /// \p WordOffset is the byte offset of the word within the object.
  WordClassKind classifyWord(uint64_t ObjectId, uint64_t WordOffset,
                             const std::vector<uint64_t> &Values) const;

  size_t imageCount() const { return Views.size(); }

private:
  const std::vector<HeapImageView> &Views;
  Executor *Pool;
};

/// Merges regions in place: regions of the same image whose address
/// ranges touch or overlap are coalesced (bytes concatenated in address
/// order).
void coalesceRegions(std::vector<CorruptionRegion> &Regions);

} // namespace exterminator

#endif // EXTERMINATOR_ISOLATE_OBJECTDIFF_H

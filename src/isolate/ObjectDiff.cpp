//===- isolate/ObjectDiff.cpp - Corruption evidence gathering --------------===//

#include "isolate/ObjectDiff.h"

#include "diefast/Canary.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

using namespace exterminator;

EvidenceCollector::EvidenceCollector(const std::vector<HeapImage> &Images,
                                     const std::vector<ImageIndex> &Indexes)
    : Images(Images), Indexes(Indexes) {
  assert(Images.size() == Indexes.size() &&
         "images and indexes must be parallel");
}

std::vector<CorruptionRegion> EvidenceCollector::collectCanaryEvidence(
    uint32_t ImageIndex, const std::vector<uint64_t> &ExcludeIds) const {
  const HeapImage &Image = Images[ImageIndex];
  const Canary HeapCanary = Canary::fromValue(Image.CanaryValue);
  const std::unordered_set<uint64_t> Excluded(ExcludeIds.begin(),
                                              ExcludeIds.end());

  std::vector<CorruptionRegion> Evidence;
  for (uint32_t M = 0; M < Image.Miniheaps.size(); ++M) {
    const ImageMiniheap &Mini = Image.Miniheaps[M];
    for (uint32_t S = 0; S < Mini.Slots.size(); ++S) {
      const ImageSlot &Slot = Mini.Slots[S];
      // Canary checks apply to canaried slots that are free, or that
      // DieFast quarantined after finding them corrupted (still holding
      // their canary-era contents).
      if (!Slot.Canaried || (Slot.Allocated && !Slot.Bad))
        continue;
      if (Excluded.count(Slot.ObjectId))
        continue;
      std::optional<CorruptionExtent> Extent = HeapCanary.findCorruption(
          Slot.Contents.data(), Slot.Contents.size());
      if (!Extent)
        continue;
      CorruptionRegion Region;
      Region.ImageIndex = ImageIndex;
      Region.Victim = ImageLocation{M, S};
      Region.BeginAddress = Mini.slotAddress(S) + Extent->Begin;
      Region.EndAddress = Mini.slotAddress(S) + Extent->End;
      Region.Bytes.assign(Slot.Contents.begin() + Extent->Begin,
                          Slot.Contents.begin() + Extent->End);
      Evidence.push_back(std::move(Region));
    }
  }
  return Evidence;
}

WordClassKind
EvidenceCollector::classifyWord(uint64_t ObjectId, uint64_t WordOffset,
                                const std::vector<uint64_t> &Values) const {
  assert(Values.size() == Images.size() && "one value per image");
  (void)ObjectId;
  (void)WordOffset;

  bool AllEqual = true;
  for (size_t I = 1; I < Values.size(); ++I)
    if (Values[I] != Values[0])
      AllEqual = false;
  if (AllEqual)
    return WordClassKind::Equal;

  // Pointer identification: the value points into the heap and resolves
  // to the same logical object at the same offset in every image (§4.1).
  bool AllPointers = true;
  uint64_t PointeeId = 0;
  uint64_t PointeeOffset = 0;
  for (size_t I = 0; I < Values.size() && AllPointers; ++I) {
    auto Located = Indexes[I].locateAddress(Values[I]);
    if (!Located) {
      AllPointers = false;
      break;
    }
    const ImageSlot &Pointee = Images[I].slot(Located->first);
    if (Pointee.ObjectId == 0) {
      AllPointers = false;
      break;
    }
    if (I == 0) {
      PointeeId = Pointee.ObjectId;
      PointeeOffset = Located->second;
    } else if (Pointee.ObjectId != PointeeId ||
               Located->second != PointeeOffset) {
      AllPointers = false;
    }
  }
  if (AllPointers)
    return WordClassKind::LogicalPointer;

  // Values that legitimately differ per process (pids, handles,
  // address-dependent values) differ in *every* image.
  bool PairwiseDistinct = true;
  for (size_t I = 0; I < Values.size() && PairwiseDistinct; ++I)
    for (size_t J = I + 1; J < Values.size(); ++J)
      if (Values[I] == Values[J]) {
        PairwiseDistinct = false;
        break;
      }
  if (PairwiseDistinct)
    return WordClassKind::LegitimatelyDifferent;

  return WordClassKind::OverflowEvidence;
}

void EvidenceCollector::diffLiveObject(
    uint64_t ObjectId, std::vector<CorruptionRegion> &EvidenceOut) const {
  const size_t K = Images.size();
  if (K < 3)
    return; // A plurality needs at least three images (DESIGN.md).

  // The object must be live, unquarantined, and of identical size in
  // every image; otherwise it is not comparable.
  std::vector<ImageLocation> Locations(K);
  for (size_t I = 0; I < K; ++I) {
    std::optional<ImageLocation> Loc = Indexes[I].findById(ObjectId);
    if (!Loc)
      return;
    const ImageSlot &Slot = Images[I].slot(*Loc);
    if (!Slot.Allocated || Slot.Bad)
      return;
    Locations[I] = *Loc;
  }
  const uint64_t ObjectSize = Images[0].miniheap(Locations[0]).ObjectSize;
  for (size_t I = 1; I < K; ++I)
    if (Images[I].miniheap(Locations[I]).ObjectSize != ObjectSize)
      return;

  // Hoist the per-word slot resolution: content pointers are stable for
  // the whole sweep.
  std::vector<const uint8_t *> Data(K);
  for (size_t I = 0; I < K; ++I)
    Data[I] = Images[I].slot(Locations[I]).Contents.data();

  // The overwhelmingly common case is an uncorrupted object that is
  // byte-identical everywhere: one memcmp sweep per image settles it
  // without any per-word classification.
  bool AllIdentical = true;
  for (size_t I = 1; I < K && AllIdentical; ++I)
    AllIdentical = std::memcmp(Data[0], Data[I], ObjectSize) == 0;
  if (AllIdentical)
    return;

  std::vector<uint64_t> Values(K);
  for (uint64_t Offset = 0; Offset + 8 <= ObjectSize; Offset += 8) {
    // Word-level short-circuit of the all-equal class before the full
    // classifier runs.
    uint64_t First;
    std::memcpy(&First, Data[0] + Offset, 8);
    bool Equal = true;
    for (size_t I = 1; I < K && Equal; ++I)
      Equal = std::memcmp(Data[0] + Offset, Data[I] + Offset, 8) == 0;
    if (Equal)
      continue;
    Values[0] = First;
    for (size_t I = 1; I < K; ++I)
      std::memcpy(&Values[I], Data[I] + Offset, 8);
    if (classifyWord(ObjectId, Offset, Values) !=
        WordClassKind::OverflowEvidence)
      continue;

    // Attribute the corruption to the minority image(s): those that
    // disagree with the plurality value.
    uint64_t Plurality = Values[0];
    size_t BestCount = 0;
    for (size_t I = 0; I < K; ++I) {
      size_t Count = 0;
      for (size_t J = 0; J < K; ++J)
        if (Values[J] == Values[I])
          ++Count;
      if (Count > BestCount) {
        BestCount = Count;
        Plurality = Values[I];
      }
    }
    for (size_t I = 0; I < K; ++I) {
      if (Values[I] == Plurality)
        continue;
      // Trim to the bytes that actually differ from the plurality value
      // for byte-precise overflow extents.
      uint8_t PluralityBytes[8];
      std::memcpy(PluralityBytes, &Plurality, 8);
      uint64_t FirstByte = 8, Last = 0;
      for (uint64_t B = 0; B < 8; ++B) {
        if (Data[I][Offset + B] != PluralityBytes[B]) {
          FirstByte = std::min(FirstByte, B);
          Last = B + 1;
        }
      }
      assert(FirstByte < Last && "differing word must differ in some byte");
      CorruptionRegion Region;
      Region.ImageIndex = static_cast<uint32_t>(I);
      Region.Victim = Locations[I];
      const uint64_t SlotAddr = Images[I].slotAddress(Locations[I]);
      Region.BeginAddress = SlotAddr + Offset + FirstByte;
      Region.EndAddress = SlotAddr + Offset + Last;
      Region.Bytes.assign(Data[I] + Offset + FirstByte,
                          Data[I] + Offset + Last);
      EvidenceOut.push_back(std::move(Region));
    }
  }
}

std::vector<std::vector<CorruptionRegion>> EvidenceCollector::collectAllEvidence(
    const std::vector<uint64_t> &ExcludeIds) const {
  std::vector<std::vector<CorruptionRegion>> ByImage(Images.size());
  for (uint32_t I = 0; I < Images.size(); ++I)
    ByImage[I] = collectCanaryEvidence(I, ExcludeIds);

  // Diff every object that is live in image 0 (liveness elsewhere is
  // checked inside diffLiveObject).
  std::vector<CorruptionRegion> DiffEvidence;
  const HeapImage &First = Images.front();
  for (const ImageMiniheap &Mini : First.Miniheaps)
    for (const ImageSlot &Slot : Mini.Slots)
      if (Slot.Allocated && !Slot.Bad && Slot.ObjectId != 0)
        diffLiveObject(Slot.ObjectId, DiffEvidence);
  for (CorruptionRegion &Region : DiffEvidence)
    ByImage[Region.ImageIndex].push_back(std::move(Region));

  for (auto &Regions : ByImage)
    coalesceRegions(Regions);
  return ByImage;
}

void exterminator::coalesceRegions(std::vector<CorruptionRegion> &Regions) {
  if (Regions.size() < 2)
    return;
  std::sort(Regions.begin(), Regions.end(),
            [](const CorruptionRegion &A, const CorruptionRegion &B) {
              return A.BeginAddress < B.BeginAddress;
            });
  std::vector<CorruptionRegion> Merged;
  Merged.push_back(std::move(Regions.front()));
  for (size_t I = 1; I < Regions.size(); ++I) {
    CorruptionRegion &Last = Merged.back();
    CorruptionRegion &Next = Regions[I];
    if (Next.ImageIndex == Last.ImageIndex &&
        Next.BeginAddress <= Last.EndAddress) {
      if (Next.EndAddress > Last.EndAddress) {
        // Extend; splice in the non-overlapping suffix of Next's bytes.
        const uint64_t Keep = Next.EndAddress - Last.EndAddress;
        Last.Bytes.insert(Last.Bytes.end(), Next.Bytes.end() - Keep,
                          Next.Bytes.end());
        Last.EndAddress = Next.EndAddress;
      }
    } else {
      Merged.push_back(std::move(Next));
    }
  }
  Regions = std::move(Merged);
}

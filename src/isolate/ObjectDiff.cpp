//===- isolate/ObjectDiff.cpp - Corruption evidence gathering --------------===//

#include "isolate/ObjectDiff.h"

#include "diefast/Canary.h"
#include "support/Executor.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

using namespace exterminator;

EvidenceCollector::EvidenceCollector(const std::vector<HeapImageView> &Views,
                                     Executor *Pool)
    : Views(Views), Pool(Pool) {}

std::vector<CorruptionRegion> EvidenceCollector::collectCanaryEvidence(
    uint32_t ImageIndex, const std::vector<uint64_t> &ExcludeIds) const {
  const HeapImage &Image = Views[ImageIndex].image();
  const Canary HeapCanary = Canary::fromValue(Image.CanaryValue);
  const std::unordered_set<uint64_t> Excluded(ExcludeIds.begin(),
                                              ExcludeIds.end());

  std::vector<CorruptionRegion> Evidence;
  std::vector<uint8_t> Scratch;

  if (!evidence_path::isLegacy()) {
    // Fast path: iterate the flag and id columns directly — one byte
    // load per slot decides inspectability, with none of the per-slot
    // ImageLocation -> globalSlot accessor chain.
    const uint8_t *Flags = Image.flagsColumn().data();
    const uint64_t *Ids = Image.objectIdColumn().data();
    for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
      const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
      for (uint64_t G = Mini.FirstSlot, S = 0; S < Mini.NumSlots; ++G, ++S) {
        const uint8_t F = Flags[G];
        if (!(F & SlotFlagCanaried) ||
            ((F & SlotFlagAllocated) && !(F & SlotFlagBad)))
          continue;
        if (!Excluded.empty() && Excluded.count(Ids[G]))
          continue;
        const SlotContents Contents = Image.contentsAt(G);
        std::optional<CorruptionExtent> Extent =
            Contents.findCorruption(HeapCanary);
        if (!Extent)
          continue;
        CorruptionRegion Region;
        Region.ImageIndex = ImageIndex;
        Region.Victim = ImageLocation{M, static_cast<uint32_t>(S)};
        Region.BeginAddress = Mini.slotAddress(S) + Extent->Begin;
        Region.EndAddress = Mini.slotAddress(S) + Extent->End;
        const uint8_t *Bytes = Contents.bytes(Scratch);
        Region.Bytes.assign(Bytes + Extent->Begin, Bytes + Extent->End);
        Evidence.push_back(std::move(Region));
      }
    }
    return Evidence;
  }

  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    for (uint32_t S = 0; S < Mini.NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      const uint8_t Flags = Image.slotFlags(Loc);
      // Canary checks apply to canaried slots that are free, or that
      // DieFast quarantined after finding them corrupted (still holding
      // their canary-era contents).
      if (!(Flags & SlotFlagCanaried) ||
          ((Flags & SlotFlagAllocated) && !(Flags & SlotFlagBad)))
        continue;
      if (Excluded.count(Image.objectId(Loc)))
        continue;
      const SlotContents Contents = Image.contents(Loc);
      std::optional<CorruptionExtent> Extent =
          Contents.findCorruption(HeapCanary);
      if (!Extent)
        continue;
      CorruptionRegion Region;
      Region.ImageIndex = ImageIndex;
      Region.Victim = Loc;
      Region.BeginAddress = Mini.slotAddress(S) + Extent->Begin;
      Region.EndAddress = Mini.slotAddress(S) + Extent->End;
      const uint8_t *Bytes = Contents.bytes(Scratch);
      Region.Bytes.assign(Bytes + Extent->Begin, Bytes + Extent->End);
      Evidence.push_back(std::move(Region));
    }
  }
  return Evidence;
}

WordClassKind
EvidenceCollector::classifyWord(uint64_t ObjectId, uint64_t WordOffset,
                                const std::vector<uint64_t> &Values) const {
  assert(Values.size() == Views.size() && "one value per image");
  (void)ObjectId;
  (void)WordOffset;

  bool AllEqual = true;
  for (size_t I = 1; I < Values.size(); ++I)
    if (Values[I] != Values[0]) {
      AllEqual = false;
      break;
    }
  if (AllEqual)
    return WordClassKind::Equal;

  // Pointer identification: the value points into the heap and resolves
  // to the same logical object at the same offset in every image (§4.1).
  bool AllPointers = true;
  uint64_t PointeeId = 0;
  uint64_t PointeeOffset = 0;
  for (size_t I = 0; I < Values.size() && AllPointers; ++I) {
    auto Located = Views[I].locateAddress(Values[I]);
    if (!Located) {
      AllPointers = false;
      break;
    }
    const uint64_t Id = Views[I].image().objectId(Located->first);
    if (Id == 0) {
      AllPointers = false;
      break;
    }
    if (I == 0) {
      PointeeId = Id;
      PointeeOffset = Located->second;
    } else if (Id != PointeeId || Located->second != PointeeOffset) {
      AllPointers = false;
      break;
    }
  }
  if (AllPointers)
    return WordClassKind::LogicalPointer;

  // Values that legitimately differ per process (pids, handles,
  // address-dependent values) differ in *every* image.
  bool PairwiseDistinct = true;
  for (size_t I = 0; I < Values.size() && PairwiseDistinct; ++I)
    for (size_t J = I + 1; J < Values.size(); ++J)
      if (Values[I] == Values[J]) {
        PairwiseDistinct = false;
        break;
      }
  if (PairwiseDistinct)
    return WordClassKind::LegitimatelyDifferent;

  return WordClassKind::OverflowEvidence;
}

void EvidenceCollector::diffLiveObject(
    uint64_t ObjectId, std::vector<CorruptionRegion> &EvidenceOut) const {
  const size_t K = Views.size();
  if (K < 3)
    return; // A plurality needs at least three images (DESIGN.md).

  // The object must be live, unquarantined, and of identical size in
  // every image; otherwise it is not comparable.
  std::vector<ImageLocation> Locations(K);
  for (size_t I = 0; I < K; ++I) {
    std::optional<ImageLocation> Loc = Views[I].findById(ObjectId);
    if (!Loc)
      return;
    const uint8_t Flags = Views[I].image().slotFlags(*Loc);
    if (!(Flags & SlotFlagAllocated) || (Flags & SlotFlagBad))
      return;
    Locations[I] = *Loc;
  }
  const uint64_t ObjectSize =
      Views[0].image().miniheap(Locations[0]).ObjectSize;
  for (size_t I = 1; I < K; ++I)
    if (Views[I].image().miniheap(Locations[I]).ObjectSize != ObjectSize)
      return;

  // The overwhelmingly common case is an uncorrupted object that is
  // byte-identical everywhere: run-table comparison settles it without
  // materializing contents.
  bool AllIdentical = true;
  const SlotContents First = Views[0].image().contents(Locations[0]);
  for (size_t I = 1; I < K && AllIdentical; ++I)
    AllIdentical = First.equals(Views[I].image().contents(Locations[I]));
  if (AllIdentical)
    return;

  // Hoist the per-word slot resolution: decode each image's copy once
  // (zero-copy when the slot is a single literal run) and sweep words.
  std::vector<std::vector<uint8_t>> Scratch(K);
  std::vector<const uint8_t *> Data(K);
  for (size_t I = 0; I < K; ++I)
    Data[I] = Views[I].image().contents(Locations[I]).bytes(Scratch[I]);

  std::vector<uint64_t> Values(K);
  for (uint64_t Offset = 0; Offset + 8 <= ObjectSize; Offset += 8) {
    // Word-level short-circuit of the all-equal class before the full
    // classifier runs.
    uint64_t FirstWord;
    std::memcpy(&FirstWord, Data[0] + Offset, 8);
    bool Equal = true;
    for (size_t I = 1; I < K && Equal; ++I)
      Equal = std::memcmp(Data[0] + Offset, Data[I] + Offset, 8) == 0;
    if (Equal)
      continue;
    Values[0] = FirstWord;
    for (size_t I = 1; I < K; ++I)
      std::memcpy(&Values[I], Data[I] + Offset, 8);
    if (classifyWord(ObjectId, Offset, Values) !=
        WordClassKind::OverflowEvidence)
      continue;

    // Attribute the corruption to the minority image(s): those that
    // disagree with the plurality value.
    uint64_t Plurality = Values[0];
    size_t BestCount = 0;
    for (size_t I = 0; I < K; ++I) {
      size_t Count = 0;
      for (size_t J = 0; J < K; ++J)
        if (Values[J] == Values[I])
          ++Count;
      if (Count > BestCount) {
        BestCount = Count;
        Plurality = Values[I];
      }
    }
    for (size_t I = 0; I < K; ++I) {
      if (Values[I] == Plurality)
        continue;
      // Trim to the bytes that actually differ from the plurality value
      // for byte-precise overflow extents.
      uint8_t PluralityBytes[8];
      std::memcpy(PluralityBytes, &Plurality, 8);
      uint64_t FirstByte = 8, Last = 0;
      for (uint64_t B = 0; B < 8; ++B) {
        if (Data[I][Offset + B] != PluralityBytes[B]) {
          FirstByte = std::min(FirstByte, B);
          Last = B + 1;
        }
      }
      assert(FirstByte < Last && "differing word must differ in some byte");
      CorruptionRegion Region;
      Region.ImageIndex = static_cast<uint32_t>(I);
      Region.Victim = Locations[I];
      const uint64_t SlotAddr = Views[I].image().slotAddress(Locations[I]);
      Region.BeginAddress = SlotAddr + Offset + FirstByte;
      Region.EndAddress = SlotAddr + Offset + Last;
      Region.Bytes.assign(Data[I] + Offset + FirstByte,
                          Data[I] + Offset + Last);
      EvidenceOut.push_back(std::move(Region));
    }
  }
}

std::vector<std::vector<CorruptionRegion>> EvidenceCollector::collectAllEvidence(
    const std::vector<uint64_t> &ExcludeIds) const {
  const bool Parallel =
      Pool && Pool->threadCount() > 1 && !evidence_path::isLegacy();

  // Canary sweeps are independent per image (per-index result slots).
  std::vector<std::vector<CorruptionRegion>> ByImage(Views.size());
  if (Parallel && Views.size() > 1) {
    Pool->parallelFor(Views.size(), [&](size_t I) {
      ByImage[I] =
          collectCanaryEvidence(static_cast<uint32_t>(I), ExcludeIds);
    });
  } else {
    for (uint32_t I = 0; I < Views.size(); ++I)
      ByImage[I] = collectCanaryEvidence(I, ExcludeIds);
  }

  // Diff every object that is live in image 0 (liveness elsewhere is
  // checked inside diffLiveObject).  The sweep fans out per miniheap of
  // the first image; per-miniheap evidence merges in miniheap order, so
  // the result is the exact sequential-order evidence list.
  const HeapImage &FirstImage = Views.front().image();
  std::vector<std::vector<CorruptionRegion>> PerMini(
      FirstImage.miniheapCount());
  auto DiffMiniheap = [&](size_t M) {
    const ImageMiniheapInfo &Mini =
        FirstImage.miniheapInfo(static_cast<uint32_t>(M));
    const uint8_t *Flags = FirstImage.flagsColumn().data();
    const uint64_t *Ids = FirstImage.objectIdColumn().data();
    for (uint64_t G = Mini.FirstSlot, S = 0; S < Mini.NumSlots; ++G, ++S) {
      const uint8_t F = Flags[G];
      if ((F & SlotFlagAllocated) && !(F & SlotFlagBad) && Ids[G] != 0)
        diffLiveObject(Ids[G], PerMini[M]);
    }
  };
  if (Parallel && PerMini.size() > 1)
    Pool->parallelFor(PerMini.size(), DiffMiniheap);
  else
    for (size_t M = 0; M < PerMini.size(); ++M)
      DiffMiniheap(M);

  for (std::vector<CorruptionRegion> &Regions : PerMini)
    for (CorruptionRegion &Region : Regions)
      ByImage[Region.ImageIndex].push_back(std::move(Region));

  for (auto &Regions : ByImage)
    coalesceRegions(Regions);
  return ByImage;
}

void exterminator::coalesceRegions(std::vector<CorruptionRegion> &Regions) {
  if (Regions.size() < 2)
    return;
  std::sort(Regions.begin(), Regions.end(),
            [](const CorruptionRegion &A, const CorruptionRegion &B) {
              return A.BeginAddress < B.BeginAddress;
            });
  std::vector<CorruptionRegion> Merged;
  Merged.push_back(std::move(Regions.front()));
  for (size_t I = 1; I < Regions.size(); ++I) {
    CorruptionRegion &Last = Merged.back();
    CorruptionRegion &Next = Regions[I];
    if (Next.ImageIndex == Last.ImageIndex &&
        Next.BeginAddress <= Last.EndAddress) {
      if (Next.EndAddress > Last.EndAddress) {
        // Extend; splice in the non-overlapping suffix of Next's bytes.
        const uint64_t Keep = Next.EndAddress - Last.EndAddress;
        Last.Bytes.insert(Last.Bytes.end(), Next.Bytes.end() - Keep,
                          Next.Bytes.end());
        Last.EndAddress = Next.EndAddress;
      }
    } else {
      Merged.push_back(std::move(Next));
    }
  }
  Regions = std::move(Merged);
}

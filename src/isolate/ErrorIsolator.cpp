//===- isolate/ErrorIsolator.cpp - Iterative/replicated isolation ----------===//

#include "isolate/ErrorIsolator.h"

using namespace exterminator;

IsolationResult
exterminator::isolateErrors(const std::vector<HeapImageView> &Views,
                            const IsolationConfig &Config, Executor *Pool) {
  IsolationResult Result;
  if (Views.size() < 2)
    return Result;

  // Dangling overwrites first: identical corruption across images is a
  // dangling pointer with overwhelming probability (Theorem 1), so those
  // objects must not feed the overflow analysis.
  DanglingIsolator Dangling(Views);
  Result.Danglings = Dangling.isolate();

  std::vector<uint64_t> ExcludeIds;
  ExcludeIds.reserve(Result.Danglings.size());
  for (const DanglingFinding &Finding : Result.Danglings)
    ExcludeIds.push_back(Finding.ObjectId);

  OverflowIsolator Overflow(Views, Config.Overflow, Pool);
  OverflowIsolator::Isolation Isolation =
      Overflow.isolateWithOrigins(ExcludeIds, Config.Origin);
  Result.Overflows = std::move(Isolation.Candidates);
  Result.HardwareFaults = std::move(Isolation.Hardware);

  // Patches: every dangling finding defers its site pair; overflows pad
  // the most highly-ranked culprit (§6.1) unless configured otherwise.
  // Hardware findings implicate no site at all — they become page
  // reports, and the correcting allocator retires the pages.
  for (const DanglingFinding &Finding : Result.Danglings)
    Result.Patches.addDeferral(Finding.AllocSite, Finding.FreeSite,
                               Finding.DeferralTicks);
  for (const HardwareFinding &Finding : Result.HardwareFaults)
    Result.Patches.addHardwareReport(Finding.PageAddress, Finding.KindMask,
                                     Finding.EvidenceRegions);
  for (const OverflowCandidate &Candidate : Result.Overflows) {
    if (Candidate.Score < Config.MinPatchScore)
      break; // Ranked: everything after is below threshold too.
    if (Candidate.PadBytes > 0)
      Result.Patches.addPad(Candidate.CulpritAllocSite,
                            Candidate.PadBytes);
    if (Candidate.FrontPadBytes > 0)
      Result.Patches.addFrontPad(Candidate.CulpritAllocSite,
                                 Candidate.FrontPadBytes);
    if (!Config.PatchAllCandidates)
      break;
  }
  return Result;
}

IsolationResult
exterminator::isolateErrors(const std::vector<HeapImage> &Images,
                            const IsolationConfig &Config, Executor *Pool) {
  if (Images.size() < 2)
    return IsolationResult();
  return isolateErrors(makeViews(Images), Config, Pool);
}

//===- isolate/OriginClassifier.cpp - Software-vs-hardware origin ----------===//

#include "isolate/OriginClassifier.h"

#include "diefast/Canary.h"
#include "patch/RuntimePatch.h"

#include <algorithm>
#include <bit>
#include <map>
#include <string>

using namespace exterminator;

namespace {

/// One region that passed the bit-level hardware tests, with the context
/// the correlation / clustering passes need.
struct HardwareCandidate {
  uint32_t ImageIndex;
  uint32_t RegionIndex; // into ByImage[ImageIndex]
  const CorruptionRegion *Region;
  uint64_t SlotRelOffset; // region begin relative to the victim slot
  uint64_t ObjectId;      // last occupant of the victim slot
  std::string XorBytes;   // observed ^ expected, per byte
  uint32_t KindMask = 0;
};

/// Encodes the determinism key: a software bug reproduces the same
/// (logical object, object-relative offset, observed bytes) in every
/// image; a placement-keyed hardware fault cannot.
std::string correlationKey(const HardwareCandidate &Candidate) {
  std::string Key;
  Key.reserve(16 + Candidate.Region->Bytes.size());
  for (int I = 0; I < 8; ++I)
    Key.push_back(static_cast<char>(Candidate.ObjectId >> (8 * I)));
  for (int I = 0; I < 8; ++I)
    Key.push_back(static_cast<char>(Candidate.SlotRelOffset >> (8 * I)));
  Key.append(Candidate.Region->Bytes.begin(), Candidate.Region->Bytes.end());
  return Key;
}

/// Encodes the stuck-cell key: the same absolute cell re-corrupted with
/// the same flipped bits in multiple images of one address space.
std::string cellKey(const HardwareCandidate &Candidate) {
  std::string Key;
  Key.reserve(8 + Candidate.XorBytes.size());
  const uint64_t Address = Candidate.Region->BeginAddress;
  for (int I = 0; I < 8; ++I)
    Key.push_back(static_cast<char>(Address >> (8 * I)));
  Key += Candidate.XorBytes;
  return Key;
}

} // namespace

OriginPartition exterminator::classifyOrigins(
    const std::vector<HeapImageView> &Views,
    const std::vector<std::vector<CorruptionRegion>> &ByImage,
    const OriginClassifierConfig &Config) {
  OriginPartition Out;
  if (!Config.Enabled || Views.size() != ByImage.size()) {
    Out.Software = ByImage;
    return Out;
  }

  // Pass 1 — bit-level shape.  Hardware-like damage is a short region in
  // a canary-filled (free or quarantined) slot whose every byte differs
  // from the known canary value by a small number of flipped bits.
  // Live-object diff regions and dense overflow strings stay software.
  std::vector<HardwareCandidate> Candidates;
  for (uint32_t I = 0; I < ByImage.size(); ++I) {
    const HeapImage &Image = Views[I].image();
    const Canary Pattern = Canary::fromValue(Image.CanaryValue);
    for (uint32_t R = 0; R < ByImage[I].size(); ++R) {
      const CorruptionRegion &Region = ByImage[I][R];
      const uint64_t Length = Region.length();
      if (Length == 0 || Length > Config.MaxRegionBytes ||
          Region.Bytes.size() < Length)
        continue;
      const ImageLocation Loc = Region.Victim;
      if (!Image.isCanaried(Loc))
        continue;
      if (Image.isAllocated(Loc) && !Image.isBad(Loc))
        continue;
      const uint64_t SlotStart = Image.slotAddress(Loc);
      if (Region.BeginAddress < SlotStart)
        continue;
      std::string XorBytes;
      bool Shaped = true;
      for (uint64_t B = 0; B < Length && Shaped; ++B) {
        const uint64_t SlotOffset = Region.BeginAddress - SlotStart + B;
        const uint8_t Diff =
            Region.Bytes[static_cast<size_t>(B)] ^
            Pattern.byteAt(static_cast<size_t>(SlotOffset));
        if (Diff == 0 ||
            std::popcount(unsigned(Diff)) >
                static_cast<int>(Config.MaxFlippedBitsPerByte))
          Shaped = false;
        XorBytes.push_back(static_cast<char>(Diff));
      }
      if (!Shaped)
        continue;
      Candidates.push_back(HardwareCandidate{
          I, R, &Region, Region.BeginAddress - SlotStart,
          Image.objectId(Loc), std::move(XorBytes)});
    }
  }

  // Pass 2 — determinism pull-back.  Evidence reproduced at the same
  // (object, offset, bytes) in two or more images is a deterministic
  // software bug no matter how bit-flip-like it looks (§2.1); drop those
  // candidates back to the software side.
  std::map<std::string, std::pair<uint32_t, bool>> SeenKeys;
  for (const HardwareCandidate &Candidate : Candidates) {
    auto [It, Inserted] = SeenKeys.try_emplace(
        correlationKey(Candidate),
        std::make_pair(Candidate.ImageIndex, false));
    if (!Inserted && It->second.first != Candidate.ImageIndex)
      It->second.second = true; // reproduced in another image
  }
  std::erase_if(Candidates, [&](const HardwareCandidate &Candidate) {
    return SeenKeys.at(correlationKey(Candidate)).second;
  });

  // Pass 3 — stuck-at recurrence: the same cell with the same flipped
  // bits in multiple images means the cell re-corrupts after rewrites.
  std::map<std::string, std::pair<uint32_t, bool>> SeenCells;
  for (const HardwareCandidate &Candidate : Candidates) {
    auto [It, Inserted] = SeenCells.try_emplace(
        cellKey(Candidate), std::make_pair(Candidate.ImageIndex, false));
    if (!Inserted && It->second.first != Candidate.ImageIndex)
      It->second.second = true;
  }
  for (HardwareCandidate &Candidate : Candidates)
    if (SeenCells.at(cellKey(Candidate)).second)
      Candidate.KindMask |= HardwareFaultStuckAt;

  // Pass 4 — spatial clustering: several distinct corrupted slots inside
  // one aligned row window of one image mark the window as a row
  // cluster; lone cells are bit flips.
  const uint64_t Window = std::max<uint64_t>(Config.RowWindowBytes, 8);
  std::map<std::pair<uint32_t, uint64_t>, std::vector<size_t>> Windows;
  for (size_t C = 0; C < Candidates.size(); ++C)
    Windows[{Candidates[C].ImageIndex,
             Candidates[C].Region->BeginAddress / Window}]
        .push_back(C);
  for (const auto &[Key, Members] : Windows) {
    std::vector<std::pair<uint32_t, uint32_t>> Slots;
    for (size_t C : Members)
      Slots.emplace_back(Candidates[C].Region->Victim.MiniheapIndex,
                         Candidates[C].Region->Victim.SlotIndex);
    std::sort(Slots.begin(), Slots.end());
    Slots.erase(std::unique(Slots.begin(), Slots.end()), Slots.end());
    const uint32_t Mask = Slots.size() >= Config.MinClusterSlots
                              ? HardwareFaultRowCluster
                              : HardwareFaultBitFlip;
    for (size_t C : Members)
      Candidates[C].KindMask |= Mask;
  }

  // Pass 5 — page attribution: aggregate diverted regions by 4 KiB page.
  std::map<uint64_t, HardwareFinding> Pages;
  for (const HardwareCandidate &Candidate : Candidates) {
    const uint64_t Page = Candidate.Region->BeginAddress & ~uint64_t(0xfff);
    HardwareFinding &Finding = Pages[Page];
    Finding.PageAddress = Page;
    Finding.KindMask |= Candidate.KindMask;
    ++Finding.EvidenceRegions;
  }
  Out.Hardware.reserve(Pages.size());
  for (const auto &[Page, Finding] : Pages)
    Out.Hardware.push_back(Finding);

  // Software partition: everything not diverted, in collection order, so
  // a pure-software evidence set passes through bit-identically.
  std::vector<std::vector<uint8_t>> Diverted(ByImage.size());
  for (uint32_t I = 0; I < ByImage.size(); ++I)
    Diverted[I].assign(ByImage[I].size(), 0);
  for (const HardwareCandidate &Candidate : Candidates)
    Diverted[Candidate.ImageIndex][Candidate.RegionIndex] = 1;
  Out.Software.resize(ByImage.size());
  for (uint32_t I = 0; I < ByImage.size(); ++I)
    for (uint32_t R = 0; R < ByImage[I].size(); ++R)
      if (!Diverted[I][R])
        Out.Software[I].push_back(ByImage[I][R]);
  return Out;
}

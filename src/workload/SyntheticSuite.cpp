//===- workload/SyntheticSuite.cpp - Figure 7 benchmark suite ----------------===//

#include "workload/SyntheticSuite.h"

#include "support/RandomGenerator.h"

#include <cstring>
#include <deque>

using namespace exterminator;

namespace {
constexpr uint32_t FrameMain = 0x1200;
constexpr uint32_t FrameAlloc = 0x1201;
constexpr uint32_t FrameFree = 0x1202;
} // namespace

WorkloadResult SyntheticWorkload::run(AllocatorHandle &Handle,
                                      uint64_t InputSeed) const {
  WorkloadResult Result;
  RandomGenerator Rng(InputSeed ^ 0x5f37e71cULL);
  CallContext::Scope MainScope(Handle.context(), FrameMain);

  struct LiveObject {
    uint8_t *Ptr;
    uint32_t Bytes;
  };
  std::deque<LiveObject> Window;
  uint64_t Accumulator = 0xcbf29ce484222325ULL ^ InputSeed;

  for (unsigned Op = 0; Op < Profile.Operations; ++Op) {
    // Allocation phase.
    for (unsigned A = 0; A < Profile.AllocsPerOp; ++A) {
      const uint32_t Bytes =
          Profile.MinSize +
          static_cast<uint32_t>(
              Rng.nextBelow(Profile.MaxSize - Profile.MinSize + 1));
      uint8_t *Ptr =
          static_cast<uint8_t *>(Handle.allocate(Bytes, FrameAlloc));
      if (!Ptr) {
        Result.Status = RunStatusKind::Abort;
        return Result;
      }
      // Touch the object: realistic programs initialize what they
      // allocate.
      std::memset(Ptr, static_cast<int>(Accumulator & 0xff), Bytes);
      Window.push_back(LiveObject{Ptr, Bytes});
    }

    // Compute phase: pointer-free arithmetic, the non-allocator time.
    for (unsigned C = 0; C < Profile.ComputePerOp; ++C)
      Accumulator = (Accumulator ^ (Accumulator >> 29)) *
                        0xbf58476d1ce4e5b9ULL +
                    Op + C;

    // Read a window object (memory traffic).
    if (!Window.empty()) {
      const LiveObject &Obj = Window[Rng.nextBelow(Window.size())];
      for (uint32_t Off = 0; Off + 8 <= Obj.Bytes; Off += 8) {
        uint64_t Word;
        std::memcpy(&Word, Obj.Ptr + Off, 8);
        Accumulator ^= Word;
      }
    }

    // Retirement phase: FIFO beyond the live window.
    while (Window.size() > Profile.LiveWindow) {
      Handle.deallocate(Window.front().Ptr, FrameFree);
      Window.pop_front();
    }
  }

  while (!Window.empty()) {
    Handle.deallocate(Window.front().Ptr, FrameFree);
    Window.pop_front();
  }

  for (int B = 0; B < 8; ++B)
    Result.Output.push_back(static_cast<uint8_t>(Accumulator >> (8 * B)));
  return Result;
}

std::vector<SyntheticProfile> exterminator::figure7Profiles() {
  std::vector<SyntheticProfile> Suite;
  // Allocation-intensive group: allocator time is a large share of the
  // run, but each program still computes — ComputePerOp is calibrated to
  // the compute-to-allocation ratios implied by the paper's Figure 7
  // bars (cfrac, the extreme case, spends the least time computing per
  // allocation).
  Suite.push_back({"cfrac", true, 12000, 6, 8, 48, 165, 12});
  Suite.push_back({"espresso", true, 8000, 5, 32, 256, 725, 64});
  Suite.push_back({"lindsay", true, 9000, 4, 16, 96, 460, 48});
  Suite.push_back({"p2c", true, 7000, 4, 24, 160, 330, 96});
  Suite.push_back({"roboop", true, 10000, 5, 40, 200, 385, 32});
  // SPECint2000-like group: compute dominates, allocation is incidental.
  Suite.push_back({"164.gzip", false, 600, 1, 4096, 65536, 24000, 8});
  Suite.push_back({"175.vpr", false, 1200, 2, 32, 512, 9000, 128});
  Suite.push_back({"176.gcc", false, 1500, 4, 16, 512, 6000, 512});
  Suite.push_back({"181.mcf", false, 400, 1, 1024, 16384, 26000, 32});
  Suite.push_back({"186.crafty", false, 300, 1, 64, 256, 40000, 8});
  Suite.push_back({"197.parser", false, 2000, 5, 8, 128, 4000, 256});
  Suite.push_back({"252.eon", false, 1200, 3, 48, 384, 8000, 96});
  Suite.push_back({"253.perlbmk", false, 1600, 4, 16, 256, 5200, 384});
  Suite.push_back({"254.gap", false, 1000, 3, 32, 1024, 9000, 192});
  Suite.push_back({"255.vortex", false, 1400, 4, 40, 512, 5600, 448});
  Suite.push_back({"256.bzip2", false, 500, 1, 8192, 65536, 28000, 8});
  Suite.push_back({"300.twolf", false, 1100, 3, 24, 256, 8800, 160});
  return Suite;
}

//===- workload/TraceWorkload.cpp - Scripted workloads -----------------------===//

#include "workload/TraceWorkload.h"

#include <map>

using namespace exterminator;

WorkloadResult TraceWorkload::run(AllocatorHandle &Handle,
                                  uint64_t /*InputSeed*/) const {
  WorkloadResult Result;
  std::map<uint32_t, uint8_t *> Slots;

  for (const TraceOp &Op : Ops) {
    switch (Op.OpKind) {
    case TraceOp::Kind::Alloc: {
      uint8_t *Ptr =
          static_cast<uint8_t *>(Handle.allocate(Op.Size, Op.SiteToken));
      if (!Ptr) {
        Result.Status = RunStatusKind::Abort;
        return Result;
      }
      Slots[Op.Slot] = Ptr;
      break;
    }
    case TraceOp::Kind::Free: {
      auto It = Slots.find(Op.Slot);
      if (It == Slots.end())
        break;
      // Intentionally keep the pointer: later ops on this slot script
      // use-after-free and double-free scenarios.
      Handle.deallocate(It->second, Op.SiteToken);
      break;
    }
    case TraceOp::Kind::Write: {
      auto It = Slots.find(Op.Slot);
      if (It == Slots.end())
        break;
      for (uint32_t I = 0; I < Op.Length; ++I)
        It->second[Op.Offset + I] = Op.Value;
      break;
    }
    case TraceOp::Kind::WriteBack: {
      auto It = Slots.find(Op.Slot);
      if (It == Slots.end())
        break;
      for (uint32_t I = 0; I < Op.Length; ++I)
        It->second[static_cast<int64_t>(I) - Op.Offset] = Op.Value;
      break;
    }
    case TraceOp::Kind::Read: {
      auto It = Slots.find(Op.Slot);
      if (It == Slots.end())
        break;
      for (uint32_t I = 0; I < Op.Length; ++I)
        Result.Output.push_back(It->second[I]);
      break;
    }
    }
  }
  return Result;
}

//===- workload/MozillaWorkload.cpp - Mozilla bug 307259 scenario ------------===//

#include "workload/MozillaWorkload.h"

#include "support/RandomGenerator.h"

#include <cstring>
#include <vector>

using namespace exterminator;

namespace {
constexpr uint32_t FrameMain = 0x1400;
constexpr uint32_t FrameRenderPage = 0x1401;
constexpr uint32_t FrameDomNode = 0x1402;
constexpr uint32_t FrameStyle = 0x1403;
constexpr uint32_t FrameMouseEvent = 0x1404;
constexpr uint32_t FrameIdnConvert = 0x1405; // the buggy buffer's site
constexpr uint32_t FrameUnloadPage = 0x1406;

constexpr size_t PunycodeBufferBytes = 64;
} // namespace

SiteId MozillaWorkload::overflowSite() {
  CallContext Context;
  Context.pushFrame(FrameMain);
  Context.pushFrame(FrameRenderPage);
  Context.pushFrame(FrameIdnConvert);
  return Context.currentSite();
}

WorkloadResult MozillaWorkload::run(AllocatorHandle &Handle,
                                    uint64_t InputSeed) const {
  WorkloadResult Result;
  // Per-run nondeterminism: the input seed differs run to run (threads,
  // mouse movement), so allocation counts and object ids diverge.
  RandomGenerator Rng(InputSeed ^ 0x307259ULL);
  CallContext::Scope MainScope(Handle.context(), FrameMain);

  uint64_t Digest = 0x6d6f7aULL;

  // One page render: DOM nodes, style objects, mouse-event noise, and an
  // IDN conversion through the (buggy) punycode path.
  auto renderPage = [&](bool UnicodeDomain) -> bool {
    CallContext::Scope PageScope(Handle.context(), FrameRenderPage);
    std::vector<std::pair<uint8_t *, uint32_t>> PageObjects;

    const unsigned DomNodes = 40 + static_cast<unsigned>(Rng.nextBelow(80));
    for (unsigned N = 0; N < DomNodes; ++N) {
      const uint32_t Bytes =
          16u << Rng.nextBelow(5); // 16..256, power of two
      const uint32_t Frame = Rng.chance(0.3) ? FrameStyle : FrameDomNode;
      uint8_t *Ptr = static_cast<uint8_t *>(Handle.allocate(Bytes, Frame));
      if (!Ptr)
        return false;
      std::memset(Ptr, static_cast<int>(N & 0xff), Bytes);
      PageObjects.push_back({Ptr, Bytes});
    }

    // Mouse-move noise: small transient allocations, count random per
    // run.
    const unsigned MouseEvents = static_cast<unsigned>(Rng.nextBelow(24));
    for (unsigned M = 0; M < MouseEvents; ++M) {
      uint8_t *Ptr =
          static_cast<uint8_t *>(Handle.allocate(32, FrameMouseEvent));
      if (!Ptr)
        return false;
      std::memset(Ptr, 0x4d, 32);
      Handle.deallocate(Ptr, FrameMouseEvent);
    }

    // IDN conversion: every page resolves a domain through this site;
    // only a Unicode domain triggers the overrun (bug 307259).
    uint8_t *Punycode = static_cast<uint8_t *>(
        Handle.allocate(PunycodeBufferBytes, FrameIdnConvert));
    if (!Punycode)
      return false;
    const size_t WriteBytes = UnicodeDomain
                                  ? PunycodeBufferBytes + Params.OverrunBytes
                                  : PunycodeBufferBytes;
    for (size_t I = 0; I < WriteBytes; ++I)
      Punycode[I] = static_cast<uint8_t>('x' + (I % 13));
    for (size_t I = 0; I < PunycodeBufferBytes; ++I)
      Digest = (Digest ^ Punycode[I]) * 0x100000001b3ULL;
    Handle.deallocate(Punycode, FrameIdnConvert);

    // Page unload: free this page's DOM.
    for (const auto &[Ptr, Bytes] : PageObjects)
      Handle.deallocate(Ptr, FrameUnloadPage);
    return true;
  };

  // Browser startup: chrome UI, profile and cache structures.  Even a
  // just-started browser has churned through thousands of allocations,
  // which is what makes freed space canary-bearing from the first page.
  {
    CallContext::Scope StartupScope(Handle.context(), FrameRenderPage);
    std::vector<uint8_t *> Startup;
    const unsigned StartupObjects =
        220 + static_cast<unsigned>(Rng.nextBelow(40));
    for (unsigned N = 0; N < StartupObjects; ++N) {
      const uint32_t Bytes = 16u << Rng.nextBelow(5);
      uint8_t *Ptr =
          static_cast<uint8_t *>(Handle.allocate(Bytes, FrameDomNode));
      if (!Ptr) {
        Result.Status = RunStatusKind::Abort;
        return Result;
      }
      std::memset(Ptr, 0x5c, Bytes);
      Startup.push_back(Ptr);
    }
    // Most startup structures are transient.
    for (size_t N = 0; N + 8 < Startup.size(); ++N)
      Handle.deallocate(Startup[N], FrameUnloadPage);
  }

  const unsigned Pages =
      Params.Scenario == MozillaScenario::BrowseThenTrigger
          ? Params.BrowsePages +
                static_cast<unsigned>(Rng.nextBelow(Params.BrowsePages + 1))
          : 0;
  for (unsigned P = 0; P < Pages; ++P) {
    if (!renderPage(/*UnicodeDomain=*/false)) {
      Result.Status = RunStatusKind::Abort;
      return Result;
    }
  }
  if (Params.IncludeTrigger) {
    if (!renderPage(/*UnicodeDomain=*/true)) {
      Result.Status = RunStatusKind::Abort;
      return Result;
    }
  }
  // A little post-trigger activity so DieFast's allocation-time checks
  // get a chance to discover the corruption.
  if (!renderPage(/*UnicodeDomain=*/false)) {
    Result.Status = RunStatusKind::Abort;
    return Result;
  }

  for (int B = 0; B < 8; ++B)
    Result.Output.push_back(static_cast<uint8_t>(Digest >> (8 * B)));
  return Result;
}

//===- workload/SquidWorkload.cpp - Squid 2.3s5 scenario ---------------------===//

#include "workload/SquidWorkload.h"

#include "support/RandomGenerator.h"

#include <cstring>

using namespace exterminator;

namespace {
constexpr uint32_t FrameMain = 0x1300;
constexpr uint32_t FrameHandleRequest = 0x1301;
constexpr uint32_t FrameRewriteUrl = 0x1302;   // the buggy buffer's site
constexpr uint32_t FrameConnState = 0x1303;
constexpr uint32_t FrameRelease = 0x1304;

constexpr size_t UrlBufferBytes = 64;
} // namespace

SiteId SquidWorkload::overflowSite() {
  // The rewrite buffer is allocated under main → handleRequest →
  // rewriteUrl; reproduce the context hash the heap records.
  CallContext Context;
  Context.pushFrame(FrameMain);
  Context.pushFrame(FrameHandleRequest);
  Context.pushFrame(FrameRewriteUrl);
  return Context.currentSite();
}

WorkloadResult SquidWorkload::run(AllocatorHandle &Handle,
                                  uint64_t InputSeed) const {
  WorkloadResult Result;
  RandomGenerator Rng(InputSeed ^ 0x5041dULL);
  CallContext::Scope MainScope(Handle.context(), FrameMain);

  uint64_t Digest = 0x811c9dc5;
  for (unsigned R = 0; R < Params.Requests; ++R) {
    CallContext::Scope RequestScope(Handle.context(), FrameHandleRequest);

    // Per-connection state object.
    uint8_t *Conn =
        static_cast<uint8_t *>(Handle.allocate(48, FrameConnState));
    if (!Conn) {
      Result.Status = RunStatusKind::Abort;
      return Result;
    }
    std::memset(Conn, 0xab, 48);

    // URL rewrite: a fixed 64-byte buffer, as in Squid's buggy path.
    uint8_t *Url = static_cast<uint8_t *>(
        Handle.allocate(UrlBufferBytes, FrameRewriteUrl));
    if (!Url) {
      Result.Status = RunStatusKind::Abort;
      return Result;
    }

    const bool Malformed =
        Params.IncludeTrigger && R == Params.TriggerIndex;
    // The bug: %-escape expansion is under-counted for malformed
    // requests, so the rewrite writes OverrunBytes past the buffer.
    const size_t WriteBytes =
        Malformed ? UrlBufferBytes + Params.OverrunBytes : UrlBufferBytes;
    for (size_t I = 0; I < WriteBytes; ++I)
      Url[I] = static_cast<uint8_t>('a' + ((R + I) % 23));

    // Serve the request: fold the rewritten URL into the response digest.
    for (size_t I = 0; I < UrlBufferBytes; ++I)
      Digest = (Digest ^ Url[I]) * 0x01000193u;
    // Benign jitter in connection lifetime.
    if (Rng.chance(0.7)) {
      Handle.deallocate(Url, FrameRelease);
      Handle.deallocate(Conn, FrameRelease);
    } else {
      Handle.deallocate(Conn, FrameRelease);
      Handle.deallocate(Url, FrameRelease);
    }

    for (int B = 0; B < 4; ++B)
      Result.Output.push_back(static_cast<uint8_t>(Digest >> (8 * B)));
  }
  return Result;
}

//===- workload/EspressoWorkload.h - espresso-like program -----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An espresso-like workload: the PLA-minimizer espresso is the paper's
/// fault-injection target (§7.2) and a standard allocation-intensive
/// memory-management benchmark.  This miniature reproduces the traits the
/// experiments depend on:
///
///  * bitset ("cube") objects of power-of-two sizes, so buffers fill
///    their DieHard slot exactly and overflows escape into neighbors;
///  * several distinct allocation and deallocation call paths (site
///    diversity for site-keyed patches);
///  * pointer-bearing objects (exercises the isolator's logical-pointer
///    masking, §4.1);
///  * three usage archetypes that make injected dangling pointers behave
///    as in the paper: read-write cubes (overwrite the canary →
///    isolable), read-only cubes (read the canary, "treat it as valid
///    data, and either crash or abort"), and indirect cubes whose stored
///    pointers/indexes spray writes when stale (cascading corruption);
///  * integrity checks (magic/tag words) standing in for the ways real
///    programs notice impossible states.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_ESPRESSOWORKLOAD_H
#define EXTERMINATOR_WORKLOAD_ESPRESSOWORKLOAD_H

#include "workload/Workload.h"

namespace exterminator {

/// Size/shape knobs for the espresso-like program.
struct EspressoParams {
  /// Cover-minimization rounds.
  unsigned Rounds = 60;
  /// Cubes allocated per round.
  unsigned CubesPerRound = 12;
  /// Cap on simultaneously live cubes.
  unsigned MaxLive = 96;
};

/// The espresso-like workload.
class EspressoWorkload : public Workload {
public:
  explicit EspressoWorkload(const EspressoParams &Params = EspressoParams())
      : Params(Params) {}

  const char *name() const override { return "espresso"; }

  WorkloadResult run(AllocatorHandle &Handle,
                     uint64_t InputSeed) const override;

private:
  EspressoParams Params;
};

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_ESPRESSOWORKLOAD_H

//===- workload/Workload.cpp - Workload interface ---------------------------===//

#include "workload/Workload.h"

using namespace exterminator;

// Out-of-line virtual anchor.
Workload::~Workload() = default;

//===- workload/TraceWorkload.h - Scripted workloads -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scripted workload: a fixed list of allocator operations, including
/// deliberately buggy ones (overruns, writes through freed pointers).
/// Tests and benches use it to construct precise error scenarios with
/// known culprits, victims, and extents.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_TRACEWORKLOAD_H
#define EXTERMINATOR_WORKLOAD_TRACEWORKLOAD_H

#include "workload/Workload.h"

#include <vector>

namespace exterminator {

/// One scripted operation.  Slots name objects across operations.
struct TraceOp {
  enum class Kind : uint8_t {
    /// Allocate Size bytes into Slot under SiteToken.
    Alloc,
    /// Free Slot under SiteToken (the pointer is remembered — freeing
    /// twice scripts a double free).
    Free,
    /// Write Length bytes of Value at Offset from Slot's pointer.
    /// Offset + Length may exceed the allocation: that is an overflow,
    /// or a use-after-free if the slot was freed.
    Write,
    /// Write Length bytes of Value starting Offset bytes *before* Slot's
    /// pointer: a backward overflow (underrun).
    WriteBack,
    /// Fold Slot's first Length bytes into the output.
    Read,
  };

  Kind OpKind = Kind::Alloc;
  uint32_t Slot = 0;
  uint32_t Size = 0;
  uint32_t SiteToken = 0;
  uint32_t Offset = 0;
  uint32_t Length = 0;
  uint8_t Value = 0;

  static TraceOp alloc(uint32_t Slot, uint32_t Size, uint32_t SiteToken) {
    TraceOp Op;
    Op.OpKind = Kind::Alloc;
    Op.Slot = Slot;
    Op.Size = Size;
    Op.SiteToken = SiteToken;
    return Op;
  }
  static TraceOp free(uint32_t Slot, uint32_t SiteToken) {
    TraceOp Op;
    Op.OpKind = Kind::Free;
    Op.Slot = Slot;
    Op.SiteToken = SiteToken;
    return Op;
  }
  static TraceOp write(uint32_t Slot, uint32_t Offset, uint32_t Length,
                       uint8_t Value) {
    TraceOp Op;
    Op.OpKind = Kind::Write;
    Op.Slot = Slot;
    Op.Offset = Offset;
    Op.Length = Length;
    Op.Value = Value;
    return Op;
  }
  static TraceOp writeBack(uint32_t Slot, uint32_t BytesBefore,
                           uint32_t Length, uint8_t Value) {
    TraceOp Op;
    Op.OpKind = Kind::WriteBack;
    Op.Slot = Slot;
    Op.Offset = BytesBefore;
    Op.Length = Length;
    Op.Value = Value;
    return Op;
  }
  static TraceOp read(uint32_t Slot, uint32_t Length) {
    TraceOp Op;
    Op.OpKind = Kind::Read;
    Op.Slot = Slot;
    Op.Length = Length;
    return Op;
  }
};

/// Replays a fixed operation list.
class TraceWorkload : public Workload {
public:
  explicit TraceWorkload(std::vector<TraceOp> Ops) : Ops(std::move(Ops)) {}

  const char *name() const override { return "trace"; }

  WorkloadResult run(AllocatorHandle &Handle,
                     uint64_t InputSeed) const override;

private:
  std::vector<TraceOp> Ops;
};

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_TRACEWORKLOAD_H

//===- workload/Workload.h - Workload interface ----------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between "application programs" and the Exterminator
/// runtime.  A Workload is a deterministic program parameterized by an
/// input seed: given the same input it performs the same sequence of
/// allocations, frees, reads, and writes regardless of how the heap
/// randomizes placement — exactly the property Exterminator's iterative
/// and replicated modes rely on.  Workloads produce an output byte stream
/// (what the replicated-mode voter compares) and report how the run ended.
///
/// The AllocatorHandle bundles the allocator with the shared CallContext
/// (so allocation/deallocation sites are recorded, §3.2) and provides the
/// pointer-validity probe that stands in for a hardware trap: a stored
/// pointer overwritten by a canary has its low bit set and never points at
/// a live object, so dereferencing it "segfaults" (§3.3).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_WORKLOAD_H
#define EXTERMINATOR_WORKLOAD_WORKLOAD_H

#include "alloc/Allocator.h"
#include "alloc/DieHardHeap.h"
#include "support/SiteHash.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// How a run ended.
enum class RunStatusKind {
  /// Ran to completion with output.
  Success,
  /// Simulated segmentation fault (wild pointer dereference).
  Crash,
  /// The program detected an impossible state and aborted.
  Abort,
};

/// What a run produced.
struct WorkloadResult {
  RunStatusKind Status = RunStatusKind::Success;
  /// The program's output; replicas vote on byte equality.
  std::vector<uint8_t> Output;
};

/// The allocator as seen by a workload.
class AllocatorHandle {
public:
  /// \param Heap the underlying randomized heap when one exists (null for
  ///        baseline allocators; pointer probes then always succeed).
  AllocatorHandle(Allocator &Alloc, CallContext &Context,
                  const DieHardHeap *Heap)
      : Alloc(Alloc), Context(Context), Heap(Heap) {}

  /// Allocates under a one-frame call context extension, so \p SiteToken
  /// becomes the innermost frame of the recorded allocation site.
  void *allocate(size_t Size, uint32_t SiteToken) {
    CallContext::Scope Scope(Context, SiteToken);
    return Alloc.allocate(Size);
  }

  /// Frees under a one-frame call context extension.
  void deallocate(void *Ptr, uint32_t SiteToken) {
    CallContext::Scope Scope(Context, SiteToken);
    Alloc.deallocate(Ptr);
  }

  /// Simulates a pointer dereference: false means the access would trap.
  /// Faithful to a real process: freed heap memory is still mapped and
  /// reads fine (returning canaries or stale data); only addresses
  /// outside the heap trap — exactly what happens when a program
  /// dereferences a canary value it read through a dangling pointer
  /// (§3.3: the canary's set low bit guarantees it is never a valid
  /// object address).
  bool isLive(const void *Ptr) const {
    if (!Heap)
      return Ptr != nullptr;
    return Heap->findObject(Ptr).has_value();
  }

  CallContext &context() { return Context; }
  Allocator &allocator() { return Alloc; }
  const DieHardHeap *heap() const { return Heap; }

private:
  Allocator &Alloc;
  CallContext &Context;
  const DieHardHeap *Heap;
};

/// A deterministic application program.
class Workload {
public:
  virtual ~Workload();

  virtual const char *name() const = 0;

  /// Executes the program against \p Handle.  Must be deterministic in
  /// \p InputSeed: heap randomization may change *addresses* but never
  /// the logical allocation/free/output sequence of a successful run.
  ///
  /// const because replicated mode (§3.4, Figure 5) calls run()
  /// concurrently from several replicas over one Workload object: all
  /// per-run state must live in locals (or be internally synchronized),
  /// never in members.
  virtual WorkloadResult run(AllocatorHandle &Handle,
                             uint64_t InputSeed) const = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_WORKLOAD_H

//===- workload/EspressoWorkload.cpp - espresso-like program ----------------===//

#include "workload/EspressoWorkload.h"

#include "support/RandomGenerator.h"

#include <cstring>
#include <vector>

using namespace exterminator;

namespace {

/// Object layout: a 16-byte header followed by bitset words, sized so the
/// whole cube is an exact power of two (full DieHard slot).
struct CubeHeader {
  uint16_t Magic;
  /// Payload words after the header; peers read it to stay in bounds.
  uint16_t Words;
  uint32_t Tag;
  /// For indirect cubes: a pointer to a peer cube (pointer-equivalence
  /// masking food) — stored as the raw address.
  uint64_t Peer;
};

constexpr uint16_t CubeMagic = 0xCB5Eu;

/// Cube archetypes: how the program uses the object after creation.
enum class CubeUse : uint8_t {
  ReadWrite, // intersected in place (writes through the pointer)
  ReadOnly,  // only folded into checksums
  Indirect,  // holds a pointer + index used to write into peers
};

struct CubeRef {
  uint8_t *Ptr = nullptr;
  uint32_t Bytes = 0;
  uint32_t Tag = 0;
  CubeUse Use = CubeUse::ReadOnly;
};

/// Cube sizes: exact powers of two, biased small like espresso's cubes.
uint32_t pickCubeBytes(RandomGenerator &Rng) {
  switch (Rng.nextBelow(10)) {
  case 0:
  case 1:
  case 2:
  case 3:
    return 32;
  case 4:
  case 5:
  case 6:
    return 64;
  case 7:
  case 8:
    return 128;
  default:
    return 256;
  }
}

/// Allocation-site frame tokens: distinct call paths into the allocator,
/// as espresso allocates cubes from parse/expand/reduce/irredundant.
constexpr uint32_t FrameMain = 0x1000;
constexpr uint32_t AllocFrames[] = {0x2001, 0x2002, 0x2003, 0x2004};
constexpr uint32_t FreeFrames[] = {0x3001, 0x3002, 0x3003};

} // namespace

WorkloadResult EspressoWorkload::run(AllocatorHandle &Handle,
                                     uint64_t InputSeed) const {
  WorkloadResult Result;
  RandomGenerator Rng(InputSeed ^ 0xe59e550ULL);
  CallContext::Scope MainScope(Handle.context(), FrameMain);

  std::vector<CubeRef> Table;
  Table.reserve(Params.MaxLive + Params.CubesPerRound);
  uint64_t Checksum = 0x9dc5;

  auto emitOutput = [&](uint64_t Value) {
    for (int B = 0; B < 8; ++B)
      Result.Output.push_back(static_cast<uint8_t>(Value >> (8 * B)));
  };

  auto abortRun = [&]() {
    Result.Status = RunStatusKind::Abort;
    return Result;
  };
  auto crashRun = [&]() {
    Result.Status = RunStatusKind::Crash;
    return Result;
  };

  for (unsigned Round = 0; Round < Params.Rounds; ++Round) {
    // --- Allocation phase: fresh cubes from a round-dependent call path.
    for (unsigned C = 0; C < Params.CubesPerRound; ++C) {
      CubeRef Cube;
      Cube.Bytes = pickCubeBytes(Rng);
      Cube.Tag = Rng.next32();
      const unsigned UsePick = static_cast<unsigned>(Rng.nextBelow(10));
      Cube.Use = UsePick < 4   ? CubeUse::ReadWrite
                 : UsePick < 8 ? CubeUse::ReadOnly
                               : CubeUse::Indirect;
      const uint32_t Frame = AllocFrames[(Round / 4 + C) % 4];
      Cube.Ptr = static_cast<uint8_t *>(Handle.allocate(Cube.Bytes, Frame));
      if (!Cube.Ptr)
        return abortRun();

      CubeHeader Header;
      Header.Magic = CubeMagic;
      Header.Words =
          static_cast<uint16_t>((Cube.Bytes - sizeof(CubeHeader)) / 8);
      Header.Tag = Cube.Tag;
      Header.Peer = 0;
      std::memcpy(Cube.Ptr, &Header, sizeof(Header));
      // Bitset payload: deterministic program data.
      for (uint32_t Off = sizeof(CubeHeader); Off + 8 <= Cube.Bytes; Off += 8) {
        uint64_t Word = Rng.next();
        std::memcpy(Cube.Ptr + Off, &Word, 8);
      }
      if (Cube.Use == CubeUse::Indirect && !Table.empty()) {
        // Point at an existing cube (address differs per heap; the
        // isolator must recognize it as the same logical pointer).
        const CubeRef &Peer = Table[Rng.nextBelow(Table.size())];
        uint64_t PeerAddr = reinterpret_cast<uint64_t>(Peer.Ptr);
        std::memcpy(Cube.Ptr + offsetof(CubeHeader, Peer), &PeerAddr, 8);
      }
      Table.push_back(Cube);
    }

    // --- Compute phase: espresso-style cover manipulation.
    for (unsigned Step = 0; Step < Params.CubesPerRound * 6; ++Step) {
      if (Table.empty())
        break;
      CubeRef &Cube = Table[Rng.nextBelow(Table.size())];

      switch (Cube.Use) {
      case CubeUse::ReadOnly: {
        // Read-only cubes validate their header first: canary-filled or
        // recycled cubes fail here, which is how a dangled read turns
        // into an abort (§7.2, "reads a canary value through the dangled
        // pointer, treats it as valid data, and ... aborts").
        CubeHeader Header;
        std::memcpy(&Header, Cube.Ptr, sizeof(Header));
        if (Header.Magic != CubeMagic)
          return abortRun();
        for (uint32_t Off = sizeof(CubeHeader); Off + 8 <= Cube.Bytes;
             Off += 8) {
          uint64_t Word;
          std::memcpy(&Word, Cube.Ptr + Off, 8);
          Checksum = (Checksum ^ Word) * 0x100000001b3ULL;
        }
        break;
      }
      case CubeUse::ReadWrite: {
        // Working cubes are recomputed in place without validation, the
        // way espresso rewrites cover rows.  The written words are pure
        // program data — deterministic in the input — so a write through
        // a dangling pointer overwrites the canary *identically in every
        // run*: exactly the evidence DanglingIsolator keys on (§4.2).
        for (uint32_t Off = sizeof(CubeHeader); Off + 8 <= Cube.Bytes;
             Off += 8) {
          uint64_t Word = (0x9e3779b97f4a7c15ULL + Cube.Tag) *
                          (Off + 0x51ed2701u);
          std::memcpy(Cube.Ptr + Off, &Word, 8);
          Checksum += Word;
        }
        break;
      }
      case CubeUse::Indirect: {
        // Follow the stored peer pointer; dereferencing a canary value
        // (low bit set, no live object there) is a simulated segfault.
        uint64_t PeerAddr;
        std::memcpy(&PeerAddr, Cube.Ptr + offsetof(CubeHeader, Peer), 8);
        if (PeerAddr == 0)
          break;
        uint8_t *Peer = reinterpret_cast<uint8_t *>(PeerAddr);
        if (!Handle.isLive(Peer))
          return crashRun();
        // Spray a short run of words into the peer (the cascade vector:
        // when this cube's contents are stale, these writes land in
        // whatever now sits at the old peer address).  The peer's own
        // header bounds the write.
        CubeHeader PeerHeader;
        std::memcpy(&PeerHeader, Peer, sizeof(PeerHeader));
        if (PeerHeader.Magic != CubeMagic)
          return abortRun();
        const uint32_t SprayWords =
            PeerHeader.Words < 4 ? PeerHeader.Words : 4;
        for (uint32_t W = 0; W < SprayWords; ++W) {
          // Derived from the peer's own tag (not global state): a wild
          // read elsewhere must not diffuse into every peer write.
          uint64_t Word = PeerHeader.Tag * 0x9e3779b97f4a7c15ULL + W;
          std::memcpy(Peer + sizeof(CubeHeader) + 8 * W, &Word, 8);
        }
        Checksum += PeerHeader.Tag;
        break;
      }
      }
    }

    // --- Free phase: drop cubes back to the cap through one of several
    // deallocation call paths (site-pair diversity for deferral patches).
    while (Table.size() > Params.MaxLive) {
      const size_t Pick = Rng.chance(0.5) ? Table.size() - 1
                                          : Rng.nextBelow(Table.size());
      const uint32_t Frame = FreeFrames[Round % 3];
      // A correct program unlinks references before freeing: clear any
      // peer pointers aimed at the dying cube.
      const uint64_t Dying = reinterpret_cast<uint64_t>(Table[Pick].Ptr);
      for (CubeRef &Other : Table) {
        if (Other.Use != CubeUse::Indirect || Other.Ptr == Table[Pick].Ptr)
          continue;
        uint64_t PeerAddr;
        std::memcpy(&PeerAddr, Other.Ptr + offsetof(CubeHeader, Peer), 8);
        if (PeerAddr == Dying) {
          const uint64_t Zero = 0;
          std::memcpy(Other.Ptr + offsetof(CubeHeader, Peer), &Zero, 8);
        }
      }
      Handle.deallocate(Table[Pick].Ptr, Frame);
      Table.erase(Table.begin() + Pick);
    }

    emitOutput(Checksum);
  }

  // Teardown: free the survivors.
  for (const CubeRef &Cube : Table)
    Handle.deallocate(Cube.Ptr, FreeFrames[2]);
  emitOutput(Checksum * 0x2545f4914f6cdd1dULL);
  return Result;
}

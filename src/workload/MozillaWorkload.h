//===- workload/MozillaWorkload.h - Mozilla bug 307259 scenario *- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Mozilla scenario (§7.2): a heap overflow in Mozilla 1.7.3 /
/// Firefox 1.0.6 processing Unicode characters in domain names
/// (bug 307259).  Mozilla is multi-threaded and allocation behavior
/// diverges across runs even from mouse movement, so neither iterative
/// nor replicated mode can match objects across runs — this is the
/// paper's showcase for cumulative mode.
///
/// This miniature renders a nondeterministic number of "pages" (per-run
/// random DOM allocations and mouse-noise allocations), each of which
/// also exercises the IDN punycode-conversion allocation site with benign
/// domains; the error-triggering page converts a Unicode domain and
/// overruns the conversion buffer.  Two case studies match the paper:
/// trigger immediately (a testing environment with a proof-of-concept
/// input) or browse first (deployed use).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_MOZILLAWORKLOAD_H
#define EXTERMINATOR_WORKLOAD_MOZILLAWORKLOAD_H

#include "workload/Workload.h"

namespace exterminator {

/// Which §7.2 case study to run.
enum class MozillaScenario {
  /// Start the browser and immediately load the triggering page.
  ImmediateTrigger,
  /// Navigate a per-run-random selection of pages first.
  BrowseThenTrigger,
};

/// Shape of the Mozilla scenario.
struct MozillaParams {
  MozillaScenario Scenario = MozillaScenario::ImmediateTrigger;
  /// Pages browsed before the trigger (BrowseThenTrigger).
  unsigned BrowsePages = 6;
  /// Bytes written past the 64-byte punycode buffer.
  unsigned OverrunBytes = 17;
  /// Include the triggering page at all (false = clean baseline).
  bool IncludeTrigger = true;
};

/// The Mozilla-like browser.
class MozillaWorkload : public Workload {
public:
  explicit MozillaWorkload(const MozillaParams &Params = MozillaParams())
      : Params(Params) {}

  const char *name() const override { return "mozilla"; }

  WorkloadResult run(AllocatorHandle &Handle,
                     uint64_t InputSeed) const override;

  /// The punycode buffer's allocation-site hash (the true culprit).
  static SiteId overflowSite();

private:
  MozillaParams Params;
};

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_MOZILLAWORKLOAD_H

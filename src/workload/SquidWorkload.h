//===- workload/SquidWorkload.h - Squid 2.3s5 scenario ---------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Squid web-cache scenario (§7.2, "Real Faults").  Squid 2.3.STABLE5
/// contains a buffer overflow: certain inputs make it overrun a
/// heap-allocated buffer by a handful of bytes, crashing it under the GNU
/// libc allocator.  Running under Exterminator, the overflow corrupts a
/// canary instead; three iterative runs isolate a single allocation site
/// and generate a pad of exactly 6 bytes.
///
/// This miniature serves a stream of requests; a malformed request (a
/// URL whose %-escape decoding is under-counted, enabled by
/// \c IncludeTrigger) makes the URL-rewrite path write 6 bytes past its
/// 64-byte buffer — a 64-byte request fills its DieHard slot exactly, so
/// the overrun escapes into the adjacent slot.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_SQUIDWORKLOAD_H
#define EXTERMINATOR_WORKLOAD_SQUIDWORKLOAD_H

#include "workload/Workload.h"

namespace exterminator {

/// Shape of the Squid scenario.
struct SquidParams {
  /// Requests served per run.
  unsigned Requests = 150;
  /// Which request is malformed (0-based).
  unsigned TriggerIndex = 75;
  /// Serve the malformed request at all (false = clean baseline).
  bool IncludeTrigger = true;
  /// Bytes the buggy rewrite writes past the buffer (Squid's is 6).
  unsigned OverrunBytes = 6;
};

/// The Squid-like cache server.
class SquidWorkload : public Workload {
public:
  explicit SquidWorkload(const SquidParams &Params = SquidParams())
      : Params(Params) {}

  const char *name() const override { return "squid"; }

  WorkloadResult run(AllocatorHandle &Handle,
                     uint64_t InputSeed) const override;

  /// The buggy buffer's allocation-site hash, for checking that
  /// isolation fingered the right site (computed from the frame tokens
  /// this workload uses).
  static SiteId overflowSite();

private:
  SquidParams Params;
};

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_SQUIDWORKLOAD_H

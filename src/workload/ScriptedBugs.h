//===- workload/ScriptedBugs.h - Canonical buggy traces --------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical scripted memory errors used wherever deterministic,
/// reliably-isolating evidence is needed: the diagnosis and exchange
/// tests, the exchange bench, `xtermtool record`, and the collaborative
/// example.  One definition keeps "what makes a trace isolate" (slot
/// exactness, churn that canaries the neighborhood, trailing activity
/// that trips DieFast) in one place instead of drifting across copies.
///
/// Both traces run to completion, so end-of-run images of the same trace
/// under different heap seeds share one allocation time — exactly the
/// comparable image set §4 isolation wants, without the replay protocol.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_SCRIPTEDBUGS_H
#define EXTERMINATOR_WORKLOAD_SCRIPTEDBUGS_H

#include "runtime/Exterminator.h"
#include "workload/TraceWorkload.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// Frame tokens of the canonical traces (the sites findings point at
/// are the hashes of these via CallContext).
struct ScriptedBugSites {
  uint32_t Culprit = 0x100;   ///< the buggy allocation
  uint32_t Bystander = 0x200; ///< innocent allocations
  uint32_t Free = 0x300;      ///< all frees
};

/// A slot-exact 64-byte buffer overrun by \p OverflowBytes amid canaried
/// churn: six rounds of alloc/free churn leave freed, canaried slots
/// around the culprit, then trailing alloc/free pairs give DieFast
/// checks a chance to fire.  Three end-of-run images of this trace
/// reliably isolate the culprit site with a pad ≥ OverflowBytes.
inline std::vector<TraceOp>
scriptedOverflowTrace(uint32_t OverflowBytes,
                      const ScriptedBugSites &Sites = {}) {
  std::vector<TraceOp> Ops;
  for (uint32_t Round = 0; Round < 6; ++Round) {
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(
          TraceOp::alloc(1000 + Round * 30 + I, 64, Sites.Bystander));
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::free(1000 + Round * 30 + I, Sites.Free));
  }
  for (uint32_t I = 0; I < 24; ++I)
    Ops.push_back(TraceOp::alloc(I, 64, Sites.Bystander));
  for (uint32_t I = 0; I < 24; I += 2)
    Ops.push_back(TraceOp::free(I, Sites.Free));
  Ops.push_back(TraceOp::alloc(100, 64, Sites.Culprit));
  Ops.push_back(TraceOp::write(100, 0, 64, 0x11));
  Ops.push_back(TraceOp::write(100, 64, OverflowBytes, 0x77));
  for (uint32_t I = 200; I < 212; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, Sites.Bystander));
    Ops.push_back(TraceOp::free(I, Sites.Free));
  }
  return Ops;
}

/// A write through a dangling pointer: the culprit object is freed (and
/// canary-filled), bystander churn follows, then the stale pointer
/// writes into the freed slot.
inline std::vector<TraceOp>
scriptedDanglingTrace(const ScriptedBugSites &Sites = {}) {
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 16; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, Sites.Bystander));
  Ops.push_back(TraceOp::alloc(50, 64, Sites.Culprit));
  Ops.push_back(TraceOp::free(50, Sites.Free));
  for (uint32_t I = 100; I < 106; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, Sites.Bystander));
  Ops.push_back(TraceOp::write(50, 8, 16, 0x3c));
  for (uint32_t I = 200; I < 204; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, Sites.Bystander));
  return Ops;
}

/// A bug-free trace with the same canaried churn as the overflow trace:
/// every write stays in bounds, so any corruption in its end-of-run
/// images comes from an injected hardware fault (PR 9).  The churn
/// leaves plenty of freed, canary-filled slots — exactly the victims
/// the hardware fault models prefer, since flips there are visible to
/// the canary sweep.
inline std::vector<TraceOp>
scriptedHardwareTrace(const ScriptedBugSites &Sites = {}) {
  std::vector<TraceOp> Ops;
  for (uint32_t Round = 0; Round < 6; ++Round) {
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(
          TraceOp::alloc(1000 + Round * 30 + I, 64, Sites.Bystander));
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::free(1000 + Round * 30 + I, Sites.Free));
  }
  for (uint32_t I = 0; I < 24; ++I)
    Ops.push_back(TraceOp::alloc(I, 64, Sites.Bystander));
  for (uint32_t I = 0; I < 24; I += 2)
    Ops.push_back(TraceOp::free(I, Sites.Free));
  for (uint32_t I = 200; I < 212; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, Sites.Bystander));
    Ops.push_back(TraceOp::free(I, Sites.Free));
  }
  return Ops;
}

/// The canonical evidence set: \p Count end-of-run images of the
/// scripted overflow under the canonical heap seeds (1000, 8919, …).
/// `xtermtool record`, the exchange bench, and CI all draw from this
/// one definition, so the evidence CI submits is exactly the evidence
/// the bench measures.
inline std::vector<HeapImage>
scriptedEvidenceImages(unsigned Count, uint32_t OverflowBytes,
                       const ScriptedBugSites &Sites = {}) {
  const std::vector<TraceOp> Ops = scriptedOverflowTrace(OverflowBytes, Sites);
  ExterminatorConfig Config;
  std::vector<HeapImage> Images;
  Images.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    TraceWorkload Work(Ops);
    Images.push_back(runWorkloadOnce(Work, /*InputSeed=*/1,
                                     /*HeapSeed=*/1000 + I * 7919, Config,
                                     PatchSet())
                         .FinalImage);
  }
  return Images;
}

/// Hardware-fault evidence: \p Count end-of-run images of the bug-free
/// churn trace with \p Fault injected in every replica.  Same canonical
/// heap seeds as scriptedEvidenceImages, so the corruption each image
/// carries is placement-keyed to *its* heap layout — decorrelated
/// across replicas, which is precisely the signature the origin
/// classifier keys on.
inline std::vector<HeapImage>
scriptedHardwareEvidenceImages(unsigned Count, const FaultPlan &Fault,
                               const ScriptedBugSites &Sites = {}) {
  const std::vector<TraceOp> Ops = scriptedHardwareTrace(Sites);
  ExterminatorConfig Config;
  Config.Fault = Fault;
  std::vector<HeapImage> Images;
  Images.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    TraceWorkload Work(Ops);
    Images.push_back(runWorkloadOnce(Work, /*InputSeed=*/1,
                                     /*HeapSeed=*/1000 + I * 7919, Config,
                                     PatchSet())
                         .FinalImage);
  }
  return Images;
}

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_SCRIPTEDBUGS_H

//===- workload/SyntheticSuite.h - Figure 7 benchmark suite ----*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 7 benchmark suite: allocation-intensive programs (cfrac,
/// espresso, lindsay, p2c, roboop) and SPECint2000-like programs.  SPEC
/// sources and inputs are not redistributable, so each benchmark is
/// modelled as a synthetic workload matching its *allocation profile* —
/// allocations per operation, object size distribution, live-set shape,
/// and compute-to-allocation ratio.  Allocator overhead (what Figure 7
/// measures) is a function of exactly these parameters: the
/// allocation-intensive group spends most of its time in the allocator,
/// the SPEC group mostly computes (see DESIGN.md, substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_SYNTHETICSUITE_H
#define EXTERMINATOR_WORKLOAD_SYNTHETICSUITE_H

#include "workload/Workload.h"

#include <memory>
#include <vector>

namespace exterminator {

/// Allocation profile of one benchmark.
struct SyntheticProfile {
  const char *Name = "";
  /// True for the allocation-intensive group, false for SPEC-like.
  bool AllocationIntensive = false;
  /// Outer operations.
  unsigned Operations = 1000;
  /// Allocations per operation.
  unsigned AllocsPerOp = 4;
  /// Requested sizes drawn uniformly from [MinSize, MaxSize].
  unsigned MinSize = 16;
  unsigned MaxSize = 128;
  /// Arithmetic iterations per operation (non-allocator work).
  unsigned ComputePerOp = 64;
  /// Live objects kept in a FIFO window before being freed.
  unsigned LiveWindow = 64;
};

/// A program generated from an allocation profile.
class SyntheticWorkload : public Workload {
public:
  explicit SyntheticWorkload(const SyntheticProfile &Profile)
      : Profile(Profile) {}

  const char *name() const override { return Profile.Name; }

  WorkloadResult run(AllocatorHandle &Handle,
                     uint64_t InputSeed) const override;

  const SyntheticProfile &profile() const { return Profile; }

private:
  SyntheticProfile Profile;
};

/// The Figure 7 roster: allocation-intensive suite then SPECint-like
/// suite, in the paper's order.
std::vector<SyntheticProfile> figure7Profiles();

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_SYNTHETICSUITE_H

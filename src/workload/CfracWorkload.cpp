//===- workload/CfracWorkload.cpp - cfrac-like program -----------------------===//

#include "workload/CfracWorkload.h"

#include "support/RandomGenerator.h"

#include <cstring>

using namespace exterminator;

namespace {
constexpr uint32_t FrameMain = 0x1100;
constexpr uint32_t FrameNewLimbs = 0x1101;
constexpr uint32_t FrameTemp = 0x1102;
constexpr uint32_t FrameFreeLimbs = 0x1103;
} // namespace

WorkloadResult CfracWorkload::run(AllocatorHandle &Handle,
                                  uint64_t InputSeed) const {
  WorkloadResult Result;
  RandomGenerator Rng(InputSeed ^ 0xcf2acULL);
  CallContext::Scope MainScope(Handle.context(), FrameMain);

  uint64_t Accumulator = InputSeed | 1;
  for (unsigned Step = 0; Step < Params.Steps; ++Step) {
    // Bignum "multiply": two operand limb arrays and a result, all small
    // and immediately dead — the classic cfrac churn.
    const size_t LimbsA = 1 + Rng.nextBelow(4);
    const size_t LimbsB = 1 + Rng.nextBelow(4);
    uint64_t *A = static_cast<uint64_t *>(
        Handle.allocate(LimbsA * 8, FrameNewLimbs));
    uint64_t *B = static_cast<uint64_t *>(
        Handle.allocate(LimbsB * 8, FrameNewLimbs));
    uint64_t *Product = static_cast<uint64_t *>(
        Handle.allocate((LimbsA + LimbsB) * 8, FrameTemp));
    if (!A || !B || !Product) {
      Result.Status = RunStatusKind::Abort;
      return Result;
    }
    for (size_t I = 0; I < LimbsA; ++I)
      A[I] = Accumulator * (2 * I + 3);
    for (size_t I = 0; I < LimbsB; ++I)
      B[I] = Accumulator ^ (0x517cc1b727220a95ULL * (I + 1));
    for (size_t I = 0; I < LimbsA + LimbsB; ++I)
      Product[I] = 0;
    for (size_t I = 0; I < LimbsA; ++I)
      for (size_t J = 0; J < LimbsB; ++J)
        Product[I + J] += A[I] * B[J] + (A[I] >> 32) * (B[J] & 0xffffffffu);
    for (size_t I = 0; I < LimbsA + LimbsB; ++I)
      Accumulator = (Accumulator ^ Product[I]) * 0x100000001b3ULL;

    Handle.deallocate(A, FrameFreeLimbs);
    Handle.deallocate(B, FrameFreeLimbs);
    Handle.deallocate(Product, FrameFreeLimbs);
  }

  for (int B = 0; B < 8; ++B)
    Result.Output.push_back(static_cast<uint8_t>(Accumulator >> (8 * B)));
  return Result;
}

//===- workload/CfracWorkload.h - cfrac-like program -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cfrac-like workload: continued-fraction factorization is the most
/// allocation-intensive program in the paper's suite (Exterminator's
/// worst case in Figure 7 at 132% overhead).  This miniature churns
/// small, short-lived bignum limb arrays at a very high allocation rate
/// with little computation per object — the profile that makes allocator
/// overhead dominate.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_WORKLOAD_CFRACWORKLOAD_H
#define EXTERMINATOR_WORKLOAD_CFRACWORKLOAD_H

#include "workload/Workload.h"

namespace exterminator {

/// Size/shape knobs for the cfrac-like program.
struct CfracParams {
  /// Factoring steps; each performs several bignum operations.
  unsigned Steps = 1500;
};

/// The cfrac-like workload.
class CfracWorkload : public Workload {
public:
  explicit CfracWorkload(const CfracParams &Params = CfracParams())
      : Params(Params) {}

  const char *name() const override { return "cfrac"; }

  WorkloadResult run(AllocatorHandle &Handle,
                     uint64_t InputSeed) const override;

private:
  CfracParams Params;
};

} // namespace exterminator

#endif // EXTERMINATOR_WORKLOAD_CFRACWORKLOAD_H

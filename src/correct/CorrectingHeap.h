//===- correct/CorrectingHeap.h - Correcting allocator ---------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correcting memory allocator (§6.3, Figure 6).
///
/// It layers runtime patches over a DieFast heap: on allocation it drains
/// the deferral queue (objects whose extended lifetime has elapsed), looks
/// up the allocation site in the *pad table*, and forwards the request
/// enlarged by the pad; on deallocation it looks up the (allocation site,
/// deallocation site) pair in the *deferral table* and either frees
/// immediately or pushes the pointer onto a priority queue keyed by
/// allocation-clock due time.
///
/// Patches can be reloaded at any time without interrupting execution
/// (§3.4: replicated mode patches running replicas on-the-fly).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CORRECT_CORRECTINGHEAP_H
#define EXTERMINATOR_CORRECT_CORRECTINGHEAP_H

#include "diefast/DieFastHeap.h"
#include "patch/RuntimePatch.h"

#include <queue>
#include <string>
#include <vector>

namespace exterminator {

/// Space/drag accounting for §7.3 (patch overhead).
struct CorrectionStats {
  /// Allocations that received a pad, and the pad bytes added.
  uint64_t PaddedAllocations = 0;
  uint64_t PadBytesAdded = 0;
  /// Pad bytes held by currently-live objects, and the high-water mark
  /// (§7.3 measures pad size × maximum live patched objects).
  uint64_t LivePadBytes = 0;
  uint64_t MaxLivePadBytes = 0;
  /// Deallocation requests deferred.
  uint64_t DeferredFrees = 0;
  /// Bytes currently held past their requested free.
  uint64_t CurrentDeferredBytes = 0;
  /// High-water mark of deferred bytes.
  uint64_t MaxDeferredBytes = 0;
  /// Σ object-size × allocations-deferred: the added *drag* (§6.2).
  uint64_t DragByteTicks = 0;
  /// Criticality tiering (PR 9): defensive pads and deferrals applied to
  /// hardened size classes beyond what site patches demanded.
  uint64_t DefensivePadAllocations = 0;
  uint64_t DefensivePadBytesAdded = 0;
  uint64_t DefensiveDeferrals = 0;
};

/// Criticality tiering (PR 9): the HRM idea inverted.  Instead of
/// protecting critical data by replication, the allocator *degrades*
/// service where errors concentrate: size classes with an error history
/// (padded-site allocations, hardware-implicated slabs) get a defensive
/// pad on every allocation and a defensive deferral on every free, while
/// clean classes keep the lean fast path.  Off by default — tiering is a
/// policy the deployment opts into.
struct CriticalityConfig {
  bool Enabled = false;
  /// Error-history sightings at one size class before it is hardened.
  uint32_t HardenThreshold = 2;
  /// Defensive pad added to every allocation of a hardened class.
  uint32_t DefensivePadBytes = 16;
  /// Defensive free deferral (allocation ticks) for hardened classes.
  uint64_t DefensiveDeferTicks = 32;
};

/// DieFast plus runtime patches: pads overflows away, defers premature
/// frees.
class CorrectingHeap : public Allocator {
public:
  CorrectingHeap(const DieFastConfig &Config = DieFastConfig(),
                 const CallContext *Context = nullptr);
  ~CorrectingHeap() override;

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *name() const override { return "exterminator-correcting"; }

  /// Counters live in the innermost DieHard heap; forwarding keeps the
  /// per-operation stats copy off the hot path.
  const AllocatorStats &stats() const override { return Inner.stats(); }

  /// Replaces the live patch set ("reload signal", §6.3).  Hardware
  /// reports in the set retire their pages from the slot lottery and
  /// credit the error history of the implicated size classes (PR 9).
  void setPatches(const PatchSet &NewPatches);

  /// Enables/configures criticality tiering (PR 9).
  void setCriticality(const CriticalityConfig &NewCriticality);

  const CriticalityConfig &criticality() const { return Criticality; }

  /// Error-history sightings recorded against \p ClassIndex.
  uint32_t classErrorCount(unsigned ClassIndex) const {
    return ClassIndex < ClassErrors.size() ? ClassErrors[ClassIndex] : 0;
  }

  /// True when tiering is on and the class crossed the harden threshold.
  bool isClassHardened(unsigned ClassIndex) const {
    return Criticality.Enabled &&
           classErrorCount(ClassIndex) >= Criticality.HardenThreshold;
  }

  /// Loads patches from a runtime patch file; returns false on failure.
  bool loadPatches(const std::string &Path);

  const PatchSet &patches() const { return Patches; }

  /// Frees everything still sitting in the deferral queue (teardown).
  void flushDeferrals();

  /// Objects currently held by the deferral queue.
  size_t deferredCount() const { return Deferrals.size(); }

  const CorrectionStats &correctionStats() const { return CStats; }

  /// The underlying DieFast heap (error signals, image capture).
  DieFastHeap &diefast() { return Inner; }
  const DieFastHeap &diefast() const { return Inner; }

private:
  struct Deferred {
    uint64_t DueTime;
    uint64_t EnqueueTime;
    ObjectRef Ref;
    SiteId FreeSite;
    uint32_t Bytes;
  };
  struct DeferredLater {
    bool operator()(const Deferred &A, const Deferred &B) const {
      return A.DueTime > B.DueTime; // min-heap on due time
    }
  };

  /// Frees every deferred object whose due time has arrived.
  void drainDeferrals();

  void reallyFree(const Deferred &Entry);

  /// Retires pages named by the patch set's hardware reports and credits
  /// the implicated size classes' error history.
  void applyHardwareReports();

  /// Adds one error-history sighting to \p ClassIndex.
  void creditClassError(unsigned ClassIndex);

  const CallContext *Context;
  /// Mirrors DieHardConfig::LegacyHotPath: reinstates the pre-PR-1
  /// per-operation stats copies for the bench baseline.
  bool Legacy;
  DieFastHeap Inner;
  PatchSet Patches;
  std::priority_queue<Deferred, std::vector<Deferred>, DeferredLater>
      Deferrals;
  uint64_t Clock = 0;
  CorrectionStats CStats;

  // Criticality tiering (PR 9).
  CriticalityConfig Criticality;
  /// Error-history sightings per size class; grown on demand.
  std::vector<uint32_t> ClassErrors;
  /// Pages already credited to class error history (setPatches is called
  /// repeatedly with supersets; each page must count once).
  std::vector<uint64_t> CreditedPages;
};

} // namespace exterminator

#endif // EXTERMINATOR_CORRECT_CORRECTINGHEAP_H

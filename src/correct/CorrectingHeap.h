//===- correct/CorrectingHeap.h - Correcting allocator ---------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correcting memory allocator (§6.3, Figure 6).
///
/// It layers runtime patches over a DieFast heap: on allocation it drains
/// the deferral queue (objects whose extended lifetime has elapsed), looks
/// up the allocation site in the *pad table*, and forwards the request
/// enlarged by the pad; on deallocation it looks up the (allocation site,
/// deallocation site) pair in the *deferral table* and either frees
/// immediately or pushes the pointer onto a priority queue keyed by
/// allocation-clock due time.
///
/// Patches can be reloaded at any time without interrupting execution
/// (§3.4: replicated mode patches running replicas on-the-fly).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CORRECT_CORRECTINGHEAP_H
#define EXTERMINATOR_CORRECT_CORRECTINGHEAP_H

#include "diefast/DieFastHeap.h"
#include "patch/RuntimePatch.h"

#include <queue>
#include <string>
#include <vector>

namespace exterminator {

/// Space/drag accounting for §7.3 (patch overhead).
struct CorrectionStats {
  /// Allocations that received a pad, and the pad bytes added.
  uint64_t PaddedAllocations = 0;
  uint64_t PadBytesAdded = 0;
  /// Pad bytes held by currently-live objects, and the high-water mark
  /// (§7.3 measures pad size × maximum live patched objects).
  uint64_t LivePadBytes = 0;
  uint64_t MaxLivePadBytes = 0;
  /// Deallocation requests deferred.
  uint64_t DeferredFrees = 0;
  /// Bytes currently held past their requested free.
  uint64_t CurrentDeferredBytes = 0;
  /// High-water mark of deferred bytes.
  uint64_t MaxDeferredBytes = 0;
  /// Σ object-size × allocations-deferred: the added *drag* (§6.2).
  uint64_t DragByteTicks = 0;
};

/// DieFast plus runtime patches: pads overflows away, defers premature
/// frees.
class CorrectingHeap : public Allocator {
public:
  CorrectingHeap(const DieFastConfig &Config = DieFastConfig(),
                 const CallContext *Context = nullptr);
  ~CorrectingHeap() override;

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *name() const override { return "exterminator-correcting"; }

  /// Counters live in the innermost DieHard heap; forwarding keeps the
  /// per-operation stats copy off the hot path.
  const AllocatorStats &stats() const override { return Inner.stats(); }

  /// Replaces the live patch set ("reload signal", §6.3).
  void setPatches(const PatchSet &NewPatches) { Patches = NewPatches; }

  /// Loads patches from a runtime patch file; returns false on failure.
  bool loadPatches(const std::string &Path);

  const PatchSet &patches() const { return Patches; }

  /// Frees everything still sitting in the deferral queue (teardown).
  void flushDeferrals();

  /// Objects currently held by the deferral queue.
  size_t deferredCount() const { return Deferrals.size(); }

  const CorrectionStats &correctionStats() const { return CStats; }

  /// The underlying DieFast heap (error signals, image capture).
  DieFastHeap &diefast() { return Inner; }
  const DieFastHeap &diefast() const { return Inner; }

private:
  struct Deferred {
    uint64_t DueTime;
    uint64_t EnqueueTime;
    ObjectRef Ref;
    SiteId FreeSite;
    uint32_t Bytes;
  };
  struct DeferredLater {
    bool operator()(const Deferred &A, const Deferred &B) const {
      return A.DueTime > B.DueTime; // min-heap on due time
    }
  };

  /// Frees every deferred object whose due time has arrived.
  void drainDeferrals();

  void reallyFree(const Deferred &Entry);

  const CallContext *Context;
  /// Mirrors DieHardConfig::LegacyHotPath: reinstates the pre-PR-1
  /// per-operation stats copies for the bench baseline.
  bool Legacy;
  DieFastHeap Inner;
  PatchSet Patches;
  std::priority_queue<Deferred, std::vector<Deferred>, DeferredLater>
      Deferrals;
  uint64_t Clock = 0;
  CorrectionStats CStats;
};

} // namespace exterminator

#endif // EXTERMINATOR_CORRECT_CORRECTINGHEAP_H

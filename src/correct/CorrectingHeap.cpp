//===- correct/CorrectingHeap.cpp - Correcting allocator --------------------===//

#include "correct/CorrectingHeap.h"

#include "patch/PatchIO.h"

#include <algorithm>

using namespace exterminator;

CorrectingHeap::CorrectingHeap(const DieFastConfig &Config,
                               const CallContext *Context)
    : Context(Context), Legacy(Config.Heap.LegacyHotPath),
      Inner(Config, Context) {}

CorrectingHeap::~CorrectingHeap() = default;

void *CorrectingHeap::allocate(size_t Size) {
  // Figure 6: update the allocation clock, free deferred objects that
  // have reached their due time, then pad and forward.
  ++Clock;
  drainDeferrals();

  const SiteId AllocSite = Context ? Context->currentSite() : 0;
  const uint32_t Pad = Patches.padFor(AllocSite);
  // Backward-overflow extension: front padding shifts the returned
  // pointer so underruns land in the object's own slot.  Rounded to 8 so
  // the program's pointer stays maximally aligned.
  const uint32_t FrontPad = (Patches.frontPadFor(AllocSite) + 7u) & ~7u;
  // Criticality tiering: hardened classes get a defensive pad on every
  // allocation, patched site or not; clean classes pay nothing.
  uint32_t Defensive = 0;
  if (Criticality.Enabled && sizeclass::fits(Size) &&
      isClassHardened(sizeclass::classFor(Size)))
    Defensive = Criticality.DefensivePadBytes;
  size_t PaddedSize = Size + Pad + FrontPad + Defensive;
  uint32_t AppliedPad = Pad;
  uint32_t AppliedFront = FrontPad;
  uint32_t AppliedDefensive = Defensive;
  if (!sizeclass::fits(PaddedSize)) {
    PaddedSize = Size; // A pad must never turn a servable request invalid.
    AppliedPad = 0;
    AppliedFront = 0;
    AppliedDefensive = 0;
  }
  if (AppliedPad + AppliedFront > 0) {
    ++CStats.PaddedAllocations;
    CStats.PadBytesAdded += AppliedPad + AppliedFront;
    CStats.LivePadBytes += AppliedPad + AppliedFront;
    CStats.MaxLivePadBytes =
        std::max(CStats.MaxLivePadBytes, CStats.LivePadBytes);
    // A patched site's allocations are error-history sightings for their
    // size class — the signal tiering concentrates on.  Both classes are
    // implicated: the requested class (future requests this size get the
    // defensive pad) and the class the padded object lands in (its slots
    // are where the overflow struck, so its frees get the defensive
    // quarantine).
    if (AppliedPad > 0) {
      creditClassError(sizeclass::classFor(Size));
      if (sizeclass::classFor(PaddedSize) != sizeclass::classFor(Size))
        creditClassError(sizeclass::classFor(PaddedSize));
    }
  }
  if (AppliedDefensive > 0) {
    ++CStats.DefensivePadAllocations;
    CStats.DefensivePadBytesAdded += AppliedDefensive;
  }
  uint8_t *Ptr = static_cast<uint8_t *>(Inner.allocate(PaddedSize));
  if (Legacy)
    Stats = Inner.stats();
  if (!Ptr)
    return Ptr;
  if (AppliedFront > 0) {
    // Remember the shift so the eventual free recognizes the interior
    // pointer the program holds.
    std::optional<ObjectRef> Ref = Inner.heap().findObject(Ptr);
    assert(Ref && "fresh allocation must resolve");
    Inner.heap().miniheap(*Ref).slot(Ref->SlotIndex).FrontPad =
        AppliedFront;
  }
  return Ptr + AppliedFront;
}

void CorrectingHeap::deallocate(void *Ptr) {
  if (!Ptr)
    return;

  // Compute the site pair for this pointer: the allocation site is read
  // from the object's metadata, the deallocation site from the current
  // call context.  The pointer is resolved exactly once on this path.
  const SiteId FreeSite = Context ? Context->currentSite() : 0;
  std::optional<ObjectRef> Ref = Inner.heap().findObject(Ptr);
  // The pointer the program holds sits FrontPad bytes into the slot when
  // the site carries a front pad (backward-overflow correction).
  const bool Resolvable =
      Ref && Inner.heap().miniheap(*Ref).isAllocated(Ref->SlotIndex) &&
      !Inner.heap().objectMetadata(*Ref).Bad &&
      Ptr == Inner.heap().objectPointer(*Ref) +
                 Inner.heap().objectMetadata(*Ref).FrontPad;
  if (!Resolvable) {
    // Invalid or double free: let DieFast count and ignore it.
    Inner.deallocateWithSite(Ptr, FreeSite);
    if (Legacy)
      Stats = Inner.stats();
    return;
  }

  const SlotMetadata &Meta = Inner.heap().objectMetadata(*Ref);
  // Live-pad accounting: the dying object's site tells whether its
  // allocation carried a pad.
  const uint32_t DyingPad = Patches.padFor(Meta.AllocSite);
  if (DyingPad > 0 && CStats.LivePadBytes >= DyingPad)
    CStats.LivePadBytes -= DyingPad;

  uint64_t Defer = Patches.deferralFor(Meta.AllocSite, FreeSite);
  // Criticality tiering: hardened classes hold every freed object in the
  // deferral queue briefly (a short quarantine), so a latent dangling
  // use or a flaky cell under the slot surfaces as canary evidence
  // instead of silent reuse.
  if (Defer == 0 && Criticality.Enabled && isClassHardened(Ref->ClassIndex)) {
    Defer = Criticality.DefensiveDeferTicks;
    ++CStats.DefensiveDeferrals;
  }
  if (Defer == 0) {
    Inner.deallocateResolved(*Ref, FreeSite);
    if (Legacy)
      Stats = Inner.stats();
    return;
  }

  Deferred Entry;
  Entry.DueTime = Clock + Defer;
  Entry.EnqueueTime = Clock;
  Entry.Ref = *Ref;
  Entry.FreeSite = FreeSite;
  Entry.Bytes = Meta.RequestedSize;
  Deferrals.push(Entry);
  ++CStats.DeferredFrees;
  CStats.CurrentDeferredBytes += Entry.Bytes;
  CStats.MaxDeferredBytes =
      std::max(CStats.MaxDeferredBytes, CStats.CurrentDeferredBytes);
}

void CorrectingHeap::setPatches(const PatchSet &NewPatches) {
  Patches = NewPatches;
  applyHardwareReports();
}

void CorrectingHeap::setCriticality(const CriticalityConfig &NewCriticality) {
  Criticality = NewCriticality;
}

bool CorrectingHeap::loadPatches(const std::string &Path) {
  PatchSet Loaded;
  if (!loadPatchSet(Path, Loaded))
    return false;
  setPatches(Loaded);
  return true;
}

void CorrectingHeap::creditClassError(unsigned ClassIndex) {
  if (ClassIndex >= ClassErrors.size())
    ClassErrors.resize(ClassIndex + 1, 0);
  ++ClassErrors[ClassIndex];
}

void CorrectingHeap::applyHardwareReports() {
  if (Patches.hardwareReportCount() == 0)
    return;
  for (const HardwareFaultReport &Report : Patches.hardwareReports()) {
    const uintptr_t Page = static_cast<uintptr_t>(Report.PageAddress);
    // Retirement is idempotent; reports merged in repeatedly (patch
    // reloads ship supersets) retire nothing new.
    Inner.heap().retirePage(Page);

    // Credit the error history of every size class with a slab on the
    // page — once per page, enough sightings to harden the class
    // outright (a failing cell under a slab is not a statistical hint).
    auto It = std::lower_bound(CreditedPages.begin(), CreditedPages.end(),
                               Report.PageAddress);
    if (It != CreditedPages.end() && *It == Report.PageAddress)
      continue;
    CreditedPages.insert(It, Report.PageAddress);
    Inner.heap().forEachMiniheap(
        [&](unsigned C, unsigned H, const Miniheap &Heap) {
          (void)H;
          const uintptr_t Begin = reinterpret_cast<uintptr_t>(Heap.base());
          const uintptr_t End =
              Begin + Heap.numSlots() * Heap.objectSize();
          if (End <= Page || Begin >= Page + 4096)
            return;
          for (uint32_t I = 0; I < Criticality.HardenThreshold; ++I)
            creditClassError(C);
        });
  }
}

void CorrectingHeap::drainDeferrals() {
  while (!Deferrals.empty() && Deferrals.top().DueTime <= Clock) {
    const Deferred Entry = Deferrals.top();
    Deferrals.pop();
    reallyFree(Entry);
  }
}

void CorrectingHeap::flushDeferrals() {
  while (!Deferrals.empty()) {
    const Deferred Entry = Deferrals.top();
    Deferrals.pop();
    reallyFree(Entry);
  }
}

void CorrectingHeap::reallyFree(const Deferred &Entry) {
  // The free-site hash recorded for the object is the one sampled when
  // the program requested the free, not the context that happens to be
  // live when the deferral drains.  The slot reference stays valid while
  // deferred: the object is still allocated until this very call.
  Inner.deallocateResolved(Entry.Ref, Entry.FreeSite);
  CStats.CurrentDeferredBytes -= Entry.Bytes;
  CStats.DragByteTicks +=
      static_cast<uint64_t>(Entry.Bytes) * (Clock - Entry.EnqueueTime);
}

//===- runtime/ReplicatedDriver.h - Replicated mode ------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replicated mode (§3.4, Figure 5): several replicas with independently
/// randomized DieFast heaps process the same broadcast input; a voter
/// compares their outputs.  A DieFast signal, a crash, or divergent
/// output triggers a heap-image dump from every replica at the same
/// allocation time, error isolation runs over those images through the
/// DiagnosisPipeline, and the resulting patches are reloaded into the
/// correcting allocators so subsequent allocations are patched
/// on-the-fly.
///
/// As in the paper, replicas run *concurrently*: each round maps the N
/// replicas onto a thread-pool Executor (each replica owns its heap, its
/// call context, and its fault injector, so they share nothing), and the
/// fork-join barrier doubles as the lockstep dump barrier — isolation
/// starts only after every replica has produced its image at the common
/// allocation time.  Replicas are deterministic in (input, heap seed), so
/// the dump at the common failure time is reproduced by an exact replay
/// (see DESIGN.md, substitutions).
///
/// The Sequential toggle runs the identical round protocol on the
/// calling thread alone.  Because results are committed per replica
/// index either way, a concurrent session is bit-identical to a
/// sequential one with the same seeds — which is what makes concurrency
/// testable.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_REPLICATEDDRIVER_H
#define EXTERMINATOR_RUNTIME_REPLICATEDDRIVER_H

#include "diagnose/DiagnosisPipeline.h"
#include "runtime/Exterminator.h"
#include "runtime/Voter.h"

#include <vector>

namespace exterminator {

/// One round of replicated execution.
struct ReplicatedRound {
  VoteResult Vote;
  /// Any replica signalled, crashed, aborted, or diverged.
  bool ErrorDetected = false;
  /// Allocation time of the earliest failure (the dump time).
  uint64_t DumpTime = 0;
  IsolationResult Result;
};

/// Outcome of a replicated session.
struct ReplicatedOutcome {
  /// The final round's replicas agreed unanimously under the patches.
  bool Corrected = false;
  /// No round ever detected an error.
  bool ErrorFree = false;
  std::vector<ReplicatedRound> Rounds;
  PatchSet Patches;
  /// The voted output of the final round.
  std::vector<uint8_t> Output;
};

/// Drives N replicas with voting and on-the-fly patch reload.
class ReplicatedDriver {
public:
  /// \param Sequential run replicas one after another on the calling
  ///        thread instead of concurrently (determinism baseline).
  ReplicatedDriver(Workload &Work, const ExterminatorConfig &Config,
                   unsigned NumReplicas = 3, bool Sequential = false)
      : Work(Work), Config(Config), NumReplicas(NumReplicas),
        Sequential(Sequential) {}

  ReplicatedOutcome run(uint64_t InputSeed,
                        const PatchSet &InitialPatches = PatchSet());

private:
  Workload &Work;
  ExterminatorConfig Config;
  unsigned NumReplicas;
  bool Sequential;
};

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_REPLICATEDDRIVER_H

//===- runtime/ReplicatedDriver.h - Replicated mode ------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replicated mode (§3.4, Figure 5): several replicas with independently
/// randomized DieFast heaps process the same broadcast input; a voter
/// compares their outputs.  A DieFast signal, a crash, or divergent
/// output triggers a heap-image dump from every replica at the same
/// allocation time, error isolation runs over those images, and the
/// resulting patches are reloaded into the correcting allocators so
/// subsequent allocations are patched on-the-fly.
///
/// The paper runs replicas as concurrent processes; this harness runs
/// them sequentially in-process and reproduces the lockstep dump by
/// replaying each replica to the common failure time — replicas are
/// deterministic in their input, so the replay is exact (see DESIGN.md,
/// substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_REPLICATEDDRIVER_H
#define EXTERMINATOR_RUNTIME_REPLICATEDDRIVER_H

#include "runtime/Exterminator.h"
#include "runtime/Voter.h"

#include <vector>

namespace exterminator {

/// One round of replicated execution.
struct ReplicatedRound {
  VoteResult Vote;
  /// Any replica signalled, crashed, aborted, or diverged.
  bool ErrorDetected = false;
  /// Allocation time of the earliest failure (the dump time).
  uint64_t DumpTime = 0;
  IsolationResult Result;
};

/// Outcome of a replicated session.
struct ReplicatedOutcome {
  /// The final round's replicas agreed unanimously under the patches.
  bool Corrected = false;
  /// No round ever detected an error.
  bool ErrorFree = false;
  std::vector<ReplicatedRound> Rounds;
  PatchSet Patches;
  /// The voted output of the final round.
  std::vector<uint8_t> Output;
};

/// Drives N replicas with voting and on-the-fly patch reload.
class ReplicatedDriver {
public:
  ReplicatedDriver(Workload &Work, const ExterminatorConfig &Config,
                   unsigned NumReplicas = 3)
      : Work(Work), Config(Config), NumReplicas(NumReplicas) {}

  ReplicatedOutcome run(uint64_t InputSeed,
                        const PatchSet &InitialPatches = PatchSet());

private:
  Workload &Work;
  ExterminatorConfig Config;
  unsigned NumReplicas;
};

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_REPLICATEDDRIVER_H

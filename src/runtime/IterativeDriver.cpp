//===- runtime/IterativeDriver.cpp - Iterative mode --------------------------===//

#include "runtime/IterativeDriver.h"

#include "support/RandomGenerator.h"

using namespace exterminator;

namespace {

/// One captured (seed, image-at-T) pair plus run outcome.
struct ReplaySample {
  uint64_t HeapSeed = 0;
  bool Failed = false;
  uint64_t EndTime = 0;
  HeapImage AtBreakpoint;
  HeapImage AtEnd; // valid only when Failed
};

} // namespace

/// Replays \p Work at \p HeapSeed with a malloc breakpoint at \p T.
/// Returns false when the run failed strictly before T — the caller must
/// lower the breakpoint, since images at T are unreachable for this seed.
static bool replayAt(Workload &Work, uint64_t InputSeed, uint64_t HeapSeed,
                     const ExterminatorConfig &Config,
                     const PatchSet &Patches, uint64_t T,
                     ReplaySample &Sample) {
  SingleRunResult Run =
      runWorkloadOnce(Work, InputSeed, HeapSeed, Config, Patches, T);
  Sample.HeapSeed = HeapSeed;
  Sample.Failed = Run.failed();
  Sample.EndTime = Run.EndTime;
  if (Run.failed())
    Sample.AtEnd = Run.FinalImage;
  if (Run.BreakpointImage) {
    Sample.AtBreakpoint = std::move(*Run.BreakpointImage);
    return true;
  }
  // No breakpoint capture: the run ended first.  An end time of exactly
  // T still yields a usable image (all activity up to the failure, which
  // is what a signal-time dump contains); anything earlier forces the
  // breakpoint down.
  if (Run.EndTime >= T) {
    Sample.AtBreakpoint = std::move(Run.FinalImage);
    return true;
  }
  return false;
}

IterativeOutcome IterativeDriver::run(uint64_t InputSeed,
                                      const PatchSet &InitialPatches) {
  IterativeOutcome Outcome;
  // The driver only gathers evidence; isolation, patch derivation, and
  // patch accumulation live in the diagnosis pipeline.
  DiagnosisPipeline Pipeline({Config.Isolation, Config.Cumulative});
  Pipeline.seedPatches(InitialPatches);
  Outcome.Patches = Pipeline.patches();
  RandomGenerator SeedStream(Config.MasterSeed);

  for (unsigned Episode = 0; Episode < Config.MaxEpisodes; ++Episode) {
    // Discovery: run until the first DieFast signal or program failure.
    // A single clean run does not prove health — the detector is
    // probabilistic — so discovery retries with fresh heap seeds.
    SingleRunResult Discovery;
    uint64_t DiscoverySeed = 0;
    bool ErrorManifested = false;
    for (unsigned Attempt = 0; Attempt < Config.DiscoveryAttempts;
         ++Attempt) {
      DiscoverySeed = SeedStream.next();
      Discovery = runWorkloadOnce(Work, InputSeed, DiscoverySeed, Config,
                                  Pipeline.patches());
      if (Discovery.ErrorSignalled || Discovery.failed()) {
        ErrorManifested = true;
        break;
      }
    }
    if (!ErrorManifested) {
      // Clean runs: either there never was an error, or the accumulated
      // patches correct it.
      Outcome.Corrected = Episode > 0;
      Outcome.ErrorFree = Episode == 0;
      Outcome.Patches = Pipeline.patches();
      return Outcome;
    }

    IterativeEpisode Ep;
    Ep.DiscoveryStatus = Discovery.Result.Status;
    Ep.SignalAnchored = Discovery.ErrorSignalled;

    // The malloc breakpoint: the earliest failure time observed so far.
    // Replays that fail before it lower it and invalidate prior images —
    // heap images are only comparable at a common allocation time.
    uint64_t T = Discovery.ErrorSignalled ? Discovery.FirstSignalTime
                                          : Discovery.EndTime;
    if (Discovery.failed() && Discovery.EndTime < T)
      T = Discovery.EndTime;

    std::vector<uint64_t> Seeds = {DiscoverySeed};
    std::vector<ReplaySample> Samples;
    unsigned RunBudget = Config.MaxImages * 3;
    bool Isolated = false;

    while (!Isolated && RunBudget > 0) {
      // (Re)capture any seed lacking an image at the current breakpoint.
      bool Lowered = false;
      while (Samples.size() < Seeds.size() && RunBudget > 0) {
        --RunBudget;
        ReplaySample Sample;
        if (replayAt(Work, InputSeed, Seeds[Samples.size()], Config,
                     Pipeline.patches(), T, Sample)) {
          Samples.push_back(std::move(Sample));
          continue;
        }
        // Earlier failure: lower the breakpoint, recapture everything.
        T = Sample.EndTime;
        Samples.clear();
        Lowered = true;
        break;
      }
      if (Lowered)
        continue;
      if (Samples.size() < Config.MinImages) {
        if (Seeds.size() >= Config.MaxImages)
          break;
        Seeds.push_back(SeedStream.next());
        continue;
      }

      // Submit breakpoint-time images as evidence, with end-of-run
      // images of failed runs as the fallback (dangling overwrites may
      // postdate the last allocation).
      ImageEvidence Evidence;
      for (const ReplaySample &Sample : Samples) {
        Evidence.Primary.push_back(Sample.AtBreakpoint);
        if (Sample.Failed)
          Evidence.Fallback.push_back(Sample.AtEnd);
      }
      Ep.Result = Pipeline.submitImages(Evidence);
      if (!Ep.Result.Patches.empty()) {
        Isolated = true;
        break;
      }
      if (Seeds.size() >= Config.MaxImages)
        break;
      Seeds.push_back(SeedStream.next());
    }

    Ep.BreakpointTime = T;
    Ep.ImagesUsed = static_cast<unsigned>(Samples.size());
    Outcome.Episodes.push_back(Ep);
    Outcome.Patches = Pipeline.patches();
    if (!Isolated)
      return Outcome; // Could not isolate (e.g., read-only dangling).
    // Patches merged by the pipeline; the next episode runs corrected.
  }
  Outcome.Patches = Pipeline.patches();
  return Outcome;
}

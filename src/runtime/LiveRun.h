//===- runtime/LiveRun.h - Keep-the-heap workload harness ------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A variant of runWorkloadOnce that keeps the heap alive after the
/// workload finishes, for callers that need to operate on the *live*
/// heap state rather than on captured images: the capture-throughput
/// bench (which times captureHeapImage against a real post-run heap)
/// and the capture-determinism tests (which capture the same heap
/// repeatedly under different evidence-path modes and pin the bytes
/// identical).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_LIVERUN_H
#define EXTERMINATOR_RUNTIME_LIVERUN_H

#include "runtime/Exterminator.h"

#include <memory>

namespace exterminator {

/// A finished workload run whose heap is still alive and capturable.
struct LiveHeapRun {
  std::unique_ptr<CallContext> Context;
  std::unique_ptr<CorrectingHeap> Heap;
  WorkloadResult Result;

  DieFastHeap &diefast() { return Heap->diefast(); }
  const DieFastHeap &diefast() const { return Heap->diefast(); }

  /// Total slab bytes across all miniheaps (what a capture scans).
  uint64_t slabBytes() const {
    uint64_t Bytes = 0;
    Heap->diefast().heap().forEachMiniheap(
        [&](unsigned, unsigned, const Miniheap &Mini) {
          Bytes += Mini.numSlots() * Mini.objectSize();
        });
    return Bytes;
  }
};

/// Runs \p Work once over the correcting/DieFast/DieHard stack (no fault
/// injection, no breakpoint watcher) and returns the still-live heap.
inline LiveHeapRun runWorkloadKeepHeap(const Workload &Work,
                                       uint64_t InputSeed, uint64_t HeapSeed,
                                       const ExterminatorConfig &Config = {}) {
  LiveHeapRun Run;
  Run.Context = std::make_unique<CallContext>();

  DieFastConfig HeapConfig;
  HeapConfig.Heap = Config.Heap;
  HeapConfig.Heap.Seed = HeapSeed;
  HeapConfig.CanaryFillProbability = Config.CanaryFillProbability;
  Run.Heap = std::make_unique<CorrectingHeap>(HeapConfig, Run.Context.get());

  AllocatorHandle Handle(*Run.Heap, *Run.Context,
                         &Run.Heap->diefast().heap());
  Run.Result = Work.run(Handle, InputSeed);
  return Run;
}

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_LIVERUN_H

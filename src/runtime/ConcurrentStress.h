//===- runtime/ConcurrentStress.h - Contended allocator driver -*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic multithreaded workload driver for the concurrent
/// allocator front-end (PR 7): N workers on an Executor pool hammer one
/// shared allocator with mixed-size allocate/free traffic, optionally
/// handing a fraction of freed pointers to a neighbor worker so frees
/// cross threads (the remote-free path).  The same driver serves three
/// masters — the contended `mt-*` bench scenarios, the TSan CI job, and
/// the correctness tests — so what the bench times is exactly what the
/// race detector and the exactly-once accounting checks cover.
///
/// Every allocation is stamped with a header derived from its pointer
/// and a per-run nonce, verified just before the free: if two threads
/// were ever handed overlapping slots, the stamps collide and the run
/// reports pattern faults — a memory-integrity check riding along with
/// every benchmark run.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_CONCURRENTSTRESS_H
#define EXTERMINATOR_RUNTIME_CONCURRENTSTRESS_H

#include "alloc/Allocator.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// Shape of one contended stress run.
struct ConcurrentStressConfig {
  /// Worker count (the calling thread is worker 0).
  unsigned Threads = 4;
  /// Allocations each worker performs.
  uint64_t OpsPerThread = 20000;
  /// Live objects each worker keeps in flight (the churn window).  0 is
  /// the hot-pairs shape: allocate then dispose immediately.
  size_t ResidentPerThread = 0;
  /// Request sizes cycled through pseudo-randomly.
  std::vector<size_t> Sizes = {16, 24, 48, 100, 256, 1024};
  /// Fraction of disposals handed to the next worker's mailbox instead
  /// of freed locally, making the free cross threads.
  double CrossFreeFraction = 0.0;
  /// Per-run determinism seed (worker streams derive from it).
  uint64_t Seed = 1;
};

/// What one stress run did and observed.
struct ConcurrentStressResult {
  /// Wall-clock seconds for the contended region (workers start on a
  /// barrier inside the measured window).
  double Seconds = 0.0;
  /// Allocations performed across all workers; every one was freed
  /// exactly once before return, so frees == allocations and total
  /// operations == 2 * Allocations.
  uint64_t Allocations = 0;
  /// Header-stamp mismatches observed at free time: nonzero means two
  /// threads were handed overlapping memory.
  uint64_t PatternFaults = 0;
  /// Null returns from allocate (must be zero for in-range sizes).
  uint64_t FailedAllocations = 0;
};

/// Runs the contended workload over \p Alloc and returns its accounting.
/// Deterministic in the per-worker operation streams (scheduling
/// interleavings still vary).  Creates its own thread pool of
/// Config.Threads workers.
ConcurrentStressResult runConcurrentStress(Allocator &Alloc,
                                           const ConcurrentStressConfig &Config);

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_CONCURRENTSTRESS_H

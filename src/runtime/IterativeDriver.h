//===- runtime/IterativeDriver.h - Iterative mode --------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative mode (§3.4): suitable for testing or whenever the input is
/// available for re-execution.
///
/// One *episode* isolates one error: run until DieFast signals or the
/// program fails, dump a heap image, then replay the same input under
/// fresh heap seeds with a malloc breakpoint at the failure's allocation
/// time, dumping an independent image per replay.  The images are
/// submitted to the DiagnosisPipeline once MinImages exist, and more
/// replays are added until isolation succeeds or MaxImages is reached.
/// The pipeline owns isolation and patch accumulation; its patches feed
/// the correcting allocator and the episode loop repeats — fixing
/// further errors or doubling deferrals (§6.2) — until a patched run
/// completes cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_ITERATIVEDRIVER_H
#define EXTERMINATOR_RUNTIME_ITERATIVEDRIVER_H

#include "diagnose/DiagnosisPipeline.h"
#include "runtime/Exterminator.h"

#include <vector>

namespace exterminator {

/// What one episode (one error) took and found.
struct IterativeEpisode {
  /// Total independent heap images used (first run + replays).
  unsigned ImagesUsed = 0;
  /// The isolation outcome over those images.
  IsolationResult Result;
  /// The failure's allocation time (the malloc breakpoint).
  uint64_t BreakpointTime = 0;
  /// How the discovery run ended.
  RunStatusKind DiscoveryStatus = RunStatusKind::Success;
  /// Whether the discovery failure was a DieFast signal (vs. crash).
  bool SignalAnchored = false;
};

/// Outcome of a full iterative session.
struct IterativeOutcome {
  /// The final verification run succeeded under the accumulated patches.
  bool Corrected = false;
  /// No error ever manifested (nothing to correct).
  bool ErrorFree = false;
  std::vector<IterativeEpisode> Episodes;
  /// All patches accumulated across episodes.
  PatchSet Patches;
};

/// Runs the iterative-mode protocol for one workload and input.
class IterativeDriver {
public:
  IterativeDriver(Workload &Work, const ExterminatorConfig &Config)
      : Work(Work), Config(Config) {}

  /// Runs discover → replay → isolate → patch episodes until a patched
  /// run is clean.  \p InitialPatches seeds the correcting allocator
  /// (e.g., patches from earlier sessions or other users, §6.4).
  IterativeOutcome run(uint64_t InputSeed,
                       const PatchSet &InitialPatches = PatchSet());

private:
  Workload &Work;
  ExterminatorConfig Config;
};

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_ITERATIVEDRIVER_H
